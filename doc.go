// Package sparkscore is a from-scratch Go reproduction of "SparkScore:
// Leveraging Apache Spark for Distributed Genomic Inference" (Bahmani,
// Sibley, Parsian, Owzar, Mueller; IPDPSW 2016).
//
// The repository implements both the paper's contribution — distributed
// resampling inference for genome-wide association studies on the basis of
// efficient score statistics and SKAT SNP-set aggregation — and the entire
// substrate the paper assumes: a Spark-like RDD engine with lineage,
// caching, shuffles and broadcast (internal/rdd), a YARN-style cluster and
// container model (internal/cluster), an HDFS stand-in (internal/dfs), and
// a discrete-event virtual clock that answers multi-node scaling questions
// on a single machine (internal/simtime).
//
// Entry points:
//
//   - internal/core: the SparkScore algorithms (observed SKAT, permutation
//     and Monte Carlo resampling) — see examples/quickstart for usage.
//   - cmd/sparkscore: end-to-end analysis CLI.
//   - cmd/datagen: the paper's synthetic data generator (Section III).
//   - cmd/benchtab: regenerates every table and figure of the evaluation.
//   - cmd/sparktune: container-layout auto-tuning on the simulated cluster.
//
// The root package holds only this documentation and the benchmark suite
// (bench_test.go); the implementation lives under internal/.
package sparkscore
