package assoc

import (
	"math"
	"sort"
	"testing"

	"sparkscore/internal/rng"
)

func randomPairs(seed uint64, n int) []PairResult {
	r := rng.New(seed)
	out := make([]PairResult, n)
	for i := range out {
		out[i] = PairResult{
			SNP:    int32(i / 7),
			Pheno:  int32(i % 7),
			PValue: r.Float64(),
		}
	}
	return out
}

func TestTopKEqualsSortedPrefix(t *testing.T) {
	pairs := randomPairs(3, 500)
	for _, k := range []int{0, 1, 10, 499, 500, 1000} {
		tk := newTopK(k)
		for _, p := range pairs {
			tk.add(p)
		}
		want := append([]PairResult(nil), pairs...)
		sort.Slice(want, func(i, j int) bool { return pairLess(want[i], want[j]) })
		if k < len(want) {
			want = want[:k]
		}
		got := tk.sorted()
		if len(got) != len(want) {
			t.Fatalf("k=%d: kept %d pairs, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: pair %d = %+v, want %+v", k, i, got[i], want[i])
			}
		}
	}
}

// TestTopKTieHandling pins the tie rule: equal p-values order by SNP then
// phenotype, so the kept set at a tie boundary is deterministic.
func TestTopKTieHandling(t *testing.T) {
	pairs := []PairResult{
		{SNP: 5, Pheno: 1, PValue: 0.5},
		{SNP: 2, Pheno: 3, PValue: 0.5},
		{SNP: 2, Pheno: 1, PValue: 0.5},
		{SNP: 9, Pheno: 0, PValue: 0.1},
	}
	// Feed in every rotation; the top-3 must always be the same.
	for rot := range pairs {
		tk := newTopK(3)
		for i := range pairs {
			tk.add(pairs[(i+rot)%len(pairs)])
		}
		got := tk.sorted()
		want := []PairResult{
			{SNP: 9, Pheno: 0, PValue: 0.1},
			{SNP: 2, Pheno: 1, PValue: 0.5},
			{SNP: 2, Pheno: 3, PValue: 0.5},
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rotation %d: pair %d = %+v, want %+v", rot, i, got[i], want[i])
			}
		}
	}
}

func TestHistAddEdges(t *testing.T) {
	h := make([]int64, 4)
	histAdd(h, 0)    // bin 0
	histAdd(h, 0.24) // bin 0
	histAdd(h, 0.25) // bin 1 (0.25*4 = 1)
	histAdd(h, 0.99) // bin 3
	histAdd(h, 1)    // clamped to bin 3
	want := []int64{2, 1, 0, 2}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist = %v, want %v", h, want)
		}
	}
}

// snap mirrors histAdd's binning: the bin's upper edge.
func snap(p float64, bins int) float64 {
	idx := int(p * float64(bins))
	if idx >= bins {
		idx = bins - 1
	}
	if idx < 0 {
		idx = 0
	}
	return float64(idx+1) / float64(bins)
}

// exactBH runs the textbook Benjamini–Hochberg procedure: the largest k with
// p_(k) ≤ α·k/m; returns that p-value threshold and k.
func exactBH(ps []float64, alpha float64) (float64, int64) {
	sorted := append([]float64(nil), ps...)
	sort.Float64s(sorted)
	m := float64(len(sorted))
	thr, disc := 0.0, int64(0)
	for i, p := range sorted {
		if p <= alpha*float64(i+1)/m {
			thr, disc = p, int64(i+1)
		}
	}
	return thr, disc
}

// TestBHSketchEqualsExactOnSnapped is the sketch's defining property: the
// histogram BH equals the exact procedure run on p-values rounded up to
// their bin's upper edge — the only error is the snapping, bounded by 1/W.
func TestBHSketchEqualsExactOnSnapped(t *testing.T) {
	r := rng.New(11)
	for _, bins := range []int{16, 256, 4096} {
		for trial := 0; trial < 20; trial++ {
			n := 50 + int(r.Float64()*500)
			ps := make([]float64, n)
			h := make([]int64, bins)
			snapped := make([]float64, n)
			for i := range ps {
				p := r.Float64()
				if r.Bernoulli(0.3) {
					p *= 0.01 // a cluster of small p-values so BH fires
				}
				ps[i] = p
				histAdd(h, p)
				snapped[i] = snap(p, bins)
			}
			got := bhFromHist(h, int64(n), 0.1)
			wantThr, wantDisc := exactBH(snapped, 0.1)
			if math.Float64bits(got.Threshold) != math.Float64bits(wantThr) || got.Discoveries != wantDisc {
				t.Fatalf("bins=%d trial %d: sketch (%v, %d), exact-on-snapped (%v, %d)",
					bins, trial, got.Threshold, got.Discoveries, wantThr, wantDisc)
			}
			// Conservativeness: snapping p-values up can only shrink the
			// BH discovery set.
			_, exactDisc := exactBH(ps, 0.1)
			if got.Discoveries > exactDisc {
				t.Fatalf("bins=%d trial %d: sketch found %d discoveries, exact BH only %d",
					bins, trial, got.Discoveries, exactDisc)
			}
		}
	}
}

// TestBHSketchConvergesToExact pins the error bound's limit: once the sketch
// is fine enough that no two decisions fall in the same bin, it matches exact
// BH discovery-for-discovery.
func TestBHSketchConvergesToExact(t *testing.T) {
	r := rng.New(23)
	const bins = 1 << 22
	n := 200
	ps := make([]float64, n)
	h := make([]int64, bins)
	for i := range ps {
		p := r.Float64()
		if i%4 == 0 {
			p *= 0.001
		}
		ps[i] = p
		histAdd(h, p)
	}
	got := bhFromHist(h, int64(n), 0.05)
	_, wantDisc := exactBH(ps, 0.05)
	if got.Discoveries != wantDisc {
		t.Fatalf("sketch at W=%d found %d discoveries, exact BH %d", bins, got.Discoveries, wantDisc)
	}
}

func TestBHFromHistDegenerate(t *testing.T) {
	if got := bhFromHist(make([]int64, 8), 0, 0.05); got.Threshold != 0 || got.Discoveries != 0 {
		t.Fatalf("empty input produced %+v", got)
	}
	// All p-values large: nothing passes.
	h := make([]int64, 8)
	h[7] = 100
	if got := bhFromHist(h, 100, 0.05); got.Threshold != 0 || got.Discoveries != 0 {
		t.Fatalf("all-large input produced %+v", got)
	}
	// All p-values tiny: everything passes.
	h2 := make([]int64, 8)
	h2[0] = 100
	got := bhFromHist(h2, 100, 0.5)
	if got.Discoveries != 100 || got.Threshold != 0.125 {
		t.Fatalf("all-small input produced %+v", got)
	}
}

// TestMergePartialsOrderIndependent pins the driver merge: partials combined
// in any order produce the identical result.
func TestMergePartialsOrderIndependent(t *testing.T) {
	pairs := randomPairs(7, 300)
	const k, bins = 20, 64
	mk := func(chunk []PairResult) partial {
		acc := newAccumulator(k, bins)
		for _, p := range chunk {
			acc.add(p)
		}
		return acc.partial()
	}
	parts := []partial{mk(pairs[:100]), mk(pairs[100:150]), mk(pairs[150:])}
	fwd := mergePartials(parts, k, bins, 0.05)
	rev := mergePartials([]partial{parts[2], parts[0], parts[1]}, k, bins, 0.05)
	if fwd.Tested != rev.Tested || fwd.FDR != rev.FDR || len(fwd.TopK) != len(rev.TopK) {
		t.Fatalf("merge order changed result: %+v vs %+v", fwd, rev)
	}
	for i := range fwd.TopK {
		if fwd.TopK[i] != rev.TopK[i] {
			t.Fatalf("merge order changed top-K entry %d", i)
		}
	}
	// And the merged top-K equals the top-K of the full stream.
	whole := mk(pairs)
	for i, p := range whole.Top {
		if fwd.TopK[i] != p {
			t.Fatalf("merged top-K entry %d = %+v, stream top-K %+v", i, fwd.TopK[i], p)
		}
	}
}
