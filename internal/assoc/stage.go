// Staging the all-pairs inputs onto the simulated HDFS, and the deterministic
// text report the eqtl-smoke target compares byte-for-byte across engine
// configurations.

package assoc

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"

	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
)

// Paths names the two input files of an all-pairs analysis.
type Paths struct {
	Genotypes  string
	Phenotypes string
}

// Stage writes the genotype matrix and phenotype matrix to the context's
// file system under the given prefix.
func Stage(ctx *rdd.Context, geno *data.GenotypeMatrix, phenos *data.PhenoMatrix, prefix string) (Paths, error) {
	paths := Paths{
		Genotypes:  prefix + "/genotypes.txt",
		Phenotypes: prefix + "/phenotypes.txt",
	}
	var buf bytes.Buffer
	if err := data.WriteGenotypes(&buf, geno); err != nil {
		return Paths{}, fmt.Errorf("assoc: encoding genotypes: %w", err)
	}
	if _, err := ctx.FS().Write(paths.Genotypes, append([]byte(nil), buf.Bytes()...)); err != nil {
		return Paths{}, fmt.Errorf("assoc: staging genotypes: %w", err)
	}
	buf.Reset()
	if err := data.WritePhenoMatrix(&buf, phenos); err != nil {
		return Paths{}, fmt.Errorf("assoc: encoding phenotypes: %w", err)
	}
	if _, err := ctx.FS().Write(paths.Phenotypes, append([]byte(nil), buf.Bytes()...)); err != nil {
		return Paths{}, fmt.Errorf("assoc: staging phenotypes: %w", err)
	}
	return paths, nil
}

// WriteReport writes res as a deterministic TSV: a summary header, then one
// line per top-K pair. Floats use shortest round-trip formatting, so equal
// results produce byte-identical reports.
func WriteReport(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(bw, "tested\t%d\n", res.Tested)
	fmt.Fprintf(bw, "phenotypes\t%d\n", res.Phenos)
	fmt.Fprintf(bw, "alpha\t%s\n", g(res.FDR.Alpha))
	fmt.Fprintf(bw, "hist_bins\t%d\n", res.FDR.Bins)
	fmt.Fprintf(bw, "fdr_threshold\t%s\n", g(res.FDR.Threshold))
	fmt.Fprintf(bw, "discoveries\t%d\n", res.FDR.Discoveries)
	fmt.Fprintf(bw, "snp\tpheno\tscore\tvariance\tpvalue\n")
	for _, p := range res.TopK {
		fmt.Fprintf(bw, "%d\t%d\t%s\t%s\t%s\n", p.SNP, p.Pheno, g(p.Score), g(p.Variance), g(p.PValue))
	}
	return bw.Flush()
}
