package assoc

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"sparkscore/internal/cluster"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

func newTestContext(t testing.TB, nodes int, faults rdd.FaultProfile) *rdd.Context {
	t.Helper()
	c, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{Nodes: nodes, Spec: cluster.M3TwoXLarge},
		Seed:    7,
		Faults:  faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// stageFixture generates and stages a small all-pairs dataset, returning the
// boxed genotype matrix and phenotype matrix for brute-force checks.
func stageFixture(t testing.TB, ctx *rdd.Context, patients, snps, phenos int) (Paths, *data.GenotypeMatrix, *data.PhenoMatrix) {
	cfg := gen.Config{Patients: patients, SNPs: snps, SNPSets: 1}
	geno := gen.Genotypes(cfg, rng.New(5))
	expr := gen.ExpressionMatrix(cfg, rng.New(6), phenos)
	paths, err := Stage(ctx, geno, expr, "eqtl")
	if err != nil {
		t.Fatal(err)
	}
	return paths, geno, expr
}

// bruteForce scores every pair in memory with the single-phenotype model
// path — the reference the engine is pinned against.
func bruteForce(t testing.TB, geno *data.GenotypeMatrix, expr *data.PhenoMatrix, family string) []PairResult {
	var out []PairResult
	for p := 0; p < expr.Rows(); p++ {
		m, err := stats.NewModel(family, expr.Phenotype(p))
		if err != nil {
			t.Fatal(err)
		}
		for j, row := range geno.Rows {
			out = append(out, pairResult(int32(j), expr.IDs[p], stats.Score(m, row), m.Variance(row)))
		}
	}
	return out
}

func TestAllPairsMatchesBruteForce(t *testing.T) {
	const patients, snps, phenos, k = 40, 600, 9, 25
	ctx := newTestContext(t, 2, rdd.FaultProfile{})
	paths, geno, expr := stageFixture(t, ctx, patients, snps, phenos)
	a, err := NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, Config{TopK: k, HistBins: 512})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tested != int64(snps*phenos) {
		t.Fatalf("tested %d pairs, want %d", res.Tested, snps*phenos)
	}

	all := bruteForce(t, geno, expr, "gaussian")
	sort.Slice(all, func(i, j int) bool { return pairLess(all[i], all[j]) })
	if len(res.TopK) != k {
		t.Fatalf("top-K has %d entries, want %d", len(res.TopK), k)
	}
	for i := 0; i < k; i++ {
		g, w := res.TopK[i], all[i]
		if g.SNP != w.SNP || g.Pheno != w.Pheno ||
			math.Float64bits(g.Score) != math.Float64bits(w.Score) ||
			math.Float64bits(g.Variance) != math.Float64bits(w.Variance) ||
			math.Float64bits(g.PValue) != math.Float64bits(w.PValue) {
			t.Fatalf("top-K entry %d = %+v, brute force %+v", i, g, w)
		}
	}

	// The FDR summary must equal exact BH on bin-snapped p-values.
	snapped := make([]float64, len(all))
	for i, p := range all {
		snapped[i] = snap(p.PValue, 512)
	}
	wantThr, wantDisc := exactBH(snapped, 0.05)
	if math.Float64bits(res.FDR.Threshold) != math.Float64bits(wantThr) || res.FDR.Discoveries != wantDisc {
		t.Fatalf("FDR = %+v, exact-on-snapped (%v, %d)", res.FDR, wantThr, wantDisc)
	}
}

// TestStrategiesAndKernelsAgree pins the four engine configurations —
// {broadcast, cartesian} × {wide, loop} — to byte-identical reports.
func TestStrategiesAndKernelsAgree(t *testing.T) {
	const patients, snps, phenos = 30, 700, 12
	report := func(strategy string, wide bool) []byte {
		ctx := newTestContext(t, 2, rdd.FaultProfile{})
		paths, _, _ := stageFixture(t, ctx, patients, snps, phenos)
		cfg := Config{TopK: 20, HistBins: 256, Strategy: strategy, PhenoBatch: 5}.WithWide(wide)
		a, err := NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != strategy {
			t.Fatalf("ran strategy %q, want %q", res.Strategy, strategy)
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := report("broadcast", true)
	for _, tc := range []struct {
		strategy string
		wide     bool
	}{{"broadcast", false}, {"cartesian", true}, {"cartesian", false}} {
		if got := report(tc.strategy, tc.wide); !bytes.Equal(got, base) {
			t.Fatalf("%s/wide=%v report differs from broadcast/wide:\n%s\n--- vs ---\n%s",
				tc.strategy, tc.wide, got, base)
		}
	}
}

// TestAllPairsUnderChaos runs the cross under the chaos fault profile: the
// report must be byte-identical to the clean run.
func TestAllPairsUnderChaos(t *testing.T) {
	report := func(faults rdd.FaultProfile) []byte {
		ctx := newTestContext(t, 3, faults)
		paths, _, _ := stageFixture(t, ctx, 25, 900, 6)
		a, err := NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes,
			Config{TopK: 15, HistBins: 128, Strategy: "cartesian", PhenoBatch: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	clean := report(rdd.FaultProfile{})
	chaos := report(rdd.FaultProfile{TaskCrashProb: 0.1, FetchFailureProb: 0.1, StragglerProb: 0.1})
	if !bytes.Equal(clean, chaos) {
		t.Fatalf("chaos changed the report:\n%s\n--- vs clean ---\n%s", chaos, clean)
	}
}

func TestAutoStrategyPicksBroadcastForSmallMatrix(t *testing.T) {
	ctx := newTestContext(t, 1, rdd.FaultProfile{})
	paths, _, _ := stageFixture(t, ctx, 10, 20, 3)
	a, err := NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Strategy(); got != "broadcast" {
		t.Fatalf("auto strategy = %q, want broadcast for a tiny matrix", got)
	}
}

func TestNewAnalysisRejects(t *testing.T) {
	ctx := newTestContext(t, 1, rdd.FaultProfile{})
	paths, _, _ := stageFixture(t, ctx, 10, 20, 3)
	if _, err := NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, Config{Family: "cox"}); err == nil {
		t.Fatal("accepted the cox family")
	}
	if _, err := NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, Config{Strategy: "bogus"}); err == nil {
		t.Fatal("accepted a bogus strategy")
	}
	// Expression values are continuous, so binomial must fail fast.
	if _, err := NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, Config{Family: "binomial"}); err == nil {
		t.Fatal("accepted binomial for continuous phenotypes")
	}
	if _, err := NewAnalysis(ctx, "missing.txt", paths.Phenotypes, Config{}); err == nil {
		t.Fatal("accepted a missing genotype file")
	}
}

// TestBinomialFamilyAllPairs runs the PheWAS shape: binary phenotypes under
// the binomial score, pinned against brute force.
func TestBinomialFamilyAllPairs(t *testing.T) {
	const patients, snps, phenos = 30, 300, 4
	ctx := newTestContext(t, 2, rdd.FaultProfile{})
	cfg := gen.Config{Patients: patients, SNPs: snps, SNPSets: 1}
	geno := gen.Genotypes(cfg, rng.New(9))
	r := rng.New(10)
	expr := data.NewPhenoMatrix(patients, phenos)
	row := make([]float64, patients)
	for p := 0; p < phenos; p++ {
		for i := range row {
			row[i] = 0
			if r.Bernoulli(0.4) {
				row[i] = 1
			}
		}
		if err := expr.AppendRow(p, row); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := Stage(ctx, geno, &expr, "phewas")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, Config{Family: "binomial", TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	all := bruteForce(t, geno, &expr, "binomial")
	sort.Slice(all, func(i, j int) bool { return pairLess(all[i], all[j]) })
	for i := range res.TopK {
		if res.TopK[i] != all[i] {
			t.Fatalf("top-K entry %d = %+v, brute force %+v", i, res.TopK[i], all[i])
		}
	}
}
