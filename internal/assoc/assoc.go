// Package assoc implements the all-pairs eQTL/PheWAS association engine: N
// SNP-block partitions crossed with M expression phenotypes, every (SNP,
// phenotype) pair scored with the paper's marginal score statistic, and the
// result reduced to a streaming top-K plus a histogram-sketch
// Benjamini–Hochberg FDR summary — billions of tests, bounded driver state.
//
// The cross runs in one of two strategies, picked by whichever side is
// smaller:
//
//   - broadcast: the phenotype matrix is broadcast whole and each genotype
//     partition scores all phenotypes in one pass — the eQTL norm, where
//     thousands of phenotypes fit beside a partition of a much larger
//     genotype matrix;
//   - cartesian: phenotype batches become an RDD and rdd.Cartesian crosses
//     them with genotype partitions, each output partition pairing one
//     genotype partition with one batch — for phenotype matrices too large to
//     ship to every task.
//
// Both strategies visit the same pairs with the same arithmetic, so their
// results are identical; a wide multi-phenotype kernel (stats.WideKernel)
// amortises the 2-bit genotype decode across the batch, pinned bitwise
// against the per-phenotype loop.
package assoc

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
	"sparkscore/internal/stats"
)

// Config tunes an all-pairs analysis.
type Config struct {
	// Family selects the score statistic: "gaussian" (default) or
	// "binomial". Cox has no factorised variance and is not supported.
	Family string

	// TopK is the number of most-significant pairs to keep (default 100).
	TopK int

	// Alpha is the Benjamini–Hochberg false-discovery rate (default 0.05).
	Alpha float64

	// HistBins is the width of the p-value histogram sketch (default 4096).
	HistBins int

	// Strategy forces a join strategy: "auto" (default — broadcast when the
	// phenotype matrix is small enough, cartesian otherwise), "broadcast", or
	// "cartesian".
	Strategy string

	// PhenoBatch is the number of phenotypes per batch on the cartesian path
	// (default 64).
	PhenoBatch int

	// Wide selects the multi-phenotype kernel (default on). False runs the
	// per-phenotype loop — the ablation baseline the wide kernel is pinned
	// bitwise against.
	Wide *bool
}

func (c Config) family() string {
	if c.Family == "" {
		return "gaussian"
	}
	return c.Family
}

func (c Config) topK() int {
	if c.TopK == 0 {
		return 100
	}
	return c.TopK
}

func (c Config) alpha() float64 {
	if c.Alpha == 0 {
		return 0.05
	}
	return c.Alpha
}

func (c Config) histBins() int {
	if c.HistBins == 0 {
		return 4096
	}
	return c.HistBins
}

func (c Config) phenoBatch() int {
	if c.PhenoBatch == 0 {
		return 64
	}
	return c.PhenoBatch
}

func (c Config) wide() bool { return c.Wide == nil || *c.Wide }

// WithWide returns a copy of c with the wide kernel switched on or off.
func (c Config) WithWide(on bool) Config {
	c.Wide = &on
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch c.family() {
	case "gaussian", "binomial":
	default:
		return fmt.Errorf("assoc: family %q (the all-pairs engine needs a factorised variance: gaussian or binomial)", c.Family)
	}
	switch c.Strategy {
	case "", "auto", "broadcast", "cartesian":
	default:
		return fmt.Errorf("assoc: strategy %q, want auto, broadcast, or cartesian", c.Strategy)
	}
	switch {
	case c.TopK < 0:
		return fmt.Errorf("assoc: TopK = %d, must be non-negative", c.TopK)
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("assoc: Alpha = %g outside [0,1]", c.Alpha)
	case c.HistBins < 0:
		return fmt.Errorf("assoc: HistBins = %d, must be non-negative", c.HistBins)
	case c.PhenoBatch < 0:
		return fmt.Errorf("assoc: PhenoBatch = %d, must be non-negative", c.PhenoBatch)
	}
	return nil
}

// genoBlockRows is the number of SNP rows packed per block by the ingest,
// matching the marginal pipeline's block shape.
const genoBlockRows = 256

// broadcastMaxBytes is the auto-strategy cutover: phenotype matrices at or
// under this size are broadcast, larger ones go through the cartesian join.
const broadcastMaxBytes = 32 << 20

// Analysis binds a driver context to a staged genotype file and a phenotype
// matrix and runs the all-pairs cross.
type Analysis struct {
	ctx      *rdd.Context
	cfg      Config
	genoPath string
	phenos   *data.PhenoMatrix
	phenoBC  *rdd.Broadcast[*data.PhenoMatrix]
}

// NewAnalysis reads the phenotype matrix onto the driver, validates the
// configuration and the score family against it, and leaves the genotype
// matrix on the DFS to be streamed through tasks.
func NewAnalysis(ctx *rdd.Context, genoPath, phenoPath string, cfg Config) (*Analysis, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	raw, err := ctx.FS().ReadAll(phenoPath)
	if err != nil {
		return nil, err
	}
	phenos, err := data.ReadPhenoMatrix(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	// Fail fast on an unusable family before any job runs: every row must
	// build (binomial additionally requires 0/1 outcomes with both classes).
	for r := 0; r < phenos.Rows(); r++ {
		if _, err := stats.NewModel(cfg.family(), phenos.Phenotype(r)); err != nil {
			return nil, fmt.Errorf("assoc: phenotype %d: %w", phenos.IDs[r], err)
		}
	}
	if !ctx.FS().Exists(genoPath) {
		return nil, fmt.Errorf("assoc: genotype file %q not staged", genoPath)
	}
	return &Analysis{
		ctx:      ctx,
		cfg:      cfg,
		genoPath: genoPath,
		phenos:   phenos,
		phenoBC:  rdd.NewBroadcast(ctx, phenos, phenos.ApproxBytes()),
	}, nil
}

// Phenos returns the number of expression phenotypes.
func (a *Analysis) Phenos() int { return a.phenos.Rows() }

// Patients returns the cohort size.
func (a *Analysis) Patients() int { return a.phenos.Patients }

// Strategy returns the join strategy the next Run will use.
func (a *Analysis) Strategy() string {
	switch a.cfg.Strategy {
	case "broadcast", "cartesian":
		return a.cfg.Strategy
	}
	if a.phenos.ApproxBytes() <= broadcastMaxBytes {
		return "broadcast"
	}
	return "cartesian"
}

// Run executes the all-pairs cross and returns the merged result.
func (a *Analysis) Run() (*Result, error) {
	blocks, err := a.genotypeBlocks()
	if err != nil {
		return nil, err
	}
	strategy := a.Strategy()
	var parts []partial
	switch strategy {
	case "broadcast":
		parts, err = a.broadcastPartials(blocks)
	case "cartesian":
		parts, err = a.cartesianPartials(blocks)
	}
	if err != nil {
		return nil, err
	}
	res := mergePartials(parts, a.cfg.topK(), a.cfg.histBins(), a.cfg.alpha())
	res.Strategy = strategy
	res.Phenos = a.phenos.Rows()
	res.SNPBlocks = blocks.Partitions()
	return res, nil
}

// genotypeBlocks packs the genotype text into 2-bit columnar blocks at the
// source — the all-pairs ingest analyses every SNP, so unlike the SKAT
// pipeline there is no set-membership filter.
func (a *Analysis) genotypeBlocks() (*rdd.RDD[data.GenoBlock], error) {
	lines, err := a.ctx.TextFile(a.genoPath, 0)
	if err != nil {
		return nil, err
	}
	patients := a.phenos.Patients
	blocks := rdd.MapBatches(lines, "parsePackAllGenotypes", genoBlockRows, func(_ int, batch []string) data.GenoBlock {
		blk := data.NewGenoBlock(patients, len(batch))
		for _, line := range batch {
			snp, rest, err := parseSNPPrefix(line)
			if err != nil {
				panic(err)
			}
			if err := blk.AppendTextRow(snp, rest); err != nil {
				panic(fmt.Errorf("assoc: SNP %d: %v", snp, err))
			}
		}
		return blk
	})
	fullBlock := int64(genoBlockRows)*(int64(data.BlockRowBytes(patients))+8) + 96
	return blocks.SetSizeHint(fullBlock).SetSizeFunc(data.GenoBlock.ApproxBytes), nil
}

// buildModels constructs the per-phenotype score models for rows [0, Rows())
// of m. Row validity was checked at NewAnalysis time, so errors here are
// programming errors.
func buildModels(family string, m *data.PhenoMatrix) []stats.Model {
	models := make([]stats.Model, m.Rows())
	for r := range models {
		model, err := stats.NewModel(family, m.Phenotype(r))
		if err != nil {
			panic(fmt.Errorf("assoc: phenotype %d: %v", m.IDs[r], err))
		}
		models[r] = model
	}
	return models
}

// scoreBlock scores every (SNP row of blk) × (model) pair into acc, with
// phenotype ids taken from ids (parallel to models). The wide path decodes
// each row once through stats.WideKernel; the loop path decodes the row and
// then scores each phenotype independently — same values, pinned bitwise.
func scoreBlock(acc *accumulator, blk data.GenoBlock, ids []int32, models []stats.Model, wide bool, dec []data.Genotype) {
	if wide {
		k, err := stats.NewWideKernel(models)
		if err != nil {
			panic(err)
		}
		k.BlockStats(blk, func(snp int32, pheno int, score, variance float64) {
			acc.add(pairResult(snp, ids[pheno], score, variance))
		})
		return
	}
	for r := 0; r < blk.Rows(); r++ {
		stats.DecodeDosageGenotypes(blk.Row(r), dec)
		snp := blk.SNPs[r]
		for p, m := range models {
			acc.add(pairResult(snp, ids[p], stats.Score(m, dec), m.Variance(dec)))
		}
	}
}

func pairResult(snp, pheno int32, score, variance float64) PairResult {
	return PairResult{
		SNP:      snp,
		Pheno:    pheno,
		Score:    score,
		Variance: variance,
		PValue:   stats.ChiSquaredSurvival(stats.Chi2Stat(score, variance), 1),
	}
}

// broadcastPartials runs the broadcast strategy: each genotype partition
// scores the whole broadcast phenotype matrix and emits one partial.
func (a *Analysis) broadcastPartials(blocks *rdd.RDD[data.GenoBlock]) ([]partial, error) {
	bc := a.phenoBC
	family, wide := a.cfg.family(), a.cfg.wide()
	k, bins := a.cfg.topK(), a.cfg.histBins()
	partials := rdd.MapPartitions(blocks, "assocPartials", func(_ int, in []data.GenoBlock) []partial {
		m := bc.Value()
		models := buildModels(family, m)
		acc := newAccumulator(k, bins)
		dec := make([]data.Genotype, m.Patients)
		for _, blk := range in {
			scoreBlock(acc, blk, m.IDs, models, wide, dec)
		}
		return []partial{acc.partial()}
	}).SetSizeHint(int64(k)*40 + int64(bins)*8 + 64)
	return rdd.Collect(partials)
}

// cartesianPartials runs the block-join strategy: the phenotype matrix is
// split into batches, parallelised, and crossed with the genotype partitions
// through rdd.Cartesian; each output partition pairs one genotype partition
// with one batch and emits one partial.
func (a *Analysis) cartesianPartials(blocks *rdd.RDD[data.GenoBlock]) ([]partial, error) {
	batches := a.phenoBatches()
	right := rdd.Parallelize(a.ctx, batches, len(batches)).
		SetSizeFunc(data.PhenoMatrix.ApproxBytes)
	pairs := rdd.Cartesian(blocks, right)
	family, wide := a.cfg.family(), a.cfg.wide()
	k, bins := a.cfg.topK(), a.cfg.histBins()
	partials := rdd.MapPartitions(pairs, "assocPairPartials", func(_ int, in []rdd.Pair[data.GenoBlock, data.PhenoMatrix]) []partial {
		acc := newAccumulator(k, bins)
		// One batch per right partition, so the models build once per
		// partition; the guard keys on the batch's first phenotype id in case
		// a partition ever spans batches.
		var models []stats.Model
		var dec []data.Genotype
		lastBatch := int32(-1)
		for i := range in {
			batch := &in[i].Right
			if batch.Rows() == 0 {
				continue
			}
			if models == nil || batch.IDs[0] != lastBatch {
				models = buildModels(family, batch)
				lastBatch = batch.IDs[0]
				dec = make([]data.Genotype, batch.Patients)
			}
			scoreBlock(acc, in[i].Left, batch.IDs, models, wide, dec)
		}
		return []partial{acc.partial()}
	}).SetSizeHint(int64(k)*40 + int64(bins)*8 + 64)
	return rdd.Collect(partials)
}

// phenoBatches slices the phenotype matrix into batches of at most
// cfg.PhenoBatch rows. Each batch shares the parent's value storage.
func (a *Analysis) phenoBatches() []data.PhenoMatrix {
	size := a.cfg.phenoBatch()
	m := a.phenos
	var out []data.PhenoMatrix
	for lo := 0; lo < m.Rows(); lo += size {
		hi := lo + size
		if hi > m.Rows() {
			hi = m.Rows()
		}
		out = append(out, data.PhenoMatrix{
			Patients: m.Patients,
			IDs:      m.IDs[lo:hi],
			Values:   m.Values[lo*m.Patients : hi*m.Patients],
		})
	}
	return out
}

// parseSNPPrefix splits a genotype-matrix line into its SNP id and the
// genotype fields after the tab.
func parseSNPPrefix(line string) (int, string, error) {
	if strings.TrimSpace(line) == "" {
		return 0, "", fmt.Errorf("assoc: empty genotype line")
	}
	snpStr, rest, ok := strings.Cut(line, "\t")
	if !ok {
		return 0, "", fmt.Errorf("assoc: genotype line missing tab")
	}
	snp, err := strconv.Atoi(snpStr)
	if err != nil || snp < 0 {
		return 0, "", fmt.Errorf("assoc: bad SNP id %q", snpStr)
	}
	return snp, rest, nil
}
