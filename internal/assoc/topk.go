// Streaming actions of the all-pairs engine: per-partition top-K heaps and a
// fixed-width p-value histogram sketch, merged deterministically at the
// driver. Billions of (SNP, phenotype) tests flow through tasks, but what
// crosses to the driver per partition is one bounded partial — K pairs plus
// the bin counts — so result size is independent of the number of tests.
//
// Merge rules (pinned by golden tests):
//
//   - Pairs are totally ordered by (PValue, SNP, Pheno) ascending; (SNP,
//     Pheno) is unique per test, so the order has no ties and the global
//     top-K is a deterministic set regardless of partition scheduling.
//   - Partials merge by summing Tested and the histogram bins (both exactly
//     associative in int64) and re-selecting the K smallest pairs from the
//     concatenated partial tops — which equals the top-K of the full stream,
//     since any globally-top pair is necessarily in its partition's top-K.
//   - The Benjamini–Hochberg threshold comes from the sketch: with W bins
//     over [0,1] and C_b the cumulative count through bin b, the threshold is
//     the largest upper edge u_b = (b+1)/W with u_b ≤ α·C_b/m. This is
//     exactly BH run on the p-values rounded up to their bin's upper edge, so
//     the sketch is conservative: its discovery set is a subset of exact BH's,
//     and any p-value it admits exceeds the exact threshold by < 1/W.

package assoc

import (
	"container/heap"
	"sort"
)

// PairResult is one scored (SNP, phenotype) association.
type PairResult struct {
	SNP      int32
	Pheno    int32
	Score    float64
	Variance float64
	PValue   float64
}

// pairLess is the total order of the engine: most significant first, ties
// broken by SNP then phenotype id (unique per pair, so never equal).
func pairLess(a, b PairResult) bool {
	if a.PValue != b.PValue {
		return a.PValue < b.PValue
	}
	if a.SNP != b.SNP {
		return a.SNP < b.SNP
	}
	return a.Pheno < b.Pheno
}

// pairHeap is a max-heap under pairLess: the root is the worst pair kept, the
// one a better candidate evicts.
type pairHeap []PairResult

func (h pairHeap) Len() int           { return len(h) }
func (h pairHeap) Less(i, j int) bool { return pairLess(h[j], h[i]) }
func (h pairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)        { *h = append(*h, x.(PairResult)) }
func (h *pairHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// topK keeps the K smallest pairs of a stream under pairLess.
type topK struct {
	k int
	h pairHeap
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) add(p PairResult) {
	if t.k <= 0 {
		return
	}
	if len(t.h) < t.k {
		heap.Push(&t.h, p)
		return
	}
	if pairLess(p, t.h[0]) {
		t.h[0] = p
		heap.Fix(&t.h, 0)
	}
}

// sorted returns the kept pairs in ascending pairLess order.
func (t *topK) sorted() []PairResult {
	out := append([]PairResult(nil), t.h...)
	sort.Slice(out, func(i, j int) bool { return pairLess(out[i], out[j]) })
	return out
}

// histAdd counts p into its fixed-width bin over [0,1]: bin b covers
// (b/W, (b+1)/W], with p = 0 landing in bin 0.
func histAdd(h []int64, p float64) {
	idx := int(p * float64(len(h)))
	if idx >= len(h) {
		idx = len(h) - 1
	}
	if idx < 0 {
		idx = 0
	}
	h[idx]++
}

// FDR is the Benjamini–Hochberg summary computed from the histogram sketch.
type FDR struct {
	// Alpha is the target false-discovery rate.
	Alpha float64
	// Bins is the sketch width W.
	Bins int
	// Threshold is the BH p-value cutoff as a bin upper edge — declare pairs
	// with PValue ≤ Threshold significant. Zero when nothing passes.
	Threshold float64
	// Discoveries is the number of tests at or below Threshold.
	Discoveries int64
}

// bhFromHist runs BH over the sketch: the largest non-empty bin's upper edge
// u_b with u_b ≤ alpha·C_b/tested, C_b the cumulative count through bin b.
// Only bins with mass can set the threshold — their upper edge is the largest
// snapped p-value in the bin, which makes the sketch exactly BH run on the
// snapped p-values (an empty bin's edge corresponds to no test).
func bhFromHist(h []int64, tested int64, alpha float64) FDR {
	out := FDR{Alpha: alpha, Bins: len(h)}
	if tested <= 0 {
		return out
	}
	var cum int64
	w := float64(len(h))
	for b, n := range h {
		cum += n
		if n == 0 {
			continue
		}
		u := float64(b+1) / w
		if u <= alpha*float64(cum)/float64(tested) {
			out.Threshold = u
			out.Discoveries = cum
		}
	}
	return out
}

// partial is what one partition sends to the driver: its test count, its
// sorted top-K, and its p-value histogram.
type partial struct {
	Tested int64
	Top    []PairResult
	Hist   []int64
}

// accumulator builds a partial from a stream of scored pairs.
type accumulator struct {
	tested int64
	top    *topK
	hist   []int64
}

func newAccumulator(k, bins int) *accumulator {
	return &accumulator{top: newTopK(k), hist: make([]int64, bins)}
}

func (a *accumulator) add(p PairResult) {
	a.tested++
	histAdd(a.hist, p.PValue)
	a.top.add(p)
}

func (a *accumulator) partial() partial {
	return partial{Tested: a.tested, Top: a.top.sorted(), Hist: a.hist}
}

// Result is the outcome of an all-pairs association run.
type Result struct {
	// Tested is the total number of (SNP, phenotype) pairs scored.
	Tested int64
	// TopK holds the K most significant pairs in ascending pairLess order.
	TopK []PairResult
	// FDR is the sketch-based Benjamini–Hochberg summary over all tests.
	FDR FDR
	// Strategy records which join strategy ran ("broadcast" or "cartesian").
	Strategy string
	// Phenos and SNPBlocks record the input shape for reporting.
	Phenos    int
	SNPBlocks int
}

// mergePartials combines per-partition partials (in partition order, though
// the merge is order-independent) into the final result.
func mergePartials(parts []partial, k, bins int, alpha float64) *Result {
	res := &Result{}
	hist := make([]int64, bins)
	merged := newTopK(k)
	for _, p := range parts {
		res.Tested += p.Tested
		for i, n := range p.Hist {
			hist[i] += n
		}
		for _, pr := range p.Top {
			merged.add(pr)
		}
	}
	res.TopK = merged.sorted()
	res.FDR = bhFromHist(hist, res.Tested, alpha)
	return res
}
