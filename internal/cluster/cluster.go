// Package cluster models the compute resources the paper ran on: a cluster
// of Amazon EC2 instances managed by YARN, carved into executor containers
// with a fixed number of cores and amount of memory each. It is the resource
// side of the simulation; the engine asks it for executors, core slots, and
// memory budgets, and injects failures through it.
package cluster

import (
	"fmt"
	"sync"
)

// NodeSpec describes one machine type.
type NodeSpec struct {
	Name      string
	VCPUs     int
	MemGiB    float64
	StorageGB float64
}

// M3TwoXLarge is the instance type of every experiment in the paper
// (Table I: Intel Xeon E5-2670 v2, 8 vCPU, 30 GiB, 2×80 GB).
var M3TwoXLarge = NodeSpec{Name: "m3.2xlarge", VCPUs: 8, MemGiB: 30, StorageGB: 160}

// Config describes a cluster the way the paper's experiments do: a node
// count, an instance type, and a YARN container layout.
type Config struct {
	Nodes int
	Spec  NodeSpec

	// ExecutorsPerNode is the number of YARN containers started on each
	// node; CoresPerExecutor and MemPerExecutorGiB size each container
	// (the three Spark run-time flags of the auto-tuning experiment).
	ExecutorsPerNode  int
	CoresPerExecutor  int
	MemPerExecutorGiB float64

	// TotalExecutors, when positive, requests an exact cluster-wide container
	// count instead of a per-node one (the paper's Figure 7 runs 42, 84, and
	// 126 containers on 36 nodes). Containers are packed round-robin, and —
	// matching YARN's DefaultResourceCalculator, which EMR used at the time —
	// admission checks memory only, so vcores may be oversubscribed on nodes
	// holding an extra container.
	TotalExecutors int
}

// DefaultContainers fills in a conventional container layout for the spec if
// the container fields are zero: 2 executors per node, each with half the
// vCPUs and slightly less than half the memory (leaving room for the OS and
// the YARN node manager).
func (c Config) DefaultContainers() Config {
	if c.ExecutorsPerNode == 0 {
		c.ExecutorsPerNode = 2
	}
	if c.CoresPerExecutor == 0 {
		c.CoresPerExecutor = c.Spec.VCPUs / c.ExecutorsPerNode
		if c.CoresPerExecutor < 1 {
			c.CoresPerExecutor = 1
		}
	}
	if c.MemPerExecutorGiB == 0 {
		c.MemPerExecutorGiB = (c.Spec.MemGiB - 4) / float64(c.ExecutorsPerNode)
	}
	return c
}

// Validate applies the YARN-style admission checks: containers must fit on
// the node in both cores and memory.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: %d nodes", c.Nodes)
	case c.Spec.VCPUs <= 0 || c.Spec.MemGiB <= 0:
		return fmt.Errorf("cluster: invalid node spec %+v", c.Spec)
	case c.ExecutorsPerNode <= 0 || c.CoresPerExecutor <= 0 || c.MemPerExecutorGiB <= 0:
		return fmt.Errorf("cluster: invalid container layout %dx%d cores, %g GiB",
			c.ExecutorsPerNode, c.CoresPerExecutor, c.MemPerExecutorGiB)
	}
	if c.TotalExecutors > 0 {
		// DefaultResourceCalculator: memory-only admission on the fullest node.
		maxPerNode := (c.TotalExecutors + c.Nodes - 1) / c.Nodes
		if float64(maxPerNode)*c.MemPerExecutorGiB > c.Spec.MemGiB {
			return fmt.Errorf("cluster: %d containers x %g GiB exceed %g GiB on the fullest node",
				maxPerNode, c.MemPerExecutorGiB, c.Spec.MemGiB)
		}
		return nil
	}
	switch {
	case c.ExecutorsPerNode*c.CoresPerExecutor > c.Spec.VCPUs:
		return fmt.Errorf("cluster: %d containers x %d cores exceed %d vCPUs",
			c.ExecutorsPerNode, c.CoresPerExecutor, c.Spec.VCPUs)
	case float64(c.ExecutorsPerNode)*c.MemPerExecutorGiB > c.Spec.MemGiB:
		return fmt.Errorf("cluster: %d containers x %g GiB exceed %g GiB node memory",
			c.ExecutorsPerNode, c.MemPerExecutorGiB, c.Spec.MemGiB)
	}
	return nil
}

// Executor is one container: a slice of a node's cores and memory.
type Executor struct {
	ID       int
	Node     int
	Cores    int
	MemBytes int64
}

// Cluster is an instantiated set of executors.
type Cluster struct {
	cfg       Config
	executors []*Executor

	mu     sync.RWMutex
	failed []bool
}

// New builds the cluster, placing ExecutorsPerNode containers on each node.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.DefaultContainers()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	add := func(node int) {
		c.executors = append(c.executors, &Executor{
			ID:       len(c.executors),
			Node:     node,
			Cores:    cfg.CoresPerExecutor,
			MemBytes: int64(cfg.MemPerExecutorGiB * (1 << 30)),
		})
	}
	if cfg.TotalExecutors > 0 {
		for i := 0; i < cfg.TotalExecutors; i++ {
			add(i % cfg.Nodes)
		}
	} else {
		for n := 0; n < cfg.Nodes; n++ {
			for e := 0; e < cfg.ExecutorsPerNode; e++ {
				add(n)
			}
		}
	}
	c.failed = make([]bool, len(c.executors))
	return c, nil
}

// Config returns the (normalised) configuration the cluster was built from.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Executors returns all executors, including failed ones.
func (c *Cluster) Executors() []*Executor { return c.executors }

// Executor returns the executor with the given id.
func (c *Cluster) Executor(id int) *Executor { return c.executors[id] }

// TotalSlots returns the number of live core slots in the cluster.
func (c *Cluster) TotalSlots() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.totalSlotsLocked()
}

func (c *Cluster) totalSlotsLocked() int {
	s := 0
	for _, e := range c.executors {
		if !c.failed[e.ID] {
			s += e.Cores
		}
	}
	return s
}

// Live reports whether the executor is up.
func (c *Cluster) Live(id int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return !c.failed[id]
}

// LiveExecutors returns the ids of all live executors.
func (c *Cluster) LiveExecutors() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for _, e := range c.executors {
		if !c.failed[e.ID] {
			out = append(out, e.ID)
		}
	}
	return out
}

// Fail marks an executor dead. The engine reacts by dropping its cached
// blocks and shuffle outputs and re-placing its tasks — the fault-tolerance
// path the paper credits to Spark's RDD lineage.
func (c *Cluster) Fail(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.executors) {
		return fmt.Errorf("cluster: no executor %d", id)
	}
	if c.failed[id] {
		return fmt.Errorf("cluster: executor %d already failed", id)
	}
	c.failed[id] = true
	if c.totalSlotsLocked() == 0 {
		c.failed[id] = false
		return fmt.Errorf("cluster: refusing to fail the last live executor")
	}
	return nil
}

// FailNode fails every live executor on the node at once (a machine loss
// rather than a container loss), returning the ids that died. It refuses —
// restoring nothing — if the node does not exist, has no live executors, or
// failing it would leave the cluster without a live executor.
func (c *Cluster) FailNode(node int) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node < 0 || node >= c.cfg.Nodes {
		return nil, fmt.Errorf("cluster: no node %d", node)
	}
	var ids []int
	for _, e := range c.executors {
		if e.Node == node && !c.failed[e.ID] {
			ids = append(ids, e.ID)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: node %d has no live executors", node)
	}
	for _, id := range ids {
		c.failed[id] = true
	}
	if c.totalSlotsLocked() == 0 {
		for _, id := range ids {
			c.failed[id] = false
		}
		return nil, fmt.Errorf("cluster: refusing to fail the last live node")
	}
	return ids, nil
}

// ExecutorsOnNode returns the ids of live executors running on the node.
func (c *Cluster) ExecutorsOnNode(node int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []int
	for _, e := range c.executors {
		if e.Node == node && !c.failed[e.ID] {
			out = append(out, e.ID)
		}
	}
	return out
}
