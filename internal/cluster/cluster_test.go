package cluster

import "testing"

func TestNewClusterLayout(t *testing.T) {
	c, err := New(Config{Nodes: 6, Spec: M3TwoXLarge})
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.ExecutorsPerNode != 2 || cfg.CoresPerExecutor != 4 {
		t.Fatalf("default layout %dx%d, want 2x4", cfg.ExecutorsPerNode, cfg.CoresPerExecutor)
	}
	if len(c.Executors()) != 12 {
		t.Fatalf("%d executors, want 12", len(c.Executors()))
	}
	if c.TotalSlots() != 48 {
		t.Fatalf("%d slots, want 48 (6 nodes x 8 vCPU)", c.TotalSlots())
	}
	// Executors must be spread evenly over nodes.
	perNode := map[int]int{}
	for _, e := range c.Executors() {
		perNode[e.Node]++
	}
	for n := 0; n < 6; n++ {
		if perNode[n] != 2 {
			t.Fatalf("node %d has %d executors", n, perNode[n])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Spec: M3TwoXLarge},
		{Nodes: 2, Spec: NodeSpec{VCPUs: 0, MemGiB: 8}},
		{Nodes: 2, Spec: M3TwoXLarge, ExecutorsPerNode: 4, CoresPerExecutor: 4, MemPerExecutorGiB: 2},  // 16 cores > 8
		{Nodes: 2, Spec: M3TwoXLarge, ExecutorsPerNode: 2, CoresPerExecutor: 2, MemPerExecutorGiB: 20}, // 40 GiB > 30
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTableVIIIConfigsAdmitted(t *testing.T) {
	// The paper's auto-tuning containers on 36 nodes (Table VIII):
	// 42 containers x 10 GiB x 6 cores is over-subscribed per node on
	// m3.2xlarge if packed evenly (42/36 is not integral), so the experiment
	// harness models them as executors-per-node fractions rounded to the
	// nearest feasible layout; here we check the per-node layouts we map
	// them to are admissible.
	layouts := []Config{
		{Nodes: 36, Spec: M3TwoXLarge, ExecutorsPerNode: 1, CoresPerExecutor: 6, MemPerExecutorGiB: 10},
		{Nodes: 36, Spec: M3TwoXLarge, ExecutorsPerNode: 2, CoresPerExecutor: 3, MemPerExecutorGiB: 10},
		{Nodes: 36, Spec: M3TwoXLarge, ExecutorsPerNode: 3, CoresPerExecutor: 2, MemPerExecutorGiB: 8},
	}
	for i, cfg := range layouts {
		if _, err := New(cfg); err != nil {
			t.Errorf("layout %d rejected: %v", i, err)
		}
	}
}

func TestFailExecutor(t *testing.T) {
	c, err := New(Config{Nodes: 2, Spec: M3TwoXLarge})
	if err != nil {
		t.Fatal(err)
	}
	before := c.TotalSlots()
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	if c.Live(0) {
		t.Fatal("executor 0 still live after Fail")
	}
	if c.TotalSlots() != before-c.Executor(0).Cores {
		t.Fatalf("slots %d after failure, want %d", c.TotalSlots(), before-c.Executor(0).Cores)
	}
	if err := c.Fail(0); err == nil {
		t.Fatal("double failure accepted")
	}
	if err := c.Fail(99); err == nil {
		t.Fatal("unknown executor failure accepted")
	}
	live := c.LiveExecutors()
	for _, id := range live {
		if id == 0 {
			t.Fatal("failed executor listed as live")
		}
	}
}

func TestFailLastExecutorRefused(t *testing.T) {
	c, err := New(Config{Nodes: 1, Spec: M3TwoXLarge, ExecutorsPerNode: 1, CoresPerExecutor: 8, MemPerExecutorGiB: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fail(0); err == nil {
		t.Fatal("failing the last executor accepted")
	}
	if !c.Live(0) {
		t.Fatal("executor left dead after refused failure")
	}
}

func TestExecutorsOnNode(t *testing.T) {
	c, err := New(Config{Nodes: 3, Spec: M3TwoXLarge})
	if err != nil {
		t.Fatal(err)
	}
	ids := c.ExecutorsOnNode(1)
	if len(ids) != 2 {
		t.Fatalf("node 1 has %d executors, want 2", len(ids))
	}
	for _, id := range ids {
		if c.Executor(id).Node != 1 {
			t.Fatalf("executor %d not on node 1", id)
		}
	}
	if err := c.Fail(ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := c.ExecutorsOnNode(1); len(got) != 1 {
		t.Fatalf("node 1 has %d live executors after failure, want 1", len(got))
	}
}

func TestExecutorMemory(t *testing.T) {
	c, err := New(Config{Nodes: 1, Spec: M3TwoXLarge, ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Executor(0).MemBytes; got != 10<<30 {
		t.Fatalf("executor memory %d, want %d", got, int64(10)<<30)
	}
}

func TestTotalExecutorsPlacement(t *testing.T) {
	// Figure 7's 42 containers on 36 nodes: 6 nodes carry 2, the rest 1.
	c, err := New(Config{
		Nodes: 36, Spec: M3TwoXLarge,
		TotalExecutors: 42, CoresPerExecutor: 6, MemPerExecutorGiB: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Executors()) != 42 {
		t.Fatalf("%d executors, want 42", len(c.Executors()))
	}
	if c.TotalSlots() != 42*6 {
		t.Fatalf("%d slots, want %d", c.TotalSlots(), 42*6)
	}
	perNode := map[int]int{}
	for _, e := range c.Executors() {
		perNode[e.Node]++
	}
	twos := 0
	for n := 0; n < 36; n++ {
		switch perNode[n] {
		case 1:
		case 2:
			twos++
		default:
			t.Fatalf("node %d has %d executors", n, perNode[n])
		}
	}
	if twos != 6 {
		t.Fatalf("%d nodes carry 2 executors, want 6", twos)
	}
}

func TestTotalExecutorsMemoryOnlyAdmission(t *testing.T) {
	// Memory-over node rejected even under DefaultResourceCalculator.
	_, err := New(Config{
		Nodes: 2, Spec: M3TwoXLarge,
		TotalExecutors: 4, CoresPerExecutor: 1, MemPerExecutorGiB: 20,
	})
	if err == nil {
		t.Fatal("memory-oversubscribed layout accepted")
	}
	// Core oversubscription is allowed (vcores not checked).
	if _, err := New(Config{
		Nodes: 2, Spec: M3TwoXLarge,
		TotalExecutors: 4, CoresPerExecutor: 6, MemPerExecutorGiB: 10,
	}); err != nil {
		t.Fatalf("core-oversubscribed layout rejected: %v", err)
	}
}

func TestFailNode(t *testing.T) {
	c, err := New(Config{Nodes: 3, Spec: M3TwoXLarge})
	if err != nil {
		t.Fatal(err)
	}
	perNode := len(c.ExecutorsOnNode(0))
	if perNode == 0 {
		t.Fatal("node 0 carries no executors")
	}
	ids, err := c.FailNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != perNode {
		t.Fatalf("FailNode reported %d executors, node carried %d", len(ids), perNode)
	}
	for _, id := range ids {
		if c.Live(id) {
			t.Fatalf("executor %d still live after node loss", id)
		}
	}
	// A dead node cannot die twice.
	if _, err := c.FailNode(0); err == nil {
		t.Fatal("re-failing a dead node accepted")
	}
	if _, err := c.FailNode(99); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	// Killing every remaining node would leave no compute: the last one is
	// refused and stays intact.
	if _, err := c.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNode(2); err == nil {
		t.Fatal("failing the last live node accepted")
	}
	if len(c.LiveExecutors()) == 0 {
		t.Fatal("refused node loss still killed executors")
	}
}
