// Package dfs is the HDFS stand-in: named files split into fixed-size blocks
// at line boundaries, each block replicated on a configurable number of
// cluster nodes. The engine uses the block list to derive input partitions
// (one task per block, like Hadoop input splits), the block locations to
// place tasks near their data, and the block sizes to charge read costs.
//
// Block contents are held in host memory; what HDFS contributes to the
// paper's runtimes is scan cost and locality, both of which the engine models
// from the metadata kept here.
package dfs

import (
	"bytes"
	"fmt"
	"sync"

	"sparkscore/internal/rng"
)

// DefaultBlockSize is the classic HDFS block size.
const DefaultBlockSize = 128 << 20

// Block is one replicated chunk of a file, always ending on a line boundary
// (except possibly the final block).
type Block struct {
	Data      []byte
	Locations []int // node ids holding a replica
}

// File is an immutable sequence of blocks.
type File struct {
	Name   string
	Blocks []Block
	Size   int64
}

// FS is the namespace of one simulated HDFS instance. It is safe for
// concurrent use: running tasks read block locations while node failures
// rewrite them.
type FS struct {
	blockSize   int
	replication int
	nodes       int

	mu    sync.RWMutex
	files map[string]*File
	r     *rng.RNG
}

// New creates a file system spanning the given number of storage nodes.
// blockSize <= 0 selects DefaultBlockSize; replication <= 0 selects 3
// (capped at the node count).
func New(nodes, blockSize, replication int, seed uint64) (*FS, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("dfs: %d nodes", nodes)
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if replication <= 0 {
		replication = 3
	}
	if replication > nodes {
		replication = nodes
	}
	return &FS{
		blockSize:   blockSize,
		replication: replication,
		nodes:       nodes,
		files:       map[string]*File{},
		r:           rng.New(seed),
	}, nil
}

// BlockSize returns the configured block size.
func (fs *FS) BlockSize() int { return fs.blockSize }

// Replication returns the configured replication factor.
func (fs *FS) Replication() int { return fs.replication }

// Nodes returns the number of storage nodes.
func (fs *FS) Nodes() int { return fs.nodes }

// Write stores data under name, splitting it into blocks at line boundaries
// and placing replicas on distinct nodes. Writing an existing name replaces
// the file.
func (fs *FS) Write(name string, data []byte) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("dfs: empty file name")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &File{Name: name, Size: int64(len(data))}
	for off := 0; off < len(data); {
		end := off + fs.blockSize
		if end >= len(data) {
			end = len(data)
		} else {
			// Extend to the next newline so a line never straddles blocks.
			if nl := bytes.IndexByte(data[end:], '\n'); nl >= 0 {
				end += nl + 1
			} else {
				end = len(data)
			}
		}
		f.Blocks = append(f.Blocks, Block{
			Data:      data[off:end],
			Locations: fs.placeReplicas(),
		})
		off = end
	}
	if len(f.Blocks) == 0 {
		// Represent an empty file as a single empty block so readers still
		// get one (empty) partition.
		f.Blocks = append(f.Blocks, Block{Locations: fs.placeReplicas()})
	}
	fs.files[name] = f
	return f, nil
}

// WriteLocal stores data under name as a single unreplicated block pinned to
// the given node — the placement shuffle spill files want: written by the
// map task to its own machine's disk, served from there, and lost with the
// machine (DropNode leaves the block with no replica, so a later read is
// remote-or-gone, exactly a lost shuffle file). Unlike Write it never splits
// at line boundaries; spill runs are binary.
func (fs *FS) WriteLocal(name string, data []byte, node int) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("dfs: empty file name")
	}
	if node < 0 || node >= fs.nodes {
		return nil, fmt.Errorf("dfs: WriteLocal to node %d of %d", node, fs.nodes)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &File{Name: name, Size: int64(len(data))}
	f.Blocks = append(f.Blocks, Block{Data: data, Locations: []int{node}})
	fs.files[name] = f
	return f, nil
}

// placeReplicas picks replication distinct nodes, first one random (the
// "writer" node), the rest spread, mirroring HDFS's random placement for
// off-cluster writers.
func (fs *FS) placeReplicas() []int {
	perm := fs.r.Perm(fs.nodes)
	locs := make([]int, fs.replication)
	copy(locs, perm[:fs.replication])
	return locs
}

// Open returns the named file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", name)
	}
	return f, nil
}

// Exists reports whether the named file exists.
func (fs *FS) Exists(name string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok
}

// Delete removes the named file.
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("dfs: no such file %q", name)
	}
	delete(fs.files, name)
	return nil
}

// BlockLocations returns the node ids currently holding replicas of the
// file's block. Use this rather than reading Block.Locations directly when
// tasks may race with node failures: the returned slice is immutable
// (DropNode swaps in fresh slices, never edits in place).
func (fs *FS) BlockLocations(f *File, block int) []int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return f.Blocks[block].Locations
}

// DropNode removes the node from every block's replica set, as when a
// machine holding HDFS replicas is lost. Block contents survive (the
// simulation keeps them in host memory, standing in for HDFS re-replication
// from surviving copies), but locality is gone: a block with no remaining
// replica is remote to every reader.
func (fs *FS) DropNode(node int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		for i, blk := range f.Blocks {
			keep := make([]int, 0, len(blk.Locations))
			for _, n := range blk.Locations {
				if n != node {
					keep = append(keep, n)
				}
			}
			f.Blocks[i].Locations = keep
		}
	}
}

// ReadAll concatenates all blocks of the named file.
func (fs *FS) ReadAll(name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, f.Size)
	for _, b := range f.Blocks {
		out = append(out, b.Data...)
	}
	return out, nil
}

// List returns the names of all files.
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	return names
}
