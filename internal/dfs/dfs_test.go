package dfs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"sparkscore/internal/rng"
)

func mustFS(t *testing.T, nodes, blockSize, replication int) *FS {
	t.Helper()
	fs, err := New(nodes, blockSize, replication, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := mustFS(t, 4, 16, 2)
	content := []byte("line one\nline two\nline three\nline four is longer\n")
	if _, err := fs.Write("f", content); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("round trip mismatch:\n%q\n%q", got, content)
	}
}

func TestBlocksEndOnLineBoundaries(t *testing.T) {
	fs := mustFS(t, 3, 10, 1)
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "row %d with some padding\n", i)
	}
	f, err := fs.Write("f", []byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(f.Blocks))
	}
	for i, b := range f.Blocks[:len(f.Blocks)-1] {
		if len(b.Data) == 0 || b.Data[len(b.Data)-1] != '\n' {
			t.Fatalf("block %d does not end on a newline", i)
		}
	}
}

func TestReplicationPlacement(t *testing.T) {
	fs := mustFS(t, 5, 8, 3)
	f, err := fs.Write("f", []byte("aaaa\nbbbb\ncccc\ndddd\neeee\n"))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range f.Blocks {
		if len(b.Locations) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", i, len(b.Locations))
		}
		seen := map[int]bool{}
		for _, n := range b.Locations {
			if n < 0 || n >= 5 {
				t.Fatalf("block %d replica on node %d outside cluster", i, n)
			}
			if seen[n] {
				t.Fatalf("block %d has duplicate replica on node %d", i, n)
			}
			seen[n] = true
		}
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	fs := mustFS(t, 2, 8, 5)
	if fs.Replication() != 2 {
		t.Fatalf("replication %d, want capped to 2", fs.Replication())
	}
}

func TestEmptyFileHasOnePartition(t *testing.T) {
	fs := mustFS(t, 2, 8, 1)
	f, err := fs.Write("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("empty file has %d blocks, want 1", len(f.Blocks))
	}
}

func TestOpenDeleteExists(t *testing.T) {
	fs := mustFS(t, 2, 8, 1)
	if fs.Exists("f") {
		t.Fatal("nonexistent file reported")
	}
	if _, err := fs.Open("f"); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
	if _, err := fs.Write("f", []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("f") {
		t.Fatal("written file missing")
	}
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("f") {
		t.Fatal("deleted file still exists")
	}
	if err := fs.Delete("f"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestOverwriteReplaces(t *testing.T) {
	fs := mustFS(t, 2, 8, 1)
	fs.Write("f", []byte("old content\n"))
	fs.Write("f", []byte("new\n"))
	got, _ := fs.ReadAll("f")
	if string(got) != "new\n" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestList(t *testing.T) {
	fs := mustFS(t, 2, 8, 1)
	fs.Write("a", []byte("1\n"))
	fs.Write("b", []byte("2\n"))
	names := fs.List()
	if len(names) != 2 {
		t.Fatalf("List = %v", names)
	}
}

func TestWriteRejectsEmptyName(t *testing.T) {
	fs := mustFS(t, 2, 8, 1)
	if _, err := fs.Write("", []byte("x")); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8, 1, 1); err == nil {
		t.Fatal("zero nodes accepted")
	}
	fs, err := New(3, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fs.BlockSize() != DefaultBlockSize {
		t.Fatalf("default block size %d", fs.BlockSize())
	}
	if fs.Replication() != 3 {
		t.Fatalf("default replication %d", fs.Replication())
	}
}

func TestRoundTripProperty(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		fs, err := New(rr.Intn(5)+1, rr.Intn(30)+5, rr.Intn(3)+1, seed)
		if err != nil {
			return false
		}
		var sb strings.Builder
		lines := rr.Intn(40)
		for i := 0; i < lines; i++ {
			fmt.Fprintf(&sb, "%d\t%d\n", i, rr.Intn(1000))
		}
		content := []byte(sb.String())
		if _, err := fs.Write("f", content); err != nil {
			return false
		}
		got, err := fs.ReadAll("f")
		if err != nil {
			return false
		}
		return bytes.Equal(got, content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDropNodeRemovesReplicas(t *testing.T) {
	fs, err := New(4, 32, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "line-%03d\n", i)
	}
	content := []byte(sb.String())
	f, err := fs.Write("f", content)
	if err != nil {
		t.Fatal(err)
	}
	hadOnNode0 := false
	for b := range f.Blocks {
		for _, n := range fs.BlockLocations(f, b) {
			if n == 0 {
				hadOnNode0 = true
			}
		}
	}
	if !hadOnNode0 {
		t.Fatal("replica placement never used node 0; test needs a different seed")
	}
	fs.DropNode(0)
	for b := range f.Blocks {
		for _, n := range fs.BlockLocations(f, b) {
			if n == 0 {
				t.Fatalf("block %d still lists dropped node 0", b)
			}
		}
	}
	// Contents survive (HDFS re-replicates from surviving copies).
	got, err := fs.ReadAll("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("file contents changed after DropNode")
	}
}

func TestBlockLocationsSafeUnderConcurrentDrop(t *testing.T) {
	fs, err := New(6, 64, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "line-%04d\n", i)
	}
	f, err := fs.Write("f", []byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < 5; n++ {
			fs.DropNode(n)
		}
	}()
	for i := 0; i < 1000; i++ {
		for b := range f.Blocks {
			locs := fs.BlockLocations(f, b)
			for _, n := range locs {
				if n < 0 || n >= 6 {
					t.Fatalf("corrupt location %d", n)
				}
			}
		}
	}
	<-done
}
