// Serving pools: the JSON-configurable counterpart of Spark's
// fairscheduler.xml, extended with the admission-control knobs a long-running
// driver service needs. Each pool carries the two scheduling parameters Spark
// defines (weight, minShare) plus two serving parameters Spark leaves to
// external gateways: how many requests may run concurrently and how many may
// queue behind them before the server pushes back with 429.

package server

import (
	"encoding/json"
	"fmt"
	"io"

	"sparkscore/internal/rdd"
)

// Defaults applied to pool fields left zero.
const (
	DefaultMaxQueue      = 16
	DefaultMaxConcurrent = 4
)

// PoolConfig declares one serving pool.
type PoolConfig struct {
	Name string `json:"name"`
	// Weight is the pool's FAIR share relative to other pools (0 selects 1).
	Weight int `json:"weight,omitempty"`
	// MinShare is the core-slot floor the pool is raised to while it has
	// running jobs.
	MinShare int `json:"minShare,omitempty"`
	// MaxConcurrent caps how many requests from this pool run at once
	// (0 selects DefaultMaxConcurrent).
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// MaxQueue caps how many admitted requests may wait behind the running
	// ones; a request arriving beyond the cap is rejected with 429
	// (0 selects DefaultMaxQueue, -1 means no queueing at all).
	MaxQueue int `json:"maxQueue,omitempty"`
}

func (p PoolConfig) maxConcurrent() int {
	if p.MaxConcurrent <= 0 {
		return DefaultMaxConcurrent
	}
	return p.MaxConcurrent
}

func (p PoolConfig) maxQueue() int {
	switch {
	case p.MaxQueue < 0:
		return 0
	case p.MaxQueue == 0:
		return DefaultMaxQueue
	}
	return p.MaxQueue
}

// ParsePools decodes a JSON array of pool declarations, e.g.
//
//	[{"name":"interactive","weight":3,"minShare":8,"maxConcurrent":8},
//	 {"name":"batch","weight":1,"maxQueue":4}]
func ParsePools(r io.Reader) ([]PoolConfig, error) {
	var pools []PoolConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pools); err != nil {
		return nil, fmt.Errorf("server: parsing pools: %w", err)
	}
	seen := map[string]bool{}
	for _, p := range pools {
		if p.Name == "" {
			return nil, fmt.Errorf("server: pool with empty name")
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("server: duplicate pool %q", p.Name)
		}
		seen[p.Name] = true
	}
	return pools, nil
}

// SchedulerConfig converts the serving pools into the engine's scheduler
// configuration: the scheduling half (weight, minShare) goes to the job
// arbiter; the admission half (maxConcurrent, maxQueue) stays in the server.
func SchedulerConfig(mode rdd.SchedulerMode, pools []PoolConfig) rdd.SchedulerConfig {
	cfg := rdd.SchedulerConfig{Mode: mode}
	for _, p := range pools {
		cfg.Pools = append(cfg.Pools, rdd.PoolSpec{
			Name: p.Name, Weight: p.Weight, MinShare: p.MinShare,
		})
	}
	return cfg
}
