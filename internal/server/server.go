// Package server is the SparkScore job server: a long-running driver service
// that accepts score, SKAT, resampling, and all-pairs eQTL requests over
// HTTP/JSON and runs them as concurrent jobs against one shared rdd.Context — the repo's
// counterpart of keeping a Spark driver alive behind a REST gateway (Livy,
// spark-jobserver) instead of spawning spark-submit per analysis.
//
// Three layers stack on the engine's multi-job scheduler:
//
//   - Scheduling: every request names a pool; the request's jobs are
//     submitted under rdd.Context.RunInPool, so the engine's FIFO/FAIR
//     arbiter (weight, minShare) decides how concurrent requests share the
//     cluster's virtual core slots.
//   - Admission: each pool additionally caps how many requests run at once
//     and how many may queue behind them. A request beyond the queue cap is
//     rejected immediately with 429 and a Retry-After estimated from the
//     pool's recent service times; during drain every new request gets 503.
//   - Caching: results are cached under a fingerprint of the request's
//     lineage-determining parameters and revalidated against the engine's
//     storage epoch, so injected node loss invalidates exactly the entries
//     whose backing blocks died (see cache.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"sparkscore/internal/assoc"
	"sparkscore/internal/core"
	"sparkscore/internal/rdd"
)

// Config assembles a Server.
type Config struct {
	// Context is the shared driver context; its SchedulerConfig decides
	// FIFO/FAIR and the pool weights (see SchedulerConfig in pools.go).
	Context *rdd.Context
	// Analysis is the staged analysis every request runs against.
	Analysis *core.Analysis
	// EQTL, when set, enables the /v1/eqtl endpoint: the all-pairs association
	// analysis its paginated requests run against. Left nil, the endpoint
	// answers 501.
	EQTL *assoc.Analysis
	// Pools declares the serving pools. Requests naming an undeclared pool
	// fall into an implicit pool with default limits, as the engine does for
	// scheduling.
	Pools []PoolConfig
	// CacheEntries caps the result cache (0 selects 64).
	CacheEntries int
	// Tuner, if set, is invoked after every successfully served request —
	// between jobs, never during one — so an online controller (tuner.Online)
	// can retune the context from the jobs it just observed.
	Tuner Retuner
}

// Retuner is the server's view of the online tuner: one control step between
// jobs. Declared here (rather than importing internal/tuner) so the serving
// layer depends only on the interface.
type Retuner interface {
	Retune() (parallelism int, changed bool)
}

// Server handles job requests against one Context + Analysis pair.
type Server struct {
	ctx      *rdd.Context
	analysis *core.Analysis
	cache    *resultCache
	mux      *http.ServeMux
	tuner    Retuner

	// eqtl is the optional all-pairs analysis behind /v1/eqtl; the memo holds
	// its last full result so pages are sliced, not recomputed (see eqtl.go).
	eqtl      *assoc.Analysis
	eqtlMu    sync.Mutex
	eqtlRes   *assoc.Result
	eqtlEpoch uint64

	tuneMu  sync.Mutex
	retunes uint64
	tunedTo int

	poolMu    sync.Mutex
	pools     map[string]*servingPool
	poolOrder []string

	stateMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	statMu      sync.Mutex
	reqSeq      uint64
	rejected429 uint64
	rejected503 uint64
	timedOut408 uint64
	closed499   uint64
	recent      []RequestRecord
}

// StatusClientClosedRequest is the nginx-convention status recorded when the
// client disconnected before its job finished. It is never written to a live
// connection (there is none left); it appears in /v1/jobs records and stats.
const StatusClientClosedRequest = 499

// New builds a Server over an already-staged analysis.
func New(cfg Config) (*Server, error) {
	if cfg.Context == nil || cfg.Analysis == nil {
		return nil, fmt.Errorf("server: Config needs both Context and Analysis")
	}
	s := &Server{
		ctx:      cfg.Context,
		analysis: cfg.Analysis,
		eqtl:     cfg.EQTL,
		cache:    newResultCache(cfg.CacheEntries),
		pools:    map[string]*servingPool{},
		tuner:    cfg.Tuner,
	}
	for _, p := range cfg.Pools {
		if _, ok := s.pools[p.Name]; ok {
			return nil, fmt.Errorf("server: duplicate pool %q", p.Name)
		}
		s.addPool(p)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/score", func(w http.ResponseWriter, r *http.Request) {
		s.serveJob(w, r, "score", &scoreRequest{})
	})
	s.mux.HandleFunc("/v1/skat", func(w http.ResponseWriter, r *http.Request) {
		s.serveJob(w, r, "skat", &skatRequest{})
	})
	s.mux.HandleFunc("/v1/resample", func(w http.ResponseWriter, r *http.Request) {
		s.serveJob(w, r, "resample", &resampleRequest{})
	})
	s.mux.HandleFunc("/v1/eqtl", func(w http.ResponseWriter, r *http.Request) {
		if s.eqtl == nil {
			writeError(w, &httpError{status: http.StatusNotImplemented,
				msg: "no all-pairs analysis configured (start the server with a phenotype matrix)"})
			return
		}
		s.serveJob(w, r, "eqtl", &eqtlRequest{srv: s})
	})
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting new requests (they get 503) and blocks until every
// in-flight request has finished, honouring ctx for a deadline. It is the
// graceful half of shutdown; pair it with http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.stateMu.Lock()
	s.draining = true
	s.stateMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.draining
}

// ---- pools & admission ----

type servingPool struct {
	cfg   PoolConfig
	slots chan struct{} // buffered to maxConcurrent; holding a token = running

	mu      sync.Mutex
	queued  int
	served  uint64
	ewmaSec float64 // EWMA of request wall seconds, drives Retry-After
}

func (s *Server) addPool(cfg PoolConfig) *servingPool {
	p := &servingPool{cfg: cfg, slots: make(chan struct{}, cfg.maxConcurrent())}
	s.pools[cfg.Name] = p
	s.poolOrder = append(s.poolOrder, cfg.Name)
	return p
}

// pool resolves a request's pool name, creating an implicit default-limit
// pool on first use (empty names mean the engine's default pool).
func (s *Server) pool(name string) *servingPool {
	if name == "" {
		name = rdd.DefaultPool
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if p, ok := s.pools[name]; ok {
		return p
	}
	return s.addPool(PoolConfig{Name: name})
}

// httpError carries a rejection to the response writer.
type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; >0 adds a Retry-After header
}

// admit applies admission control for one request: 503 while draining, 429
// (with Retry-After) when the pool's queue is full, otherwise it blocks until
// a concurrency slot frees up and returns the wall seconds spent waiting. A
// queued request whose ctx ends (per-request deadline, client disconnect)
// gives its queue spot back and is rejected with the deadline/disconnect
// error. The caller must invoke release() when the request finishes.
func (s *Server) admit(ctx context.Context, p *servingPool) (queueSec float64, herr *httpError) {
	s.stateMu.Lock()
	if s.draining {
		s.stateMu.Unlock()
		s.note503()
		return 0, &httpError{status: http.StatusServiceUnavailable, msg: "server draining"}
	}
	s.inflight.Add(1)
	s.stateMu.Unlock()

	select {
	case p.slots <- struct{}{}:
		return 0, nil
	default:
	}
	p.mu.Lock()
	if p.queued >= p.cfg.maxQueue() {
		retry := p.retryAfterLocked()
		p.mu.Unlock()
		s.inflight.Done()
		s.note429()
		return 0, &httpError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("pool %q queue full (%d waiting)", p.cfg.Name, p.cfg.maxQueue()),
			retryAfter: retry,
		}
	}
	p.queued++
	p.mu.Unlock()
	start := time.Now()
	select {
	case p.slots <- struct{}{}:
		p.mu.Lock()
		p.queued--
		p.mu.Unlock()
		return time.Since(start).Seconds(), nil
	case <-ctx.Done():
		p.mu.Lock()
		p.queued--
		p.mu.Unlock()
		s.inflight.Done()
		return time.Since(start).Seconds(), s.cancelError(ctx, p)
	}
}

// cancelError classifies a request context's end: 408 with a Retry-After for
// an exceeded timeout_ms deadline, 499 for a client disconnect.
func (s *Server) cancelError(ctx context.Context, p *servingPool) *httpError {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.statMu.Lock()
		s.timedOut408++
		s.statMu.Unlock()
		p.mu.Lock()
		retry := p.retryAfterLocked()
		p.mu.Unlock()
		return &httpError{
			status:     http.StatusRequestTimeout,
			msg:        "timeout_ms exceeded; job cancelled",
			retryAfter: retry,
		}
	}
	s.statMu.Lock()
	s.closed499++
	s.statMu.Unlock()
	return &httpError{status: StatusClientClosedRequest, msg: "client closed request; job cancelled"}
}

// release returns the slot and folds the request's wall time into the pool's
// service-time estimate.
func (s *Server) release(p *servingPool, wallSec float64) {
	<-p.slots
	p.mu.Lock()
	p.served++
	if p.ewmaSec == 0 {
		p.ewmaSec = wallSec
	} else {
		p.ewmaSec = 0.7*p.ewmaSec + 0.3*wallSec
	}
	p.mu.Unlock()
	s.inflight.Done()
}

// retryAfterLocked estimates when a queue slot should open: the backlog ahead
// of the caller divided by the pool's concurrency, times the recent service
// time. Requires p.mu.
func (p *servingPool) retryAfterLocked() int {
	est := p.ewmaSec
	if est == 0 {
		est = 1
	}
	backlog := float64(p.queued+len(p.slots)) / float64(p.cfg.maxConcurrent())
	sec := int(math.Ceil(est * backlog))
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) note429() { s.statMu.Lock(); s.rejected429++; s.statMu.Unlock() }
func (s *Server) note503() { s.statMu.Lock(); s.rejected503++; s.statMu.Unlock() }

// ---- job endpoints ----

// jobRequest is one decoded POST body: where it runs, what distinguishes its
// result, and how to compute it.
type jobRequest interface {
	pool() string
	validate() error
	// fingerprintParts lists everything (besides the server's fixed Analysis)
	// that determines the result; the pool is deliberately absent — it moves
	// work between queues, never changes the answer. timeout_ms is likewise
	// absent: it bounds how long the caller waits, never the answer itself.
	fingerprintParts(endpoint string) []string
	// timeout is the per-request deadline from timeout_ms (0 = none).
	timeout() time.Duration
	run(a *core.Analysis) (any, error)
}

// Response is the envelope every job endpoint returns.
type Response struct {
	Request  uint64 `json:"request"`
	Endpoint string `json:"endpoint"`
	Pool     string `json:"pool"`
	Cached   bool   `json:"cached"`
	// QueueSeconds is wall time spent waiting for a pool slot.
	QueueSeconds float64 `json:"queueSeconds"`
	// VirtualSeconds spans the request's jobs on the simulated cluster clock
	// (first admission to last JobEnd); VirtualQueueSeconds is how long the
	// request waited on that clock before its first job was admitted — under
	// FIFO this is the time spent behind other requests' jobs.
	VirtualSeconds      float64         `json:"virtualSeconds"`
	VirtualQueueSeconds float64         `json:"virtualQueueSeconds"`
	Jobs                int             `json:"jobs"`
	Result              json.RawMessage `json:"result"`
}

// RequestRecord is one finished (or rejected) request in the /v1/jobs log.
type RequestRecord struct {
	ID             uint64  `json:"id"`
	Endpoint       string  `json:"endpoint"`
	Pool           string  `json:"pool"`
	Status         int     `json:"status"`
	Cached         bool    `json:"cached"`
	WallSeconds    float64 `json:"wallSeconds"`
	QueueSeconds   float64 `json:"queueSeconds"`
	VirtualSeconds float64 `json:"virtualSeconds"`
	Jobs           int     `json:"jobs"`
	Error          string  `json:"error,omitempty"`
}

const recentCap = 128

func (s *Server) record(rec RequestRecord) {
	s.statMu.Lock()
	s.recent = append(s.recent, rec)
	if len(s.recent) > recentCap {
		s.recent = s.recent[len(s.recent)-recentCap:]
	}
	s.statMu.Unlock()
}

func (s *Server) nextRequestID() uint64 {
	s.statMu.Lock()
	s.reqSeq++
	id := s.reqSeq
	s.statMu.Unlock()
	return id
}

// serveJob is the shared request path: decode, consult the cache, pass
// admission control, run the work in the request's pool while observing its
// job spans, cache, and respond.
func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, endpoint string, req jobRequest) {
	if r.Method != http.MethodPost {
		writeError(w, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "bad request body: " + err.Error()})
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: err.Error()})
		return
	}
	if req.timeout() < 0 {
		writeError(w, &httpError{status: http.StatusBadRequest, msg: "timeout_ms must be >= 0"})
		return
	}
	id := s.nextRequestID()
	poolName := req.pool()
	if poolName == "" {
		poolName = rdd.DefaultPool
	}
	resp := Response{Request: id, Endpoint: endpoint, Pool: poolName}

	// A draining server rejects all new requests, cached or not: the 503 is
	// the signal that this instance is going away.
	if s.Draining() {
		s.note503()
		herr := &httpError{status: http.StatusServiceUnavailable, msg: "server draining"}
		writeError(w, herr)
		s.record(RequestRecord{ID: id, Endpoint: endpoint, Pool: poolName, Status: herr.status, Error: herr.msg})
		return
	}

	fp := Fingerprint(req.fingerprintParts(endpoint)...)
	if body, ok := s.cache.get(fp, s.ctx.StorageEpoch()); ok {
		resp.Cached = true
		resp.Result = body
		writeJSON(w, http.StatusOK, resp)
		s.record(RequestRecord{ID: id, Endpoint: endpoint, Pool: poolName, Status: http.StatusOK, Cached: true})
		return
	}

	p := s.pool(poolName)
	// The request context ends when the client disconnects; timeout_ms layers
	// a server-side deadline on top. Either way the job is cancelled at its
	// next task boundary and the pool slot is returned.
	cctx := r.Context()
	if d := req.timeout(); d > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(cctx, d)
		defer cancel()
	}
	start := time.Now()
	queueSec, herr := s.admit(cctx, p)
	if herr != nil {
		writeError(w, herr)
		s.record(RequestRecord{ID: id, Endpoint: endpoint, Pool: poolName, Status: herr.status,
			QueueSeconds: queueSec, Error: herr.msg})
		return
	}

	clock0 := s.ctx.VirtualTime()
	type outcome struct {
		payload any
		spans   []rdd.JobSpan
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		var payload any
		spans, err := s.ctx.ObserveJobs(func() error {
			return s.ctx.RunWithCancel(cctx, func() error {
				return s.ctx.RunInPool(poolName, func() error {
					var werr error
					payload, werr = req.run(s.analysis)
					return werr
				})
			})
		})
		done <- outcome{payload: payload, spans: spans, err: err}
	}()

	var out outcome
	select {
	case out = <-done:
	case <-cctx.Done():
		// Answer the client within its deadline; the engine aborts the job at
		// the next task boundary, and only then is the slot handed back.
		herr := s.cancelError(cctx, p)
		go func() {
			<-done
			s.release(p, time.Since(start).Seconds())
		}()
		writeError(w, herr)
		s.record(RequestRecord{ID: id, Endpoint: endpoint, Pool: poolName, Status: herr.status,
			WallSeconds: time.Since(start).Seconds(), QueueSeconds: queueSec, Error: herr.msg})
		return
	}
	wallSec := time.Since(start).Seconds()
	s.release(p, wallSec)
	payload, spans, err := out.payload, out.spans, out.err

	rec := RequestRecord{
		ID: id, Endpoint: endpoint, Pool: poolName,
		WallSeconds: wallSec, QueueSeconds: queueSec, Jobs: len(spans),
	}
	if len(spans) > 0 {
		minStart, maxEnd := spans[0].StartVirtual, spans[0].EndVirtual
		for _, sp := range spans[1:] {
			if sp.StartVirtual < minStart {
				minStart = sp.StartVirtual
			}
			if sp.EndVirtual > maxEnd {
				maxEnd = sp.EndVirtual
			}
		}
		resp.VirtualSeconds = maxEnd - minStart
		if vq := minStart - clock0; vq > 0 {
			resp.VirtualQueueSeconds = vq
		}
	}
	rec.VirtualSeconds = resp.VirtualSeconds
	if err != nil {
		// A job the request's own context cancelled is the client's doing
		// (deadline or disconnect), not a server failure.
		var jc *rdd.JobCancelledError
		herr := &httpError{status: http.StatusInternalServerError, msg: err.Error()}
		if errors.As(err, &jc) && cctx.Err() != nil {
			herr = s.cancelError(cctx, p)
		}
		rec.Status, rec.Error = herr.status, herr.msg
		s.record(rec)
		writeError(w, herr)
		return
	}
	body, err := json.Marshal(payload)
	if err != nil {
		rec.Status, rec.Error = http.StatusInternalServerError, err.Error()
		s.record(rec)
		writeError(w, &httpError{status: http.StatusInternalServerError, msg: err.Error()})
		return
	}
	// Stamp the entry with the epoch after the run: any blocks the result
	// rests on were live at completion, and a later fault bumps the epoch and
	// invalidates it.
	s.cache.put(fp, s.ctx.StorageEpoch(), body)
	s.maybeRetune()
	resp.QueueSeconds = queueSec
	resp.Jobs = len(spans)
	resp.Result = body
	rec.Status = http.StatusOK
	s.record(rec)
	writeJSON(w, http.StatusOK, resp)
}

// maybeRetune runs one online-tuner control step after a served request. The
// request's own jobs have ended, so the new parallelism only shapes future
// plans.
func (s *Server) maybeRetune() {
	if s.tuner == nil {
		return
	}
	if n, changed := s.tuner.Retune(); changed {
		s.tuneMu.Lock()
		s.retunes++
		s.tunedTo = n
		s.tuneMu.Unlock()
	}
}

// ---- request types ----

type scoreRequest struct {
	PoolName  string `json:"pool,omitempty"`
	Top       int    `json:"top,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (r *scoreRequest) pool() string           { return r.PoolName }
func (r *scoreRequest) timeout() time.Duration { return time.Duration(r.TimeoutMS) * time.Millisecond }
func (r *scoreRequest) validate() error {
	if r.Top < 0 {
		return fmt.Errorf("top must be >= 0")
	}
	return nil
}
func (r *scoreRequest) fingerprintParts(endpoint string) []string {
	return []string{endpoint, fmt.Sprintf("top=%d", r.Top)}
}

// ScoreRow is one SNP's asymptotic score test in a score response.
type ScoreRow struct {
	SNP      int     `json:"snp"`
	Score    float64 `json:"score"`
	Variance float64 `json:"variance"`
	PValue   float64 `json:"pValue"`
}

func (r *scoreRequest) run(a *core.Analysis) (any, error) {
	results, err := a.MarginalAsymptotic()
	if err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].PValue != results[j].PValue {
			return results[i].PValue < results[j].PValue
		}
		return results[i].SNP < results[j].SNP
	})
	if r.Top > 0 && r.Top < len(results) {
		results = results[:r.Top]
	}
	rows := make([]ScoreRow, len(results))
	for i, m := range results {
		rows[i] = ScoreRow{SNP: m.SNP, Score: m.Score, Variance: m.Variance, PValue: m.PValue}
	}
	return map[string]any{"snps": rows}, nil
}

type skatRequest struct {
	PoolName  string `json:"pool,omitempty"`
	Top       int    `json:"top,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (r *skatRequest) pool() string           { return r.PoolName }
func (r *skatRequest) timeout() time.Duration { return time.Duration(r.TimeoutMS) * time.Millisecond }
func (r *skatRequest) validate() error {
	if r.Top < 0 {
		return fmt.Errorf("top must be >= 0")
	}
	return nil
}
func (r *skatRequest) fingerprintParts(endpoint string) []string {
	return []string{endpoint, fmt.Sprintf("top=%d", r.Top)}
}

// SKATRow is one SNP-set's asymptotic test in a skat response.
type SKATRow struct {
	Name     string  `json:"name"`
	SNPs     int     `json:"snps"`
	Observed float64 `json:"observed"`
	PValue   float64 `json:"pValue"`
}

func (r *skatRequest) run(a *core.Analysis) (any, error) {
	results, err := a.SetAsymptotic()
	if err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].PValue != results[j].PValue {
			return results[i].PValue < results[j].PValue
		}
		return results[i].Name < results[j].Name
	})
	if r.Top > 0 && r.Top < len(results) {
		results = results[:r.Top]
	}
	rows := make([]SKATRow, len(results))
	for i, m := range results {
		rows[i] = SKATRow{Name: m.Name, SNPs: m.SNPs, Observed: m.Observed, PValue: m.PValue}
	}
	return map[string]any{"sets": rows}, nil
}

type resampleRequest struct {
	PoolName   string `json:"pool,omitempty"`
	Method     string `json:"method"`
	Iterations int    `json:"iterations,omitempty"`
	Replicate  uint64 `json:"replicate,omitempty"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
}

func (r *resampleRequest) pool() string { return r.PoolName }
func (r *resampleRequest) timeout() time.Duration {
	return time.Duration(r.TimeoutMS) * time.Millisecond
}
func (r *resampleRequest) validate() error {
	switch r.Method {
	case "mc", "perm":
		if r.Iterations <= 0 {
			return fmt.Errorf("method %q needs iterations > 0", r.Method)
		}
	case "replicate":
		if r.Replicate == 0 {
			return fmt.Errorf(`method "replicate" needs replicate > 0`)
		}
	default:
		return fmt.Errorf(`method must be "mc", "perm", or "replicate"`)
	}
	return nil
}
func (r *resampleRequest) fingerprintParts(endpoint string) []string {
	return []string{endpoint, r.Method, fmt.Sprintf("iters=%d rep=%d", r.Iterations, r.Replicate)}
}

// ResampleSet is one SNP-set's line of a full resampling response.
type ResampleSet struct {
	Name     string  `json:"name"`
	Observed float64 `json:"observed"`
	Exceed   int     `json:"exceed"`
	PValue   float64 `json:"pValue"`
}

func (r *resampleRequest) run(a *core.Analysis) (any, error) {
	if r.Method == "replicate" {
		stats, err := a.Replicate(r.Replicate)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(a.Sets()))
		for k, set := range a.Sets() {
			names[k] = set.Name
		}
		return map[string]any{"replicate": r.Replicate, "sets": names, "statistics": stats}, nil
	}
	var res *core.Result
	var err error
	if r.Method == "mc" {
		res, err = a.MonteCarlo(r.Iterations)
	} else {
		res, err = a.Permutation(r.Iterations)
	}
	if err != nil {
		return nil, err
	}
	rows := make([]ResampleSet, len(res.Observed))
	for k := range rows {
		rows[k] = ResampleSet{Name: res.Sets[k].Name, Observed: res.Observed[k], Exceed: res.Exceed[k]}
		if res.PValues != nil {
			rows[k].PValue = res.PValues[k]
		}
	}
	return map[string]any{"iterations": res.Iterations, "sets": rows}, nil
}

// ---- introspection endpoints ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"mode":        s.ctx.SchedulerMode().String(),
		"virtualTime": s.ctx.VirtualTime(),
	})
}

// PoolStats is one pool's line in /v1/stats.
type PoolStats struct {
	Name          string `json:"name"`
	Weight        int    `json:"weight"`
	MinShare      int    `json:"minShare"`
	MaxConcurrent int    `json:"maxConcurrent"`
	MaxQueue      int    `json:"maxQueue"`
	Running       int    `json:"running"`
	Queued        int    `json:"queued"`
	Served        uint64 `json:"served"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.poolMu.Lock()
	pools := make([]PoolStats, 0, len(s.poolOrder))
	for _, name := range s.poolOrder {
		p := s.pools[name]
		p.mu.Lock()
		weight := p.cfg.Weight
		if weight <= 0 {
			weight = 1
		}
		pools = append(pools, PoolStats{
			Name: name, Weight: weight, MinShare: p.cfg.MinShare,
			MaxConcurrent: p.cfg.maxConcurrent(), MaxQueue: p.cfg.maxQueue(),
			Running: len(p.slots), Queued: p.queued, Served: p.served,
		})
		p.mu.Unlock()
	}
	s.poolMu.Unlock()
	s.statMu.Lock()
	requests, r429, r503 := s.reqSeq, s.rejected429, s.rejected503
	t408, c499 := s.timedOut408, s.closed499
	s.statMu.Unlock()
	s.tuneMu.Lock()
	retunes := s.retunes
	s.tuneMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":               s.ctx.SchedulerMode().String(),
		"draining":           s.Draining(),
		"virtualTime":        s.ctx.VirtualTime(),
		"storageEpoch":       s.ctx.StorageEpoch(),
		"completedJobs":      len(s.ctx.Jobs()),
		"requests":           requests,
		"rejected429":        r429,
		"rejected503":        r503,
		"timedOut408":        t408,
		"disconnected499":    c499,
		"defaultParallelism": s.ctx.DefaultParallelism(),
		"retunes":            retunes,
		"pools":              pools,
		"cache":              s.cache.stats(),
	})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	type jobLine struct {
		Action         string  `json:"action"`
		RDD            string  `json:"rdd"`
		Stages         int     `json:"stages"`
		Tasks          int     `json:"tasks"`
		VirtualSeconds float64 `json:"virtualSeconds"`
	}
	jobs := s.ctx.Jobs()
	lines := make([]jobLine, len(jobs))
	for i, j := range jobs {
		lines[i] = jobLine{
			Action: j.Action, RDD: j.RDD, Stages: j.Stages, Tasks: j.Tasks,
			VirtualSeconds: j.VirtualSeconds,
		}
	}
	s.statMu.Lock()
	recent := make([]RequestRecord, len(s.recent))
	copy(recent, s.recent)
	s.statMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"completedJobs": lines,
		"requests":      recent,
	})
}

// ---- response helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, herr *httpError) {
	if herr.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", herr.retryAfter))
	}
	writeJSON(w, herr.status, map[string]string{"error": herr.msg})
}
