// Smoke: the end-to-end serving self-test behind `sparkserved -smoke` and
// the Makefile's server-smoke tier-1 gate. It stages a small dataset, serves
// it on a loopback port, submits score/SKAT/resampling jobs over real HTTP,
// and asserts the results match the batch path — an independent driver with
// the same dataset and seed — bit for bit. It then exercises the serving
// contracts: result-cache hits, queue-full backpressure (429 + Retry-After),
// and graceful drain (in-flight work finishes, new requests get 503).
//
// The test lives in the server package, not the command, because one check
// needs internal access: the host may have a single CPU, where a running
// job's compute starves concurrent HTTP round trips for its whole duration,
// so "observe the pool busy over HTTP, then probe" cannot be made
// deterministic. Filling the pool's slot directly pins the queue-full state
// without depending on scheduler interleaving.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"sparkscore/internal/assoc"
	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
)

const (
	smokeSeed       = 7
	smokePhenos     = 6
	smokeEQTLTopK   = 10
	smokeEQTLPage   = 4 // < topK, so the smoke exercises real pagination
	smokeConfig     = "smoke"
	smokePhenoMatrx = "smoke/phenomatrix.txt"
)

// smokeAnalysis builds the smoke dataset and stages it on a fresh driver,
// returning both the marginal/SKAT analysis and the all-pairs eQTL analysis
// over the same genotypes plus a generated expression matrix.
func smokeAnalysis(sched rdd.SchedulerConfig) (*rdd.Context, *core.Analysis, *assoc.Analysis, error) {
	cfg := gen.Config{Patients: 80, SNPs: 400, SNPSets: 8}
	ds, err := gen.Generate(cfg, smokeSeed)
	if err != nil {
		return nil, nil, nil, err
	}
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes: 2, Spec: cluster.M3TwoXLarge,
			ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 2,
		},
		Seed:      smokeSeed,
		Scheduler: sched,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	paths, err := core.StageDataset(ctx, ds, smokeConfig)
	if err != nil {
		return nil, nil, nil, err
	}
	a, err := core.NewAnalysis(ctx, paths, core.Options{Seed: smokeSeed})
	if err != nil {
		return nil, nil, nil, err
	}
	expr := gen.ExpressionMatrix(cfg, rng.New(smokeSeed), smokePhenos)
	var buf bytes.Buffer
	if err := data.WritePhenoMatrix(&buf, expr); err != nil {
		return nil, nil, nil, err
	}
	if _, err := ctx.FS().Write(smokePhenoMatrx, append([]byte(nil), buf.Bytes()...)); err != nil {
		return nil, nil, nil, err
	}
	eq, err := assoc.NewAnalysis(ctx, paths.Genotypes, smokePhenoMatrx,
		assoc.Config{TopK: smokeEQTLTopK, HistBins: 256})
	return ctx, a, eq, err
}

// Smoke runs the serving self-test, logging progress to out; any error means
// the serving path and the batch path disagree or a serving contract broke.
func Smoke(out io.Writer) error {
	pools := []PoolConfig{
		{Name: "interactive", Weight: 3, MinShare: 8},
		{Name: "batch", Weight: 1},
		{Name: "tiny", MaxConcurrent: 1, MaxQueue: -1},
	}
	ctx, analysis, eqtl, err := smokeAnalysis(SchedulerConfig(rdd.SchedFAIR, pools))
	if err != nil {
		return err
	}
	srv, err := New(Config{Context: ctx, Analysis: analysis, EQTL: eqtl, Pools: pools})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "server-smoke: serving on %s (FAIR, %d pools)\n", base, len(pools))

	// The batch reference: the same dataset and seed on an independent
	// driver, queried directly — the CLI path without the CLI.
	_, batch, batchEQTL, err := smokeAnalysis(rdd.SchedulerConfig{})
	if err != nil {
		return err
	}

	steps := []struct {
		name string
		ok   string
		run  func() error
	}{
		{"score", "score over HTTP matches batch",
			func() error { return smokeScore(base, batch) }},
		{"skat", "SKAT over HTTP matches batch",
			func() error { return smokeSKAT(base, batch) }},
		{"resample", "Monte Carlo resampling over HTTP matches batch",
			func() error { return smokeResample(base, batch) }},
		{"eqtl", "paginated all-pairs eQTL over HTTP matches batch",
			func() error { return smokeEQTL(base, batchEQTL) }},
		{"concurrent", "concurrent FAIR requests from two pools all served",
			func() error { return smokeConcurrent(base) }},
		{"cache", "repeated request served from the result cache",
			func() error { return smokeCache(base) }},
		{"backpressure", "queue-full request rejected with 429 + Retry-After",
			func() error { return smokeBackpressure(base, srv) }},
		{"timeout", "timed-out request answered 408, freed its slot, next request matches batch",
			func() error { return smokeTimeout(base, batch) }},
		{"drain", "graceful drain finished in-flight work and rejected new requests with 503",
			func() error { return smokeDrain(base, srv) }},
	}
	for _, step := range steps {
		if err := step.run(); err != nil {
			return fmt.Errorf("%s: %w", step.name, err)
		}
		fmt.Fprintf(out, "server-smoke: %s\n", step.ok)
	}
	return nil
}

// postJSON posts a request body and returns the HTTP response plus the
// decoded envelope when the status is 200.
func postJSON(base, path string, body any) (*http.Response, *Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp, nil, nil
	}
	defer resp.Body.Close()
	var env Response
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return resp, &env, nil
}

func mustOK(resp *http.Response, env *Response, err error) (*Response, error) {
	if err != nil {
		return nil, err
	}
	if env == nil {
		return nil, fmt.Errorf("status %d, want 200", resp.StatusCode)
	}
	return env, nil
}

func smokeScore(base string, batch *core.Analysis) error {
	env, err := mustOK(postJSON(base, "/v1/score", map[string]any{"pool": "interactive"}))
	if err != nil {
		return err
	}
	var payload struct {
		SNPs []ScoreRow `json:"snps"`
	}
	if err := json.Unmarshal(env.Result, &payload); err != nil {
		return err
	}
	want, err := batch.MarginalAsymptotic()
	if err != nil {
		return err
	}
	if len(payload.SNPs) != len(want) {
		return fmt.Errorf("served %d SNPs, batch %d", len(payload.SNPs), len(want))
	}
	bySNP := map[int]ScoreRow{}
	for _, r := range payload.SNPs {
		bySNP[r.SNP] = r
	}
	for _, m := range want {
		r, ok := bySNP[m.SNP]
		if !ok {
			return fmt.Errorf("SNP %d missing from served results", m.SNP)
		}
		if r.Score != m.Score || r.Variance != m.Variance || r.PValue != m.PValue {
			return fmt.Errorf("SNP %d: served (%v,%v,%v) != batch (%v,%v,%v)",
				m.SNP, r.Score, r.Variance, r.PValue, m.Score, m.Variance, m.PValue)
		}
	}
	return nil
}

func smokeSKAT(base string, batch *core.Analysis) error {
	env, err := mustOK(postJSON(base, "/v1/skat", map[string]any{"pool": "interactive"}))
	if err != nil {
		return err
	}
	var payload struct {
		Sets []SKATRow `json:"sets"`
	}
	if err := json.Unmarshal(env.Result, &payload); err != nil {
		return err
	}
	want, err := batch.SetAsymptotic()
	if err != nil {
		return err
	}
	if len(payload.Sets) != len(want) {
		return fmt.Errorf("served %d sets, batch %d", len(payload.Sets), len(want))
	}
	byName := map[string]SKATRow{}
	for _, r := range payload.Sets {
		byName[r.Name] = r
	}
	for _, m := range want {
		r, ok := byName[m.Name]
		if !ok {
			return fmt.Errorf("set %q missing from served results", m.Name)
		}
		if r.Observed != m.Observed || r.PValue != m.PValue {
			return fmt.Errorf("set %s: served (%v,%v) != batch (%v,%v)",
				m.Name, r.Observed, r.PValue, m.Observed, m.PValue)
		}
	}
	return nil
}

func smokeResample(base string, batch *core.Analysis) error {
	env, err := mustOK(postJSON(base, "/v1/resample",
		map[string]any{"method": "mc", "iterations": 8, "pool": "batch"}))
	if err != nil {
		return err
	}
	var payload struct {
		Iterations int           `json:"iterations"`
		Sets       []ResampleSet `json:"sets"`
	}
	if err := json.Unmarshal(env.Result, &payload); err != nil {
		return err
	}
	want, err := batch.MonteCarlo(8)
	if err != nil {
		return err
	}
	if payload.Iterations != want.Iterations || len(payload.Sets) != len(want.Observed) {
		return fmt.Errorf("served %d iterations over %d sets, batch %d over %d",
			payload.Iterations, len(payload.Sets), want.Iterations, len(want.Observed))
	}
	for k, r := range payload.Sets {
		if r.Observed != want.Observed[k] || r.Exceed != want.Exceed[k] || r.PValue != want.PValues[k] {
			return fmt.Errorf("set %s: served (%v,%d,%v) != batch (%v,%d,%v)", r.Name,
				r.Observed, r.Exceed, r.PValue, want.Observed[k], want.Exceed[k], want.PValues[k])
		}
	}
	return nil
}

// smokeEQTL walks every page of the all-pairs top-K over HTTP and asserts the
// reassembled list — and the FDR summary on each page — matches an
// independent batch run of the same cross bit for bit.
func smokeEQTL(base string, batch *assoc.Analysis) error {
	want, err := batch.Run()
	if err != nil {
		return err
	}
	var got []EQTLPair
	for page, pages := 0, 1; page < pages; page++ {
		env, err := mustOK(postJSON(base, "/v1/eqtl",
			map[string]any{"pool": "interactive", "page": page, "page_size": smokeEQTLPage}))
		if err != nil {
			return err
		}
		var payload struct {
			Tested int64      `json:"tested"`
			TopK   int        `json:"topK"`
			FDR    EQTLFDR    `json:"fdr"`
			Pages  int        `json:"pages"`
			Pairs  []EQTLPair `json:"pairs"`
		}
		if err := json.Unmarshal(env.Result, &payload); err != nil {
			return err
		}
		if payload.Tested != want.Tested || payload.TopK != len(want.TopK) {
			return fmt.Errorf("page %d: served %d tests / top-%d, batch %d / top-%d",
				page, payload.Tested, payload.TopK, want.Tested, len(want.TopK))
		}
		wantFDR := EQTLFDR{Alpha: want.FDR.Alpha, Bins: want.FDR.Bins,
			Threshold: want.FDR.Threshold, Discoveries: want.FDR.Discoveries}
		if payload.FDR != wantFDR {
			return fmt.Errorf("page %d: served FDR %+v, batch %+v", page, payload.FDR, wantFDR)
		}
		got = append(got, payload.Pairs...)
		pages = payload.Pages
	}
	if len(got) != len(want.TopK) {
		return fmt.Errorf("pages reassemble to %d pairs, batch top-K has %d", len(got), len(want.TopK))
	}
	for i, p := range got {
		w := want.TopK[i]
		if p.SNP != w.SNP || p.Pheno != w.Pheno ||
			p.Score != w.Score || p.Variance != w.Variance || p.PValue != w.PValue {
			return fmt.Errorf("pair %d: served %+v != batch %+v", i, p, w)
		}
	}
	return nil
}

func smokeConcurrent(base string) error {
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		pool := "interactive"
		if i%2 == 1 {
			pool = "batch"
		}
		rep := i + 1
		go func() {
			_, err := mustOK(postJSON(base, "/v1/resample",
				map[string]any{"method": "replicate", "replicate": rep, "pool": pool}))
			if err != nil {
				err = fmt.Errorf("replicate %d in %s: %w", rep, pool, err)
			}
			errs <- err
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

func smokeCache(base string) error {
	req := map[string]any{"top": 3, "pool": "interactive"}
	first, err := mustOK(postJSON(base, "/v1/skat", req))
	if err != nil {
		return err
	}
	second, err := mustOK(postJSON(base, "/v1/skat", req))
	if err != nil {
		return err
	}
	if !second.Cached {
		return fmt.Errorf("repeated request not served from cache")
	}
	if !bytes.Equal(first.Result, second.Result) {
		return fmt.Errorf("cached result differs from computed result")
	}
	return nil
}

// smokeBackpressure pins the "tiny" pool (one slot, no queue) full by taking
// its slot directly, then asserts a request over HTTP bounces with 429.
func smokeBackpressure(base string, srv *Server) error {
	p := srv.pool("tiny")
	p.slots <- struct{}{}
	defer func() { <-p.slots }()
	// top=2 has not been requested yet in this run, so the probe cannot be
	// answered from the result cache and must face admission control.
	resp, env, err := postJSON(base, "/v1/score", map[string]any{"pool": "tiny", "top": 2})
	if err != nil {
		return err
	}
	if env != nil || resp.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("request into a full pool got status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("429 response missing Retry-After header")
	}
	return nil
}

// smokeTimeout verifies deadline cancellation end to end over real HTTP: a
// request whose timeout_ms elapses mid-job is answered with 408 + Retry-After
// near the deadline (not after the job would have finished), the cancelled
// job hands its pool slot back, and the next request on the same single-slot
// pool still matches the batch path bit for bit — cancellation must leave the
// shared driver fully reusable.
func smokeTimeout(base string, batch *core.Analysis) error {
	start := time.Now()
	resp, env, err := postJSON(base, "/v1/resample",
		map[string]any{"method": "perm", "iterations": 5000, "pool": "tiny", "timeout_ms": 100})
	if err != nil {
		return err
	}
	if env != nil || resp.StatusCode != http.StatusRequestTimeout {
		status := 200
		if env == nil {
			status = resp.StatusCode
		}
		return fmt.Errorf("timed-out request got status %d, want 408", status)
	}
	if resp.Header.Get("Retry-After") == "" {
		return fmt.Errorf("408 response missing Retry-After header")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		return fmt.Errorf("408 answered after %v, want close to the 100ms deadline", elapsed)
	}
	// The tiny pool has one slot and no queue, so a 200 here proves the
	// cancelled job returned its slot. The wind-down lasts until the job's
	// next task boundary; 429s until then are expected.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, env, err = postJSON(base, "/v1/resample",
			map[string]any{"method": "mc", "iterations": 4, "pool": "tiny"})
		if err != nil {
			return err
		}
		if env != nil {
			break
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return fmt.Errorf("follow-up on the freed pool got status %d, want 200 (or 429 while the cancelled job winds down)", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("pool slot still busy 30s after the 408: cancelled job leaked its slot")
		}
		time.Sleep(50 * time.Millisecond)
	}
	var payload struct {
		Iterations int           `json:"iterations"`
		Sets       []ResampleSet `json:"sets"`
	}
	if err := json.Unmarshal(env.Result, &payload); err != nil {
		return err
	}
	want, err := batch.MonteCarlo(4)
	if err != nil {
		return err
	}
	if payload.Iterations != want.Iterations || len(payload.Sets) != len(want.Observed) {
		return fmt.Errorf("served %d iterations over %d sets after cancel, batch %d over %d",
			payload.Iterations, len(payload.Sets), want.Iterations, len(want.Observed))
	}
	for k, r := range payload.Sets {
		if r.Observed != want.Observed[k] || r.Exceed != want.Exceed[k] || r.PValue != want.PValues[k] {
			return fmt.Errorf("set %s after cancel: served (%v,%d,%v) != batch (%v,%d,%v)", r.Name,
				r.Observed, r.Exceed, r.PValue, want.Observed[k], want.Exceed[k], want.PValues[k])
		}
	}
	return nil
}

// smokeDrain verifies the shutdown contract: a request admitted before the
// drain completes with 200, the drain waits for it, and requests arriving
// after get 503.
func smokeDrain(base string, srv *Server) error {
	slowDone := make(chan error, 1)
	go func() {
		_, err := mustOK(postJSON(base, "/v1/resample",
			map[string]any{"method": "perm", "iterations": 60, "pool": "batch"}))
		slowDone <- err
	}()
	// Admission is the first thing the handler does, well before any compute;
	// parking here hands it the CPU, so by the time Drain flips the flag the
	// request is in flight and the drain must wait for it.
	time.Sleep(50 * time.Millisecond)
	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("Drain: %w", err)
	}
	if err := <-slowDone; err != nil {
		return fmt.Errorf("in-flight request during drain: %w", err)
	}
	resp, env, err := postJSON(base, "/v1/score", map[string]any{})
	if err != nil {
		return err
	}
	if env != nil || resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("post-drain request got status %d, want 503", resp.StatusCode)
	}
	return nil
}
