package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sparkscore/internal/assoc"
	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
)

const testSeed = 11

// newAnalysis stages the shared test dataset on a fresh context so served
// and batch results can be compared across independent drivers.
func newAnalysis(t *testing.T, sched rdd.SchedulerConfig) (*rdd.Context, *core.Analysis) {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Patients: 60, SNPs: 300, SNPSets: 10}, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes: 2, Spec: cluster.NodeSpec{Name: "srv", VCPUs: 8, MemGiB: 8, StorageGB: 80},
			ExecutorsPerNode: 2, CoresPerExecutor: 2, MemPerExecutorGiB: 2,
		},
		Seed:      testSeed,
		Scheduler: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := core.StageDataset(ctx, ds, "input")
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAnalysis(ctx, paths, core.Options{Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	return ctx, a
}

func newTestServer(t *testing.T, cfgPools []PoolConfig, mode rdd.SchedulerMode) (*Server, *httptest.Server) {
	t.Helper()
	ctx, a := newAnalysis(t, SchedulerConfig(mode, cfgPools))
	s, err := New(Config{Context: ctx, Analysis: a, Pools: cfgPools})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// post sends a JSON body and decodes the envelope (on 200) or returns the
// raw response for error-path assertions.
func post(t *testing.T, hs *httptest.Server, path string, body any) (*Response, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	defer resp.Body.Close()
	var env Response
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return &env, resp
}

func TestServedScoreMatchesBatch(t *testing.T) {
	_, hs := newTestServer(t, nil, rdd.SchedFAIR)
	env, _ := post(t, hs, "/v1/score", map[string]any{"top": 5})
	var payload struct {
		SNPs []ScoreRow `json:"snps"`
	}
	if err := json.Unmarshal(env.Result, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.SNPs) != 5 {
		t.Fatalf("got %d rows, want 5", len(payload.SNPs))
	}

	_, batch := newAnalysis(t, rdd.SchedulerConfig{})
	want, err := batch.MarginalAsymptotic()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range payload.SNPs {
		found := false
		for _, m := range want {
			if m.SNP == row.SNP {
				found = true
				if m.Score != row.Score || m.Variance != row.Variance || m.PValue != row.PValue {
					t.Errorf("SNP %d: served (%v,%v,%v) != batch (%v,%v,%v)",
						row.SNP, row.Score, row.Variance, row.PValue, m.Score, m.Variance, m.PValue)
				}
			}
		}
		if !found {
			t.Errorf("served SNP %d not in batch results", row.SNP)
		}
	}
	if env.Jobs == 0 {
		t.Error("score request reported zero jobs")
	}
}

func TestServedSKATMatchesBatch(t *testing.T) {
	_, hs := newTestServer(t, nil, rdd.SchedFAIR)
	env, _ := post(t, hs, "/v1/skat", map[string]any{})
	var payload struct {
		Sets []SKATRow `json:"sets"`
	}
	if err := json.Unmarshal(env.Result, &payload); err != nil {
		t.Fatal(err)
	}

	_, batch := newAnalysis(t, rdd.SchedulerConfig{})
	want, err := batch.SetAsymptotic()
	if err != nil {
		t.Fatal(err)
	}
	if len(payload.Sets) != len(want) {
		t.Fatalf("served %d sets, batch has %d", len(payload.Sets), len(want))
	}
	byName := map[string]SKATRow{}
	for _, row := range payload.Sets {
		byName[row.Name] = row
	}
	for _, m := range want {
		row, ok := byName[m.Name]
		if !ok {
			t.Fatalf("set %q missing from served results", m.Name)
		}
		if row.Observed != m.Observed || row.PValue != m.PValue {
			t.Errorf("set %s: served (%v,%v) != batch (%v,%v)",
				m.Name, row.Observed, row.PValue, m.Observed, m.PValue)
		}
	}
}

func TestServedResampleMatchesBatch(t *testing.T) {
	_, hs := newTestServer(t, nil, rdd.SchedFAIR)
	env, _ := post(t, hs, "/v1/resample", map[string]any{"method": "mc", "iterations": 6})
	var payload struct {
		Iterations int           `json:"iterations"`
		Sets       []ResampleSet `json:"sets"`
	}
	if err := json.Unmarshal(env.Result, &payload); err != nil {
		t.Fatal(err)
	}

	_, batch := newAnalysis(t, rdd.SchedulerConfig{})
	want, err := batch.MonteCarlo(6)
	if err != nil {
		t.Fatal(err)
	}
	if payload.Iterations != want.Iterations {
		t.Fatalf("iterations: served %d, batch %d", payload.Iterations, want.Iterations)
	}
	for k, row := range payload.Sets {
		if row.Observed != want.Observed[k] || row.Exceed != want.Exceed[k] || row.PValue != want.PValues[k] {
			t.Errorf("set %s: served (%v,%d,%v) != batch (%v,%d,%v)", row.Name,
				row.Observed, row.Exceed, row.PValue, want.Observed[k], want.Exceed[k], want.PValues[k])
		}
	}
}

func TestServedReplicateMatchesBatch(t *testing.T) {
	_, hs := newTestServer(t, nil, rdd.SchedFAIR)
	env, _ := post(t, hs, "/v1/resample", map[string]any{"method": "replicate", "replicate": 3})
	var payload struct {
		Replicate  uint64    `json:"replicate"`
		Statistics []float64 `json:"statistics"`
	}
	if err := json.Unmarshal(env.Result, &payload); err != nil {
		t.Fatal(err)
	}
	_, batch := newAnalysis(t, rdd.SchedulerConfig{})
	want, err := batch.Replicate(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload.Statistics) != len(want) {
		t.Fatalf("served %d statistics, batch %d", len(payload.Statistics), len(want))
	}
	for k := range want {
		if payload.Statistics[k] != want[k] {
			t.Errorf("set %d: served %v != batch %v", k, payload.Statistics[k], want[k])
		}
	}
}

func TestEQTLUnconfiguredGives501(t *testing.T) {
	_, hs := newTestServer(t, nil, rdd.SchedFIFO)
	_, resp := post(t, hs, "/v1/eqtl", map[string]any{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501 when no all-pairs analysis is configured", resp.StatusCode)
	}
}

// newEQTLServer stages the shared dataset plus an expression matrix and wires
// the all-pairs analysis into the server; the returned batch analysis is an
// independent driver over the same inputs.
func newEQTLServer(t *testing.T) (*Server, *httptest.Server, *assoc.Analysis) {
	t.Helper()
	build := func(sched rdd.SchedulerConfig) (*rdd.Context, *core.Analysis, *assoc.Analysis) {
		ctx, a := newAnalysis(t, sched)
		expr := gen.ExpressionMatrix(gen.Config{Patients: a.Patients()}, rng.New(testSeed), 5)
		var buf bytes.Buffer
		if err := data.WritePhenoMatrix(&buf, expr); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.FS().Write("input/phenomatrix.txt", buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		eq, err := assoc.NewAnalysis(ctx, "input/genotypes.txt", "input/phenomatrix.txt",
			assoc.Config{TopK: 12, HistBins: 128})
		if err != nil {
			t.Fatal(err)
		}
		return ctx, a, eq
	}
	ctx, a, eq := build(SchedulerConfig(rdd.SchedFAIR, nil))
	s, err := New(Config{Context: ctx, Analysis: a, EQTL: eq})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	_, _, batch := build(rdd.SchedulerConfig{})
	return s, hs, batch
}

func TestServedEQTLPaginatesAndMatchesBatch(t *testing.T) {
	_, hs, batch := newEQTLServer(t)
	want, err := batch.Run()
	if err != nil {
		t.Fatal(err)
	}
	var got []EQTLPair
	for page, pages := 0, 1; page < pages; page++ {
		env, _ := post(t, hs, "/v1/eqtl", map[string]any{"page": page, "page_size": 5})
		if env == nil {
			t.Fatalf("page %d not served", page)
		}
		var payload struct {
			Tested int64      `json:"tested"`
			FDR    EQTLFDR    `json:"fdr"`
			Pages  int        `json:"pages"`
			Pairs  []EQTLPair `json:"pairs"`
		}
		if err := json.Unmarshal(env.Result, &payload); err != nil {
			t.Fatal(err)
		}
		if payload.Tested != want.Tested {
			t.Fatalf("page %d: tested %d, batch %d", page, payload.Tested, want.Tested)
		}
		if payload.FDR.Threshold != want.FDR.Threshold || payload.FDR.Discoveries != want.FDR.Discoveries {
			t.Fatalf("page %d: FDR %+v, batch %+v", page, payload.FDR, want.FDR)
		}
		got = append(got, payload.Pairs...)
		pages = payload.Pages
		if pages != 3 { // 12 pairs at page_size 5
			t.Fatalf("pages = %d, want 3", pages)
		}
	}
	if len(got) != len(want.TopK) {
		t.Fatalf("pages reassemble to %d pairs, batch top-K %d", len(got), len(want.TopK))
	}
	for i, p := range got {
		w := want.TopK[i]
		if p.SNP != w.SNP || p.Pheno != w.Pheno ||
			p.Score != w.Score || p.Variance != w.Variance || p.PValue != w.PValue {
			t.Fatalf("pair %d: served %+v != batch %+v", i, p, w)
		}
	}
}

// TestEQTLPagesShareOneCross pins the memo: after the first page runs the
// cross, further pages add no engine jobs, and a repeated page is a cache hit.
func TestEQTLPagesShareOneCross(t *testing.T) {
	s, hs, _ := newEQTLServer(t)
	first, _ := post(t, hs, "/v1/eqtl", map[string]any{"page": 0, "page_size": 5})
	if first.Jobs == 0 {
		t.Fatal("first page reported zero jobs; the cross did not run")
	}
	second, _ := post(t, hs, "/v1/eqtl", map[string]any{"page": 1, "page_size": 5})
	if second.Jobs != 0 {
		t.Fatalf("second page ran %d jobs; pages must slice the memoised result", second.Jobs)
	}
	again, _ := post(t, hs, "/v1/eqtl", map[string]any{"page": 0, "page_size": 5})
	if !again.Cached {
		t.Fatal("repeated page not served from the result cache")
	}
	if !bytes.Equal(first.Result, again.Result) {
		t.Fatal("cached page differs from computed page")
	}
	if _, resp := post(t, hs, "/v1/eqtl", map[string]any{"page": -1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("page=-1 got status %d, want 400", resp.StatusCode)
	}
	// A storage-epoch bump invalidates the memo: the next page recomputes.
	if err := s.ctx.FailExecutor(0); err != nil {
		t.Fatal(err)
	}
	recomputed, _ := post(t, hs, "/v1/eqtl", map[string]any{"page": 0, "page_size": 5})
	if recomputed.Cached || recomputed.Jobs == 0 {
		t.Fatalf("post-epoch page served cached=%v jobs=%d, want a fresh cross", recomputed.Cached, recomputed.Jobs)
	}
	if !bytes.Equal(first.Result, recomputed.Result) {
		t.Fatal("recomputed page differs after executor loss (lineage recovery broken?)")
	}
}

func TestConcurrentRequestsFromPools(t *testing.T) {
	pools := []PoolConfig{
		{Name: "interactive", Weight: 3, MinShare: 4},
		{Name: "batch", Weight: 1},
	}
	_, hs := newTestServer(t, pools, rdd.SchedFAIR)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		pool := "interactive"
		if i%2 == 1 {
			pool = "batch"
		}
		rep := uint64(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"method": "replicate", "replicate": rep, "pool": pool})
			resp, err := http.Post(hs.URL+"/v1/resample", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("replicate %d in %s: status %d", rep, pool, resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCacheHitAndEpochInvalidation(t *testing.T) {
	s, hs := newTestServer(t, nil, rdd.SchedFAIR)
	req := map[string]any{"top": 3}
	first, _ := post(t, hs, "/v1/score", req)
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	second, _ := post(t, hs, "/v1/score", req)
	if !second.Cached {
		t.Fatal("second identical request not served from cache")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result differs from computed result")
	}
	// Injected executor loss bumps the storage epoch: the cached entry's
	// backing blocks may be gone, so the next request recomputes.
	if err := s.ctx.FailExecutor(0); err != nil {
		t.Fatal(err)
	}
	third, _ := post(t, hs, "/v1/score", req)
	if third.Cached {
		t.Fatal("request served from cache across a storage epoch bump")
	}
	if !bytes.Equal(first.Result, third.Result) {
		t.Fatal("recomputed result differs after executor loss (lineage recovery broken?)")
	}
	stats := s.cache.stats()
	if stats.Invalidations != 1 {
		t.Fatalf("cache invalidations = %d, want 1", stats.Invalidations)
	}
}

func TestQueueFullGives429WithRetryAfter(t *testing.T) {
	pools := []PoolConfig{{Name: "tiny", MaxConcurrent: 1, MaxQueue: -1}}
	s, hs := newTestServer(t, pools, rdd.SchedFAIR)
	// Occupy the pool's only slot so the next request cannot run or queue.
	p := s.pool("tiny")
	p.slots <- struct{}{}
	defer func() { <-p.slots }()

	_, resp := post(t, hs, "/v1/score", map[string]any{"pool": "tiny"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

func TestDrainRejectsNewRequestsAndFinishesInFlight(t *testing.T) {
	s, hs := newTestServer(t, nil, rdd.SchedFAIR)
	// An in-flight request admitted before the drain must complete.
	started := make(chan struct{})
	inFlightOK := make(chan error, 1)
	go func() {
		close(started)
		body, _ := json.Marshal(map[string]any{"method": "replicate", "replicate": 1})
		resp, err := http.Post(hs.URL+"/v1/resample", "application/json", bytes.NewReader(body))
		if err != nil {
			inFlightOK <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inFlightOK <- fmt.Errorf("in-flight request got %d", resp.StatusCode)
			return
		}
		inFlightOK <- nil
	}()
	<-started
	time.Sleep(5 * time.Millisecond) // let the request pass admission
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-inFlightOK; err != nil {
		t.Fatal(err)
	}
	_, resp := post(t, hs, "/v1/score", map[string]any{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", health.Status)
	}
}

func TestStatsAndJobsEndpoints(t *testing.T) {
	pools := []PoolConfig{{Name: "interactive", Weight: 2}}
	_, hs := newTestServer(t, pools, rdd.SchedFAIR)
	post(t, hs, "/v1/score", map[string]any{"pool": "interactive", "top": 2})

	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Mode          string      `json:"mode"`
		CompletedJobs int         `json:"completedJobs"`
		Requests      uint64      `json:"requests"`
		Pools         []PoolStats `json:"pools"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "FAIR" {
		t.Errorf("mode %q, want FAIR", stats.Mode)
	}
	if stats.CompletedJobs == 0 || stats.Requests == 0 {
		t.Errorf("stats report no work: %+v", stats)
	}
	var served uint64
	for _, p := range stats.Pools {
		if p.Name == "interactive" {
			served = p.Served
		}
	}
	if served != 1 {
		t.Errorf("interactive pool served = %d, want 1", served)
	}

	jresp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var jobs struct {
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs.Requests) != 1 || jobs.Requests[0].Endpoint != "score" {
		t.Errorf("request log = %+v, want one score entry", jobs.Requests)
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, nil, rdd.SchedFIFO)
	cases := []struct {
		path string
		body string
	}{
		{"/v1/score", `{"top": -1}`},
		{"/v1/resample", `{"method": "bogus"}`},
		{"/v1/resample", `{"method": "mc"}`},
		{"/v1/resample", `{"method": "replicate"}`},
		{"/v1/skat", `{"unknown": true}`},
	}
	for _, c := range cases {
		resp, err := http.Post(hs.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", c.path, c.body, resp.StatusCode)
		}
	}
}

func TestParsePools(t *testing.T) {
	pools, err := ParsePools(strings.NewReader(
		`[{"name":"interactive","weight":3,"minShare":8,"maxConcurrent":8},{"name":"batch"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 2 || pools[0].Weight != 3 || pools[0].MinShare != 8 {
		t.Fatalf("parsed %+v", pools)
	}
	if pools[1].maxConcurrent() != DefaultMaxConcurrent || pools[1].maxQueue() != DefaultMaxQueue {
		t.Fatal("defaults not applied")
	}
	if _, err := ParsePools(strings.NewReader(`[{"name":"a"},{"name":"a"}]`)); err == nil {
		t.Fatal("duplicate pool accepted")
	}
	if _, err := ParsePools(strings.NewReader(`[{"weight":1}]`)); err == nil {
		t.Fatal("empty pool name accepted")
	}
}
