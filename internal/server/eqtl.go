// The /v1/eqtl endpoint: the all-pairs eQTL/PheWAS engine behind the job
// server. One full cross is expensive relative to a page of its top-K, so the
// server memoises the complete assoc.Result and serves every page out of it,
// revalidating against the storage epoch exactly like the result cache; the
// generic cache then holds each page's JSON under its own fingerprint, so
// repeated fetches of a page skip even the memo lookup.

package server

import (
	"fmt"
	"time"

	"sparkscore/internal/assoc"
	"sparkscore/internal/core"
)

// DefaultEQTLPageSize is the /v1/eqtl page size when page_size is omitted.
const DefaultEQTLPageSize = 100

type eqtlRequest struct {
	PoolName  string `json:"pool,omitempty"`
	Page      int    `json:"page,omitempty"`
	PageSize  int    `json:"page_size,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`

	// srv reaches the server's assoc analysis and result memo; the shared
	// jobRequest plumbing only hands run the core analysis.
	srv *Server
}

func (r *eqtlRequest) pool() string           { return r.PoolName }
func (r *eqtlRequest) timeout() time.Duration { return time.Duration(r.TimeoutMS) * time.Millisecond }

func (r *eqtlRequest) validate() error {
	if r.Page < 0 {
		return fmt.Errorf("page must be >= 0")
	}
	if r.PageSize < 0 {
		return fmt.Errorf("page_size must be >= 0")
	}
	return nil
}

func (r *eqtlRequest) pageSize() int {
	if r.PageSize == 0 {
		return DefaultEQTLPageSize
	}
	return r.PageSize
}

func (r *eqtlRequest) fingerprintParts(endpoint string) []string {
	return []string{endpoint, fmt.Sprintf("page=%d size=%d", r.Page, r.pageSize())}
}

// EQTLPair is one (SNP, phenotype) association in an eqtl response page.
type EQTLPair struct {
	SNP      int32   `json:"snp"`
	Pheno    int32   `json:"pheno"`
	Score    float64 `json:"score"`
	Variance float64 `json:"variance"`
	PValue   float64 `json:"pValue"`
}

// EQTLFDR is the Benjamini–Hochberg summary in an eqtl response.
type EQTLFDR struct {
	Alpha       float64 `json:"alpha"`
	Bins        int     `json:"bins"`
	Threshold   float64 `json:"threshold"`
	Discoveries int64   `json:"discoveries"`
}

func (r *eqtlRequest) run(_ *core.Analysis) (any, error) {
	res, err := r.srv.eqtlResult()
	if err != nil {
		return nil, err
	}
	size := r.pageSize()
	pages := (len(res.TopK) + size - 1) / size
	if pages == 0 {
		pages = 1
	}
	lo := r.Page * size
	hi := lo + size
	if lo > len(res.TopK) {
		lo = len(res.TopK)
	}
	if hi > len(res.TopK) {
		hi = len(res.TopK)
	}
	pairs := make([]EQTLPair, 0, hi-lo)
	for _, p := range res.TopK[lo:hi] {
		pairs = append(pairs, EQTLPair{SNP: p.SNP, Pheno: p.Pheno, Score: p.Score, Variance: p.Variance, PValue: p.PValue})
	}
	return map[string]any{
		"tested":     res.Tested,
		"strategy":   res.Strategy,
		"phenotypes": res.Phenos,
		"snpBlocks":  res.SNPBlocks,
		"topK":       len(res.TopK),
		"fdr": EQTLFDR{
			Alpha: res.FDR.Alpha, Bins: res.FDR.Bins,
			Threshold: res.FDR.Threshold, Discoveries: res.FDR.Discoveries,
		},
		"page":     r.Page,
		"pageSize": size,
		"pages":    pages,
		"pairs":    pairs,
	}, nil
}

// eqtlResult returns the memoised all-pairs result, re-running the cross when
// there is none or when a storage-epoch bump (injected node loss) may have
// taken its backing blocks. The mutex also serialises concurrent eqtl
// requests so the cross runs once, not once per in-flight page.
func (s *Server) eqtlResult() (*assoc.Result, error) {
	s.eqtlMu.Lock()
	defer s.eqtlMu.Unlock()
	if s.eqtlRes != nil && s.eqtlEpoch == s.ctx.StorageEpoch() {
		return s.eqtlRes, nil
	}
	s.eqtlRes = nil
	res, err := s.eqtl.Run()
	if err != nil {
		return nil, err
	}
	// Stamp with the epoch after the run, as the result cache does: the blocks
	// the result rests on were live at completion.
	s.eqtlRes, s.eqtlEpoch = res, s.ctx.StorageEpoch()
	return res, nil
}
