// The served-result cache. A request's answer is fully determined by the
// analysis (dataset, options, seed) and the request's own parameters — the
// same facts that determine the lineage of the jobs it would run — so results
// are cached under a fingerprint of exactly those inputs and a hit skips job
// submission entirely.
//
// Validity is tied to the engine's storage epoch: Context.StorageEpoch()
// advances whenever injected node or executor loss drops cached blocks, and
// an entry recorded under an older epoch is discarded on lookup. This is
// deliberately conservative — recomputation from lineage would return the
// same numbers — but it means a served result is always backed by blocks
// that were live when it was produced, mirroring how a driver-side cache
// over Spark RDDs must revalidate after block-manager loss.

package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Fingerprint condenses the strings that determine a request's result into a
// cache key.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries       int    `json:"entries"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"` // entries dropped on epoch mismatch
	Evictions     uint64 `json:"evictions"`     // entries dropped by LRU pressure
}

type cacheEntry struct {
	key   string
	epoch uint64 // Context.StorageEpoch() when the result was produced
	body  []byte // encoded result payload
}

// resultCache is a small LRU over encoded result payloads.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses, invalidations, evictions uint64
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: map[string]*list.Element{},
	}
}

// get returns the cached body for key if it was stored at the given storage
// epoch. An entry from an earlier epoch may depend on blocks a fault has
// since destroyed; it is invalidated instead of served.
func (c *resultCache) get(key string, epoch uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		c.order.Remove(el)
		delete(c.entries, key)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return ent.body, true
}

// put records body under key at the given epoch, evicting the least recently
// used entry when over capacity.
func (c *resultCache) put(key string, epoch uint64, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.epoch, ent.body = epoch, body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, epoch: epoch, body: body})
	for len(c.entries) > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       len(c.entries),
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
	}
}
