// Result serialisation: the per-set output table an analysis pipeline would
// hand downstream (tab-separated, one row per SNP-set).

package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteResult writes res as a TSV with a header:
//
//	set	name	snps	observed	exceed	iterations	pvalue
//
// pvalue is "NA" when no resampling iterations were run.
func WriteResult(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "set\tname\tsnps\tobserved\texceed\titerations\tpvalue"); err != nil {
		return err
	}
	for k := range res.Observed {
		p := "NA"
		if res.PValues != nil {
			p = strconv.FormatFloat(res.PValues[k], 'g', 10, 64)
		}
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%d\t%g\t%d\t%d\t%s\n",
			k, res.Sets[k].Name, len(res.Sets[k].SNPs), res.Observed[k],
			res.Exceed[k], res.Iterations, p); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadResultPValues parses the pvalue column of a WriteResult TSV back into
// a slice indexed by set (NA entries become NaN-free -1 so downstream code
// can detect them without NaN plumbing).
func ReadResultPValues(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	var out []float64
	first := true
	for sc.Scan() {
		line := sc.Text()
		if first {
			first = false
			if !strings.HasPrefix(line, "set\t") {
				return nil, fmt.Errorf("core: not a result file (header %q)", truncate(line))
			}
			continue
		}
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 7 {
			return nil, fmt.Errorf("core: result row has %d fields, want 7", len(fields))
		}
		if fields[6] == "NA" {
			out = append(out, -1)
			continue
		}
		p, err := strconv.ParseFloat(fields[6], 64)
		if err != nil {
			return nil, fmt.Errorf("core: bad pvalue %q", fields[6])
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
