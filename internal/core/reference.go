// Sequential reference implementations of Algorithms 1–3, computed directly
// on a driver-side dataset with no engine involved. They exist (a) as the
// ground truth the distributed pipeline is tested against, and (b) as the
// single-machine baseline for ablation benchmarks. They honour the same
// Options (score family, set statistic, seed) and the same seed-splitting
// scheme as Analysis, so engine and reference results are replicate-for-
// replicate identical.

package core

import (
	"fmt"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

// ReferenceObserved computes S_k^0 sequentially.
func ReferenceObserved(ds *data.Dataset, opts Options) ([]float64, error) {
	st, err := stats.NewSetStatistic(opts.SetStatistic)
	if err != nil {
		return nil, err
	}
	return referenceSetStats(ds, opts.family(), st, ds.Phenotype, nil)
}

// ReferencePermutation computes the permutation result sequentially.
func ReferencePermutation(ds *data.Dataset, opts Options, iterations int) (*Result, error) {
	st, err := stats.NewSetStatistic(opts.SetStatistic)
	if err != nil {
		return nil, err
	}
	if ds.Covariates != nil {
		return nil, fmt.Errorf("core: permutation resampling cannot adjust for baseline covariates; use MonteCarlo")
	}
	observed, err := referenceSetStats(ds, opts.family(), st, ds.Phenotype, nil)
	if err != nil {
		return nil, err
	}
	counter := stats.NewCounter(observed)
	root := rng.New(opts.Seed ^ 0x5ca1ab1e)
	n := ds.Phenotype.Patients()
	for b := 1; b <= iterations; b++ {
		perm := root.Split(uint64(b)).Perm(n)
		rep, err := referenceSetStats(ds, opts.family(), st, ds.Phenotype.Permuted(perm), nil)
		if err != nil {
			return nil, err
		}
		counter.Add(rep)
	}
	return referenceResult(ds, observed, counter), nil
}

// ReferenceMonteCarlo computes the Monte Carlo result sequentially with the
// same draws as Analysis.MonteCarlo.
func ReferenceMonteCarlo(ds *data.Dataset, opts Options, iterations int) (*Result, error) {
	st, err := stats.NewSetStatistic(opts.SetStatistic)
	if err != nil {
		return nil, err
	}
	model, err := stats.NewAdjustedModel(opts.family(), ds.Phenotype, covariateRows(ds))
	if err != nil {
		return nil, err
	}
	n := ds.Phenotype.Patients()
	// Materialise U once — the sequential analogue of caching RDD U.
	u := make([][]float64, ds.Genotypes.SNPs())
	for j := range u {
		u[j] = make([]float64, n)
		model.Contributions(ds.Genotypes.Row(j), u[j])
	}
	scores := make([]float64, len(u))
	sums := func(z []float64) []float64 {
		for j := range u {
			var s float64
			if z == nil {
				for _, v := range u[j] {
					s += v
				}
			} else {
				s = stats.MonteCarloScore(u[j], z)
			}
			scores[j] = s
		}
		return scores
	}
	observed := stats.CombineAll(st, ds.SNPSets, ds.Weights, sums(nil))
	counter := stats.NewCounter(observed)
	root := rng.New(opts.Seed ^ 0xcafe)
	for b := 1; b <= iterations; b++ {
		r := root.Split(uint64(b))
		z := make([]float64, n)
		for i := range z {
			z[i] = r.Normal()
		}
		counter.Add(stats.CombineAll(st, ds.SNPSets, ds.Weights, sums(z)))
	}
	return referenceResult(ds, observed, counter), nil
}

func covariateRows(ds *data.Dataset) [][]float64 {
	if ds.Covariates == nil {
		return nil
	}
	return ds.Covariates.Rows
}

func referenceSetStats(ds *data.Dataset, family string, st stats.SetStatistic, ph *data.Phenotype, z []float64) ([]float64, error) {
	model, err := stats.NewAdjustedModel(family, ph, covariateRows(ds))
	if err != nil {
		return nil, fmt.Errorf("core: reference: %w", err)
	}
	scores := make([]float64, ds.Genotypes.SNPs())
	u := make([]float64, ph.Patients())
	for j := range scores {
		model.Contributions(ds.Genotypes.Row(j), u)
		var s float64
		if z == nil {
			for _, v := range u {
				s += v
			}
		} else {
			s = stats.MonteCarloScore(u, z)
		}
		scores[j] = s
	}
	return stats.CombineAll(st, ds.SNPSets, ds.Weights, scores), nil
}

func referenceResult(ds *data.Dataset, observed []float64, counter *stats.Counter) *Result {
	return &Result{
		Sets:       ds.SNPSets,
		Observed:   observed,
		Exceed:     counter.Exceedances(),
		Iterations: counter.Replicates(),
		PValues:    pvaluesOrNil(counter),
	}
}

func pvaluesOrNil(c *stats.Counter) []float64 {
	if c.Replicates() == 0 {
		return nil
	}
	return c.PValues()
}
