// Staging datasets onto the simulated HDFS in the paper's text formats.

package core

import (
	"bytes"
	"fmt"

	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
)

// StageDataset writes the four input files of Algorithm 1 to the context's
// file system under the given name prefix and returns their paths.
func StageDataset(ctx *rdd.Context, ds *data.Dataset, prefix string) (Paths, error) {
	if err := ds.Validate(); err != nil {
		return Paths{}, err
	}
	paths := Paths{
		Genotypes: prefix + "/genotypes.txt",
		Phenotype: prefix + "/phenotype.txt",
		Weights:   prefix + "/weights.txt",
		SNPSets:   prefix + "/snpsets.txt",
	}
	var buf bytes.Buffer
	write := func(name string, encode func() error) error {
		buf.Reset()
		if err := encode(); err != nil {
			return fmt.Errorf("core: encoding %s: %w", name, err)
		}
		if _, err := ctx.FS().Write(name, append([]byte(nil), buf.Bytes()...)); err != nil {
			return fmt.Errorf("core: staging %s: %w", name, err)
		}
		return nil
	}
	if err := write(paths.Genotypes, func() error { return data.WriteGenotypes(&buf, ds.Genotypes) }); err != nil {
		return Paths{}, err
	}
	if err := write(paths.Phenotype, func() error { return data.WritePhenotype(&buf, ds.Phenotype) }); err != nil {
		return Paths{}, err
	}
	if err := write(paths.Weights, func() error { return data.WriteWeights(&buf, ds.Weights) }); err != nil {
		return Paths{}, err
	}
	if err := write(paths.SNPSets, func() error { return data.WriteSNPSets(&buf, ds.SNPSets) }); err != nil {
		return Paths{}, err
	}
	if ds.Covariates != nil {
		paths.Covariates = prefix + "/covariates.txt"
		if err := write(paths.Covariates, func() error { return data.WriteCovariates(&buf, ds.Covariates) }); err != nil {
			return Paths{}, err
		}
	}
	return paths, nil
}
