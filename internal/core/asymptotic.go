// Distributed asymptotic SNP-set inference: the large-sample alternative to
// Algorithms 2 and 3. Each SNP-set's null distribution is approximated from
// the same per-patient contributions the resampling methods use — by the
// Liu moment-matching chi-square for SKAT, and by a 1-df chi-square for the
// burden statistic (whose quadratic form has a single eigenvalue).

package core

import (
	"bytes"
	"fmt"
	"sort"

	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
	"sparkscore/internal/stats"
)

// SetAsymptoticResult is one SNP-set's asymptotic test.
type SetAsymptoticResult struct {
	Set      int // index into Analysis.Sets()
	Name     string
	SNPs     int
	Observed float64
	PValue   float64
}

// SetAsymptotic computes the observed set statistics and their asymptotic
// p-values for every SNP-set, distributed: genotype rows are routed to their
// sets with a shuffle and each set's moments are computed where its rows
// land.
func (a *Analysis) SetAsymptotic() ([]SetAsymptoticResult, error) {
	weights, err := a.loadWeights()
	if err != nil {
		return nil, err
	}
	nullBC := a.broadcastNull(a.phenotype)
	wBC := rdd.NewBroadcast(a.ctx, weights, int64(len(weights))*8)
	var results []SetAsymptoticResult
	if a.opts.columnar() {
		results, err = a.setAsymptoticColumnar(nullBC, wBC)
	} else {
		results, err = a.setAsymptoticBoxed(nullBC, wBC)
	}
	if err != nil {
		return nil, err
	}
	for i := range results {
		results[i].Name = a.sets[results[i].Set].Name
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Set < results[j].Set })
	return results, nil
}

func (a *Analysis) setAsymptoticBoxed(nullBC *rdd.Broadcast[nullModel], wBC *rdd.Broadcast[data.Weights]) ([]SetAsymptoticResult, error) {
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return nil, err
	}
	member := a.membership
	rowBytes := 8 + data.BoxedRowBytes(a.patients)
	bySet := rdd.FlatMap(fgm, "bySet", func(r GenoRow) []rdd.KV[int, GenoRow] {
		sets := member.Value()[r.SNP]
		out := make([]rdd.KV[int, GenoRow], len(sets))
		for i, k := range sets {
			out[i] = rdd.KV[int, GenoRow]{K: k, V: r}
		}
		return out
	}).SetSizeHint(rowBytes)

	grouped := rdd.GroupByKey(bySet, 0).SetSizeFunc(func(kv rdd.KV[int, []GenoRow]) int64 {
		return 32 + int64(len(kv.V))*(rowBytes-8)
	})
	family := a.opts.family()
	statName := a.setStat.Name()

	perSet := rdd.Map(grouped, "liu", func(kv rdd.KV[int, []GenoRow]) SetAsymptoticResult {
		nm := nullBC.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		rows := make([][]data.Genotype, len(kv.V))
		w := make([]float64, len(kv.V))
		for i, r := range kv.V {
			rows[i] = r.G
			w[i] = wBC.Value()[r.SNP]
		}
		return setAsymptoticResult(statName, model, kv.K, rows, w)
	}).SetSizeHint(48)

	return rdd.Collect(perSet)
}

// packedRow is the columnar SetAsymptotic shuffle unit: one SNP's 2-bit
// packed genotype column, routed to each set containing it. The shuffle
// moves (patients+3)/4 genotype bytes per row instead of a boxed vector.
type packedRow struct {
	SNP   int32
	Bytes []byte
}

func (a *Analysis) setAsymptoticColumnar(nullBC *rdd.Broadcast[nullModel], wBC *rdd.Broadcast[data.Weights]) ([]SetAsymptoticResult, error) {
	blocks, err := a.filteredGenotypeBlocks()
	if err != nil {
		return nil, err
	}
	member := a.membership
	patients := a.patients
	rowBytes := int64(data.BlockRowBytes(patients))
	bySet := rdd.FlatMap(blocks, "bySetPacked", func(b data.GenoBlock) []rdd.KV[int, packedRow] {
		var out []rdd.KV[int, packedRow]
		for r := 0; r < b.Rows(); r++ {
			sets := member.Value()[int(b.SNPs[r])]
			if len(sets) == 0 {
				continue
			}
			pr := packedRow{SNP: b.SNPs[r], Bytes: b.Row(r)}
			for _, k := range sets {
				out = append(out, rdd.KV[int, packedRow]{K: k, V: pr})
			}
		}
		return out
	}).SetSizeHint(40 + rowBytes)

	grouped := rdd.GroupByKey(bySet, 0).SetSizeFunc(func(kv rdd.KV[int, []packedRow]) int64 {
		return 32 + int64(len(kv.V))*(32+rowBytes)
	})
	family := a.opts.family()
	statName := a.setStat.Name()

	perSet := rdd.Map(grouped, "liu", func(kv rdd.KV[int, []packedRow]) SetAsymptoticResult {
		nm := nullBC.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		rows := make([][]data.Genotype, len(kv.V))
		w := make([]float64, len(kv.V))
		for i, pr := range kv.V {
			g := make([]data.Genotype, patients)
			stats.DecodeDosageGenotypes(pr.Bytes, g)
			rows[i] = g
			w[i] = wBC.Value()[pr.SNP]
		}
		return setAsymptoticResult(statName, model, kv.K, rows, w)
	}).SetSizeHint(48)

	return rdd.Collect(perSet)
}

// setAsymptoticResult evaluates one set's asymptotic test from its decoded
// genotype rows — shared by the boxed and columnar shuffles, so both layouts
// feed identical inputs to the moment-matching step.
func setAsymptoticResult(statName string, model stats.Model, set int, rows [][]data.Genotype, w []float64) SetAsymptoticResult {
	res := SetAsymptoticResult{Set: set, SNPs: len(rows)}
	var err error
	switch statName {
	case "skat":
		res.Observed, res.PValue, err = stats.SKATAsymptotic(model, rows, w)
		if err != nil {
			panic(err)
		}
	case "burden":
		res.Observed, res.PValue = burdenAsymptotic(model, rows, w)
	default:
		panic(fmt.Sprintf("core: no asymptotic approximation for set statistic %q", statName))
	}
	return res
}

// burdenAsymptotic tests the burden statistic (Σ ω U)² against its 1-df
// chi-square null using the empirical variance of the collapsed per-patient
// contributions.
func burdenAsymptotic(model stats.Model, rows [][]data.Genotype, weights []float64) (observed, pvalue float64) {
	n := model.Patients()
	collapsed := make([]float64, n)
	u := make([]float64, n)
	for r, g := range rows {
		model.Contributions(g, u)
		for i, v := range u {
			collapsed[i] += weights[r] * v
		}
	}
	var sum, sumSq float64
	for _, v := range collapsed {
		sum += v
		sumSq += v * v
	}
	observed = sum * sum
	pvalue = stats.ChiSquaredSurvival(stats.Chi2Stat(sum, sumSq), 1)
	return observed, pvalue
}

// loadWeights reads the per-SNP weight vector onto the driver (lazily). The
// mutex makes the memoisation safe when the job server runs concurrent
// analyses against one Analysis.
func (a *Analysis) loadWeights() (data.Weights, error) {
	a.weightsMu.Lock()
	defer a.weightsMu.Unlock()
	if a.weightsVec != nil {
		return a.weightsVec, nil
	}
	raw, err := a.ctx.FS().ReadAll(a.weightsPath)
	if err != nil {
		return nil, err
	}
	w, err := data.ReadWeights(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	a.weightsVec = w
	return w, nil
}
