// Distributed asymptotic SNP-set inference: the large-sample alternative to
// Algorithms 2 and 3. Each SNP-set's null distribution is approximated from
// the same per-patient contributions the resampling methods use — by the
// Liu moment-matching chi-square for SKAT, and by a 1-df chi-square for the
// burden statistic (whose quadratic form has a single eigenvalue).

package core

import (
	"bytes"
	"fmt"
	"sort"

	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
	"sparkscore/internal/stats"
)

// SetAsymptoticResult is one SNP-set's asymptotic test.
type SetAsymptoticResult struct {
	Set      int // index into Analysis.Sets()
	Name     string
	SNPs     int
	Observed float64
	PValue   float64
}

// SetAsymptotic computes the observed set statistics and their asymptotic
// p-values for every SNP-set, distributed: genotype rows are routed to their
// sets with a shuffle and each set's moments are computed where its rows
// land.
func (a *Analysis) SetAsymptotic() ([]SetAsymptoticResult, error) {
	weights, err := a.loadWeights()
	if err != nil {
		return nil, err
	}
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return nil, err
	}
	member := a.membership
	bySet := rdd.FlatMap(fgm, "bySet", func(r GenoRow) []rdd.KV[int, GenoRow] {
		sets := member.Value()[r.SNP]
		out := make([]rdd.KV[int, GenoRow], len(sets))
		for i, k := range sets {
			out[i] = rdd.KV[int, GenoRow]{K: k, V: r}
		}
		return out
	}).SetSizeHint(int64(a.patients) + 40)

	grouped := rdd.GroupByKey(bySet, 0)
	family := a.opts.family()
	statName := a.setStat.Name()
	nullBC := a.broadcastNull(a.phenotype)
	wBC := rdd.NewBroadcast(a.ctx, weights, int64(len(weights))*8)

	perSet := rdd.Map(grouped, "liu", func(kv rdd.KV[int, []GenoRow]) SetAsymptoticResult {
		nm := nullBC.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		rows := make([][]data.Genotype, len(kv.V))
		w := make([]float64, len(kv.V))
		for i, r := range kv.V {
			rows[i] = r.G
			w[i] = wBC.Value()[r.SNP]
		}
		res := SetAsymptoticResult{Set: kv.K, SNPs: len(rows)}
		switch statName {
		case "skat":
			res.Observed, res.PValue, err = stats.SKATAsymptotic(model, rows, w)
			if err != nil {
				panic(err)
			}
		case "burden":
			res.Observed, res.PValue = burdenAsymptotic(model, rows, w)
		default:
			panic(fmt.Sprintf("core: no asymptotic approximation for set statistic %q", statName))
		}
		return res
	}).SetSizeHint(48)

	results, err := rdd.Collect(perSet)
	if err != nil {
		return nil, err
	}
	for i := range results {
		results[i].Name = a.sets[results[i].Set].Name
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Set < results[j].Set })
	return results, nil
}

// burdenAsymptotic tests the burden statistic (Σ ω U)² against its 1-df
// chi-square null using the empirical variance of the collapsed per-patient
// contributions.
func burdenAsymptotic(model stats.Model, rows [][]data.Genotype, weights []float64) (observed, pvalue float64) {
	n := model.Patients()
	collapsed := make([]float64, n)
	u := make([]float64, n)
	for r, g := range rows {
		model.Contributions(g, u)
		for i, v := range u {
			collapsed[i] += weights[r] * v
		}
	}
	var sum, sumSq float64
	for _, v := range collapsed {
		sum += v
		sumSq += v * v
	}
	observed = sum * sum
	pvalue = stats.ChiSquaredSurvival(stats.Chi2Stat(sum, sumSq), 1)
	return observed, pvalue
}

// loadWeights reads the per-SNP weight vector onto the driver (lazily). The
// mutex makes the memoisation safe when the job server runs concurrent
// analyses against one Analysis.
func (a *Analysis) loadWeights() (data.Weights, error) {
	a.weightsMu.Lock()
	defer a.weightsMu.Unlock()
	if a.weightsVec != nil {
		return a.weightsVec, nil
	}
	raw, err := a.ctx.FS().ReadAll(a.weightsPath)
	if err != nil {
		return nil, err
	}
	w, err := data.ReadWeights(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	a.weightsVec = w
	return w, nil
}
