package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sparkscore/internal/cluster"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

func testContext(t testing.TB, nodes int) *rdd.Context {
	t.Helper()
	ctx, err := rdd.New(rdd.Config{
		Cluster:      cluster.Config{Nodes: nodes, Spec: cluster.M3TwoXLarge},
		DFSBlockSize: 4 << 10, // small blocks so test files span partitions
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func testDataset(t testing.TB, patients, snps, sets int, seed uint64) *data.Dataset {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Patients: patients, SNPs: snps, SNPSets: sets}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func stagedAnalysis(t testing.TB, ctx *rdd.Context, ds *data.Dataset, opts Options) *Analysis {
	t.Helper()
	paths, err := StageDataset(ctx, ds, "test")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalysis(ctx, paths, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func assertClose(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", name, len(got), len(want))
	}
	for i := range want {
		diff := math.Abs(got[i] - want[i])
		scale := math.Max(1, math.Abs(want[i]))
		if diff/scale > tol {
			t.Fatalf("%s[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
}

func TestObservedMatchesReference(t *testing.T) {
	ctx := testContext(t, 3)
	ds := testDataset(t, 40, 120, 8, 1)
	a := stagedAnalysis(t, ctx, ds, Options{})
	got, err := a.Observed()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceObserved(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "S0", got, want, 1e-9)
}

func TestObservedAllFamilies(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 30, 60, 5, 2)
	for _, family := range []string{"cox", "gaussian"} {
		a := stagedAnalysis(t, ctx, ds, Options{Family: family, Seed: 3})
		got, err := a.Observed()
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		want, err := ReferenceObserved(ds, Options{Family: family})
		if err != nil {
			t.Fatal(err)
		}
		assertClose(t, family, got, want, 1e-9)
	}
}

func TestBinomialFamily(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 30, 40, 4, 3)
	// Binarise the outcome for the binomial family.
	for i := range ds.Phenotype.Y {
		if ds.Phenotype.Y[i] > 12 {
			ds.Phenotype.Y[i] = 1
		} else {
			ds.Phenotype.Y[i] = 0
		}
	}
	a := stagedAnalysis(t, ctx, ds, Options{Family: "binomial"})
	got, err := a.Observed()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceObserved(ds, Options{Family: "binomial"})
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "binomial", got, want, 1e-9)
}

func TestUnknownFamilyRejectedEarly(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 10, 10, 2, 4)
	paths, err := StageDataset(ctx, ds, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnalysis(ctx, paths, Options{Family: "poisson"}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestMissingFilesRejected(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 10, 10, 2, 4)
	paths, err := StageDataset(ctx, ds, "test")
	if err != nil {
		t.Fatal(err)
	}
	broken := paths
	broken.Genotypes = "missing"
	if _, err := NewAnalysis(ctx, broken, Options{}); err == nil {
		t.Fatal("missing genotype file accepted")
	}
	broken = paths
	broken.Phenotype = "missing"
	if _, err := NewAnalysis(ctx, broken, Options{}); err == nil {
		t.Fatal("missing phenotype file accepted")
	}
}

func TestPermutationMatchesReference(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 25, 50, 5, 5)
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 7})
	got, err := a.Permutation(6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferencePermutation(ds, Options{Seed: 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "observed", got.Observed, want.Observed, 1e-9)
	if got.Iterations != 6 {
		t.Fatalf("iterations = %d", got.Iterations)
	}
	for k := range want.Exceed {
		if got.Exceed[k] != want.Exceed[k] {
			t.Fatalf("exceed[%d] = %d, want %d", k, got.Exceed[k], want.Exceed[k])
		}
	}
	assertClose(t, "pvalues", got.PValues, want.PValues, 1e-12)
}

func TestMonteCarloMatchesReference(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 25, 50, 5, 6)
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 9})
	got, err := a.MonteCarlo(8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceMonteCarlo(ds, Options{Seed: 9}, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "observed", got.Observed, want.Observed, 1e-9)
	for k := range want.Exceed {
		if got.Exceed[k] != want.Exceed[k] {
			t.Fatalf("exceed[%d] = %d, want %d", k, got.Exceed[k], want.Exceed[k])
		}
	}
}

func TestMonteCarloCacheDoesNotChangeResults(t *testing.T) {
	ds := testDataset(t, 20, 40, 4, 7)
	run := func(opts Options) *Result {
		ctx := testContext(t, 2)
		a := stagedAnalysis(t, ctx, ds, opts)
		res, err := a.MonteCarlo(5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cached := run(Options{Seed: 11})
	uncached := run(Options{Seed: 11}.WithoutCache())
	assertClose(t, "observed", uncached.Observed, cached.Observed, 1e-9)
	for k := range cached.Exceed {
		if cached.Exceed[k] != uncached.Exceed[k] {
			t.Fatalf("cache changed exceedances at set %d", k)
		}
	}
}

func TestMonteCarloCacheReducesVirtualTime(t *testing.T) {
	ds := testDataset(t, 60, 400, 10, 8)
	run := func(opts Options) float64 {
		ctx := testContext(t, 2)
		a := stagedAnalysis(t, ctx, ds, opts)
		ctx.ResetClock()
		if _, err := a.MonteCarlo(10); err != nil {
			t.Fatal(err)
		}
		return ctx.VirtualTime()
	}
	withCache := run(Options{Seed: 1})
	withoutCache := run(Options{Seed: 1}.WithoutCache())
	if withCache >= withoutCache {
		t.Fatalf("cached MC %.4fs >= uncached %.4fs", withCache, withoutCache)
	}
}

func TestPermutationDeterministicAcrossRuns(t *testing.T) {
	ds := testDataset(t, 20, 30, 3, 9)
	run := func() *Result {
		ctx := testContext(t, 2)
		a := stagedAnalysis(t, ctx, ds, Options{Seed: 21})
		res, err := a.Permutation(4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for k := range a.Exceed {
		if a.Exceed[k] != b.Exceed[k] {
			t.Fatalf("permutation not reproducible at set %d", k)
		}
	}
}

func TestAnalysisSurvivesExecutorFailure(t *testing.T) {
	ctx := testContext(t, 3)
	ds := testDataset(t, 25, 60, 5, 10)
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 2})
	want, err := ReferenceMonteCarlo(ds, Options{Seed: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx.FailExecutorAfter(0, 20) // mid-analysis failure
	got, err := a.MonteCarlo(5)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "observed", got.Observed, want.Observed, 1e-9)
	for k := range want.Exceed {
		if got.Exceed[k] != want.Exceed[k] {
			t.Fatalf("post-failure exceed[%d] = %d, want %d", k, got.Exceed[k], want.Exceed[k])
		}
	}
}

func TestNegativeIterationsRejected(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 10, 10, 2, 11)
	a := stagedAnalysis(t, ctx, ds, Options{})
	if _, err := a.Permutation(-1); err == nil {
		t.Fatal("negative permutation iterations accepted")
	}
	if _, err := a.MonteCarlo(-1); err == nil {
		t.Fatal("negative Monte Carlo iterations accepted")
	}
}

func TestZeroIterationsYieldObservedOnly(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 15, 20, 3, 12)
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 1})
	res, err := a.MonteCarlo(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || res.PValues != nil {
		t.Fatalf("zero-iteration result %+v", res)
	}
	want, _ := ReferenceObserved(ds, Options{})
	assertClose(t, "observed", res.Observed, want, 1e-9)
}

func TestMarginalAsymptotic(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 200, 50, 5, 13)
	a := stagedAnalysis(t, ctx, ds, Options{})
	results, err := a.MarginalAsymptotic()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 50 {
		t.Fatalf("%d marginal results, want 50", len(results))
	}
	seen := map[int]bool{}
	small := 0
	for _, r := range results {
		if r.PValue < 0 || r.PValue > 1 {
			t.Fatalf("SNP %d p-value %v", r.SNP, r.PValue)
		}
		if r.Variance < 0 {
			t.Fatalf("SNP %d variance %v", r.SNP, r.Variance)
		}
		if seen[r.SNP] {
			t.Fatalf("SNP %d reported twice", r.SNP)
		}
		seen[r.SNP] = true
		if r.PValue < 0.01 {
			small++
		}
	}
	// Under the global null, about 1% of 50 SNPs should be below 0.01;
	// more than 10 would indicate a broken test statistic.
	if small > 10 {
		t.Fatalf("%d of 50 null SNPs significant at 0.01", small)
	}
}

func TestParseGenotypeLineErrors(t *testing.T) {
	// Error cases must name the offending SNP and field so a bad line in a
	// multi-gigabyte genotype file is findable from the message alone.
	wantErr := func(line, msg string, patients int) {
		t.Helper()
		_, err := ParseGenotypeLine(line, patients)
		if err == nil {
			t.Fatalf("ParseGenotypeLine(%q) accepted, want error containing %q", line, msg)
		}
		if !strings.Contains(err.Error(), msg) {
			t.Fatalf("ParseGenotypeLine(%q) = %q, want message containing %q", line, err, msg)
		}
	}
	wantErr("no-tab-here", "missing tab", 3)
	wantErr("x\t0 1 2", `bad SNP id "x"`, 3)
	wantErr("-2\t0 1 2", `bad SNP id "-2"`, 3)
	wantErr("", "empty genotype line", 3)
	wantErr("   ", "empty genotype line", 3)
	wantErr("0\t0 1", "SNP 0 has 2 genotypes, want 3", 3)          // missing genotype
	wantErr("0\t0 1 2 1", "SNP 0 has 4 genotypes, want 3", 3)      // extra genotype
	wantErr("5\t0 1 7", `SNP 5: field 3: bad genotype "7"`, 3)     // out-of-domain code
	wantErr("5\t0 x 2", `SNP 5: field 2: bad genotype "x"`, 3)     // non-numeric code
	wantErr("5\t0 1 2.0", `SNP 5: field 3: bad genotype "2.0"`, 3) // non-integer code

	row, err := ParseGenotypeLine("4\t0 1 2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.SNP != 4 || row.G[2] != 2 {
		t.Fatalf("row = %+v", row)
	}
	// Trailing and repeated whitespace is tolerated, not an extra field.
	row, err = ParseGenotypeLine("4\t0  1 2 \t", 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.SNP != 4 || row.G[0] != 0 || row.G[1] != 1 || row.G[2] != 2 {
		t.Fatalf("row = %+v", row)
	}
}

func TestStageDatasetValidates(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 10, 10, 2, 14)
	ds.Weights = ds.Weights[:5] // corrupt
	if _, err := StageDataset(ctx, ds, "bad"); err == nil {
		t.Fatal("invalid dataset staged")
	}
}

func TestWarmKeepsCacheAcrossCalls(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 30, 80, 5, 15)
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 4})
	if err := a.Warm(); err != nil {
		t.Fatal(err)
	}
	if ctx.CachedBytes() == 0 {
		t.Fatal("Warm cached nothing")
	}
	res1, err := a.MonteCarlo(3)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.CachedBytes() == 0 {
		t.Fatal("MonteCarlo unpersisted the warm cache")
	}
	res2, err := a.MonteCarlo(3)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "observed", res2.Observed, res1.Observed, 1e-9)
	want, err := ReferenceMonteCarlo(ds, Options{Seed: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Exceed {
		if res1.Exceed[k] != want.Exceed[k] {
			t.Fatalf("warm exceed[%d] = %d, want %d", k, res1.Exceed[k], want.Exceed[k])
		}
	}
	warmBytes := ctx.CachedBytes()
	a.Release()
	// The warm U cache is gone; only the small cached weights RDD remains.
	if got := ctx.CachedBytes(); got >= warmBytes {
		t.Fatalf("%d bytes cached after Release, want fewer than %d", got, warmBytes)
	}
	a.Release() // idempotent
}

func TestBurdenMatchesReference(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 30, 80, 6, 16)
	opts := Options{SetStatistic: "burden", Seed: 8}
	a := stagedAnalysis(t, ctx, ds, opts)
	got, err := a.MonteCarlo(6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceMonteCarlo(ds, opts, 6)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "burden observed", got.Observed, want.Observed, 1e-9)
	for k := range want.Exceed {
		if got.Exceed[k] != want.Exceed[k] {
			t.Fatalf("burden exceed[%d] = %d, want %d", k, got.Exceed[k], want.Exceed[k])
		}
	}
}

func TestBurdenDiffersFromSKAT(t *testing.T) {
	ds := testDataset(t, 30, 40, 4, 17)
	skat, err := ReferenceObserved(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	burden, err := ReferenceObserved(ds, Options{SetStatistic: "burden"})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := range skat {
		if math.Abs(skat[k]-burden[k]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("burden and SKAT produced identical statistics on random data")
	}
}

func TestUnknownSetStatisticRejected(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 10, 10, 2, 18)
	paths, err := StageDataset(ctx, ds, "test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnalysis(ctx, paths, Options{SetStatistic: "acat"}); err == nil {
		t.Fatal("unknown set statistic accepted")
	}
	if _, err := ReferenceObserved(ds, Options{SetStatistic: "acat"}); err == nil {
		t.Fatal("reference accepted unknown set statistic")
	}
}

func TestBetaWeightedAnalysis(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 40, 60, 5, 19)
	var err error
	ds.Weights, err = stats.BetaMAFWeights(ds.Genotypes, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 6})
	got, err := a.Observed()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceObserved(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "beta-weighted S0", got, want, 1e-9)
}

func TestAdjustedAnalysisMatchesReference(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 60, 50, 5, 20)
	ds.Covariates = gen.Covariates(gen.Config{Patients: 60, SNPs: 50, SNPSets: 5}, rng.New(3))
	opts := Options{Seed: 10}
	a := stagedAnalysis(t, ctx, ds, opts)
	got, err := a.MonteCarlo(5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceMonteCarlo(ds, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "adjusted observed", got.Observed, want.Observed, 1e-9)
	for k := range want.Exceed {
		if got.Exceed[k] != want.Exceed[k] {
			t.Fatalf("adjusted exceed[%d] = %d, want %d", k, got.Exceed[k], want.Exceed[k])
		}
	}
}

func TestAdjustedAnalysisDiffersFromUnadjusted(t *testing.T) {
	ds := testDataset(t, 80, 30, 3, 21)
	cov := gen.Covariates(gen.Config{Patients: 80, SNPs: 30, SNPSets: 3}, rng.New(5))
	// Make the covariate matter: shift the outcome by the first covariate.
	for i := range ds.Phenotype.Y {
		ds.Phenotype.Y[i] += 5 * cov.Rows[i][0]
	}
	plain, err := ReferenceObserved(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds.Covariates = cov
	adjusted, err := ReferenceObserved(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := range plain {
		if math.Abs(plain[k]-adjusted[k]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("covariate adjustment changed nothing")
	}
}

func TestPermutationRefusesCovariates(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 20, 10, 2, 22)
	ds.Covariates = gen.Covariates(gen.Config{Patients: 20, SNPs: 10, SNPSets: 2}, rng.New(7))
	a := stagedAnalysis(t, ctx, ds, Options{})
	if _, err := a.Permutation(2); err == nil {
		t.Fatal("permutation with covariates accepted")
	}
	if _, err := ReferencePermutation(ds, Options{}, 2); err == nil {
		t.Fatal("reference permutation with covariates accepted")
	}
	// Monte Carlo must still work.
	if _, err := a.MonteCarlo(2); err != nil {
		t.Fatalf("Monte Carlo with covariates failed: %v", err)
	}
}

func TestCovariatePatientMismatchRejected(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 20, 10, 2, 23)
	paths, err := StageDataset(ctx, ds, "test")
	if err != nil {
		t.Fatal(err)
	}
	// Stage covariates for a different cohort size.
	short := gen.Covariates(gen.Config{Patients: 5, SNPs: 10, SNPSets: 2}, rng.New(1))
	var buf bytes.Buffer
	if err := data.WriteCovariates(&buf, short); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.FS().Write("test/covariates.txt", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	paths.Covariates = "test/covariates.txt"
	if _, err := NewAnalysis(ctx, paths, Options{}); err == nil {
		t.Fatal("covariate/phenotype size mismatch accepted")
	}
}

func TestSetAsymptoticAgreesWithMonteCarlo(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 300, 40, 5, 24)
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 12})
	asym, err := a.SetAsymptotic()
	if err != nil {
		t.Fatal(err)
	}
	if len(asym) != 5 {
		t.Fatalf("%d asymptotic results, want 5", len(asym))
	}
	mc, err := a.MonteCarlo(800)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range asym {
		if r.PValue < 0 || r.PValue > 1 {
			t.Fatalf("set %d p = %v", r.Set, r.PValue)
		}
		if math.Abs(r.Observed-mc.Observed[r.Set]) > 1e-6*(1+mc.Observed[r.Set]) {
			t.Fatalf("set %d observed %v vs MC %v", r.Set, r.Observed, mc.Observed[r.Set])
		}
		if diff := math.Abs(r.PValue - mc.PValues[r.Set]); diff > 0.12 {
			t.Fatalf("set %d (%d SNPs): asymptotic p %.4f vs MC p %.4f",
				r.Set, r.SNPs, r.PValue, mc.PValues[r.Set])
		}
	}
}

func TestSetAsymptoticBurden(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 200, 30, 4, 25)
	a := stagedAnalysis(t, ctx, ds, Options{SetStatistic: "burden", Seed: 13})
	asym, err := a.SetAsymptotic()
	if err != nil {
		t.Fatal(err)
	}
	mc, err := a.MonteCarlo(600)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range asym {
		if math.Abs(r.Observed-mc.Observed[r.Set]) > 1e-6*(1+mc.Observed[r.Set]) {
			t.Fatalf("burden set %d observed %v vs MC %v", r.Set, r.Observed, mc.Observed[r.Set])
		}
		if diff := math.Abs(r.PValue - mc.PValues[r.Set]); diff > 0.12 {
			t.Fatalf("burden set %d: asymptotic p %.4f vs MC p %.4f", r.Set, r.PValue, mc.PValues[r.Set])
		}
	}
}

func TestSetAsymptoticCoversEverySet(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 40, 60, 7, 26)
	a := stagedAnalysis(t, ctx, ds, Options{})
	asym, err := a.SetAsymptotic()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := 0
	for _, r := range asym {
		if seen[r.Set] {
			t.Fatalf("set %d reported twice", r.Set)
		}
		seen[r.Set] = true
		if r.Name != ds.SNPSets[r.Set].Name {
			t.Fatalf("set %d name %q, want %q", r.Set, r.Name, ds.SNPSets[r.Set].Name)
		}
		if r.SNPs != len(ds.SNPSets[r.Set].SNPs) {
			t.Fatalf("set %d has %d SNPs, want %d", r.Set, r.SNPs, len(ds.SNPSets[r.Set].SNPs))
		}
		total += r.SNPs
	}
	if len(asym) != 7 {
		t.Fatalf("%d sets reported, want 7", len(asym))
	}
	if total != ds.SNPSets.TotalMembers() {
		t.Fatalf("total member SNPs %d, want %d", total, ds.SNPSets.TotalMembers())
	}
}

func TestWriteResultRoundTrip(t *testing.T) {
	ctx := testContext(t, 1)
	ds := testDataset(t, 20, 15, 3, 27)
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 1})
	res, err := a.MonteCarlo(10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	ps, err := ReadResultPValues(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, "round-trip pvalues", ps, res.PValues, 1e-9)

	// Zero-iteration results carry NA p-values.
	res0, err := a.MonteCarlo(0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteResult(&buf, res0); err != nil {
		t.Fatal(err)
	}
	ps0, err := ReadResultPValues(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps0 {
		if p != -1 {
			t.Fatalf("NA p-value parsed as %v", p)
		}
	}
}

func TestReadResultPValuesErrors(t *testing.T) {
	if _, err := ReadResultPValues(bytes.NewReader([]byte("bogus\n"))); err == nil {
		t.Fatal("bad header accepted")
	}
	bad := "set\tname\tsnps\tobserved\texceed\titerations\tpvalue\n1\tx\n"
	if _, err := ReadResultPValues(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatal("short row accepted")
	}
	bad = "set\tname\tsnps\tobserved\texceed\titerations\tpvalue\n0\tx\t1\t2\t3\t4\tzz\n"
	if _, err := ReadResultPValues(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatal("bad pvalue accepted")
	}
}

func TestDiskSpillDoesNotChangeResults(t *testing.T) {
	ds := testDataset(t, 30, 60, 5, 28)
	run := func(opts Options) *Result {
		ctx := testContext(t, 2)
		a := stagedAnalysis(t, ctx, ds, opts)
		res, err := a.MonteCarlo(6)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	memOnly := run(Options{Seed: 14})
	spilled := run(Options{Seed: 14, DiskSpill: true})
	assertClose(t, "observed", spilled.Observed, memOnly.Observed, 1e-9)
	for k := range memOnly.Exceed {
		if memOnly.Exceed[k] != spilled.Exceed[k] {
			t.Fatalf("disk spill changed exceedances at set %d", k)
		}
	}
}

func TestMonteCarloResultsUnchangedUnderFaults(t *testing.T) {
	// The lineage-recovery claim, end to end: crashing tasks, losing shuffle
	// fetches, and killing a whole machine mid-analysis must not change a
	// single number of the inference.
	ds := testDataset(t, 20, 40, 4, 7)
	run := func(faults rdd.FaultProfile) (*Result, rdd.RecoveryStats) {
		ctx, err := rdd.New(rdd.Config{
			Cluster:      cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
			DFSBlockSize: 4 << 10,
			Seed:         11,
			Faults:       faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		a := stagedAnalysis(t, ctx, ds, Options{Seed: 11})
		res, err := a.MonteCarlo(5)
		if err != nil {
			t.Fatal(err)
		}
		return res, rdd.SummarizeRecovery(ctx.Jobs())
	}
	clean, cleanRec := run(rdd.FaultProfile{})
	chaos, chaosRec := run(rdd.FaultProfile{
		TaskCrashProb:    0.25,
		FetchFailureProb: 0.15,
		NodeLoss:         []rdd.NodeLoss{{Node: 0, AfterTasks: 8}},
	})
	if cleanRec.TaskRetries != 0 || cleanRec.StageAttempts != 0 {
		t.Fatalf("fault-free run recorded recovery work: %+v", cleanRec)
	}
	if chaosRec.TaskRetries == 0 && chaosRec.StageAttempts == 0 {
		t.Fatalf("chaos profile injected nothing: %+v", chaosRec)
	}
	assertClose(t, "observed", chaos.Observed, clean.Observed, 1e-9)
	for k := range clean.Exceed {
		if clean.Exceed[k] != chaos.Exceed[k] {
			t.Fatalf("faults changed exceedances at set %d: %d != %d",
				k, chaos.Exceed[k], clean.Exceed[k])
		}
	}
}
