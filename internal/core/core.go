// Package core implements SparkScore: the paper's Algorithms 1 (observed
// SKAT statistics), 2 (permutation resampling), and 3 (Monte Carlo
// resampling with a cached score-contribution RDD), expressed against the
// rdd engine exactly as the paper expresses them against Spark.
//
// The data flow of Algorithm 1:
//
//	weights file  ──map──►  RDD (snp, ω²)            ─┐
//	genotype file ──map──►  RDD (snp, genotypes)      │
//	              ──filter by union of SNP-sets──►    │
//	              ──map (broadcast phenotype)──►      │
//	              RDD U (snp, per-patient U_ij)       │
//	              ──map──►  RDD (snp, U_j²)          ─┴─join──► (snp, ω²·U_j²)
//	              ──flatMap set membership / reduceByKey──► (set, S_k)
//
// Algorithm 2 re-runs the whole pipeline per iteration under a shuffled
// phenotype; Algorithm 3 caches RDD U and per iteration only reweights it
// with standard-normal draws (Lin 2005), skipping the genotype parse and
// score recomputation entirely.
package core

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

// Paths names the four HDFS input files of Algorithm 1, plus an optional
// covariates file for adjusted analyses ("" = unadjusted).
type Paths struct {
	Genotypes  string
	Phenotype  string
	Weights    string
	SNPSets    string
	Covariates string
}

// Options tunes an analysis.
type Options struct {
	// Family selects the score statistic: "cox" (default), "gaussian", or
	// "binomial".
	Family string

	// SetStatistic selects how marginal scores aggregate into set-level
	// statistics: "skat" (default, the paper's statistic) or "burden".
	SetStatistic string

	// Cache controls whether Monte Carlo caches RDD U (Algorithm 3 step 2).
	// The paper's Experiment B flips exactly this switch. Default true.
	Cache *bool

	// DiskSpill persists RDD U at MEMORY_AND_DISK instead of Spark's default
	// MEMORY_ONLY: partitions that overflow executor storage are demoted to
	// local disk rather than recomputed from the genotype file — the
	// configuration change that would have cured the paper's 6-node
	// strong-scaling collapse (Figure 6).
	DiskSpill bool

	// Columnar selects the 2-bit packed genotype engine (default on):
	// RDD_FGM carries data.GenoBlock columns, contributions are computed by
	// blocked kernels, and Monte Carlo reweighting is a matrix–vector
	// product over cached stats.UBlock rows. False falls back to the boxed
	// per-row pipeline — the ablation baseline, pinned byte-identical to the
	// columnar results.
	Columnar *bool

	// Seed drives the resampling draws; a fixed seed reproduces p-values.
	Seed uint64
}

func (o Options) family() string {
	if o.Family == "" {
		return "cox"
	}
	return o.Family
}

func (o Options) cache() bool { return o.Cache == nil || *o.Cache }

func (o Options) columnar() bool { return o.Columnar == nil || *o.Columnar }

// CacheOff is a convenience for Options.Cache.
var cacheOff = false

// WithoutCache returns a copy of o with caching disabled.
func (o Options) WithoutCache() Options {
	o.Cache = &cacheOff
	return o
}

// WithColumnar returns a copy of o with the columnar engine switched on or
// off (the packed-vs-boxed ablation flag).
func (o Options) WithColumnar(on bool) Options {
	o.Columnar = &on
	return o
}

// GenoRow is one parsed genotype-matrix line: a SNP and its per-patient
// genotypes, the element of the paper's RDD_GM.
type GenoRow struct {
	SNP int
	G   []data.Genotype
}

// Result holds the outcome of a resampling analysis.
type Result struct {
	Sets       data.SNPSets
	Observed   []float64 // S_k^0 per set
	Exceed     []int     // counter_k: replicates with S_k^b >= S_k^0
	Iterations int
	PValues    []float64 // (counter_k+1)/(B+1)
}

// Analysis binds a driver context to staged input files and exposes the
// three algorithms.
type Analysis struct {
	ctx  *rdd.Context
	opts Options

	phenotype  *data.Phenotype
	covariates [][]float64 // nil when unadjusted
	sets       data.SNPSets
	patients   int

	// membership maps each SNP to the indices of the sets containing it,
	// broadcast to executors for the SKAT aggregation.
	membership *rdd.Broadcast[map[int][]int]

	weightsRDD  *rdd.RDD[rdd.KV[int, float64]] // (snp, ω_j)
	weightsPath string
	weightsMu   sync.Mutex   // guards weightsVec (lazily loaded, analyses may be served concurrently)
	weightsVec  data.Weights // lazily loaded driver-side copy
	genoPath    string
	setStat     stats.SetStatistic

	// warmU / warmUB, when non-nil, is a cached RDD U kept alive across
	// resampling calls (see Warm) — boxed per-row vectors or columnar
	// stats.UBlock matrices, depending on Options.Columnar.
	warmU  *rdd.RDD[rdd.KV[int, []float64]]
	warmUB *rdd.RDD[stats.UBlock]

	// warmFGM / warmFGMB, when non-nil, is the cached filtered genotype
	// matrix (see WarmGenotypes) in the corresponding layout.
	warmFGM  *rdd.RDD[GenoRow]
	warmFGMB *rdd.RDD[data.GenoBlock]
}

// NewAnalysis reads the small inputs (phenotype, SNP-sets) onto the driver,
// sets up the weight RDD, and validates the score family. The genotype
// matrix itself stays on the DFS and is only streamed through tasks.
func NewAnalysis(ctx *rdd.Context, paths Paths, opts Options) (*Analysis, error) {
	phRaw, err := ctx.FS().ReadAll(paths.Phenotype)
	if err != nil {
		return nil, err
	}
	ph, err := data.ReadPhenotype(bytes.NewReader(phRaw))
	if err != nil {
		return nil, err
	}
	setsRaw, err := ctx.FS().ReadAll(paths.SNPSets)
	if err != nil {
		return nil, err
	}
	sets, err := data.ReadSNPSets(bytes.NewReader(setsRaw))
	if err != nil {
		return nil, err
	}
	var covariates [][]float64
	if paths.Covariates != "" {
		covRaw, err := ctx.FS().ReadAll(paths.Covariates)
		if err != nil {
			return nil, err
		}
		cov, err := data.ReadCovariates(bytes.NewReader(covRaw))
		if err != nil {
			return nil, err
		}
		if cov.Patients() != ph.Patients() {
			return nil, fmt.Errorf("core: covariates for %d patients, phenotype has %d",
				cov.Patients(), ph.Patients())
		}
		covariates = cov.Rows
	}
	// Fail fast on an unusable family, covariates, or set statistic before
	// any job runs.
	if _, err := stats.NewAdjustedModel(opts.family(), ph, covariates); err != nil {
		return nil, err
	}
	setStat, err := stats.NewSetStatistic(opts.SetStatistic)
	if err != nil {
		return nil, err
	}
	if !ctx.FS().Exists(paths.Genotypes) {
		return nil, fmt.Errorf("core: genotype file %q not staged", paths.Genotypes)
	}

	member := map[int][]int{}
	for k, set := range sets {
		for _, j := range set.SNPs {
			member[j] = append(member[j], k)
		}
	}

	weightLines, err := ctx.TextFile(paths.Weights, 0)
	if err != nil {
		return nil, err
	}
	// RDD_Weights is built once per analysis (Algorithm 1 step 2) and reused
	// by the join of every resampling replicate; cache it so iterations do
	// not re-ingest the weight file.
	weightsRDD := rdd.Map(weightLines, "parseWeights", func(line string) rdd.KV[int, float64] {
		snp, w, err := parseWeightLine(line)
		if err != nil {
			panic(err)
		}
		return rdd.KV[int, float64]{K: snp, V: w}
	}).SetSizeHint(16).Cache()

	a := &Analysis{
		ctx:         ctx,
		opts:        opts,
		phenotype:   ph,
		covariates:  covariates,
		sets:        sets,
		patients:    ph.Patients(),
		membership:  rdd.NewBroadcast(ctx, member, int64(sets.TotalMembers())*16),
		weightsRDD:  weightsRDD,
		weightsPath: paths.Weights,
		genoPath:    paths.Genotypes,
		setStat:     setStat,
	}
	return a, nil
}

// Sets returns the SNP-sets of the analysis.
func (a *Analysis) Sets() data.SNPSets { return a.sets }

// Patients returns the cohort size.
func (a *Analysis) Patients() int { return a.patients }

// genoBlockRows is the number of SNP rows packed into one data.GenoBlock by
// the columnar ingest. Blocks never span text partitions, so a partition's
// final block may be shorter.
const genoBlockRows = 256

// filteredGenotypes builds the boxed RDD_FGM: the parsed genotype matrix
// restricted to SNPs appearing in some SNP-set (Algorithm 1 steps 3–5).
func (a *Analysis) filteredGenotypes() (*rdd.RDD[GenoRow], error) {
	if a.warmFGM != nil {
		return a.warmFGM, nil
	}
	lines, err := a.ctx.TextFile(a.genoPath, 0)
	if err != nil {
		return nil, err
	}
	patients := a.patients
	gm := rdd.Map(lines, "parseGenotypes", func(line string) GenoRow {
		row, err := ParseGenotypeLine(line, patients)
		if err != nil {
			panic(err)
		}
		return row
	}).SetSizeHint(8 + data.BoxedRowBytes(patients))
	member := a.membership
	return rdd.Filter(gm, "inSNPSets", func(r GenoRow) bool {
		_, ok := member.Value()[r.SNP]
		return ok
	}), nil
}

// filteredGenotypeBlocks builds the columnar RDD_FGM: genotype lines parsed
// and 2-bit packed into data.GenoBlock columns at the source, restricted to
// SNPs appearing in some SNP-set. The membership filter runs on the SNP-id
// prefix alone, before any genotype field is decoded (predicate pushdown),
// and the pack fuses with the text scan — no boxed row ever materialises.
func (a *Analysis) filteredGenotypeBlocks() (*rdd.RDD[data.GenoBlock], error) {
	if a.warmFGMB != nil {
		return a.warmFGMB, nil
	}
	lines, err := a.ctx.TextFile(a.genoPath, 0)
	if err != nil {
		return nil, err
	}
	patients := a.patients
	member := a.membership
	blocks := rdd.MapBatches(lines, "parsePackGenotypes", genoBlockRows, func(_ int, batch []string) data.GenoBlock {
		blk := data.NewGenoBlock(patients, len(batch))
		for _, line := range batch {
			snp, rest, err := parseSNPPrefix(line)
			if err != nil {
				panic(err)
			}
			if _, ok := member.Value()[snp]; !ok {
				continue
			}
			if err := blk.AppendTextRow(snp, rest); err != nil {
				panic(fmt.Errorf("core: SNP %d: %v", snp, err))
			}
		}
		return blk
	})
	nonEmpty := rdd.Filter(blocks, "nonEmptyBlocks", func(b data.GenoBlock) bool {
		return b.Rows() > 0
	})
	fullBlock := int64(genoBlockRows)*(int64(data.BlockRowBytes(patients))+8) + 96
	return nonEmpty.SetSizeHint(fullBlock).SetSizeFunc(data.GenoBlock.ApproxBytes), nil
}

// nullModel bundles what executors need to build the score model: the
// phenotype and, when adjusting, the covariate matrix.
type nullModel struct {
	Ph  *data.Phenotype
	Cov [][]float64
}

func (a *Analysis) broadcastNull(ph *data.Phenotype) *rdd.Broadcast[nullModel] {
	bytes := int64(ph.Patients()) * 17
	if a.covariates != nil && len(a.covariates) > 0 {
		bytes += int64(len(a.covariates)) * int64(len(a.covariates[0])) * 8
	}
	return rdd.NewBroadcast(a.ctx, nullModel{Ph: ph, Cov: a.covariates}, bytes)
}

// contributionsRDD builds RDD U for the given phenotype: (snp, [U_1j..U_nj])
// (Algorithm 1 step 7). The phenotype (and covariates, when adjusting) is
// broadcast; each partition builds the score model once and reuses it for
// all its SNPs, while the rows themselves stream through fused with the
// genotype parse upstream.
func (a *Analysis) contributionsRDD(fgm *rdd.RDD[GenoRow], ph *data.Phenotype) *rdd.RDD[rdd.KV[int, []float64]] {
	family := a.opts.family()
	bc := a.broadcastNull(ph)
	u := rdd.MapWithSetup(fgm, "scoreContributions", func(int) func(GenoRow) rdd.KV[int, []float64] {
		nm := bc.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		return func(row GenoRow) rdd.KV[int, []float64] {
			u := make([]float64, len(row.G))
			model.Contributions(row.G, u)
			return rdd.KV[int, []float64]{K: row.SNP, V: u}
		}
	})
	return u.SetSizeHint(32 + data.AllocBytes(int64(a.patients)*8))
}

// contributionBlocks is the columnar counterpart of contributionsRDD: each
// packed genotype block maps to a stats.UBlock through a blocked kernel that
// fuses the 2-bit dosage decode with the score accumulation. The kernel is
// built once per partition and owns its decode scratch, so steady-state
// allocations per block stay flat regardless of the patient count.
func (a *Analysis) contributionBlocks(blocks *rdd.RDD[data.GenoBlock], ph *data.Phenotype) *rdd.RDD[stats.UBlock] {
	family := a.opts.family()
	bc := a.broadcastNull(ph)
	u := rdd.MapWithSetup(blocks, "blockContributions", func(int) func(data.GenoBlock) stats.UBlock {
		nm := bc.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		return stats.NewBlockKernel(model).Contributions
	})
	fullBlock := int64(genoBlockRows)*(int64(a.patients)*8+4) + 96
	return u.SetSizeHint(fullBlock).SetSizeFunc(stats.UBlock.ApproxBytes)
}

// skatFromU runs Algorithm 1 steps 8–12 over a boxed RDD U: form the
// (optionally Monte Carlo-reweighted) marginal scores, then hand the per-SNP
// scores to skatFromScores. mc is nil for the observed statistic and the
// per-patient weights Z otherwise (Algorithm 3 step 4(I)).
func (a *Analysis) skatFromU(u *rdd.RDD[rdd.KV[int, []float64]], mc []float64) ([]float64, error) {
	var mcb *rdd.Broadcast[[]float64]
	if mc != nil {
		mcb = rdd.NewBroadcast(a.ctx, mc, int64(len(mc))*8)
	}
	inner := rdd.Map(u, "marginalScore", func(kv rdd.KV[int, []float64]) rdd.KV[int, float64] {
		var s float64
		if mcb == nil {
			for _, v := range kv.V {
				s += v
			}
		} else {
			z := mcb.Value()
			for i, v := range kv.V {
				s += v * z[i]
			}
		}
		return rdd.KV[int, float64]{K: kv.K, V: s}
	}).SetSizeHint(16)
	return a.skatFromScores(inner)
}

// skatFromUBlocks is the columnar counterpart of skatFromU: marginal scores
// come from a matrix–vector product over each cached stats.UBlock (one pass
// over the flat contribution matrix), then flow through the same join and
// set aggregation. Blocks emit their per-row scores in row order, so the
// downstream float sums accumulate in exactly the boxed pipeline's order —
// the statistics match the boxed path bitwise.
func (a *Analysis) skatFromUBlocks(u *rdd.RDD[stats.UBlock], mc []float64) ([]float64, error) {
	var mcb *rdd.Broadcast[[]float64]
	if mc != nil {
		mcb = rdd.NewBroadcast(a.ctx, mc, int64(len(mc))*8)
	}
	inner := rdd.FlatMap(u, "blockScores", func(b stats.UBlock) []rdd.KV[int, float64] {
		var z []float64
		if mcb != nil {
			z = mcb.Value()
		}
		scores := b.Scores(z, nil)
		out := make([]rdd.KV[int, float64], len(scores))
		for r, s := range scores {
			out[r] = rdd.KV[int, float64]{K: int(b.SNPs[r]), V: s}
		}
		return out
	}).SetSizeHint(16)
	return a.skatFromScores(inner)
}

// skatFromScores finishes Algorithm 1 from per-SNP marginal scores: join the
// weights, apply the set statistic's per-SNP term, aggregate into SNP-sets
// with a reduce, finalise per set, and return S indexed by set.
func (a *Analysis) skatFromScores(inner *rdd.RDD[rdd.KV[int, float64]]) ([]float64, error) {
	joined := rdd.Join(a.weightsRDD, inner, 0)
	setStat := a.setStat
	snpScore := rdd.Map(joined, "snpScore", func(kv rdd.KV[int, rdd.JoinPair[float64, float64]]) rdd.KV[int, float64] {
		return rdd.KV[int, float64]{K: kv.K, V: setStat.PerSNP(kv.V.Left, kv.V.Right)}
	}).SetSizeHint(16)

	member := a.membership
	perSet := rdd.FlatMap(snpScore, "bySet", func(kv rdd.KV[int, float64]) []rdd.KV[int, float64] {
		sets := member.Value()[kv.K]
		out := make([]rdd.KV[int, float64], len(sets))
		for i, k := range sets {
			out[i] = rdd.KV[int, float64]{K: k, V: kv.V}
		}
		return out
	}).SetSizeHint(16)

	sums, err := rdd.CollectAsMap(rdd.ReduceByKey(perSet, func(x, y float64) float64 { return x + y }, 0))
	if err != nil {
		return nil, err
	}
	s := make([]float64, len(a.sets))
	for k := range s {
		s[k] = setStat.Finalize(sums[k])
	}
	return s, nil
}

// repFunc computes one resampling pass over a built RDD U: the observed
// statistic for z == nil, or the Monte Carlo reweighted statistic for
// per-patient draws z.
type repFunc func(z []float64) ([]float64, error)

// contributionSource builds RDD U in the engine selected by Options.Columnar
// (or reuses the Warm()ed one) and returns the resampling pass over it. When
// cache is true and the RDD was built fresh it is persisted for the lifetime
// of the source; release drops it (and is a no-op otherwise).
func (a *Analysis) contributionSource(cache bool) (rep repFunc, release func(), err error) {
	release = func() {}
	if a.opts.columnar() {
		u := a.warmUB
		if u == nil {
			blocks, err := a.filteredGenotypeBlocks()
			if err != nil {
				return nil, nil, err
			}
			u = a.contributionBlocks(blocks, a.phenotype)
			if cache {
				u.Persist(a.persistLevel())
				release = u.Unpersist
			}
		}
		return func(z []float64) ([]float64, error) { return a.skatFromUBlocks(u, z) }, release, nil
	}
	u := a.warmU
	if u == nil {
		fgm, err := a.filteredGenotypes()
		if err != nil {
			return nil, nil, err
		}
		u = a.contributionsRDD(fgm, a.phenotype)
		if cache {
			u.Persist(a.persistLevel())
			release = u.Unpersist
		}
	}
	return func(z []float64) ([]float64, error) { return a.skatFromU(u, z) }, release, nil
}

// pipelineOnce runs the full Algorithm 1 pipeline once for the given
// phenotype, in the engine selected by Options.Columnar — the unit of work a
// permutation replicate re-executes.
func (a *Analysis) pipelineOnce(ph *data.Phenotype) ([]float64, error) {
	if a.opts.columnar() {
		blocks, err := a.filteredGenotypeBlocks()
		if err != nil {
			return nil, err
		}
		return a.skatFromUBlocks(a.contributionBlocks(blocks, ph), nil)
	}
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return nil, err
	}
	return a.skatFromU(a.contributionsRDD(fgm, ph), nil)
}

// Observed computes the observed SKAT statistics S_k^0 (Algorithm 1).
func (a *Analysis) Observed() ([]float64, error) {
	rep, release, err := a.contributionSource(false)
	if err != nil {
		return nil, err
	}
	defer release()
	return rep(nil)
}

// Permutation runs Algorithm 2: the observed statistic, then B full pipeline
// re-executions under random shufflings of the phenotype pairs.
func (a *Analysis) Permutation(iterations int) (*Result, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("core: %d iterations", iterations)
	}
	if a.covariates != nil {
		// Shuffling the outcomes would break their link to the covariates as
		// well as to the genotypes; this is exactly why the paper prefers
		// Lin's Monte Carlo method when baseline covariates are present.
		return nil, fmt.Errorf("core: permutation resampling cannot adjust for baseline covariates; use MonteCarlo")
	}
	observed, err := a.Observed()
	if err != nil {
		return nil, err
	}
	counter := stats.NewCounter(observed)
	root := rng.New(a.opts.Seed ^ 0x5ca1ab1e)
	for b := 1; b <= iterations; b++ {
		perm := root.Split(uint64(b)).Perm(a.patients)
		rep, err := a.pipelineOnce(a.phenotype.Permuted(perm))
		if err != nil {
			return nil, fmt.Errorf("core: permutation replicate %d: %w", b, err)
		}
		counter.Add(rep)
	}
	return a.result(observed, counter), nil
}

// persistLevel maps the DiskSpill option to a storage level.
func (a *Analysis) persistLevel() rdd.StorageLevel {
	if a.opts.DiskSpill {
		return rdd.MemoryAndDisk
	}
	return rdd.MemoryOnly
}

// Warm materialises RDD U and keeps it cached across subsequent resampling
// calls — an interactive-session extension of Algorithm 3's caching step,
// useful when several Monte Carlo analyses run against the same data.
// Release drops it.
func (a *Analysis) Warm() error {
	if a.opts.columnar() {
		if a.warmUB != nil {
			return nil
		}
		blocks, err := a.filteredGenotypeBlocks()
		if err != nil {
			return err
		}
		u := a.contributionBlocks(blocks, a.phenotype).Persist(a.persistLevel())
		if _, err := rdd.Count(u); err != nil {
			u.Unpersist()
			return err
		}
		a.warmUB = u
		return nil
	}
	if a.warmU != nil {
		return nil
	}
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return err
	}
	u := a.contributionsRDD(fgm, a.phenotype).Persist(a.persistLevel())
	if _, err := rdd.Count(u); err != nil {
		u.Unpersist()
		return err
	}
	a.warmU = u
	return nil
}

// Release drops the cached RDD U retained by Warm.
func (a *Analysis) Release() {
	if a.warmU != nil {
		a.warmU.Unpersist()
		a.warmU = nil
	}
	if a.warmUB != nil {
		a.warmUB.Unpersist()
		a.warmUB = nil
	}
}

// WarmGenotypes materialises RDD_FGM — the filtered genotype matrix, packed
// or boxed per Options.Columnar — and keeps it cached; subsequent pipeline
// builds read the cached matrix instead of re-scanning the text file. The
// harness uses the cached footprint of each layout as the columnar
// experiment's storage measurement.
func (a *Analysis) WarmGenotypes() error {
	if a.opts.columnar() {
		if a.warmFGMB != nil {
			return nil
		}
		blocks, err := a.filteredGenotypeBlocks()
		if err != nil {
			return err
		}
		blocks.Persist(a.persistLevel())
		if _, err := rdd.Count(blocks); err != nil {
			blocks.Unpersist()
			return err
		}
		a.warmFGMB = blocks
		return nil
	}
	if a.warmFGM != nil {
		return nil
	}
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return err
	}
	fgm.Persist(a.persistLevel())
	if _, err := rdd.Count(fgm); err != nil {
		fgm.Unpersist()
		return err
	}
	a.warmFGM = fgm
	return nil
}

// ReleaseGenotypes drops the cached RDD_FGM retained by WarmGenotypes.
func (a *Analysis) ReleaseGenotypes() {
	if a.warmFGM != nil {
		a.warmFGM.Unpersist()
		a.warmFGM = nil
	}
	if a.warmFGMB != nil {
		a.warmFGMB.Unpersist()
		a.warmFGMB = nil
	}
}

// MonteCarlo runs Algorithm 3: the observed statistic with RDD U cached,
// then B cheap reweightings Ũ_j = Σ_i Z_i U_ij with Z ~ N(0,1).
func (a *Analysis) MonteCarlo(iterations int) (*Result, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("core: %d iterations", iterations)
	}
	rep, release, err := a.contributionSource(a.opts.cache())
	if err != nil {
		return nil, err
	}
	defer release()
	observed, err := rep(nil)
	if err != nil {
		return nil, err
	}
	counter := stats.NewCounter(observed)
	root := rng.New(a.opts.Seed ^ 0xcafe)
	for b := 1; b <= iterations; b++ {
		r := root.Split(uint64(b))
		z := make([]float64, a.patients)
		for i := range z {
			z[i] = r.Normal()
		}
		s, err := rep(z)
		if err != nil {
			return nil, fmt.Errorf("core: Monte Carlo replicate %d: %w", b, err)
		}
		counter.Add(s)
	}
	return a.result(observed, counter), nil
}

// Replicate computes one Monte Carlo reweighting Ũ = Σ_i Z_i U_i with
// Z ~ N(0,1) drawn from the replicate's split of the analysis seed stream —
// the unit of interactive resampling the job server exposes. Replicate(b)
// returns exactly the b-th replicate MonteCarlo(B) would produce for b ≤ B,
// so served replicates and batch runs agree. Against a Warm()ed analysis it
// is a single cached-read job, cheap enough to serve at interactive latency.
func (a *Analysis) Replicate(replicate uint64) ([]float64, error) {
	rep, release, err := a.contributionSource(false)
	if err != nil {
		return nil, err
	}
	defer release()
	r := rng.New(a.opts.Seed ^ 0xcafe).Split(replicate)
	z := make([]float64, a.patients)
	for i := range z {
		z[i] = r.Normal()
	}
	return rep(z)
}

func (a *Analysis) result(observed []float64, counter *stats.Counter) *Result {
	res := &Result{
		Sets:       a.sets,
		Observed:   observed,
		Exceed:     counter.Exceedances(),
		Iterations: counter.Replicates(),
	}
	if counter.Replicates() > 0 {
		res.PValues = counter.PValues()
	}
	return res
}

// MarginalAsymptotic runs the variant-by-variant asymptotic analysis: for
// every analysed SNP, the score U_j, its null variance, and the 1-df
// chi-squared p-value — the large-sample alternative to resampling.
type MarginalResult struct {
	SNP      int
	Score    float64
	Variance float64
	PValue   float64
}

// MarginalAsymptotic computes per-SNP asymptotic score tests.
func (a *Analysis) MarginalAsymptotic() ([]MarginalResult, error) {
	if a.opts.columnar() {
		return a.marginalAsymptoticColumnar()
	}
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return nil, err
	}
	family := a.opts.family()
	bc := a.broadcastNull(a.phenotype)
	perSNP := rdd.MapWithSetup(fgm, "asymptotic", func(int) func(GenoRow) MarginalResult {
		nm := bc.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		return func(row GenoRow) MarginalResult {
			return marginalResult(model, row.SNP, row.G)
		}
	}).SetSizeHint(40)
	results, err := rdd.Collect(perSNP)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// marginalAsymptoticColumnar is MarginalAsymptotic over packed blocks: each
// block decodes row by row into the kernel's scratch buffer and evaluates
// the same score and variance terms, so results match the boxed path
// bitwise.
func (a *Analysis) marginalAsymptoticColumnar() ([]MarginalResult, error) {
	blocks, err := a.filteredGenotypeBlocks()
	if err != nil {
		return nil, err
	}
	family := a.opts.family()
	bc := a.broadcastNull(a.phenotype)
	perBlock := rdd.MapWithSetup(blocks, "asymptoticBlocks", func(int) func(data.GenoBlock) []MarginalResult {
		nm := bc.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		k := stats.NewBlockKernel(model)
		return func(b data.GenoBlock) []MarginalResult {
			out := make([]MarginalResult, b.Rows())
			for r := range out {
				out[r] = marginalResult(model, int(b.SNPs[r]), k.Decode(b, r))
			}
			return out
		}
	}).SetSizeHint(int64(genoBlockRows)*40 + 24)
	perSNP := rdd.FlatMap(perBlock, "asymptotic", func(rs []MarginalResult) []MarginalResult {
		return rs
	}).SetSizeHint(40)
	results, err := rdd.Collect(perSNP)
	if err != nil {
		return nil, err
	}
	return results, nil
}

func marginalResult(model stats.Model, snp int, g []data.Genotype) MarginalResult {
	score := stats.Score(model, g)
	variance := model.Variance(g)
	return MarginalResult{
		SNP:      snp,
		Score:    score,
		Variance: variance,
		PValue:   stats.ChiSquaredSurvival(stats.Chi2Stat(score, variance), 1),
	}
}

// parseSNPPrefix splits a genotype-matrix line into its SNP id and the
// genotype fields after the tab — the cheap prefix parse the columnar ingest
// runs before deciding whether to decode the fields at all.
func parseSNPPrefix(line string) (int, string, error) {
	if strings.TrimSpace(line) == "" {
		return 0, "", fmt.Errorf("core: empty genotype line")
	}
	snpStr, rest, ok := strings.Cut(line, "\t")
	if !ok {
		return 0, "", fmt.Errorf("core: genotype line missing tab: %q", truncate(line))
	}
	snp, err := strconv.Atoi(snpStr)
	if err != nil || snp < 0 {
		return 0, "", fmt.Errorf("core: bad SNP id %q", snpStr)
	}
	return snp, rest, nil
}

// ParseGenotypeLine parses one genotype-matrix line ("snp\tg1 g2 ... gn").
func ParseGenotypeLine(line string, patients int) (GenoRow, error) {
	snp, rest, err := parseSNPPrefix(line)
	if err != nil {
		return GenoRow{}, err
	}
	g, err := data.ParseGenotypeFields(strings.Fields(rest))
	if err != nil {
		return GenoRow{}, fmt.Errorf("core: SNP %d: %v", snp, err)
	}
	if len(g) != patients {
		return GenoRow{}, fmt.Errorf("core: SNP %d has %d genotypes, want %d", snp, len(g), patients)
	}
	return GenoRow{SNP: snp, G: g}, nil
}

func parseWeightLine(line string) (int, float64, error) {
	idStr, wStr, ok := strings.Cut(line, "\t")
	if !ok {
		return 0, 0, fmt.Errorf("core: weight line missing tab: %q", truncate(line))
	}
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 {
		return 0, 0, fmt.Errorf("core: bad SNP id %q", idStr)
	}
	w, err := strconv.ParseFloat(wStr, 64)
	if err != nil || w < 0 {
		return 0, 0, fmt.Errorf("core: bad weight %q", wStr)
	}
	return id, w, nil
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
