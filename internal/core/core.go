// Package core implements SparkScore: the paper's Algorithms 1 (observed
// SKAT statistics), 2 (permutation resampling), and 3 (Monte Carlo
// resampling with a cached score-contribution RDD), expressed against the
// rdd engine exactly as the paper expresses them against Spark.
//
// The data flow of Algorithm 1:
//
//	weights file  ──map──►  RDD (snp, ω²)            ─┐
//	genotype file ──map──►  RDD (snp, genotypes)      │
//	              ──filter by union of SNP-sets──►    │
//	              ──map (broadcast phenotype)──►      │
//	              RDD U (snp, per-patient U_ij)       │
//	              ──map──►  RDD (snp, U_j²)          ─┴─join──► (snp, ω²·U_j²)
//	              ──flatMap set membership / reduceByKey──► (set, S_k)
//
// Algorithm 2 re-runs the whole pipeline per iteration under a shuffled
// phenotype; Algorithm 3 caches RDD U and per iteration only reweights it
// with standard-normal draws (Lin 2005), skipping the genotype parse and
// score recomputation entirely.
package core

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

// Paths names the four HDFS input files of Algorithm 1, plus an optional
// covariates file for adjusted analyses ("" = unadjusted).
type Paths struct {
	Genotypes  string
	Phenotype  string
	Weights    string
	SNPSets    string
	Covariates string
}

// Options tunes an analysis.
type Options struct {
	// Family selects the score statistic: "cox" (default), "gaussian", or
	// "binomial".
	Family string

	// SetStatistic selects how marginal scores aggregate into set-level
	// statistics: "skat" (default, the paper's statistic) or "burden".
	SetStatistic string

	// Cache controls whether Monte Carlo caches RDD U (Algorithm 3 step 2).
	// The paper's Experiment B flips exactly this switch. Default true.
	Cache *bool

	// DiskSpill persists RDD U at MEMORY_AND_DISK instead of Spark's default
	// MEMORY_ONLY: partitions that overflow executor storage are demoted to
	// local disk rather than recomputed from the genotype file — the
	// configuration change that would have cured the paper's 6-node
	// strong-scaling collapse (Figure 6).
	DiskSpill bool

	// Seed drives the resampling draws; a fixed seed reproduces p-values.
	Seed uint64
}

func (o Options) family() string {
	if o.Family == "" {
		return "cox"
	}
	return o.Family
}

func (o Options) cache() bool { return o.Cache == nil || *o.Cache }

// CacheOff is a convenience for Options.Cache.
var cacheOff = false

// WithoutCache returns a copy of o with caching disabled.
func (o Options) WithoutCache() Options {
	o.Cache = &cacheOff
	return o
}

// GenoRow is one parsed genotype-matrix line: a SNP and its per-patient
// genotypes, the element of the paper's RDD_GM.
type GenoRow struct {
	SNP int
	G   []data.Genotype
}

// Result holds the outcome of a resampling analysis.
type Result struct {
	Sets       data.SNPSets
	Observed   []float64 // S_k^0 per set
	Exceed     []int     // counter_k: replicates with S_k^b >= S_k^0
	Iterations int
	PValues    []float64 // (counter_k+1)/(B+1)
}

// Analysis binds a driver context to staged input files and exposes the
// three algorithms.
type Analysis struct {
	ctx  *rdd.Context
	opts Options

	phenotype  *data.Phenotype
	covariates [][]float64 // nil when unadjusted
	sets       data.SNPSets
	patients   int

	// membership maps each SNP to the indices of the sets containing it,
	// broadcast to executors for the SKAT aggregation.
	membership *rdd.Broadcast[map[int][]int]

	weightsRDD  *rdd.RDD[rdd.KV[int, float64]] // (snp, ω_j)
	weightsPath string
	weightsMu   sync.Mutex   // guards weightsVec (lazily loaded, analyses may be served concurrently)
	weightsVec  data.Weights // lazily loaded driver-side copy
	genoPath    string
	setStat     stats.SetStatistic

	// warmU, when non-nil, is a cached RDD U kept alive across resampling
	// calls (see Warm).
	warmU *rdd.RDD[rdd.KV[int, []float64]]
}

// NewAnalysis reads the small inputs (phenotype, SNP-sets) onto the driver,
// sets up the weight RDD, and validates the score family. The genotype
// matrix itself stays on the DFS and is only streamed through tasks.
func NewAnalysis(ctx *rdd.Context, paths Paths, opts Options) (*Analysis, error) {
	phRaw, err := ctx.FS().ReadAll(paths.Phenotype)
	if err != nil {
		return nil, err
	}
	ph, err := data.ReadPhenotype(bytes.NewReader(phRaw))
	if err != nil {
		return nil, err
	}
	setsRaw, err := ctx.FS().ReadAll(paths.SNPSets)
	if err != nil {
		return nil, err
	}
	sets, err := data.ReadSNPSets(bytes.NewReader(setsRaw))
	if err != nil {
		return nil, err
	}
	var covariates [][]float64
	if paths.Covariates != "" {
		covRaw, err := ctx.FS().ReadAll(paths.Covariates)
		if err != nil {
			return nil, err
		}
		cov, err := data.ReadCovariates(bytes.NewReader(covRaw))
		if err != nil {
			return nil, err
		}
		if cov.Patients() != ph.Patients() {
			return nil, fmt.Errorf("core: covariates for %d patients, phenotype has %d",
				cov.Patients(), ph.Patients())
		}
		covariates = cov.Rows
	}
	// Fail fast on an unusable family, covariates, or set statistic before
	// any job runs.
	if _, err := stats.NewAdjustedModel(opts.family(), ph, covariates); err != nil {
		return nil, err
	}
	setStat, err := stats.NewSetStatistic(opts.SetStatistic)
	if err != nil {
		return nil, err
	}
	if !ctx.FS().Exists(paths.Genotypes) {
		return nil, fmt.Errorf("core: genotype file %q not staged", paths.Genotypes)
	}

	member := map[int][]int{}
	for k, set := range sets {
		for _, j := range set.SNPs {
			member[j] = append(member[j], k)
		}
	}

	weightLines, err := ctx.TextFile(paths.Weights, 0)
	if err != nil {
		return nil, err
	}
	// RDD_Weights is built once per analysis (Algorithm 1 step 2) and reused
	// by the join of every resampling replicate; cache it so iterations do
	// not re-ingest the weight file.
	weightsRDD := rdd.Map(weightLines, "parseWeights", func(line string) rdd.KV[int, float64] {
		snp, w, err := parseWeightLine(line)
		if err != nil {
			panic(err)
		}
		return rdd.KV[int, float64]{K: snp, V: w}
	}).SetSizeHint(16).Cache()

	a := &Analysis{
		ctx:         ctx,
		opts:        opts,
		phenotype:   ph,
		covariates:  covariates,
		sets:        sets,
		patients:    ph.Patients(),
		membership:  rdd.NewBroadcast(ctx, member, int64(sets.TotalMembers())*16),
		weightsRDD:  weightsRDD,
		weightsPath: paths.Weights,
		genoPath:    paths.Genotypes,
		setStat:     setStat,
	}
	return a, nil
}

// Sets returns the SNP-sets of the analysis.
func (a *Analysis) Sets() data.SNPSets { return a.sets }

// Patients returns the cohort size.
func (a *Analysis) Patients() int { return a.patients }

// filteredGenotypes builds RDD_FGM: the parsed genotype matrix restricted to
// SNPs appearing in some SNP-set (Algorithm 1 steps 3–5).
func (a *Analysis) filteredGenotypes() (*rdd.RDD[GenoRow], error) {
	lines, err := a.ctx.TextFile(a.genoPath, 0)
	if err != nil {
		return nil, err
	}
	patients := a.patients
	gm := rdd.Map(lines, "parseGenotypes", func(line string) GenoRow {
		row, err := ParseGenotypeLine(line, patients)
		if err != nil {
			panic(err)
		}
		return row
	}).SetSizeHint(int64(a.patients) + 32)
	member := a.membership
	return rdd.Filter(gm, "inSNPSets", func(r GenoRow) bool {
		_, ok := member.Value()[r.SNP]
		return ok
	}), nil
}

// nullModel bundles what executors need to build the score model: the
// phenotype and, when adjusting, the covariate matrix.
type nullModel struct {
	Ph  *data.Phenotype
	Cov [][]float64
}

func (a *Analysis) broadcastNull(ph *data.Phenotype) *rdd.Broadcast[nullModel] {
	bytes := int64(ph.Patients()) * 17
	if a.covariates != nil && len(a.covariates) > 0 {
		bytes += int64(len(a.covariates)) * int64(len(a.covariates[0])) * 8
	}
	return rdd.NewBroadcast(a.ctx, nullModel{Ph: ph, Cov: a.covariates}, bytes)
}

// contributionsRDD builds RDD U for the given phenotype: (snp, [U_1j..U_nj])
// (Algorithm 1 step 7). The phenotype (and covariates, when adjusting) is
// broadcast; each partition builds the score model once and reuses it for
// all its SNPs, while the rows themselves stream through fused with the
// genotype parse upstream.
func (a *Analysis) contributionsRDD(fgm *rdd.RDD[GenoRow], ph *data.Phenotype) *rdd.RDD[rdd.KV[int, []float64]] {
	family := a.opts.family()
	bc := a.broadcastNull(ph)
	u := rdd.MapWithSetup(fgm, "scoreContributions", func(int) func(GenoRow) rdd.KV[int, []float64] {
		nm := bc.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		return func(row GenoRow) rdd.KV[int, []float64] {
			u := make([]float64, len(row.G))
			model.Contributions(row.G, u)
			return rdd.KV[int, []float64]{K: row.SNP, V: u}
		}
	})
	return u.SetSizeHint(int64(a.patients)*8 + 48)
}

// skatFromU runs Algorithm 1 steps 8–12 over an existing RDD U: form the
// (optionally Monte Carlo-reweighted) marginal scores, join the weights,
// apply the set statistic's per-SNP term, aggregate into SNP-sets with a
// reduce, finalise per set, and return S indexed by set. mc is nil for the
// observed statistic and the per-patient weights Z otherwise (Algorithm 3
// step 4(I)).
func (a *Analysis) skatFromU(u *rdd.RDD[rdd.KV[int, []float64]], mc []float64) ([]float64, error) {
	var mcb *rdd.Broadcast[[]float64]
	if mc != nil {
		mcb = rdd.NewBroadcast(a.ctx, mc, int64(len(mc))*8)
	}
	inner := rdd.Map(u, "marginalScore", func(kv rdd.KV[int, []float64]) rdd.KV[int, float64] {
		var s float64
		if mcb == nil {
			for _, v := range kv.V {
				s += v
			}
		} else {
			z := mcb.Value()
			for i, v := range kv.V {
				s += v * z[i]
			}
		}
		return rdd.KV[int, float64]{K: kv.K, V: s}
	}).SetSizeHint(16)

	joined := rdd.Join(a.weightsRDD, inner, 0)
	setStat := a.setStat
	snpScore := rdd.Map(joined, "snpScore", func(kv rdd.KV[int, rdd.JoinPair[float64, float64]]) rdd.KV[int, float64] {
		return rdd.KV[int, float64]{K: kv.K, V: setStat.PerSNP(kv.V.Left, kv.V.Right)}
	}).SetSizeHint(16)

	member := a.membership
	perSet := rdd.FlatMap(snpScore, "bySet", func(kv rdd.KV[int, float64]) []rdd.KV[int, float64] {
		sets := member.Value()[kv.K]
		out := make([]rdd.KV[int, float64], len(sets))
		for i, k := range sets {
			out[i] = rdd.KV[int, float64]{K: k, V: kv.V}
		}
		return out
	}).SetSizeHint(16)

	sums, err := rdd.CollectAsMap(rdd.ReduceByKey(perSet, func(x, y float64) float64 { return x + y }, 0))
	if err != nil {
		return nil, err
	}
	s := make([]float64, len(a.sets))
	for k := range s {
		s[k] = setStat.Finalize(sums[k])
	}
	return s, nil
}

// Observed computes the observed SKAT statistics S_k^0 (Algorithm 1).
func (a *Analysis) Observed() ([]float64, error) {
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return nil, err
	}
	return a.skatFromU(a.contributionsRDD(fgm, a.phenotype), nil)
}

// Permutation runs Algorithm 2: the observed statistic, then B full pipeline
// re-executions under random shufflings of the phenotype pairs.
func (a *Analysis) Permutation(iterations int) (*Result, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("core: %d iterations", iterations)
	}
	if a.covariates != nil {
		// Shuffling the outcomes would break their link to the covariates as
		// well as to the genotypes; this is exactly why the paper prefers
		// Lin's Monte Carlo method when baseline covariates are present.
		return nil, fmt.Errorf("core: permutation resampling cannot adjust for baseline covariates; use MonteCarlo")
	}
	observed, err := a.Observed()
	if err != nil {
		return nil, err
	}
	counter := stats.NewCounter(observed)
	root := rng.New(a.opts.Seed ^ 0x5ca1ab1e)
	for b := 1; b <= iterations; b++ {
		perm := root.Split(uint64(b)).Perm(a.patients)
		fgm, err := a.filteredGenotypes()
		if err != nil {
			return nil, err
		}
		rep, err := a.skatFromU(a.contributionsRDD(fgm, a.phenotype.Permuted(perm)), nil)
		if err != nil {
			return nil, fmt.Errorf("core: permutation replicate %d: %w", b, err)
		}
		counter.Add(rep)
	}
	return a.result(observed, counter), nil
}

// persistLevel maps the DiskSpill option to a storage level.
func (a *Analysis) persistLevel() rdd.StorageLevel {
	if a.opts.DiskSpill {
		return rdd.MemoryAndDisk
	}
	return rdd.MemoryOnly
}

// Warm materialises RDD U and keeps it cached across subsequent resampling
// calls — an interactive-session extension of Algorithm 3's caching step,
// useful when several Monte Carlo analyses run against the same data.
// Release drops it.
func (a *Analysis) Warm() error {
	if a.warmU != nil {
		return nil
	}
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return err
	}
	u := a.contributionsRDD(fgm, a.phenotype).Persist(a.persistLevel())
	if _, err := rdd.Count(u); err != nil {
		u.Unpersist()
		return err
	}
	a.warmU = u
	return nil
}

// Release drops the cached RDD U retained by Warm.
func (a *Analysis) Release() {
	if a.warmU != nil {
		a.warmU.Unpersist()
		a.warmU = nil
	}
}

// MonteCarlo runs Algorithm 3: the observed statistic with RDD U cached,
// then B cheap reweightings Ũ_j = Σ_i Z_i U_ij with Z ~ N(0,1).
func (a *Analysis) MonteCarlo(iterations int) (*Result, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("core: %d iterations", iterations)
	}
	u := a.warmU
	if u == nil {
		fgm, err := a.filteredGenotypes()
		if err != nil {
			return nil, err
		}
		u = a.contributionsRDD(fgm, a.phenotype)
		if a.opts.cache() {
			u.Persist(a.persistLevel())
			defer u.Unpersist()
		}
	}
	observed, err := a.skatFromU(u, nil)
	if err != nil {
		return nil, err
	}
	counter := stats.NewCounter(observed)
	root := rng.New(a.opts.Seed ^ 0xcafe)
	for b := 1; b <= iterations; b++ {
		r := root.Split(uint64(b))
		z := make([]float64, a.patients)
		for i := range z {
			z[i] = r.Normal()
		}
		rep, err := a.skatFromU(u, z)
		if err != nil {
			return nil, fmt.Errorf("core: Monte Carlo replicate %d: %w", b, err)
		}
		counter.Add(rep)
	}
	return a.result(observed, counter), nil
}

// Replicate computes one Monte Carlo reweighting Ũ = Σ_i Z_i U_i with
// Z ~ N(0,1) drawn from the replicate's split of the analysis seed stream —
// the unit of interactive resampling the job server exposes. Replicate(b)
// returns exactly the b-th replicate MonteCarlo(B) would produce for b ≤ B,
// so served replicates and batch runs agree. Against a Warm()ed analysis it
// is a single cached-read job, cheap enough to serve at interactive latency.
func (a *Analysis) Replicate(replicate uint64) ([]float64, error) {
	u := a.warmU
	if u == nil {
		fgm, err := a.filteredGenotypes()
		if err != nil {
			return nil, err
		}
		u = a.contributionsRDD(fgm, a.phenotype)
	}
	r := rng.New(a.opts.Seed ^ 0xcafe).Split(replicate)
	z := make([]float64, a.patients)
	for i := range z {
		z[i] = r.Normal()
	}
	return a.skatFromU(u, z)
}

func (a *Analysis) result(observed []float64, counter *stats.Counter) *Result {
	res := &Result{
		Sets:       a.sets,
		Observed:   observed,
		Exceed:     counter.Exceedances(),
		Iterations: counter.Replicates(),
	}
	if counter.Replicates() > 0 {
		res.PValues = counter.PValues()
	}
	return res
}

// MarginalAsymptotic runs the variant-by-variant asymptotic analysis: for
// every analysed SNP, the score U_j, its null variance, and the 1-df
// chi-squared p-value — the large-sample alternative to resampling.
type MarginalResult struct {
	SNP      int
	Score    float64
	Variance float64
	PValue   float64
}

// MarginalAsymptotic computes per-SNP asymptotic score tests.
func (a *Analysis) MarginalAsymptotic() ([]MarginalResult, error) {
	fgm, err := a.filteredGenotypes()
	if err != nil {
		return nil, err
	}
	family := a.opts.family()
	bc := a.broadcastNull(a.phenotype)
	perSNP := rdd.MapWithSetup(fgm, "asymptotic", func(int) func(GenoRow) MarginalResult {
		nm := bc.Value()
		model, err := stats.NewAdjustedModel(family, nm.Ph, nm.Cov)
		if err != nil {
			panic(err)
		}
		return func(row GenoRow) MarginalResult {
			score := stats.Score(model, row.G)
			variance := model.Variance(row.G)
			return MarginalResult{
				SNP:      row.SNP,
				Score:    score,
				Variance: variance,
				PValue:   stats.ChiSquaredSurvival(stats.Chi2Stat(score, variance), 1),
			}
		}
	}).SetSizeHint(40)
	results, err := rdd.Collect(perSNP)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ParseGenotypeLine parses one genotype-matrix line ("snp\tg1 g2 ... gn").
func ParseGenotypeLine(line string, patients int) (GenoRow, error) {
	snpStr, rest, ok := strings.Cut(line, "\t")
	if !ok {
		return GenoRow{}, fmt.Errorf("core: genotype line missing tab: %q", truncate(line))
	}
	snp, err := strconv.Atoi(snpStr)
	if err != nil || snp < 0 {
		return GenoRow{}, fmt.Errorf("core: bad SNP id %q", snpStr)
	}
	g, err := data.ParseGenotypeFields(strings.Fields(rest))
	if err != nil {
		return GenoRow{}, fmt.Errorf("core: SNP %d: %v", snp, err)
	}
	if len(g) != patients {
		return GenoRow{}, fmt.Errorf("core: SNP %d has %d genotypes, want %d", snp, len(g), patients)
	}
	return GenoRow{SNP: snp, G: g}, nil
}

func parseWeightLine(line string) (int, float64, error) {
	idStr, wStr, ok := strings.Cut(line, "\t")
	if !ok {
		return 0, 0, fmt.Errorf("core: weight line missing tab: %q", truncate(line))
	}
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 {
		return 0, 0, fmt.Errorf("core: bad SNP id %q", idStr)
	}
	w, err := strconv.ParseFloat(wStr, 64)
	if err != nil || w < 0 {
		return 0, 0, fmt.Errorf("core: bad weight %q", wStr)
	}
	return id, w, nil
}

func truncate(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
