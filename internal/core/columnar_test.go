package core

import (
	"bytes"
	"testing"

	"sparkscore/internal/cluster"
	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
)

// columnarRun executes one Monte Carlo analysis in the given engine mode and
// returns the result plus the run's stripped event-log fingerprint.
func columnarRun(t *testing.T, ds *data.Dataset, columnar bool, faults rdd.FaultProfile, iters int) (*Result, string) {
	t.Helper()
	var logBuf bytes.Buffer
	elw := rdd.NewEventLogWriter(&logBuf)
	ctx, err := rdd.New(rdd.Config{
		Cluster:      cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		DFSBlockSize: 4 << 10,
		Seed:         11,
		Faults:       faults,
		Listeners:    []rdd.Listener{elw},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 7}.WithColumnar(columnar))
	res, err := a.MonteCarlo(iters)
	if err != nil {
		t.Fatal(err)
	}
	if err := elw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := rdd.ReadEventLog(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var fp bytes.Buffer
	for _, ev := range events {
		line, err := rdd.MarshalEvent(rdd.StripMeasuredTime(ev))
		if err != nil {
			t.Fatal(err)
		}
		fp.Write(line)
		fp.WriteByte('\n')
	}
	return res, fp.String()
}

// assertBitwiseResult compares two resampling results for exact (bitwise)
// float equality — the packed engine must not perturb a single ULP.
func assertBitwiseResult(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Fatalf("Iterations = %d, want %d", got.Iterations, want.Iterations)
	}
	if len(got.Observed) != len(want.Observed) {
		t.Fatalf("%d sets, want %d", len(got.Observed), len(want.Observed))
	}
	for k := range want.Observed {
		if got.Observed[k] != want.Observed[k] {
			t.Fatalf("Observed[%d] = %v, want %v", k, got.Observed[k], want.Observed[k])
		}
		if got.Exceed[k] != want.Exceed[k] {
			t.Fatalf("Exceed[%d] = %d, want %d", k, got.Exceed[k], want.Exceed[k])
		}
		if got.PValues[k] != want.PValues[k] {
			t.Fatalf("PValues[%d] = %v, want %v", k, got.PValues[k], want.PValues[k])
		}
	}
}

// TestColumnarBoxedByteParity is the ablation pin of the columnar engine:
// at two dataset scales, observed statistics, exceedance counters, and
// p-values must agree bitwise between the packed and boxed pipelines, and
// each mode's stripped event log must be byte-stable across reruns.
func TestColumnarBoxedByteParity(t *testing.T) {
	cases := []struct {
		name                  string
		patients, snps, tsets int
	}{
		{"small", 25, 60, 5},
		{"medium", 61, 200, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := testDataset(t, tc.patients, tc.snps, tc.tsets, 21)
			packed, fpPacked := columnarRun(t, ds, true, rdd.FaultProfile{}, 4)
			boxed, fpBoxed := columnarRun(t, ds, false, rdd.FaultProfile{}, 4)
			assertBitwiseResult(t, packed, boxed)

			packed2, fpPacked2 := columnarRun(t, ds, true, rdd.FaultProfile{}, 4)
			assertBitwiseResult(t, packed2, packed)
			if fpPacked != fpPacked2 {
				t.Fatal("columnar stripped event log not byte-stable across reruns")
			}
			boxed2, fpBoxed2 := columnarRun(t, ds, false, rdd.FaultProfile{}, 4)
			assertBitwiseResult(t, boxed2, boxed)
			if fpBoxed != fpBoxed2 {
				t.Fatal("boxed stripped event log not byte-stable across reruns")
			}
		})
	}
}

// TestColumnarBoxedParityUnderChaos repeats the parity pin under a fault
// profile that crashes tasks, fails shuffle fetches, and loses a node
// mid-run: recovery must not disturb the packed/boxed agreement, and the
// chaos run must reproduce the clean run's numbers exactly.
func TestColumnarBoxedParityUnderChaos(t *testing.T) {
	faults := rdd.FaultProfile{
		TaskCrashProb:    0.25,
		FetchFailureProb: 0.15,
		NodeLoss:         []rdd.NodeLoss{{Node: 0, AfterTasks: 8}},
	}
	ds := testDataset(t, 20, 40, 4, 7)
	packed, _ := columnarRun(t, ds, true, faults, 5)
	boxed, _ := columnarRun(t, ds, false, faults, 5)
	assertBitwiseResult(t, packed, boxed)

	clean, _ := columnarRun(t, ds, true, rdd.FaultProfile{}, 5)
	assertBitwiseResult(t, packed, clean)
}

// TestColumnarAsymptoticParity pins the non-resampling paths: per-SNP and
// per-set asymptotic tests must agree bitwise between the two layouts,
// including result order.
func TestColumnarAsymptoticParity(t *testing.T) {
	ds := testDataset(t, 33, 90, 6, 3)
	type pair struct {
		marginal []MarginalResult
		sets     []SetAsymptoticResult
	}
	run := func(columnar bool) pair {
		ctx := testContext(t, 3)
		a := stagedAnalysis(t, ctx, ds, Options{Family: "gaussian"}.WithColumnar(columnar))
		m, err := a.MarginalAsymptotic()
		if err != nil {
			t.Fatal(err)
		}
		s, err := a.SetAsymptotic()
		if err != nil {
			t.Fatal(err)
		}
		return pair{marginal: m, sets: s}
	}
	packed, boxed := run(true), run(false)
	if len(packed.marginal) != len(boxed.marginal) {
		t.Fatalf("%d marginal results, want %d", len(packed.marginal), len(boxed.marginal))
	}
	for i := range boxed.marginal {
		if packed.marginal[i] != boxed.marginal[i] {
			t.Fatalf("marginal[%d] = %+v, want %+v", i, packed.marginal[i], boxed.marginal[i])
		}
	}
	if len(packed.sets) != len(boxed.sets) {
		t.Fatalf("%d set results, want %d", len(packed.sets), len(boxed.sets))
	}
	for i := range boxed.sets {
		if packed.sets[i] != boxed.sets[i] {
			t.Fatalf("set[%d] = %+v, want %+v", i, packed.sets[i], boxed.sets[i])
		}
	}
}

// TestWarmGenotypesPackedBytesRatio pins the storage win the columnar layout
// exists for: with a realistic cohort, the cached packed genotype matrix
// must be at least 4x smaller than the boxed one under honest (size-class
// aware) cache accounting.
func TestWarmGenotypesPackedBytesRatio(t *testing.T) {
	ds := testDataset(t, 1000, 64, 4, 5)
	measure := func(columnar bool) int64 {
		ctx, err := rdd.New(rdd.Config{
			Cluster:      cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge},
			DFSBlockSize: 1 << 20, // whole file per partition: full blocks
			Seed:         11,
		})
		if err != nil {
			t.Fatal(err)
		}
		a := stagedAnalysis(t, ctx, ds, Options{}.WithColumnar(columnar))
		if err := a.WarmGenotypes(); err != nil {
			t.Fatal(err)
		}
		bytes := ctx.CachedBytes()
		a.ReleaseGenotypes()
		if after := ctx.CachedBytes(); after >= bytes {
			t.Fatalf("ReleaseGenotypes left %d of %d cached bytes", after, bytes)
		}
		return bytes
	}
	packed, boxed := measure(true), measure(false)
	if packed == 0 || boxed == 0 {
		t.Fatalf("cached bytes packed=%d boxed=%d, want both non-zero", packed, boxed)
	}
	if ratio := float64(boxed) / float64(packed); ratio < 4 {
		t.Fatalf("boxed/packed cached bytes = %.2f (boxed=%d packed=%d), want >= 4", ratio, boxed, packed)
	}
}

// TestColumnarWarmServesResampling checks the Warm/Release lifecycle of the
// packed engine: a Warm()ed analysis caches UBlocks, serves Replicate()
// identically to the cold path, and Release drops the cache.
func TestColumnarWarmServesResampling(t *testing.T) {
	ctx := testContext(t, 2)
	ds := testDataset(t, 30, 80, 5, 15)
	a := stagedAnalysis(t, ctx, ds, Options{Seed: 4})
	cold, err := a.Replicate(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Warm(); err != nil {
		t.Fatal(err)
	}
	if ctx.CachedBytes() == 0 {
		t.Fatal("Warm cached nothing")
	}
	warm, err := a.Replicate(3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range cold {
		if warm[k] != cold[k] {
			t.Fatalf("replicate[%d] = %v warm, %v cold", k, warm[k], cold[k])
		}
	}
	warmBytes := ctx.CachedBytes()
	a.Release()
	// Only the small cached weights RDD may remain.
	if got := ctx.CachedBytes(); got >= warmBytes {
		t.Fatalf("%d bytes cached after Release, want fewer than %d", got, warmBytes)
	}
}
