// Expression-phenotype generator for the all-pairs eQTL workload: M
// quantitative traits over the cohort, each a standard-normal draw (the null
// model of the Gaussian score — the engine's job is the scale of the cross,
// not effect detection, matching how the paper's synthetic study treats the
// genotypes).

package gen

import (
	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

// ExpressionMatrix draws phenos expression phenotypes for cfg.Patients
// patients. Each phenotype row derives its own RNG stream keyed by its id, so
// rows can be generated (or re-generated) in parallel and in any order, and
// adding phenotypes never perturbs existing ones.
func ExpressionMatrix(cfg Config, r *rng.RNG, phenos int) *data.PhenoMatrix {
	cfg = cfg.withDefaults()
	m := data.NewPhenoMatrix(cfg.Patients, phenos)
	row := make([]float64, cfg.Patients)
	for p := 0; p < phenos; p++ {
		FillExpressionRow(row, r, p)
		if err := m.AppendRow(p, row); err != nil {
			panic(err) // unreachable: normal draws are finite
		}
	}
	return &m
}

// FillExpressionRow fills row with phenotype p's expression values from p's
// split stream: independent N(0,1) draws per patient.
func FillExpressionRow(row []float64, r *rng.RNG, p int) {
	rr := r.Split(uint64(p))
	for i := range row {
		row[i] = rr.Normal()
	}
}
