package gen

import (
	"math"
	"testing"
	"testing/quick"

	"sparkscore/internal/rng"
)

func TestGenerateValidDataset(t *testing.T) {
	d, err := Generate(Config{Patients: 50, SNPs: 200, SNPSets: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
	if d.Genotypes.SNPs() != 200 || d.Genotypes.Patients != 50 {
		t.Fatalf("shape (%d,%d)", d.Genotypes.SNPs(), d.Genotypes.Patients)
	}
	if len(d.SNPSets) != 10 {
		t.Fatalf("%d sets, want 10", len(d.SNPSets))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Patients: 20, SNPs: 50, SNPSets: 5}, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Patients: 20, SNPs: 50, SNPSets: 5}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Genotypes.Rows {
		for i := range a.Genotypes.Rows[j] {
			if a.Genotypes.Rows[j][i] != b.Genotypes.Rows[j][i] {
				t.Fatalf("genotypes diverge at (%d,%d)", j, i)
			}
		}
	}
	for i := range a.Phenotype.Y {
		if a.Phenotype.Y[i] != b.Phenotype.Y[i] || a.Phenotype.Event[i] != b.Phenotype.Event[i] {
			t.Fatalf("phenotype diverges at %d", i)
		}
	}
	for k := range a.SNPSets {
		if len(a.SNPSets[k].SNPs) != len(b.SNPSets[k].SNPs) {
			t.Fatalf("set %d size diverges", k)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(Config{Patients: 100, SNPs: 10, SNPSets: 2}, 1)
	b, _ := Generate(Config{Patients: 100, SNPs: 10, SNPSets: 2}, 2)
	same := true
	for i := range a.Phenotype.Y {
		if a.Phenotype.Y[i] != b.Phenotype.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical phenotypes")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Patients: 0, SNPs: 10, SNPSets: 1},
		{Patients: 10, SNPs: 0, SNPSets: 1},
		{Patients: 10, SNPs: 10, SNPSets: 0},
		{Patients: 10, SNPs: 5, SNPSets: 6},
		{Patients: 10, SNPs: 10, SNPSets: 2, MinMAF: 0.6, MaxMAF: 0.4},
		{Patients: 10, SNPs: 10, SNPSets: 2, EventRate: 1.5},
		{Patients: 10, SNPs: 10, SNPSets: 2, MeanSurvival: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := (Config{Patients: 10, SNPs: 10, SNPSets: 2}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPhenotypeDistribution(t *testing.T) {
	cfg := Config{Patients: 100000, SNPs: 1, SNPSets: 1}
	p := Phenotype(cfg, rng.New(7))
	var sumY float64
	events := 0
	for i := range p.Y {
		if p.Y[i] < 0 {
			t.Fatalf("negative survival time %v", p.Y[i])
		}
		sumY += p.Y[i]
		if p.Event[i] == 1 {
			events++
		}
	}
	meanY := sumY / float64(len(p.Y))
	if math.Abs(meanY-12) > 0.3 {
		t.Errorf("mean survival %.3f, want ~12", meanY)
	}
	eventRate := float64(events) / float64(len(p.Y))
	if math.Abs(eventRate-0.85) > 0.01 {
		t.Errorf("event rate %.4f, want ~0.85", eventRate)
	}
}

func TestGenotypeFrequenciesWithinMAFRange(t *testing.T) {
	cfg := Config{Patients: 5000, SNPs: 20, SNPSets: 1, MinMAF: 0.2, MaxMAF: 0.3}
	m := Genotypes(cfg, rng.New(11))
	for j := 0; j < cfg.SNPs; j++ {
		sum := 0
		for _, g := range m.Rows[j] {
			sum += int(g)
		}
		// Empirical allele frequency = mean genotype / 2; must be near the
		// configured (0.2, 0.3) band, with sampling slack.
		freq := float64(sum) / float64(2*cfg.Patients)
		if freq < 0.15 || freq > 0.35 {
			t.Errorf("SNP %d empirical frequency %.3f outside sampled band", j, freq)
		}
	}
}

func TestGenotypeRowsOrderIndependent(t *testing.T) {
	cfg := Config{Patients: 10, SNPs: 5, SNPSets: 1}
	r := rng.New(13)
	full := Genotypes(cfg, r)
	// Regenerating row 3 alone must reproduce the same values.
	row := make([]int8, cfg.Patients)
	FillGenotypeRow(row, cfg, rng.New(13), 3)
	for i := range row {
		if row[i] != full.Rows[3][i] {
			t.Fatalf("row 3 regenerated differently at patient %d", i)
		}
	}
}

func TestSetsPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := r.Intn(200) + 2
		k := r.Intn(m) + 1
		cfg := Config{Patients: 1, SNPs: m, SNPSets: k}
		sets := Sets(cfg, r)
		if len(sets) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, s := range sets {
			if len(s.SNPs) == 0 {
				return false
			}
			for _, j := range s.SNPs {
				if j < 0 || j >= m {
					return false
				}
				seen[j] = true
			}
		}
		// Every SNP must be covered (the last set absorbs the remainder).
		return len(seen) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetsMeanSizeTracksMOverK(t *testing.T) {
	cfg := Config{Patients: 1, SNPs: 10000, SNPSets: 100}
	sets := Sets(cfg, rng.New(17))
	total := 0
	for _, s := range sets {
		total += len(s.SNPs)
	}
	mean := float64(total) / float64(len(sets))
	// Mean set size should be ~ m/K = 100; exponential rounding biases it
	// slightly below and the remainder set pulls it around, so be generous.
	if mean < 50 || mean > 200 {
		t.Fatalf("mean set size %.1f, want near 100", mean)
	}
}

func TestFlatWeights(t *testing.T) {
	w := FlatWeights(5)
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	for _, v := range w {
		if v != 1 {
			t.Fatalf("weight %v, want 1", v)
		}
	}
}

func TestCovariatesShapeAndBalance(t *testing.T) {
	cfg := Config{Patients: 4000, SNPs: 10, SNPSets: 2}
	cov := Covariates(cfg, rng.New(19))
	if cov.Patients() != 4000 || cov.Width() != 2 {
		t.Fatalf("shape (%d,%d)", cov.Patients(), cov.Width())
	}
	if err := cov.Validate(); err != nil {
		t.Fatal(err)
	}
	var sumAge, ones float64
	for _, row := range cov.Rows {
		sumAge += row[0]
		if row[1] != 0 && row[1] != 1 {
			t.Fatalf("sex indicator %v", row[1])
		}
		ones += row[1]
	}
	if math.Abs(sumAge/4000) > 0.08 {
		t.Fatalf("age mean %.3f, want ~0", sumAge/4000)
	}
	if frac := ones / 4000; math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("sex balance %.3f, want ~0.5", frac)
	}
}

func TestGenoBlocksDecodeToGenotypesMatrix(t *testing.T) {
	cfg := Config{Patients: 57, SNPs: 130, SNPSets: 5}
	matrix := Genotypes(cfg, rng.New(42))
	blocks := GenoBlocks(cfg, rng.New(42), 48)
	if len(blocks) != 3 {
		t.Fatalf("%d blocks for 130 SNPs at 48 rows/block, want 3", len(blocks))
	}
	j := 0
	var dec []int8
	for _, blk := range blocks {
		for r := 0; r < blk.Rows(); r++ {
			if int(blk.SNPs[r]) != j {
				t.Fatalf("block row carries SNP %d, want %d", blk.SNPs[r], j)
			}
			dec = blk.DecodeRow(r, dec)
			for i, v := range matrix.Row(j) {
				if dec[i] != v {
					t.Fatalf("SNP %d patient %d: packed %d, matrix %d", j, i, dec[i], v)
				}
			}
			j++
		}
	}
	if j != cfg.SNPs {
		t.Fatalf("blocks hold %d rows, want %d", j, cfg.SNPs)
	}
}
