// Package gen implements the synthetic data generator of Section III of the
// paper. The paper generated these inputs in R; the distributions are
// reproduced exactly:
//
//   - survival time Y_i ~ Exponential(rate 1/12), i.e. mean 12 months;
//   - event indicator Δ_i ~ Bernoulli(0.85), applied independently of Y
//     ("the event indicator is applied arbitrarily");
//   - genotype G_ij ~ Binomial(2, ρ_j) with the relative allelic frequency
//     ρ_j varied across SNPs;
//   - SNP-set sizes drawn from an exponential distribution with mean m/K
//     (m SNPs, K sets), rounded down, with values in (0,1) rounded up to 1;
//   - the final set K is augmented with every SNP not picked by sets 1..K-1
//     so the computation cost accounts for all m SNPs.
//
// SNPs are generated independently (the paper notes real SNPs are correlated
// but that correlation is irrelevant for measuring computational efficiency).
package gen

import (
	"fmt"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

// Config specifies the shape of a synthetic dataset. The fields mirror the
// input-parameter tables of the paper (Tables II, IV, VI, VII).
type Config struct {
	Patients int // n
	SNPs     int // m
	SNPSets  int // K

	// MinMAF and MaxMAF bound the uniform draw of the relative allelic
	// frequency ρ_j. Zero values default to (0.01, 0.5), the usual range
	// from rare variants up to balanced polymorphisms.
	MinMAF, MaxMAF float64

	// EventRate is the Bernoulli parameter for Δ; zero defaults to the
	// paper's 0.85.
	EventRate float64

	// MeanSurvival is the mean of the exponential survival time; zero
	// defaults to the paper's 12 (months).
	MeanSurvival float64
}

func (c Config) withDefaults() Config {
	if c.MinMAF == 0 && c.MaxMAF == 0 {
		c.MinMAF, c.MaxMAF = 0.01, 0.5
	}
	if c.EventRate == 0 {
		c.EventRate = 0.85
	}
	if c.MeanSurvival == 0 {
		c.MeanSurvival = 12
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Patients <= 0:
		return fmt.Errorf("gen: Patients = %d, must be positive", c.Patients)
	case c.SNPs <= 0:
		return fmt.Errorf("gen: SNPs = %d, must be positive", c.SNPs)
	case c.SNPSets <= 0:
		return fmt.Errorf("gen: SNPSets = %d, must be positive", c.SNPSets)
	case c.SNPSets > c.SNPs:
		return fmt.Errorf("gen: more SNP-sets (%d) than SNPs (%d)", c.SNPSets, c.SNPs)
	case c.MinMAF <= 0 || c.MaxMAF >= 1 || c.MinMAF > c.MaxMAF:
		return fmt.Errorf("gen: MAF range (%g,%g) not within (0,1)", c.MinMAF, c.MaxMAF)
	case c.EventRate <= 0 || c.EventRate > 1:
		return fmt.Errorf("gen: EventRate = %g outside (0,1]", c.EventRate)
	case c.MeanSurvival <= 0:
		return fmt.Errorf("gen: MeanSurvival = %g, must be positive", c.MeanSurvival)
	}
	return nil
}

// Generate builds a complete dataset from cfg, deterministically from seed.
// Distinct components (phenotype, each genotype row, set sizes) use split RNG
// streams, so generating the same configuration twice yields identical data
// regardless of internal iteration changes.
func Generate(cfg Config, seed uint64) (*data.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	root := rng.New(seed)

	return &data.Dataset{
		Genotypes: Genotypes(cfg, root.Split(1)),
		Phenotype: Phenotype(cfg, root.Split(2)),
		Weights:   FlatWeights(cfg.SNPs),
		SNPSets:   Sets(cfg, root.Split(3)),
	}, nil
}

// Phenotype draws the survival outcomes (Y_i, Δ_i) for cfg.Patients patients.
func Phenotype(cfg Config, r *rng.RNG) *data.Phenotype {
	cfg = cfg.withDefaults()
	p := data.NewPhenotype(cfg.Patients)
	for i := range p.Y {
		p.Y[i] = r.Exponential(1 / cfg.MeanSurvival)
		if r.Bernoulli(cfg.EventRate) {
			p.Event[i] = 1
		}
	}
	return p
}

// Genotypes draws the SNP-major genotype matrix. Each SNP row derives its own
// RNG stream keyed by the SNP index, so rows can be generated (or
// re-generated) in parallel and in any order.
func Genotypes(cfg Config, r *rng.RNG) *data.GenotypeMatrix {
	cfg = cfg.withDefaults()
	m := data.NewGenotypeMatrix(cfg.SNPs, cfg.Patients)
	for j := 0; j < cfg.SNPs; j++ {
		FillGenotypeRow(m.Rows[j], cfg, r, j)
	}
	return m
}

// FillGenotypeRow fills row with the genotypes of SNP j: ρ_j is drawn
// uniformly from the configured MAF range, then each genotype is
// Binomial(2, ρ_j). Exposed so large matrices can be generated partition by
// partition inside the engine without materialising the whole matrix first.
func FillGenotypeRow(row []data.Genotype, cfg Config, r *rng.RNG, j int) {
	cfg = cfg.withDefaults()
	rr := r.Split(uint64(j))
	rho := cfg.MinMAF + rr.Float64()*(cfg.MaxMAF-cfg.MinMAF)
	for i := range row {
		row[i] = data.Genotype(rr.Binomial(2, rho))
	}
}

// GenoBlocks draws the genotype matrix directly into packed 2-bit columnar
// blocks of up to rowsPerBlock SNP rows each, without materialising a boxed
// matrix. Each row uses the same per-SNP split stream as Genotypes, so the
// packed blocks decode to exactly the matrix Genotypes(cfg, r) would return.
func GenoBlocks(cfg Config, r *rng.RNG, rowsPerBlock int) []data.GenoBlock {
	cfg = cfg.withDefaults()
	if rowsPerBlock <= 0 {
		rowsPerBlock = 256
	}
	var blocks []data.GenoBlock
	row := make([]data.Genotype, cfg.Patients)
	for j := 0; j < cfg.SNPs; j += rowsPerBlock {
		hi := j + rowsPerBlock
		if hi > cfg.SNPs {
			hi = cfg.SNPs
		}
		blk := data.NewGenoBlock(cfg.Patients, hi-j)
		for jj := j; jj < hi; jj++ {
			FillGenotypeRow(row, cfg, r, jj)
			if err := blk.AppendRow(jj, row); err != nil {
				panic(err) // unreachable: generated genotypes are in {0,1,2}
			}
		}
		blocks = append(blocks, blk)
	}
	return blocks
}

// FlatWeights returns the unit SKAT weights used throughout the paper's
// experiments (the weights file exists as an input, but the synthetic study
// does not vary it).
func FlatWeights(snps int) data.Weights {
	w := make(data.Weights, snps)
	for j := range w {
		w[j] = 1
	}
	return w
}

// Sets partitions SNPs into cfg.SNPSets sets following Section III: the size
// of each set is drawn from an exponential distribution with mean m/K,
// rounded down (up to 1 from (0,1)); members are sampled arbitrarily from all
// SNPs without replacement; and the last set is augmented with all SNPs not
// picked by sets 1..K-1, so every SNP is analysed.
func Sets(cfg Config, r *rng.RNG) data.SNPSets {
	cfg = cfg.withDefaults()
	m, k := cfg.SNPs, cfg.SNPSets
	mean := float64(m) / float64(k)

	// Draw from a random permutation of all SNPs so set membership is
	// arbitrary and sampling without replacement is a slice walk.
	pool := r.Perm(m)
	next := 0
	take := func(want int) []int {
		if remaining := len(pool) - next; want > remaining {
			want = remaining
		}
		s := pool[next : next+want]
		next += want
		return s
	}

	sets := make(data.SNPSets, 0, k)
	for kk := 0; kk < k-1; kk++ {
		size := int(r.Exponential(1 / mean))
		if size < 1 {
			size = 1
		}
		members := take(size)
		if len(members) == 0 {
			// Pool exhausted early: reuse an arbitrary SNP so the set stays
			// non-empty (the partition property is best-effort, as in the
			// paper where set K absorbs the remainder).
			members = []int{pool[r.Intn(m)]}
		}
		sets = append(sets, data.SNPSet{Name: setName(kk), SNPs: cloneInts(members)})
	}
	// Set K: everything not yet picked (at least one SNP).
	rest := pool[next:]
	if len(rest) == 0 {
		rest = []int{pool[r.Intn(m)]}
	}
	sets = append(sets, data.SNPSet{Name: setName(k - 1), SNPs: cloneInts(rest)})
	return sets
}

// Covariates draws baseline covariates for cfg.Patients patients: a
// standardised age (N(0,1)) and a balanced 0/1 sex indicator — the kind of
// clinical variables an adjusted analysis controls for.
func Covariates(cfg Config, r *rng.RNG) *data.Covariates {
	cfg = cfg.withDefaults()
	rows := make([][]float64, cfg.Patients)
	for i := range rows {
		sex := 0.0
		if r.Bernoulli(0.5) {
			sex = 1
		}
		rows[i] = []float64{r.Normal(), sex}
	}
	return &data.Covariates{Rows: rows}
}

func setName(k int) string { return fmt.Sprintf("set%d", k) }

func cloneInts(a []int) []int {
	out := make([]int, len(a))
	copy(out, a)
	return out
}
