package gen

import (
	"math"
	"testing"

	"sparkscore/internal/rng"
)

func TestExpressionMatrixShapeAndDeterminism(t *testing.T) {
	cfg := Config{Patients: 50, SNPs: 10, SNPSets: 2}
	a := ExpressionMatrix(cfg, rng.New(42), 8)
	b := ExpressionMatrix(cfg, rng.New(42), 8)
	if a.Rows() != 8 || a.Patients != 50 {
		t.Fatalf("shape %dx%d, want 8x50", a.Rows(), a.Patients)
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			t.Fatalf("value %d differs across identical seeds", i)
		}
	}
	c := ExpressionMatrix(cfg, rng.New(43), 8)
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

// TestExpressionRowsOrderIndependent pins the split-stream property: a row's
// values depend only on its phenotype id, not on how many rows were drawn
// before it.
func TestExpressionRowsOrderIndependent(t *testing.T) {
	cfg := Config{Patients: 12, SNPs: 10, SNPSets: 2}
	wide := ExpressionMatrix(cfg, rng.New(7), 16)
	row5 := make([]float64, 12)
	FillExpressionRow(row5, rng.New(7), 5)
	for i, v := range wide.Row(5) {
		if math.Float64bits(v) != math.Float64bits(row5[i]) {
			t.Fatalf("row 5 patient %d: matrix %v, direct fill %v", i, v, row5[i])
		}
	}
}

func TestExpressionValuesRoughlyStandardNormal(t *testing.T) {
	cfg := Config{Patients: 2000, SNPs: 10, SNPSets: 2}
	m := ExpressionMatrix(cfg, rng.New(1), 4)
	for r := 0; r < m.Rows(); r++ {
		var sum, ss float64
		for _, v := range m.Row(r) {
			sum += v
			ss += v * v
		}
		n := float64(m.Patients)
		mean := sum / n
		sd := math.Sqrt(ss/n - mean*mean)
		if math.Abs(mean) > 0.1 || math.Abs(sd-1) > 0.1 {
			t.Fatalf("row %d: mean %v sd %v, want ~N(0,1)", r, mean, sd)
		}
	}
}
