package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitOrderInsensitive(t *testing.T) {
	parent1 := New(7)
	parent2 := New(7)
	// Derive key 5 after deriving other keys first in one case.
	parent2.Split(1)
	parent2.Split(9)
	s1 := parent1.Split(5)
	s2 := parent2.Split(5)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("Split(5) depends on prior Split calls at draw %d", i)
		}
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	parent := New(3)
	a := parent.Split(0)
	b := parent.Split(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times out of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %.4f, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(19)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %.0f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		z := r.Normal()
		sum += z
		sumSq += z * z
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestNormalTails(t *testing.T) {
	r := New(29)
	const n = 100000
	beyond2 := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.Normal()) > 2 {
			beyond2++
		}
	}
	// P(|Z|>2) ≈ 0.0455.
	frac := float64(beyond2) / n
	if frac < 0.035 || frac > 0.056 {
		t.Fatalf("fraction beyond 2 sigma = %.4f, want ~0.0455", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(31)
	const n = 200000
	rate := 1.0 / 12.0 // the paper's survival-time rate
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(rate)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-12) > 0.2 {
		t.Fatalf("exponential mean %.3f, want ~12", mean)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestBernoulliRate(t *testing.T) {
	r := New(37)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.85) { // the paper's event rate
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.85) > 0.01 {
		t.Fatalf("Bernoulli(0.85) rate %.4f", frac)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(41)
	const n = 100000
	p := 0.3
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		k := r.Binomial(2, p) // genotype model from Section III
		if k < 0 || k > 2 {
			t.Fatalf("Binomial(2,p) = %d out of range", k)
		}
		sum += float64(k)
		sumSq += float64(k * k)
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2*p) > 0.02 {
		t.Errorf("binomial mean %.4f, want %.2f", mean, 2*p)
	}
	if math.Abs(variance-2*p*(1-p)) > 0.02 {
		t.Errorf("binomial variance %.4f, want %.3f", variance, 2*p*(1-p))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	f := func(seed uint64) bool {
		n := int(seed%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(47)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("Perm first element %d appeared %d times, expected ~%.0f", i, c, want)
		}
	}
}

func TestShuffleZeroAndOne(t *testing.T) {
	r := New(53)
	// Must not call swap for n <= 1.
	r.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	r.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}
