// Package rng provides a deterministic, splittable pseudo-random number
// generator together with the distribution samplers SparkScore needs
// (uniform, normal, exponential, Bernoulli, binomial) and a Fisher–Yates
// shuffle.
//
// Determinism matters here for two reasons. First, resampling inference must
// be reproducible: a permutation p-value is only auditable if the B shuffles
// can be regenerated from a seed. Second, the engine executes partitions in
// parallel and possibly re-executes them after a simulated executor failure;
// every partition therefore derives its own independent stream via Split so
// that results do not depend on scheduling order or on recomputation.
//
// The core generator is xoshiro256** seeded through SplitMix64, both public
// domain algorithms by Blackman and Vigna. They are small, fast, pass BigCrush,
// and — unlike math/rand's global source — are trivially splittable.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; construct one
// with New or Split. RNG is not safe for concurrent use; give each goroutine
// its own stream via Split.
type RNG struct {
	s0, s1, s2, s3 uint64

	// Cached second output of the polar normal method.
	spare     float64
	haveSpare bool
}

// splitmix64 advances the given state and returns the next output. It is used
// both to seed xoshiro from a single 64-bit seed and to mix split keys.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	r.s0 = splitmix64(&st)
	r.s1 = splitmix64(&st)
	r.s2 = splitmix64(&st)
	r.s3 = splitmix64(&st)
	// xoshiro must not be seeded with all zeros; splitmix64 cannot produce
	// four zero outputs in a row, so no further check is needed.
	return r
}

// Split derives an independent stream keyed by key. Streams obtained from the
// same parent with different keys are statistically independent, and Split
// does not advance the parent, so the derivation is order-insensitive:
// Split(2) yields the same stream whether or not Split(1) was called first.
func (r *RNG) Split(key uint64) *RNG {
	// Mix the parent state with the key through splitmix64 so that nearby
	// keys (0, 1, 2, ...) land in distant states.
	st := r.s0 ^ (r.s3 * 0x9e3779b97f4a7c15) ^ key
	return New(splitmix64(&st))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to remove
	// modulo bias.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Normal returns a standard normal draw using the polar (Marsaglia) method.
func (r *RNG) Normal() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Exponential returns a draw from an exponential distribution with the given
// rate (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential called with rate <= 0")
	}
	// 1-Float64() is in (0,1], so the log argument is never zero.
	return -math.Log(1-r.Float64()) / rate
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Binomial returns a draw from Binomial(n, p) by summing Bernoulli trials.
// SparkScore only draws genotypes with n = 2, so the O(n) method is exact and
// fast enough; no inversion or BTPE approximation is needed.
func (r *RNG) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}

// Perm returns a uniformly random permutation of [0, n) via Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a uniform Fisher–Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
