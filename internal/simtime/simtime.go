// Package simtime provides the virtual-time machinery of the cluster
// simulator. The engine executes every task for real on the host (so results
// are exact), but charges each task a *simulated* duration and schedules those
// durations onto the virtual core slots of the configured cluster. Wall-clock
// questions like "how long does this job take on 18 nodes?" are answered in
// virtual seconds, independent of how many cores the host happens to have.
//
// The model is classic greedy list scheduling: each executor owns a fixed
// number of core slots; tasks are dispatched in submission order to the
// earliest-free slot of their assigned executor. Independent tasks of a stage
// therefore fill the cluster exactly as Spark's task scheduler fills executor
// cores, and a stage's makespan is the completion time of its last task.
package simtime

import (
	"container/heap"
	"fmt"
)

// SlotPool models the core slots of one executor as a min-heap of
// free-at times.
type SlotPool struct {
	free floatHeap
}

// NewSlotPool returns a pool of n core slots, all free at time 0.
func NewSlotPool(n int) *SlotPool {
	if n <= 0 {
		panic(fmt.Sprintf("simtime: slot pool with %d slots", n))
	}
	p := &SlotPool{free: make(floatHeap, n)}
	heap.Init(&p.free)
	return p
}

// Slots returns the number of core slots in the pool.
func (p *SlotPool) Slots() int { return len(p.free) }

// Run schedules a task of the given duration that becomes ready at time
// ready; it starts at max(ready, earliest slot free time) and the slot is
// occupied until start+duration. Run returns the completion time.
func (p *SlotPool) Run(ready, duration float64) float64 {
	if duration < 0 {
		panic(fmt.Sprintf("simtime: negative task duration %g", duration))
	}
	start := p.free[0]
	if ready > start {
		start = ready
	}
	done := start + duration
	p.free[0] = done
	heap.Fix(&p.free, 0)
	return done
}

// Horizon returns the latest completion time across all slots, i.e. when the
// pool would next be fully idle.
func (p *SlotPool) Horizon() float64 {
	h := 0.0
	for _, f := range p.free {
		if f > h {
			h = f
		}
	}
	return h
}

// Reset marks every slot free at the given time. Stage barriers reset all
// pools to the stage start.
func (p *SlotPool) Reset(at float64) {
	for i := range p.free {
		p.free[i] = at
	}
	heap.Init(&p.free)
}

type floatHeap []float64

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Makespan computes the makespan of scheduling the given task durations
// greedily over slots core slots starting at time 0. It is the analytic
// answer used in tests and quick estimates; the engine drives SlotPools
// directly so that per-executor assignment is respected.
func Makespan(durations []float64, slots int) float64 {
	p := NewSlotPool(slots)
	for _, d := range durations {
		p.Run(0, d)
	}
	return p.Horizon()
}
