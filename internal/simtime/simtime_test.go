package simtime

import (
	"math"
	"testing"
	"testing/quick"

	"sparkscore/internal/rng"
)

func TestSlotPoolSequentialOnOneSlot(t *testing.T) {
	p := NewSlotPool(1)
	if done := p.Run(0, 2); done != 2 {
		t.Fatalf("first task done at %v, want 2", done)
	}
	if done := p.Run(0, 3); done != 5 {
		t.Fatalf("second task done at %v, want 5", done)
	}
	if p.Horizon() != 5 {
		t.Fatalf("horizon %v, want 5", p.Horizon())
	}
}

func TestSlotPoolParallelism(t *testing.T) {
	p := NewSlotPool(2)
	p.Run(0, 4)
	p.Run(0, 4)
	if h := p.Horizon(); h != 4 {
		t.Fatalf("two tasks on two slots finish at %v, want 4", h)
	}
	p.Run(0, 1) // lands on whichever slot frees at 4
	if h := p.Horizon(); h != 5 {
		t.Fatalf("third task pushes horizon to %v, want 5", h)
	}
}

func TestSlotPoolReadyTime(t *testing.T) {
	p := NewSlotPool(1)
	if done := p.Run(10, 1); done != 11 {
		t.Fatalf("task ready at 10 done at %v, want 11", done)
	}
}

func TestSlotPoolReset(t *testing.T) {
	p := NewSlotPool(3)
	p.Run(0, 7)
	p.Reset(100)
	if done := p.Run(0, 1); done != 101 {
		t.Fatalf("after Reset(100), task done at %v, want 101", done)
	}
}

func TestSlotPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSlotPool(0) did not panic")
		}
	}()
	NewSlotPool(0)
}

func TestSlotPoolNegativeDurationPanics(t *testing.T) {
	p := NewSlotPool(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	p.Run(0, -1)
}

func TestMakespanEqualTasks(t *testing.T) {
	// 8 unit tasks on 4 slots: exactly two waves.
	d := make([]float64, 8)
	for i := range d {
		d[i] = 1
	}
	if m := Makespan(d, 4); m != 2 {
		t.Fatalf("makespan %v, want 2", m)
	}
}

func TestMakespanBounds(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(50) + 1
		slots := rr.Intn(8) + 1
		var total, longest float64
		d := make([]float64, n)
		for i := range d {
			d[i] = rr.Float64() * 10
			total += d[i]
			if d[i] > longest {
				longest = d[i]
			}
		}
		m := Makespan(d, slots)
		lower := math.Max(total/float64(slots), longest)
		// Greedy list scheduling is a 2-approximation; and it can never beat
		// the area/critical-path lower bound.
		return m >= lower-1e-9 && m <= 2*lower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanMoreSlotsNeverSlower(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(40) + 1
		d := make([]float64, n)
		for i := range d {
			d[i] = rr.Float64() * 5
		}
		prev := math.Inf(1)
		for slots := 1; slots <= 8; slots *= 2 {
			m := Makespan(d, slots)
			if m > prev+1e-9 {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
