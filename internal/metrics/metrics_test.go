package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdevKnown(t *testing.T) {
	s := Sample{2, 4, 4, 4, 5, 5, 7, 9}
	if m := s.Mean(); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	// Sample stdev with n-1: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if sd := s.Stdev(); math.Abs(sd-want) > 1e-12 {
		t.Fatalf("stdev = %v, want %v", sd, want)
	}
}

func TestEmptyAndSingletonSamples(t *testing.T) {
	var empty Sample
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Min()) || !math.IsNaN(empty.Max()) {
		t.Fatal("empty sample did not yield NaN")
	}
	one := Sample{3}
	if one.Stdev() != 0 {
		t.Fatalf("singleton stdev = %v", one.Stdev())
	}
	if one.Min() != 3 || one.Max() != 3 {
		t.Fatal("singleton min/max wrong")
	}
}

func TestMinMax(t *testing.T) {
	s := Sample{5, -2, 9, 0}
	if s.Min() != -2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStdevNonNegativeAndShiftInvariant(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
		}
		s := Sample(xs)
		if s.Stdev() < 0 {
			return false
		}
		shifted := make(Sample, len(xs))
		for i, x := range xs {
			shifted[i] = x + 100
		}
		return math.Abs(s.Stdev()-shifted.Stdev()) < 1e-6*(1+s.Stdev())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRepeat(t *testing.T) {
	i := 0.0
	s := Repeat(4, func() float64 { i++; return i })
	if len(s) != 4 || s[0] != 1 || s[3] != 4 {
		t.Fatalf("Repeat = %v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X", "iterations", "runtime")
	tab.AddRowf(0, 509.4)
	tab.AddRowf(10000, 7036.6)
	out := tab.String()
	if !strings.Contains(out, "Table X") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "iterations") || !strings.Contains(out, "runtime") {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "509.4") || !strings.Contains(out, "7037") {
		t.Fatalf("values missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
}

func TestTableRejectsRaggedRow(t *testing.T) {
	tab := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("ragged row accepted")
		}
	}()
	tab.AddRow("only-one")
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.1234: "0.123",
		9.87:   "9.870",
		42.21:  "42.2",
		1234.5: "1234",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatSeconds(math.NaN()); got != "N/A" {
		t.Errorf("NaN -> %q", got)
	}
}

func TestFormatPercent(t *testing.T) {
	cases := map[float64]string{
		0:      "0%",
		0.0005: "0.050%",
		0.042:  "4.20%",
		0.125:  "12.5%",
		1.5:    "150.0%",
	}
	for in, want := range cases {
		if got := FormatPercent(in); got != want {
			t.Errorf("FormatPercent(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatPercent(math.NaN()); got != "N/A" {
		t.Errorf("NaN -> %q", got)
	}
}
