// Package metrics provides the small statistics and formatting layer of the
// benchmark harness: samples of repeated runtimes with mean and standard
// deviation (the paper's Tables III and V report exactly these), and aligned
// text tables/series for regenerated figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Sample is a set of repeated measurements.
type Sample []float64

// Mean returns the arithmetic mean; NaN for an empty sample.
func (s Sample) Mean() float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Stdev returns the sample standard deviation (n−1 denominator); 0 for
// samples with fewer than two observations, matching how the paper reports
// single runs.
func (s Sample) Stdev() float64 {
	if len(s) < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s)-1))
}

// Min returns the smallest observation; NaN for an empty sample.
func (s Sample) Min() float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	m := s[0]
	for _, v := range s[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation; NaN for an empty sample.
func (s Sample) Max() float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Repeat collects n measurements of f.
func Repeat(n int, f func() float64) Sample {
	s := make(Sample, n)
	for i := range s {
		s[i] = f()
	}
	return s
}

// Table is an aligned text table with a title, a header, and string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("metrics: row with %d cells in a %d-column table", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// are rendered %.1f, ints %d.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = FormatSeconds(v)
		case int:
			out[i] = fmt.Sprintf("%d", v)
		case int64:
			out[i] = fmt.Sprintf("%d", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatPercent renders a fraction (0.125 → "12.5%") with a precision that
// keeps small recovery overheads visible without drowning larger ones in
// digits.
func FormatPercent(v float64) string {
	switch {
	case math.IsNaN(v):
		return "N/A"
	case v == 0:
		return "0%"
	case math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3f%%", v*100)
	case math.Abs(v) < 0.1:
		return fmt.Sprintf("%.2f%%", v*100)
	default:
		return fmt.Sprintf("%.1f%%", v*100)
	}
}

// FormatSeconds renders a duration in seconds with a precision that keeps
// both sub-second and multi-thousand-second values readable.
func FormatSeconds(v float64) string {
	switch {
	case math.IsNaN(v):
		return "N/A"
	case v == 0:
		return "0"
	case math.Abs(v) < 10:
		return fmt.Sprintf("%.3f", v)
	case math.Abs(v) < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
