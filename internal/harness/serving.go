// The serving experiment: job-server behaviour the paper never measured but
// the job-server subsystem makes measurable — how per-request latency on the
// simulated cluster responds to concurrent clients under FIFO versus FAIR
// scheduling. Latency is virtual-time sojourn: the span from a request's
// submission (cluster clock at submit) to its job's JobEnd, so FIFO's
// head-of-line blocking and FAIR's slot sharing show up in the same metric.
//
// Each request is a resampling-shaped two-stage pipeline (per-SNP-block
// contributions reduced onto SNP-sets) whose tasks park on a timer instead of
// spinning, standing in for the measured per-block compute. Parked tasks
// release the host processor, so concurrently submitted requests genuinely
// coexist even on a single-CPU host — CPU-bound request bodies would
// serialise there and neither mode could ever overlap jobs. The virtual-time
// model charges the measured task duration either way.

package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"sparkscore/internal/cluster"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
)

const (
	// servingJobsPerClient is how many sequential requests each client submits.
	servingJobsPerClient = 1
	// servingParts is tasks per request stage, matching the 32 cluster slots:
	// a lone request fills the whole cluster for one wave.
	servingParts = 32
	// servingPause is the per-element park standing in for block compute.
	servingPause = 400 * time.Microsecond
)

// runServing measures interactive resampling served against one shared
// driver: for each scheduler mode and client count, every client submits
// servingJobsPerClient requests from its own goroutine, odd clients into a
// weight-1 "batch" pool and even clients into a weight-3 "interactive" pool,
// and the virtual-time sojourn of every request is recorded.
func runServing(h *Harness, w io.Writer) error {
	t := metrics.NewTable("Serving: concurrent resampling clients, FIFO vs FAIR",
		"mode", "clients", "requests", "makespan(sim-s)", "p50", "p99", "interactive-p50", "batch-p50", "req/sim-s")
	for _, mode := range []rdd.SchedulerMode{rdd.SchedFIFO, rdd.SchedFAIR} {
		for _, clients := range []int{1, 2, 4, 8} {
			row, err := measureServing(h.Seed, mode, clients)
			if err != nil {
				return fmt.Errorf("serving %s x%d: %w", mode, clients, err)
			}
			all := append(append([]float64(nil), row.byPool["interactive"]...), row.byPool["batch"]...)
			t.AddRowf(mode.String(), clients, len(all),
				metrics.FormatSeconds(row.makespan),
				metrics.FormatSeconds(percentile(all, 0.50)),
				metrics.FormatSeconds(percentile(all, 0.99)),
				metrics.FormatSeconds(percentile(row.byPool["interactive"], 0.50)),
				metrics.FormatSeconds(percentile(row.byPool["batch"], 0.50)),
				fmt.Sprintf("%.1f", float64(len(all))/row.makespan))
		}
	}
	t.Fprint(w)
	fmt.Fprintln(w, "\nLatency is virtual-time sojourn (submission to JobEnd). Under FIFO later")
	fmt.Fprintln(w, "requests queue behind whole jobs (p99 grows with clients, pools are moot);")
	fmt.Fprintln(w, "under FAIR requests share slots, and the weight-3 interactive pool's")
	fmt.Fprintln(w, "requests finish ahead of the weight-1 batch pool's.")
	return nil
}

type servingRow struct {
	byPool   map[string][]float64
	makespan float64
}

// servingRequest builds one request's pipeline: per-SNP-block contributions
// (one parked map element per block) reduced onto a handful of SNP-sets.
func servingRequest(ctx *rdd.Context, label string) *rdd.RDD[rdd.KV[int, float64]] {
	blocks := make([]int, 2*servingParts)
	for i := range blocks {
		blocks[i] = i
	}
	base := rdd.Parallelize(ctx, blocks, servingParts).SetSizeHint(8)
	contrib := rdd.Map(base, "resample:"+label, func(b int) rdd.KV[int, float64] {
		time.Sleep(servingPause)
		return rdd.KV[int, float64]{K: b % 8, V: float64(b)}
	}).SetSizeHint(16)
	return rdd.ReduceByKey(contrib, func(x, y float64) float64 { return x + y }, 8)
}

// measureServing runs one (mode, clients) cell on a fresh driver. A
// rendezvous holds every client until all are ready, so first-wave requests
// are submitted together and the modes differ only in how they schedule them.
func measureServing(seed uint64, mode rdd.SchedulerMode, clients int) (servingRow, error) {
	ctx, err := rdd.New(rdd.Config{
		// 8-core executors (32 slots): wide enough that a 3:1 weight ratio
		// survives stageSlots' one-slot-per-executor floor with 4 jobs per pool.
		Cluster: cluster.Config{
			Nodes: 2, Spec: cluster.NodeSpec{Name: "serve", VCPUs: 16, MemGiB: 16},
			ExecutorsPerNode: 2, CoresPerExecutor: 8, MemPerExecutorGiB: 4,
		},
		Seed:    seed,
		Workers: 64, // parked tasks from 8 concurrent jobs must not exhaust host-side slots
		Scheduler: rdd.SchedulerConfig{
			Mode: mode,
			Pools: []rdd.PoolSpec{
				{Name: "interactive", Weight: 3},
				{Name: "batch", Weight: 1},
			},
		},
		StageOverheadSec: 1e-9, // so sojourns reflect task time, not DAG overhead
	})
	if err != nil {
		return servingRow{}, err
	}

	row := servingRow{byPool: map[string][]float64{"interactive": {}, "batch": {}}}
	var mu sync.Mutex
	var firstErr error
	var wg, ready sync.WaitGroup
	ready.Add(clients)
	for c := 0; c < clients; c++ {
		pool := "interactive"
		if c%2 == 1 {
			pool = "batch"
		}
		wg.Add(1)
		go func(c int, pool string) {
			defer wg.Done()
			ready.Done()
			ready.Wait()
			for i := 0; i < servingJobsPerClient; i++ {
				label := fmt.Sprintf("c%d-r%d", c, i)
				submit := ctx.VirtualTime()
				spans, err := ctx.ObserveJobs(func() error {
					return ctx.RunInPool(pool, func() error {
						_, cerr := rdd.CollectAsMap(servingRequest(ctx, label))
						return cerr
					})
				})
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				for _, sp := range spans {
					row.byPool[pool] = append(row.byPool[pool], sp.EndVirtual-submit)
				}
				mu.Unlock()
			}
		}(c, pool)
	}
	wg.Wait()
	if firstErr != nil {
		return servingRow{}, firstErr
	}
	row.makespan = ctx.VirtualTime()
	return row, nil
}

// percentile returns the q-quantile of xs by the nearest-rank method.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
