// The adaptive-execution ablation: does the AQE-style planner recover the
// stage wall-clock that reduce-side skew and partition dust destroy?
//
// Two scenarios run with the adaptive planner on and off, everything else
// identical:
//
//   - skewed: a GroupByKey whose hot key carries ~90% of the shuffled bytes,
//     so one reduce task fetches almost the whole shuffle while its siblings
//     idle. The planner must detect the skewed partition from the map-output
//     statistics and split its fetch into parallel sub-tasks; the experiment
//     asserts the stage wall-clock improves by at least 1.3x.
//   - tiny-parts: the same pairs scattered over 512 nearly-empty reduce
//     partitions, a scheduling-overhead-bound stage. The planner must coalesce
//     neighbours up to the byte target, cutting the task count by an order of
//     magnitude.
//
// In both scenarios the collected results must be bit-identical with the
// planner on and off — the determinism contract the rdd package's parity
// tests pin; here it is re-checked end to end on a real workload.

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"sparkscore/internal/cluster"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
)

// AdaptiveRow is one measured cell of the adaptive grid, serialized into the
// -json snapshot.
type AdaptiveRow struct {
	Scenario        string  `json:"scenario"`
	Adaptive        bool    `json:"adaptive"`
	StageSeconds    float64 `json:"stageSeconds"`
	VirtualSeconds  float64 `json:"virtualSeconds"`
	Tasks           int     `json:"tasks"`
	CoalescedGroups int     `json:"coalescedGroups"`
	SkewedParts     int     `json:"skewedParts"`
	SubSplits       int     `json:"subSplits"`
}

const (
	adaptMapParts = 16    // map side of the measured shuffle
	adaptPairs    = 40000 // shuffled pairs
	adaptHotHint  = 2048  // bytes/pair in the skewed scenario: fetch-bound
	adaptTinyHint = 64    // bytes/pair in the tiny-parts scenario: overhead-bound
)

// runAdaptiveCell measures one grid cell and returns its row plus a digest of
// the collected result for the bit-identity check.
func (h *Harness) runAdaptiveCell(scenario string, adaptive bool) (AdaptiveRow, string, error) {
	row := AdaptiveRow{Scenario: scenario, Adaptive: adaptive}
	probe := rdd.ListenerFunc(func(ev rdd.Event) {
		switch e := ev.(type) {
		case *rdd.StageCompleted:
			row.StageSeconds += e.Seconds
		case *rdd.TaskStart:
			row.Tasks++
		case *rdd.AdaptivePlan:
			row.CoalescedGroups += e.CoalescedGroups
			row.SkewedParts += len(e.Skewed)
			row.SubSplits += e.SubSplits
		}
	})
	acfg := rdd.AdaptiveConfig{Enabled: adaptive}
	if scenario == "tiny-parts" {
		// The dust is ~5 KiB per partition; the default 64 MiB target would
		// collapse the whole stage into one task and serialise it. A 64 KiB
		// target coalesces ~13 neighbours per group, enough to amortise the
		// per-task overhead while keeping every core busy.
		acfg.TargetPartitionBytes = 64 << 10
	}
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes: 6, Spec: cluster.M3TwoXLarge,
			ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 2,
		},
		Seed: h.Seed,
		// As in the speculation ablation: the stage fee must stay well under
		// the effect being measured.
		StageOverheadSec: 0.0005,
		SchedOverheadSec: 0.0005,
		Adaptive:         acfg,
		Listeners:        []rdd.Listener{probe},
	})
	if err != nil {
		return AdaptiveRow{}, "", err
	}
	ids := make([]int, adaptPairs)
	for i := range ids {
		ids[i] = i
	}
	nums := rdd.Parallelize(ctx, ids, adaptMapParts).SetSizeHint(8)
	var pairs *rdd.RDD[rdd.KV[int, int]]
	var reduceParts int
	if scenario == "skewed" {
		// Key 0 takes 90% of the pairs; 64 cold keys share the rest.
		pairs = rdd.Map(nums, "skewedPairs", func(i int) rdd.KV[int, int] {
			if i%10 != 0 {
				return rdd.KV[int, int]{K: 0, V: i}
			}
			return rdd.KV[int, int]{K: 1 + i%64, V: i}
		}).SetSizeHint(adaptHotHint)
		reduceParts = 8
	} else {
		pairs = rdd.Map(nums, "tinyPairs", func(i int) rdd.KV[int, int] {
			return rdd.KV[int, int]{K: i, V: i}
		}).SetSizeHint(adaptTinyHint)
		reduceParts = 512
	}
	out, err := rdd.Collect(rdd.GroupByKey(pairs, reduceParts))
	if err != nil {
		return AdaptiveRow{}, "", err
	}
	row.VirtualSeconds = ctx.VirtualTime()
	return row, fmt.Sprintf("%v", out), nil
}

// runAdaptive measures the scenario x planner grid and asserts the claims:
// identical results either way, >= 1.3x stage wall-clock on the skewed
// scenario, and a detected skew split plus a real task-count reduction from
// coalescing.
func runAdaptive(h *Harness, w io.Writer) error {
	type cell struct {
		row    AdaptiveRow
		digest string
	}
	cells := map[[2]any]cell{}
	var rows []AdaptiveRow
	for _, scenario := range []string{"skewed", "tiny-parts"} {
		for _, adaptive := range []bool{false, true} {
			row, digest, err := h.runAdaptiveCell(scenario, adaptive)
			if err != nil {
				return err
			}
			cells[[2]any{scenario, adaptive}] = cell{row, digest}
			rows = append(rows, row)
		}
	}
	ratio := func(scenario string) float64 {
		static := cells[[2]any{scenario, false}].row.StageSeconds
		adapt := cells[[2]any{scenario, true}].row.StageSeconds
		if adapt <= 0 {
			return 0
		}
		return static / adapt
	}
	skewRatio := ratio("skewed")
	tinyRatio := ratio("tiny-parts")

	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	t := metrics.NewTable(
		fmt.Sprintf("Adaptive execution: %d pairs, %d map partitions, skew split + coalescing", adaptPairs, adaptMapParts),
		"scenario", "adaptive", "stage (sim-s)", "tasks", "coalesced-groups", "skewed-parts", "sub-splits")
	for _, r := range rows {
		t.AddRow(r.Scenario, onOff(r.Adaptive),
			metrics.FormatSeconds(r.StageSeconds), fmt.Sprint(r.Tasks),
			fmt.Sprint(r.CoalescedGroups), fmt.Sprint(r.SkewedParts), fmt.Sprint(r.SubSplits))
	}
	t.AddRow("skewed", "speedup", fmt.Sprintf("%.2fx", skewRatio), "", "", "", "")
	t.AddRow("tiny-parts", "speedup", fmt.Sprintf("%.2fx", tinyRatio), "", "", "", "")
	t.Fprint(w)

	if h.AdaptiveJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":          "adaptive",
			"rows":                rows,
			"skewMitigationRatio": skewRatio,
			"coalesceRatio":       tinyRatio,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(h.AdaptiveJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", h.AdaptiveJSON)
	}

	for _, scenario := range []string{"skewed", "tiny-parts"} {
		if cells[[2]any{scenario, false}].digest != cells[[2]any{scenario, true}].digest {
			return fmt.Errorf("adaptive: %s results diverged between planner on and off", scenario)
		}
	}
	skewOn := cells[[2]any{"skewed", true}].row
	if skewOn.SkewedParts == 0 || skewOn.SubSplits < 2 {
		return fmt.Errorf("adaptive: skewed scenario not split (skewed-parts %d, sub-splits %d)",
			skewOn.SkewedParts, skewOn.SubSplits)
	}
	if skewRatio < 1.3 {
		return fmt.Errorf("adaptive: skew mitigation %.2fx < 1.3x (static %.4f, adaptive %.4f sim-s)",
			skewRatio, cells[[2]any{"skewed", false}].row.StageSeconds, skewOn.StageSeconds)
	}
	tinyOn := cells[[2]any{"tiny-parts", true}].row
	tinyOff := cells[[2]any{"tiny-parts", false}].row
	if tinyOn.CoalescedGroups == 0 || tinyOn.Tasks >= tinyOff.Tasks {
		return fmt.Errorf("adaptive: tiny-parts scenario not coalesced (%d groups, %d tasks vs %d static)",
			tinyOn.CoalescedGroups, tinyOn.Tasks, tinyOff.Tasks)
	}
	return nil
}
