// Package harness regenerates every table and figure of the paper's
// evaluation (Section V). Each experiment is registered under the paper's
// artifact id (fig2, tab3, ...) and prints the same rows/series the paper
// reports, measured in simulated cluster seconds.
//
// Because the paper's full inputs are cluster-sized (up to one million SNPs
// on 36 EC2 instances), the harness runs at a configurable Scale: SNP counts,
// HDFS block size, and executor memory are all divided by Scale, which
// preserves every ratio the experiments measure (iterations per second,
// cache versus recompute, working set versus storage capacity) while keeping
// single-machine wall time reasonable. Scale=1 reproduces the paper's exact
// input sizes.
package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
)

// Harness carries the run-wide knobs shared by all experiments.
type Harness struct {
	// Scale divides the paper's SNP counts, block size, and executor memory.
	// Zero selects 100.
	Scale int

	// Reps is how many times each configuration is run for mean/stdev
	// tables. Zero selects 2 (the paper ran selected configurations 5 times
	// and the rest twice).
	Reps int

	// MaxIterations caps the resampling iteration counts attempted; axis
	// points above the cap are reported as "skipped". Zero means no cap.
	MaxIterations int

	// Seed drives data generation and resampling.
	Seed uint64

	// EventLogDir, when set, writes one JSONL event log per measured run
	// into the directory (render with cmd/sparkui); TraceDir likewise writes
	// one Chrome-trace timeline per run (open in chrome://tracing). Files
	// are named run-NNN-<method><iterations> in execution order.
	EventLogDir string
	TraceDir    string

	// SpeculationJSON, when set, makes the speculation experiment write its
	// grid as a JSON snapshot to this path (benchtab's -json flag).
	SpeculationJSON string

	// ColumnarJSON, when set, makes the columnar experiment write its
	// packed-vs-boxed measurements as a JSON snapshot to this path
	// (benchtab's -json flag).
	ColumnarJSON string

	// MemoryJSON, when set, makes the memory experiment write its
	// capped-pool measurements (sort-spill vs hash-OOM) as a JSON snapshot
	// to this path (benchtab's -json flag).
	MemoryJSON string

	// AdaptiveJSON, when set, makes the adaptive-execution experiment write
	// its skew/coalesce grid as a JSON snapshot to this path (benchtab's
	// -json flag).
	AdaptiveJSON string

	// EQTLJSON, when set, makes the all-pairs eQTL experiment write its
	// parity/chaos/throughput measurements as a JSON snapshot to this path
	// (benchtab's -json flag).
	EQTLJSON string

	// extraListeners are attached to every run in addition to the
	// EventLogDir/TraceDir observers; experiments use it to probe per-task
	// metrics (the memory experiment's buffer high-water mark).
	extraListeners []rdd.Listener

	datasets map[dsKey]*data.Dataset
	runSeq   int
}

type dsKey struct {
	patients, snps, sets int
}

func (h *Harness) scale() int {
	if h.Scale <= 0 {
		return 100
	}
	return h.Scale
}

func (h *Harness) reps() int {
	if h.Reps <= 0 {
		return 2
	}
	return h.Reps
}

// Params describes one measured configuration in the paper's full-scale
// terms; the harness applies Scale internally.
type Params struct {
	Patients int
	SNPs     int // full-scale count; divided by Scale
	SNPSets  int

	Nodes             int
	ExecutorsPerNode  int
	CoresPerExecutor  int
	MemPerExecutorGiB float64 // full-scale; divided by Scale
	TotalExecutors    int

	Method     string // "mc" or "perm"
	Cache      bool
	DiskSpill  bool // persist RDD U at MEMORY_AND_DISK instead of MEMORY_ONLY
	Iterations int

	// NoMapSideCombine disables map-side combining in ReduceByKey (the
	// `combine` ablation experiment).
	NoMapSideCombine bool

	// HashShuffle selects the legacy hash shuffle (resident buckets, no
	// spill path) instead of the default sort shuffle.
	HashShuffle bool

	// MemCapBytes, when positive, overrides the scaled executor memory with
	// an absolute per-executor cap in bytes — the memory experiment's pool
	// squeeze. Unlike MemPerExecutorGiB it is NOT divided by Scale.
	MemCapBytes int64

	// SingleWorker serialises host-side execution (rdd.Config.Workers = 1)
	// so memory-manager grant denials — and with them spill points — are a
	// pure function of the configuration, not goroutine interleaving.
	// Capped runs need it for byte-identical replays.
	SingleWorker bool
}

// scaledSets returns the SNP-set count after scaling (the set count scales
// with the SNP count so the paper's average SNPs-per-set is preserved).
func (h *Harness) scaledSets(p Params) int {
	k := p.SNPSets / h.scale()
	if k < 1 {
		k = 1
	}
	return k
}

// scaledSNPs returns the SNP count after scaling, floored at the scaled set
// count so the generator stays valid.
func (h *Harness) scaledSNPs(p Params) int {
	s := p.SNPs / h.scale()
	if k := h.scaledSets(p); s < k {
		s = k
	}
	return s
}

// dataset returns (and memoises) the synthetic dataset for the scaled
// configuration.
func (h *Harness) dataset(p Params) (*data.Dataset, error) {
	key := dsKey{p.Patients, h.scaledSNPs(p), h.scaledSets(p)}
	if ds, ok := h.datasets[key]; ok {
		return ds, nil
	}
	ds, err := gen.Generate(gen.Config{
		Patients: key.patients,
		SNPs:     key.snps,
		SNPSets:  key.sets,
	}, h.Seed^uint64(key.snps)<<20^uint64(key.patients))
	if err != nil {
		return nil, err
	}
	if h.datasets == nil {
		h.datasets = map[dsKey]*data.Dataset{}
	}
	h.datasets[key] = ds
	return ds, nil
}

// Measure runs one configuration once and returns the simulated seconds of
// the analysis (input staging excluded, as the paper's timings start at job
// submission).
func (h *Harness) Measure(p Params) (float64, error) {
	ctx, _, err := h.run(p, rdd.FaultProfile{})
	if err != nil {
		return 0, err
	}
	return ctx.VirtualTime(), nil
}

// run executes one configuration under the given fault profile and returns
// the driver context (for clocks and recovery accounting) plus the inference
// result.
func (h *Harness) run(p Params, faults rdd.FaultProfile) (_ *rdd.Context, _ *core.Result, err error) {
	ds, err := h.dataset(p)
	if err != nil {
		return nil, nil, err
	}
	observers, finish, err := h.observers(p)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if ferr := finish(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	scale := float64(h.scale())
	memGiB := p.MemPerExecutorGiB / scale
	if p.MemCapBytes > 0 {
		memGiB = float64(p.MemCapBytes) / float64(1<<30)
	}
	shuffle := rdd.ShuffleSort
	if p.HashShuffle {
		shuffle = rdd.ShuffleHash
	}
	workers := 0
	if p.SingleWorker {
		workers = 1
	}
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes:             p.Nodes,
			Spec:              cluster.M3TwoXLarge,
			ExecutorsPerNode:  p.ExecutorsPerNode,
			CoresPerExecutor:  p.CoresPerExecutor,
			MemPerExecutorGiB: memGiB,
			TotalExecutors:    p.TotalExecutors,
		},
		DFSBlockSize: int(float64(128<<20) / scale),
		// Scheduling overheads scale with the data so the overhead-to-work
		// ratio of the paper's regime is preserved; at Scale=1 these are the
		// engine defaults.
		SchedOverheadSec:      0.004 / scale,
		StageOverheadSec:      0.05 / scale,
		Seed:                  h.Seed,
		Faults:                faults,
		DisableMapSideCombine: p.NoMapSideCombine,
		SortShuffle:           shuffle,
		Workers:               workers,
		Listeners:             observers,
	})
	if err != nil {
		return nil, nil, err
	}
	paths, err := core.StageDataset(ctx, ds, "bench")
	if err != nil {
		return nil, nil, err
	}
	opts := core.Options{Seed: h.Seed, DiskSpill: p.DiskSpill}
	if !p.Cache {
		opts = opts.WithoutCache()
	}
	a, err := core.NewAnalysis(ctx, paths, opts)
	if err != nil {
		return nil, nil, err
	}
	ctx.ResetClock()
	var res *core.Result
	switch p.Method {
	case "mc":
		res, err = a.MonteCarlo(p.Iterations)
	case "perm":
		res, err = a.Permutation(p.Iterations)
	default:
		return nil, nil, fmt.Errorf("harness: unknown method %q", p.Method)
	}
	if err != nil {
		return nil, nil, err
	}
	return ctx, res, nil
}

// observers builds the per-run listeners requested by EventLogDir/TraceDir
// and returns them with a finish function that flushes the event log and
// writes the timeline once the run is over. With neither directory set it
// returns no listeners and a no-op finish.
func (h *Harness) observers(p Params) ([]rdd.Listener, func() error, error) {
	listeners := append([]rdd.Listener(nil), h.extraListeners...)
	if h.EventLogDir == "" && h.TraceDir == "" {
		return listeners, func() error { return nil }, nil
	}
	h.runSeq++
	tag := fmt.Sprintf("run-%03d-%s%d", h.runSeq, p.Method, p.Iterations)
	var finishers []func() error
	if h.EventLogDir != "" {
		f, err := os.Create(filepath.Join(h.EventLogDir, tag+".jsonl"))
		if err != nil {
			return nil, nil, err
		}
		elw := rdd.NewEventLogWriter(f)
		listeners = append(listeners, elw)
		finishers = append(finishers, func() error {
			err := elw.Close()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		})
	}
	if h.TraceDir != "" {
		tl := rdd.NewTimelineListener()
		listeners = append(listeners, tl)
		finishers = append(finishers, func() error {
			f, err := os.Create(filepath.Join(h.TraceDir, tag+".trace.json"))
			if err != nil {
				return err
			}
			if err := tl.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}
	finish := func() error {
		var first error
		for _, fin := range finishers {
			if err := fin(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return listeners, finish, nil
}

// RecoveryResult is one chaos measurement: the same configuration run
// fault-free and under a fault profile, with the recovery accounting and a
// result comparison (the paper's lineage-recovery claim: failures cost time,
// never correctness).
type RecoveryResult struct {
	CleanSeconds float64 // fault-free simulated runtime
	ChaosSeconds float64 // simulated runtime under the fault profile
	Stats        rdd.RecoveryStats
	ResultsMatch bool   // chaos inference numerically identical to fault-free
	Fingerprint  string // reproducible job fingerprint of the chaos run
}

// MeasureRecovery runs one configuration fault-free and then under the fault
// profile, comparing inference results and collecting recovery accounting.
func (h *Harness) MeasureRecovery(p Params, faults rdd.FaultProfile) (RecoveryResult, error) {
	cleanCtx, cleanRes, err := h.run(p, rdd.FaultProfile{})
	if err != nil {
		return RecoveryResult{}, err
	}
	chaosCtx, chaosRes, err := h.run(p, faults)
	if err != nil {
		return RecoveryResult{}, fmt.Errorf("harness: chaos run: %w", err)
	}
	jobs := chaosCtx.Jobs()
	var fp strings.Builder
	for _, m := range jobs {
		fmt.Fprintf(&fp, "%+v\n", m.WithoutMeasuredTime())
	}
	return RecoveryResult{
		CleanSeconds: cleanCtx.VirtualTime(),
		ChaosSeconds: chaosCtx.VirtualTime(),
		Stats:        rdd.SummarizeRecovery(jobs),
		ResultsMatch: resultsEqual(cleanRes, chaosRes),
		Fingerprint:  fp.String(),
	}, nil
}

// resultsEqual compares two inference results bit for bit: observed
// statistics, exceedance counters, and p-values.
func resultsEqual(a, b *core.Result) bool {
	if len(a.Observed) != len(b.Observed) || len(a.Exceed) != len(b.Exceed) ||
		len(a.PValues) != len(b.PValues) || a.Iterations != b.Iterations {
		return false
	}
	for i := range a.Observed {
		if a.Observed[i] != b.Observed[i] {
			return false
		}
	}
	for i := range a.Exceed {
		if a.Exceed[i] != b.Exceed[i] {
			return false
		}
	}
	for i := range a.PValues {
		if a.PValues[i] != b.PValues[i] {
			return false
		}
	}
	return true
}

// sweep measures the configuration at each iteration count, Reps times,
// honouring MaxIterations. The result maps iteration count to its sample;
// capped points are absent.
func (h *Harness) sweep(p Params, iters []int) (map[int]metrics.Sample, error) {
	out := map[int]metrics.Sample{}
	for _, it := range iters {
		if h.MaxIterations > 0 && it > h.MaxIterations {
			continue
		}
		sample := make(metrics.Sample, 0, h.reps())
		for rep := 0; rep < h.reps(); rep++ {
			q := p
			q.Iterations = it
			v, err := h.Measure(q)
			if err != nil {
				return nil, fmt.Errorf("harness: %s @%d iterations: %w", p.Method, it, err)
			}
			sample = append(sample, v)
		}
		out[it] = sample
	}
	return out, nil
}

// cell renders a swept point: mean seconds, "skipped" if capped, or "N/A"
// where the paper itself reports N/A.
func cell(samples map[int]metrics.Sample, it int, measured bool) string {
	if !measured {
		return "N/A"
	}
	s, ok := samples[it]
	if !ok {
		return "skipped"
	}
	return metrics.FormatSeconds(s.Mean())
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness, w io.Writer) error
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll runs every experiment in order, writing titled sections to w.
func RunAll(h *Harness, w io.Writer) error {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "== %s ==\n", e.Title)
		if err := e.Run(h, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
