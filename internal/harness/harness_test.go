package harness

import (
	"bytes"
	"strings"
	"testing"

	"sparkscore/internal/rdd"
)

// tiny returns a harness whose scale makes every experiment near-trivial, so
// the registry can be exercised end-to-end in unit tests.
func tiny() *Harness {
	return &Harness{Scale: 10000, Reps: 1, MaxIterations: 4, Seed: 5}
}

func TestMeasureBasic(t *testing.T) {
	h := tiny()
	p := tunedContainers(Params{
		Patients: 50, SNPs: 100000, SNPSets: 10, Nodes: 2,
		Method: "mc", Cache: true, Iterations: 2,
	})
	v, err := h.Measure(p)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("virtual seconds = %v", v)
	}
}

func TestMeasureUnknownMethod(t *testing.T) {
	h := tiny()
	p := tunedContainers(Params{Patients: 10, SNPs: 100, SNPSets: 2, Nodes: 1, Method: "bogus"})
	if _, err := h.Measure(p); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestSweepHonoursCap(t *testing.T) {
	h := tiny()
	h.MaxIterations = 3
	p := tunedContainers(Params{
		Patients: 20, SNPs: 100, SNPSets: 2, Nodes: 1, Method: "mc", Cache: true,
	})
	out, err := h.sweep(p, []int{0, 2, 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out[100]; ok {
		t.Fatal("capped point measured")
	}
	if _, ok := out[2]; !ok {
		t.Fatal("uncapped point missing")
	}
}

func TestDatasetMemoised(t *testing.T) {
	h := tiny()
	p := Params{Patients: 20, SNPs: 100000, SNPSets: 5}
	a, err := h.dataset(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.dataset(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("dataset regenerated for identical key")
	}
}

func TestScalingPreservesAvgSNPsPerSet(t *testing.T) {
	h := &Harness{Scale: 100}
	p := Params{SNPs: 100000, SNPSets: 1000} // paper's Experiment A: avg 100/set
	snps, sets := h.scaledSNPs(p), h.scaledSets(p)
	if snps != 1000 || sets != 10 {
		t.Fatalf("scaled to %d SNPs / %d sets, want 1000/10", snps, sets)
	}
	if snps/sets != p.SNPs/p.SNPSets {
		t.Fatalf("avg SNPs/set changed: %d, want %d", snps/sets, p.SNPs/p.SNPSets)
	}
}

func TestScaledSetsFloorsAtOne(t *testing.T) {
	h := &Harness{Scale: 10000}
	p := Params{SNPs: 10000, SNPSets: 500}
	if got := h.scaledSets(p); got != 1 {
		t.Fatalf("scaledSets = %d, want 1", got)
	}
	if got := h.scaledSNPs(p); got != 1 {
		t.Fatalf("scaledSNPs = %d, want 1", got)
	}
}

func TestRegistryCoversEveryArtifact(t *testing.T) {
	for _, id := range []string{
		"tab1", "fig2", "tab2", "tab3", "fig3", "fig4", "tab4", "tab5",
		"fig5", "fig6", "tab6", "fig7", "tab7", "tab8",
	} {
		if _, ok := Resolve(id); !ok {
			t.Errorf("artifact %s not resolvable", id)
		}
	}
	if _, ok := Resolve("fig99"); ok {
		t.Error("unknown artifact resolved")
	}
}

func TestTab1Runs(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("tab1")
	if err := e.Run(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "m3.2xlarge") {
		t.Fatalf("tab1 output:\n%s", buf.String())
	}
}

func TestFig2RunsAtTinyScale(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("fig2")
	if err := e.Run(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "Figure 2", "Table III", "monte-carlo", "permutation", "skipped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6RunsAtTinyScale(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("fig6")
	if err := e.Run(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table VI", "6-nodes", "12-nodes", "18-nodes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7RunsAtTinyScale(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("fig7")
	if err := e.Run(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"42-containers", "84-containers", "126-containers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 output missing %q:\n%s", want, out)
		}
	}
}

func TestCacheBeatsNoCacheInVirtualTime(t *testing.T) {
	// The headline of Experiment B must hold at any scale: cached Monte
	// Carlo is faster than uncached at equal iterations.
	h := &Harness{Scale: 2000, Reps: 1, Seed: 3}
	base := tunedContainers(Params{
		Patients: 200, SNPs: 1000000, SNPSets: 20, Nodes: 2,
		Method: "mc", Iterations: 10,
	})
	cached := base
	cached.Cache = true
	uncached := base
	uncached.Cache = false
	tc, err := h.Measure(cached)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := h.Measure(uncached)
	if err != nil {
		t.Fatal(err)
	}
	if tc >= tn {
		t.Fatalf("cached %.3f >= uncached %.3f sim-s", tc, tn)
	}
}

func TestMonteCarloBeatsPermutation(t *testing.T) {
	// The headline of Experiment A: at equal iterations MC is faster.
	h := &Harness{Scale: 2000, Reps: 1, Seed: 3}
	base := tunedContainers(Params{
		Patients: 200, SNPs: 1000000, SNPSets: 20, Nodes: 2,
		Cache: true, Iterations: 8,
	})
	mc := base
	mc.Method = "mc"
	perm := base
	perm.Method = "perm"
	tm, err := h.Measure(mc)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := h.Measure(perm)
	if err != nil {
		t.Fatal(err)
	}
	if tm >= tp {
		t.Fatalf("monte carlo %.3f >= permutation %.3f sim-s", tm, tp)
	}
}

func TestFig3RunsAtTinyScale(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("fig3")
	if err := e.Run(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "skipped") {
		// With MaxIterations 4 the 1000- and 100-iteration configs skip.
		t.Fatalf("fig3 output did not honour the iteration cap:\n%s", buf.String())
	}
}

func TestFig4RunsAtTinyScale(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("fig4")
	if err := e.Run(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "Table V", "with-cache", "without-cache", "N/A"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5RunsAtTinyScale(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Lookup("fig5")
	if err := e.Run(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatalf("fig5 output:\n%s", buf.String())
	}
}

func TestRunAllAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	var buf bytes.Buffer
	if err := RunAll(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if !strings.Contains(buf.String(), e.Title) {
			t.Fatalf("RunAll output missing %q", e.Title)
		}
	}
}

func TestDiskSpillCuresStrongScalingCollapse(t *testing.T) {
	// Figure 6's 6-node collapse comes from MEMORY_ONLY persistence dropping
	// U partitions; MEMORY_AND_DISK demotes them to local disk instead, and
	// the iterations become cheap again. This is the tuning insight the
	// paper's future-work section gestures at.
	h := &Harness{Scale: 1000, Reps: 1, Seed: 3}
	base := Params{
		Patients: 1000, SNPs: 1000000, SNPSets: 100, Nodes: 6,
		ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 1,
		Method: "mc", Cache: true, Iterations: 10,
	}
	memOnly, err := h.Measure(base)
	if err != nil {
		t.Fatal(err)
	}
	spilling := base
	spilling.DiskSpill = true
	memAndDisk, err := h.Measure(spilling)
	if err != nil {
		t.Fatal(err)
	}
	if memAndDisk >= memOnly/2 {
		t.Fatalf("MEMORY_AND_DISK %.2f sim-s not clearly better than MEMORY_ONLY %.2f", memAndDisk, memOnly)
	}
}

func TestMeasureRecovery(t *testing.T) {
	h := tiny()
	p := tunedContainers(Params{
		Patients: 50, SNPs: 100000, SNPSets: 10, Nodes: 3,
		Method: "mc", Cache: true, Iterations: 2,
	})
	faults := rdd.FaultProfile{
		TaskCrashProb:    0.2,
		FetchFailureProb: 0.1,
		NodeLoss:         []rdd.NodeLoss{{Node: 0, AfterTasks: 5}},
	}
	r, err := h.MeasureRecovery(p, faults)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ResultsMatch {
		t.Fatal("chaos run changed the inference results")
	}
	if r.Stats.TaskRetries == 0 && r.Stats.StageAttempts == 0 {
		t.Fatalf("chaos run recorded no recovery work: %+v", r.Stats)
	}
	if r.Stats.RecoverySeconds <= 0 {
		t.Fatalf("no recovery time charged: %+v", r.Stats)
	}
	again, err := h.MeasureRecovery(p, faults)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fingerprint != again.Fingerprint {
		t.Fatal("identical seed and profile produced different recovery traces")
	}
}

func TestChaosExperimentRuns(t *testing.T) {
	h := tiny()
	e, ok := Lookup("chaos")
	if !ok {
		t.Fatal("chaos experiment not registered")
	}
	var sb strings.Builder
	if err := e.Run(h, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"task retries", "recovery share", "results identical to fault-free  true", "replay reproducible (same seed)  true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chaos output missing %q:\n%s", want, out)
		}
	}
}
