// The columnar ablation: what does the 2-bit packed genotype engine buy over
// the boxed per-row pipeline it replaced?
//
// Three measurements, all at the harness Scale on the tuned 6-node cluster:
//
//  1. Storage — the cached footprint of RDD_FGM (WarmGenotypes) and of the
//     score-contribution RDD U (Warm) in each layout, under honest
//     size-class-aware cache accounting. The packed genotype matrix must be
//     at least 4x smaller.
//  2. Correctness — the full Monte Carlo analysis must produce bitwise
//     identical observed statistics, exceedance counters, and p-values in
//     both modes.
//  3. Kernel speed — a real-time microbenchmark of the marginal-score inner
//     loop: the fused decode+accumulate block kernel versus the boxed
//     per-row contribution loop (which allocates a fresh vector per SNP),
//     including allocations per block.

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

// ColumnarMode is one engine mode's end-to-end measurement, serialized into
// the -json snapshot.
type ColumnarMode struct {
	Columnar        bool    `json:"columnar"`
	CachedGenoBytes int64   `json:"cachedGenoBytes"`
	CachedUBytes    int64   `json:"cachedUBytes"`
	MCSimSeconds    float64 `json:"mcSimSeconds"`
}

// KernelBench is the real-time microbenchmark of the marginal-score inner
// loop over one full genotype block.
type KernelBench struct {
	Patients             int     `json:"patients"`
	Rows                 int     `json:"rows"`
	PackedNsPerRow       float64 `json:"packedNsPerRow"`
	BoxedNsPerRow        float64 `json:"boxedNsPerRow"`
	Speedup              float64 `json:"speedup"`
	PackedAllocsPerBlock float64 `json:"packedAllocsPerBlock"`
	BoxedAllocsPerBlock  float64 `json:"boxedAllocsPerBlock"`
}

// columnarScale fixes the experiment at the paper's 1/100 scale regardless
// of the harness Scale (like the speculation experiment): the measured
// ratios are properties of the layout, and at very small scales the
// per-block overheads of near-empty tail blocks would dominate what is
// being measured.
const columnarScale = 100

// columnarParams is the measured configuration: Experiment A's cohort on the
// tuned 6-node cluster, with the paper's 100K-SNP input at 1/100 scale.
func columnarParams() Params {
	return tunedContainers(Params{
		Patients: 1000, SNPs: 100000, SNPSets: 500,
		Nodes: 6, Method: "mc", Cache: true, Iterations: 50,
	})
}

// runColumnarMode stages the dataset and measures one engine mode: cached
// genotype bytes, cached U bytes, and the simulated wall clock of a warm
// Monte Carlo run.
func (h *Harness) runColumnarMode(columnar bool) (ColumnarMode, *core.Result, error) {
	p := columnarParams()
	fixed := *h
	fixed.Scale = columnarScale
	fixed.datasets = nil
	ds, err := fixed.dataset(p)
	if err != nil {
		return ColumnarMode{}, nil, err
	}
	scale := float64(columnarScale)
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes:             p.Nodes,
			Spec:              cluster.M3TwoXLarge,
			ExecutorsPerNode:  p.ExecutorsPerNode,
			CoresPerExecutor:  p.CoresPerExecutor,
			MemPerExecutorGiB: p.MemPerExecutorGiB / scale,
		},
		DFSBlockSize:     int(float64(128<<20) / scale),
		SchedOverheadSec: 0.004 / scale,
		StageOverheadSec: 0.05 / scale,
		Seed:             h.Seed,
	})
	if err != nil {
		return ColumnarMode{}, nil, err
	}
	paths, err := core.StageDataset(ctx, ds, "bench")
	if err != nil {
		return ColumnarMode{}, nil, err
	}
	a, err := core.NewAnalysis(ctx, paths, core.Options{Seed: h.Seed}.WithColumnar(columnar))
	if err != nil {
		return ColumnarMode{}, nil, err
	}
	mode := ColumnarMode{Columnar: columnar}

	if err := a.WarmGenotypes(); err != nil {
		return ColumnarMode{}, nil, err
	}
	mode.CachedGenoBytes = ctx.CachedBytes()
	a.ReleaseGenotypes()

	if err := a.Warm(); err != nil {
		return ColumnarMode{}, nil, err
	}
	mode.CachedUBytes = ctx.CachedBytes()

	ctx.ResetClock()
	res, err := a.MonteCarlo(p.Iterations)
	if err != nil {
		return ColumnarMode{}, nil, err
	}
	mode.MCSimSeconds = ctx.VirtualTime()
	return mode, res, nil
}

// measureKernel benchmarks the marginal-score inner loop over one full
// 256-row block of 1000 patients, best-of-5 in real time.
func measureKernel(seed uint64) (KernelBench, error) {
	const patients, rows = 1000, 256
	cfg := gen.Config{Patients: patients, SNPs: rows, SNPSets: 4}
	blk := gen.GenoBlocks(cfg, rng.New(seed), rows)[0]
	ph := gen.Phenotype(cfg, rng.New(seed+1))
	model, err := stats.NewGaussian(ph)
	if err != nil {
		return KernelBench{}, err
	}

	kernel := stats.NewBlockKernel(model)
	var scores []float64
	packed := func() {
		ub := kernel.Contributions(blk)
		scores = ub.Scores(nil, scores)
	}

	// The boxed pipeline's inner loop: rows pre-parsed (the text scan is
	// common to both engines), a fresh contribution vector per SNP.
	decoded := make([][]data.Genotype, blk.Rows())
	for r := range decoded {
		decoded[r] = blk.DecodeRow(r, nil)
	}
	sums := make([]float64, blk.Rows())
	boxed := func() {
		for r, g := range decoded {
			u := make([]float64, len(g))
			model.Contributions(g, u)
			var s float64
			for _, v := range u {
				s += v
			}
			sums[r] = s
		}
	}

	bestNsPerRow := func(f func()) float64 {
		const inner = 20
		best := math.Inf(1)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			for i := 0; i < inner; i++ {
				f()
			}
			perRow := float64(time.Since(start).Nanoseconds()) / float64(inner*rows)
			if perRow < best {
				best = perRow
			}
		}
		return best
	}
	allocsPerBlock := func(f func()) float64 {
		f() // warm up any lazily grown buffers
		runtime.GC()
		const n = 50
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < n; i++ {
			f()
		}
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs-m0.Mallocs) / n
	}

	b := KernelBench{
		Patients:             patients,
		Rows:                 rows,
		PackedNsPerRow:       bestNsPerRow(packed),
		BoxedNsPerRow:        bestNsPerRow(boxed),
		PackedAllocsPerBlock: allocsPerBlock(packed),
		BoxedAllocsPerBlock:  allocsPerBlock(boxed),
	}
	if b.PackedNsPerRow > 0 {
		b.Speedup = b.BoxedNsPerRow / b.PackedNsPerRow
	}
	return b, nil
}

// runColumnar measures the packed-vs-boxed ablation and asserts the layout's
// claims: bitwise-identical inference, a >= 4x cached-genotype reduction,
// and a measured kernel speedup on the marginal-score path.
func runColumnar(h *Harness, w io.Writer) error {
	packed, packedRes, err := h.runColumnarMode(true)
	if err != nil {
		return fmt.Errorf("columnar: packed run: %w", err)
	}
	boxed, boxedRes, err := h.runColumnarMode(false)
	if err != nil {
		return fmt.Errorf("columnar: boxed run: %w", err)
	}
	kernel, err := measureKernel(h.Seed)
	if err != nil {
		return fmt.Errorf("columnar: kernel bench: %w", err)
	}

	match := resultsEqual(packedRes, boxedRes)
	var genoRatio, uRatio float64
	if packed.CachedGenoBytes > 0 {
		genoRatio = float64(boxed.CachedGenoBytes) / float64(packed.CachedGenoBytes)
	}
	if packed.CachedUBytes > 0 {
		uRatio = float64(boxed.CachedUBytes) / float64(packed.CachedUBytes)
	}

	p := columnarParams()
	layout := func(b bool) string {
		if b {
			return "packed"
		}
		return "boxed"
	}
	t := metrics.NewTable(
		fmt.Sprintf("Columnar: %d patients, %d SNPs (fixed scale /%d), MC x%d warm",
			p.Patients, p.SNPs, columnarScale, p.Iterations),
		"layout", "cached geno (B)", "cached U (B)", "MC (sim-s)")
	for _, m := range []ColumnarMode{packed, boxed} {
		t.AddRow(layout(m.Columnar), fmt.Sprint(m.CachedGenoBytes),
			fmt.Sprint(m.CachedUBytes), metrics.FormatSeconds(m.MCSimSeconds))
	}
	t.AddRow("ratio", fmt.Sprintf("%.2fx", genoRatio), fmt.Sprintf("%.2fx", uRatio), "")
	t.Fprint(w)

	kt := metrics.NewTable(
		fmt.Sprintf("Kernel: marginal score, %d patients x %d rows per block", kernel.Patients, kernel.Rows),
		"inner loop", "ns/row", "allocs/block")
	kt.AddRow("fused packed", fmt.Sprintf("%.0f", kernel.PackedNsPerRow), fmt.Sprintf("%.1f", kernel.PackedAllocsPerBlock))
	kt.AddRow("boxed per-row", fmt.Sprintf("%.0f", kernel.BoxedNsPerRow), fmt.Sprintf("%.1f", kernel.BoxedAllocsPerBlock))
	kt.AddRow("speedup", fmt.Sprintf("%.2fx", kernel.Speedup), "")
	kt.Fprint(w)
	fmt.Fprintf(w, "bitwise result parity: %v\n", match)

	if h.ColumnarJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":     "columnar",
			"scale":          columnarScale,
			"modes":          []ColumnarMode{packed, boxed},
			"genoBytesRatio": genoRatio,
			"uBytesRatio":    uRatio,
			"kernel":         kernel,
			"resultsMatch":   match,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(h.ColumnarJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", h.ColumnarJSON)
	}

	if !match {
		return fmt.Errorf("columnar: packed and boxed inference diverged (observed/exceed/p-values not bitwise equal)")
	}
	if genoRatio < 4 {
		return fmt.Errorf("columnar: cached genotype reduction %.2fx < 4x (boxed %d B, packed %d B)",
			genoRatio, boxed.CachedGenoBytes, packed.CachedGenoBytes)
	}
	if kernel.Speedup < 1.05 {
		return fmt.Errorf("columnar: fused kernel speedup %.2fx < 1.05x (packed %.0f ns/row, boxed %.0f ns/row)",
			kernel.Speedup, kernel.PackedNsPerRow, kernel.BoxedNsPerRow)
	}
	if kernel.PackedAllocsPerBlock > kernel.BoxedAllocsPerBlock {
		return fmt.Errorf("columnar: fused kernel allocates more than the boxed loop (%.1f > %.1f per block)",
			kernel.PackedAllocsPerBlock, kernel.BoxedAllocsPerBlock)
	}
	return nil
}
