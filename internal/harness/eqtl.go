// The all-pairs eQTL experiment: every SNP crossed with every expression
// phenotype through internal/assoc, measured three ways:
//
//  1. Parity — the wide multi-phenotype kernel, the per-phenotype loop, and
//     the cartesian block join must produce byte-identical WriteReport output
//     at two input shapes.
//  2. Recovery — the cross re-run under task crashes, fetch failures, and a
//     node loss must still match the clean report byte for byte, and two
//     seeded chaos replays must emit byte-identical stripped event logs.
//  3. Pair throughput — a real-time microbenchmark of the scoring inner
//     loop: the wide kernel (one decode per block row, all phenotypes) versus
//     the per-phenotype loop, in ns per (SNP, phenotype) pair. The wide
//     kernel must clear 2x.

package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"sparkscore/internal/assoc"
	"sparkscore/internal/cluster"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

// EQTLRun is one engine configuration's measurement at one input shape,
// serialized into the -json snapshot.
type EQTLRun struct {
	Patients   int     `json:"patients"`
	SNPs       int     `json:"snps"`
	Phenos     int     `json:"phenos"`
	Strategy   string  `json:"strategy"`
	Wide       bool    `json:"wide"`
	Tested     int64   `json:"tested"`
	SimSeconds float64 `json:"simSeconds"`
}

// EQTLChaos is the fault-injection measurement: the clean run versus the
// same cross under the chaos profile, plus replay determinism.
type EQTLChaos struct {
	CleanSimSeconds      float64 `json:"cleanSimSeconds"`
	ChaosSimSeconds      float64 `json:"chaosSimSeconds"`
	TaskRetries          int     `json:"taskRetries"`
	RecomputedPartitions int     `json:"recomputedPartitions"`
	ReportsMatch         bool    `json:"reportsMatch"`
	ReplayStable         bool    `json:"replayStable"`
}

// EQTLPairBench is the real-time microbenchmark of the all-pairs scoring
// inner loop over one full genotype block.
type EQTLPairBench struct {
	Patients      int     `json:"patients"`
	Rows          int     `json:"rows"`
	Phenos        int     `json:"phenos"`
	WideNsPerPair float64 `json:"wideNsPerPair"`
	LoopNsPerPair float64 `json:"loopNsPerPair"`
	PairsPerSec   float64 `json:"pairsPerSec"`
	Speedup       float64 `json:"speedup"`
}

// eqtlScale fixes the experiment at the paper's 1/100 scale regardless of the
// harness Scale, like the columnar and speculation experiments: parity and
// the kernel ratio are properties of the engine, not of the input size.
const eqtlScale = 100

// eqtlShape is one input shape of the parity sweep.
type eqtlShape struct {
	patients, snps, phenos int
}

// eqtlShapes are the two shapes parity is asserted at: a phenotype-light
// cross and a phenotype-heavy one whose SNP side is partitioned differently.
func eqtlShapes() []eqtlShape {
	return []eqtlShape{
		{patients: 500, snps: 2000, phenos: 16},
		{patients: 250, snps: 4000, phenos: 48},
	}
}

// eqtlFaults is the chaos profile of the recovery measurement: background
// task crashes and fetch failures plus one whole node lost mid-job.
func eqtlFaults() rdd.FaultProfile {
	return rdd.FaultProfile{
		TaskCrashProb:    0.1,
		FetchFailureProb: 0.1,
		NodeLoss:         []rdd.NodeLoss{{Node: 0, AfterTasks: 5}},
	}
}

// runEQTLConfig stages shape's genotype and expression matrices on a fresh
// tuned 6-node cluster, runs the all-pairs cross under cfg and faults, and
// returns the deterministic report, the result, the simulated seconds of the
// cross itself, and the stripped event log of the run.
type eqtlRunOut struct {
	report     []byte
	res        *assoc.Result
	simSeconds float64
	stripped   string
	recovery   rdd.RecoveryStats
}

func (h *Harness) runEQTLConfig(shape eqtlShape, cfg assoc.Config, faults rdd.FaultProfile) (eqtlRunOut, error) {
	ds, err := gen.Generate(gen.Config{Patients: shape.patients, SNPs: shape.snps, SNPSets: 4}, h.Seed)
	if err != nil {
		return eqtlRunOut{}, err
	}
	expr := gen.ExpressionMatrix(gen.Config{Patients: shape.patients}, rng.New(h.Seed+1), shape.phenos)

	var logBuf bytes.Buffer
	elw := rdd.NewEventLogWriter(&logBuf)
	scale := float64(eqtlScale)
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes:             6,
			Spec:              cluster.M3TwoXLarge,
			ExecutorsPerNode:  2,
			CoresPerExecutor:  4,
			MemPerExecutorGiB: 10 / scale,
		},
		DFSBlockSize:     int(float64(128<<20) / scale),
		SchedOverheadSec: 0.004 / scale,
		StageOverheadSec: 0.05 / scale,
		Seed:             h.Seed,
		Faults:           faults,
		Listeners:        []rdd.Listener{elw},
	})
	if err != nil {
		return eqtlRunOut{}, err
	}
	paths, err := assoc.Stage(ctx, ds.Genotypes, expr, "eqtl")
	if err != nil {
		return eqtlRunOut{}, err
	}
	a, err := assoc.NewAnalysis(ctx, paths.Genotypes, paths.Phenotypes, cfg)
	if err != nil {
		return eqtlRunOut{}, err
	}
	ctx.ResetClock()
	res, err := a.Run()
	if err != nil {
		return eqtlRunOut{}, err
	}
	out := eqtlRunOut{res: res, simSeconds: ctx.VirtualTime(), recovery: rdd.SummarizeRecovery(ctx.Jobs())}
	var buf bytes.Buffer
	if err := assoc.WriteReport(&buf, res); err != nil {
		return eqtlRunOut{}, err
	}
	out.report = buf.Bytes()
	if err := elw.Close(); err != nil {
		return eqtlRunOut{}, err
	}
	out.stripped, err = stripEventLog(logBuf.Bytes())
	if err != nil {
		return eqtlRunOut{}, err
	}
	return out, nil
}

// stripEventLog re-renders a raw JSONL event log with every measured-time
// field removed (rdd.StripMeasuredTime), the form that is byte-stable across
// seeded replays.
func stripEventLog(raw []byte) (string, error) {
	events, err := rdd.ReadEventLog(bytes.NewReader(raw))
	if err != nil {
		return "", err
	}
	var sb bytes.Buffer
	for _, ev := range events {
		line, err := rdd.MarshalEvent(rdd.StripMeasuredTime(ev))
		if err != nil {
			return "", err
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// measureEQTLKernel benchmarks the all-pairs scoring inner loop over one full
// 256-row block of 1000 patients against 64 Gaussian phenotypes, best-of-5
// in real time: the wide kernel decodes each row once and streams it through
// every phenotype; the loop decodes once per row too but scores phenotypes
// one at a time through the scalar kernels — the ablation the wide kernel is
// pinned bitwise against in internal/assoc.
func measureEQTLKernel(seed uint64) (EQTLPairBench, error) {
	const patients, rows, phenos = 1000, 256, 64
	cfg := gen.Config{Patients: patients, SNPs: rows, SNPSets: 4}
	blk := gen.GenoBlocks(cfg, rng.New(seed), rows)[0]
	expr := gen.ExpressionMatrix(gen.Config{Patients: patients}, rng.New(seed+1), phenos)
	models := make([]stats.Model, expr.Rows())
	for r := range models {
		m, err := stats.NewModel("gaussian", expr.Phenotype(r))
		if err != nil {
			return EQTLPairBench{}, err
		}
		models[r] = m
	}
	kernel, err := stats.NewWideKernel(models)
	if err != nil {
		return EQTLPairBench{}, err
	}

	var sink float64
	wide := func() {
		kernel.BlockStats(blk, func(_ int32, _ int, score, variance float64) {
			sink += score - variance
		})
	}
	dec := make([]data.Genotype, patients)
	loop := func() {
		for r := 0; r < blk.Rows(); r++ {
			stats.DecodeDosageGenotypes(blk.Row(r), dec)
			for _, m := range models {
				sink += stats.Score(m, dec) - m.Variance(dec)
			}
		}
	}

	bestNsPerPair := func(f func()) float64 {
		const inner = 5
		best := math.Inf(1)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			for i := 0; i < inner; i++ {
				f()
			}
			perPair := float64(time.Since(start).Nanoseconds()) / float64(inner*rows*phenos)
			if perPair < best {
				best = perPair
			}
		}
		return best
	}

	b := EQTLPairBench{
		Patients:      patients,
		Rows:          rows,
		Phenos:        phenos,
		WideNsPerPair: bestNsPerPair(wide),
		LoopNsPerPair: bestNsPerPair(loop),
	}
	if b.WideNsPerPair > 0 {
		b.PairsPerSec = 1e9 / b.WideNsPerPair
		b.Speedup = b.LoopNsPerPair / b.WideNsPerPair
	}
	_ = sink
	return b, nil
}

// runEQTL measures the all-pairs engine and asserts its claims: every
// configuration byte-identical at both shapes, chaos recovery byte-identical
// with byte-stable stripped replay logs, and a >= 2x wide-kernel pair
// throughput over the per-phenotype loop.
func runEQTL(h *Harness, w io.Writer) error {
	type config struct {
		name string
		cfg  assoc.Config
	}
	configs := []config{
		{"wide broadcast", assoc.Config{TopK: 50, HistBins: 512}},
		{"loop broadcast", assoc.Config{TopK: 50, HistBins: 512}.WithWide(false)},
		{"wide cartesian", assoc.Config{TopK: 50, HistBins: 512, Strategy: "cartesian", PhenoBatch: 8}},
	}

	var runs []EQTLRun
	for _, shape := range eqtlShapes() {
		var baseline []byte
		t := metrics.NewTable(
			fmt.Sprintf("All-pairs: %d SNPs x %d phenotypes, %d patients (fixed scale /%d)",
				shape.snps, shape.phenos, shape.patients, eqtlScale),
			"engine", "tested", "cross (sim-s)", "report")
		for _, c := range configs {
			out, err := h.runEQTLConfig(shape, c.cfg, rdd.FaultProfile{})
			if err != nil {
				return fmt.Errorf("eqtl: %s at %dx%d: %w", c.name, shape.snps, shape.phenos, err)
			}
			verdict := "baseline"
			if baseline == nil {
				baseline = out.report
			} else if bytes.Equal(out.report, baseline) {
				verdict = "identical"
			} else {
				verdict = "DIVERGED"
			}
			runs = append(runs, EQTLRun{
				Patients: shape.patients, SNPs: shape.snps, Phenos: shape.phenos,
				Strategy: out.res.Strategy, Wide: c.cfg.Wide == nil || *c.cfg.Wide,
				Tested: out.res.Tested, SimSeconds: out.simSeconds,
			})
			t.AddRow(c.name, fmt.Sprint(out.res.Tested), metrics.FormatSeconds(out.simSeconds), verdict)
			if verdict == "DIVERGED" {
				t.Fprint(w)
				return fmt.Errorf("eqtl: %s report diverged from %s at %d SNPs x %d phenotypes",
					c.name, configs[0].name, shape.snps, shape.phenos)
			}
		}
		t.Fprint(w)
	}

	// Chaos: the phenotype-heavy shape's cartesian cross (the most partitions,
	// so the node loss lands mid-job) under crashes, fetch failures, and a
	// node loss — run twice to pin replay determinism.
	shape := eqtlShapes()[1]
	chaosCfg := configs[2].cfg
	clean, err := h.runEQTLConfig(shape, chaosCfg, rdd.FaultProfile{})
	if err != nil {
		return fmt.Errorf("eqtl: clean chaos baseline: %w", err)
	}
	first, err := h.runEQTLConfig(shape, chaosCfg, eqtlFaults())
	if err != nil {
		return fmt.Errorf("eqtl: chaos run: %w", err)
	}
	second, err := h.runEQTLConfig(shape, chaosCfg, eqtlFaults())
	if err != nil {
		return fmt.Errorf("eqtl: chaos replay: %w", err)
	}
	chaos := EQTLChaos{
		CleanSimSeconds:      clean.simSeconds,
		ChaosSimSeconds:      first.simSeconds,
		TaskRetries:          first.recovery.TaskRetries,
		RecomputedPartitions: first.recovery.RecomputedPartitions,
		ReportsMatch:         bytes.Equal(clean.report, first.report) && bytes.Equal(first.report, second.report),
		ReplayStable:         first.stripped == second.stripped,
	}
	ct := metrics.NewTable(
		"Chaos: cartesian cross, crash/fetch 10% + node 0 lost after 5 tasks",
		"run", "cross (sim-s)", "retries", "recomputed", "report vs clean", "stripped log")
	ct.AddRow("clean", metrics.FormatSeconds(chaos.CleanSimSeconds), "0", "0", "baseline", "")
	ct.AddRow("chaos", metrics.FormatSeconds(chaos.ChaosSimSeconds),
		fmt.Sprint(chaos.TaskRetries), fmt.Sprint(chaos.RecomputedPartitions),
		map[bool]string{true: "identical", false: "DIVERGED"}[chaos.ReportsMatch],
		map[bool]string{true: "replay-stable", false: "UNSTABLE"}[chaos.ReplayStable])
	ct.Fprint(w)

	kernel, err := measureEQTLKernel(h.Seed)
	if err != nil {
		return fmt.Errorf("eqtl: kernel bench: %w", err)
	}
	kt := metrics.NewTable(
		fmt.Sprintf("Pair kernel: %d patients x %d rows x %d phenotypes per block",
			kernel.Patients, kernel.Rows, kernel.Phenos),
		"inner loop", "ns/pair", "pairs/s")
	kt.AddRow("wide multi-phenotype", fmt.Sprintf("%.1f", kernel.WideNsPerPair),
		fmt.Sprintf("%.2fM", kernel.PairsPerSec/1e6))
	kt.AddRow("per-phenotype loop", fmt.Sprintf("%.1f", kernel.LoopNsPerPair), "")
	kt.AddRow("speedup", fmt.Sprintf("%.2fx", kernel.Speedup), "")
	kt.Fprint(w)

	if h.EQTLJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment": "eqtl",
			"scale":      eqtlScale,
			"runs":       runs,
			"chaos":      chaos,
			"kernel":     kernel,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(h.EQTLJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", h.EQTLJSON)
	}

	if !chaos.ReportsMatch {
		return fmt.Errorf("eqtl: chaos report diverged from the clean run")
	}
	if chaos.TaskRetries+chaos.RecomputedPartitions == 0 {
		return fmt.Errorf("eqtl: chaos profile injected no faults (0 retries, 0 recomputed partitions) — the recovery claim is vacuous")
	}
	if !chaos.ReplayStable {
		return fmt.Errorf("eqtl: stripped event logs differ across seeded chaos replays")
	}
	if kernel.Speedup < 2 {
		return fmt.Errorf("eqtl: wide kernel speedup %.2fx < 2x (wide %.1f ns/pair, loop %.1f ns/pair)",
			kernel.Speedup, kernel.WideNsPerPair, kernel.LoopNsPerPair)
	}
	return nil
}
