// The speculation ablation: does speculative execution recover the stage
// wall-clock a deterministic straggler profile destroys?
//
// The measured workload is a single compute-bound stage shaped like one wave
// of Experiment A's resampling: 24 partitions on the 6-node cluster's 48
// virtual cores, so every task starts at virtual time zero and each executor
// keeps two cores free for speculative copies. Under StragglerProb 1 every
// task runs StragglerFactor (8x) slow; with speculation on, copies launch at
// multiplier x median and run at the normal rate, so the stage finishes at
// roughly (multiplier + 1) x the normal task time instead of StragglerFactor
// x — a bound the experiment asserts as >= 3x mitigation.

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"sparkscore/internal/cluster"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
)

// SpecRow is one measured cell of the speculation grid, serialized into the
// -json snapshot.
type SpecRow struct {
	Straggler           bool    `json:"straggler"`
	Speculation         bool    `json:"speculation"`
	StageSeconds        float64 `json:"stageSeconds"`
	P99TaskSeconds      float64 `json:"p99TaskSeconds"`
	SpeculatedTasks     int     `json:"speculatedTasks"`
	SpeculationWonTasks int     `json:"speculationWonTasks"`
	KilledTasks         int     `json:"killedTasks"`
}

const (
	specParts    = 24      // half the cluster's 48 slots: room for copies
	specBusyIter = 2000000 // ~10-20ms of real compute per task
)

// runSpeculationCell measures one grid cell: a single compute-bound stage
// under the given straggler/speculation switches.
func (h *Harness) runSpeculationCell(straggler, speculation bool) (SpecRow, error) {
	var stageSec float64
	var taskSec []float64
	probe := rdd.ListenerFunc(func(ev rdd.Event) {
		switch e := ev.(type) {
		case *rdd.StageCompleted:
			stageSec += e.Seconds
		case *rdd.TaskEnd:
			taskSec = append(taskSec, e.DurationSec)
		}
	})
	var faults rdd.FaultProfile
	if straggler {
		faults = rdd.FaultProfile{StragglerProb: 1, StragglerFactor: 8}
	}
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes: 6, Spec: cluster.M3TwoXLarge,
			ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 2,
		},
		Seed:   h.Seed,
		Faults: faults,
		// The stage fee must stay well under one task's compute so the
		// stage wall-clock reflects the tasks the ablation manipulates (the
		// default 0.05s would dwarf the ~15ms tasks).
		StageOverheadSec: 0.0005,
		SchedOverheadSec: 0.0005,
		Speculation:      rdd.SpeculationConfig{Enabled: speculation},
		Listeners:        []rdd.Listener{probe},
	})
	if err != nil {
		return SpecRow{}, err
	}
	ids := make([]int, specParts)
	for i := range ids {
		ids[i] = i
	}
	nums := rdd.Parallelize(ctx, ids, specParts).SetSizeHint(8)
	burned := rdd.Map(nums, "burn", func(n int) float64 {
		x := float64(n)
		for i := 0; i < specBusyIter; i++ {
			x += math.Sqrt(x + float64(i))
		}
		return x
	}).SetSizeHint(8)
	if _, err := rdd.Collect(burned); err != nil {
		return SpecRow{}, err
	}
	row := SpecRow{Straggler: straggler, Speculation: speculation, StageSeconds: stageSec}
	for _, m := range ctx.Jobs() {
		row.SpeculatedTasks += m.SpeculatedTasks
		row.SpeculationWonTasks += m.SpeculationWonTasks
		row.KilledTasks += m.KilledTasks
	}
	if len(taskSec) > 0 {
		sort.Float64s(taskSec)
		idx := int(math.Ceil(0.99*float64(len(taskSec)))) - 1
		if idx < 0 {
			idx = 0
		}
		row.P99TaskSeconds = taskSec[idx]
	}
	return row, nil
}

// runSpeculation measures the straggler x speculation grid and asserts the
// mitigation claim: with every task a deterministic 8x straggler, speculative
// copies must cut the stage wall-clock by at least 3x.
func runSpeculation(h *Harness, w io.Writer) error {
	var rows []SpecRow
	for _, straggler := range []bool{false, true} {
		for _, speculation := range []bool{false, true} {
			row, err := h.runSpeculationCell(straggler, speculation)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
	}
	cellFor := func(straggler, speculation bool) SpecRow {
		for _, r := range rows {
			if r.Straggler == straggler && r.Speculation == speculation {
				return r
			}
		}
		return SpecRow{}
	}
	unmitigated := cellFor(true, false)
	mitigated := cellFor(true, true)
	var ratio float64
	if mitigated.StageSeconds > 0 {
		ratio = unmitigated.StageSeconds / mitigated.StageSeconds
	}

	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	t := metrics.NewTable(
		fmt.Sprintf("Speculation: one %d-task compute stage, 8x stragglers on all tasks", specParts),
		"straggler", "speculation", "stage (sim-s)", "p99 task (sim-s)", "copies", "won", "killed")
	for _, r := range rows {
		t.AddRow(onOff(r.Straggler), onOff(r.Speculation),
			metrics.FormatSeconds(r.StageSeconds), metrics.FormatSeconds(r.P99TaskSeconds),
			fmt.Sprint(r.SpeculatedTasks), fmt.Sprint(r.SpeculationWonTasks), fmt.Sprint(r.KilledTasks))
	}
	t.AddRow("", "mitigation", fmt.Sprintf("%.2fx", ratio), "", "", "", "")
	t.Fprint(w)

	if h.SpeculationJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":               "speculation",
			"rows":                     rows,
			"stragglerMitigationRatio": ratio,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(h.SpeculationJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", h.SpeculationJSON)
	}

	clean := cellFor(false, false)
	quiet := cellFor(false, true)
	if quiet.SpeculatedTasks != 0 {
		return fmt.Errorf("speculation: %d copies launched with no stragglers (median-rate tasks must not speculate)", quiet.SpeculatedTasks)
	}
	if unmitigated.StageSeconds <= clean.StageSeconds {
		return fmt.Errorf("speculation: straggler profile did not slow the stage (%.4f <= %.4f sim-s)",
			unmitigated.StageSeconds, clean.StageSeconds)
	}
	if ratio < 3 {
		return fmt.Errorf("speculation: stage wall-clock mitigation %.2fx < 3x (unmitigated %.4f, speculated %.4f sim-s)",
			ratio, unmitigated.StageSeconds, mitigated.StageSeconds)
	}
	return nil
}
