// The memory experiment: does the sort-based external shuffle survive a
// unified pool squeezed below the shuffle working set where the hash shuffle
// OOMs?
//
// The working set is measured, not guessed: an uncapped run of the legacy
// hash shuffle reports (per task) the largest bucket set it had to hold
// resident — map-side combine means this is far smaller than the raw pair
// volume, so deriving the cap from raw shuffle bytes would squeeze nothing.
// The executor pool is then capped at half that high-water mark and the
// scale-100 chaos configuration (Experiment A + task crashes, fetch
// failures, and a node loss) is rerun three ways:
//
//   - sort shuffle, capped, twice: must complete, must spill, must produce a
//     report bitwise-equal to the uncapped hash run, and the two seeded
//     replays must have identical job fingerprints (spill accounting
//     included).
//   - hash shuffle, capped, once: must abort the job with the memory
//     manager's out-of-memory denial — its buckets have no spill path.
//
// Capped runs pin Workers=1 (Params.SingleWorker): serialising host-side
// execution makes grant denials, and with them spill points, a pure function
// of the configuration rather than goroutine interleaving.

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"sparkscore/internal/core"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
)

// MemoryRun is one measured mode of the capped-pool grid, serialized into
// the -json snapshot.
type MemoryRun struct {
	Shuffle            string  `json:"shuffle"`            // "sort" or "hash"
	CapBytes           int64   `json:"capBytes"`           // 0 = uncapped (scaled default)
	Chaos              bool    `json:"chaos"`              // chaos fault profile active
	Completed          bool    `json:"completed"`          // job finished (vs aborted)
	Error              string  `json:"error,omitempty"`    // abort cause when !Completed
	SimSeconds         float64 `json:"simSeconds"`         // simulated runtime
	SpilledBytes       int64   `json:"spilledBytes"`       // encoded sorted-run bytes written
	SpillCount         int     `json:"spillCount"`         // sorted runs written
	TaskBufferPeak     int64   `json:"taskBufferPeak"`     // largest per-task shuffle buffer
	ExecutionPeakBytes int64   `json:"executionPeakBytes"` // largest execution grant footprint
}

// memoryParams is the measured configuration: the chaos experiment's
// Experiment A setup (scale-100 by default), so the capped replay exercises
// spills and lineage recovery together.
func memoryParams(h *Harness) Params {
	p := tunedContainers(Params{
		Patients: 1000, SNPs: 100000, SNPSets: 1000, Nodes: 6, Cache: true,
		Method: "mc", Iterations: 16,
	})
	if h.MaxIterations > 0 && p.Iterations > h.MaxIterations {
		p.Iterations = h.MaxIterations
	}
	return p
}

// memoryChaosFaults mirrors runChaos: task crashes, fetch failures, and a
// whole machine lost mid-analysis.
func memoryChaosFaults() rdd.FaultProfile {
	return rdd.FaultProfile{
		TaskCrashProb:    0.02,
		FetchFailureProb: 0.02,
		NodeLoss:         []rdd.NodeLoss{{Node: 0, AfterTasks: 20}},
	}
}

// runMemoryMode executes one grid cell with a TaskEnd probe for the per-task
// buffer high-water mark, returning the measurements, the inference result
// (nil when the job aborted), and the replay fingerprint of the job metrics.
func (h *Harness) runMemoryMode(p Params, faults rdd.FaultProfile) (MemoryRun, *core.Result, string, error) {
	run := MemoryRun{Shuffle: "sort", CapBytes: p.MemCapBytes, Chaos: faults.TaskCrashProb > 0}
	if p.HashShuffle {
		run.Shuffle = "hash"
	}
	probe := rdd.ListenerFunc(func(ev rdd.Event) {
		if e, ok := ev.(*rdd.TaskEnd); ok && e.Metrics.ShuffleBufferBytes > run.TaskBufferPeak {
			run.TaskBufferPeak = e.Metrics.ShuffleBufferBytes
		}
	})
	saved := h.extraListeners
	h.extraListeners = append(append([]rdd.Listener(nil), saved...), probe)
	ctx, res, err := h.run(p, faults)
	h.extraListeners = saved
	if err != nil {
		run.Error = err.Error()
		return run, nil, "", nil
	}
	run.Completed = true
	run.SimSeconds = ctx.VirtualTime()
	var fp strings.Builder
	for _, m := range ctx.Jobs() {
		run.SpilledBytes += m.SpilledBytes
		run.SpillCount += m.SpillCount
		if m.ExecutionPeakBytes > run.ExecutionPeakBytes {
			run.ExecutionPeakBytes = m.ExecutionPeakBytes
		}
		fmt.Fprintf(&fp, "%+v\n", m.WithoutMeasuredTime())
	}
	return run, res, fp.String(), nil
}

// runMemory measures the capped-pool grid and asserts the tentpole claim:
// with executor memory capped at 50% of the hash shuffle's measured working
// set, the sort shuffle spills and completes the chaos run bitwise-equal to
// the uncapped hash baseline, while the hash shuffle aborts out of memory at
// the same cap.
func runMemory(h *Harness, w io.Writer) error {
	base := memoryParams(h)

	// Uncapped hash baseline: measures the working set (the largest bucket
	// set any task held resident) and produces the reference report.
	hashBase := base
	hashBase.HashShuffle = true
	baseline, baselineRes, _, err := h.runMemoryMode(hashBase, rdd.FaultProfile{})
	if err != nil {
		return fmt.Errorf("memory: uncapped hash baseline: %w", err)
	}
	if !baseline.Completed {
		return fmt.Errorf("memory: uncapped hash baseline aborted: %s", baseline.Error)
	}
	workingSet := baseline.TaskBufferPeak
	if workingSet <= 0 {
		return fmt.Errorf("memory: hash baseline held no shuffle buffers; working set unmeasurable")
	}
	cap := workingSet / 2

	capped := base
	capped.MemCapBytes = cap
	capped.SingleWorker = true

	sortCfg := capped
	sortRun, sortRes, fp1, err := h.runMemoryMode(sortCfg, memoryChaosFaults())
	if err != nil {
		return fmt.Errorf("memory: capped sort chaos run: %w", err)
	}
	replay, replayRes, fp2, err := h.runMemoryMode(sortCfg, memoryChaosFaults())
	if err != nil {
		return fmt.Errorf("memory: capped sort replay: %w", err)
	}

	hashCfg := capped
	hashCfg.HashShuffle = true
	oom, _, _, err := h.runMemoryMode(hashCfg, rdd.FaultProfile{})
	if err != nil {
		return fmt.Errorf("memory: capped hash run: %w", err)
	}

	replaysIdentical := sortRun.Completed && replay.Completed && fp1 == fp2
	resultsMatch := sortRes != nil && resultsEqual(baselineRes, sortRes) &&
		replayRes != nil && resultsEqual(baselineRes, replayRes)
	hashOOM := !oom.Completed && strings.Contains(oom.Error, "out of memory")

	status := func(r MemoryRun) string {
		if r.Completed {
			return "ok"
		}
		return "aborted"
	}
	capCell := func(r MemoryRun) string {
		if r.CapBytes == 0 {
			return "uncapped"
		}
		return fmt.Sprint(r.CapBytes)
	}
	t := metrics.NewTable(
		fmt.Sprintf("Memory: chaos run under a %d B pool (50%% of the hash working set %d B)", cap, workingSet),
		"shuffle", "cap (B)", "status", "sim-s", "spills", "spilled (B)", "task buffer peak (B)")
	for _, r := range []MemoryRun{baseline, sortRun, replay, oom} {
		t.AddRow(r.Shuffle, capCell(r), status(r), metrics.FormatSeconds(r.SimSeconds),
			fmt.Sprint(r.SpillCount), fmt.Sprint(r.SpilledBytes), fmt.Sprint(r.TaskBufferPeak))
	}
	t.Fprint(w)
	fmt.Fprintf(w, "capped sort replays identical: %v\n", replaysIdentical)
	fmt.Fprintf(w, "capped sort report bitwise-equal to uncapped hash: %v\n", resultsMatch)
	fmt.Fprintf(w, "capped hash aborted out of memory: %v\n", hashOOM)

	if h.MemoryJSON != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"experiment":           "memory",
			"scale":                h.scale(),
			"workingSetBytes":      workingSet,
			"capBytes":             cap,
			"runs":                 []MemoryRun{baseline, sortRun, replay, oom},
			"sortReplaysIdentical": replaysIdentical,
			"resultsMatch":         resultsMatch,
			"hashAbortedOOM":       hashOOM,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(h.MemoryJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", h.MemoryJSON)
	}

	if !sortRun.Completed {
		return fmt.Errorf("memory: capped sort run aborted: %s", sortRun.Error)
	}
	if sortRun.SpillCount == 0 || sortRun.SpilledBytes == 0 {
		return fmt.Errorf("memory: capped sort run did not spill (%d runs, %d B) — the cap is not below the working set",
			sortRun.SpillCount, sortRun.SpilledBytes)
	}
	if !replaysIdentical {
		return fmt.Errorf("memory: capped sort replays with the same seed diverged (spill accounting or recovery trace)")
	}
	if !resultsMatch {
		return fmt.Errorf("memory: capped sort inference not bitwise-equal to the uncapped hash baseline")
	}
	if oom.Completed {
		return fmt.Errorf("memory: capped hash run completed; the cap did not model an OOM")
	}
	if !hashOOM {
		return fmt.Errorf("memory: capped hash abort cause %q does not name the out-of-memory denial", oom.Error)
	}
	return nil
}
