// Experiment definitions, one per paper artifact. Canonical experiments own
// the measurement; table-only ids (tab2, tab3, ...) alias the figure whose
// sweep produces their numbers, so each configuration is measured once.

package harness

import (
	"fmt"
	"io"

	"sparkscore/internal/cluster"
	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
)

// The paper's iteration axes.
var (
	expAIterPerm = []int{0, 2, 4, 8, 16}
	expAIterMC   = []int{0, 2, 4, 8, 16, 100, 1000, 10000}
	expBIterAll  = []int{0, 10, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 10000}
	expBIter1M   = []int{0, 10, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
)

// tunedContainers is the container layout for Experiments A and B, where the
// paper reports well-behaved caching: 2 executors per node with 10 GiB each.
func tunedContainers(p Params) Params {
	p.ExecutorsPerNode, p.CoresPerExecutor, p.MemPerExecutorGiB = 2, 4, 10
	return p
}

// defaultContainers is the layout for the strong-scaling runs: the Spark 1.x
// out-of-the-box executor memory of 1 GiB, under which the cached U RDD no
// longer fits in aggregate storage on the small cluster — our model of why
// the paper's 6-node runs are two orders of magnitude slower (see DESIGN.md).
func defaultContainers(p Params) Params {
	p.ExecutorsPerNode, p.CoresPerExecutor, p.MemPerExecutorGiB = 2, 4, 1
	return p
}

func paramsTable(title string, rows ...Params) *metrics.Table {
	t := metrics.NewTable(title,
		"patients", "snps", "snp-sets", "avg-snps/set", "nodes", "containers", "mem/exec(GiB)")
	for _, p := range rows {
		containers := fmt.Sprintf("%dx%d cores", p.ExecutorsPerNode, p.CoresPerExecutor)
		if p.TotalExecutors > 0 {
			containers = fmt.Sprintf("%d total x%d cores", p.TotalExecutors, p.CoresPerExecutor)
		}
		t.AddRowf(p.Patients, p.SNPs, p.SNPSets, p.SNPs/p.SNPSets, p.Nodes, containers, p.MemPerExecutorGiB)
	}
	return t
}

// Experiments returns the canonical experiment list in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "tab1", Title: "Table I: m3.2xlarge instances", Run: runTab1},
		{ID: "fig2", Title: "Figure 2 + Tables II-III: scalability, Monte Carlo vs permutation", Run: runFig2},
		{ID: "fig3", Title: "Figure 3: sensitivity, iterations x SNPs constant", Run: runFig3},
		{ID: "fig4", Title: "Figure 4 + Tables IV-V: Monte Carlo caching, 10K SNPs", Run: runFig4},
		{ID: "fig5", Title: "Figure 5: Monte Carlo caching, 1M SNPs", Run: runFig5},
		{ID: "fig6", Title: "Figure 6 + Table VI: strong scaling, 1M SNPs", Run: runFig6},
		{ID: "fig7", Title: "Figure 7 + Tables VII-VIII: container auto-tuning, 1M SNPs", Run: runFig7},
		{ID: "chaos", Title: "Chaos: lineage recovery under node loss and task failures", Run: runChaos},
		{ID: "combine", Title: "Combine: shuffle bytes with and without map-side combine", Run: runCombine},
		{ID: "serving", Title: "Serving: concurrent job throughput and latency, FIFO vs FAIR", Run: runServing},
		{ID: "speculation", Title: "Speculation: stage wall-clock with 8x stragglers, speculative copies on/off", Run: runSpeculation},
		{ID: "columnar", Title: "Columnar: 2-bit packed genotype engine vs boxed rows", Run: runColumnar},
		{ID: "memory", Title: "Memory: sort-shuffle spill vs hash OOM under a capped unified pool", Run: runMemory},
		{ID: "adaptive", Title: "Adaptive: skew splitting and partition coalescing, planner on/off", Run: runAdaptive},
		{ID: "eqtl", Title: "EQTL: all-pairs wide kernel vs per-phenotype loop, parity and throughput", Run: runEQTL},
	}
}

// aliases maps table-only artifact ids to the experiment that prints them.
var aliases = map[string]string{
	"tab2": "fig2", "tab3": "fig2",
	"tab4": "fig4", "tab5": "fig4",
	"tab6": "fig6",
	"tab7": "fig7", "tab8": "fig7",
}

// Resolve maps any artifact id (figure or table) to its canonical experiment.
func Resolve(id string) (Experiment, bool) {
	if canonical, ok := aliases[id]; ok {
		id = canonical
	}
	return Lookup(id)
}

func runTab1(h *Harness, w io.Writer) error {
	spec := cluster.M3TwoXLarge
	t := metrics.NewTable("Table I: Amazon EC2 instance profile",
		"instance", "vCPU", "mem(GiB)", "storage(GB)")
	t.AddRowf(spec.Name, spec.VCPUs, spec.MemGiB, spec.StorageGB)
	t.Fprint(w)
	return nil
}

// runFig2 is Experiment A: 100K SNPs on 6 nodes, permutation vs Monte Carlo
// over the iteration axis; Table III adds mean and stdev over repetitions.
func runFig2(h *Harness, w io.Writer) error {
	base := tunedContainers(Params{
		Patients: 1000, SNPs: 100000, SNPSets: 1000, Nodes: 6, Cache: true,
	})
	paramsTable("Table II: input parameters of Experiment A", base).Fprint(w)
	fmt.Fprintln(w)

	mcBase := base
	mcBase.Method = "mc"
	mc, err := h.sweep(mcBase, expAIterMC)
	if err != nil {
		return err
	}
	permBase := base
	permBase.Method = "perm"
	perm, err := h.sweep(permBase, expAIterPerm)
	if err != nil {
		return err
	}

	fig := metrics.NewTable(fmt.Sprintf("Figure 2: execution time (sim-s) vs iterations [scale 1/%d]", h.scale()),
		"iterations", "monte-carlo", "permutation")
	for _, it := range expAIterMC {
		permCell := cell(perm, it, it <= 16)
		fig.AddRow(fmt.Sprint(it), cell(mc, it, true), permCell)
	}
	fig.Fprint(w)
	fmt.Fprintln(w)

	tab := metrics.NewTable(fmt.Sprintf("Table III: runtimes over %d repetitions (sim-s)", h.reps()),
		"iterations", "mc-avg", "mc-stdev", "perm-avg", "perm-stdev")
	for _, it := range expAIterMC {
		row := []string{fmt.Sprint(it), cell(mc, it, true), stdevCell(mc, it, true)}
		row = append(row, cell(perm, it, it <= 16), stdevCell(perm, it, it <= 16))
		tab.AddRow(row...)
	}
	tab.Fprint(w)
	return nil
}

func stdevCell(samples map[int]metrics.Sample, it int, measured bool) string {
	if !measured {
		return "N/A"
	}
	s, ok := samples[it]
	if !ok {
		return "skipped"
	}
	return metrics.FormatSeconds(s.Stdev())
}

// runFig3 holds iterations x SNPs constant across three configurations.
func runFig3(h *Harness, w io.Writer) error {
	configs := []struct {
		iters, snps int
	}{
		{1000, 10000},
		{100, 100000},
		{10, 1000000},
	}
	t := metrics.NewTable(fmt.Sprintf("Figure 3: sensitivity, iterations x SNPs = 10^7 [scale 1/%d]", h.scale()),
		"iterations x snps", "monte-carlo", "permutation")
	for _, cfg := range configs {
		base := tunedContainers(Params{
			Patients: 1000, SNPs: cfg.snps, SNPSets: 1000, Nodes: 6, Cache: true,
			Iterations: cfg.iters,
		})
		label := fmt.Sprintf("%d x %d", cfg.iters, cfg.snps)
		if h.MaxIterations > 0 && cfg.iters > h.MaxIterations {
			t.AddRow(label, "skipped", "skipped")
			continue
		}
		row := []string{label}
		for _, method := range []string{"mc", "perm"} {
			p := base
			p.Method = method
			sample := metrics.Repeat(h.reps(), func() float64 {
				v, err := h.Measure(p)
				if err != nil {
					panic(err)
				}
				return v
			})
			row = append(row, metrics.FormatSeconds(sample.Mean()))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return nil
}

// runFig4 is Experiment B at 10K SNPs: Monte Carlo with and without caching;
// Table V adds mean/stdev.
func runFig4(h *Harness, w io.Writer) error {
	base := tunedContainers(Params{
		Patients: 1000, SNPs: 10000, SNPSets: 1000, Nodes: 18, Method: "mc",
	})
	big := base
	big.SNPs = 1000000
	paramsTable("Table IV: input parameters of Experiment B", base, big).Fprint(w)
	fmt.Fprintln(w)

	cached := base
	cached.Cache = true
	withCache, err := h.sweep(cached, expBIterAll)
	if err != nil {
		return err
	}
	uncached := base
	uncached.Cache = false
	// The paper stops the uncached runs at 200 iterations (cost), N/A beyond.
	noCache, err := h.sweep(uncached, []int{0, 10, 100, 200})
	if err != nil {
		return err
	}

	fig := metrics.NewTable(fmt.Sprintf("Figure 4: Monte Carlo w/ and w/o caching, 10K SNPs (sim-s) [scale 1/%d]", h.scale()),
		"iterations", "with-cache", "without-cache")
	tab := metrics.NewTable(fmt.Sprintf("Table V: runtimes over %d repetitions (sim-s)", h.reps()),
		"iterations", "cache-avg", "cache-stdev", "nocache-avg", "nocache-stdev")
	for _, it := range expBIterAll {
		measuredNC := it <= 200
		fig.AddRow(fmt.Sprint(it), cell(withCache, it, true), cell(noCache, it, measuredNC))
		tab.AddRow(fmt.Sprint(it), cell(withCache, it, true), stdevCell(withCache, it, true),
			cell(noCache, it, measuredNC), stdevCell(noCache, it, measuredNC))
	}
	fig.Fprint(w)
	fmt.Fprintln(w)
	tab.Fprint(w)
	return nil
}

// runFig5 is Experiment B at 1M SNPs.
func runFig5(h *Harness, w io.Writer) error {
	base := tunedContainers(Params{
		Patients: 1000, SNPs: 1000000, SNPSets: 1000, Nodes: 18, Method: "mc",
	})
	cached := base
	cached.Cache = true
	withCache, err := h.sweep(cached, expBIter1M)
	if err != nil {
		return err
	}
	uncached := base
	uncached.Cache = false
	// The paper shows uncached points only at 0 and 10 iterations for 1M SNPs.
	noCache, err := h.sweep(uncached, []int{0, 10})
	if err != nil {
		return err
	}
	fig := metrics.NewTable(fmt.Sprintf("Figure 5: Monte Carlo w/ and w/o caching, 1M SNPs (sim-s) [scale 1/%d]", h.scale()),
		"iterations", "with-cache", "without-cache")
	for _, it := range expBIter1M {
		fig.AddRow(fmt.Sprint(it), cell(withCache, it, true), cell(noCache, it, it <= 10))
	}
	fig.Fprint(w)
	return nil
}

// runFig6 is the strong-scaling investigation: 1M SNPs on 6, 12, and 18
// nodes under the default (untuned) 1 GiB executors.
func runFig6(h *Harness, w io.Writer) error {
	nodes := []int{6, 12, 18}
	var rows []Params
	for _, n := range nodes {
		rows = append(rows, defaultContainers(Params{
			Patients: 1000, SNPs: 1000000, SNPSets: 1000, Nodes: n,
		}))
	}
	paramsTable("Table VI: input parameters of the strong-scaling investigation", rows...).Fprint(w)
	fmt.Fprintln(w)

	iters := []int{0, 10, 20}
	t := metrics.NewTable(fmt.Sprintf("Figure 6: strong scaling, 1M SNPs (sim-s) [scale 1/%d]", h.scale()),
		"iterations", "6-nodes", "12-nodes", "18-nodes")
	results := map[int]map[int]metrics.Sample{}
	for _, p := range rows {
		p.Method, p.Cache = "mc", true
		s, err := h.sweep(p, iters)
		if err != nil {
			return err
		}
		results[p.Nodes] = s
	}
	for _, it := range iters {
		t.AddRow(fmt.Sprint(it),
			cell(results[6], it, true), cell(results[12], it, true), cell(results[18], it, true))
	}
	t.Fprint(w)
	return nil
}

// runChaos exercises the paper's fault-tolerance claim (Section II: "failed
// tasks are automatically recomputed from the lineage") as a measurement:
// Experiment A's configuration runs fault-free and then under a fault profile
// that crashes tasks, loses shuffle fetches, and kills a whole machine
// mid-analysis. The inference must be numerically identical; the table
// reports what the recovery cost in simulated time.
func runChaos(h *Harness, w io.Writer) error {
	p := tunedContainers(Params{
		Patients: 1000, SNPs: 100000, SNPSets: 1000, Nodes: 6, Cache: true,
		Method: "mc", Iterations: 16,
	})
	if h.MaxIterations > 0 && p.Iterations > h.MaxIterations {
		p.Iterations = h.MaxIterations
	}
	faults := rdd.FaultProfile{
		TaskCrashProb:    0.02,
		FetchFailureProb: 0.02,
		NodeLoss:         []rdd.NodeLoss{{Node: 0, AfterTasks: 20}},
	}
	first, err := h.MeasureRecovery(p, faults)
	if err != nil {
		return err
	}
	second, err := h.MeasureRecovery(p, faults)
	if err != nil {
		return err
	}

	t := metrics.NewTable("Chaos run: node 0 lost mid-analysis + 2% task crashes + 2% fetch failures",
		"metric", "value")
	t.AddRow("fault-free runtime (sim-s)", metrics.FormatSeconds(first.CleanSeconds))
	t.AddRow("chaos runtime (sim-s)", metrics.FormatSeconds(first.ChaosSeconds))
	t.AddRowf("task retries", first.Stats.TaskRetries)
	t.AddRowf("stage re-attempts", first.Stats.StageAttempts)
	t.AddRowf("recomputed partitions", first.Stats.RecomputedPartitions)
	t.AddRow("recovery share of runtime", metrics.FormatPercent(first.Stats.Overhead()))
	t.AddRowf("results identical to fault-free", first.ResultsMatch)
	t.AddRowf("replay reproducible (same seed)", first.Fingerprint == second.Fingerprint)
	t.Fprint(w)
	if !first.ResultsMatch {
		return fmt.Errorf("chaos: inference results diverged from the fault-free run")
	}
	if first.Fingerprint != second.Fingerprint {
		return fmt.Errorf("chaos: identical seed produced different recovery traces")
	}
	return nil
}

// runCombine is the map-side-combine ablation. The measured workload is the
// SKAT set aggregation of Algorithm 1 step 10 in isolation: per-SNP terms
// flat-mapped onto their SNP-sets and summed per set with ReduceByKey, at
// cluster-wide parallelism on Experiment A's 6-node cluster. With ~100
// SNPs per set, combining on the map side collapses each map task's buckets
// to at most one pair per set before the shuffle, so both total and remote
// shuffled bytes shrink by roughly the SNPs-per-set factor; disabling
// combine ships every raw pair.
func runCombine(h *Harness, w io.Writer) error {
	// Floored so the ablation keeps duplicate keys per map task at extreme
	// scales — with fewer elements than partitions there is nothing to
	// combine and the comparison degenerates.
	snps := 100000 / h.scale()
	if snps < 2000 {
		snps = 2000
	}
	sets := snps / 100 // the paper's ~100 SNPs per set
	type tally struct {
		shuffle, remote, peakMat int64
		fused                    int
		seconds                  float64
	}
	measure := func(disable bool) (tally, error) {
		ctx, err := rdd.New(rdd.Config{
			Cluster: cluster.Config{
				Nodes: 6, Spec: cluster.M3TwoXLarge,
				ExecutorsPerNode: 2, CoresPerExecutor: 4,
				MemPerExecutorGiB: 10 / float64(h.scale()),
			},
			Seed:                  h.Seed,
			DisableMapSideCombine: disable,
		})
		if err != nil {
			return tally{}, err
		}
		ids := make([]int, snps)
		for i := range ids {
			ids[i] = i
		}
		snpIDs := rdd.Parallelize(ctx, ids, ctx.DefaultParallelism()).SetSizeHint(8)
		perSet := rdd.FlatMap(snpIDs, "bySet", func(snp int) []rdd.KV[int, float64] {
			return []rdd.KV[int, float64]{{K: snp % sets, V: float64(snp)}}
		}).SetSizeHint(16)
		sums := rdd.ReduceByKey(perSet, func(x, y float64) float64 { return x + y }, 0)
		if _, err := rdd.CollectAsMap(sums); err != nil {
			return tally{}, err
		}
		var s tally
		for _, m := range ctx.Jobs() {
			s.shuffle += m.ShuffleBytes
			s.remote += m.ShuffleRemoteBytes
			if m.PeakMaterializedBytes > s.peakMat {
				s.peakMat = m.PeakMaterializedBytes
			}
			if m.MaxFusedChain > s.fused {
				s.fused = m.MaxFusedChain
			}
		}
		s.seconds = ctx.VirtualTime()
		return s, nil
	}
	on, err := measure(false)
	if err != nil {
		return err
	}
	off, err := measure(true)
	if err != nil {
		return err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Map-side combine ablation: SNP-set aggregation, %d SNPs onto %d sets [scale 1/%d]", snps, sets, h.scale()),
		"metric", "combine-on", "combine-off")
	t.AddRowf("shuffle bytes", on.shuffle, off.shuffle)
	t.AddRowf("remote shuffle bytes", on.remote, off.remote)
	t.AddRowf("peak materialized bytes/task", on.peakMat, off.peakMat)
	t.AddRowf("max fused chain", on.fused, off.fused)
	t.AddRow("runtime (sim-s)", metrics.FormatSeconds(on.seconds), metrics.FormatSeconds(off.seconds))
	if off.remote > 0 {
		t.AddRow("remote bytes saved by combine",
			metrics.FormatPercent(1-float64(on.remote)/float64(off.remote)), "")
	}
	t.Fprint(w)
	if on.remote >= off.remote {
		return fmt.Errorf("combine: map-side combine did not reduce remote shuffle bytes (%d >= %d)", on.remote, off.remote)
	}
	return nil
}

// runFig7 is the container auto-tuning investigation: 42/84/126 containers
// on 36 nodes (Table VIII layouts), all with 252 total cores.
func runFig7(h *Harness, w io.Writer) error {
	layouts := []Params{
		{Patients: 1000, SNPs: 1000000, SNPSets: 1000, Nodes: 36,
			TotalExecutors: 42, CoresPerExecutor: 6, MemPerExecutorGiB: 10},
		{Patients: 1000, SNPs: 1000000, SNPSets: 1000, Nodes: 36,
			TotalExecutors: 84, CoresPerExecutor: 3, MemPerExecutorGiB: 10},
		{Patients: 1000, SNPs: 1000000, SNPSets: 1000, Nodes: 36,
			TotalExecutors: 126, CoresPerExecutor: 2, MemPerExecutorGiB: 8},
	}
	paramsTable("Tables VII-VIII: auto-tuning inputs (36 nodes)", layouts...).Fprint(w)
	fmt.Fprintln(w)

	iters := []int{0, 10, 100}
	t := metrics.NewTable(fmt.Sprintf("Figure 7: Spark run-time properties on YARN, 1M SNPs (sim-s) [scale 1/%d]", h.scale()),
		"iterations", "42-containers", "84-containers", "126-containers")
	results := make([]map[int]metrics.Sample, len(layouts))
	for i, p := range layouts {
		p.Method, p.Cache = "mc", true
		s, err := h.sweep(p, iters)
		if err != nil {
			return err
		}
		results[i] = s
	}
	for _, it := range iters {
		t.AddRow(fmt.Sprint(it),
			cell(results[0], it, true), cell(results[1], it, true), cell(results[2], it, true))
	}
	t.Fprint(w)
	return nil
}
