package stats

import (
	"errors"
	"math"
	"testing"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

// simulateCoxData draws survival data where the hazard depends on genotype
// through the log hazard ratio beta (inverse-CDF simulation of exponential
// survival with rate λ·e^{βg}).
func simulateCoxData(r *rng.RNG, n int, beta float64) (*data.Phenotype, []data.Genotype) {
	ph := data.NewPhenotype(n)
	g := make([]data.Genotype, n)
	for i := 0; i < n; i++ {
		g[i] = data.Genotype(r.Binomial(2, 0.3))
		rate := math.Exp(beta*float64(g[i])) / 12
		ph.Y[i] = r.Exponential(rate)
		if r.Bernoulli(0.85) {
			ph.Event[i] = 1
		}
	}
	return ph, g
}

func TestFitCoxRecoversNullBeta(t *testing.T) {
	r := rng.New(1)
	ph, g := simulateCoxData(r, 2000, 0)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := cox.FitCox(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Beta) > 3*fit.StdErr {
		t.Fatalf("null fit gave beta %.4f (SE %.4f)", fit.Beta, fit.StdErr)
	}
}

func TestFitCoxRecoversEffect(t *testing.T) {
	r := rng.New(2)
	const trueBeta = 0.7
	ph, g := simulateCoxData(r, 3000, trueBeta)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := cox.FitCox(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Beta-trueBeta) > 4*fit.StdErr {
		t.Fatalf("beta = %.4f (SE %.4f), want ~%.2f", fit.Beta, fit.StdErr, trueBeta)
	}
	if fit.Wald <= 0 || fit.LRT <= 0 {
		t.Fatalf("Wald %.2f / LRT %.2f not positive under a strong effect", fit.Wald, fit.LRT)
	}
}

func TestScoreWaldLRTAsymptoticallyAgree(t *testing.T) {
	// The three classical tests are asymptotically equivalent; on a large
	// sample with a moderate effect their chi-squared statistics should be
	// within ~15% of one another.
	r := rng.New(3)
	ph, g := simulateCoxData(r, 4000, 0.3)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	scoreStat := Chi2Stat(Score(cox, g), cox.Variance(g))
	fit, err := cox.FitCox(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, stat := range map[string]float64{"wald": fit.Wald, "lrt": fit.LRT} {
		ratio := stat / scoreStat
		if ratio < 0.85 || ratio > 1.18 {
			t.Errorf("%s/score ratio = %.3f (score %.2f, %s %.2f)", name, ratio, scoreStat, name, stat)
		}
	}
}

func TestFitCoxScoreAtBetaHatIsZero(t *testing.T) {
	r := rng.New(4)
	ph, g := simulateCoxData(r, 500, 0.5)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := cox.FitCox(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	score, _ := cox.scoreInfo(g, fit.Beta)
	if math.Abs(score) > 1e-6 {
		t.Fatalf("score at beta-hat = %v, want ~0", score)
	}
}

func TestFitCoxMonomorphicFailsToConverge(t *testing.T) {
	r := rng.New(5)
	ph := randomSurvival(r, 50)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]data.Genotype, 50) // all zero: no information about beta
	_, err = cox.FitCox(g, 0, 0)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestFitCoxSeparatedDataDiverges(t *testing.T) {
	// Perfect separation: carriers all die immediately, non-carriers are all
	// censored late. The MLE is +inf; Newton must report non-convergence
	// rather than returning garbage.
	n := 40
	ph := data.NewPhenotype(n)
	g := make([]data.Genotype, n)
	for i := 0; i < n; i++ {
		if i < n/2 {
			g[i] = 2
			ph.Y[i] = 1 + float64(i)*0.01
			ph.Event[i] = 1
		} else {
			g[i] = 0
			ph.Y[i] = 100 + float64(i)
			ph.Event[i] = 0
		}
	}
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cox.FitCox(g, 15, 0); !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestPartialLogLikDecreasesAwayFromMLE(t *testing.T) {
	r := rng.New(6)
	ph, g := simulateCoxData(r, 800, 0.4)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := cox.FitCox(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	atHat := cox.partialLogLik(g, fit.Beta)
	for _, off := range []float64{-0.5, 0.5, 1.5} {
		if ll := cox.partialLogLik(g, fit.Beta+off); ll >= atHat {
			t.Fatalf("logLik(beta+%.1f) = %.4f >= logLik(beta-hat) = %.4f", off, ll, atHat)
		}
	}
}
