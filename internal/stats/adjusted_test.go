package stats

import (
	"math"
	"testing"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

func TestCholSolveKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
	a := [][]float64{{4, 2}, {2, 3}}
	b := []float64{10, 8}
	if err := cholSolve(a, b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b[0]-1.75) > 1e-12 || math.Abs(b[1]-1.5) > 1e-12 {
		t.Fatalf("x = %v, want [1.75 1.5]", b)
	}
}

func TestCholSolveRejectsNonPD(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 1}} // eigenvalues 3, -1
	if err := cholSolve(a, []float64{1, 1}); err == nil {
		t.Fatal("non-positive-definite matrix accepted")
	}
	// Perfectly collinear design.
	a = [][]float64{{1, 1}, {1, 1}}
	if err := cholSolve(a, []float64{1, 1}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestFitOLSExact(t *testing.T) {
	// y = 2 + 3x, noiseless: residuals must vanish.
	x := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	coef, fitted, err := fitOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-2) > 1e-10 || math.Abs(coef[1]-3) > 1e-10 {
		t.Fatalf("coef = %v, want [2 3]", coef)
	}
	for i := range y {
		if math.Abs(fitted[i]-y[i]) > 1e-10 {
			t.Fatalf("fitted[%d] = %v, want %v", i, fitted[i], y[i])
		}
	}
}

func TestFitOLSRecoversNoisyCoefficients(t *testing.T) {
	r := rng.New(1)
	n := 5000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		c := r.Normal()
		x[i] = []float64{1, c}
		y[i] = 1.5 - 2*c + 0.3*r.Normal()
	}
	coef, _, err := fitOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-1.5) > 0.05 || math.Abs(coef[1]+2) > 0.05 {
		t.Fatalf("coef = %v, want ~[1.5 -2]", coef)
	}
}

func TestFitLogisticRecoversCoefficients(t *testing.T) {
	r := rng.New(2)
	n := 20000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		c := r.Normal()
		x[i] = []float64{1, c}
		p := expit(-0.5 + 1.2*c)
		if r.Bernoulli(p) {
			y[i] = 1
		}
	}
	coef, fitted, err := fitLogistic(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]+0.5) > 0.1 || math.Abs(coef[1]-1.2) > 0.1 {
		t.Fatalf("coef = %v, want ~[-0.5 1.2]", coef)
	}
	for i := range fitted {
		if fitted[i] <= 0 || fitted[i] >= 1 {
			t.Fatalf("fitted[%d] = %v outside (0,1)", i, fitted[i])
		}
	}
}

func TestExpit(t *testing.T) {
	if got := expit(0); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("expit(0) = %v", got)
	}
	if got := expit(700); got != 1 && math.Abs(got-1) > 1e-12 {
		t.Fatalf("expit(700) = %v", got)
	}
	if got := expit(-700); got < 0 || got > 1e-300 {
		// must underflow gracefully, not NaN
		t.Fatalf("expit(-700) = %v", got)
	}
	if math.IsNaN(expit(-1e6)) || math.IsNaN(expit(1e6)) {
		t.Fatal("expit produced NaN at extremes")
	}
}

// confoundedData simulates a confounder C driving both the genotype and the
// outcome, so the unadjusted score test sees a spurious association.
func confoundedData(r *rng.RNG, n int) (c []float64, g []data.Genotype) {
	c = make([]float64, n)
	g = make([]data.Genotype, n)
	for i := 0; i < n; i++ {
		c[i] = r.Normal()
		p := expit(0.8 * c[i]) // allele frequency rises with the confounder
		g[i] = data.Genotype(r.Binomial(2, 0.1+0.8*p/2))
	}
	return c, g
}

func TestGaussianAdjustedRemovesConfounding(t *testing.T) {
	r := rng.New(3)
	n := 4000
	c, g := confoundedData(r, n)
	ph := data.NewPhenotype(n)
	cov := make([][]float64, n)
	for i := 0; i < n; i++ {
		ph.Y[i] = 2*c[i] + r.Normal() // outcome depends only on the confounder
		ph.Event[i] = 1
		cov[i] = []float64{c[i]}
	}
	unadj, err := NewGaussian(ph)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := NewGaussianAdjusted(ph, cov)
	if err != nil {
		t.Fatal(err)
	}
	unadjStat := Chi2Stat(Score(unadj, g), unadj.Variance(g))
	adjStat := Chi2Stat(Score(adj, g), adj.Variance(g))
	if unadjStat < 20 {
		t.Fatalf("confounding too weak to test: unadjusted chi2 = %.2f", unadjStat)
	}
	if adjStat > unadjStat/5 {
		t.Fatalf("adjustment left chi2 = %.2f (unadjusted %.2f)", adjStat, unadjStat)
	}
	if p := ChiSquaredSurvival(adjStat, 1); p < 0.001 {
		t.Fatalf("adjusted test still significant: p = %g", p)
	}
}

func TestBinomialAdjustedRemovesConfounding(t *testing.T) {
	r := rng.New(4)
	n := 6000
	c, g := confoundedData(r, n)
	ph := data.NewPhenotype(n)
	cov := make([][]float64, n)
	for i := 0; i < n; i++ {
		if r.Bernoulli(expit(1.5 * c[i])) {
			ph.Y[i] = 1
		}
		cov[i] = []float64{c[i]}
	}
	unadj, err := NewBinomial(ph)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := NewBinomialAdjusted(ph, cov)
	if err != nil {
		t.Fatal(err)
	}
	unadjStat := Chi2Stat(Score(unadj, g), unadj.Variance(g))
	adjStat := Chi2Stat(Score(adj, g), adj.Variance(g))
	if unadjStat < 20 {
		t.Fatalf("confounding too weak to test: unadjusted chi2 = %.2f", unadjStat)
	}
	if adjStat > unadjStat/5 {
		t.Fatalf("adjustment left chi2 = %.2f (unadjusted %.2f)", adjStat, unadjStat)
	}
}

func TestCoxAdjustedRemovesConfounding(t *testing.T) {
	r := rng.New(5)
	n := 4000
	c, g := confoundedData(r, n)
	ph := data.NewPhenotype(n)
	cov := make([][]float64, n)
	for i := 0; i < n; i++ {
		rate := math.Exp(0.8*c[i]) / 12 // hazard depends only on the confounder
		ph.Y[i] = r.Exponential(rate)
		if r.Bernoulli(0.85) {
			ph.Event[i] = 1
		}
		cov[i] = []float64{c[i]}
	}
	unadj, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := NewCoxAdjusted(ph, cov)
	if err != nil {
		t.Fatal(err)
	}
	unadjStat := Chi2Stat(Score(unadj, g), unadj.Variance(g))
	adjStat := Chi2Stat(Score(adj, g), adj.Variance(g))
	if unadjStat < 20 {
		t.Fatalf("confounding too weak to test: unadjusted chi2 = %.2f", unadjStat)
	}
	if adjStat > unadjStat/5 {
		t.Fatalf("adjustment left chi2 = %.2f (unadjusted %.2f)", adjStat, unadjStat)
	}
}

func TestFitCoxMultiRecoversGamma(t *testing.T) {
	r := rng.New(6)
	n := 5000
	ph := data.NewPhenotype(n)
	z := make([][]float64, n)
	trueGamma := []float64{0.6, -0.4}
	for i := 0; i < n; i++ {
		z[i] = []float64{r.Normal(), r.Normal()}
		rate := math.Exp(trueGamma[0]*z[i][0]+trueGamma[1]*z[i][1]) / 12
		ph.Y[i] = r.Exponential(rate)
		if r.Bernoulli(0.85) {
			ph.Event[i] = 1
		}
	}
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := cox.fitCoxMulti(z, 25, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for a := range trueGamma {
		if math.Abs(gamma[a]-trueGamma[a]) > 0.1 {
			t.Fatalf("gamma = %v, want ~%v", gamma, trueGamma)
		}
	}
}

func TestCoxZeroCovariateEffectMatchesUnadjusted(t *testing.T) {
	// Covariates unrelated to the outcome: γ̂ ≈ 0, so adjusted and unadjusted
	// contributions should nearly coincide.
	r := rng.New(7)
	n := 3000
	ph := randomSurvival(r, n)
	cov := make([][]float64, n)
	for i := range cov {
		cov[i] = []float64{r.Normal()}
	}
	g := randomGenotypes(r, n)
	unadj, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := NewCoxAdjusted(ph, cov)
	if err != nil {
		t.Fatal(err)
	}
	su, sa := Score(unadj, g), Score(adj, g)
	sd := math.Sqrt(unadj.Variance(g))
	if math.Abs(su-sa) > 0.25*sd {
		t.Fatalf("adjusted score %v drifted from unadjusted %v (sd %v) under a null covariate", sa, su, sd)
	}
}

func TestWithRiskWeightsUnit(t *testing.T) {
	r := rng.New(8)
	ph := randomSurvival(r, 100)
	g := randomGenotypes(r, 100)
	base, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, 100)
	for i := range ones {
		ones[i] = 1
	}
	weighted := base.withRiskWeights(ones)
	u1 := make([]float64, 100)
	u2 := make([]float64, 100)
	base.Contributions(g, u1)
	weighted.Contributions(g, u2)
	for i := range u1 {
		if math.Abs(u1[i]-u2[i]) > 1e-12 {
			t.Fatalf("unit weights changed contribution %d: %v vs %v", i, u1[i], u2[i])
		}
	}
	if math.Abs(base.Variance(g)-weighted.Variance(g)) > 1e-9 {
		t.Fatal("unit weights changed the variance")
	}
}

func TestNewAdjustedModelDispatch(t *testing.T) {
	ph := &data.Phenotype{Y: []float64{0, 1, 1, 0}, Event: []uint8{1, 0, 1, 1}}
	cov := [][]float64{{0.1}, {0.2}, {-0.3}, {0.4}}
	for _, fam := range []string{"cox", "gaussian", "binomial"} {
		m, err := NewAdjustedModel(fam, ph, cov)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if m.Name() != fam {
			t.Fatalf("Name() = %q", m.Name())
		}
	}
	if _, err := NewAdjustedModel("poisson", ph, cov); err == nil {
		t.Fatal("unknown family accepted")
	}
	// Empty covariates fall through to the unadjusted model.
	m, err := NewAdjustedModel("gaussian", ph, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Gaussian); !ok {
		t.Fatalf("nil covariates produced %T, want *Gaussian", m)
	}
}

func TestAdjustedModelValidation(t *testing.T) {
	ph := &data.Phenotype{Y: []float64{0, 1, 1}, Event: []uint8{1, 1, 1}}
	// Ragged covariates.
	if _, err := NewGaussianAdjusted(ph, [][]float64{{1}, {1, 2}, {1}}); err == nil {
		t.Fatal("ragged covariates accepted")
	}
	// Wrong row count.
	if _, err := NewCoxAdjusted(ph, [][]float64{{1}}); err == nil {
		t.Fatal("short covariate matrix accepted")
	}
	// Collinear covariates (duplicate column) must fail the fit.
	if _, err := NewGaussianAdjusted(ph, [][]float64{{1, 1}, {2, 2}, {3, 3}}); err == nil {
		t.Fatal("collinear covariates accepted")
	}
	// Single-class binomial.
	allOnes := &data.Phenotype{Y: []float64{1, 1, 1}, Event: []uint8{0, 0, 0}}
	if _, err := NewBinomialAdjusted(allOnes, [][]float64{{1}, {2}, {3}}); err == nil {
		t.Fatal("single-class binomial accepted")
	}
}

// naiveWeightedCoxContributions is the O(n²) literal form of the weighted
// risk-set residual, the referee for the suffix-sum implementation used by
// the covariate-adjusted Cox model.
func naiveWeightedCoxContributions(ph *data.Phenotype, w []float64, g []data.Genotype, u []float64) {
	n := ph.Patients()
	for i := 0; i < n; i++ {
		if ph.Event[i] == 0 {
			u[i] = 0
			continue
		}
		var a, b float64
		for l := 0; l < n; l++ {
			if ph.Y[l] >= ph.Y[i] {
				a += w[l] * float64(g[l])
				b += w[l]
			}
		}
		u[i] = float64(g[i]) - a/b
	}
}

func TestWeightedCoxMatchesNaive(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 50; trial++ {
		rr := r.Split(uint64(trial))
		n := rr.Intn(50) + 2
		ph := randomSurvival(rr, n)
		g := randomGenotypes(rr, n)
		w := make([]float64, n)
		for i := range w {
			w[i] = math.Exp(rr.Normal() * 0.5)
		}
		base, err := NewCox(ph)
		if err != nil {
			t.Fatal(err)
		}
		weighted := base.withRiskWeights(w)
		fast := make([]float64, n)
		slow := make([]float64, n)
		weighted.Contributions(g, fast)
		naiveWeightedCoxContributions(ph, w, g, slow)
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-9 {
				t.Fatalf("trial %d: weighted contribution %d = %v, naive %v", trial, i, fast[i], slow[i])
			}
		}
	}
}
