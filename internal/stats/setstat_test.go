package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

func TestNewSetStatistic(t *testing.T) {
	for _, name := range []string{"", "skat", "burden"} {
		if _, err := NewSetStatistic(name); err != nil {
			t.Errorf("%q rejected: %v", name, err)
		}
	}
	if _, err := NewSetStatistic("acat"); err == nil {
		t.Error("unknown statistic accepted")
	}
	st, _ := NewSetStatistic("")
	if st.Name() != "skat" {
		t.Errorf("default statistic %q, want skat", st.Name())
	}
}

func TestSKATStatisticMatchesSKAT(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(20) + 1
		weights := make(data.Weights, n)
		scores := make([]float64, n)
		snps := make([]int, n)
		for j := 0; j < n; j++ {
			weights[j] = rr.Float64() * 3
			scores[j] = rr.Normal() * 10
			snps[j] = j
		}
		set := data.SNPSet{SNPs: snps}
		got := Combine(SKATStatistic{}, set, weights, scores)
		want := SKAT(set, weights, scores)
		return math.Abs(got-want) < 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBurdenHandComputed(t *testing.T) {
	set := data.SNPSet{SNPs: []int{0, 2}}
	weights := data.Weights{2, 99, 0.5}
	scores := []float64{3, 99, -4}
	// (2·3 + 0.5·(−4))² = 4² = 16.
	if got := Combine(BurdenStatistic{}, set, weights, scores); math.Abs(got-16) > 1e-12 {
		t.Fatalf("burden = %v, want 16", got)
	}
}

func TestBurdenCancellation(t *testing.T) {
	// The defining contrast with SKAT: opposite-direction scores cancel in
	// the burden statistic but add in SKAT.
	set := data.SNPSet{SNPs: []int{0, 1}}
	weights := data.Weights{1, 1}
	scores := []float64{5, -5}
	if got := Combine(BurdenStatistic{}, set, weights, scores); got != 0 {
		t.Fatalf("burden with cancelling scores = %v, want 0", got)
	}
	if got := Combine(SKATStatistic{}, set, weights, scores); got != 50 {
		t.Fatalf("SKAT with cancelling scores = %v, want 50", got)
	}
}

func TestBurdenNonNegative(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(20) + 1
		weights := make(data.Weights, n)
		scores := make([]float64, n)
		snps := make([]int, n)
		for j := 0; j < n; j++ {
			weights[j] = rr.Float64()
			scores[j] = rr.Normal() * 10
			snps[j] = j
		}
		return Combine(BurdenStatistic{}, data.SNPSet{SNPs: snps}, weights, scores) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineAllLengths(t *testing.T) {
	sets := data.SNPSets{{SNPs: []int{0}}, {SNPs: []int{1}}}
	out := CombineAll(BurdenStatistic{}, sets, data.Weights{1, 2}, []float64{3, 4})
	if len(out) != 2 || out[0] != 9 || out[1] != 64 {
		t.Fatalf("CombineAll = %v", out)
	}
}

func TestBetaMAFWeights(t *testing.T) {
	m := data.NewGenotypeMatrix(3, 4)
	copy(m.Rows[0], []data.Genotype{0, 0, 0, 1}) // MAF 1/8: rare
	copy(m.Rows[1], []data.Genotype{1, 1, 1, 1}) // MAF 1/2: common
	copy(m.Rows[2], []data.Genotype{0, 0, 0, 0}) // monomorphic
	w, err := BetaMAFWeights(m, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if w[2] != 0 {
		t.Fatalf("monomorphic SNP weight %v, want 0", w[2])
	}
	if w[0] <= w[1] {
		t.Fatalf("rare SNP weight %v not above common SNP weight %v", w[0], w[1])
	}
	// Beta(x; 1, 25) = 25·(1−x)²⁴.
	want0 := 25 * math.Pow(1-0.125, 24)
	if math.Abs(w[0]-want0) > 1e-9 {
		t.Fatalf("w[0] = %v, want %v", w[0], want0)
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("Beta weights invalid: %v", err)
	}
}

func TestBetaMAFWeightsFoldsMajorAllele(t *testing.T) {
	// A "MAF" above 0.5 must be folded to the minor allele.
	m := data.NewGenotypeMatrix(2, 4)
	copy(m.Rows[0], []data.Genotype{2, 2, 2, 1}) // allele freq 7/8 → minor 1/8
	copy(m.Rows[1], []data.Genotype{0, 0, 0, 1}) // minor 1/8
	w, err := BetaMAFWeights(m, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-w[1]) > 1e-9 {
		t.Fatalf("folded weights differ: %v vs %v", w[0], w[1])
	}
}

func TestBetaMAFWeightsRejectsBadParams(t *testing.T) {
	m := data.NewGenotypeMatrix(1, 2)
	if _, err := BetaMAFWeights(m, 0, 25); err == nil {
		t.Fatal("a=0 accepted")
	}
	if _, err := BetaMAFWeights(m, 1, -1); err == nil {
		t.Fatal("b<0 accepted")
	}
}

func TestBetaUniformIsFlat(t *testing.T) {
	// Beta(1,1) is the uniform density: every polymorphic SNP gets weight 1.
	r := rng.New(3)
	m := data.NewGenotypeMatrix(5, 50)
	for j := 0; j < 5; j++ {
		for i := 0; i < 50; i++ {
			m.Rows[j][i] = data.Genotype(r.Binomial(2, 0.3))
		}
	}
	w, err := BetaMAFWeights(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range w {
		if v != 0 && math.Abs(v-1) > 1e-9 {
			t.Fatalf("Beta(1,1) weight[%d] = %v, want 1", j, v)
		}
	}
}
