package stats

import (
	"math"
	"testing"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

func setRowsWeights(r *rng.RNG, n, m int) ([][]data.Genotype, []float64) {
	rows := make([][]data.Genotype, m)
	weights := make([]float64, m)
	for j := range rows {
		rows[j] = randomGenotypes(r, n)
		weights[j] = 0.5 + r.Float64()
	}
	return rows, weights
}

func TestSingleSNPAsymptoticMatchesChiSquare(t *testing.T) {
	// With one SNP the quadratic form is w²U² with a single eigenvalue
	// w²Σu²; the Liu match must collapse to P(χ²_1 > U²/Σu²).
	r := rng.New(1)
	n := 500
	ph := randomSurvival(r, n)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	g := randomGenotypes(r, n)
	u := make([]float64, n)
	cox.Contributions(g, u)
	var sum, sumSq float64
	for _, v := range u {
		sum += v
		sumSq += v * v
	}
	want := ChiSquaredSurvival(sum*sum/sumSq, 1)
	_, got, err := SKATAsymptotic(cox, [][]data.Genotype{g}, []float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("single-SNP asymptotic p = %v, want %v", got, want)
	}
}

func TestMomentsMatchEmpiricalResampling(t *testing.T) {
	// The exact first two cumulants must match the Monte Carlo replicate
	// moments of the SKAT statistic: E[S̃] = c1, Var[S̃] = 2c2.
	r := rng.New(2)
	n := 300
	ph := randomSurvival(r, n)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	rows, weights := setRowsWeights(r, n, 6)
	mo, err := ComputeSKATMoments(cox, rows, weights)
	if err != nil {
		t.Fatal(err)
	}
	// Monte Carlo replicates of S under the null.
	u := make([][]float64, len(rows))
	for j, g := range rows {
		u[j] = make([]float64, n)
		cox.Contributions(g, u[j])
	}
	const b = 4000
	var sum, sumSq float64
	for rep := 0; rep < b; rep++ {
		z := make([]float64, n)
		for i := range z {
			z[i] = r.Normal()
		}
		s := 0.0
		for j := range rows {
			uj := MonteCarloScore(u[j], z)
			s += weights[j] * weights[j] * uj * uj
		}
		sum += s
		sumSq += s * s
	}
	mean := sum / b
	variance := sumSq/b - mean*mean
	if math.Abs(mean-mo.C1) > 0.1*mo.C1 {
		t.Fatalf("MC mean %.1f vs c1 %.1f", mean, mo.C1)
	}
	if math.Abs(variance-2*mo.C2) > 0.25*2*mo.C2 {
		t.Fatalf("MC variance %.1f vs 2c2 %.1f", variance, 2*mo.C2)
	}
}

func TestLiuPValueAgreesWithMonteCarlo(t *testing.T) {
	// On null data the asymptotic p-value must be close to the resampling
	// p-value for the same observed statistic.
	r := rng.New(3)
	n := 400
	ph := randomSurvival(r, n)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	rows, weights := setRowsWeights(r, n, 8)
	observed, asymP, err := SKATAsymptotic(cox, rows, weights)
	if err != nil {
		t.Fatal(err)
	}
	u := make([][]float64, len(rows))
	for j, g := range rows {
		u[j] = make([]float64, n)
		cox.Contributions(g, u[j])
	}
	const b = 3000
	exceed := 0
	for rep := 0; rep < b; rep++ {
		z := make([]float64, n)
		for i := range z {
			z[i] = r.Normal()
		}
		s := 0.0
		for j := range rows {
			uj := MonteCarloScore(u[j], z)
			s += weights[j] * weights[j] * uj * uj
		}
		if s >= observed {
			exceed++
		}
	}
	mcP := float64(exceed+1) / float64(b+1)
	if math.Abs(asymP-mcP) > 0.05 {
		t.Fatalf("asymptotic p = %.4f vs Monte Carlo p = %.4f", asymP, mcP)
	}
}

func TestLiuPValueBoundsAndMonotone(t *testing.T) {
	mo := SKATMoments{C1: 10, C2: 30, C3: 100, C4: 400, SNPs: 3}
	prev := 1.1
	for q := 0.0; q < 200; q += 5 {
		p := LiuPValue(q, mo)
		if p < 0 || p > 1 {
			t.Fatalf("p(%v) = %v out of [0,1]", q, p)
		}
		if p > prev+1e-12 {
			t.Fatalf("p not monotone at %v: %v > %v", q, p, prev)
		}
		prev = p
	}
}

func TestLiuPValueDegenerate(t *testing.T) {
	mo := SKATMoments{}
	if p := LiuPValue(0, mo); p != 1 {
		t.Fatalf("degenerate p at 0 = %v", p)
	}
	if p := LiuPValue(5, mo); p != 0 {
		t.Fatalf("degenerate p at 5 = %v", p)
	}
}

func TestComputeSKATMomentsValidation(t *testing.T) {
	r := rng.New(4)
	ph := randomSurvival(r, 10)
	cox, _ := NewCox(ph)
	if _, err := ComputeSKATMoments(cox, nil, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	g := randomGenotypes(r, 10)
	if _, err := ComputeSKATMoments(cox, [][]data.Genotype{g}, []float64{1, 2}); err == nil {
		t.Fatal("weight/SNP mismatch accepted")
	}
}

func TestNoncentralChiSquared(t *testing.T) {
	// ncp = 0 must agree with the central distribution.
	for _, x := range []float64{0.5, 2, 7.5} {
		got := noncentralChiSquaredSurvival(x, 3, 0)
		want := ChiSquaredSurvival(x, 3)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("ncp=0 at %v: %v vs %v", x, got, want)
		}
	}
	// Independent check for even df: with df = 2, Q(1+k, x/2) is the CDF of
	// a Poisson(x/2) at k, so the mixture collapses to
	// Σ_k Pois(k; ncp/2) · P(Poisson(x/2) <= k) — computable directly.
	x, ncp := 6.0, 4.0
	want := 0.0
	poisK := math.Exp(-ncp / 2)
	for k := 0; k < 60; k++ {
		cdf := 0.0
		poisJ := math.Exp(-x / 2)
		for j := 0; j <= k; j++ {
			cdf += poisJ
			poisJ *= (x / 2) / float64(j+1)
		}
		want += poisK * cdf
		poisK *= (ncp / 2) / float64(k+1)
	}
	got := noncentralChiSquaredSurvival(x, 2, ncp)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("noncentral survival = %v, want %v (Poisson identity)", got, want)
	}
	// Monotone in ncp: more noncentrality pushes mass right.
	if noncentralChiSquaredSurvival(6, 2, 8) <= got {
		t.Fatal("survival not increasing in ncp")
	}
	if p := noncentralChiSquaredSurvival(-1, 2, 4); p != 1 {
		t.Fatalf("negative x survival = %v", p)
	}
}

func TestMatmulSmall(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := [][]float64{{5, 6}, {7, 8}}
	c := matmul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c[i][j] != want[i][j] {
				t.Fatalf("matmul = %v", c)
			}
		}
	}
}
