// The wide multi-phenotype kernel of the all-pairs association engine. The
// single-phenotype BlockKernel fuses one residual vector with the 2-bit
// dosage decode; scoring M phenotypes that way decodes every genotype block M
// times and rescans it twice more per phenotype for the variance. The wide
// kernel instead decodes each SNP row ONCE into a dosage vector, computes the
// SNP's genotype moments (sum, mean, centered sum of squares) once, and then
// sweeps the whole phenotype batch over the shared dosages — matrix–matrix
// instead of matrix–vector. The variance factorisation makes the amortisation
// exact: for the Gaussian and Binomial families
//
//	Var(U_j) = scale_p · Σ_i (G_ij − Ḡ_j)²
//
// where scale_p (σ̂² or Ȳ(1−Ȳ)) is SNP-invariant and the sum is
// phenotype-invariant, so per (SNP, phenotype) pair only the score's dot
// product remains.
//
// Arithmetic order matches the per-phenotype loop exactly — dosages are the
// same float64 values the boxed decode yields, the score accumulates in
// patient order, and the moment loops mirror Gaussian.Variance/
// Binomial.Variance — so wide and per-phenotype results are bitwise
// identical.

package stats

import (
	"fmt"

	"sparkscore/internal/data"
)

// VarianceScaler is implemented by models whose null variance factorises as
// VarianceScale() · Σ_i (G_ij − Ḡ_j)² — the Gaussian and Binomial families.
// Together with Residualer it is what the wide kernel needs to amortise the
// genotype decode across a phenotype batch; the Cox family (risk sets couple
// patients) satisfies neither and stays on the per-phenotype path.
type VarianceScaler interface {
	// VarianceScale returns the SNP-invariant factor of the null variance.
	VarianceScale() float64
}

// VarianceScale implements VarianceScaler: the residual variance σ̂².
func (g *Gaussian) VarianceScale() float64 { return g.sigma2 }

// VarianceScale implements VarianceScaler: Ȳ(1−Ȳ).
func (b *Binomial) VarianceScale() float64 { return b.meanY * (1 - b.meanY) }

// decodeDosages unpacks 2-bit codes straight into float64 scoring dosages
// (missing -> 0), four patients per byte; len(dst) genotypes are read. The
// table holds exactly float64(codeScoring[c]), so dst matches what a boxed
// decode-then-convert produces bit for bit.
func decodeDosages(packed []byte, dst []float64) {
	n := len(dst)
	for i := 0; i+4 <= n; i += 4 {
		v := packed[i>>2]
		dst[i] = codeDosage[v&3]
		dst[i+1] = codeDosage[(v>>2)&3]
		dst[i+2] = codeDosage[(v>>4)&3]
		dst[i+3] = codeDosage[v>>6]
	}
	for i := n &^ 3; i < n; i++ {
		dst[i] = codeDosage[(packed[i>>2]>>uint((i&3)*2))&3]
	}
}

// WideKernel scores every (SNP, phenotype) pair of a genotype block against a
// batch of phenotype models in one decode pass per SNP. A kernel is built
// once per (partition, batch) and used from a single goroutine (it owns the
// dosage scratch).
type WideKernel struct {
	models []Model
	resids [][]float64 // per-phenotype residual vectors
	scales []float64   // per-phenotype variance factors
	dos    []float64   // decoded dosages of the current SNP row
}

// NewWideKernel builds a wide kernel over the batch. Every model must share
// the patient count and implement Residualer and VarianceScaler.
func NewWideKernel(models []Model) (*WideKernel, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("stats: wide kernel over an empty phenotype batch")
	}
	n := models[0].Patients()
	k := &WideKernel{
		models: models,
		resids: make([][]float64, len(models)),
		scales: make([]float64, len(models)),
		dos:    make([]float64, n),
	}
	for p, m := range models {
		if m.Patients() != n {
			return nil, fmt.Errorf("stats: wide kernel phenotype %d has %d patients, batch has %d",
				p, m.Patients(), n)
		}
		r, ok := m.(Residualer)
		if !ok {
			return nil, fmt.Errorf("stats: wide kernel needs residual-form models; %q does not factorise", m.Name())
		}
		v, ok := m.(VarianceScaler)
		if !ok {
			return nil, fmt.Errorf("stats: wide kernel needs a factorised variance; %q does not provide one", m.Name())
		}
		k.resids[p] = r.Residuals()
		k.scales[p] = v.VarianceScale()
	}
	return k, nil
}

// Phenotypes returns the batch width.
func (k *WideKernel) Phenotypes() int { return len(k.models) }

// BlockStats visits every (SNP, phenotype) pair of the block in row-major
// order (all phenotypes of row 0, then row 1, ...), passing the marginal
// score and its null variance. Each row is decoded once and its genotype
// moments computed once; per phenotype only the residual dot product runs.
func (k *WideKernel) BlockStats(blk data.GenoBlock, visit func(snp int32, pheno int, score, variance float64)) {
	n := blk.Patients
	if n != k.models[0].Patients() {
		panic(fmt.Sprintf("stats: block for %d patients, wide kernel for %d", n, k.models[0].Patients()))
	}
	dos := k.dos[:n]
	for r := 0; r < blk.Rows(); r++ {
		decodeDosages(blk.Row(r), dos)
		// Genotype moments, in the exact loop shapes of Gaussian.Variance and
		// Binomial.Variance: one pass for the sum, one for the centered sum of
		// squares.
		var sumG float64
		for _, v := range dos {
			sumG += v
		}
		meanG := sumG / float64(n)
		var ss float64
		for _, v := range dos {
			d := v - meanG
			ss += d * d
		}
		snp := blk.SNPs[r]
		for p, resid := range k.resids {
			var score float64
			for i, v := range dos {
				score += v * resid[i]
			}
			visit(snp, p, score, k.scales[p]*ss)
		}
	}
}
