// Package stats implements the efficient score statistics at the heart of
// SparkScore — the Cox score for censored survival phenotypes plus the
// Gaussian and Binomial families listed in the paper's Figure 1 — together
// with SKAT SNP-set aggregation, empirical and asymptotic p-values, and the
// Wald/likelihood-ratio comparator the paper argues the score test avoids.
//
// The central object is the per-patient score contribution U_ij: the share of
// patient i in the marginal score U_j = Σ_i U_ij of SNP j under the null
// hypothesis of no association. Resampling replicates reuse (Monte Carlo) or
// recompute (permutation) these contributions.
package stats

import (
	"fmt"
	"math"
	"sort"

	"sparkscore/internal/data"
)

// Model computes per-patient score contributions for one SNP under a fixed
// phenotype. A Model is built once per phenotype (or per permutation of the
// phenotype) and then applied to many SNPs; implementations precompute
// everything SNP-invariant at construction — the paper's observation that
// "b_i is invariant with respect to the SNP and only needs to be calculated
// once per analysis". All methods are safe for concurrent use across SNPs.
type Model interface {
	// Name identifies the score family ("cox", "gaussian", "binomial").
	Name() string

	// Contributions fills u[i] with U_ij for the SNP whose genotypes are g.
	// len(u) must equal len(g) and both must equal the patient count.
	Contributions(g []data.Genotype, u []float64)

	// Variance returns the null variance estimate of U_j = Σ_i U_ij, used by
	// the asymptotic (large-sample) test.
	Variance(g []data.Genotype) float64

	// Patients returns the number of patients the model was built for.
	Patients() int
}

// Score sums the per-patient contributions into the marginal score U_j.
func Score(m Model, g []data.Genotype) float64 {
	u := make([]float64, len(g))
	m.Contributions(g, u)
	s := 0.0
	for _, v := range u {
		s += v
	}
	return s
}

// Cox is the efficient score model for right-censored survival outcomes
// under the Cox proportional hazards null (Cox 1972):
//
//	U_ij = Δ_i (G_ij − a_ij/b_i)
//
// with a_ij = Σ_l 1(Y_l ≥ Y_i) G_lj (risk-set genotype sum) and
// b_i = Σ_l 1(Y_l ≥ Y_i) (risk-set size).
//
// Construction sorts patients by observed time once; per-SNP contributions
// then cost O(n) via prefix sums over the sorted order, instead of the naive
// O(n²) double loop.
type Cox struct {
	ph *data.Phenotype

	// order holds patient indices sorted by Y descending, so the risk set of
	// the patient at sorted position p is exactly order[0..groupEnd[p]].
	order []int
	// groupEnd[p] is the last sorted position whose Y ties with position p;
	// risk sets use Y_l >= Y_i, so ties are included.
	groupEnd []int
	// pos[i] is patient i's sorted position.
	pos []int
	// riskDen[i] is the risk-set denominator for patient i: b_i when
	// unweighted, Σ_{l∈R_i} w_l under covariate-adjusted risk weights.
	riskDen []float64
	// w holds per-patient risk weights e^{γ̂·X} for the covariate-adjusted
	// model; nil means unweighted (all ones).
	w []float64
}

// NewCox builds a Cox score model for the phenotype. The phenotype must have
// at least one patient; times may tie (risk sets then share members).
func NewCox(ph *data.Phenotype) (*Cox, error) {
	n := ph.Patients()
	if n == 0 {
		return nil, fmt.Errorf("stats: empty phenotype")
	}
	if err := ph.Validate(); err != nil {
		return nil, err
	}
	c := &Cox{
		ph:       ph,
		order:    make([]int, n),
		groupEnd: make([]int, n),
		pos:      make([]int, n),
		riskDen:  make([]float64, n),
	}
	for i := range c.order {
		c.order[i] = i
	}
	sort.SliceStable(c.order, func(a, b int) bool {
		return ph.Y[c.order[a]] > ph.Y[c.order[b]]
	})
	// Mark tie groups: walk backwards carrying the end of the current group.
	end := n - 1
	for p := n - 1; p >= 0; p-- {
		if p < n-1 && ph.Y[c.order[p]] != ph.Y[c.order[p+1]] {
			end = p
		}
		c.groupEnd[p] = end
	}
	for p, i := range c.order {
		c.pos[i] = p
		c.riskDen[i] = float64(c.groupEnd[p] + 1)
	}
	return c, nil
}

// Name implements Model.
func (c *Cox) Name() string { return "cox" }

// Patients implements Model.
func (c *Cox) Patients() int { return len(c.order) }

// Contributions implements Model in O(n) per SNP. Under covariate-adjusted
// risk weights w_l the risk-set genotype average becomes weighted.
func (c *Cox) Contributions(g []data.Genotype, u []float64) {
	n := len(c.order)
	checkLens(n, g, u)
	// cum[p+1] = weighted genotype sum of the first p+1 sorted patients.
	cum := make([]float64, n+1)
	for p, i := range c.order {
		wi := 1.0
		if c.w != nil {
			wi = c.w[i]
		}
		cum[p+1] = cum[p] + wi*float64(g[i])
	}
	for i := 0; i < n; i++ {
		if c.ph.Event[i] == 0 {
			u[i] = 0
			continue
		}
		a := cum[c.groupEnd[c.pos[i]]+1]
		u[i] = float64(g[i]) - a/c.riskDen[i]
	}
}

// Variance implements Model with the usual observed-information estimate of
// the null variance of the Cox score:
//
//	V_j = Σ_i Δ_i [ (Σ_{l∈R_i} G_lj²)/b_i − (a_ij/b_i)² ]
func (c *Cox) Variance(g []data.Genotype) float64 {
	n := len(c.order)
	checkLens(n, g, nil)
	cum := make([]float64, n+1)
	cum2 := make([]float64, n+1)
	for p, i := range c.order {
		gi := float64(g[i])
		wi := 1.0
		if c.w != nil {
			wi = c.w[i]
		}
		cum[p+1] = cum[p] + wi*gi
		cum2[p+1] = cum2[p] + wi*gi*gi
	}
	v := 0.0
	for i := 0; i < n; i++ {
		if c.ph.Event[i] == 0 {
			continue
		}
		end := c.groupEnd[c.pos[i]] + 1
		b := c.riskDen[i]
		mean := cum[end] / b
		v += cum2[end]/b - mean*mean
	}
	return v
}

// NaiveCoxContributions computes the Cox contributions with the literal O(n²)
// double loop from the formula. It exists as a reference implementation for
// tests and for the ablation benchmark quantifying the suffix-sum speedup.
func NaiveCoxContributions(ph *data.Phenotype, g []data.Genotype, u []float64) {
	n := ph.Patients()
	checkLens(n, g, u)
	for i := 0; i < n; i++ {
		if ph.Event[i] == 0 {
			u[i] = 0
			continue
		}
		var a, b float64
		for l := 0; l < n; l++ {
			if ph.Y[l] >= ph.Y[i] {
				a += float64(g[l])
				b++
			}
		}
		u[i] = float64(g[i]) - a/b
	}
}

// Gaussian is the efficient score model for quantitative phenotypes under the
// linear-model null Y_i = μ + β G_ij + ε, β = 0:
//
//	U_ij = G_ij (Y_i − Ȳ)
//
// This is the score for β evaluated at the restricted MLE (μ̂ = Ȳ), the
// statistic behind eQTL-style analyses the paper's conclusion mentions.
type Gaussian struct {
	ph     *data.Phenotype
	meanY  float64
	sigma2 float64   // residual variance estimate Σ(Y−Ȳ)²/n
	resid  []float64 // Y_i − Ȳ, the SNP-invariant factor of U_ij
}

// NewGaussian builds a Gaussian score model for the phenotype.
func NewGaussian(ph *data.Phenotype) (*Gaussian, error) {
	n := ph.Patients()
	if n == 0 {
		return nil, fmt.Errorf("stats: empty phenotype")
	}
	var sum float64
	for _, y := range ph.Y {
		sum += y
	}
	mean := sum / float64(n)
	var ss float64
	resid := make([]float64, n)
	for i, y := range ph.Y {
		d := y - mean
		resid[i] = d
		ss += d * d
	}
	return &Gaussian{ph: ph, meanY: mean, sigma2: ss / float64(n), resid: resid}, nil
}

// Name implements Model.
func (g *Gaussian) Name() string { return "gaussian" }

// Patients implements Model.
func (g *Gaussian) Patients() int { return g.ph.Patients() }

// Contributions implements Model.
func (g *Gaussian) Contributions(geno []data.Genotype, u []float64) {
	n := g.ph.Patients()
	checkLens(n, geno, u)
	for i := 0; i < n; i++ {
		u[i] = float64(geno[i]) * (g.ph.Y[i] - g.meanY)
	}
}

// Residuals implements Residualer: U_ij = G_ij · (Y_i − Ȳ).
func (g *Gaussian) Residuals() []float64 { return g.resid }

// Variance implements Model: Var(U_j) = σ̂² Σ_i (G_ij − Ḡ_j)².
func (g *Gaussian) Variance(geno []data.Genotype) float64 {
	n := g.ph.Patients()
	checkLens(n, geno, nil)
	var sumG float64
	for _, v := range geno {
		sumG += float64(v)
	}
	meanG := sumG / float64(n)
	var ss float64
	for _, v := range geno {
		d := float64(v) - meanG
		ss += d * d
	}
	return g.sigma2 * ss
}

// Binomial is the efficient score model for binary phenotypes (case/control)
// under the logistic-model null, evaluated at the restricted MLE (intercept
// only):
//
//	U_ij = G_ij (Y_i − Ȳ)
//
// The contribution formula coincides with the Gaussian one; the families
// differ in the variance and in input validation (Y must be 0/1).
type Binomial struct {
	ph    *data.Phenotype
	meanY float64
	resid []float64 // Y_i − Ȳ
}

// NewBinomial builds a Binomial score model. Every outcome must be 0 or 1 and
// both classes must be present (otherwise the score is degenerate).
func NewBinomial(ph *data.Phenotype) (*Binomial, error) {
	n := ph.Patients()
	if n == 0 {
		return nil, fmt.Errorf("stats: empty phenotype")
	}
	var sum float64
	for i, y := range ph.Y {
		if y != 0 && y != 1 {
			return nil, fmt.Errorf("stats: binomial outcome for patient %d is %v, want 0 or 1", i, y)
		}
		sum += y
	}
	mean := sum / float64(n)
	if mean == 0 || mean == 1 {
		return nil, fmt.Errorf("stats: binomial phenotype has a single class")
	}
	resid := make([]float64, n)
	for i, y := range ph.Y {
		resid[i] = y - mean
	}
	return &Binomial{ph: ph, meanY: mean, resid: resid}, nil
}

// Name implements Model.
func (b *Binomial) Name() string { return "binomial" }

// Patients implements Model.
func (b *Binomial) Patients() int { return b.ph.Patients() }

// Contributions implements Model.
func (b *Binomial) Contributions(geno []data.Genotype, u []float64) {
	n := b.ph.Patients()
	checkLens(n, geno, u)
	for i := 0; i < n; i++ {
		u[i] = float64(geno[i]) * (b.ph.Y[i] - b.meanY)
	}
}

// Residuals implements Residualer: U_ij = G_ij · (Y_i − Ȳ).
func (b *Binomial) Residuals() []float64 { return b.resid }

// Variance implements Model: Var(U_j) = Ȳ(1−Ȳ) Σ_i (G_ij − Ḡ_j)².
func (b *Binomial) Variance(geno []data.Genotype) float64 {
	n := b.ph.Patients()
	checkLens(n, geno, nil)
	var sumG float64
	for _, v := range geno {
		sumG += float64(v)
	}
	meanG := sumG / float64(n)
	var ss float64
	for _, v := range geno {
		d := float64(v) - meanG
		ss += d * d
	}
	return b.meanY * (1 - b.meanY) * ss
}

// NewModel constructs a model of the named family ("cox", "gaussian",
// "binomial") for the phenotype.
func NewModel(family string, ph *data.Phenotype) (Model, error) {
	switch family {
	case "cox":
		return NewCox(ph)
	case "gaussian":
		return NewGaussian(ph)
	case "binomial":
		return NewBinomial(ph)
	default:
		return nil, fmt.Errorf("stats: unknown score family %q", family)
	}
}

func checkLens(n int, g []data.Genotype, u []float64) {
	if len(g) != n {
		panic(fmt.Sprintf("stats: %d genotypes for %d patients", len(g), n))
	}
	if u != nil && len(u) != n {
		panic(fmt.Sprintf("stats: contribution buffer has length %d, want %d", len(u), n))
	}
}

// MonteCarloScore computes the Monte Carlo replicate Ũ_j = Σ_i Z_i U_ij from
// cached contributions (Lin 2005). With all weights 1 it reproduces U_j.
func MonteCarloScore(u, z []float64) float64 {
	if len(u) != len(z) {
		panic(fmt.Sprintf("stats: %d contributions but %d Monte Carlo weights", len(u), len(z)))
	}
	s := 0.0
	for i, v := range u {
		s += v * z[i]
	}
	return s
}

// Chi2Stat forms the asymptotic 1-df chi-squared statistic U²/V, returning 0
// when the variance is numerically zero (monomorphic SNP).
func Chi2Stat(score, variance float64) float64 {
	if variance <= 0 || math.IsNaN(variance) {
		return 0
	}
	return score * score / variance
}
