// Chi-squared tail probabilities for the asymptotic variant of the score
// test, via the regularized incomplete gamma function (series expansion for
// x < a+1, continued fraction otherwise; cf. Numerical Recipes §6.2).

package stats

import (
	"fmt"
	"math"
)

// ChiSquaredSurvival returns P(X > x) for X ~ χ²_df. It is the asymptotic
// p-value of the score statistic U²/V with df = 1.
func ChiSquaredSurvival(x float64, df int) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: chi-squared with df = %d", df))
	}
	if x <= 0 {
		return 1
	}
	return regIncGammaQ(float64(df)/2, x/2)
}

// regIncGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = Γ(a, x)/Γ(a) for a > 0, x >= 0.
func regIncGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		panic("stats: regIncGammaQ domain error")
	case x == 0:
		return 1
	case x < a+1:
		// Series converges fast here; Q = 1 - P.
		return 1 - regIncGammaPSeries(a, x)
	default:
		return regIncGammaQContinued(a, x)
	}
}

// regIncGammaPSeries evaluates P(a, x) by its power series.
func regIncGammaPSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-15
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// regIncGammaQContinued evaluates Q(a, x) by its continued fraction using
// modified Lentz's method.
func regIncGammaQContinued(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-15
		tiny    = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
