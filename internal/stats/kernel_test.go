package stats

import (
	"testing"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

// kernelFixture builds a phenotype and a packed block of random rows.
func kernelFixture(t testing.TB, patients, rows int, binary bool) (*data.Phenotype, data.GenoBlock) {
	if t != nil {
		t.Helper()
	}
	r := rng.New(99)
	ph := data.NewPhenotype(patients)
	for i := range ph.Y {
		if binary {
			if r.Bernoulli(0.4) {
				ph.Y[i] = 1
			}
		} else {
			ph.Y[i] = r.Exponential(1.0 / 12)
		}
		if r.Bernoulli(0.85) {
			ph.Event[i] = 1
		}
	}
	blk := data.NewGenoBlock(patients, rows)
	g := make([]data.Genotype, patients)
	for j := 0; j < rows; j++ {
		for i := range g {
			g[i] = data.Genotype(r.Binomial(2, 0.3))
		}
		if err := blk.AppendRow(j, g); err != nil {
			panic(err)
		}
	}
	return ph, blk
}

func TestBlockKernelMatchesModelBitwise(t *testing.T) {
	const patients, rows = 37, 9
	for _, family := range []string{"cox", "gaussian", "binomial"} {
		ph, blk := kernelFixture(t, patients, rows, family == "binomial")
		model, err := NewModel(family, ph)
		if err != nil {
			t.Fatal(err)
		}
		k := NewBlockKernel(model)
		ub := k.Contributions(blk)
		if ub.Rows() != rows || ub.Patients != patients {
			t.Fatalf("%s: UBlock %dx%d", family, ub.Rows(), ub.Patients)
		}
		dec := make([]data.Genotype, patients)
		u := make([]float64, patients)
		for r := 0; r < rows; r++ {
			blk.DecodeRow(r, dec)
			model.Contributions(dec, u)
			got := ub.Row(r)
			for i := range u {
				if got[i] != u[i] {
					t.Fatalf("%s row %d patient %d: kernel %v, boxed %v", family, r, i, got[i], u[i])
				}
			}
		}
	}
}

func TestBlockKernelMissingScoresAsZeroDosage(t *testing.T) {
	ph := data.NewPhenotype(4)
	ph.Y = []float64{1, 2, 3, 4}
	model, err := NewGaussian(ph)
	if err != nil {
		t.Fatal(err)
	}
	blk := data.NewGenoBlock(4, 1)
	if err := blk.AppendRow(0, []data.Genotype{2, data.MissingGenotype, 1, 0}); err != nil {
		t.Fatal(err)
	}
	ub := NewBlockKernel(model).Contributions(blk)
	row := ub.Row(0)
	if row[1] != 0 {
		t.Fatalf("missing genotype contributed %v, want 0", row[1])
	}
	wantFirst := 2 * (ph.Y[0] - 2.5)
	if row[0] != wantFirst {
		t.Fatalf("row[0] = %v, want %v", row[0], wantFirst)
	}
}

func TestUBlockScoresMatchMonteCarloScore(t *testing.T) {
	ph, blk := kernelFixture(t, 23, 6, false)
	model, err := NewGaussian(ph)
	if err != nil {
		t.Fatal(err)
	}
	ub := NewBlockKernel(model).Contributions(blk)
	r := rng.New(5)
	z := make([]float64, 23)
	for i := range z {
		z[i] = r.Normal()
	}
	obs := ub.Scores(nil, nil)
	mc := ub.Scores(z, nil)
	ones := make([]float64, 23)
	for i := range ones {
		ones[i] = 1
	}
	for row := 0; row < ub.Rows(); row++ {
		if want := MonteCarloScore(ub.Row(row), ones); obs[row] != want {
			t.Fatalf("row %d observed score %v, want %v", row, obs[row], want)
		}
		if want := MonteCarloScore(ub.Row(row), z); mc[row] != want {
			t.Fatalf("row %d MC score %v, want %v", row, mc[row], want)
		}
	}
}

// TestKernelAllocsFlatAcrossPatients is the allocation regression pin for the
// fused decode+accumulate kernel: allocations per block must not grow with
// the patient count (one SNP-column copy plus one flat contribution matrix).
func TestKernelAllocsFlatAcrossPatients(t *testing.T) {
	allocs := func(patients int) float64 {
		ph, blk := kernelFixture(nil, patients, 8, false)
		model, err := NewGaussian(ph)
		if err != nil {
			t.Fatal(err)
		}
		k := NewBlockKernel(model)
		var sink UBlock
		n := testing.AllocsPerRun(50, func() {
			sink = k.Contributions(blk)
		})
		_ = sink
		return n
	}
	small, large := allocs(64), allocs(4096)
	if small != large {
		t.Fatalf("allocs per block changed with patients: %v @64 vs %v @4096", small, large)
	}
	if small > 3 {
		t.Fatalf("fused kernel allocates %v times per block, want <= 3", small)
	}
}

// BenchmarkBlockKernel and BenchmarkBoxedRows are the marginal-score inner
// loops of the two pipelines: fused packed-block kernel vs per-row boxed
// decode with a fresh contribution slice per SNP (what the boxed RDD path
// allocates). Run with -benchmem; the packed path's allocs/op stay flat.
func BenchmarkBlockKernel(b *testing.B) {
	ph, blk := kernelFixture(nil, 1000, 256, false)
	model, _ := NewGaussian(ph)
	k := NewBlockKernel(model)
	var scores []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ub := k.Contributions(blk)
		scores = ub.Scores(nil, scores)
	}
}

func BenchmarkBoxedRows(b *testing.B) {
	ph, blk := kernelFixture(nil, 1000, 256, false)
	model, _ := NewGaussian(ph)
	rows := make([][]data.Genotype, blk.Rows())
	for r := range rows {
		rows[r] = blk.DecodeRow(r, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range rows {
			u := make([]float64, len(g))
			model.Contributions(g, u)
			s := 0.0
			for _, v := range u {
				s += v
			}
			_ = s
		}
	}
}
