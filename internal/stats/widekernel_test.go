package stats

import (
	"math"
	"testing"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

// wideFixture builds a genotype block (with some missing calls) and a batch of
// phenotypes of the given family over the same cohort.
func wideFixture(t testing.TB, patients, rows, phenos int, binary bool) ([]Model, data.GenoBlock) {
	if t != nil {
		t.Helper()
	}
	r := rng.New(1234)
	blk := data.NewGenoBlock(patients, rows)
	g := make([]data.Genotype, patients)
	for j := 0; j < rows; j++ {
		for i := range g {
			if r.Bernoulli(0.05) {
				g[i] = data.MissingGenotype
			} else {
				g[i] = data.Genotype(r.Binomial(2, 0.3))
			}
		}
		if err := blk.AppendRow(j, g); err != nil {
			panic(err)
		}
	}
	models := make([]Model, phenos)
	for p := range models {
		ph := data.NewPhenotype(patients)
		for i := range ph.Y {
			if binary {
				if r.Bernoulli(0.3 + 0.4*float64(p%2)) {
					ph.Y[i] = 1
				}
			} else {
				ph.Y[i] = r.Normal() * float64(p+1)
			}
		}
		family := "gaussian"
		if binary {
			family = "binomial"
		}
		m, err := NewModel(family, ph)
		if err != nil {
			panic(err)
		}
		models[p] = m
	}
	return models, blk
}

// TestWideKernelMatchesPerPhenotypeBitwise is the parity pin of the all-pairs
// engine: for every (SNP, phenotype) pair the wide kernel's score and variance
// must equal the single-phenotype Score/Variance path bit for bit, for both
// factorised families, including rows with missing genotypes.
func TestWideKernelMatchesPerPhenotypeBitwise(t *testing.T) {
	const patients, rows, phenos = 41, 7, 5
	for _, binary := range []bool{false, true} {
		models, blk := wideFixture(t, patients, rows, phenos, binary)
		k, err := NewWideKernel(models)
		if err != nil {
			t.Fatal(err)
		}
		type cell struct{ score, variance float64 }
		got := make(map[[2]int]cell, rows*phenos)
		k.BlockStats(blk, func(snp int32, pheno int, score, variance float64) {
			got[[2]int{int(snp), pheno}] = cell{score, variance}
		})
		if len(got) != rows*phenos {
			t.Fatalf("binary=%v: visited %d pairs, want %d", binary, len(got), rows*phenos)
		}
		dec := make([]data.Genotype, patients)
		for r := 0; r < rows; r++ {
			// The per-phenotype baseline decodes with the scoring rule
			// (missing -> dosage 0), as the marginal pipeline does.
			DecodeDosageGenotypes(blk.Row(r), dec)
			for p, m := range models {
				wantScore := Score(m, dec)
				wantVar := m.Variance(dec)
				c := got[[2]int{int(blk.SNPs[r]), p}]
				if math.Float64bits(c.score) != math.Float64bits(wantScore) {
					t.Fatalf("binary=%v snp %d pheno %d: wide score %v, loop %v",
						binary, blk.SNPs[r], p, c.score, wantScore)
				}
				if math.Float64bits(c.variance) != math.Float64bits(wantVar) {
					t.Fatalf("binary=%v snp %d pheno %d: wide variance %v, loop %v",
						binary, blk.SNPs[r], p, c.variance, wantVar)
				}
			}
		}
	}
}

func TestWideKernelRejectsBadBatches(t *testing.T) {
	if _, err := NewWideKernel(nil); err == nil {
		t.Fatal("accepted an empty batch")
	}
	phA, phB := data.NewPhenotype(4), data.NewPhenotype(6)
	phA.Y = []float64{1, 2, 3, 4}
	phB.Y = []float64{1, 2, 3, 4, 5, 6}
	mA, err := NewGaussian(phA)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := NewGaussian(phB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWideKernel([]Model{mA, mB}); err == nil {
		t.Fatal("accepted mismatched patient counts")
	}
	for i := range phA.Event {
		phA.Event[i] = 1
	}
	cox, err := NewCox(phA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWideKernel([]Model{cox}); err == nil {
		t.Fatal("accepted a Cox model, which has no factorised variance")
	}
}

// BenchmarkWideKernel vs BenchmarkPerPhenotypeLoop: the decode-amortisation
// claim of the eqtl experiment at benchmark scale. Run with -benchmem.
func BenchmarkWideKernel(b *testing.B) {
	models, blk := wideFixture(nil, 1000, 64, 32, false)
	k, err := NewWideKernel(models)
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.BlockStats(blk, func(snp int32, pheno int, score, variance float64) {
			sink += score + variance
		})
	}
	_ = sink
}

func BenchmarkPerPhenotypeLoop(b *testing.B) {
	models, blk := wideFixture(nil, 1000, 64, 32, false)
	dec := make([]data.Genotype, 1000)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < blk.Rows(); r++ {
			DecodeDosageGenotypes(blk.Row(r), dec)
			for _, m := range models {
				sink += Score(m, dec) + m.Variance(dec)
			}
		}
	}
	_ = sink
}
