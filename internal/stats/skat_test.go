package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

func TestSKATHandComputed(t *testing.T) {
	set := data.SNPSet{Name: "g", SNPs: []int{0, 2}}
	weights := data.Weights{2, 1, 0.5}
	scores := []float64{3, 100, -4}
	// S = 2²·3² + 0.5²·(−4)² = 36 + 4 = 40.
	if got := SKAT(set, weights, scores); math.Abs(got-40) > 1e-12 {
		t.Fatalf("SKAT = %v, want 40", got)
	}
}

func TestSKATNonNegative(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(20) + 1
		weights := make(data.Weights, n)
		scores := make([]float64, n)
		snps := make([]int, n)
		for j := 0; j < n; j++ {
			weights[j] = rr.Float64() * 3
			scores[j] = rr.Normal() * 10
			snps[j] = j
		}
		return SKAT(data.SNPSet{SNPs: snps}, weights, scores) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSKATScaleQuadraticInWeights(t *testing.T) {
	set := data.SNPSet{SNPs: []int{0, 1}}
	scores := []float64{2, -3}
	base := SKAT(set, data.Weights{1, 1}, scores)
	doubled := SKAT(set, data.Weights{2, 2}, scores)
	if math.Abs(doubled-4*base) > 1e-12 {
		t.Fatalf("doubling weights scaled SKAT by %v, want 4", doubled/base)
	}
}

func TestSKATAll(t *testing.T) {
	sets := data.SNPSets{{SNPs: []int{0}}, {SNPs: []int{1, 2}}}
	weights := data.Weights{1, 1, 1}
	scores := []float64{2, 3, 4}
	got := SKATAll(sets, weights, scores)
	want := []float64{4, 25}
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-12 {
			t.Fatalf("S = %v, want %v", got, want)
		}
	}
}

func TestCounterTally(t *testing.T) {
	c := NewCounter([]float64{10, 5})
	c.Add([]float64{11, 4}) // set 0 exceeds
	c.Add([]float64{10, 5}) // ties count as exceedance (>=)
	c.Add([]float64{9, 6})  // set 1 exceeds
	if c.Replicates() != 3 {
		t.Fatalf("replicates = %d", c.Replicates())
	}
	e := c.Exceedances()
	if e[0] != 2 || e[1] != 2 {
		t.Fatalf("exceedances = %v, want [2 2]", e)
	}
	p := c.PValues()
	if math.Abs(p[0]-3.0/4) > 1e-12 {
		t.Fatalf("p[0] = %v, want 0.75", p[0])
	}
	props := c.Proportions()
	if math.Abs(props[0]-2.0/3) > 1e-12 {
		t.Fatalf("proportion[0] = %v, want 2/3", props[0])
	}
}

func TestCounterMergeEqualsSequential(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		obs := []float64{rr.Normal(), rr.Normal(), rr.Normal()}
		reps := make([][]float64, 20)
		for i := range reps {
			reps[i] = []float64{rr.Normal(), rr.Normal(), rr.Normal()}
		}
		seq := NewCounter(obs)
		for _, rep := range reps {
			seq.Add(rep)
		}
		a := NewCounter(obs)
		b := NewCounter(obs)
		for i, rep := range reps {
			if i%2 == 0 {
				a.Add(rep)
			} else {
				b.Add(rep)
			}
		}
		a.Merge(b)
		if a.Replicates() != seq.Replicates() {
			return false
		}
		for k := range obs {
			if a.Exceedances()[k] != seq.Exceedances()[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterPanics(t *testing.T) {
	c := NewCounter([]float64{1})
	assertPanics(t, "short replicate", func() { c.Add([]float64{1, 2}) })
	assertPanics(t, "mismatched merge", func() { c.Merge(NewCounter([]float64{1, 2})) })
	assertPanics(t, "proportions without replicates", func() { NewCounter([]float64{1}).Proportions() })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}
