// Alternative SNP-set statistics and weighting schemes. The paper reviews
// SKAT as "one method of combining the marginal scores" and cites the
// rare-variant testing literature (Basu & Pan 2011; Lee et al. 2014) for
// others; the burden statistic below is the other standard member of that
// family, and the Beta(1,25) allele-frequency weights are the default of the
// original SKAT paper (Wu et al. 2011).

package stats

import (
	"fmt"
	"math"

	"sparkscore/internal/data"
)

// SetStatistic combines the marginal scores of one SNP-set into a set-level
// statistic. It is split into a per-SNP term and a set-level finalisation so
// the distributed pipeline can sum the per-SNP terms with a reduceByKey and
// apply Finalize on the driver. Implementations must be usable concurrently.
type SetStatistic interface {
	// Name identifies the statistic ("skat", "burden").
	Name() string
	// PerSNP maps one SNP's weight ω_j and marginal score U_j to its
	// additive contribution to the set sum.
	PerSNP(weight, score float64) float64
	// Finalize maps the summed contributions to the set statistic.
	Finalize(sum float64) float64
}

// SKATStatistic is the paper's statistic: S_k = Σ ω_j² U_j². A variance-
// component test, powerful when effects within the set differ in direction.
type SKATStatistic struct{}

// Name implements SetStatistic.
func (SKATStatistic) Name() string { return "skat" }

// PerSNP implements SetStatistic: ω_j² U_j².
func (SKATStatistic) PerSNP(weight, score float64) float64 {
	return weight * weight * score * score
}

// Finalize implements SetStatistic (identity).
func (SKATStatistic) Finalize(sum float64) float64 { return sum }

// BurdenStatistic is the weighted burden test: S_k = (Σ ω_j U_j)². It
// collapses the set into one weighted super-variant and is the more powerful
// choice when most variants in the set act in the same direction.
type BurdenStatistic struct{}

// Name implements SetStatistic.
func (BurdenStatistic) Name() string { return "burden" }

// PerSNP implements SetStatistic: ω_j U_j.
func (BurdenStatistic) PerSNP(weight, score float64) float64 {
	return weight * score
}

// Finalize implements SetStatistic: the square of the weighted sum.
func (BurdenStatistic) Finalize(sum float64) float64 { return sum * sum }

// NewSetStatistic returns the named statistic ("" defaults to SKAT).
func NewSetStatistic(name string) (SetStatistic, error) {
	switch name {
	case "", "skat":
		return SKATStatistic{}, nil
	case "burden":
		return BurdenStatistic{}, nil
	default:
		return nil, fmt.Errorf("stats: unknown set statistic %q", name)
	}
}

// Combine evaluates the statistic for one set from the full score vector.
func Combine(st SetStatistic, set data.SNPSet, weights data.Weights, scores []float64) float64 {
	sum := 0.0
	for _, j := range set.SNPs {
		sum += st.PerSNP(weights[j], scores[j])
	}
	return st.Finalize(sum)
}

// CombineAll evaluates the statistic for every set.
func CombineAll(st SetStatistic, sets data.SNPSets, weights data.Weights, scores []float64) []float64 {
	out := make([]float64, len(sets))
	for k, set := range sets {
		out[k] = Combine(st, set, weights, scores)
	}
	return out
}

// BetaMAFWeights computes the Beta-density weights of Wu et al. (2011):
// ω_j = Beta(MAF_j; a, b) up-weights rare variants. The canonical choice is
// a=1, b=25. MAFs are estimated from the genotype matrix as half the mean
// genotype; monomorphic SNPs (MAF 0 or 1) get weight 0 so they cannot
// dominate through an unbounded density.
func BetaMAFWeights(m *data.GenotypeMatrix, a, b float64) (data.Weights, error) {
	if a <= 0 || b <= 0 {
		return nil, fmt.Errorf("stats: Beta weight parameters (%g,%g) must be positive", a, b)
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	logNorm := lgAB - lgA - lgB
	w := make(data.Weights, m.SNPs())
	n := float64(m.Patients)
	for j := range w {
		sum := 0.0
		for _, g := range m.Row(j) {
			sum += float64(g)
		}
		maf := sum / (2 * n)
		if maf > 0.5 {
			maf = 1 - maf // weight by the minor allele
		}
		if maf <= 0 {
			w[j] = 0
			continue
		}
		w[j] = math.Exp(logNorm + (a-1)*math.Log(maf) + (b-1)*math.Log(1-maf))
	}
	return w, nil
}
