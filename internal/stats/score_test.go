package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sparkscore/internal/data"
	"sparkscore/internal/rng"
)

// randomSurvival builds a random survival phenotype with ties (times rounded
// to halves so risk-set tie handling is exercised).
func randomSurvival(r *rng.RNG, n int) *data.Phenotype {
	ph := data.NewPhenotype(n)
	for i := 0; i < n; i++ {
		ph.Y[i] = math.Round(r.Exponential(1.0/12)*2) / 2
		if r.Bernoulli(0.85) {
			ph.Event[i] = 1
		}
	}
	return ph
}

func randomGenotypes(r *rng.RNG, n int) []data.Genotype {
	g := make([]data.Genotype, n)
	rho := 0.05 + 0.45*r.Float64()
	for i := range g {
		g[i] = data.Genotype(r.Binomial(2, rho))
	}
	return g
}

func TestCoxMatchesNaive(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(60) + 2
		ph := randomSurvival(rr, n)
		cox, err := NewCox(ph)
		if err != nil {
			return false
		}
		g := randomGenotypes(rr, n)
		fast := make([]float64, n)
		slow := make([]float64, n)
		cox.Contributions(g, fast)
		NaiveCoxContributions(ph, g, slow)
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoxCensoredContributeZero(t *testing.T) {
	r := rng.New(2)
	ph := randomSurvival(r, 40)
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	g := randomGenotypes(r, 40)
	u := make([]float64, 40)
	cox.Contributions(g, u)
	for i := range u {
		if ph.Event[i] == 0 && u[i] != 0 {
			t.Fatalf("censored patient %d has contribution %v", i, u[i])
		}
	}
}

func TestCoxHandlesAllTied(t *testing.T) {
	ph := &data.Phenotype{Y: []float64{5, 5, 5, 5}, Event: []uint8{1, 1, 0, 1}}
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	g := []data.Genotype{0, 1, 2, 1}
	u := make([]float64, 4)
	cox.Contributions(g, u)
	// All risk sets are the whole cohort: a/b = mean genotype = 1.
	want := []float64{-1, 0, 0, 0}
	for i := range u {
		if math.Abs(u[i]-want[i]) > 1e-12 {
			t.Fatalf("u = %v, want %v", u, want)
		}
	}
}

func TestCoxSmallestTimeSeesFullRiskSet(t *testing.T) {
	ph := &data.Phenotype{Y: []float64{1, 2, 3}, Event: []uint8{1, 1, 1}}
	cox, err := NewCox(ph)
	if err != nil {
		t.Fatal(err)
	}
	g := []data.Genotype{2, 0, 1}
	u := make([]float64, 3)
	cox.Contributions(g, u)
	// Patient 0 (earliest event): risk set is everyone, a=3, b=3.
	if math.Abs(u[0]-(2-1)) > 1e-12 {
		t.Fatalf("u[0] = %v, want 1", u[0])
	}
	// Patient 2 (latest): risk set is itself, U = g - g = 0.
	if u[2] != 0 {
		t.Fatalf("u[2] = %v, want 0", u[2])
	}
}

func TestCoxMonomorphicSNPScoresZero(t *testing.T) {
	r := rng.New(3)
	ph := randomSurvival(r, 30)
	cox, _ := NewCox(ph)
	g := make([]data.Genotype, 30)
	for i := range g {
		g[i] = 2
	}
	if s := Score(cox, g); math.Abs(s) > 1e-12 {
		t.Fatalf("monomorphic SNP has score %v", s)
	}
	if v := cox.Variance(g); math.Abs(v) > 1e-12 {
		t.Fatalf("monomorphic SNP has variance %v", v)
	}
}

func TestCoxVarianceNonNegative(t *testing.T) {
	r := rng.New(4)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(50) + 2
		ph := randomSurvival(rr, n)
		cox, err := NewCox(ph)
		if err != nil {
			return false
		}
		return cox.Variance(randomGenotypes(rr, n)) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoxRejectsEmptyPhenotype(t *testing.T) {
	if _, err := NewCox(data.NewPhenotype(0)); err == nil {
		t.Fatal("empty phenotype accepted")
	}
}

func TestCoxConcurrentContributions(t *testing.T) {
	r := rng.New(5)
	n := 100
	ph := randomSurvival(r, n)
	cox, _ := NewCox(ph)
	g := randomGenotypes(r, n)
	want := make([]float64, n)
	cox.Contributions(g, want)
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func() {
			u := make([]float64, n)
			for k := 0; k < 50; k++ {
				cox.Contributions(g, u)
			}
			ok := true
			for i := range u {
				if u[i] != want[i] {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent Contributions produced different results")
		}
	}
}

func TestGaussianConstantGenotypeScoresZero(t *testing.T) {
	ph := &data.Phenotype{Y: []float64{1, 4, 2, 9}, Event: []uint8{1, 1, 1, 1}}
	m, err := NewGaussian(ph)
	if err != nil {
		t.Fatal(err)
	}
	g := []data.Genotype{1, 1, 1, 1}
	if s := Score(m, g); math.Abs(s) > 1e-12 {
		t.Fatalf("constant genotype score %v, want 0", s)
	}
}

func TestGaussianHandComputed(t *testing.T) {
	ph := &data.Phenotype{Y: []float64{0, 2, 4}, Event: []uint8{1, 1, 1}} // mean 2
	m, _ := NewGaussian(ph)
	g := []data.Genotype{2, 0, 1}
	u := make([]float64, 3)
	m.Contributions(g, u)
	want := []float64{2 * (0 - 2), 0, 1 * (4 - 2)}
	for i := range u {
		if u[i] != want[i] {
			t.Fatalf("u = %v, want %v", u, want)
		}
	}
	// Variance: σ̂² = (4+0+4)/3, Σ(g-ḡ)² = (1+1+0) = 2.
	wantVar := (8.0 / 3.0) * 2
	if v := m.Variance(g); math.Abs(v-wantVar) > 1e-12 {
		t.Fatalf("variance %v, want %v", v, wantVar)
	}
}

func TestBinomialValidation(t *testing.T) {
	if _, err := NewBinomial(&data.Phenotype{Y: []float64{0, 0.5}, Event: []uint8{0, 0}}); err == nil {
		t.Fatal("non-binary outcome accepted")
	}
	if _, err := NewBinomial(&data.Phenotype{Y: []float64{1, 1}, Event: []uint8{0, 0}}); err == nil {
		t.Fatal("single-class outcome accepted")
	}
	if _, err := NewBinomial(&data.Phenotype{Y: []float64{0, 1}, Event: []uint8{0, 0}}); err != nil {
		t.Fatalf("valid binary phenotype rejected: %v", err)
	}
}

func TestBinomialHandComputed(t *testing.T) {
	ph := &data.Phenotype{Y: []float64{1, 0, 1, 0}, Event: []uint8{0, 0, 0, 0}} // mean 0.5
	m, _ := NewBinomial(ph)
	g := []data.Genotype{2, 2, 0, 1}
	u := make([]float64, 4)
	m.Contributions(g, u)
	want := []float64{1, -1, 0, -0.5}
	for i := range u {
		if u[i] != want[i] {
			t.Fatalf("u = %v, want %v", u, want)
		}
	}
}

func TestNewModelDispatch(t *testing.T) {
	ph := &data.Phenotype{Y: []float64{0, 1, 1}, Event: []uint8{1, 0, 1}}
	for _, fam := range []string{"cox", "gaussian", "binomial"} {
		m, err := NewModel(fam, ph)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if m.Name() != fam {
			t.Fatalf("Name() = %q, want %q", m.Name(), fam)
		}
		if m.Patients() != 3 {
			t.Fatalf("%s: Patients() = %d", fam, m.Patients())
		}
	}
	if _, err := NewModel("poisson", ph); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestMonteCarloScoreUnitWeightsReproducesScore(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(40) + 2
		ph := randomSurvival(rr, n)
		cox, err := NewCox(ph)
		if err != nil {
			return false
		}
		g := randomGenotypes(rr, n)
		u := make([]float64, n)
		cox.Contributions(g, u)
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		return math.Abs(MonteCarloScore(u, ones)-Score(cox, g)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloScoreLinearity(t *testing.T) {
	u := []float64{1, -2, 3}
	z := []float64{0.5, 0.5, 0.5}
	if got := MonteCarloScore(u, z); math.Abs(got-1) > 1e-12 {
		t.Fatalf("got %v, want 1", got)
	}
}

func TestChi2StatGuards(t *testing.T) {
	if Chi2Stat(2, 0) != 0 {
		t.Fatal("zero variance did not yield 0")
	}
	if Chi2Stat(2, math.NaN()) != 0 {
		t.Fatal("NaN variance did not yield 0")
	}
	if got := Chi2Stat(3, 4); math.Abs(got-2.25) > 1e-12 {
		t.Fatalf("Chi2Stat(3,4) = %v, want 2.25", got)
	}
}

func TestScorePermutationDistributionCentred(t *testing.T) {
	// Under permutation of the phenotype, the mean of the permuted scores
	// should be near zero relative to their spread — a sanity check that the
	// score is correctly centred for resampling inference.
	r := rng.New(7)
	n := 200
	ph := randomSurvival(r, n)
	g := randomGenotypes(r, n)
	const b = 300
	var sum, sumSq float64
	for rep := 0; rep < b; rep++ {
		perm := r.Perm(n)
		cox, err := NewCox(ph.Permuted(perm))
		if err != nil {
			t.Fatal(err)
		}
		s := Score(cox, g)
		sum += s
		sumSq += s * s
	}
	mean := sum / b
	sd := math.Sqrt(sumSq/b - mean*mean)
	if sd == 0 {
		t.Fatal("degenerate permutation distribution")
	}
	if math.Abs(mean) > 4*sd/math.Sqrt(b) {
		t.Fatalf("permutation score mean %.4f too far from 0 (sd %.4f)", mean, sd)
	}
}

func TestRareVariantTypeIError(t *testing.T) {
	// The paper's motivating claim (Section I): "the type I error rate can
	// be severely inflated for SNPs that have a low mutation rate" under
	// asymptotics, which is why resampling is used. Reproduce it: at
	// MAF 0.005 with n=150, the asymptotic chi-square test rejects a true
	// null far above the nominal 5%, while the permutation test stays at or
	// below it (conservative through discreteness).
	if testing.Short() {
		t.Skip("simulation study")
	}
	r := rng.New(1)
	const (
		n      = 150
		trials = 800
		b      = 99
		alpha  = 0.05
	)
	rejAsym, rejPerm, informative := 0, 0, 0
	u := make([]float64, n)
	ub := make([]float64, n)
	for trial := 0; trial < trials; trial++ {
		rr := r.Split(uint64(trial))
		ph := data.NewPhenotype(n)
		g := make([]data.Genotype, n)
		carriers := 0
		for i := 0; i < n; i++ {
			ph.Y[i] = rr.Exponential(1.0 / 12)
			if rr.Bernoulli(0.5) {
				ph.Event[i] = 1
			}
			g[i] = data.Genotype(rr.Binomial(2, 0.005))
			if g[i] > 0 {
				carriers++
			}
		}
		if carriers == 0 {
			continue
		}
		informative++
		cox, err := NewCox(ph)
		if err != nil {
			t.Fatal(err)
		}
		cox.Contributions(g, u)
		var s float64
		for _, v := range u {
			s += v
		}
		if ChiSquaredSurvival(Chi2Stat(s, cox.Variance(g)), 1) < alpha {
			rejAsym++
		}
		exceed := 0
		for rep := 0; rep < b; rep++ {
			rb := rr.Split(uint64(rep) + 1000000)
			coxb, err := NewCox(ph.Permuted(rb.Perm(n)))
			if err != nil {
				t.Fatal(err)
			}
			coxb.Contributions(g, ub)
			var sb float64
			for _, v := range ub {
				sb += v
			}
			if sb*sb >= s*s {
				exceed++
			}
		}
		if float64(exceed+1)/float64(b+1) < alpha {
			rejPerm++
		}
	}
	asymRate := float64(rejAsym) / float64(informative)
	permRate := float64(rejPerm) / float64(informative)
	if asymRate < 0.07 {
		t.Errorf("asymptotic type I error %.4f — expected inflation above 0.07 at rare variants", asymRate)
	}
	if permRate > 0.07 {
		t.Errorf("permutation type I error %.4f — expected control at/below nominal 0.05", permRate)
	}
	if permRate >= asymRate {
		t.Errorf("permutation (%.4f) not better calibrated than asymptotics (%.4f)", permRate, asymRate)
	}
}

func TestCoxInvariantToMonotoneTimeTransform(t *testing.T) {
	// The Cox score depends on survival times only through their ranks, so
	// any strictly increasing transformation of Y leaves every contribution
	// unchanged.
	r := rng.New(31)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(60) + 2
		ph := randomSurvival(rr, n)
		g := randomGenotypes(rr, n)
		transformed := data.NewPhenotype(n)
		copy(transformed.Event, ph.Event)
		for i, y := range ph.Y {
			transformed.Y[i] = math.Exp(y/10) + 3 // strictly increasing
		}
		a, err := NewCox(ph)
		if err != nil {
			return false
		}
		b, err := NewCox(transformed)
		if err != nil {
			return false
		}
		ua := make([]float64, n)
		ub := make([]float64, n)
		a.Contributions(g, ua)
		b.Contributions(g, ub)
		for i := range ua {
			if math.Abs(ua[i]-ub[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianScoreScaleCovariance(t *testing.T) {
	// Scaling the outcome by c scales every Gaussian contribution by c;
	// shifting it leaves them unchanged (the score centres on the mean).
	r := rng.New(37)
	n := 80
	ph := randomSurvival(r, n)
	g := randomGenotypes(r, n)
	base, err := NewGaussian(ph)
	if err != nil {
		t.Fatal(err)
	}
	ub := make([]float64, n)
	base.Contributions(g, ub)
	scaled := data.NewPhenotype(n)
	copy(scaled.Event, ph.Event)
	for i, y := range ph.Y {
		scaled.Y[i] = 4*y + 100
	}
	m2, err := NewGaussian(scaled)
	if err != nil {
		t.Fatal(err)
	}
	us := make([]float64, n)
	m2.Contributions(g, us)
	for i := range ub {
		if math.Abs(us[i]-4*ub[i]) > 1e-9 {
			t.Fatalf("contribution %d: %v, want %v", i, us[i], 4*ub[i])
		}
	}
}
