// Minimal dense linear algebra for covariate adjustment: symmetric
// positive-definite solves via Cholesky, ordinary least squares, and
// logistic regression by iteratively reweighted least squares. Only what the
// adjusted score models need — not a general matrix library.

package stats

import (
	"fmt"
	"math"
)

// cholesky factors the symmetric positive-definite matrix a (row-major p×p)
// in place into its lower triangle L with a = L·Lᵀ. It fails on non-PD input
// (collinear covariates).
func cholesky(a [][]float64) error {
	p := len(a)
	for j := 0; j < p; j++ {
		orig := a[j][j]
		d := orig
		for k := 0; k < j; k++ {
			d -= a[j][k] * a[j][k]
		}
		// Relative tolerance: an exactly-singular system can leave a tiny
		// positive pivot through rounding; treat it as rank deficiency.
		if d <= 1e-10*math.Max(orig, 1) || math.IsNaN(d) {
			return fmt.Errorf("stats: matrix not positive definite at pivot %d (collinear covariates?)", j)
		}
		a[j][j] = math.Sqrt(d)
		for i := j + 1; i < p; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= a[i][k] * a[j][k]
			}
			a[i][j] = s / a[j][j]
		}
	}
	return nil
}

// cholSolve solves a·x = b for symmetric positive-definite a, overwriting a
// with its Cholesky factor and b with the solution.
func cholSolve(a [][]float64, b []float64) error {
	if err := cholesky(a); err != nil {
		return err
	}
	p := len(a)
	// Forward substitution: L·y = b.
	for i := 0; i < p; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i][k] * b[k]
		}
		b[i] = s / a[i][i]
	}
	// Back substitution: Lᵀ·x = y.
	for i := p - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < p; k++ {
			s -= a[k][i] * b[k]
		}
		b[i] = s / a[i][i]
	}
	return nil
}

// designMatrix prepends an intercept column to the covariates: row i is
// [1, X_i1, ..., X_ip].
func designMatrix(x [][]float64, n int) ([][]float64, error) {
	if len(x) != n {
		return nil, fmt.Errorf("stats: %d covariate rows for %d patients", len(x), n)
	}
	p := -1
	design := make([][]float64, n)
	for i, row := range x {
		if p == -1 {
			p = len(row)
		} else if len(row) != p {
			return nil, fmt.Errorf("stats: covariate row %d has %d values, want %d", i, len(row), p)
		}
		design[i] = append([]float64{1}, row...)
	}
	return design, nil
}

// fitOLS fits y = X·β by least squares via the normal equations and returns
// the coefficients and fitted values. X must have full column rank.
func fitOLS(x [][]float64, y []float64) (coef, fitted []float64, err error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, nil, fmt.Errorf("stats: OLS with %d rows and %d outcomes", n, len(y))
	}
	p := len(x[0])
	xtx := newSquare(p)
	xty := make([]float64, p)
	for i := 0; i < n; i++ {
		for a := 0; a < p; a++ {
			xty[a] += x[i][a] * y[i]
			for b := 0; b <= a; b++ {
				xtx[a][b] += x[i][a] * x[i][b]
			}
		}
	}
	symmetrise(xtx)
	if err := cholSolve(xtx, xty); err != nil {
		return nil, nil, err
	}
	coef = xty
	fitted = make([]float64, n)
	for i := 0; i < n; i++ {
		for a := 0; a < p; a++ {
			fitted[i] += x[i][a] * coef[a]
		}
	}
	return coef, fitted, nil
}

// fitLogistic fits P(y=1) = expit(X·β) by iteratively reweighted least
// squares and returns the coefficients and fitted probabilities. y must be
// 0/1.
func fitLogistic(x [][]float64, y []float64) (coef, fitted []float64, err error) {
	const (
		maxIter = 50
		tol     = 1e-10
	)
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, nil, fmt.Errorf("stats: logistic fit with %d rows and %d outcomes", n, len(y))
	}
	p := len(x[0])
	coef = make([]float64, p)
	fitted = make([]float64, n)
	eta := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		info := newSquare(p)
		grad := make([]float64, p)
		for i := 0; i < n; i++ {
			eta[i] = 0
			for a := 0; a < p; a++ {
				eta[i] += x[i][a] * coef[a]
			}
			mu := expit(eta[i])
			fitted[i] = mu
			w := mu * (1 - mu)
			r := y[i] - mu
			for a := 0; a < p; a++ {
				grad[a] += x[i][a] * r
				for b := 0; b <= a; b++ {
					info[a][b] += w * x[i][a] * x[i][b]
				}
			}
		}
		symmetrise(info)
		if err := cholSolve(info, grad); err != nil {
			return nil, nil, fmt.Errorf("stats: logistic IRLS iteration %d: %w", iter, err)
		}
		maxStep := 0.0
		for a := 0; a < p; a++ {
			coef[a] += grad[a]
			if s := math.Abs(grad[a]); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < tol {
			return coef, fitted, nil
		}
	}
	return nil, nil, fmt.Errorf("stats: logistic IRLS did not converge in %d iterations", maxIter)
}

func expit(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

func newSquare(p int) [][]float64 {
	m := make([][]float64, p)
	for i := range m {
		m[i] = make([]float64, p)
	}
	return m
}

func symmetrise(m [][]float64) {
	for a := range m {
		for b := 0; b < a; b++ {
			m[b][a] = m[a][b]
		}
	}
}
