// SKAT SNP-set aggregation and resampling p-values.

package stats

import (
	"fmt"

	"sparkscore/internal/data"
)

// SKAT computes the Sequence Kernel Association Test statistic of one SNP-set
// (Wu et al. 2011), as used in the paper:
//
//	S_k = Σ_{j∈I_k} ω_j² U_j²
//
// scores[j] must hold the marginal score U_j for every SNP j the set
// references; weights[j] is ω_j.
func SKAT(set data.SNPSet, weights data.Weights, scores []float64) float64 {
	s := 0.0
	for _, j := range set.SNPs {
		w := weights[j]
		u := scores[j]
		s += w * w * u * u
	}
	return s
}

// SKATAll computes S_k for every set.
func SKATAll(sets data.SNPSets, weights data.Weights, scores []float64) []float64 {
	out := make([]float64, len(sets))
	for k, set := range sets {
		out[k] = SKAT(set, weights, scores)
	}
	return out
}

// Counter tallies, per SNP-set, how many resampling replicates met or
// exceeded the observed statistic — the paper's counter_k, incremented
// whenever S_k^b >= S_k^0.
type Counter struct {
	observed []float64
	exceed   []int
	b        int
}

// NewCounter starts a tally against the observed statistics S^0.
func NewCounter(observed []float64) *Counter {
	return &Counter{observed: observed, exceed: make([]int, len(observed))}
}

// Add registers one replicate's statistics S^b.
func (c *Counter) Add(replicate []float64) {
	if len(replicate) != len(c.observed) {
		panic(fmt.Sprintf("stats: replicate has %d sets, observed has %d", len(replicate), len(c.observed)))
	}
	for k, s := range replicate {
		if s >= c.observed[k] {
			c.exceed[k]++
		}
	}
	c.b++
}

// Merge folds another counter over the same observed statistics into c,
// so partitions of the B replicates can be tallied independently.
func (c *Counter) Merge(other *Counter) {
	if len(other.exceed) != len(c.exceed) {
		panic("stats: merging counters of different lengths")
	}
	for k, e := range other.exceed {
		c.exceed[k] += e
	}
	c.b += other.b
}

// Replicates returns how many replicates have been tallied.
func (c *Counter) Replicates() int { return c.b }

// Exceedances returns the per-set exceedance counts.
func (c *Counter) Exceedances() []int { return c.exceed }

// PValues returns the resampling p-values. The paper defines the p-value as
// the proportion of resampling statistics ≥ the observed one; we use the
// standard bias-corrected estimator (count+1)/(B+1), which is never exactly
// zero and is the convention of Westfall & Young for resampling-based
// inference. Plain proportions are available via Proportions.
func (c *Counter) PValues() []float64 {
	p := make([]float64, len(c.exceed))
	for k, e := range c.exceed {
		p[k] = float64(e+1) / float64(c.b+1)
	}
	return p
}

// Proportions returns the raw exceedance proportions count/B (the paper's
// definition). It panics if no replicates have been tallied.
func (c *Counter) Proportions() []float64 {
	if c.b == 0 {
		panic("stats: Proportions with zero replicates")
	}
	p := make([]float64, len(c.exceed))
	for k, e := range c.exceed {
		p[k] = float64(e) / float64(c.b)
	}
	return p
}
