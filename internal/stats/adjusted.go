// Covariate-adjusted efficient score models. The paper singles out the Monte
// Carlo method because "it allows for incorporation of baseline covariates
// in the analysis": the nuisance model (outcome on covariates) is fitted
// once under the null, and the per-patient score contributions are formed
// from its residuals — after which Algorithm 3 applies unchanged, since the
// cached U RDD already encodes the adjustment.
//
//   - Gaussian: Y regressed on [1, X] by OLS; U_ij = G_ij (Y_i − Ŷ_i).
//   - Binomial: logistic regression of Y on [1, X]; U_ij = G_ij (Y_i − p̂_i).
//   - Cox: the covariate log-hazard coefficients γ are fitted by
//     Newton–Raphson on the partial likelihood; the SNP score is then the
//     usual risk-set residual with patients weighted by e^{γ·X_l}:
//     U_ij = Δ_i (G_ij − Σ_{l∈R_i} w_l G_lj / Σ_{l∈R_i} w_l).

package stats

import (
	"fmt"
	"math"

	"sparkscore/internal/data"
)

// NewAdjustedModel constructs a covariate-adjusted model of the named family.
// covariates is an n×p matrix (one row per patient, no intercept column —
// it is added internally). With p = 0 columns it reduces to the unadjusted
// model of the family.
func NewAdjustedModel(family string, ph *data.Phenotype, covariates [][]float64) (Model, error) {
	if len(covariates) == 0 {
		return NewModel(family, ph)
	}
	switch family {
	case "cox":
		return NewCoxAdjusted(ph, covariates)
	case "gaussian":
		return NewGaussianAdjusted(ph, covariates)
	case "binomial":
		return NewBinomialAdjusted(ph, covariates)
	default:
		return nil, fmt.Errorf("stats: unknown score family %q", family)
	}
}

// residualModel is the shared shape of the adjusted Gaussian and Binomial
// models: per-patient residuals r_i with U_ij = G_ij r_i.
type residualModel struct {
	name     string
	resid    []float64
	variance []float64 // per-patient variance weights for the null variance
}

func (m *residualModel) Name() string  { return m.name }
func (m *residualModel) Patients() int { return len(m.resid) }

// Residuals implements Residualer: the adjusted residual vector is exactly
// the SNP-invariant factor the blocked kernel fuses with the dosage decode.
func (m *residualModel) Residuals() []float64 { return m.resid }

func (m *residualModel) Contributions(g []data.Genotype, u []float64) {
	n := len(m.resid)
	checkLens(n, g, u)
	for i := 0; i < n; i++ {
		u[i] = float64(g[i]) * m.resid[i]
	}
}

// Variance uses the plug-in estimate Σ_i v_i (G_ij − Ḡ_j)² with per-patient
// variance weights v_i; it ignores the (second-order) effect of estimating
// the nuisance coefficients, which the resampling path does not rely on.
func (m *residualModel) Variance(g []data.Genotype) float64 {
	n := len(m.resid)
	checkLens(n, g, nil)
	var sumG float64
	for _, v := range g {
		sumG += float64(v)
	}
	meanG := sumG / float64(n)
	var ss float64
	for i, v := range g {
		d := float64(v) - meanG
		ss += m.variance[i] * d * d
	}
	return ss
}

// NewGaussianAdjusted builds the covariate-adjusted Gaussian score model.
func NewGaussianAdjusted(ph *data.Phenotype, covariates [][]float64) (Model, error) {
	n := ph.Patients()
	if n == 0 {
		return nil, fmt.Errorf("stats: empty phenotype")
	}
	design, err := designMatrix(covariates, n)
	if err != nil {
		return nil, err
	}
	_, fitted, err := fitOLS(design, ph.Y)
	if err != nil {
		return nil, fmt.Errorf("stats: adjusted gaussian: %w", err)
	}
	m := &residualModel{name: "gaussian", resid: make([]float64, n), variance: make([]float64, n)}
	var ss float64
	for i := range m.resid {
		m.resid[i] = ph.Y[i] - fitted[i]
		ss += m.resid[i] * m.resid[i]
	}
	sigma2 := ss / float64(n)
	for i := range m.variance {
		m.variance[i] = sigma2
	}
	return m, nil
}

// NewBinomialAdjusted builds the covariate-adjusted Binomial (logistic)
// score model. Outcomes must be 0/1 with both classes present.
func NewBinomialAdjusted(ph *data.Phenotype, covariates [][]float64) (Model, error) {
	n := ph.Patients()
	if n == 0 {
		return nil, fmt.Errorf("stats: empty phenotype")
	}
	ones := 0
	for i, y := range ph.Y {
		if y != 0 && y != 1 {
			return nil, fmt.Errorf("stats: binomial outcome for patient %d is %v, want 0 or 1", i, y)
		}
		if y == 1 {
			ones++
		}
	}
	if ones == 0 || ones == n {
		return nil, fmt.Errorf("stats: binomial phenotype has a single class")
	}
	design, err := designMatrix(covariates, n)
	if err != nil {
		return nil, err
	}
	_, fitted, err := fitLogistic(design, ph.Y)
	if err != nil {
		return nil, fmt.Errorf("stats: adjusted binomial: %w", err)
	}
	m := &residualModel{name: "binomial", resid: make([]float64, n), variance: make([]float64, n)}
	for i := range m.resid {
		m.resid[i] = ph.Y[i] - fitted[i]
		m.variance[i] = fitted[i] * (1 - fitted[i])
	}
	return m, nil
}

// NewCoxAdjusted builds the covariate-adjusted Cox score model: it fits the
// null proportional-hazards model with the covariates only, then weights
// every patient's risk-set contribution by e^{γ̂·X}.
func NewCoxAdjusted(ph *data.Phenotype, covariates [][]float64) (*Cox, error) {
	base, err := NewCox(ph)
	if err != nil {
		return nil, err
	}
	design, err := designMatrix(covariates, ph.Patients())
	if err != nil {
		return nil, err
	}
	// Strip the intercept: the Cox partial likelihood has no intercept
	// (absorbed into the baseline hazard).
	z := make([][]float64, len(design))
	for i, row := range design {
		z[i] = row[1:]
	}
	gamma, err := base.fitCoxMulti(z, 25, 1e-10)
	if err != nil {
		return nil, fmt.Errorf("stats: adjusted cox: %w", err)
	}
	w := make([]float64, ph.Patients())
	for i, row := range z {
		eta := 0.0
		for a, v := range row {
			eta += gamma[a] * v
		}
		w[i] = math.Exp(eta)
	}
	return base.withRiskWeights(w), nil
}

// withRiskWeights returns a copy of the model whose risk sets weight patient
// l by w[l] (w = nil restores the unweighted model).
func (c *Cox) withRiskWeights(w []float64) *Cox {
	out := *c
	out.w = w
	out.riskDen = make([]float64, len(c.order))
	cum := make([]float64, len(c.order)+1)
	for p, i := range c.order {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		cum[p+1] = cum[p] + wi
	}
	for p, i := range c.order {
		out.riskDen[i] = cum[c.groupEnd[p]+1]
	}
	return &out
}

// fitCoxMulti maximises the multivariate Cox partial likelihood over the
// covariates z (n×p, no intercept) by Newton–Raphson, using the risk-set
// structure precomputed by the model.
func (c *Cox) fitCoxMulti(z [][]float64, maxIter int, tol float64) ([]float64, error) {
	n := len(c.order)
	if len(z) != n {
		return nil, fmt.Errorf("stats: %d covariate rows for %d patients", len(z), n)
	}
	p := len(z[0])
	gamma := make([]float64, p)
	eta := make([]float64, n)
	// Prefix sums over sorted order of e, Z·e, and the upper triangle of
	// Z Zᵀ·e, rebuilt per iteration.
	cumE := make([]float64, n+1)
	cumZE := make([][]float64, n+1)
	cumZZE := make([][]float64, n+1)
	tri := p * (p + 1) / 2
	for i := range cumZE {
		cumZE[i] = make([]float64, p)
		cumZZE[i] = make([]float64, tri)
	}
	for iter := 1; iter <= maxIter; iter++ {
		for i := 0; i < n; i++ {
			eta[i] = 0
			for a := 0; a < p; a++ {
				eta[i] += gamma[a] * z[i][a]
			}
		}
		for pos, i := range c.order {
			e := math.Exp(eta[i])
			cumE[pos+1] = cumE[pos] + e
			t := 0
			for a := 0; a < p; a++ {
				cumZE[pos+1][a] = cumZE[pos][a] + z[i][a]*e
				for b := 0; b <= a; b++ {
					cumZZE[pos+1][t] = cumZZE[pos][t] + z[i][a]*z[i][b]*e
					t++
				}
			}
		}
		score := make([]float64, p)
		info := newSquare(p)
		for i := 0; i < n; i++ {
			if c.ph.Event[i] == 0 {
				continue
			}
			end := c.groupEnd[c.pos[i]] + 1
			s0 := cumE[end]
			t := 0
			for a := 0; a < p; a++ {
				ma := cumZE[end][a] / s0
				score[a] += z[i][a] - ma
				for b := 0; b <= a; b++ {
					info[a][b] += cumZZE[end][t]/s0 - ma*(cumZE[end][b]/s0)
					t++
				}
			}
		}
		symmetrise(info)
		if err := cholSolve(info, score); err != nil {
			return nil, fmt.Errorf("%w: singular information at iteration %d", ErrNoConvergence, iter)
		}
		maxStep := 0.0
		for a := 0; a < p; a++ {
			gamma[a] += score[a]
			if s := math.Abs(score[a]); s > maxStep {
				maxStep = s
			}
			if math.IsNaN(gamma[a]) || math.IsInf(gamma[a], 0) {
				return nil, fmt.Errorf("%w: diverged at iteration %d", ErrNoConvergence, iter)
			}
		}
		if maxStep < tol {
			return gamma, nil
		}
	}
	return nil, fmt.Errorf("%w after %d iterations", ErrNoConvergence, maxIter)
}
