// Asymptotic SKAT p-values. The observed statistic S_k = Σ ω² U² is a
// quadratic form in the asymptotically normal score vector, so its null
// distribution is a weighted sum of chi-squares. Following the SKAT
// literature we approximate it by the moment-matching method of Liu, Tang &
// Zhang (2009): the first four cumulants of the quadratic form are computed
// exactly from the per-patient contributions, and the distribution is
// matched to a (possibly noncentral) scaled chi-square.
//
// This is the "asymptotics, or large sample theory" route the paper
// contrasts with resampling — fast, but relying on the regularity conditions
// that resampling avoids.

package stats

import (
	"fmt"
	"math"

	"sparkscore/internal/data"
)

// SKATMoments holds the cumulants c_r = tr((WΣ)^r) of the SKAT quadratic
// form, computed from the weighted Gram matrix of the per-patient score
// contributions.
type SKATMoments struct {
	C1, C2, C3, C4 float64
	SNPs           int
}

// ComputeSKATMoments builds the per-SNP contribution vectors of the set
// under the model and returns the exact first four cumulants of the SKAT
// statistic's null quadratic form. rows[r] holds the genotypes of the set's
// r-th SNP; weights[r] is its ω.
func ComputeSKATMoments(model Model, rows [][]data.Genotype, weights []float64) (SKATMoments, error) {
	m := len(rows)
	if m == 0 {
		return SKATMoments{}, fmt.Errorf("stats: empty SNP-set")
	}
	if len(weights) != m {
		return SKATMoments{}, fmt.Errorf("stats: %d weights for %d SNPs", len(weights), m)
	}
	n := model.Patients()
	// Weighted contribution vectors v_r = ω_r · u_r.
	v := make([][]float64, m)
	buf := make([]float64, n)
	for r, g := range rows {
		model.Contributions(g, buf)
		v[r] = make([]float64, n)
		for i, x := range buf {
			v[r][i] = weights[r] * x
		}
	}
	// Gram matrix G_rs = v_r · v_s; the quadratic form's kernel eigenvalues
	// are those of G, so c_k = tr(G^k).
	gram := newSquare(m)
	for r := 0; r < m; r++ {
		for s := 0; s <= r; s++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += v[r][i] * v[s][i]
			}
			gram[r][s] = dot
			gram[s][r] = dot
		}
	}
	var mo SKATMoments
	mo.SNPs = m
	for r := 0; r < m; r++ {
		mo.C1 += gram[r][r]
	}
	g2 := matmul(gram, gram)
	for r := 0; r < m; r++ {
		mo.C2 += g2[r][r]
	}
	for r := 0; r < m; r++ {
		for s := 0; s < m; s++ {
			mo.C3 += g2[r][s] * gram[s][r]
			mo.C4 += g2[r][s] * g2[s][r]
		}
	}
	return mo, nil
}

func matmul(a, b [][]float64) [][]float64 {
	m := len(a)
	out := newSquare(m)
	for i := 0; i < m; i++ {
		for k := 0; k < m; k++ {
			aik := a[i][k]
			if aik == 0 {
				continue
			}
			row := b[k]
			for j := 0; j < m; j++ {
				out[i][j] += aik * row[j]
			}
		}
	}
	return out
}

// LiuPValue approximates P(S > observed) for a quadratic form with the given
// cumulants by the Liu–Tang–Zhang scaled (noncentral) chi-square match.
func LiuPValue(observed float64, mo SKATMoments) float64 {
	if mo.C2 <= 0 {
		// Degenerate form (all weighted scores are identically zero).
		if observed > 0 {
			return 0
		}
		return 1
	}
	muQ := mo.C1
	sigmaQ := math.Sqrt(2 * mo.C2)
	s1 := mo.C3 / math.Pow(mo.C2, 1.5)
	s2 := mo.C4 / (mo.C2 * mo.C2)

	var l, d, a float64
	if s1*s1 > s2 {
		a = 1 / (s1 - math.Sqrt(s1*s1-s2))
		d = s1*a*a*a - a*a
		l = a*a - 2*d
	} else {
		l = 1 / s2
		a = math.Sqrt(l)
		d = 0
	}
	muX := l + d
	sigmaX := math.Sqrt2 * a
	x := (observed-muQ)/sigmaQ*sigmaX + muX
	return noncentralChiSquaredSurvival(x, l, d)
}

// noncentralChiSquaredSurvival returns P(X > x) for X ~ χ²_df(ncp) with
// possibly fractional df, via the Poisson mixture of central chi-squares.
func noncentralChiSquaredSurvival(x, df, ncp float64) float64 {
	if x <= 0 {
		return 1
	}
	if df <= 0 {
		df = 1e-8
	}
	if ncp <= 0 {
		return regIncGammaQ(df/2, x/2)
	}
	// P(X > x) = Σ_k Pois(k; ncp/2) · P(χ²_{df+2k} > x). The Poisson weights
	// concentrate near ncp/2; sum until the remaining mass is negligible.
	const eps = 1e-12
	lambda := ncp / 2
	logW := -lambda // log weight of k = 0
	total := 0.0
	mass := 0.0
	for k := 0; k < 10000; k++ {
		w := math.Exp(logW)
		total += w * regIncGammaQ((df+2*float64(k))/2, x/2)
		mass += w
		if 1-mass < eps && k > int(lambda) {
			break
		}
		logW += math.Log(lambda) - math.Log(float64(k+1))
	}
	if total > 1 {
		total = 1
	}
	return total
}

// SKATAsymptotic computes the observed SKAT statistic of one set and its
// Liu-approximated asymptotic p-value in a single pass.
func SKATAsymptotic(model Model, rows [][]data.Genotype, weights []float64) (observed, pvalue float64, err error) {
	mo, err := ComputeSKATMoments(model, rows, weights)
	if err != nil {
		return 0, 0, err
	}
	u := make([]float64, model.Patients())
	for r, g := range rows {
		model.Contributions(g, u)
		var s float64
		for _, x := range u {
			s += x
		}
		observed += weights[r] * weights[r] * s * s
	}
	return observed, LiuPValue(observed, mo), nil
}
