// Wald and likelihood-ratio comparators for the Cox model. The paper argues
// the efficient score test is preferable precisely because these require
// per-SNP numerical optimisation of
//
//	U_j(β) = Σ_i Δ_i [ G_ij − Σ_l 1(Y_l≥Y_i) G_lj e^{βG_lj} / Σ_l 1(Y_l≥Y_i) e^{βG_lj} ]  =  0
//
// with no closed form, plus per-SNP convergence monitoring. This file
// implements the optimisation (Newton–Raphson on the Cox partial likelihood)
// so the paper's comparison is reproducible as an ablation benchmark, and so
// the library offers the full inferential triple (score, Wald, LRT).

package stats

import (
	"fmt"
	"math"

	"sparkscore/internal/data"
)

// CoxFit is the result of maximising the Cox partial likelihood for one SNP.
type CoxFit struct {
	Beta       float64 // β̂, the log hazard ratio
	StdErr     float64 // sqrt(1/I(β̂))
	Wald       float64 // (β̂/SE)², 1-df chi-squared under H0
	LRT        float64 // 2[l(β̂) − l(0)], 1-df chi-squared under H0
	Iterations int
}

// ErrNoConvergence is wrapped by FitCox when Newton–Raphson fails; the paper
// notes the Wald/LRT route requires monitoring exactly this failure mode.
var ErrNoConvergence = fmt.Errorf("stats: Newton–Raphson did not converge")

// FitCox fits the single-SNP Cox model by Newton–Raphson. It reuses the risk
// sets precomputed by the Cox score model, giving O(n) cost per iteration.
func (c *Cox) FitCox(g []data.Genotype, maxIter int, tol float64) (CoxFit, error) {
	n := len(c.order)
	checkLens(n, g, nil)
	if maxIter <= 0 {
		maxIter = 25
	}
	if tol <= 0 {
		tol = 1e-10
	}
	beta := 0.0
	fit := CoxFit{}
	ll0 := c.partialLogLik(g, 0)
	for iter := 1; iter <= maxIter; iter++ {
		fit.Iterations = iter
		score, info := c.scoreInfo(g, beta)
		if info <= 0 || math.IsNaN(info) {
			// Degenerate (e.g. monomorphic SNP): no information about β.
			return fit, fmt.Errorf("%w: zero information at iteration %d", ErrNoConvergence, iter)
		}
		step := score / info
		beta += step
		if math.IsNaN(beta) || math.IsInf(beta, 0) {
			return fit, fmt.Errorf("%w: diverged at iteration %d", ErrNoConvergence, iter)
		}
		if math.Abs(step) < tol {
			_, infoHat := c.scoreInfo(g, beta)
			fit.Beta = beta
			fit.StdErr = math.Sqrt(1 / infoHat)
			w := beta / fit.StdErr
			fit.Wald = w * w
			fit.LRT = 2 * (c.partialLogLik(g, beta) - ll0)
			return fit, nil
		}
	}
	return fit, fmt.Errorf("%w after %d iterations", ErrNoConvergence, maxIter)
}

// scoreInfo evaluates the partial-likelihood score U(β) and observed
// information I(β) in one O(n) pass over the time-sorted patients. The risk
// set of a patient is a prefix of the descending-time order, so the three
// exponential sums are running prefix accumulations with tie handling.
func (c *Cox) scoreInfo(g []data.Genotype, beta float64) (score, info float64) {
	n := len(c.order)
	// Prefix sums over sorted order of e^{βG}, G e^{βG}, G² e^{βG}.
	cumE := make([]float64, n+1)
	cumGE := make([]float64, n+1)
	cumG2E := make([]float64, n+1)
	for p, i := range c.order {
		gi := float64(g[i])
		e := math.Exp(beta * gi)
		cumE[p+1] = cumE[p] + e
		cumGE[p+1] = cumGE[p] + gi*e
		cumG2E[p+1] = cumG2E[p] + gi*gi*e
	}
	for i := 0; i < n; i++ {
		if c.ph.Event[i] == 0 {
			continue
		}
		end := c.groupEnd[c.pos[i]] + 1
		se := cumE[end]
		mean := cumGE[end] / se
		score += float64(g[i]) - mean
		info += cumG2E[end]/se - mean*mean
	}
	return score, info
}

// partialLogLik evaluates the Cox partial log-likelihood at β.
func (c *Cox) partialLogLik(g []data.Genotype, beta float64) float64 {
	n := len(c.order)
	cumE := make([]float64, n+1)
	for p, i := range c.order {
		cumE[p+1] = cumE[p] + math.Exp(beta*float64(g[i]))
	}
	ll := 0.0
	for i := 0; i < n; i++ {
		if c.ph.Event[i] == 0 {
			continue
		}
		end := c.groupEnd[c.pos[i]] + 1
		ll += beta*float64(g[i]) - math.Log(cumE[end])
	}
	return ll
}
