// Blocked score kernels over packed genotype blocks. The boxed pipeline
// computes one SNP at a time: decode a row, allocate a contribution slice,
// loop. A BlockKernel instead consumes a whole data.GenoBlock in one pass —
// for residual-form models (Gaussian, Binomial, and their covariate-adjusted
// variants) the 2-bit dosage decode and the score accumulation fuse into a
// single loop over the packed bytes, and the block's contributions land in
// one flat allocation. Monte Carlo reweighting then becomes a matrix–vector
// product over the cached UBlock instead of per-SNP MonteCarloScore calls.
//
// Arithmetic order matches the boxed path exactly (per row, in patient
// order), so packed and boxed pipelines produce bitwise-identical scores.

package stats

import (
	"fmt"

	"sparkscore/internal/data"
)

// codeDosage maps each 2-bit PLINK-BED code to its scoring dosage; missing
// (code 01) scores as dosage zero, the usual missing-as-reference rule.
var codeDosage = [4]float64{2, 0, 1, 0}

// codeScoring maps each 2-bit code to its scoring genotype (missing -> 0),
// the domain the Model interface accepts.
var codeScoring = [4]data.Genotype{2, 0, 1, 0}

// DecodeDosageGenotypes unpacks 2-bit codes into scoring genotypes
// (missing -> 0); len(dst) genotypes are read from packed.
func DecodeDosageGenotypes(packed []byte, dst []data.Genotype) {
	n := len(dst)
	for i := 0; i+4 <= n; i += 4 {
		v := packed[i>>2]
		dst[i] = codeScoring[v&3]
		dst[i+1] = codeScoring[(v>>2)&3]
		dst[i+2] = codeScoring[(v>>4)&3]
		dst[i+3] = codeScoring[v>>6]
	}
	for i := n &^ 3; i < n; i++ {
		dst[i] = codeScoring[(packed[i>>2]>>uint((i&3)*2))&3]
	}
}

// UBlock holds the per-patient score contributions of a block of SNPs,
// row-major in one flat allocation: row r is U[r*Patients:(r+1)*Patients],
// the contributions of SNP SNPs[r]. It is the cached unit of the columnar
// Monte Carlo pipeline (Algorithm 3's RDD U, blocked).
type UBlock struct {
	Patients int
	SNPs     []int32
	U        []float64
}

// Rows returns the number of SNP rows in the block.
func (b *UBlock) Rows() int { return len(b.SNPs) }

// Row returns the contribution vector of row r.
func (b *UBlock) Row(r int) []float64 {
	return b.U[r*b.Patients : (r+1)*b.Patients]
}

// ApproxBytes estimates the block's resident size for cache accounting.
func (b UBlock) ApproxBytes() int64 {
	return 8*int64(len(b.U)) + 4*int64(len(b.SNPs)) + 96
}

// Scores computes the per-row marginal scores into out (grown as needed):
// with z nil each row sums to the observed U_j; otherwise the Monte Carlo
// replicate Ũ_j = Σ_i z_i U_ij — the whole block is one matrix–vector
// product. Summation runs in patient order per row, matching the boxed
// per-SNP loop bit for bit.
func (b *UBlock) Scores(z, out []float64) []float64 {
	rows := b.Rows()
	if cap(out) < rows {
		out = make([]float64, rows)
	}
	out = out[:rows]
	if z != nil && len(z) != b.Patients {
		panic(fmt.Sprintf("stats: %d Monte Carlo weights for %d patients", len(z), b.Patients))
	}
	n := b.Patients
	for r := 0; r < rows; r++ {
		row := b.U[r*n : (r+1)*n]
		var s float64
		if z == nil {
			for _, v := range row {
				s += v
			}
		} else {
			for i, v := range row {
				s += v * z[i]
			}
		}
		out[r] = s
	}
	return out
}

// Residualer is implemented by models whose contribution factorises as
// U_ij = G_ij · r_i for a SNP-invariant per-patient residual vector r — the
// Gaussian and Binomial families and their covariate-adjusted forms. The
// kernel exploits it to fuse dosage decode with accumulation; models without
// the factorisation (Cox, whose risk sets couple patients) take the
// decode-then-Contributions path instead.
type Residualer interface {
	// Residuals returns the per-patient residual vector; callers must not
	// mutate it.
	Residuals() []float64
}

// BlockKernel applies a score model to packed genotype blocks. A kernel is
// built once per partition (it owns a decode buffer) and used from a single
// goroutine; concurrent consumers build one kernel each, or share blocks via
// data.DecodePool.
type BlockKernel struct {
	model Model
	resid []float64 // non-nil selects the fused dosage×residual path
	dec   []data.Genotype
}

// NewBlockKernel builds a kernel for the model.
func NewBlockKernel(m Model) *BlockKernel {
	k := &BlockKernel{model: m, dec: make([]data.Genotype, m.Patients())}
	if r, ok := m.(Residualer); ok {
		k.resid = r.Residuals()
	}
	return k
}

// Model returns the kernel's score model.
func (k *BlockKernel) Model() Model { return k.model }

// Contributions computes the block's per-patient contributions: the columnar
// form of Algorithm 1 step 7. Allocations are flat per block (the SNP column
// copy and the contribution matrix) regardless of the patient count.
func (k *BlockKernel) Contributions(blk data.GenoBlock) UBlock {
	n := blk.Patients
	if n != k.model.Patients() {
		panic(fmt.Sprintf("stats: block for %d patients, model for %d", n, k.model.Patients()))
	}
	rows := blk.Rows()
	out := UBlock{
		Patients: n,
		SNPs:     append([]int32(nil), blk.SNPs...),
		U:        make([]float64, rows*n),
	}
	for r := 0; r < rows; r++ {
		u := out.U[r*n : (r+1)*n]
		if k.resid != nil {
			fusedDosageAccumulate(blk.Row(r), k.resid, u)
		} else {
			dec := k.dec[:n]
			DecodeDosageGenotypes(blk.Row(r), dec)
			k.model.Contributions(dec, u)
		}
	}
	return out
}

// Decode unpacks row r of the block into the kernel's owned buffer as
// scoring genotypes (missing -> 0). The buffer is valid until the next
// kernel call.
func (k *BlockKernel) Decode(blk data.GenoBlock, r int) []data.Genotype {
	dec := k.dec[:blk.Patients]
	DecodeDosageGenotypes(blk.Row(r), dec)
	return dec
}

// fusedDosageAccumulate is the fused inner loop: u[i] = dosage(code_i) · r_i
// straight off the packed bytes, four patients per byte, no intermediate
// genotype slice. The multiply matches float64(g_i)·r_i of the boxed path
// bit for bit, since the dosage table holds the same float64 values.
func fusedDosageAccumulate(packed []byte, resid, u []float64) {
	n := len(resid)
	i := 0
	for ; i+4 <= n; i += 4 {
		v := packed[i>>2]
		u[i] = codeDosage[v&3] * resid[i]
		u[i+1] = codeDosage[(v>>2)&3] * resid[i+1]
		u[i+2] = codeDosage[(v>>4)&3] * resid[i+2]
		u[i+3] = codeDosage[v>>6] * resid[i+3]
	}
	for ; i < n; i++ {
		u[i] = codeDosage[(packed[i>>2]>>uint((i&3)*2))&3] * resid[i]
	}
}
