package stats

import (
	"math"
	"testing"
)

func TestChiSquaredKnownQuantiles(t *testing.T) {
	cases := []struct {
		x    float64
		df   int
		want float64
		tol  float64
	}{
		{3.841458820694124, 1, 0.05, 1e-9},
		{6.634896601021213, 1, 0.01, 1e-9},
		{2.705543454095404, 1, 0.10, 1e-9},
		{10.827566170662733, 1, 0.001, 1e-9},
		{5.991464547107979, 2, 0.05, 1e-9},
		{7.814727903251179, 3, 0.05, 1e-9},
	}
	for _, c := range cases {
		got := ChiSquaredSurvival(c.x, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("P(chi2_%d > %.4f) = %.10f, want %.4f", c.df, c.x, got, c.want)
		}
	}
}

func TestChiSquaredDF2IsExponential(t *testing.T) {
	// For df = 2 the survival function is exactly exp(-x/2).
	for _, x := range []float64{0.1, 1, 2, 5, 10, 30} {
		got := ChiSquaredSurvival(x, 2)
		want := math.Exp(-x / 2)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("df=2 survival at %.1f: %.14f, want %.14f", x, got, want)
		}
	}
}

func TestChiSquaredBoundaries(t *testing.T) {
	if got := ChiSquaredSurvival(0, 1); got != 1 {
		t.Fatalf("survival at 0 = %v, want 1", got)
	}
	if got := ChiSquaredSurvival(-3, 1); got != 1 {
		t.Fatalf("survival at negative = %v, want 1", got)
	}
	if got := ChiSquaredSurvival(1e4, 1); got > 1e-100 {
		t.Fatalf("far tail = %v, want ~0", got)
	}
}

func TestChiSquaredMonotone(t *testing.T) {
	prev := 1.1
	for x := 0.0; x <= 20; x += 0.25 {
		p := ChiSquaredSurvival(x, 1)
		if p > prev+1e-12 {
			t.Fatalf("survival not monotone at x=%v: %v > %v", x, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("survival out of [0,1] at x=%v: %v", x, p)
		}
		prev = p
	}
}

func TestChiSquaredPanicsOnBadDF(t *testing.T) {
	assertPanics(t, "df=0", func() { ChiSquaredSurvival(1, 0) })
}
