// Baseline covariates: the clinical variables (age, sex, treatment arm, ...)
// the analysis adjusts for. The paper highlights covariate support as an
// advantage of the efficient score method and of Lin's Monte Carlo
// resampling in particular.
//
// Text format, one line per patient:
//
//	covariates: <patient>\t<v_1> <v_2> ... <v_p>

package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Covariates is an n×p matrix: Rows[i] holds patient i's covariate values.
// All rows have the same width; an intercept is NOT included (models add it).
type Covariates struct {
	Rows [][]float64
}

// Patients returns the number of patients (rows).
func (c *Covariates) Patients() int { return len(c.Rows) }

// Width returns the number of covariates per patient (0 if empty).
func (c *Covariates) Width() int {
	if len(c.Rows) == 0 {
		return 0
	}
	return len(c.Rows[0])
}

// Validate checks rectangular shape and finite values.
func (c *Covariates) Validate() error {
	w := c.Width()
	for i, row := range c.Rows {
		if len(row) != w {
			return fmt.Errorf("data: covariate row %d has %d values, want %d", i, len(row), w)
		}
		for j, v := range row {
			if v != v { // NaN
				return fmt.Errorf("data: covariate (%d,%d) is NaN", i, j)
			}
		}
	}
	return nil
}

// WriteCovariates writes c in the covariates text format.
func WriteCovariates(w io.Writer, c *Covariates) error {
	bw := bufio.NewWriter(w)
	var sb strings.Builder
	for i, row := range c.Rows {
		sb.Reset()
		sb.WriteString(strconv.Itoa(i))
		sb.WriteByte('\t')
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCovariates parses the covariates text format.
func ReadCovariates(r io.Reader) (*Covariates, error) {
	rows := map[int][]float64{}
	maxID := -1
	width := -1
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		idStr, rest, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("data: covariate line %d: missing tab", sc.lineNo)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("data: covariate line %d: bad patient id %q", sc.lineNo, idStr)
		}
		fields := strings.Fields(rest)
		vals := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil || v != v {
				return nil, fmt.Errorf("data: covariate line %d: bad value %q", sc.lineNo, f)
			}
			vals[j] = v
		}
		if width == -1 {
			width = len(vals)
		} else if len(vals) != width {
			return nil, fmt.Errorf("data: covariate line %d: %d values, want %d", sc.lineNo, len(vals), width)
		}
		if _, dup := rows[id]; dup {
			return nil, fmt.Errorf("data: duplicate covariates for patient %d", id)
		}
		rows[id] = vals
		if id > maxID {
			maxID = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: empty covariate file")
	}
	if len(rows) != maxID+1 {
		return nil, fmt.Errorf("data: %d covariate rows but max patient id is %d", len(rows), maxID)
	}
	c := &Covariates{Rows: make([][]float64, maxID+1)}
	for id, vals := range rows {
		c.Rows[id] = vals
	}
	return c, nil
}
