// Fuzzing the columnar text codec: AppendTextRow must never panic, must
// leave the block untouched when it rejects a row, and whatever it accepts
// must survive a WriteTextRow/AppendTextRow round trip bit for bit. Seed
// corpus under testdata/fuzz/FuzzGenoBlockTextRoundTrip; `make fuzz-smoke`
// gives the target a 10-second budget.

package data

import (
	"strings"
	"testing"
)

func FuzzGenoBlockTextRoundTrip(f *testing.F) {
	f.Add(4, "0 1 2 0")
	f.Add(3, "2 2 2")
	f.Add(2, "0 NA")
	f.Add(5, " 1\t0 2 1 0 ")
	f.Add(0, "")
	f.Add(1, "3")
	f.Add(2, "0 1 2") // surplus field
	f.Fuzz(func(t *testing.T, patients int, fields string) {
		// Bound the row width so the fuzzer explores codes, not allocations.
		if patients < 0 {
			patients = -patients
		}
		patients %= 512

		b := NewGenoBlock(patients, 1)
		if err := b.AppendTextRow(11, fields); err != nil {
			if b.Rows() != 0 || len(b.Packed) != 0 {
				t.Fatalf("rejected row left partial state: %d rows, %d packed bytes", b.Rows(), len(b.Packed))
			}
			return
		}
		if b.Rows() != 1 || len(b.Packed) != b.RowBytes {
			t.Fatalf("accepted row: %d rows, %d packed bytes, want 1 row of %d bytes", b.Rows(), len(b.Packed), b.RowBytes)
		}
		// Text input carries only {0,1,2}: the decode must never see missing.
		for i, g := range b.DecodeRow(0, nil) {
			if g < 0 || g > 2 {
				t.Fatalf("patient %d decoded to %d from text input %q", i, g, fields)
			}
		}
		// Round trip: rewrite the row as text and re-parse it.
		var sb strings.Builder
		b.WriteTextRow(0, &sb)
		line := strings.TrimSuffix(sb.String(), "\n")
		tab := strings.IndexByte(line, '\t')
		if tab < 0 {
			t.Fatalf("WriteTextRow produced no snp/genotype separator: %q", line)
		}
		b2 := NewGenoBlock(patients, 1)
		if err := b2.AppendTextRow(11, line[tab+1:]); err != nil {
			t.Fatalf("re-parsing written row %q: %v", line, err)
		}
		if string(b.Packed) != string(b2.Packed) {
			t.Fatalf("round trip changed packed bytes: %x -> %x (input %q)", b.Packed, b2.Packed, fields)
		}
		if b.Counts[0] != b2.Counts[0] || b.SNPs[0] != b2.SNPs[0] {
			t.Fatalf("round trip changed row summary: count %d->%d, snp %d->%d",
				b.Counts[0], b2.Counts[0], b.SNPs[0], b2.SNPs[0])
		}
	})
}
