// Package data defines SparkScore's input data model — genotype matrices,
// phenotypes, SNP weights, and SNP-sets — together with the tab-separated
// text formats the paper stores on HDFS (Algorithm 1 reads a "Genotype Matrix
// Text File", a "SNP Weight Text File", pairs of events and survival times,
// and SNP-set definitions).
//
// SNPs are indexed 0..J-1 and patients 0..n-1, mirroring the paper's
// "without loss of generality, we index the SNPs using the integers 1..J".
package data

import (
	"fmt"
	"sort"
)

// Genotype values are counts of the minor allele and therefore in {0, 1, 2}.
// int8 keeps a 1M-SNP × 1000-patient matrix under 1 GiB.
type Genotype = int8

// GenotypeMatrix is a SNP-major genotype matrix: Rows[j][i] is the genotype
// G_ij of patient i at SNP j. SNP-major layout matches the paper's RDD of
// (SNP, per-patient values) pairs and makes per-SNP score computation a
// sequential scan.
type GenotypeMatrix struct {
	Patients int
	Rows     [][]Genotype
}

// NewGenotypeMatrix allocates a matrix for the given shape with all genotypes
// zero, backed by a single allocation.
func NewGenotypeMatrix(snps, patients int) *GenotypeMatrix {
	backing := make([]Genotype, snps*patients)
	rows := make([][]Genotype, snps)
	for j := range rows {
		rows[j], backing = backing[:patients:patients], backing[patients:]
	}
	return &GenotypeMatrix{Patients: patients, Rows: rows}
}

// SNPs returns the number of SNPs (rows) in the matrix.
func (m *GenotypeMatrix) SNPs() int { return len(m.Rows) }

// Row returns the genotype vector for SNP j across all patients.
func (m *GenotypeMatrix) Row(j int) []Genotype { return m.Rows[j] }

// Validate checks that every row has the declared patient count and every
// genotype is in {0, 1, 2}.
func (m *GenotypeMatrix) Validate() error {
	for j, row := range m.Rows {
		if len(row) != m.Patients {
			return fmt.Errorf("data: SNP %d has %d genotypes, want %d", j, len(row), m.Patients)
		}
		for i, g := range row {
			if g < 0 || g > 2 {
				return fmt.Errorf("data: SNP %d patient %d has genotype %d outside {0,1,2}", j, i, g)
			}
		}
	}
	return nil
}

// Phenotype holds the outcome of interest for each patient. For the survival
// setting of the paper this is the pair (Y_i, Δ_i): Y is the observed time
// (death or last follow-up) and Event is the indicator (1 = death observed,
// 0 = censored). For quantitative (Gaussian) phenotypes only Y is used, and
// for binary (Binomial) phenotypes Y is 0/1.
type Phenotype struct {
	Y     []float64
	Event []uint8
}

// NewPhenotype allocates a phenotype for n patients.
func NewPhenotype(n int) *Phenotype {
	return &Phenotype{Y: make([]float64, n), Event: make([]uint8, n)}
}

// Patients returns the number of patients.
func (p *Phenotype) Patients() int { return len(p.Y) }

// Validate checks shape agreement and that event indicators are 0/1.
func (p *Phenotype) Validate() error {
	if len(p.Y) != len(p.Event) {
		return fmt.Errorf("data: %d outcomes but %d event indicators", len(p.Y), len(p.Event))
	}
	for i, e := range p.Event {
		if e > 1 {
			return fmt.Errorf("data: patient %d has event indicator %d outside {0,1}", i, e)
		}
	}
	return nil
}

// Permuted returns a new Phenotype whose (Y, Event) pairs are rearranged by
// perm: entry i of the result is the pair of patient perm[i]. This is the
// phenotype shuffle of the paper's permutation resampling, which keeps each
// patient's (time, indicator) pair intact while breaking the link to
// genotypes.
func (p *Phenotype) Permuted(perm []int) *Phenotype {
	q := NewPhenotype(len(p.Y))
	for i, src := range perm {
		q.Y[i] = p.Y[src]
		q.Event[i] = p.Event[src]
	}
	return q
}

// Weights holds the per-SNP weights ω_j used in the SKAT statistic. SNPs may
// be weighted by genotyping quality, allelic frequency, or functional
// annotation; the statistic uses ω_j².
type Weights []float64

// Validate checks that no weight is negative or NaN.
func (w Weights) Validate() error {
	for j, v := range w {
		if v < 0 || v != v {
			return fmt.Errorf("data: SNP %d has invalid weight %v", j, v)
		}
	}
	return nil
}

// SNPSet is one gene-level set I_k: a named non-empty collection of SNP
// indices whose marginal scores are aggregated into the set statistic S_k.
type SNPSet struct {
	Name string
	SNPs []int
}

// SNPSets is the partition {I_1, ..., I_K} of the analysed SNPs.
type SNPSets []SNPSet

// Validate checks that every set is non-empty and references only SNPs in
// [0, totalSNPs).
func (s SNPSets) Validate(totalSNPs int) error {
	for k, set := range s {
		if len(set.SNPs) == 0 {
			return fmt.Errorf("data: SNP-set %d (%q) is empty", k, set.Name)
		}
		for _, j := range set.SNPs {
			if j < 0 || j >= totalSNPs {
				return fmt.Errorf("data: SNP-set %d (%q) references SNP %d outside [0,%d)", k, set.Name, j, totalSNPs)
			}
		}
	}
	return nil
}

// Union returns the sorted union of all member SNPs, i.e. the paper's
// UnionSetSNPSets used to filter the genotype RDD before computing scores.
func (s SNPSets) Union() []int {
	seen := map[int]bool{}
	for _, set := range s {
		for _, j := range set.SNPs {
			seen[j] = true
		}
	}
	out := make([]int, 0, len(seen))
	for j := range seen {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// TotalMembers returns the sum of set sizes (counting duplicates across sets).
func (s SNPSets) TotalMembers() int {
	n := 0
	for _, set := range s {
		n += len(set.SNPs)
	}
	return n
}

// Dataset bundles the four inputs of Algorithm 1, plus optional baseline
// covariates for adjusted analyses.
type Dataset struct {
	Genotypes *GenotypeMatrix
	Phenotype *Phenotype
	Weights   Weights
	SNPSets   SNPSets

	// Covariates is optional; when present the score models adjust for it.
	Covariates *Covariates
}

// Validate cross-checks all components of the dataset.
func (d *Dataset) Validate() error {
	if err := d.Genotypes.Validate(); err != nil {
		return err
	}
	if err := d.Phenotype.Validate(); err != nil {
		return err
	}
	if d.Phenotype.Patients() != d.Genotypes.Patients {
		return fmt.Errorf("data: phenotype has %d patients, genotypes have %d",
			d.Phenotype.Patients(), d.Genotypes.Patients)
	}
	if err := d.Weights.Validate(); err != nil {
		return err
	}
	if len(d.Weights) != d.Genotypes.SNPs() {
		return fmt.Errorf("data: %d weights for %d SNPs", len(d.Weights), d.Genotypes.SNPs())
	}
	if d.Covariates != nil {
		if err := d.Covariates.Validate(); err != nil {
			return err
		}
		if d.Covariates.Patients() != d.Phenotype.Patients() {
			return fmt.Errorf("data: covariates for %d patients, phenotype has %d",
				d.Covariates.Patients(), d.Phenotype.Patients())
		}
	}
	return d.SNPSets.Validate(d.Genotypes.SNPs())
}
