// Text serialisation of the four input files of Algorithm 1. The formats are
// line-oriented and tab-separated so they can be split into HDFS-style blocks
// at line boundaries and parsed independently per partition:
//
//	genotypes: <snp>\t<g_1> <g_2> ... <g_n>
//	phenotype: <patient>\t<Y>\t<Delta>
//	weights:   <snp>\t<weight>
//	snpsets:   <name>\t<snp_1>,<snp_2>,...
package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteGenotypes writes m in the genotype text format.
func WriteGenotypes(w io.Writer, m *GenotypeMatrix) error {
	bw := bufio.NewWriter(w)
	var sb strings.Builder
	for j, row := range m.Rows {
		sb.Reset()
		sb.WriteString(strconv.Itoa(j))
		sb.WriteByte('\t')
		for i, g := range row {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.Itoa(int(g)))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGenotypes parses the genotype text format. Lines may arrive in any
// order (HDFS blocks are read in parallel); the SNP index on each line places
// the row.
func ReadGenotypes(r io.Reader) (*GenotypeMatrix, error) {
	type parsedRow struct {
		snp int
		gs  []Genotype
	}
	var rows []parsedRow
	maxSNP := -1
	patients := -1
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		snpStr, rest, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("data: genotype line %d: missing tab", sc.lineNo)
		}
		snp, err := strconv.Atoi(snpStr)
		if err != nil || snp < 0 {
			return nil, fmt.Errorf("data: genotype line %d: bad SNP id %q", sc.lineNo, snpStr)
		}
		fields := strings.Fields(rest)
		gs, err := ParseGenotypeFields(fields)
		if err != nil {
			return nil, fmt.Errorf("data: genotype line %d: %v", sc.lineNo, err)
		}
		if patients == -1 {
			patients = len(gs)
		} else if len(gs) != patients {
			return nil, fmt.Errorf("data: genotype line %d: %d genotypes, want %d", sc.lineNo, len(gs), patients)
		}
		if snp > maxSNP {
			maxSNP = snp
		}
		rows = append(rows, parsedRow{snp, gs})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: empty genotype file")
	}
	if len(rows) != maxSNP+1 {
		return nil, fmt.Errorf("data: %d genotype rows but max SNP id is %d", len(rows), maxSNP)
	}
	m := &GenotypeMatrix{Patients: patients, Rows: make([][]Genotype, maxSNP+1)}
	for _, pr := range rows {
		if m.Rows[pr.snp] != nil {
			return nil, fmt.Errorf("data: duplicate genotype row for SNP %d", pr.snp)
		}
		m.Rows[pr.snp] = pr.gs
	}
	return m, nil
}

// ParseGenotypeFields converts whitespace-split genotype tokens into values,
// validating the {0,1,2} domain. It is exported so engine partitions can
// parse lines without going through a full matrix read.
func ParseGenotypeFields(fields []string) ([]Genotype, error) {
	gs := make([]Genotype, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 || v > 2 {
			return nil, fmt.Errorf("field %d: bad genotype %q", i+1, f)
		}
		gs[i] = Genotype(v)
	}
	return gs, nil
}

// WritePhenotype writes p in the phenotype text format.
func WritePhenotype(w io.Writer, p *Phenotype) error {
	bw := bufio.NewWriter(w)
	for i := range p.Y {
		if _, err := fmt.Fprintf(bw, "%d\t%g\t%d\n", i, p.Y[i], p.Event[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPhenotype parses the phenotype text format.
func ReadPhenotype(r io.Reader) (*Phenotype, error) {
	type rec struct {
		y float64
		e uint8
	}
	recs := map[int]rec{}
	maxID := -1
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("data: phenotype line %d: want 3 fields, got %d", sc.lineNo, len(parts))
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil || id < 0 {
			return nil, fmt.Errorf("data: phenotype line %d: bad patient id %q", sc.lineNo, parts[0])
		}
		y, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("data: phenotype line %d: bad outcome %q", sc.lineNo, parts[1])
		}
		ev, err := strconv.Atoi(parts[2])
		if err != nil || ev < 0 || ev > 1 {
			return nil, fmt.Errorf("data: phenotype line %d: bad event indicator %q", sc.lineNo, parts[2])
		}
		if _, dup := recs[id]; dup {
			return nil, fmt.Errorf("data: duplicate phenotype for patient %d", id)
		}
		recs[id] = rec{y, uint8(ev)}
		if id > maxID {
			maxID = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("data: empty phenotype file")
	}
	if len(recs) != maxID+1 {
		return nil, fmt.Errorf("data: %d phenotype rows but max patient id is %d", len(recs), maxID)
	}
	p := NewPhenotype(maxID + 1)
	for id, r := range recs {
		p.Y[id] = r.y
		p.Event[id] = r.e
	}
	return p, nil
}

// WriteWeights writes w in the weight text format.
func WriteWeights(w io.Writer, ws Weights) error {
	bw := bufio.NewWriter(w)
	for j, v := range ws {
		if _, err := fmt.Fprintf(bw, "%d\t%g\n", j, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWeights parses the weight text format.
func ReadWeights(r io.Reader) (Weights, error) {
	vals := map[int]float64{}
	maxID := -1
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		idStr, vStr, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("data: weight line %d: missing tab", sc.lineNo)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("data: weight line %d: bad SNP id %q", sc.lineNo, idStr)
		}
		v, err := strconv.ParseFloat(vStr, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("data: weight line %d: bad weight %q", sc.lineNo, vStr)
		}
		if _, dup := vals[id]; dup {
			return nil, fmt.Errorf("data: duplicate weight for SNP %d", id)
		}
		vals[id] = v
		if id > maxID {
			maxID = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("data: empty weight file")
	}
	if len(vals) != maxID+1 {
		return nil, fmt.Errorf("data: %d weights but max SNP id is %d", len(vals), maxID)
	}
	w := make(Weights, maxID+1)
	for id, v := range vals {
		w[id] = v
	}
	return w, nil
}

// WriteSNPSets writes s in the SNP-set text format.
func WriteSNPSets(w io.Writer, s SNPSets) error {
	bw := bufio.NewWriter(w)
	var sb strings.Builder
	for _, set := range s {
		sb.Reset()
		sb.WriteString(set.Name)
		sb.WriteByte('\t')
		for i, j := range set.SNPs {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(j))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSNPSets parses the SNP-set text format.
func ReadSNPSets(r io.Reader) (SNPSets, error) {
	var sets SNPSets
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		name, rest, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("data: snpset line %d: missing tab", sc.lineNo)
		}
		tokens := strings.Split(rest, ",")
		snps := make([]int, 0, len(tokens))
		for _, tok := range tokens {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			j, err := strconv.Atoi(tok)
			if err != nil || j < 0 {
				return nil, fmt.Errorf("data: snpset line %d: bad SNP id %q", sc.lineNo, tok)
			}
			snps = append(snps, j)
		}
		if len(snps) == 0 {
			return nil, fmt.Errorf("data: snpset line %d: set %q is empty", sc.lineNo, name)
		}
		sets = append(sets, SNPSet{Name: name, SNPs: snps})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("data: empty SNP-set file")
	}
	return sets, nil
}

// lineScanner wraps bufio.Scanner with line counting and a buffer large
// enough for million-patient genotype rows.
type lineScanner struct {
	*bufio.Scanner
	lineNo int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	return &lineScanner{Scanner: sc}
}

func (s *lineScanner) Scan() bool {
	ok := s.Scanner.Scan()
	if ok {
		s.lineNo++
	}
	return ok
}
