package data

import (
	"strings"
	"testing"
)

func TestGenoBlockRoundTrip(t *testing.T) {
	for _, patients := range []int{1, 3, 4, 7, 8, 17} {
		b := NewGenoBlock(patients, 4)
		rows := [][]Genotype{
			make([]Genotype, patients),
			make([]Genotype, patients),
			make([]Genotype, patients),
		}
		for r := range rows {
			for i := range rows[r] {
				rows[r][i] = Genotype((r + i) % 3)
			}
		}
		rows[2][0] = MissingGenotype
		for r, g := range rows {
			if err := b.AppendRow(100+r, g); err != nil {
				t.Fatalf("patients=%d row %d: %v", patients, r, err)
			}
		}
		if b.Rows() != 3 {
			t.Fatalf("Rows = %d", b.Rows())
		}
		var dec []Genotype
		for r, want := range rows {
			dec = b.DecodeRow(r, dec)
			if len(dec) != patients {
				t.Fatalf("decode length %d, want %d", len(dec), patients)
			}
			for i := range want {
				if dec[i] != want[i] {
					t.Fatalf("patients=%d row %d patient %d: decoded %d, want %d",
						patients, r, i, dec[i], want[i])
				}
			}
			var wantCount int32
			for _, v := range want {
				if v > 0 {
					wantCount += int32(v)
				}
			}
			if b.Counts[r] != wantCount {
				t.Fatalf("row %d allele count %d, want %d", r, b.Counts[r], wantCount)
			}
			if b.SNPs[r] != int32(100+r) {
				t.Fatalf("row %d snp %d, want %d", r, b.SNPs[r], 100+r)
			}
		}
	}
}

func TestGenoBlockAppendRowRejectsBadInput(t *testing.T) {
	b := NewGenoBlock(3, 1)
	if err := b.AppendRow(0, []Genotype{0, 1}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := b.AppendRow(0, []Genotype{0, 1, 3}); err == nil {
		t.Fatal("genotype 3 accepted")
	}
	if b.Rows() != 0 || len(b.Packed) != 0 {
		t.Fatalf("failed appends left state behind: %d rows, %d packed bytes", b.Rows(), len(b.Packed))
	}
}

func TestGenoBlockTextCodec(t *testing.T) {
	b := NewGenoBlock(5, 2)
	if err := b.AppendTextRow(7, "0 1 2 0 1"); err != nil {
		t.Fatal(err)
	}
	// Trailing and repeated whitespace must parse like strings.Fields.
	if err := b.AppendTextRow(8, " 2  0 1 0 2\t "); err != nil {
		t.Fatal(err)
	}
	want := [][]Genotype{{0, 1, 2, 0, 1}, {2, 0, 1, 0, 2}}
	var dec []Genotype
	for r := range want {
		dec = b.DecodeRow(r, dec)
		for i := range want[r] {
			if dec[i] != want[r][i] {
				t.Fatalf("row %d patient %d: %d, want %d", r, i, dec[i], want[r][i])
			}
		}
	}

	var sb strings.Builder
	b.WriteTextRow(0, &sb)
	if got := sb.String(); got != "7\t0 1 2 0 1\n" {
		t.Fatalf("WriteTextRow = %q", got)
	}

	if err := b.AppendTextRow(9, "0 1 2 0"); err == nil || !strings.Contains(err.Error(), "4 genotypes, want 5") {
		t.Fatalf("short row error = %v", err)
	}
	if err := b.AppendTextRow(9, "0 1 2 0 1 1"); err == nil || !strings.Contains(err.Error(), "want 5") {
		t.Fatalf("long row error = %v", err)
	}
	if err := b.AppendTextRow(9, "0 1 x 0 1"); err == nil || !strings.Contains(err.Error(), "field 3: bad genotype \"x\"") {
		t.Fatalf("bad genotype error = %v", err)
	}
	if b.Rows() != 2 {
		t.Fatalf("failed parses appended rows: %d", b.Rows())
	}
}

func TestPackUnpackGenotypes(t *testing.T) {
	g := []Genotype{0, 1, 2, MissingGenotype, 2, 2, 0}
	packed := make([]byte, BlockRowBytes(len(g)))
	if err := PackGenotypes(g, packed); err != nil {
		t.Fatal(err)
	}
	out := make([]Genotype, len(g))
	UnpackGenotypes(packed, out)
	for i := range g {
		if out[i] != g[i] {
			t.Fatalf("patient %d: %d, want %d", i, out[i], g[i])
		}
	}
	if err := PackGenotypes([]Genotype{5}, make([]byte, 1)); err == nil {
		t.Fatal("genotype 5 packed")
	}
}

func TestBoxedRowBytesUsesSizeClasses(t *testing.T) {
	// 1000 genotypes allocate a 1024-byte class; plus SNP id and slice header.
	if got := BoxedRowBytes(1000); got != 1024+32 {
		t.Fatalf("BoxedRowBytes(1000) = %d, want %d", got, 1024+32)
	}
	if got := BoxedRowBytes(33000); got != 40960+32 {
		t.Fatalf("BoxedRowBytes(33000) = %d, want %d", got, 40960+32)
	}
}

func TestDecodePool(t *testing.T) {
	p := NewDecodePool(6)
	buf := p.Get()
	if len(buf) != 6 {
		t.Fatalf("pool buffer length %d", len(buf))
	}
	p.Put(buf)
	p.Put(make([]Genotype, 2)) // undersized buffers are dropped
	if got := p.Get(); len(got) != 6 {
		t.Fatalf("recycled buffer length %d", len(got))
	}
}
