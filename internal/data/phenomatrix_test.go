package data

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func buildPhenoMatrix(t *testing.T, patients int, rows [][]float64) *PhenoMatrix {
	t.Helper()
	m := NewPhenoMatrix(patients, len(rows))
	for id, vals := range rows {
		if err := m.AppendRow(id, vals); err != nil {
			t.Fatalf("AppendRow(%d): %v", id, err)
		}
	}
	return &m
}

func TestPhenoMatrixRoundTrip(t *testing.T) {
	m := buildPhenoMatrix(t, 3, [][]float64{
		{0.5, -1.25, 3e-17},
		{math.Pi, -0.0, 12345.678901234567},
		{1, 2, 3},
	})
	var buf bytes.Buffer
	if err := WritePhenoMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPhenoMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Patients != m.Patients || got.Rows() != m.Rows() {
		t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
			m.Rows(), m.Patients, got.Rows(), got.Patients)
	}
	for i := range m.Values {
		if math.Float64bits(got.Values[i]) != math.Float64bits(m.Values[i]) {
			t.Fatalf("value %d changed: %v -> %v", i, m.Values[i], got.Values[i])
		}
	}
}

func TestPhenoMatrixReadAnyOrder(t *testing.T) {
	in := "2\t5 6\n0\t1 2\n1\t3 4\n"
	m, err := ReadPhenoMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4, 5, 6}
	for i, v := range want {
		if m.Values[i] != v {
			t.Fatalf("Values[%d] = %v, want %v", i, m.Values[i], v)
		}
	}
}

func TestPhenoMatrixReadErrors(t *testing.T) {
	cases := map[string]string{
		"missing tab":  "0 1 2\n",
		"bad id":       "x\t1 2\n",
		"bad value":    "0\t1 nope\n",
		"nan":          "0\tNaN 2\n",
		"inf":          "0\t+Inf 2\n",
		"ragged":       "0\t1 2\n1\t3\n",
		"duplicate":    "0\t1 2\n0\t3 4\n",
		"sparse ids":   "0\t1 2\n2\t3 4\n",
		"empty matrix": "\n",
	}
	for name, in := range cases {
		if _, err := ReadPhenoMatrix(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadPhenoMatrix accepted %q", name, in)
		}
	}
}

func TestPhenoMatrixAppendRejects(t *testing.T) {
	m := NewPhenoMatrix(2, 1)
	if err := m.AppendRow(0, []float64{1}); err == nil {
		t.Fatal("AppendRow accepted a short row")
	}
	if err := m.AppendRow(0, []float64{1, math.NaN()}); err == nil {
		t.Fatal("AppendRow accepted NaN")
	}
	if err := m.AppendTextRow(0, "1 2 3"); err == nil {
		t.Fatal("AppendTextRow accepted a surplus field")
	}
	if m.Rows() != 0 || len(m.Values) != 0 {
		t.Fatalf("rejected rows left state: %d rows, %d values", m.Rows(), len(m.Values))
	}
}

func TestPhenoMatrixPhenotypeView(t *testing.T) {
	m := buildPhenoMatrix(t, 2, [][]float64{{1, 2}, {3, 4}})
	ph := m.Phenotype(1)
	if ph.Patients() != 2 || ph.Y[0] != 3 || ph.Y[1] != 4 {
		t.Fatalf("Phenotype(1) = %+v", ph)
	}
	if len(ph.Event) != 2 || ph.Event[0] != 0 {
		t.Fatalf("Phenotype(1).Event = %v, want all-zero of length 2", ph.Event)
	}
}

func TestPhenoMatrixApproxBytes(t *testing.T) {
	m := buildPhenoMatrix(t, 4, [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}})
	if got, want := m.ApproxBytes(), int64(8*8+4*2+96); got != want {
		t.Fatalf("ApproxBytes = %d, want %d", got, want)
	}
}
