// Fuzzing the phenotype-matrix text codec, mirroring the GenoBlock target:
// AppendTextRow must never panic, must leave the matrix untouched when it
// rejects a row, and whatever it accepts must survive a
// WriteTextRow/AppendTextRow round trip bit for bit (shortest-round-trip
// float formatting makes that exact). Seed corpus under
// testdata/fuzz/FuzzPhenoMatrixRoundTrip; `make fuzz-smoke` gives the target
// a 10-second budget.

package data

import (
	"math"
	"strings"
	"testing"
)

func FuzzPhenoMatrixRoundTrip(f *testing.F) {
	f.Add(3, "0.5 -1.25 3e-17")
	f.Add(2, "1 2")
	f.Add(2, " -0\t1e308 ")
	f.Add(0, "")
	f.Add(1, "NaN")
	f.Add(1, "+Inf")
	f.Add(2, "1 2 3") // surplus field
	f.Add(2, "1")     // short row
	f.Fuzz(func(t *testing.T, patients int, fields string) {
		// Bound the row width so the fuzzer explores values, not allocations.
		if patients < 0 {
			patients = -patients
		}
		patients %= 512

		m := NewPhenoMatrix(patients, 1)
		if err := m.AppendTextRow(7, fields); err != nil {
			if m.Rows() != 0 || len(m.Values) != 0 {
				t.Fatalf("rejected row left partial state: %d rows, %d values", m.Rows(), len(m.Values))
			}
			return
		}
		if m.Rows() != 1 || len(m.Values) != patients {
			t.Fatalf("accepted row: %d rows, %d values, want 1 row of %d", m.Rows(), len(m.Values), patients)
		}
		for i, v := range m.Row(0) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("patient %d parsed to non-finite %v from %q", i, v, fields)
			}
		}
		// Round trip: rewrite the row as text and re-parse it.
		var sb strings.Builder
		m.WriteTextRow(0, &sb)
		line := strings.TrimSuffix(sb.String(), "\n")
		tab := strings.IndexByte(line, '\t')
		if tab < 0 {
			t.Fatalf("WriteTextRow produced no id/value separator: %q", line)
		}
		m2 := NewPhenoMatrix(patients, 1)
		if err := m2.AppendTextRow(7, line[tab+1:]); err != nil {
			t.Fatalf("re-parsing written row %q: %v", line, err)
		}
		for i := range m.Values {
			if math.Float64bits(m.Values[i]) != math.Float64bits(m2.Values[i]) {
				t.Fatalf("round trip changed value %d: %v -> %v (input %q)",
					i, m.Values[i], m2.Values[i], fields)
			}
		}
		if m.IDs[0] != m2.IDs[0] {
			t.Fatalf("round trip changed id: %d -> %d", m.IDs[0], m2.IDs[0])
		}
	})
}
