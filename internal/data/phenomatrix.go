// PhenoMatrix: the expression-phenotype unit of the all-pairs association
// engine. A matrix holds M phenotype rows (one expression trait per row,
// phenotype-major, mirroring the SNP-major genotype layout) over a fixed
// patient cohort, in one flat float64 allocation. Its text format follows the
// genotype file's line discipline so it can be split into HDFS-style blocks
// at line boundaries and parsed independently per partition:
//
//	phenomatrix: <pheno>\t<y_1> <y_2> ... <y_n>
//
// Values are written with strconv's shortest round-trip formatting, so a
// write/parse cycle reproduces every float bit for bit; non-finite values are
// rejected on both paths (NaN would break the round-trip property and the
// score models alike).
package data

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PhenoMatrix is a phenotype-major matrix of quantitative outcomes: row r
// holds phenotype IDs[r]'s value for every patient.
type PhenoMatrix struct {
	// Patients is the number of values per row.
	Patients int
	// IDs holds the phenotype id of each row, in row order.
	IDs []int32
	// Values holds the rows back to back: row r is
	// Values[r*Patients : (r+1)*Patients].
	Values []float64
}

// NewPhenoMatrix returns an empty matrix for the given patient count with
// capacity for capRows rows.
func NewPhenoMatrix(patients, capRows int) PhenoMatrix {
	return PhenoMatrix{
		Patients: patients,
		IDs:      make([]int32, 0, capRows),
		Values:   make([]float64, 0, capRows*patients),
	}
}

// Rows returns the number of phenotype rows.
func (m *PhenoMatrix) Rows() int { return len(m.IDs) }

// Row returns the values of row r.
func (m *PhenoMatrix) Row(r int) []float64 {
	return m.Values[r*m.Patients : (r+1)*m.Patients]
}

// Phenotype wraps row r as a *Phenotype for the score-model constructors.
// The Y slice is shared with the matrix; callers must not mutate it. The
// event column is all-zero — the Gaussian and Binomial families the all-pairs
// engine supports never read it.
func (m *PhenoMatrix) Phenotype(r int) *Phenotype {
	return &Phenotype{Y: m.Row(r), Event: make([]uint8, m.Patients)}
}

// AppendRow appends one phenotype row. Values must be finite.
func (m *PhenoMatrix) AppendRow(id int, vals []float64) error {
	if len(vals) != m.Patients {
		return fmt.Errorf("data: phenotype %d has %d values, want %d", id, len(vals), m.Patients)
	}
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("data: phenotype %d patient %d has non-finite value %v", id, i, v)
		}
	}
	m.IDs = append(m.IDs, int32(id))
	m.Values = append(m.Values, vals...)
	return nil
}

// AppendTextRow parses one row's value fields ("y_1 y_2 ... y_n",
// whitespace-separated finite floats) directly into the matrix — the text
// codec of the all-pairs ingest. A rejected row leaves the matrix untouched;
// errors name the offending 1-based field.
func (m *PhenoMatrix) AppendTextRow(id int, fields string) error {
	base := len(m.Values)
	i := 0
	for f, rest := nextField(fields); f != ""; f, rest = nextField(rest) {
		if i >= m.Patients {
			i++
			continue // count the surplus for the error below
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			m.Values = m.Values[:base]
			return fmt.Errorf("data: field %d: bad value %q", i+1, f)
		}
		m.Values = append(m.Values, v)
		i++
	}
	if i != m.Patients {
		m.Values = m.Values[:base]
		return fmt.Errorf("data: %d values, want %d", i, m.Patients)
	}
	m.IDs = append(m.IDs, int32(id))
	return nil
}

// WriteTextRow appends row r in the phenotype-matrix text format
// ("pheno\ty1 y2 ...") to sb, using shortest-round-trip float formatting.
func (m *PhenoMatrix) WriteTextRow(r int, sb *strings.Builder) {
	sb.WriteString(strconv.Itoa(int(m.IDs[r])))
	sb.WriteByte('\t')
	row := m.Row(r)
	for i, v := range row {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	sb.WriteByte('\n')
}

// ApproxBytes estimates the matrix's resident size for cache accounting.
func (m PhenoMatrix) ApproxBytes() int64 {
	return 8*int64(len(m.Values)) + 4*int64(len(m.IDs)) + 96
}

// WritePhenoMatrix writes m in the phenotype-matrix text format.
func WritePhenoMatrix(w io.Writer, m *PhenoMatrix) error {
	bw := bufio.NewWriter(w)
	var sb strings.Builder
	for r := 0; r < m.Rows(); r++ {
		sb.Reset()
		m.WriteTextRow(r, &sb)
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPhenoMatrix parses the phenotype-matrix text format. Lines may arrive
// in any order; the phenotype id on each line places the row, and ids must be
// dense 0..M-1.
func ReadPhenoMatrix(r io.Reader) (*PhenoMatrix, error) {
	type parsedRow struct {
		id   int
		vals []float64
	}
	var rows []parsedRow
	maxID := -1
	patients := -1
	sc := newLineScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		idStr, rest, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("data: phenomatrix line %d: missing tab", sc.lineNo)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("data: phenomatrix line %d: bad phenotype id %q", sc.lineNo, idStr)
		}
		fields := strings.Fields(rest)
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("data: phenomatrix line %d: field %d: bad value %q", sc.lineNo, i+1, f)
			}
			vals[i] = v
		}
		if patients == -1 {
			patients = len(vals)
		} else if len(vals) != patients {
			return nil, fmt.Errorf("data: phenomatrix line %d: %d values, want %d", sc.lineNo, len(vals), patients)
		}
		if id > maxID {
			maxID = id
		}
		rows = append(rows, parsedRow{id, vals})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: empty phenotype matrix")
	}
	if len(rows) != maxID+1 {
		return nil, fmt.Errorf("data: %d phenotype rows but max phenotype id is %d", len(rows), maxID)
	}
	m := NewPhenoMatrix(patients, maxID+1)
	m.Values = m.Values[:(maxID+1)*patients]
	m.IDs = m.IDs[:maxID+1]
	seen := make([]bool, maxID+1)
	for _, pr := range rows {
		if seen[pr.id] {
			return nil, fmt.Errorf("data: duplicate phenotype row for id %d", pr.id)
		}
		seen[pr.id] = true
		m.IDs[pr.id] = int32(pr.id)
		copy(m.Values[pr.id*patients:(pr.id+1)*patients], pr.vals)
	}
	return &m, nil
}
