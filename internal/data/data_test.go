package data

import (
	"testing"
)

func sampleMatrix() *GenotypeMatrix {
	m := NewGenotypeMatrix(3, 4)
	copy(m.Rows[0], []Genotype{0, 1, 2, 0})
	copy(m.Rows[1], []Genotype{2, 2, 1, 0})
	copy(m.Rows[2], []Genotype{0, 0, 0, 1})
	return m
}

func TestNewGenotypeMatrixShape(t *testing.T) {
	m := NewGenotypeMatrix(5, 7)
	if m.SNPs() != 5 || m.Patients != 7 {
		t.Fatalf("shape = (%d,%d), want (5,7)", m.SNPs(), m.Patients)
	}
	for j := 0; j < 5; j++ {
		if len(m.Row(j)) != 7 {
			t.Fatalf("row %d has length %d", j, len(m.Row(j)))
		}
	}
}

func TestGenotypeMatrixRowsIndependent(t *testing.T) {
	m := NewGenotypeMatrix(2, 3)
	m.Rows[0] = append(m.Rows[0], 9) // exceed capacity of shared backing? must not touch row 1
	m.Rows[1][0] = 2
	if m.Rows[0][0] != 0 {
		t.Fatal("row append corrupted row 0")
	}
	if m.Rows[1][0] != 2 {
		t.Fatal("row 1 write lost")
	}
}

func TestGenotypeMatrixValidate(t *testing.T) {
	m := sampleMatrix()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	m.Rows[1][2] = 3
	if err := m.Validate(); err == nil {
		t.Fatal("genotype 3 accepted")
	}
	m = sampleMatrix()
	m.Rows[0] = m.Rows[0][:2]
	if err := m.Validate(); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestPhenotypeValidate(t *testing.T) {
	p := NewPhenotype(3)
	p.Y = []float64{1, 2, 3}
	p.Event = []uint8{1, 0, 1}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid phenotype rejected: %v", err)
	}
	p.Event[1] = 2
	if err := p.Validate(); err == nil {
		t.Fatal("event indicator 2 accepted")
	}
	p.Event = p.Event[:2]
	if err := p.Validate(); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestPhenotypePermuted(t *testing.T) {
	p := &Phenotype{Y: []float64{10, 20, 30}, Event: []uint8{1, 0, 1}}
	q := p.Permuted([]int{2, 0, 1})
	if q.Y[0] != 30 || q.Event[0] != 1 {
		t.Fatalf("entry 0 = (%v,%d), want (30,1)", q.Y[0], q.Event[0])
	}
	if q.Y[1] != 10 || q.Event[1] != 1 {
		t.Fatalf("entry 1 = (%v,%d), want (10,1)", q.Y[1], q.Event[1])
	}
	if q.Y[2] != 20 || q.Event[2] != 0 {
		t.Fatalf("entry 2 = (%v,%d), want (20,0)", q.Y[2], q.Event[2])
	}
	// Original must be untouched.
	if p.Y[0] != 10 || p.Event[1] != 0 {
		t.Fatal("Permuted mutated the original")
	}
}

func TestWeightsValidate(t *testing.T) {
	if err := (Weights{1, 0.5, 0}).Validate(); err != nil {
		t.Fatalf("valid weights rejected: %v", err)
	}
	if err := (Weights{1, -0.5}).Validate(); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestSNPSetsValidate(t *testing.T) {
	s := SNPSets{{Name: "g1", SNPs: []int{0, 2}}, {Name: "g2", SNPs: []int{1}}}
	if err := s.Validate(3); err != nil {
		t.Fatalf("valid sets rejected: %v", err)
	}
	if err := s.Validate(2); err == nil {
		t.Fatal("out-of-range SNP accepted")
	}
	s = append(s, SNPSet{Name: "empty"})
	if err := s.Validate(3); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestSNPSetsUnion(t *testing.T) {
	s := SNPSets{{Name: "a", SNPs: []int{3, 1}}, {Name: "b", SNPs: []int{1, 5}}}
	got := s.Union()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
	if s.TotalMembers() != 4 {
		t.Fatalf("TotalMembers = %d, want 4", s.TotalMembers())
	}
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{
		Genotypes: sampleMatrix(),
		Phenotype: &Phenotype{Y: []float64{1, 2, 3, 4}, Event: []uint8{1, 1, 0, 1}},
		Weights:   Weights{1, 1, 1},
		SNPSets:   SNPSets{{Name: "g", SNPs: []int{0, 1, 2}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	d.Weights = Weights{1, 1}
	if err := d.Validate(); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	d.Weights = Weights{1, 1, 1}
	d.Phenotype = &Phenotype{Y: []float64{1, 2}, Event: []uint8{1, 0}}
	if err := d.Validate(); err == nil {
		t.Fatal("patient count mismatch accepted")
	}
}

func TestCovariatesValidate(t *testing.T) {
	c := &Covariates{Rows: [][]float64{{1, 2}, {3, 4}}}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid covariates rejected: %v", err)
	}
	if c.Patients() != 2 || c.Width() != 2 {
		t.Fatalf("shape (%d,%d)", c.Patients(), c.Width())
	}
	c.Rows[1] = []float64{3}
	if err := c.Validate(); err == nil {
		t.Fatal("ragged covariates accepted")
	}
	c.Rows[1] = []float64{3, nan()}
	if err := c.Validate(); err == nil {
		t.Fatal("NaN covariate accepted")
	}
}

func nan() float64 {
	v := 0.0
	return v / v
}

func TestDatasetValidateCovariates(t *testing.T) {
	d := &Dataset{
		Genotypes:  sampleMatrix(),
		Phenotype:  &Phenotype{Y: []float64{1, 2, 3, 4}, Event: []uint8{1, 1, 0, 1}},
		Weights:    Weights{1, 1, 1},
		SNPSets:    SNPSets{{Name: "g", SNPs: []int{0, 1, 2}}},
		Covariates: &Covariates{Rows: [][]float64{{1}, {2}, {3}, {4}}},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("dataset with covariates rejected: %v", err)
	}
	d.Covariates = &Covariates{Rows: [][]float64{{1}, {2}}}
	if err := d.Validate(); err == nil {
		t.Fatal("covariate patient-count mismatch accepted")
	}
}
