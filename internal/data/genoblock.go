// GenoBlock: the engine's columnar genotype unit. A block holds N SNP rows
// 2-bit packed in PLINK-BED code order (4 genotypes per byte, little-endian
// lanes: patient i lives in byte i/4, bits 2*(i%4)..2*(i%4)+1), alongside the
// SNP ids and per-row minor-allele counts. Packing a 1000-patient row costs
// 250 bytes instead of the ~1 KiB boxed []Genotype slice, so four times as
// many cached genotype partitions fit per executor, and score kernels can
// decode dosages straight out of the packed bytes in one pass.
//
// The 2-bit codes follow the PLINK .bed convention:
//
//	code 00 -> 2 (homozygous minor)
//	code 01 -> missing
//	code 10 -> 1 (heterozygous)
//	code 11 -> 0 (homozygous major)
package data

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// MissingGenotype marks an uncalled genotype. It never appears in the text
// formats (which only carry {0,1,2}) but is representable in packed blocks,
// as in PLINK .bed files; score kernels treat it as dosage zero.
const MissingGenotype Genotype = -1

// CodeGenotypes maps each 2-bit PLINK-BED code to its genotype value.
var CodeGenotypes = [4]Genotype{2, MissingGenotype, 1, 0}

// genoCodes maps genotype value +1 (so MissingGenotype indexes 0) to its
// 2-bit code.
var genoCodes = [4]byte{1, 3, 2, 0}

// BlockRowBytes returns the packed size of one SNP row: 4 genotypes per byte.
func BlockRowBytes(patients int) int { return (patients + 3) / 4 }

// GenoBlock is a columnar block of packed genotype rows. Blocks are the
// cache and shuffle unit of the columnar engine: one block replaces up to a
// few hundred boxed rows.
type GenoBlock struct {
	// Patients is the number of genotypes per row.
	Patients int
	// RowBytes is BlockRowBytes(Patients), kept so row slicing needs no
	// division.
	RowBytes int
	// SNPs holds the SNP id of each row, in row order.
	SNPs []int32
	// Counts holds each row's minor-allele count (missing excluded) — the
	// per-row summary MAF-style weighting and QC filters read without a
	// decode.
	Counts []int32
	// Packed holds the rows back to back: row r is
	// Packed[r*RowBytes : (r+1)*RowBytes].
	Packed []byte
}

// NewGenoBlock returns an empty block for the given patient count with
// capacity for capRows rows.
func NewGenoBlock(patients, capRows int) GenoBlock {
	rb := BlockRowBytes(patients)
	return GenoBlock{
		Patients: patients,
		RowBytes: rb,
		SNPs:     make([]int32, 0, capRows),
		Counts:   make([]int32, 0, capRows),
		Packed:   make([]byte, 0, capRows*rb),
	}
}

// Rows returns the number of SNP rows in the block.
func (b *GenoBlock) Rows() int { return len(b.SNPs) }

// Row returns the packed bytes of row r.
func (b *GenoBlock) Row(r int) []byte {
	return b.Packed[r*b.RowBytes : (r+1)*b.RowBytes]
}

// AppendRow packs one SNP row onto the block. Genotypes must be in
// {MissingGenotype, 0, 1, 2}.
func (b *GenoBlock) AppendRow(snp int, g []Genotype) error {
	if len(g) != b.Patients {
		return fmt.Errorf("data: SNP %d has %d genotypes, want %d", snp, len(g), b.Patients)
	}
	base := len(b.Packed)
	b.Packed = append(b.Packed, make([]byte, b.RowBytes)...)
	row := b.Packed[base:]
	var count int32
	for i, v := range g {
		if v < MissingGenotype || v > 2 {
			b.Packed = b.Packed[:base]
			return fmt.Errorf("data: SNP %d patient %d has genotype %d outside {missing,0,1,2}", snp, i, v)
		}
		row[i>>2] |= genoCodes[v+1] << uint((i&3)*2)
		if v > 0 {
			count += int32(v)
		}
	}
	b.SNPs = append(b.SNPs, int32(snp))
	b.Counts = append(b.Counts, count)
	return nil
}

// AppendTextRow parses one row's genotype fields ("g_1 g_2 ... g_n",
// whitespace-separated, values in {0,1,2}) directly into packed form — the
// text codec of the columnar parse path, which never materialises a boxed
// []Genotype row. Errors name the offending 1-based field.
func (b *GenoBlock) AppendTextRow(snp int, fields string) error {
	base := len(b.Packed)
	b.Packed = append(b.Packed, make([]byte, b.RowBytes)...)
	row := b.Packed[base:]
	var count int32
	i := 0
	for f, rest := nextField(fields); f != ""; f, rest = nextField(rest) {
		if i >= b.Patients {
			i++
			continue // count the surplus for the error below
		}
		var v Genotype
		switch f {
		case "0":
			v = 0
		case "1":
			v = 1
		case "2":
			v = 2
		default:
			b.Packed = b.Packed[:base]
			return fmt.Errorf("data: field %d: bad genotype %q", i+1, f)
		}
		row[i>>2] |= genoCodes[v+1] << uint((i&3)*2)
		count += int32(v)
		i++
	}
	if i != b.Patients {
		b.Packed = b.Packed[:base]
		return fmt.Errorf("data: %d genotypes, want %d", i, b.Patients)
	}
	b.SNPs = append(b.SNPs, int32(snp))
	b.Counts = append(b.Counts, count)
	return nil
}

// nextField splits the next whitespace-separated token off s, mirroring
// strings.Fields one token at a time without allocating the field slice.
func nextField(s string) (field, rest string) {
	start := 0
	for start < len(s) && (s[start] == ' ' || s[start] == '\t') {
		start++
	}
	end := start
	for end < len(s) && s[end] != ' ' && s[end] != '\t' {
		end++
	}
	return s[start:end], s[end:]
}

// DecodeRow decodes row r into dst (grown as needed), faithfully mapping the
// 01 code to MissingGenotype. It returns the decoded slice of length
// Patients.
func (b *GenoBlock) DecodeRow(r int, dst []Genotype) []Genotype {
	if cap(dst) < b.Patients {
		dst = make([]Genotype, b.Patients)
	}
	dst = dst[:b.Patients]
	UnpackGenotypes(b.Row(r), dst)
	return dst
}

// UnpackGenotypes decodes packed 2-bit codes into dst; len(dst) genotypes
// are read. Missing decodes to MissingGenotype.
func UnpackGenotypes(packed []byte, dst []Genotype) {
	n := len(dst)
	for i := 0; i+4 <= n; i += 4 {
		v := packed[i>>2]
		dst[i] = CodeGenotypes[v&3]
		dst[i+1] = CodeGenotypes[(v>>2)&3]
		dst[i+2] = CodeGenotypes[(v>>4)&3]
		dst[i+3] = CodeGenotypes[v>>6]
	}
	for i := n &^ 3; i < n; i++ {
		dst[i] = CodeGenotypes[(packed[i>>2]>>uint((i&3)*2))&3]
	}
}

// PackGenotypes packs g into dst, which must hold BlockRowBytes(len(g))
// zeroed bytes. Genotypes must be in {MissingGenotype, 0, 1, 2}.
func PackGenotypes(g []Genotype, dst []byte) error {
	if want := BlockRowBytes(len(g)); len(dst) < want {
		return fmt.Errorf("data: pack buffer holds %d bytes, want %d", len(dst), want)
	}
	for i, v := range g {
		if v < MissingGenotype || v > 2 {
			return fmt.Errorf("data: genotype %d at index %d outside {missing,0,1,2}", v, i)
		}
		dst[i>>2] |= genoCodes[v+1] << uint((i&3)*2)
	}
	return nil
}

// WriteTextRow appends row r in the genotype text format ("snp\tg1 g2 ...")
// to sb. Missing genotypes are written as "NA" (the text reader does not
// accept them back; blocks carrying missing data stay binary).
func (b *GenoBlock) WriteTextRow(r int, sb *strings.Builder) {
	sb.WriteString(strconv.Itoa(int(b.SNPs[r])))
	sb.WriteByte('\t')
	row := b.Row(r)
	for i := 0; i < b.Patients; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch CodeGenotypes[(row[i>>2]>>uint((i&3)*2))&3] {
		case MissingGenotype:
			sb.WriteString("NA")
		case 0:
			sb.WriteByte('0')
		case 1:
			sb.WriteByte('1')
		case 2:
			sb.WriteByte('2')
		}
	}
	sb.WriteByte('\n')
}

// ApproxBytes estimates the block's resident size: packed bytes, the two
// int32 columns, and the fixed header. Partial tail blocks are charged their
// actual size, which keeps cache accounting honest (a flat per-block hint
// would overcharge them).
func (b GenoBlock) ApproxBytes() int64 {
	return int64(len(b.Packed)) + 4*int64(len(b.SNPs)) + 4*int64(len(b.Counts)) + 96
}

// BoxedRowBytes estimates the resident size of one boxed genotype row (the
// pre-columnar representation): a separately allocated []Genotype rounded up
// to its Go allocator size class, plus the SNP id and slice header in the
// row struct. This is what the boxed path's cache accounting charges, so the
// packed-vs-boxed footprint comparison reflects real heap layouts.
func BoxedRowBytes(patients int) int64 {
	return sizeClass(int64(patients)) + 32
}

// AllocBytes rounds a payload size up to the Go allocator size class that
// backs it — what a slice of that many bytes actually occupies on the heap.
// Honest cache accounting for boxed values charges this, not the logical
// length.
func AllocBytes(n int64) int64 { return sizeClass(n) }

// goSizeClasses are the Go allocator's small-object size classes
// (runtime/sizeclasses.go); allocations above the last class round to 8 KiB
// pages.
var goSizeClasses = []int64{
	8, 16, 24, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192, 208, 224,
	240, 256, 288, 320, 352, 384, 416, 448, 480, 512, 576, 640, 704, 768,
	896, 1024, 1152, 1280, 1408, 1536, 1792, 2048, 2304, 2688, 3072, 3200,
	3456, 4096, 4864, 5376, 6144, 6528, 6784, 6912, 8192, 9472, 9728, 10240,
	10880, 12288, 13568, 14336, 16384, 18432, 19072, 20480, 21760, 24576,
	27264, 28672, 32768,
}

func sizeClass(n int64) int64 {
	for _, c := range goSizeClasses {
		if n <= c {
			return c
		}
	}
	const page = 8192
	return (n + page - 1) / page * page
}

// DecodePool recycles per-row decode buffers for consumers that unpack
// blocks concurrently (the single-goroutine score kernel owns its buffer
// instead and never touches the pool).
type DecodePool struct {
	patients int
	pool     sync.Pool
}

// NewDecodePool returns a pool of decode buffers for the given cohort size.
func NewDecodePool(patients int) *DecodePool {
	p := &DecodePool{patients: patients}
	p.pool.New = func() any { return make([]Genotype, patients) }
	return p
}

// Get returns a decode buffer of length Patients.
func (p *DecodePool) Get() []Genotype { return p.pool.Get().([]Genotype) }

// Put returns a buffer to the pool.
func (p *DecodePool) Put(buf []Genotype) {
	if cap(buf) >= p.patients {
		p.pool.Put(buf[:p.patients])
	}
}
