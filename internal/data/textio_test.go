package data

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sparkscore/internal/rng"
)

func TestGenotypeRoundTrip(t *testing.T) {
	m := sampleMatrix()
	var buf bytes.Buffer
	if err := WriteGenotypes(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGenotypes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Patients != m.Patients || got.SNPs() != m.SNPs() {
		t.Fatalf("shape changed: (%d,%d) -> (%d,%d)", m.SNPs(), m.Patients, got.SNPs(), got.Patients)
	}
	for j := range m.Rows {
		for i := range m.Rows[j] {
			if got.Rows[j][i] != m.Rows[j][i] {
				t.Fatalf("G[%d][%d] = %d, want %d", j, i, got.Rows[j][i], m.Rows[j][i])
			}
		}
	}
}

func TestGenotypeRoundTripProperty(t *testing.T) {
	r := rng.New(99)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		snps := rr.Intn(8) + 1
		patients := rr.Intn(8) + 1
		m := NewGenotypeMatrix(snps, patients)
		for j := 0; j < snps; j++ {
			for i := 0; i < patients; i++ {
				m.Rows[j][i] = Genotype(rr.Intn(3))
			}
		}
		var buf bytes.Buffer
		if err := WriteGenotypes(&buf, m); err != nil {
			return false
		}
		got, err := ReadGenotypes(&buf)
		if err != nil {
			return false
		}
		for j := 0; j < snps; j++ {
			for i := 0; i < patients; i++ {
				if got.Rows[j][i] != m.Rows[j][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadGenotypesOutOfOrderLines(t *testing.T) {
	in := "1\t2 0 1\n0\t0 1 2\n"
	m, err := ReadGenotypes(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows[0][0] != 0 || m.Rows[1][0] != 2 {
		t.Fatalf("rows misplaced: %v", m.Rows)
	}
}

func TestReadGenotypesErrors(t *testing.T) {
	cases := map[string]string{
		"missing tab":     "0 1 2\n",
		"bad genotype":    "0\t0 5 1\n",
		"negative snp":    "-1\t0 1\n",
		"ragged":          "0\t0 1\n1\t0 1 2\n",
		"duplicate":       "0\t0 1\n0\t1 2\n",
		"gap in snp ids":  "0\t0 1\n2\t1 2\n",
		"empty":           "",
		"non-numeric snp": "x\t0 1\n",
	}
	for name, in := range cases {
		if _, err := ReadGenotypes(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestPhenotypeRoundTrip(t *testing.T) {
	p := &Phenotype{Y: []float64{1.5, 0.25, 12}, Event: []uint8{1, 0, 1}}
	var buf bytes.Buffer
	if err := WritePhenotype(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPhenotype(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Y {
		if got.Y[i] != p.Y[i] || got.Event[i] != p.Event[i] {
			t.Fatalf("patient %d = (%v,%d), want (%v,%d)", i, got.Y[i], got.Event[i], p.Y[i], p.Event[i])
		}
	}
}

func TestReadPhenotypeErrors(t *testing.T) {
	cases := map[string]string{
		"two fields":    "0\t1.5\n",
		"bad event":     "0\t1.5\t2\n",
		"bad outcome":   "0\tx\t1\n",
		"duplicate":     "0\t1\t1\n0\t2\t0\n",
		"gap":           "0\t1\t1\n2\t2\t0\n",
		"empty":         "",
		"negative id":   "-1\t1\t1\n",
		"non-numeric":   "a\t1\t1\n",
		"missing event": "0\t1\t\n",
	}
	for name, in := range cases {
		if _, err := ReadPhenotype(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	w := Weights{1, 0.5, 2.25}
	var buf bytes.Buffer
	if err := WriteWeights(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for j := range w {
		if got[j] != w[j] {
			t.Fatalf("weight %d = %v, want %v", j, got[j], w[j])
		}
	}
}

func TestReadWeightsErrors(t *testing.T) {
	cases := map[string]string{
		"missing tab": "0 1.5\n",
		"negative":    "0\t-1\n",
		"duplicate":   "0\t1\n0\t2\n",
		"gap":         "0\t1\n2\t1\n",
		"empty":       "",
	}
	for name, in := range cases {
		if _, err := ReadWeights(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestSNPSetsRoundTrip(t *testing.T) {
	s := SNPSets{{Name: "gene1", SNPs: []int{0, 5, 2}}, {Name: "gene2", SNPs: []int{1}}}
	var buf bytes.Buffer
	if err := WriteSNPSets(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSNPSets(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "gene1" || got[1].Name != "gene2" {
		t.Fatalf("sets = %+v", got)
	}
	if len(got[0].SNPs) != 3 || got[0].SNPs[1] != 5 {
		t.Fatalf("gene1 SNPs = %v", got[0].SNPs)
	}
}

func TestReadSNPSetsErrors(t *testing.T) {
	cases := map[string]string{
		"missing tab": "gene1 0,1\n",
		"bad snp":     "gene1\t0,x\n",
		"empty set":   "gene1\t\n",
		"empty file":  "",
	}
	for name, in := range cases {
		if _, err := ReadSNPSets(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParseGenotypeFields(t *testing.T) {
	gs, err := ParseGenotypeFields([]string{"0", "1", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if gs[0] != 0 || gs[1] != 1 || gs[2] != 2 {
		t.Fatalf("parsed %v", gs)
	}
	if _, err := ParseGenotypeFields([]string{"3"}); err == nil {
		t.Fatal("genotype 3 accepted")
	}
}

func TestCovariatesRoundTrip(t *testing.T) {
	c := &Covariates{Rows: [][]float64{{1.5, 0}, {-2.25, 1}, {0.125, 0}}}
	var buf bytes.Buffer
	if err := WriteCovariates(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCovariates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Rows {
		for j := range c.Rows[i] {
			if got.Rows[i][j] != c.Rows[i][j] {
				t.Fatalf("covariate (%d,%d) = %v, want %v", i, j, got.Rows[i][j], c.Rows[i][j])
			}
		}
	}
}

func TestReadCovariatesErrors(t *testing.T) {
	cases := map[string]string{
		"missing tab": "0 1.5\n",
		"bad value":   "0\tx\n",
		"ragged":      "0\t1 2\n1\t3\n",
		"duplicate":   "0\t1\n0\t2\n",
		"gap":         "0\t1\n2\t2\n",
		"empty":       "",
		"negative id": "-1\t1\n",
	}
	for name, in := range cases {
		if _, err := ReadCovariates(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
