package rdd

import (
	"testing"
	"testing/quick"

	"sparkscore/internal/rng"
)

func TestReduceByKeyMatchesSequentialFold(t *testing.T) {
	c := newTestContext(t, 3)
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := rr.Intn(200) + 1
		keys := rr.Intn(10) + 1
		in := make([]KV[int, int], n)
		want := map[int]int{}
		for i := range in {
			k, v := rr.Intn(keys), rr.Intn(100)
			in[i] = KV[int, int]{K: k, V: v}
			want[k] += v
		}
		out, err := CollectAsMap(ReduceByKey(Parallelize(c, in, rr.Intn(6)+1),
			func(a, b int) int { return a + b }, rr.Intn(4)+1))
		if err != nil {
			return false
		}
		if len(out) != len(want) {
			return false
		}
		for k, v := range want {
			if out[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceByKeyStringKeys(t *testing.T) {
	c := newTestContext(t, 2)
	in := []KV[string, int]{{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}, {"b", 5}}
	out, err := CollectAsMap(ReduceByKey(Parallelize(c, in, 3), func(a, b int) int { return a + b }, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out["a"] != 4 || out["b"] != 7 || out["c"] != 4 {
		t.Fatalf("out = %v", out)
	}
}

func TestReduceByKeyDeterministicOrder(t *testing.T) {
	run := func() []KV[int, int] {
		c := newTestContext(t, 3)
		in := make([]KV[int, int], 100)
		r := rng.New(9)
		for i := range in {
			in[i] = KV[int, int]{K: r.Intn(20), V: i}
		}
		out, err := Collect(ReduceByKey(Parallelize(c, in, 5), func(a, b int) int { return a + b }, 3))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output order not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReduceByKeyCountsTwoStages(t *testing.T) {
	c := newTestContext(t, 2)
	in := []KV[int, int]{{1, 1}, {2, 2}, {1, 3}}
	if _, err := Collect(ReduceByKey(Parallelize(c, in, 2), func(a, b int) int { return a + b }, 2)); err != nil {
		t.Fatal(err)
	}
	jobs := c.Jobs()
	last := jobs[len(jobs)-1]
	if last.Stages != 2 {
		t.Fatalf("shuffle job ran %d stages, want 2 (map + reduce)", last.Stages)
	}
	if last.ShuffleBytes == 0 {
		t.Fatal("no shuffle bytes recorded")
	}
}

func TestShuffleOutputsReused(t *testing.T) {
	c := newTestContext(t, 2)
	in := []KV[int, int]{{1, 1}, {2, 2}, {1, 3}}
	r := ReduceByKey(Parallelize(c, in, 2), func(a, b int) int { return a + b }, 2)
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	jobs := c.Jobs()
	second := jobs[len(jobs)-1]
	// The second collect must skip the map stage: its outputs are retained.
	if second.Stages != 1 {
		t.Fatalf("second action re-ran the map stage (%d stages)", second.Stages)
	}
}

func TestGroupByKey(t *testing.T) {
	c := newTestContext(t, 2)
	in := []KV[int, string]{{1, "a"}, {2, "b"}, {1, "c"}, {1, "d"}}
	out, err := CollectAsMap(GroupByKey(Parallelize(c, in, 2), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out[1]) != 3 || len(out[2]) != 1 {
		t.Fatalf("out = %v", out)
	}
	// Values of key 1 keep input order (a from partition 0; c, d later).
	joined := out[1][0] + out[1][1] + out[1][2]
	if joined != "acd" {
		t.Fatalf("grouped values %q, want deterministic \"acd\"", joined)
	}
}

func TestJoinInner(t *testing.T) {
	c := newTestContext(t, 2)
	left := Parallelize(c, []KV[int, string]{{1, "w1"}, {2, "w2"}, {3, "w3"}}, 2)
	right := Parallelize(c, []KV[int, float64]{{1, 10}, {3, 30}, {4, 40}}, 2)
	out, err := CollectAsMap(Join(left, right, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("join produced %d keys, want 2 (inner)", len(out))
	}
	if out[1].Left != "w1" || out[1].Right != 10 {
		t.Fatalf("out[1] = %+v", out[1])
	}
	if out[3].Left != "w3" || out[3].Right != 30 {
		t.Fatalf("out[3] = %+v", out[3])
	}
}

func TestJoinDuplicateKeysCrossProduct(t *testing.T) {
	c := newTestContext(t, 2)
	left := Parallelize(c, []KV[int, string]{{1, "a"}, {1, "b"}}, 1)
	right := Parallelize(c, []KV[int, int]{{1, 10}, {1, 20}}, 1)
	out, err := Collect(Join(left, right, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("cross product size %d, want 4", len(out))
	}
}

func TestJoinAfterReduceByKey(t *testing.T) {
	// A two-shuffle lineage: reduceByKey then join — three stages total.
	c := newTestContext(t, 2)
	scores := Parallelize(c, []KV[int, float64]{{0, 1}, {1, 2}, {0, 3}, {1, 4}}, 2)
	summed := ReduceByKey(scores, func(a, b float64) float64 { return a + b }, 2)
	weights := Parallelize(c, []KV[int, float64]{{0, 2}, {1, 3}}, 1)
	joined := Join(summed, weights, 2)
	prod := Map(joined, "apply", func(kv KV[int, JoinPair[float64, float64]]) KV[int, float64] {
		return KV[int, float64]{K: kv.K, V: kv.V.Left * kv.V.Right}
	})
	out, err := CollectAsMap(prod)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 8 || out[1] != 18 {
		t.Fatalf("out = %v, want map[0:8 1:18]", out)
	}
	jobs := c.Jobs()
	last := jobs[len(jobs)-1]
	if last.Stages != 4 {
		// reduceByKey map, join-left map (over reduced), join-right map, result
		t.Fatalf("stages = %d, want 4", last.Stages)
	}
}

func TestHashPartitionInRangeAndStable(t *testing.T) {
	for _, parts := range []int{1, 2, 7, 64} {
		for k := -100; k < 100; k++ {
			p := hashPartition(k, parts)
			if p < 0 || p >= parts {
				t.Fatalf("hashPartition(%d,%d) = %d", k, parts, p)
			}
			if p != hashPartition(k, parts) {
				t.Fatalf("hashPartition unstable for %d", k)
			}
		}
	}
	if hashPartition("snp-set-1", 8) != hashPartition("snp-set-1", 8) {
		t.Fatal("string hashing unstable")
	}
}

func TestHashPartitionSpreads(t *testing.T) {
	const parts = 8
	counts := make([]int, parts)
	for k := 0; k < 8000; k++ {
		counts[hashPartition(k, parts)]++
	}
	for i, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("partition %d received %d of 8000 keys", i, n)
		}
	}
}

func TestOrderedMap(t *testing.T) {
	m := newOrderedMap[string, int]()
	m.set("b", 1)
	m.set("a", 2)
	m.set("b", 3)
	if v, ok := m.get("b"); !ok || v != 3 {
		t.Fatalf("get(b) = %v,%v", v, ok)
	}
	if _, ok := m.get("zz"); ok {
		t.Fatal("missing key found")
	}
	pairs := m.pairs()
	if len(pairs) != 2 || pairs[0].K != "b" || pairs[1].K != "a" {
		t.Fatalf("pairs = %v (insertion order lost)", pairs)
	}
}
