// Secondary RDD operators: the rest of the everyday Spark surface built on
// the same primitives (fused narrow nodes and the hash shuffle).

package rdd

import (
	"fmt"
	"iter"

	"sparkscore/internal/rng"
)

// Distinct returns the unique elements of r via a shuffle (one reduce task
// per partition unless parts overrides it).
func Distinct[T comparable](r *RDD[T], parts int) *RDD[T] {
	pairs := Map(r, "asKey", func(v T) KV[T, struct{}] { return KV[T, struct{}]{K: v} })
	pairs.n.bytesPerElem = r.n.bytesPerElem
	reduced := ReduceByKey(pairs, func(a, _ struct{}) struct{} { return a }, parts)
	out := Map(reduced, "dropValue", func(kv KV[T, struct{}]) T { return kv.K })
	out.n.bytesPerElem = r.n.bytesPerElem
	return out
}

// Keys projects the keys of a pair RDD. Fused (a Map under the hood); the
// parent's size hint carries over as an upper bound, since a key is no
// larger than its pair.
func Keys[K comparable, V any](r *RDD[KV[K, V]]) *RDD[K] {
	out := Map(r, "keys", func(kv KV[K, V]) K { return kv.K })
	out.n.bytesPerElem = r.n.bytesPerElem
	return out
}

// Values projects the values of a pair RDD. Fused; the parent's size hint
// carries over as an upper bound.
func Values[K comparable, V any](r *RDD[KV[K, V]]) *RDD[V] {
	out := Map(r, "values", func(kv KV[K, V]) V { return kv.V })
	out.n.bytesPerElem = r.n.bytesPerElem
	return out
}

// MapValues transforms the values of a pair RDD, keeping keys (and therefore
// any co-partitioning) intact. Fused.
func MapValues[K comparable, V, W any](r *RDD[KV[K, V]], name string, f func(V) W) *RDD[KV[K, W]] {
	return Map(r, "mapValues:"+name, func(kv KV[K, V]) KV[K, W] {
		return KV[K, W]{K: kv.K, V: f(kv.V)}
	})
}

// Sample returns an independent Bernoulli(fraction) sample of r. Each
// partition derives its own deterministic stream from seed, so the sample is
// reproducible and independent of scheduling. Fused: the RNG is re-seeded
// inside the cursor, so every drain — including recomputation after a
// failure — replays the identical coin flips.
func Sample[T any](r *RDD[T], fraction float64, seed uint64) *RDD[T] {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("rdd: sample fraction %v outside [0,1]", fraction))
	}
	parent := r.n
	n := newTypedNode[T](parent.ctx, fmt.Sprintf("sample[%g](%s)", fraction, parent.name), parent.parts)
	n.narrowParents = []*node{parent}
	n.bytesPerElem = parent.bytesPerElem
	n.fusedDepth = parent.fusedDepth + 1
	n.compute = func(tc *taskContext, p int) any {
		in := seqOf[T](parent.iterate(tc, p))
		return boxSeq[T](func(yield func(T) bool) {
			rr := rng.New(seed).Split(uint64(p))
			for v := range in {
				if rr.Bernoulli(fraction) && !yield(v) {
					return
				}
			}
		})
	}
	return &RDD[T]{n: n}
}

// Coalesce reduces the partition count without a shuffle: each output
// partition concatenates a contiguous range of parent partitions. parts
// larger than the current count is clamped (coalesce never increases
// parallelism; repartitioning up requires a shuffle). Fused: parent cursors
// are chained, not copied.
func Coalesce[T any](r *RDD[T], parts int) *RDD[T] {
	if parts <= 0 {
		panic(fmt.Sprintf("rdd: Coalesce to %d partitions", parts))
	}
	parent := r.n
	if parts >= parent.parts {
		return r
	}
	n := newTypedNode[T](parent.ctx, fmt.Sprintf("coalesce[%d](%s)", parts, parent.name), parts)
	n.narrowParents = []*node{parent}
	n.bytesPerElem = parent.bytesPerElem
	n.fusedDepth = parent.fusedDepth + 1
	n.compute = func(tc *taskContext, p int) any {
		lo, hi := partRange(parent.parts, parts, p)
		ins := make([]iter.Seq[T], 0, hi-lo)
		for q := lo; q < hi; q++ {
			ins = append(ins, seqOf[T](parent.iterate(tc, q)))
		}
		return boxSeq[T](func(yield func(T) bool) {
			for _, in := range ins {
				for v := range in {
					if !yield(v) {
						return
					}
				}
			}
		})
	}
	return &RDD[T]{n: n}
}

// CountByKey returns the number of elements per key as a driver-side map.
// The count pairs stream through map-side combine, so shuffled bytes scale
// with distinct keys, not elements.
func CountByKey[K comparable, V any](r *RDD[KV[K, V]]) (map[K]int, error) {
	ones := MapValues(r, "one", func(V) int { return 1 })
	return CollectAsMap(ReduceByKey(ones, func(a, b int) int { return a + b }, 0))
}

// Lookup returns all values of the given key (a full scan, as in Spark
// without a known partitioner).
func Lookup[K comparable, V any](r *RDD[KV[K, V]], key K) ([]V, error) {
	matching := Filter(r, "lookup", func(kv KV[K, V]) bool { return kv.K == key })
	pairs, err := Collect(matching)
	if err != nil {
		return nil, err
	}
	out := make([]V, len(pairs))
	for i, kv := range pairs {
		out[i] = kv.V
	}
	return out, nil
}
