// Sort-shuffle acceptance pins: bitwise parity with the hash shuffle at two
// scales and under the chaos fault profile, spill-and-complete under a memory
// cap below the shuffle working set (with byte-identical stripped event logs
// across seeded replays), and the hash path's OOM abort at the same cap.

package rdd

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"sparkscore/internal/cluster"
)

// floatShuffleResult runs a float64 pipeline whose ReduceByKey sums are
// sensitive to fold order — any change in pair order or fold tree shows up in
// the result bits — followed by a Join (non-combining shuffle coverage).
func floatShuffleResult(t *testing.T, cfg Config, n, parts int) ([]KV[int, JoinPair[float64, float64]], *Context) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Parallelize(c, seq(n), parts)
	pairs := Map(base, "fkey", func(x int) KV[int, float64] {
		return KV[int, float64]{K: x % 31, V: 1.0 / float64(x+1)}
	})
	sums := ReduceByKey(pairs, func(a, b float64) float64 { return a + b }, parts)
	weights := Map(Parallelize(c, seq(31), 2), "wkey", func(k int) KV[int, float64] {
		return KV[int, float64]{K: k, V: float64(k) * 0.1}
	})
	out, err := Collect(Join(sums, weights, parts))
	if err != nil {
		t.Fatal(err)
	}
	return out, c
}

func assertBitwiseEqual(t *testing.T, got, want []KV[int, JoinPair[float64, float64]], label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].K != want[i].K ||
			math.Float64bits(got[i].V.Left) != math.Float64bits(want[i].V.Left) ||
			math.Float64bits(got[i].V.Right) != math.Float64bits(want[i].V.Right) {
			t.Fatalf("%s: result %d = %+v, want bitwise %+v", label, i, got[i], want[i])
		}
	}
}

// TestSortHashShuffleParity pins that with ample memory the sort shuffle
// produces bitwise-identical results to the hash shuffle, at two scales.
func TestSortHashShuffleParity(t *testing.T) {
	for _, n := range []int{2000, 60000} {
		base := Config{Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge}, Seed: 42}
		sortCfg, hashCfg := base, base
		sortCfg.SortShuffle = ShuffleSort
		hashCfg.SortShuffle = ShuffleHash
		sorted, _ := floatShuffleResult(t, sortCfg, n, 8)
		hashed, _ := floatShuffleResult(t, hashCfg, n, 8)
		assertBitwiseEqual(t, sorted, hashed, "sort vs hash")
		if len(sorted) != 31 {
			t.Fatalf("n=%d: %d joined keys, want 31", n, len(sorted))
		}
	}
}

// TestSortHashShuffleParityUnderChaos pins the same bitwise parity when task
// crashes and fetch failures force retries and map-stage recomputation in
// both modes.
func TestSortHashShuffleParityUnderChaos(t *testing.T) {
	// Milder probabilities than the single-shuffle chaos tests: this pipeline
	// crosses three shuffles, and the per-stage attempt budget must survive.
	base := Config{
		Cluster: cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		Seed:    7,
		Faults:  FaultProfile{TaskCrashProb: 0.08, FetchFailureProb: 0.04},
	}
	sortCfg, hashCfg := base, base
	sortCfg.SortShuffle = ShuffleSort
	hashCfg.SortShuffle = ShuffleHash
	sorted, sc := floatShuffleResult(t, sortCfg, 20000, 6)
	hashed, _ := floatShuffleResult(t, hashCfg, 20000, 6)
	assertBitwiseEqual(t, sorted, hashed, "chaos sort vs hash")
	var retries int
	for _, m := range sc.Jobs() {
		retries += m.TaskRetries + m.StageAttempts
	}
	if retries == 0 {
		t.Fatal("chaos profile injected no recovery work; parity pin is vacuous")
	}
}

// cappedCluster is one executor whose pool (~107 KB) sits well below the
// ~160 KB per-task shuffle buffer the capped tests build, so the sort path
// must spill and the hash path cannot fit its buckets.
func cappedCluster() cluster.Config {
	return cluster.Config{
		Nodes:             1,
		Spec:              cluster.NodeSpec{Name: "capped", VCPUs: 4, MemGiB: 1},
		ExecutorsPerNode:  1,
		CoresPerExecutor:  4,
		MemPerExecutorGiB: 0.0001,
	}
}

// TestSortShuffleSpillsAndMatchesUncapped pins the tentpole property: with
// executor memory capped below the shuffle working set the sort path spills
// sorted runs, completes, and produces results bitwise identical to an
// uncapped run — and two capped seeded replays write byte-identical stripped
// event logs, spills included.
func TestSortShuffleSpillsAndMatchesUncapped(t *testing.T) {
	const n, parts = 40000, 4
	ample, _ := floatShuffleResult(t, Config{
		Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge}, Seed: 42,
	}, n, parts)

	run := func() ([]KV[int, JoinPair[float64, float64]], []JobMetrics, string) {
		var buf bytes.Buffer
		elw := NewEventLogWriter(&buf)
		// Workers: 1 serialises host-side execution: memory-manager denials,
		// and with them spill points, are a pure function of the config.
		out, c := floatShuffleResult(t, Config{
			Cluster: cappedCluster(), Seed: 42, Workers: 1, Listeners: []Listener{elw},
		}, n, parts)
		if err := elw.Close(); err != nil {
			t.Fatal(err)
		}
		events, err := ReadEventLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var stripped strings.Builder
		for _, ev := range events {
			line, err := MarshalEvent(StripMeasuredTime(ev))
			if err != nil {
				t.Fatal(err)
			}
			stripped.Write(line)
			stripped.WriteByte('\n')
		}
		return out, c.Jobs(), stripped.String()
	}

	capped, jobs, log1 := run()
	assertBitwiseEqual(t, capped, ample, "capped sort vs uncapped")

	var spills, spilledBytes, bufferBytes int64
	for _, m := range jobs {
		spills += int64(m.SpillCount)
		spilledBytes += m.SpilledBytes
		bufferBytes += m.ShuffleBufferBytes
		if m.SpillCount > 0 && m.ExecutionPeakBytes == 0 {
			t.Fatalf("job %q spilled without an execution-memory peak", m.RDD)
		}
	}
	if spills == 0 || spilledBytes == 0 {
		t.Fatalf("capped run spilled %d runs / %d bytes, want > 0 — the cap is not below the working set", spills, spilledBytes)
	}
	if bufferBytes == 0 {
		t.Fatal("capped run reports zero shuffle-buffer bytes")
	}
	if !strings.Contains(log1, `"type":"ShuffleSpill"`) {
		t.Fatal("event log holds no ShuffleSpill events")
	}

	_, _, log2 := run()
	if log1 != log2 {
		t.Fatal("stripped event logs differ across seeded replays of the capped run")
	}
}

// TestHashShuffleOOMAbortsUnderCap pins the contrast case: at the same cap
// the hash shuffle, which must hold its buckets resident, aborts the job with
// the task-retry path reporting the out-of-memory grant denial — while the
// sort shuffle completes the identical workload by spilling. The workload is
// a GroupByKey: map-side combine cannot shrink its buckets, so the resident
// set is the full raw pair set, the case that kills the hash path in
// practice. (A combining ReduceByKey's buckets hold one pair per key and fit
// almost any cap — which is exactly why the `memory` experiment measures the
// working set from the hash path's own buffer high-water mark.)
func TestHashShuffleOOMAbortsUnderCap(t *testing.T) {
	groupAll := func(mode ShuffleMode) ([]KV[int, []float64], error) {
		c, err := New(Config{Cluster: cappedCluster(), Seed: 42, Workers: 1, SortShuffle: mode})
		if err != nil {
			t.Fatal(err)
		}
		pairs := Map(Parallelize(c, seq(40000), 4), "fkey", func(x int) KV[int, float64] {
			return KV[int, float64]{K: x % 31, V: 1.0 / float64(x+1)}
		})
		return Collect(GroupByKey(pairs, 4))
	}

	_, err := groupAll(ShuffleHash)
	var aborted *TaskAbortedError
	if !errors.As(err, &aborted) {
		t.Fatalf("capped hash shuffle returned %v, want TaskAbortedError", err)
	}
	if !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("abort cause %q does not name the OOM", err)
	}

	got, err := groupAll(ShuffleSort)
	if err != nil {
		t.Fatalf("capped sort shuffle failed the workload the hash path aborts: %v", err)
	}
	if len(got) != 31 {
		t.Fatalf("capped sort shuffle grouped %d keys, want 31", len(got))
	}
}
