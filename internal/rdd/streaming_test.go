// Tests for the streaming execution core: fusion of narrow chains (one pass,
// no per-operator slice copies), materialisation accounting, map-side
// combine, and deterministic recomputation of fused chains after failures.

package rdd

import (
	"bytes"
	"fmt"
	"testing"

	"sparkscore/internal/cluster"
)

// drainChain drives a fused chain's cursor for one partition the way a task
// would, summing to keep the pass honest.
func drainChain(tc *taskContext, n *node, p int) int {
	sum := 0
	for v := range seqOf[int](n.iterate(tc, p)) {
		sum += v
	}
	return sum
}

// fusedTestChain is the canonical 3-operator narrow chain the allocation
// tests measure: map, filter, map over one partition of ints.
func fusedTestChain(c *Context, n int) *RDD[int] {
	r := Parallelize(c, seq(n), 1)
	m1 := Map(r, "double", func(x int) int { return 2 * x })
	f := Filter(m1, "mod4", func(x int) bool { return x%4 == 0 })
	return Map(f, "inc", func(x int) int { return x + 1 })
}

// TestFusedChainAllocsIndependentOfSize is the allocation-regression test for
// operator fusion. The seed path allocated an O(n) slice per narrow operator
// (a 3-op chain over 10k elements cost ~22 allocations and ~250 KB per
// drain); the fused cursor allocates only a constant handful of closures, so
// the count must not grow with the partition size.
func TestFusedChainAllocsIndependentOfSize(t *testing.T) {
	c := newTestContext(t, 1)
	allocsFor := func(n int) float64 {
		chain := fusedTestChain(c, n)
		tc := &taskContext{ctx: c}
		return testing.AllocsPerRun(20, func() {
			drainChain(tc, chain.n, 0)
		})
	}
	small, large := allocsFor(100), allocsFor(100000)
	if small != large {
		t.Fatalf("fused chain allocations grow with partition size: %v at n=100, %v at n=100000", small, large)
	}
	// A fused drain allocates per-operator closures, never per-element or
	// per-partition buffers. The bound is generous; the equality above is the
	// real regression guard.
	if large > 16 {
		t.Fatalf("fused chain drain allocated %v objects, want a small constant", large)
	}
}

// TestFusedChainMetrics checks the new accounting: a fused chain driven by a
// streaming action reports its chain length, and an uncached chain with a
// streaming action materialises nothing.
func TestFusedChainMetrics(t *testing.T) {
	c := newTestContext(t, 1)
	chain := fusedTestChain(c, 1000)
	if _, err := Count(chain); err != nil {
		t.Fatal(err)
	}
	jobs := c.Jobs()
	jm := jobs[len(jobs)-1]
	if jm.MaxFusedChain != 4 {
		t.Fatalf("MaxFusedChain = %d, want 4 (source + three fused ops)", jm.MaxFusedChain)
	}
	if jm.MaterializedBytes != 0 || jm.PeakMaterializedBytes != 0 {
		t.Fatalf("streaming count materialised %d bytes (peak %d), want 0",
			jm.MaterializedBytes, jm.PeakMaterializedBytes)
	}

	// Caching in the middle of the chain is a pipeline breaker: the cache put
	// must show up as materialised bytes.
	cached := Map(fusedTestChain(c, 1000), "id", func(x int) int { return x }).Cache()
	final := Map(cached, "dec", func(x int) int { return x - 1 })
	if _, err := Count(final); err != nil {
		t.Fatal(err)
	}
	jobs = c.Jobs()
	jm = jobs[len(jobs)-1]
	if jm.MaterializedBytes == 0 || jm.PeakMaterializedBytes == 0 {
		t.Fatalf("cache put not accounted: materialized=%d peak=%d", jm.MaterializedBytes, jm.PeakMaterializedBytes)
	}
	if jm.MaxFusedChain != 6 {
		t.Fatalf("MaxFusedChain = %d, want 6", jm.MaxFusedChain)
	}
}

// TestCollectPreallocates locks in the preallocated assembly: collecting n
// elements must not reallocate the driver-side output while appending
// partitions.
func TestCollectPreallocates(t *testing.T) {
	c := newTestContext(t, 1)
	r := Parallelize(c, seq(5000), 8)
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 || cap(got) != 5000 {
		t.Fatalf("len=%d cap=%d, want exactly 5000 (preallocated from per-partition counts)", len(got), cap(got))
	}
}

// TestFusedChainRecomputeAfterNodeLoss kills a machine under a cached fused
// chain that includes a stateful operator (Sample) and checks the recomputed
// result is identical to the pre-failure one — the RNG is re-seeded inside
// the cursor, so a replayed drain flips the same coins.
func TestFusedChainRecomputeAfterNodeLoss(t *testing.T) {
	c, err := New(Config{
		Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge},
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Parallelize(c, seq(20000), 12)
	sampled := Sample(Map(base, "x3", func(x int) int { return 3 * x }), 0.5, 99)
	chain := Map(sampled, "inc", func(x int) int { return x + 1 }).Cache()

	before, err := Collect(chain)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	after, err := Collect(chain)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatal("fused chain recomputation after node loss diverged from the pre-failure result")
	}
}

// TestFusedChainChaosFingerprint replays a fused-chain job twice under the
// same seeded fault profile in fresh contexts: results, recovery
// fingerprints (JobMetrics stripped of measured time), and the JSONL event
// log (likewise stripped) must match bit for bit through the iterator path.
func TestFusedChainChaosFingerprint(t *testing.T) {
	run := func() (string, string, string) {
		var logBuf bytes.Buffer
		elw := NewEventLogWriter(&logBuf)
		c, err := New(Config{
			Cluster: cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
			Seed:    5,
			Faults: FaultProfile{
				TaskCrashProb:    0.05,
				FetchFailureProb: 0.05,
			},
			Listeners: []Listener{elw},
		})
		if err != nil {
			t.Fatal(err)
		}
		pairs := Map(fusedTestChain(c, 10000), "key", func(x int) KV[int, int] {
			return KV[int, int]{K: x % 17, V: x}
		})
		sums, err := Collect(ReduceByKey(pairs, func(a, b int) int { return a + b }, 6))
		if err != nil {
			t.Fatal(err)
		}
		var fp string
		for _, m := range c.Jobs() {
			fp += fmt.Sprintf("%+v\n", m.WithoutMeasuredTime())
		}
		if err := elw.Close(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(sums), fp, strippedLog(t, logBuf.Bytes())
	}
	res1, fp1, log1 := run()
	res2, fp2, log2 := run()
	if res1 != res2 {
		t.Fatal("same seed produced different results through the fused path")
	}
	if fp1 != fp2 {
		t.Fatalf("same seed produced different job fingerprints:\n%s\nvs\n%s", fp1, fp2)
	}
	if log1 != log2 {
		t.Fatalf("same seed produced different event logs:\n%s\nvs\n%s", log1, log2)
	}
}

// TestMapSideCombineReducesShuffle pins the combine ablation at the engine
// level: the same ReduceByKey job shuffles fewer bytes with map-side combine
// (the default) than without, and both agree on the result.
func TestMapSideCombineReducesShuffle(t *testing.T) {
	run := func(disable bool) (map[int]int, int64) {
		c, err := New(Config{
			Cluster:               cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
			Seed:                  7,
			DisableMapSideCombine: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		pairs := Map(Parallelize(c, seq(9000), 12), "key", func(x int) KV[int, int] {
			return KV[int, int]{K: x % 10, V: 1}
		})
		got, err := CollectAsMap(ReduceByKey(pairs, func(a, b int) int { return a + b }, 0))
		if err != nil {
			t.Fatal(err)
		}
		var shuffled int64
		for _, m := range c.Jobs() {
			shuffled += m.ShuffleBytes
		}
		return got, shuffled
	}
	combined, withBytes := run(false)
	raw, withoutBytes := run(true)
	if fmt.Sprint(combined) != fmt.Sprint(raw) {
		t.Fatalf("combine changed the result: %v vs %v", combined, raw)
	}
	if withBytes >= withoutBytes {
		t.Fatalf("map-side combine did not reduce shuffle bytes: %d >= %d", withBytes, withoutBytes)
	}
	for k, v := range combined {
		if v != 900 {
			t.Fatalf("key %d summed to %d, want 900", k, v)
		}
	}
}

// TestTextFileStreamsLines checks the line cursor against the materialised
// semantics: interior blank lines kept, trailing newlines not an extra line.
func TestTextFileStreamsLines(t *testing.T) {
	c := newTestContext(t, 1)
	if _, err := c.fs.Write("lines.txt", []byte("a\n\nb\nc\n\n")); err != nil {
		t.Fatal(err)
	}
	r, err := c.TextFile("lines.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "", "b", "c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("lines = %q, want %q", got, want)
	}
}

// BenchmarkFusedChainDrain measures one pass of the fused 3-op chain at the
// cursor level — the number the seed's slice-per-operator path paid ~22
// allocations and ~3 O(n) copies for.
func BenchmarkFusedChainDrain(b *testing.B) {
	c := newTestContext(b, 1)
	chain := fusedTestChain(c, 10000)
	tc := &taskContext{ctx: c}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drainChain(tc, chain.n, 0)
	}
}

// BenchmarkFusedChainCount measures the full streaming action (job machinery
// included) over the fused chain.
func BenchmarkFusedChainCount(b *testing.B) {
	c := newTestContext(b, 1)
	chain := fusedTestChain(c, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(chain); err != nil {
			b.Fatal(err)
		}
	}
}
