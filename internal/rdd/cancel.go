// Job cancellation: deadlines and explicit CancelJob, the engine's
// counterpart of SparkContext.cancelJob and spark.job.interruptOnCancel.
//
// A cancellation is a *signal*, not a teardown: the scheduler notices it at
// the next task boundary (between task launches within a wave, and between
// waves/stages), stops launching further work, accounts everything already
// launched exactly as usual, and ends the job with JobCancelled plus a
// terminal JobEnd{Cancelled: true}. Nothing about the context is poisoned:
// cached blocks, finished shuffle outputs, and the clock survive, so the next
// job — even a re-run of the cancelled one — proceeds correctly, reusing any
// map outputs the cancelled run completed.

package rdd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobCancelledError is returned by actions whose job was cancelled by
// CancelJob, a RunJobWithDeadline deadline, or a RunWithCancel context.
type JobCancelledError struct {
	Job    uint64 // 0 if the job was cancelled while queued, before admission
	Reason string
}

func (e *JobCancelledError) Error() string {
	if e.Job == 0 {
		return fmt.Sprintf("rdd: job cancelled before starting: %s", e.Reason)
	}
	return fmt.Sprintf("rdd: job %d cancelled: %s", e.Job, e.Reason)
}

// jobCancel is the cancellation token shared between the submitting
// goroutine, the scheduler, and CancelJob callers. done is closed at most
// once; reason records why.
type jobCancel struct {
	once   sync.Once
	done   chan struct{}
	reason atomic.Value // string, stored before done closes
}

func newJobCancel() *jobCancel {
	return &jobCancel{done: make(chan struct{})}
}

// cancel fires the token once; later calls are no-ops.
func (t *jobCancel) cancel(reason string) {
	t.once.Do(func() {
		t.reason.Store(reason)
		close(t.done)
	})
}

// cancelled reports whether the token has fired. A nil token never fires.
func (t *jobCancel) cancelled() bool {
	if t == nil {
		return false
	}
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// why returns the cancellation reason; empty if the token has not fired.
func (t *jobCancel) why() string {
	if t == nil {
		return ""
	}
	if r, ok := t.reason.Load().(string); ok {
		return r
	}
	return ""
}

// RunWithCancel runs fn with job cancellation wired to ctx: every job the
// current goroutine submits inside fn is cancelled at its next task boundary
// when ctx is done (deadline, explicit cancel, or — in an HTTP handler — the
// client disconnecting). Cancelled actions return a *JobCancelledError.
func (c *Context) RunWithCancel(ctx context.Context, fn func() error) error {
	tok := newJobCancel()
	stop := context.AfterFunc(ctx, func() {
		reason := "cancelled"
		if err := ctx.Err(); err != nil {
			reason = err.Error()
		}
		tok.cancel(reason)
	})
	defer stop()
	g := gid()
	prev, had := c.cancelTokens.Load(g)
	c.cancelTokens.Store(g, tok)
	defer func() {
		if had {
			c.cancelTokens.Store(g, prev)
		} else {
			c.cancelTokens.Delete(g)
		}
	}()
	return fn()
}

// RunJobWithDeadline runs fn with a deadline: jobs still running d after the
// call are cancelled at their next task boundary.
func (c *Context) RunJobWithDeadline(d time.Duration, fn func() error) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.RunWithCancel(ctx, fn)
}

// CancelJob cancels the running job with the given id (as carried by
// JobStart events and JobSpans). It returns false if no such job is running.
// The job aborts at its next task boundary and its action returns a
// *JobCancelledError.
func (c *Context) CancelJob(job uint64, reason string) bool {
	c.mu.Lock()
	tok := c.runningCancels[job]
	c.mu.Unlock()
	if tok == nil {
		return false
	}
	if reason == "" {
		reason = "cancelled by CancelJob"
	}
	tok.cancel(reason)
	return true
}

// currentCancel returns the goroutine-scoped cancellation token installed by
// RunWithCancel, or nil.
func (c *Context) currentCancel() *jobCancel {
	if v, ok := c.cancelTokens.Load(gid()); ok {
		tok, _ := v.(*jobCancel)
		return tok
	}
	return nil
}
