// The memory manager arbitrates each executor's (simulated) memory between
// two consumers, as Spark's UnifiedMemoryManager does between its storage and
// execution regions:
//
//   - Storage memory holds cached RDD partitions with MEMORY_ONLY semantics:
//     least-recently-used blocks are evicted when the storage region fills,
//     and a block larger than the region is not stored at all. Evicted or
//     failed-away blocks are recomputed from lineage on next access — the
//     mechanism behind both the caching experiment (Figures 4 and 5) and the
//     fault-tolerance story.
//   - Execution memory holds shuffle state: the sort shuffle's spillable map
//     buffers and the reduce side's merge tables. Acquisitions are granted
//     from whatever the unified pool has left after storage and earlier
//     grants.
//
// The pool is Config.MemoryFraction of executor memory; the storage region is
// Config.StorageFraction of the pool. Two deliberate divergences from Spark's
// exact borrow rules, both documented in DESIGN.md §9d:
//
//   - Storage never borrows idle execution memory: the storage region is a
//     hard cap, not a floor. The paper's cache-capacity experiments
//     (Figures 4–6) calibrate working set against a fixed storage capacity of
//     StorageFraction × memory; borrowing would dissolve the capacity cliff
//     they measure.
//   - Execution under pressure may evict cached blocks below the storage
//     region (Spark only reclaims storage's borrowed excess). Cached blocks
//     are recomputable from lineage; reduce-side merge state is not (spilling
//     partial float aggregates would break the engine's bitwise
//     reproducibility contract), so unspillable acquisitions shed storage
//     rather than fail. Spillable acquisitions (sort-shuffle buffers) are
//     simply denied — spilling a buffer is cheaper than thrashing the cache.

package rdd

import (
	"container/list"
	"sync"

	"sparkscore/internal/cluster"
)

type blockKey struct {
	rdd  int
	part int
}

type block struct {
	key      blockKey
	executor int
	value    any
	bytes    int64
	onDisk   bool
	lruElem  *list.Element // nil while on disk
}

// acqMode selects what an execution-memory acquisition does when the pool
// cannot cover it.
type acqMode int

const (
	// acqSpill denies the request without touching storage: the caller can
	// spill (sort-shuffle map buffers).
	acqSpill acqMode = iota
	// acqMustFit evicts cached blocks to make room and denies if storage
	// eviction still cannot cover the request (the hash shuffle's resident
	// buckets, which have no spill path — denial is the model of its OOM).
	acqMustFit
	// acqForce evicts cached blocks and then grants unconditionally, letting
	// execution overshoot the pool (reduce-side merges, which must not spill:
	// partial float aggregates are not bitwise-reassociable).
	acqForce
)

type executorStore struct {
	pool       int64      // unified memory: MemBytes × MemoryFraction
	storageCap int64      // storage region: pool × StorageFraction (hard cap)
	used       int64      // storage bytes held by in-memory blocks
	execUsed   int64      // execution bytes currently granted
	lru        *list.List // front = most recent; values are *block
}

// storageRoom is how many bytes storage may occupy right now: the storage
// region, shrunk when execution grants have eaten into the pool beyond its
// complement — shuffle pressure throttles caching, and vice versa.
func (st *executorStore) storageRoom() int64 {
	room := st.storageCap
	if r := st.pool - st.execUsed; r < room {
		room = r
	}
	return room
}

type memoryManager struct {
	mu     sync.Mutex
	stores map[int]*executorStore
	index  map[blockKey]*block
	// evictions counts blocks dropped for space, surfaced in metrics.
	evictions int64
	// shuffleResident tracks retained shuffle output bytes per executor. They
	// are visible (totalBytes) but not arbitrated: retained outputs model the
	// external shuffle service's on-disk files, outside the executor's heap,
	// and accumulate for the context's lifetime.
	shuffleResident map[int]int64
}

func newMemoryManager(cl *cluster.Cluster, memoryFraction, storageFraction float64) *memoryManager {
	mm := &memoryManager{
		stores:          map[int]*executorStore{},
		index:           map[blockKey]*block{},
		shuffleResident: map[int]int64{},
	}
	for _, e := range cl.Executors() {
		pool := int64(float64(e.MemBytes) * memoryFraction)
		mm.stores[e.ID] = &executorStore{
			pool:       pool,
			storageCap: int64(float64(pool) * storageFraction),
			lru:        list.New(),
		}
	}
	return mm
}

// acquireExecution grants bytes of execution memory on the executor, or
// reports that the pool is exhausted. Eviction behaviour depends on mode (see
// acqMode); evicted blocks are returned so the caller can publish
// BlockEvicted events from its task context.
func (mm *memoryManager) acquireExecution(executor int, bytes int64, mode acqMode) (ok bool, evicted []*block) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	st := mm.stores[executor]
	if bytes <= st.pool-st.execUsed-st.used {
		st.execUsed += bytes
		return true, nil
	}
	if mode == acqSpill {
		return false, nil
	}
	// Shed cached blocks, least recently used first, until the request fits
	// or storage is empty. Unlike put there is no same-RDD exemption: the
	// acquirer is execution, not a competing cache write.
	for e := st.lru.Back(); e != nil && bytes > st.pool-st.execUsed-st.used; {
		prev := e.Prev()
		b := e.Value.(*block)
		mm.removeLocked(b)
		mm.evictions++
		evicted = append(evicted, b)
		e = prev
	}
	if bytes <= st.pool-st.execUsed-st.used || mode == acqForce {
		st.execUsed += bytes
		return true, evicted
	}
	return false, evicted
}

// releaseExecution returns granted execution bytes to the pool.
func (mm *memoryManager) releaseExecution(executor int, bytes int64) {
	if bytes == 0 {
		return
	}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.stores[executor].execUsed -= bytes
}

// addShuffleResident records retained shuffle output bytes on the executor
// (visibility accounting; see the shuffleResident field).
func (mm *memoryManager) addShuffleResident(executor int, bytes int64) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.shuffleResident[executor] += bytes
}

// get returns the cached value, its holding executor, and whether the block
// lives on the executor's disk (MEMORY_AND_DISK demotion) rather than in
// memory, marking in-memory blocks recently used.
func (mm *memoryManager) get(key blockKey) (v any, executor int, onDisk, ok bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	b, ok := mm.index[key]
	if !ok {
		return nil, 0, false, false
	}
	if !b.onDisk {
		mm.stores[b.executor].lru.MoveToFront(b.lruElem)
	}
	return b.value, b.executor, b.onDisk, true
}

// put stores a block on the executor, evicting least-recently-used blocks to
// make room — but, as in Spark's MemoryStore, never blocks of the same RDD:
// an RDD caching itself must not thrash its own partitions. If the block
// cannot fit in memory without breaking that rule, it is dropped under
// MEMORY_ONLY (the partition recomputes from lineage on later use) or
// written to the executor's disk under MEMORY_AND_DISK (diskFallback).
//
// It reports whether the block was stored (and where) and which blocks were
// evicted to make room, so the caller can publish BlockCached/BlockEvicted
// events; the returned blocks are no longer referenced by the manager.
func (mm *memoryManager) put(executor int, key blockKey, v any, bytes int64, diskFallback bool) (stored, onDisk bool, evicted []*block) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	if _, dup := mm.index[key]; dup {
		return false, false, nil // another task cached this partition concurrently
	}
	st := mm.stores[executor]
	room := st.storageRoom()
	if bytes > room {
		if diskFallback {
			mm.index[key] = &block{key: key, executor: executor, value: v, bytes: bytes, onDisk: true}
			return true, true, nil
		}
		return false, false, nil
	}
	// Decide up front whether enough evictable (different-RDD) bytes exist.
	freeable := int64(0)
	for e := st.lru.Back(); e != nil; e = e.Prev() {
		if b := e.Value.(*block); b.key.rdd != key.rdd {
			freeable += b.bytes
		}
	}
	if st.used-freeable+bytes > room {
		if diskFallback {
			mm.index[key] = &block{key: key, executor: executor, value: v, bytes: bytes, onDisk: true}
			return true, true, nil
		}
		return false, false, nil
	}
	for e := st.lru.Back(); e != nil && st.used+bytes > room; {
		prev := e.Prev()
		if b := e.Value.(*block); b.key.rdd != key.rdd {
			mm.removeLocked(b)
			mm.evictions++
			evicted = append(evicted, b)
		}
		e = prev
	}
	b := &block{key: key, executor: executor, value: v, bytes: bytes}
	b.lruElem = st.lru.PushFront(b)
	st.used += bytes
	mm.index[key] = b
	return true, false, evicted
}

func (mm *memoryManager) removeLocked(b *block) {
	if !b.onDisk {
		st := mm.stores[b.executor]
		st.lru.Remove(b.lruElem)
		st.used -= b.bytes
	}
	delete(mm.index, b.key)
}

// dropExecutor discards every block held by the executor (executor failure),
// memory and disk alike.
func (mm *memoryManager) dropExecutor(executor int) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	for key, b := range mm.index {
		_ = key
		if b.executor == executor {
			mm.removeLocked(b)
		}
	}
}

// dropRDD removes every cached partition of the RDD (Unpersist).
func (mm *memoryManager) dropRDD(rddID int) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	for key, b := range mm.index {
		if key.rdd == rddID {
			mm.removeLocked(b)
		}
	}
}

// storageBytes is the total bytes of in-memory cached blocks across
// executors (disk-demoted blocks occupy no storage memory).
func (mm *memoryManager) storageBytes() int64 {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	var total int64
	for _, st := range mm.stores {
		total += st.used
	}
	return total
}

// totalBytes is everything the manager accounts for across executors: cached
// blocks, outstanding execution grants, and retained shuffle outputs (which
// the seed's accounting missed entirely).
func (mm *memoryManager) totalBytes() int64 {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	var total int64
	for _, st := range mm.stores {
		total += st.used + st.execUsed
	}
	for _, b := range mm.shuffleResident {
		total += b
	}
	return total
}

// shuffleResidentBytes is the retained shuffle output total across executors.
func (mm *memoryManager) shuffleResidentBytes() int64 {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	var total int64
	for _, b := range mm.shuffleResident {
		total += b
	}
	return total
}

func (mm *memoryManager) evictionCount() int64 {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.evictions
}
