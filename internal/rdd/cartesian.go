// Cartesian: the cross-join operator of the all-pairs association engine.
// Output partition p = i*right.parts + j pairs every element of left
// partition i with every element of right partition j — the co-partitioned
// cross join: no shuffle, each task reads exactly one partition per side, and
// a lost output partition recomputes from exactly two lineage partitions, so
// the operator composes with caching, speculation, adaptive planning, and
// fault recovery like any narrow op. The right side is drained once per task
// and the left streamed over it, so the smaller dataset belongs on the right
// (the driver-side strategy pick in internal/assoc puts it there).

package rdd

import "fmt"

// Pair is one element of a cartesian product.
type Pair[A, B any] struct {
	Left  A
	Right B
}

// Cartesian returns the cross product of two RDDs with
// left.parts × right.parts partitions: partition i*right.parts + j yields
// Pair{l, r} for every l in left partition i and r in right partition j, in
// row-major element order (all rights of the first left, then the next left).
func Cartesian[A, B any](left *RDD[A], right *RDD[B]) *RDD[Pair[A, B]] {
	if left.n.ctx != right.n.ctx {
		panic("rdd: cartesian of RDDs from different contexts")
	}
	l, r := left.n, right.n
	n := newTypedNode[Pair[A, B]](l.ctx, fmt.Sprintf("cartesian(%s,%s)", l.name, r.name), l.parts*r.parts)
	n.narrowParents = []*node{l, r}
	n.bytesPerElem = l.bytesPerElem + r.bytesPerElem
	n.fusedDepth = max(l.fusedDepth, r.fusedDepth) + 1
	rightParts := r.parts
	n.compute = func(tc *taskContext, p int) any {
		i, j := p/rightParts, p%rightParts
		// Drain the right partition once; the left streams over it.
		rows := drainSeq(seqOf[B](r.iterate(tc, j)))
		in := seqOf[A](l.iterate(tc, i))
		return boxSeq[Pair[A, B]](func(yield func(Pair[A, B]) bool) {
			for lv := range in {
				for _, rv := range rows {
					if !yield(Pair[A, B]{Left: lv, Right: rv}) {
						return
					}
				}
			}
		})
	}
	return &RDD[Pair[A, B]]{n: n}
}
