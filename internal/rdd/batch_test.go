package rdd

import (
	"testing"
)

func TestMapBatchesPreservesOrderAndBounds(t *testing.T) {
	c := newTestContext(t, 2)
	in := Parallelize(c, seq(103), 4)
	sums := MapBatches(in, "sumBatch", 10, func(p int, batch []int) []int {
		out := make([]int, len(batch))
		copy(out, batch)
		return out
	})
	got, err := Collect(sums)
	if err != nil {
		t.Fatal(err)
	}
	var flat []int
	maxBatch := 0
	for _, b := range got {
		flat = append(flat, b...)
		if len(b) > maxBatch {
			maxBatch = len(b)
		}
		if len(b) == 0 {
			t.Fatal("empty batch yielded")
		}
	}
	if len(flat) != 103 {
		t.Fatalf("flattened %d elements, want 103", len(flat))
	}
	for i, v := range flat {
		if v != i {
			t.Fatalf("element %d = %d; batching reordered the stream", i, v)
		}
	}
	if maxBatch > 10 {
		t.Fatalf("batch of %d elements exceeds size 10", maxBatch)
	}
}

func TestMapBatchesReusesBuffer(t *testing.T) {
	// The contract says f must not retain the batch: verify the engine indeed
	// hands the same backing array to consecutive batches of one partition.
	c := newTestContext(t, 1)
	in := Parallelize(c, seq(40), 1)
	var first []int
	distinct := 0
	probe := MapBatches(in, "probe", 8, func(p int, batch []int) int {
		if first == nil {
			first = batch[:1]
		} else if &first[0] != &batch[0] {
			distinct++
		}
		return len(batch)
	})
	if _, err := Collect(probe); err != nil {
		t.Fatal(err)
	}
	if distinct != 0 {
		t.Fatalf("%d batches got fresh buffers; the buffer should be reused", distinct)
	}
}

func TestMapBatchesStaysFused(t *testing.T) {
	c := newTestContext(t, 1)
	in := Parallelize(c, seq(64), 2)
	batched := MapBatches(in, "len", 16, func(p int, batch []int) int { return len(batch) })
	doubled := Map(batched, "double", func(n int) int { return 2 * n })
	if _, err := Collect(doubled); err != nil {
		t.Fatal(err)
	}
	maxChain := 0
	for _, m := range c.Jobs() {
		if m.MaxFusedChain > maxChain {
			maxChain = m.MaxFusedChain
		}
	}
	if maxChain < 3 {
		t.Fatalf("fused chain %d; MapBatches broke fusion", maxChain)
	}
}

func TestSetSizeFuncDrivesCacheAccounting(t *testing.T) {
	c := newTestContext(t, 1)
	in := Parallelize(c, []int{1, 10, 100}, 1)
	sized := Map(in, "id", func(n int) int { return n }).
		SetSizeHint(64).
		SetSizeFunc(func(n int) int64 { return int64(n) }).
		Cache()
	if _, err := Collect(sized); err != nil {
		t.Fatal(err)
	}
	if got := c.CachedBytes(); got != 111 {
		t.Fatalf("cached %d bytes, want the per-element sum 111", got)
	}
}
