package rdd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sparkscore/internal/cluster"
)

// countingRDD builds an RDD whose compute increments a counter, to observe
// cache hits versus lineage recomputation.
func countingRDD(c *Context, n, parts int, computed *atomic.Int64) *RDD[int] {
	base := Parallelize(c, seq(n), parts)
	return Map(base, "counted", func(x int) int {
		computed.Add(1)
		return x * 10
	})
}

func TestCacheAvoidsRecompute(t *testing.T) {
	c := newTestContext(t, 2)
	var computed atomic.Int64
	r := countingRDD(c, 40, 4, &computed).Cache()
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	first := computed.Load()
	if first != 40 {
		t.Fatalf("first action computed %d elements, want 40", first)
	}
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	if computed.Load() != first {
		t.Fatalf("cached RDD recomputed: %d -> %d", first, computed.Load())
	}
	jobs := c.Jobs()
	if jobs[len(jobs)-1].CacheReadBytes == 0 {
		t.Fatal("second action recorded no cache reads")
	}
}

func TestUncachedRecomputesEveryAction(t *testing.T) {
	c := newTestContext(t, 2)
	var computed atomic.Int64
	r := countingRDD(c, 40, 4, &computed)
	Collect(r)
	Collect(r)
	if computed.Load() != 80 {
		t.Fatalf("uncached RDD computed %d element-visits, want 80", computed.Load())
	}
}

func TestUnpersistRestoresRecompute(t *testing.T) {
	c := newTestContext(t, 2)
	var computed atomic.Int64
	r := countingRDD(c, 20, 2, &computed).Cache()
	Collect(r)
	r.Unpersist()
	if c.CachedBytes() != 0 {
		t.Fatalf("%d bytes still cached after Unpersist", c.CachedBytes())
	}
	Collect(r)
	if computed.Load() != 40 {
		t.Fatalf("computed %d element-visits, want 40 after Unpersist", computed.Load())
	}
}

func TestCacheSurvivesDerivedUse(t *testing.T) {
	// A downstream map over a cached parent must read the cache, not the
	// parent's lineage.
	c := newTestContext(t, 2)
	var computed atomic.Int64
	parent := countingRDD(c, 30, 3, &computed).Cache()
	Collect(parent)
	child := Map(parent, "plus", func(x int) int { return x + 1 })
	got, err := Collect(child)
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 30 {
		t.Fatalf("derived action recomputed the cached parent (%d visits)", computed.Load())
	}
	if got[0] != 1 {
		t.Fatalf("got[0] = %d", got[0])
	}
}

func TestExecutorFailureRecoversFromLineage(t *testing.T) {
	c := newTestContext(t, 2)
	var computed atomic.Int64
	r := countingRDD(c, 40, 4, &computed).Cache()
	want, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every executor but one: all cached blocks on the dead ones vanish.
	live := c.Cluster().LiveExecutors()
	for _, id := range live[:len(live)-1] {
		if err := c.FailExecutor(id); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("post-failure collect size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-failure results differ at %d", i)
		}
	}
	if computed.Load() == 40 {
		t.Fatal("no recomputation after losing cached blocks")
	}
}

func TestMidJobExecutorFailure(t *testing.T) {
	c := newTestContext(t, 3)
	r := Map(Parallelize(c, seq(200), 50), "x2", func(x int) int { return 2 * x })
	c.FailExecutorAfter(0, 10)
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("collected %d", len(got))
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if c.Cluster().Live(0) {
		t.Fatal("failure plan did not fire")
	}
}

func TestShuffleSurvivesExecutorFailure(t *testing.T) {
	// External shuffle service semantics: map outputs outlive executors.
	c := newTestContext(t, 2)
	in := []KV[int, int]{{1, 1}, {2, 2}, {1, 3}}
	r := ReduceByKey(Parallelize(c, in, 2), func(a, b int) int { return a + b }, 2)
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	if err := c.FailExecutor(0); err != nil {
		t.Fatal(err)
	}
	out, err := CollectAsMap(r)
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != 4 || out[2] != 2 {
		t.Fatalf("out = %v", out)
	}
	jobs := c.Jobs()
	if jobs[len(jobs)-1].Stages != 1 {
		t.Fatal("map stage re-ran despite external shuffle service")
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	c := newTestContext(t, 2)
	before := c.VirtualTime()
	if before != 0 {
		t.Fatalf("fresh context clock %v", before)
	}
	Collect(Parallelize(c, seq(10), 2))
	if c.VirtualTime() <= before {
		t.Fatal("clock did not advance")
	}
	c.ResetClock()
	if c.VirtualTime() != 0 || len(c.Jobs()) != 0 {
		t.Fatal("ResetClock did not clear state")
	}
}

func TestVirtualTimeScalesWithSlots(t *testing.T) {
	// The same 96-task stage must be faster in virtual time on 12 nodes than
	// on 1 node: per-task scheduling overhead is fixed, slots differ 12x.
	elapsed := func(nodes int) float64 {
		c, err := New(Config{
			Cluster: cluster.Config{Nodes: nodes, Spec: cluster.M3TwoXLarge},
			Seed:    7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Collect(Parallelize(c, seq(960), 960)); err != nil {
			t.Fatal(err)
		}
		return c.VirtualTime()
	}
	oneNode, twelveNodes := elapsed(1), elapsed(12)
	if twelveNodes >= oneNode {
		t.Fatalf("1 node: %.4fs, 12 nodes: %.4fs — more nodes not faster", oneNode, twelveNodes)
	}
	if oneNode/twelveNodes < 3 {
		t.Fatalf("speedup %.2fx over 12x slots, want at least 3x", oneNode/twelveNodes)
	}
}

func TestBroadcast(t *testing.T) {
	c := newTestContext(t, 2)
	b := NewBroadcast(c, []float64{1, 2, 3}, 24)
	if got := b.Value(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("broadcast value %v", got)
	}
	before := c.VirtualTime()
	r := Map(Parallelize(c, seq(4), 2), "use", func(x int) float64 { return b.Value()[0] * float64(x) })
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	if c.VirtualTime() <= before {
		t.Fatal("broadcast charge did not reach the clock")
	}
}

func TestJobMetricsRecorded(t *testing.T) {
	c := newTestContext(t, 2)
	Collect(Map(Parallelize(c, seq(10), 5), "m", func(x int) int { return x }))
	jobs := c.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("%d jobs recorded", len(jobs))
	}
	m := jobs[0]
	if m.Action != "collect" || m.Tasks != 5 || m.Stages != 1 || m.VirtualSeconds <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.String() == "" {
		t.Fatal("empty metrics string")
	}
}

func TestSpillChargedWhenWorkingSetExceedsExecutionMemory(t *testing.T) {
	// Two identical workloads; the second context has tiny executors so the
	// shipped partition exceeds per-slot execution memory and incurs spill.
	run := func(memGiB float64) float64 {
		c, err := New(Config{
			Cluster: cluster.Config{
				Nodes:            1,
				Spec:             cluster.NodeSpec{Name: "tiny", VCPUs: 2, MemGiB: memGiB + 1},
				ExecutorsPerNode: 1, CoresPerExecutor: 2, MemPerExecutorGiB: memGiB,
			},
			Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := Parallelize(c, seq(100000), 2).SetSizeHint(1 << 12) // ~400 MB ship
		if _, err := Count(r); err != nil {
			t.Fatal(err)
		}
		return c.VirtualTime()
	}
	roomy := run(8)     // 8 GiB executor: fits
	cramped := run(0.1) // 100 MiB executor: spills
	if cramped <= roomy*1.5 {
		t.Fatalf("cramped %.3fs vs roomy %.3fs — spill not charged", cramped, roomy)
	}
}

func TestCacheEvictionWhenStorageFull(t *testing.T) {
	c, err := New(Config{
		Cluster: cluster.Config{
			Nodes:            1,
			Spec:             cluster.NodeSpec{Name: "tiny", VCPUs: 2, MemGiB: 1},
			ExecutorsPerNode: 1, CoresPerExecutor: 2, MemPerExecutorGiB: 0.5,
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var computed atomic.Int64
	// 20 partitions x ~80 MB each, far beyond the ~300 MB storage pool.
	base := Parallelize(c, seq(20000), 20).SetSizeHint(1 << 12)
	r := Map(base, "counted", func(x int) int { computed.Add(1); return x }).SetSizeHint(1 << 22).Cache()
	Collect(r)
	first := computed.Load()
	Collect(r)
	if computed.Load() == first {
		t.Fatal("no recomputation despite guaranteed eviction")
	}
}

func TestSaveAsTextFileRoundTrip(t *testing.T) {
	c := newTestContext(t, 2)
	r := Map(Parallelize(c, seq(20), 4), "label", func(x int) string {
		return fmt.Sprintf("v=%d", x)
	})
	if err := SaveAsTextFile(r, "out.txt", func(s string) string { return s }); err != nil {
		t.Fatal(err)
	}
	back, err := c.TextFile("out.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := Collect(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 20 || lines[0] != "v=0" || lines[19] != "v=19" {
		t.Fatalf("round trip = %v", lines)
	}
	if err := SaveAsTextFile(r, "", func(s string) string { return s }); err == nil {
		t.Fatal("empty output name accepted")
	}
}

func TestConcurrentJobsOnOneContext(t *testing.T) {
	// Several actions in flight at once must not corrupt each other; the
	// driver lock serialises metric/clock updates, everything else is
	// per-job state.
	c := newTestContext(t, 2)
	base := Parallelize(c, seq(500), 10).Cache()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sum, err := Reduce(Map(base, "add", func(x int) int { return x + w }),
				func(a, b int) int { return a + b })
			if err != nil {
				errs <- err
				return
			}
			want := 500*499/2 + 500*w
			if sum != want {
				errs <- fmt.Errorf("worker %d: sum %d, want %d", w, sum, want)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCacheShuffledRDD(t *testing.T) {
	// Caching an RDD downstream of a shuffle must serve later actions from
	// memory without rereading shuffle outputs.
	c := newTestContext(t, 2)
	var evaluated atomic.Int64
	in := make([]KV[int, int], 100)
	for i := range in {
		in[i] = KV[int, int]{K: i % 10, V: i}
	}
	summed := ReduceByKey(Parallelize(c, in, 4), func(a, b int) int { return a + b }, 4)
	counted := Map(summed, "count", func(kv KV[int, int]) KV[int, int] {
		evaluated.Add(1)
		return kv
	}).Cache()
	first, err := CollectAsMap(counted)
	if err != nil {
		t.Fatal(err)
	}
	n1 := evaluated.Load()
	second, err := CollectAsMap(counted)
	if err != nil {
		t.Fatal(err)
	}
	if evaluated.Load() != n1 {
		t.Fatal("cached post-shuffle RDD recomputed")
	}
	for k, v := range first {
		if second[k] != v {
			t.Fatalf("cached result differs at key %d", k)
		}
	}
}

func TestUnionOfShuffledRDDs(t *testing.T) {
	c := newTestContext(t, 2)
	a := ReduceByKey(Parallelize(c, []KV[int, int]{{1, 1}, {1, 2}}, 1),
		func(x, y int) int { return x + y }, 1)
	b := ReduceByKey(Parallelize(c, []KV[int, int]{{2, 5}}, 1),
		func(x, y int) int { return x + y }, 1)
	out, err := CollectAsMap(Union(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != 3 || out[2] != 5 {
		t.Fatalf("union of shuffles = %v", out)
	}
}

func TestLocalityPlacementReadsLocally(t *testing.T) {
	// With delay scheduling on, the bulk of DFS input should be read on
	// nodes holding a replica; with locality disabled, a substantial share
	// goes remote.
	run := func(disable bool) (local, total int64) {
		c, err := New(Config{
			Cluster:         cluster.Config{Nodes: 6, Spec: cluster.M3TwoXLarge},
			DFSBlockSize:    2 << 10,
			DFSReplication:  1, // single replica makes locality misses visible
			Seed:            3,
			DisableLocality: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for i := 0; i < 2000; i++ {
			fmt.Fprintf(&sb, "line-%06d\n", i)
		}
		c.FS().Write("loc.txt", []byte(sb.String()))
		r, err := c.TextFile("loc.txt", 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Count(r); err != nil {
			t.Fatal(err)
		}
		jobs := c.Jobs()
		m := jobs[len(jobs)-1]
		return m.DFSLocalBytes, m.DFSBytes
	}
	// With single replicas randomly placed, delay scheduling keeps most —
	// not all — reads local (a node holding several blocks overflows to
	// remote executors rather than stacking its own). Random placement
	// should be near the 1/6 base rate of a 6-node cluster.
	local, total := run(false)
	if total == 0 || float64(local)/float64(total) < 0.7 {
		t.Fatalf("locality on: %d of %d bytes local", local, total)
	}
	localOff, totalOff := run(true)
	if float64(localOff)/float64(totalOff) > 0.5 {
		t.Fatalf("locality off: %d of %d bytes still local — random placement not random", localOff, totalOff)
	}
	if float64(localOff)/float64(totalOff) >= float64(local)/float64(total) {
		t.Fatal("random placement read at least as locally as delay scheduling")
	}
}

func TestMemoryAndDiskAvoidsRecompute(t *testing.T) {
	// Under MEMORY_AND_DISK, partitions that overflow executor storage are
	// demoted to disk instead of dropped: later actions read them back
	// without recomputation.
	c, err := New(Config{
		Cluster: cluster.Config{
			Nodes:            1,
			Spec:             cluster.NodeSpec{Name: "tiny", VCPUs: 2, MemGiB: 1},
			ExecutorsPerNode: 1, CoresPerExecutor: 2, MemPerExecutorGiB: 0.5,
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var computed atomic.Int64
	// 20 partitions x ~4 MB each, far beyond the ~300 MB... (same shape as
	// the MEMORY_ONLY eviction test, which does recompute).
	base := Parallelize(c, seq(20000), 20).SetSizeHint(1 << 12)
	r := Map(base, "counted", func(x int) int { computed.Add(1); return x }).
		SetSizeHint(1 << 22).Persist(MemoryAndDisk)
	want, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	first := computed.Load()
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() != first {
		t.Fatalf("MEMORY_AND_DISK recomputed: %d -> %d element-visits", first, computed.Load())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("disk-served results differ at %d", i)
		}
	}
}

func TestMemoryAndDiskChargesDiskReads(t *testing.T) {
	// A second action over demoted blocks must record cache reads and cost
	// more virtual time than purely in-memory reads of the same data.
	run := func(level StorageLevel, memGiB float64) float64 {
		c, err := New(Config{
			Cluster: cluster.Config{
				Nodes:            1,
				Spec:             cluster.NodeSpec{Name: "tiny", VCPUs: 2, MemGiB: 16},
				ExecutorsPerNode: 1, CoresPerExecutor: 2, MemPerExecutorGiB: memGiB,
			},
			Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := Parallelize(c, seq(20000), 10).SetSizeHint(1 << 14).Persist(level)
		if _, err := Count(r); err != nil {
			t.Fatal(err)
		}
		c.ResetClock()
		if _, err := Count(r); err != nil {
			t.Fatal(err)
		}
		return c.VirtualTime()
	}
	inMemory := run(MemoryAndDisk, 8)    // everything fits in memory
	fromDisk := run(MemoryAndDisk, 0.01) // everything demoted to disk
	if fromDisk <= inMemory {
		t.Fatalf("disk-served action %.4fs not slower than memory-served %.4fs", fromDisk, inMemory)
	}
}

func TestPersistRejectsUnknownLevel(t *testing.T) {
	c := newTestContext(t, 1)
	r := Parallelize(c, seq(4), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown storage level accepted")
		}
	}()
	r.Persist(StorageLevel(9))
}

func TestCheckpointTruncatesLineage(t *testing.T) {
	c := newTestContext(t, 2)
	var computed atomic.Int64
	expensive := countingRDD(c, 30, 3, &computed)
	ck, err := Checkpoint(expensive, "ck.txt",
		func(x int) string { return fmt.Sprintf("%d", x) },
		func(s string) (int, error) {
			var v int
			_, err := fmt.Sscanf(s, "%d", &v)
			return v, err
		})
	if err != nil {
		t.Fatal(err)
	}
	after := computed.Load()
	if after != 30 {
		t.Fatalf("checkpointing computed %d element-visits, want 30", after)
	}
	// Actions on the checkpointed RDD never touch the original lineage —
	// even after every executor holding state fails.
	got, err := Collect(ck)
	if err != nil {
		t.Fatal(err)
	}
	live := c.Cluster().LiveExecutors()
	for _, id := range live[:len(live)-1] {
		if err := c.FailExecutor(id); err != nil {
			t.Fatal(err)
		}
	}
	again, err := Collect(ck)
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() != after {
		t.Fatalf("post-checkpoint action recomputed the original lineage (%d visits)", computed.Load())
	}
	if len(got) != 30 || len(again) != 30 {
		t.Fatalf("checkpoint round trip sizes %d/%d", len(got), len(again))
	}
	for i := range got {
		if got[i] != i*10 || again[i] != i*10 {
			t.Fatalf("checkpoint values wrong at %d: %d/%d", i, got[i], again[i])
		}
	}
}

func TestCheckpointDecodeErrorSurfaces(t *testing.T) {
	c := newTestContext(t, 1)
	r := Parallelize(c, []int{1, 2}, 1)
	ck, err := Checkpoint(r, "bad.txt",
		func(x int) string { return "x" }, // encode garbage
		func(s string) (int, error) { return 0, fmt.Errorf("bad line %q", s) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(ck); err == nil {
		t.Fatal("decode failure did not surface")
	}
}
