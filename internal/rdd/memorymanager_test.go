package rdd

import (
	"testing"

	"sparkscore/internal/cluster"
)

func newTestMM(t *testing.T, memGiB float64) *memoryManager {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:            1,
		Spec:             cluster.NodeSpec{Name: "t", VCPUs: 4, MemGiB: memGiB * 2},
		ExecutorsPerNode: 2, CoresPerExecutor: 2, MemPerExecutorGiB: memGiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return newMemoryManager(cl, 1.0, 0.5) // storage capacity = memGiB/2 per executor
}

func TestMemoryManagerPutGet(t *testing.T) {
	mm := newTestMM(t, 1)
	key := blockKey{rdd: 1, part: 0}
	mm.put(0, key, "hello", 100, false)
	v, holder, _, ok := mm.get(key)
	if !ok || v != "hello" || holder != 0 {
		t.Fatalf("get = (%v,%d,%v)", v, holder, ok)
	}
	if _, _, _, ok := mm.get(blockKey{rdd: 1, part: 9}); ok {
		t.Fatal("missing block found")
	}
	if mm.totalBytes() != 100 {
		t.Fatalf("totalBytes = %d", mm.totalBytes())
	}
}

func TestMemoryManagerDuplicatePutIgnored(t *testing.T) {
	mm := newTestMM(t, 1)
	key := blockKey{rdd: 1, part: 0}
	mm.put(0, key, "first", 100, false)
	mm.put(1, key, "second", 100, false)
	v, holder, _, _ := mm.get(key)
	if v != "first" || holder != 0 {
		t.Fatalf("duplicate put replaced block: (%v,%d)", v, holder)
	}
	if mm.totalBytes() != 100 {
		t.Fatalf("totalBytes = %d after duplicate put", mm.totalBytes())
	}
}

func TestMemoryManagerLRUEviction(t *testing.T) {
	mm := newTestMM(t, 1) // 512 MiB storage capacity per executor
	cap := int64(512 << 20)
	a := blockKey{rdd: 1, part: 0}
	b := blockKey{rdd: 2, part: 0}
	c := blockKey{rdd: 3, part: 0}
	mm.put(0, a, "a", cap/2, false)
	mm.put(0, b, "b", cap/2, false)
	// Touch a so b becomes least-recently-used.
	mm.get(a)
	mm.put(0, c, "c", cap/2, false)
	if _, _, _, ok := mm.get(b); ok {
		t.Fatal("LRU block b survived eviction")
	}
	if _, _, _, ok := mm.get(a); !ok {
		t.Fatal("recently-used block a evicted")
	}
	if _, _, _, ok := mm.get(c); !ok {
		t.Fatal("new block c not stored")
	}
	if mm.evictionCount() != 1 {
		t.Fatalf("evictions = %d, want 1", mm.evictionCount())
	}
}

func TestMemoryManagerSameRDDNeverEvictsItself(t *testing.T) {
	// Spark's MemoryStore rule: caching a partition of RDD r never evicts
	// other partitions of r — the incoming block is dropped instead.
	mm := newTestMM(t, 1)
	cap := int64(512 << 20)
	a := blockKey{rdd: 1, part: 0}
	b := blockKey{rdd: 1, part: 1}
	c := blockKey{rdd: 1, part: 2}
	mm.put(0, a, "a", cap/2, false)
	mm.put(0, b, "b", cap/2, false)
	mm.put(0, c, "c", cap/2, false)
	if _, _, _, ok := mm.get(a); !ok {
		t.Fatal("same-RDD block a evicted")
	}
	if _, _, _, ok := mm.get(b); !ok {
		t.Fatal("same-RDD block b evicted")
	}
	if _, _, _, ok := mm.get(c); ok {
		t.Fatal("overflow block c stored despite same-RDD protection")
	}
	if mm.evictionCount() != 0 {
		t.Fatalf("evictions = %d, want 0", mm.evictionCount())
	}
	// A different RDD's block may still evict them.
	d := blockKey{rdd: 2, part: 0}
	mm.put(0, d, "d", cap/2, false)
	if _, _, _, ok := mm.get(d); !ok {
		t.Fatal("different-RDD block not stored")
	}
	if mm.evictionCount() != 1 {
		t.Fatalf("evictions = %d, want 1 after cross-RDD put", mm.evictionCount())
	}
}

func TestMemoryManagerOversizedBlockNotStored(t *testing.T) {
	mm := newTestMM(t, 1)
	key := blockKey{rdd: 1, part: 0}
	mm.put(0, key, "big", 1<<40, false)
	if _, _, _, ok := mm.get(key); ok {
		t.Fatal("oversized block stored")
	}
}

func TestMemoryManagerDropExecutor(t *testing.T) {
	mm := newTestMM(t, 1)
	mm.put(0, blockKey{rdd: 1, part: 0}, "x", 10, false)
	mm.put(1, blockKey{rdd: 1, part: 1}, "y", 10, false)
	mm.dropExecutor(0)
	if _, _, _, ok := mm.get(blockKey{rdd: 1, part: 0}); ok {
		t.Fatal("block on failed executor survived")
	}
	if _, _, _, ok := mm.get(blockKey{rdd: 1, part: 1}); !ok {
		t.Fatal("block on live executor dropped")
	}
	if mm.totalBytes() != 10 {
		t.Fatalf("totalBytes = %d", mm.totalBytes())
	}
}

func TestMemoryManagerDropRDD(t *testing.T) {
	mm := newTestMM(t, 1)
	mm.put(0, blockKey{rdd: 1, part: 0}, "x", 10, false)
	mm.put(0, blockKey{rdd: 2, part: 0}, "y", 10, false)
	mm.dropRDD(1)
	if _, _, _, ok := mm.get(blockKey{rdd: 1, part: 0}); ok {
		t.Fatal("dropped RDD block survived")
	}
	if _, _, _, ok := mm.get(blockKey{rdd: 2, part: 0}); !ok {
		t.Fatal("other RDD's block dropped")
	}
}

// --- execution/storage arbitration ---

func TestAcquireExecutionGrantAndRelease(t *testing.T) {
	mm := newTestMM(t, 1) // pool = 1 GiB per executor
	pool := int64(1 << 30)
	ok, evicted := mm.acquireExecution(0, pool/2, acqSpill)
	if !ok || evicted != nil {
		t.Fatalf("grant within pool = (%v, %v)", ok, evicted)
	}
	if mm.totalBytes() != pool/2 {
		t.Fatalf("totalBytes = %d after grant", mm.totalBytes())
	}
	// A spillable request beyond the remainder is denied without eviction.
	if ok, _ := mm.acquireExecution(0, pool, acqSpill); ok {
		t.Fatal("over-pool spillable request granted")
	}
	mm.releaseExecution(0, pool/2)
	if mm.totalBytes() != 0 {
		t.Fatalf("totalBytes = %d after release", mm.totalBytes())
	}
	// Executors have independent pools.
	if ok, _ := mm.acquireExecution(1, pool, acqSpill); !ok {
		t.Fatal("full-pool grant on idle executor denied")
	}
}

func TestAcquireExecutionSpillModeNeverEvicts(t *testing.T) {
	mm := newTestMM(t, 1)
	pool := int64(1 << 30)
	mm.put(0, blockKey{rdd: 1, part: 0}, "cached", pool/2, false) // fills storage region
	if ok, _ := mm.acquireExecution(0, pool*3/4, acqSpill); ok {
		t.Fatal("spillable request granted past storage occupancy")
	}
	if _, _, _, ok := mm.get(blockKey{rdd: 1, part: 0}); !ok {
		t.Fatal("spillable denial evicted a cached block")
	}
}

func TestAcquireExecutionMustFitEvictsStorage(t *testing.T) {
	mm := newTestMM(t, 1)
	pool := int64(1 << 30)
	mm.put(0, blockKey{rdd: 1, part: 0}, "a", pool/4, false)
	mm.put(0, blockKey{rdd: 1, part: 1}, "b", pool/4, false)
	// Needs 7/8 of the pool: storage must shed one block (LRU first).
	ok, evicted := mm.acquireExecution(0, pool*5/8, acqMustFit)
	if !ok {
		t.Fatal("must-fit request denied despite evictable storage")
	}
	if len(evicted) != 1 || evicted[0].key != (blockKey{rdd: 1, part: 0}) {
		t.Fatalf("evicted %v, want LRU block {1 0}", evicted)
	}
	if _, _, _, ok := mm.get(blockKey{rdd: 1, part: 1}); !ok {
		t.Fatal("must-fit evicted more than needed")
	}
	// A request no amount of eviction can satisfy is denied (the OOM model) —
	// but only after storage was shed.
	ok, evicted = mm.acquireExecution(0, pool, acqMustFit)
	if ok {
		t.Fatal("impossible must-fit request granted")
	}
	if len(evicted) != 1 {
		t.Fatalf("denial evicted %d blocks, want 1", len(evicted))
	}
}

func TestAcquireExecutionForceOvercommits(t *testing.T) {
	mm := newTestMM(t, 1)
	pool := int64(1 << 30)
	ok, _ := mm.acquireExecution(0, pool*2, acqForce)
	if !ok {
		t.Fatal("forced request denied")
	}
	if mm.totalBytes() != pool*2 {
		t.Fatalf("totalBytes = %d, want overcommitted %d", mm.totalBytes(), pool*2)
	}
}

func TestExecutionPressureThrottlesStorage(t *testing.T) {
	// Execution grants past the pool's non-storage region shrink the room
	// storage may occupy: caching under shuffle pressure drops blocks.
	mm := newTestMM(t, 1)
	pool := int64(1 << 30)
	if ok, _ := mm.acquireExecution(0, pool*3/4, acqSpill); !ok {
		t.Fatal("grant within empty pool denied")
	}
	stored, onDisk, _ := mm.put(0, blockKey{rdd: 1, part: 0}, "x", pool/2, false)
	if stored {
		t.Fatal("block stored past the execution-shrunk storage room")
	}
	stored, onDisk, _ = mm.put(0, blockKey{rdd: 1, part: 1}, "y", pool/2, true)
	if !stored || !onDisk {
		t.Fatalf("MEMORY_AND_DISK block under pressure = (%v, %v), want disk demotion", stored, onDisk)
	}
	// Within the shrunk room, storage still works.
	if stored, _, _ := mm.put(0, blockKey{rdd: 1, part: 2}, "z", pool/8, false); !stored {
		t.Fatal("block within shrunk room not stored")
	}
}

func TestShuffleResidentAccounting(t *testing.T) {
	mm := newTestMM(t, 1)
	mm.addShuffleResident(0, 1000)
	mm.addShuffleResident(1, 500)
	if got := mm.shuffleResidentBytes(); got != 1500 {
		t.Fatalf("shuffleResidentBytes = %d", got)
	}
	if got := mm.totalBytes(); got != 1500 {
		t.Fatalf("totalBytes = %d", got)
	}
	if got := mm.storageBytes(); got != 0 {
		t.Fatalf("storageBytes = %d, resident shuffle output is not cache", got)
	}
	mm.addShuffleResident(0, -1000)
	if got := mm.shuffleResidentBytes(); got != 500 {
		t.Fatalf("shuffleResidentBytes = %d after release", got)
	}
}
