// Per-job metrics, the engine's counterpart of the Spark UI numbers the
// paper's runtimes were read from.

package rdd

import "fmt"

// JobMetrics summarises one action's execution.
type JobMetrics struct {
	Action string // collect, count, reduce, foreach
	RDD    string // lineage label of the action's RDD

	Stages int
	Tasks  int

	// VirtualSeconds is the job's simulated wall-clock on the configured
	// cluster; the sum over jobs is Context.VirtualTime.
	VirtualSeconds float64
	// ComputeSeconds is the total measured host compute across tasks.
	ComputeSeconds float64

	DFSBytes       int64 // total input scanned (local + remote)
	DFSLocalBytes  int64 // portion read on a node holding a replica
	ShuffleBytes   int64
	CacheReadBytes int64
	Evictions      int64
}

// String renders a one-line summary.
func (m JobMetrics) String() string {
	return fmt.Sprintf("%s(%s): %d stages, %d tasks, %.3f sim-s, %.3f cpu-s, dfs=%dB shuffle=%dB cache=%dB",
		m.Action, m.RDD, m.Stages, m.Tasks, m.VirtualSeconds, m.ComputeSeconds,
		m.DFSBytes, m.ShuffleBytes, m.CacheReadBytes)
}
