// Per-job metrics, the engine's counterpart of the Spark UI numbers the
// paper's runtimes were read from.

package rdd

import "fmt"

// JobMetrics summarises one action's execution.
type JobMetrics struct {
	Action string // collect, count, reduce, foreach
	RDD    string // lineage label of the action's RDD

	Stages int
	Tasks  int

	// VirtualSeconds is the job's simulated wall-clock on the configured
	// cluster; the sum over jobs is Context.VirtualTime.
	VirtualSeconds float64
	// ComputeSeconds is the total measured host compute across tasks.
	ComputeSeconds float64

	DFSBytes           int64 // total input scanned (local + remote)
	DFSLocalBytes      int64 // portion read on a node holding a replica
	ShuffleBytes       int64 // total shuffle fetch (local + remote)
	ShuffleRemoteBytes int64 // portion fetched over the network
	CacheReadBytes     int64
	Evictions          int64

	// Streaming-execution accounting. MaterializedBytes totals the bytes all
	// tasks materialised at pipeline breakers (cache puts, shuffle bucket
	// writes, action boundaries); PeakMaterializedBytes is the largest single
	// task's materialisation — the per-task transient memory high-water mark.
	// MaxFusedChain is the longest fused narrow-operator chain any task drove
	// in a single pass. All three are scheduling-order-insensitive (sums and
	// maxes over the task set), so they are part of the replay fingerprint.
	MaterializedBytes     int64
	PeakMaterializedBytes int64
	MaxFusedChain         int

	// Memory-manager accounting. SpilledBytes/SpillCount total the sorted
	// runs tasks wrote under memory pressure; ShuffleBufferBytes sums each
	// task's shuffle-buffer high-water mark (the bytes the hash shuffle held
	// invisibly); ExecutionPeakBytes is the largest execution-memory grant
	// any single task reached. All are scheduling-order-insensitive (sums and
	// maxes over the task set), so they are part of the replay fingerprint.
	SpilledBytes       int64
	SpillCount         int
	ShuffleBufferBytes int64
	ExecutionPeakBytes int64

	// Recovery accounting: what failure handling cost this job.
	TaskRetries          int // task attempts beyond each task's first
	StageAttempts        int // map-stage resubmissions after fetch failures
	RecomputedPartitions int // map partitions re-executed by resubmissions
	// RecoverySeconds is the virtual time spent on recovery work: failed
	// attempts, task retries, and every task of a resubmitted stage or a
	// re-run result wave. It is a subset of the work folded into
	// VirtualSeconds, reported so chaos runs can state recovery overhead
	// as a fraction of fault-free time.
	RecoverySeconds float64

	// Speculation accounting. SpeculatedTasks counts speculative copies
	// launched, SpeculationWonTasks the copies that finished first, and
	// KilledTasks the losing attempts killed mid-flight. All are
	// scheduling-order-insensitive counts, part of the replay fingerprint.
	SpeculatedTasks     int
	SpeculationWonTasks int
	KilledTasks         int

	// Cancelled marks a job ended by CancelJob or a deadline: it produced no
	// result, but unlike a failure nothing is wrong with the context.
	Cancelled bool
}

// String renders a one-line summary.
func (m JobMetrics) String() string {
	s := fmt.Sprintf("%s(%s): %d stages, %d tasks, %.3f sim-s, %.3f cpu-s, dfs=%dB shuffle=%dB cache=%dB peakMat=%dB fused=%d",
		m.Action, m.RDD, m.Stages, m.Tasks, m.VirtualSeconds, m.ComputeSeconds,
		m.DFSBytes, m.ShuffleBytes, m.CacheReadBytes, m.PeakMaterializedBytes, m.MaxFusedChain)
	if m.SpillCount > 0 {
		s += fmt.Sprintf(" [spill: %d runs, %dB]", m.SpillCount, m.SpilledBytes)
	}
	if m.TaskRetries > 0 || m.StageAttempts > 0 {
		s += fmt.Sprintf(" [recovery: %d retries, %d stage re-attempts, %d recomputed parts, %.3f sim-s]",
			m.TaskRetries, m.StageAttempts, m.RecomputedPartitions, m.RecoverySeconds)
	}
	if m.SpeculatedTasks > 0 {
		s += fmt.Sprintf(" [speculation: %d copies, %d won, %d killed]",
			m.SpeculatedTasks, m.SpeculationWonTasks, m.KilledTasks)
	}
	if m.Cancelled {
		s += " [cancelled]"
	}
	return s
}

// WithoutMeasuredTime returns a copy with every field derived from measured
// host compute time zeroed (VirtualSeconds, ComputeSeconds,
// RecoverySeconds). Everything that remains — stage/task/retry counts and
// byte counters — is bit-for-bit reproducible for a given Config (Seed and
// FaultProfile included), which is what chaos tests compare across runs.
func (m JobMetrics) WithoutMeasuredTime() JobMetrics {
	m.VirtualSeconds, m.ComputeSeconds, m.RecoverySeconds = 0, 0, 0
	return m
}

// RecoveryStats aggregates recovery accounting across jobs.
type RecoveryStats struct {
	TaskRetries          int
	StageAttempts        int
	RecomputedPartitions int
	SpeculatedTasks      int
	SpeculationWonTasks  int
	KilledTasks          int
	CancelledJobs        int
	RecoverySeconds      float64
	VirtualSeconds       float64
}

// SummarizeRecovery folds the recovery counters of a job list (Context.Jobs)
// into one RecoveryStats.
func SummarizeRecovery(jobs []JobMetrics) RecoveryStats {
	var s RecoveryStats
	for _, m := range jobs {
		s.TaskRetries += m.TaskRetries
		s.StageAttempts += m.StageAttempts
		s.RecomputedPartitions += m.RecomputedPartitions
		s.SpeculatedTasks += m.SpeculatedTasks
		s.SpeculationWonTasks += m.SpeculationWonTasks
		s.KilledTasks += m.KilledTasks
		if m.Cancelled {
			s.CancelledJobs++
		}
		s.RecoverySeconds += m.RecoverySeconds
		s.VirtualSeconds += m.VirtualSeconds
	}
	return s
}

// Overhead is the share of virtual time spent on recovery work; 0 for a
// fault-free run.
func (s RecoveryStats) Overhead() float64 {
	if s.VirtualSeconds <= 0 {
		return 0
	}
	return s.RecoverySeconds / s.VirtualSeconds
}
