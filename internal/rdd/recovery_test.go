// Tests for the recovery layer: task retries, executor exclusion, map-stage
// resubmission after shuffle-output loss, failure plans, and deterministic
// fault injection.

package rdd

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"sparkscore/internal/cluster"
)

// shuffledSum builds the canonical two-stage workload: 64 input elements in 8
// map partitions, reduced by key into 8 partitions.
func shuffledSum(c *Context) *RDD[KV[int, int]] {
	in := make([]KV[int, int], 64)
	for i := range in {
		in[i] = KV[int, int]{K: i % 16, V: i}
	}
	return ReduceByKey(Parallelize(c, in, 8), func(a, b int) int { return a + b }, 8)
}

func wantShuffledSum() map[int]int {
	want := map[int]int{}
	for i := 0; i < 64; i++ {
		want[i%16] += i
	}
	return want
}

func TestNodeLossResubmitsMapStage(t *testing.T) {
	c := newTestContext(t, 4)
	r := shuffledSum(c)
	want, err := CollectAsMap(r)
	if err != nil {
		t.Fatal(err)
	}

	// Losing a whole machine destroys its shuffle outputs (the external
	// shuffle service dies with it), unlike a bare executor loss.
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}

	got, err := CollectAsMap(r)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("post-recovery result differs at key %d: %d != %d", k, got[k], v)
		}
	}

	jobs := c.Jobs()
	m := jobs[len(jobs)-1]
	if m.StageAttempts == 0 {
		t.Fatalf("no stage re-attempt recorded after losing map outputs: %+v", m)
	}
	if m.RecomputedPartitions == 0 {
		t.Fatalf("no recomputed partitions recorded: %+v", m)
	}
	if m.Stages < 2 {
		t.Fatalf("resubmission should add a map stage, got %d stages", m.Stages)
	}
	if m.RecoverySeconds <= 0 {
		t.Fatalf("recovery virtual time not charged: %+v", m)
	}
}

func TestMidJobNodeLossRecovers(t *testing.T) {
	c := newTestContext(t, 4)
	c.FailNodeAfter(0, 5)
	got, err := CollectAsMap(shuffledSum(c))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range wantShuffledSum() {
		if got[k] != v {
			t.Fatalf("result differs at key %d: %d != %d", k, got[k], v)
		}
	}
	for _, id := range c.Cluster().ExecutorsOnNode(0) {
		if c.Cluster().Live(id) {
			t.Fatal("node-loss plan did not fire")
		}
	}
	jobs := c.Jobs()
	m := jobs[len(jobs)-1]
	if m.StageAttempts == 0 && m.TaskRetries == 0 {
		t.Fatalf("mid-job node loss left no recovery trace: %+v", m)
	}
}

func TestTaskRetrySucceeds(t *testing.T) {
	c := newTestContext(t, 2)
	var mu sync.Mutex
	attempts := 0
	r := Map(Parallelize(c, seq(8), 8), "flaky", func(x int) int {
		if x == 3 {
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if n <= 2 {
				panic(fmt.Sprintf("transient failure %d", n))
			}
		}
		return x * 10
	})
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	jobs := c.Jobs()
	if retries := jobs[len(jobs)-1].TaskRetries; retries != 2 {
		t.Fatalf("TaskRetries = %d, want 2", retries)
	}
}

func TestTaskRetryExhaustionAborts(t *testing.T) {
	c := newTestContext(t, 2)
	r := Map(Parallelize(c, seq(8), 8), "doomed", func(x int) int {
		if x == 5 {
			panic("permanent failure")
		}
		return x
	})
	_, err := Collect(r)
	if err == nil {
		t.Fatal("job with a permanently failing task did not abort")
	}
	var ta *TaskAbortedError
	if !errors.As(err, &ta) {
		t.Fatalf("error is %T (%v), want *TaskAbortedError", err, err)
	}
	if ta.Attempts != 4 {
		t.Fatalf("aborted after %d attempts, want the default task.maxFailures of 4", ta.Attempts)
	}
	if ta.Part != 5 {
		t.Fatalf("aborted partition %d, want 5", ta.Part)
	}
}

func TestExecutorExclusionAfterFailures(t *testing.T) {
	c, err := New(Config{
		Cluster:              cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge},
		Seed:                 7,
		ExcludeAfterFailures: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	attempts := 0
	r := Map(Parallelize(c, seq(8), 8), "flaky", func(x int) int {
		if x == 3 {
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if n <= 2 {
				panic(fmt.Sprintf("transient failure %d", n))
			}
		}
		return x
	})
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	// Each of the two failed attempts ran on some executor; with a threshold
	// of 1 both hosts are excluded from further scheduling.
	excluded := c.ExcludedExecutors()
	if len(excluded) != 2 {
		t.Fatalf("excluded executors = %v, want 2 entries", excluded)
	}
	for _, id := range excluded {
		if !c.Cluster().Live(id) {
			t.Fatalf("excluded executor %d is dead; exclusion is for live flaky hosts", id)
		}
	}
}

func TestMultipleFailurePlansQueue(t *testing.T) {
	c := newTestContext(t, 3)
	c.FailExecutorAfter(0, 5)
	c.FailExecutorAfter(1, 10)
	got, err := Collect(Map(Parallelize(c, seq(200), 50), "x2", func(x int) int { return 2 * x }))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if c.Cluster().Live(0) || c.Cluster().Live(1) {
		t.Fatalf("queued failure plans did not both fire (live: 0=%v 1=%v)",
			c.Cluster().Live(0), c.Cluster().Live(1))
	}
}

// chaosRun executes the canonical workload under a fault profile and returns
// the result plus the reproducible job fingerprints.
func chaosRun(t *testing.T, faults FaultProfile) (map[int]int, string) {
	t.Helper()
	c, err := New(Config{
		Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge},
		Seed:    7,
		Faults:  faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CollectAsMap(shuffledSum(c))
	if err != nil {
		t.Fatal(err)
	}
	var fp string
	for _, m := range c.Jobs() {
		fp += fmt.Sprintf("%+v\n", m.WithoutMeasuredTime())
	}
	return out, fp
}

func TestFaultInjectionDeterministic(t *testing.T) {
	faults := FaultProfile{TaskCrashProb: 0.15, FetchFailureProb: 0.1, StragglerProb: 0.1}
	out1, fp1 := chaosRun(t, faults)
	out2, fp2 := chaosRun(t, faults)

	for k, v := range wantShuffledSum() {
		if out1[k] != v {
			t.Fatalf("chaos result differs from truth at key %d: %d != %d", k, out1[k], v)
		}
		if out2[k] != v {
			t.Fatalf("second chaos result differs from truth at key %d", k)
		}
	}
	if fp1 != fp2 {
		t.Fatalf("identical Seed+FaultProfile produced different job fingerprints:\n--- run 1 ---\n%s--- run 2 ---\n%s", fp1, fp2)
	}
	// The profile is aggressive enough that a run without any recovery work
	// means injection silently stopped firing.
	_, clean := chaosRun(t, FaultProfile{})
	if fp1 == clean {
		t.Fatal("chaos fingerprint identical to fault-free fingerprint; no faults injected")
	}
}

func TestInjectedFetchFailureRecovers(t *testing.T) {
	c, err := New(Config{
		Cluster: cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge},
		Seed:    7,
		Faults:  FaultProfile{FetchFailureProb: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectAsMap(shuffledSum(c))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range wantShuffledSum() {
		if got[k] != v {
			t.Fatalf("result differs at key %d: %d != %d", k, got[k], v)
		}
	}
	jobs := c.Jobs()
	m := jobs[len(jobs)-1]
	if m.StageAttempts == 0 {
		t.Fatalf("50%% fetch-failure probability produced no stage re-attempts: %+v", m)
	}
}

func TestStageAttemptExhaustionAborts(t *testing.T) {
	c, err := New(Config{
		Cluster:          cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge},
		Seed:             7,
		MaxStageAttempts: 2,
		Faults:           FaultProfile{FetchFailureProb: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = CollectAsMap(shuffledSum(c))
	if err == nil {
		t.Fatal("certain fetch failure on every attempt did not abort the job")
	}
	var sa *StageAbortedError
	if !errors.As(err, &sa) {
		t.Fatalf("error is %T (%v), want *StageAbortedError", err, err)
	}
	if sa.Attempts != 2 {
		t.Fatalf("aborted after %d stage attempts, want MaxStageAttempts=2", sa.Attempts)
	}
}

func TestStragglerSlowsVirtualTime(t *testing.T) {
	run := func(faults FaultProfile) float64 {
		c, err := New(Config{
			Cluster: cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge},
			Seed:    7,
			// Neutralise the fixed per-stage overhead so the measured ratio
			// reflects task durations, which stragglers stretch.
			StageOverheadSec: 1e-9,
			Faults:           faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Collect(Parallelize(c, seq(100), 20)); err != nil {
			t.Fatal(err)
		}
		return c.VirtualTime()
	}
	clean := run(FaultProfile{})
	slowed := run(FaultProfile{StragglerProb: 1, StragglerFactor: 8})
	if slowed < clean*4 {
		t.Fatalf("every-task straggler x8 raised virtual time only %.4fs -> %.4fs", clean, slowed)
	}
}

func TestForeachNotReplayedOnStageRetry(t *testing.T) {
	// The result stage re-runs only unvisited partitions after a fetch
	// failure, so side-effecting actions observe each partition exactly once.
	c, err := New(Config{
		Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := shuffledSum(c)
	if _, err := Collect(r); err != nil {
		t.Fatal(err)
	}
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]int{}
	err = Foreach(r, func(p int, in []KV[int, int]) {
		mu.Lock()
		for _, kv := range in {
			seen[kv.K]++
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := c.Jobs()
	if m := jobs[len(jobs)-1]; m.StageAttempts == 0 {
		t.Fatalf("foreach after node loss triggered no resubmission: %+v", m)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %d visited %d times across stage re-attempts, want 1", k, n)
		}
	}
}
