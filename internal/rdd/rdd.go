// The typed RDD surface: sources (Parallelize, TextFile), narrow
// transformations (Map, Filter, FlatMap, MapPartitions, Union), persistence
// (Cache/Unpersist), and actions (Collect, Count, Reduce, Foreach). Narrow
// transformations pipeline within one task; Go methods cannot introduce new
// type parameters, so transformations that change the element type are free
// functions, the conventional Go generics idiom.

package rdd

import (
	"bytes"
	"fmt"
	"strings"
)

// RDD is a resilient distributed dataset of T: an immutable, partitioned,
// lazily computed collection that can be rebuilt from its lineage.
type RDD[T any] struct {
	n *node
}

func countOf[T any](v any) int { return len(v.([]T)) }

// Name returns the RDD's lineage label (for metrics and debugging).
func (r *RDD[T]) Name() string { return r.n.name }

// Partitions returns the partition count.
func (r *RDD[T]) Partitions() int { return r.n.parts }

// StorageLevel selects how persisted partitions are kept, mirroring Spark's
// levels.
type StorageLevel int32

const (
	// MemoryOnly drops partitions that do not fit in executor storage; they
	// recompute from lineage on later use (Spark's default, and the paper's).
	MemoryOnly StorageLevel = 1
	// MemoryAndDisk demotes partitions that do not fit to the executor's
	// local disk: later reads pay disk bandwidth instead of recomputation.
	MemoryAndDisk StorageLevel = 2
)

// Cache marks the RDD for MEMORY_ONLY persistence: the first computation of
// each partition stores it on the computing executor and later uses read it
// back instead of recomputing the lineage. Returns r for chaining.
func (r *RDD[T]) Cache() *RDD[T] {
	return r.Persist(MemoryOnly)
}

// Persist marks the RDD for persistence at the given storage level. Returns
// r for chaining.
func (r *RDD[T]) Persist(level StorageLevel) *RDD[T] {
	if level != MemoryOnly && level != MemoryAndDisk {
		panic(fmt.Sprintf("rdd: unknown storage level %d", level))
	}
	r.n.cacheLevel.Store(int32(level))
	return r
}

// Unpersist drops any cached partitions and stops further caching.
func (r *RDD[T]) Unpersist() {
	r.n.cacheLevel.Store(0)
	r.n.ctx.blocks.dropRDD(r.n.id)
}

// SetSizeHint declares the approximate in-memory bytes per element, used for
// cache accounting and shuffle/spill cost modelling. Returns r for chaining.
func (r *RDD[T]) SetSizeHint(bytesPerElem int64) *RDD[T] {
	if bytesPerElem <= 0 {
		panic(fmt.Sprintf("rdd: size hint %d", bytesPerElem))
	}
	r.n.bytesPerElem = bytesPerElem
	return r
}

// Parallelize distributes a driver-side slice over parts partitions (
// contiguous, near-equal ranges). The data is shipped to executors with the
// tasks, which the cost model charges over the network.
func Parallelize[T any](c *Context, items []T, parts int) *RDD[T] {
	if parts <= 0 {
		panic(fmt.Sprintf("rdd: Parallelize into %d partitions", parts))
	}
	// Copy so later caller mutations cannot alter the "distributed" data.
	owned := make([]T, len(items))
	copy(owned, items)
	n := c.newNode(fmt.Sprintf("parallelize[%d]", len(items)), parts, countOf[T])
	n.compute = func(tc *taskContext, p int) any {
		lo, hi := partRange(len(owned), n.parts, p)
		out := owned[lo:hi:hi]
		tc.shipBytes += int64(len(out)) * n.bytesPerElem
		return out
	}
	return &RDD[T]{n: n}
}

// partRange splits n items into parts near-equal contiguous ranges.
func partRange(n, parts, p int) (lo, hi int) {
	lo = p * n / parts
	hi = (p + 1) * n / parts
	return lo, hi
}

// TextFile opens a file on the simulated HDFS as an RDD of lines. With
// minPartitions <= the block count there is one partition per block; a
// larger value sub-splits blocks into byte ranges, Hadoop-style — a
// partition owns exactly the lines that *start* inside its range — so map
// parallelism can match the cluster's core count rather than the block
// count. Task placement prefers the owning block's replica nodes; reads are
// charged at disk speed when local and network speed otherwise.
func (c *Context) TextFile(name string, minPartitions int) (*RDD[string], error) {
	f, err := c.fs.Open(name)
	if err != nil {
		return nil, err
	}
	type split struct {
		block  int
		lo, hi int // raw byte range within the block
	}
	var splits []split
	target := int64(1)
	if minPartitions > 0 {
		target = f.Size / int64(minPartitions)
	}
	for b, blk := range f.Blocks {
		n := 1
		if minPartitions > len(f.Blocks) && target > 0 {
			n = int((int64(len(blk.Data)) + target - 1) / target)
			if n < 1 {
				n = 1
			}
		}
		for i := 0; i < n; i++ {
			lo, hi := partRange(len(blk.Data), n, i)
			splits = append(splits, split{block: b, lo: lo, hi: hi})
		}
	}
	n := c.newNode(fmt.Sprintf("textFile(%s)", name), len(splits), countOf[string])
	n.prefNodes = func(p int) []int { return c.fs.BlockLocations(f, splits[p].block) }
	n.compute = func(tc *taskContext, p int) any {
		sp := splits[p]
		data := f.Blocks[sp.block].Data
		start := lineStartAtOrAfter(data, sp.lo)
		end := lineStartAtOrAfter(data, sp.hi)
		if start >= end {
			return []string{}
		}
		local := false
		for _, nd := range tc.ctx.fs.BlockLocations(f, sp.block) {
			if nd == tc.node() {
				local = true
				break
			}
		}
		if local {
			tc.dfsLocalBytes += int64(end - start)
		} else {
			tc.dfsRemoteBytes += int64(end - start)
		}
		text := string(data[start:end])
		lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
		if len(lines) == 1 && lines[0] == "" {
			lines = nil
		}
		return lines
	}
	return &RDD[string]{n: n}, nil
}

// lineStartAtOrAfter returns the offset of the first line that starts at or
// after off (len(data) if none): offset 0 starts a line, and any position
// immediately after a newline starts a line.
func lineStartAtOrAfter(data []byte, off int) int {
	if off <= 0 {
		return 0
	}
	if off >= len(data) {
		return len(data)
	}
	if data[off-1] == '\n' {
		return off
	}
	i := bytes.IndexByte(data[off:], '\n')
	if i < 0 {
		return len(data)
	}
	return off + i + 1
}

// DefaultParallelism is the conventional partition count for cluster-wide
// work: the total live core slots (Spark's default.parallelism on YARN).
func (c *Context) DefaultParallelism() int {
	return c.cluster.TotalSlots()
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], name string, f func(T) U) *RDD[U] {
	parent := r.n
	n := parent.ctx.newNode(fmt.Sprintf("map:%s(%s)", name, parent.name), parent.parts, countOf[U])
	n.narrowParents = []*node{parent}
	n.compute = func(tc *taskContext, p int) any {
		in := parent.iterate(tc, p).([]T)
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out
	}
	return &RDD[U]{n: n}
}

// MapPartitions applies f to each whole partition, for transformations that
// amortise per-partition setup (the partition index is passed through).
func MapPartitions[T, U any](r *RDD[T], name string, f func(p int, in []T) []U) *RDD[U] {
	parent := r.n
	n := parent.ctx.newNode(fmt.Sprintf("mapPartitions:%s(%s)", name, parent.name), parent.parts, countOf[U])
	n.narrowParents = []*node{parent}
	n.compute = func(tc *taskContext, p int) any {
		return f(p, parent.iterate(tc, p).([]T))
	}
	return &RDD[U]{n: n}
}

// Filter keeps the elements for which pred is true.
func Filter[T any](r *RDD[T], name string, pred func(T) bool) *RDD[T] {
	parent := r.n
	n := parent.ctx.newNode(fmt.Sprintf("filter:%s(%s)", name, parent.name), parent.parts, countOf[T])
	n.narrowParents = []*node{parent}
	n.bytesPerElem = parent.bytesPerElem
	n.compute = func(tc *taskContext, p int) any {
		in := parent.iterate(tc, p).([]T)
		var out []T
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		if out == nil {
			out = []T{}
		}
		return out
	}
	return &RDD[T]{n: n}
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], name string, f func(T) []U) *RDD[U] {
	parent := r.n
	n := parent.ctx.newNode(fmt.Sprintf("flatMap:%s(%s)", name, parent.name), parent.parts, countOf[U])
	n.narrowParents = []*node{parent}
	n.compute = func(tc *taskContext, p int) any {
		in := parent.iterate(tc, p).([]T)
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		if out == nil {
			out = []U{}
		}
		return out
	}
	return &RDD[U]{n: n}
}

// Union concatenates two RDDs of the same type; partitions of a follow
// partitions of b.
func Union[T any](a, b *RDD[T]) *RDD[T] {
	if a.n.ctx != b.n.ctx {
		panic("rdd: union of RDDs from different contexts")
	}
	ctx := a.n.ctx
	n := ctx.newNode(fmt.Sprintf("union(%s,%s)", a.n.name, b.n.name), a.n.parts+b.n.parts, countOf[T])
	n.narrowParents = []*node{a.n, b.n}
	n.bytesPerElem = a.n.bytesPerElem
	n.compute = func(tc *taskContext, p int) any {
		if p < a.n.parts {
			return a.n.iterate(tc, p)
		}
		return b.n.iterate(tc, p-a.n.parts)
	}
	return &RDD[T]{n: n}
}

// Collect materialises the whole RDD on the driver in partition order.
func Collect[T any](r *RDD[T]) ([]T, error) {
	parts := make([][]T, r.n.parts)
	err := r.n.ctx.runJob(r.n, "collect", func(p int, v any) {
		parts[p] = v.([]T)
	})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, part := range parts {
		out = append(out, part...)
	}
	return out, nil
}

// Count returns the number of elements.
func Count[T any](r *RDD[T]) (int, error) {
	counts := make([]int, r.n.parts)
	err := r.n.ctx.runJob(r.n, "count", func(p int, v any) {
		counts[p] = len(v.([]T))
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Reduce folds all elements with f, which must be associative and
// commutative. It returns an error on an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, error) {
	type partial struct {
		v  T
		ok bool
	}
	partials := make([]partial, r.n.parts)
	var zero T
	err := r.n.ctx.runJob(r.n, "reduce", func(p int, v any) {
		in := v.([]T)
		if len(in) == 0 {
			return
		}
		acc := in[0]
		for _, x := range in[1:] {
			acc = f(acc, x)
		}
		partials[p] = partial{v: acc, ok: true}
	})
	if err != nil {
		return zero, err
	}
	var acc T
	seen := false
	for _, pt := range partials {
		if !pt.ok {
			continue
		}
		if !seen {
			acc, seen = pt.v, true
		} else {
			acc = f(acc, pt.v)
		}
	}
	if !seen {
		return zero, fmt.Errorf("rdd: Reduce of empty RDD")
	}
	return acc, nil
}

// Foreach runs visit once per partition on the driver, in no particular
// order but with exclusive access (visit need not be concurrency-safe). It
// is the low-level action behind custom aggregations.
func Foreach[T any](r *RDD[T], visit func(p int, in []T)) error {
	return r.n.ctx.runJob(r.n, "foreach", func(p int, v any) {
		visit(p, v.([]T))
	})
}
