// The typed RDD surface: sources (Parallelize, TextFile), narrow
// transformations (Map, Filter, FlatMap, MapWithSetup, MapPartitions, Union),
// persistence (Cache/Unpersist), and actions (Collect, Count, Reduce,
// Foreach). Narrow transformations fuse into a single streaming pass within
// one task: each operator wraps its parent's partition cursor (iter.Seq[T])
// in another lazy sequence, so no intermediate slices are allocated between
// operators. Go methods cannot introduce new type parameters, so
// transformations that change the element type are free functions, the
// conventional Go generics idiom.

package rdd

import (
	"bytes"
	"fmt"
	"iter"
	"strings"
)

// RDD is a resilient distributed dataset of T: an immutable, partitioned,
// lazily computed collection that can be rebuilt from its lineage.
type RDD[T any] struct {
	n *node
}

// newTypedNode builds a lineage node carrying the type-erased helpers the
// untyped engine needs: counting, draining, and re-wrapping partitions of T.
func newTypedNode[T any](c *Context, name string, parts int) *node {
	n := c.newNode(name, parts)
	n.count = func(v any) int { return len(v.([]T)) }
	n.materialize = func(v any) any { return drainSeq(seqOf[T](v)) }
	n.fromSlice = func(v any) any { return sliceSeq(v.([]T)) }
	return n
}

// seqOf unboxes a partition cursor.
func seqOf[T any](v any) iter.Seq[T] { return v.(iter.Seq[T]) }

// boxSeq boxes a partition cursor as the canonical iter.Seq[T] so seqOf's
// type assertion holds regardless of which closure produced it.
func boxSeq[T any](s iter.Seq[T]) any { return s }

// sliceSeq is a re-drainable cursor over a materialised slice.
func sliceSeq[T any](s []T) iter.Seq[T] {
	return func(yield func(T) bool) {
		for _, v := range s {
			if !yield(v) {
				return
			}
		}
	}
}

// drainSeq materialises a cursor — a pipeline breaker.
func drainSeq[T any](s iter.Seq[T]) []T {
	var out []T
	for v := range s {
		out = append(out, v)
	}
	return out
}

// Name returns the RDD's lineage label (for metrics and debugging).
func (r *RDD[T]) Name() string { return r.n.name }

// Partitions returns the partition count.
func (r *RDD[T]) Partitions() int { return r.n.parts }

// StorageLevel selects how persisted partitions are kept, mirroring Spark's
// levels.
type StorageLevel int32

const (
	// MemoryOnly drops partitions that do not fit in executor storage; they
	// recompute from lineage on later use (Spark's default, and the paper's).
	MemoryOnly StorageLevel = 1
	// MemoryAndDisk demotes partitions that do not fit to the executor's
	// local disk: later reads pay disk bandwidth instead of recomputation.
	MemoryAndDisk StorageLevel = 2
)

// Cache marks the RDD for MEMORY_ONLY persistence: the first computation of
// each partition stores it on the computing executor and later uses read it
// back instead of recomputing the lineage. Returns r for chaining.
func (r *RDD[T]) Cache() *RDD[T] {
	return r.Persist(MemoryOnly)
}

// Persist marks the RDD for persistence at the given storage level. Returns
// r for chaining.
func (r *RDD[T]) Persist(level StorageLevel) *RDD[T] {
	if level != MemoryOnly && level != MemoryAndDisk {
		panic(fmt.Sprintf("rdd: unknown storage level %d", level))
	}
	r.n.cacheLevel.Store(int32(level))
	return r
}

// Unpersist drops any cached partitions and stops further caching.
func (r *RDD[T]) Unpersist() {
	r.n.cacheLevel.Store(0)
	r.n.ctx.blocks.dropRDD(r.n.id)
}

// SetSizeHint declares the approximate in-memory bytes per element, used for
// cache accounting and shuffle/spill cost modelling. Returns r for chaining.
func (r *RDD[T]) SetSizeHint(bytesPerElem int64) *RDD[T] {
	if bytesPerElem <= 0 {
		panic(fmt.Sprintf("rdd: size hint %d", bytesPerElem))
	}
	r.n.bytesPerElem = bytesPerElem
	return r
}

// SetSizeFunc declares a per-element size estimator, used instead of the
// flat SetSizeHint wherever a materialised partition is measured (cache
// accounting, eviction pressure). Keep a representative SetSizeHint as well:
// streaming paths that never materialise the partition still use the flat
// rate. Returns r for chaining.
func (r *RDD[T]) SetSizeFunc(f func(T) int64) *RDD[T] {
	if f == nil {
		panic("rdd: nil size func")
	}
	r.n.sizeSlice = func(v any) int64 {
		var total int64
		for _, e := range v.([]T) {
			total += f(e)
		}
		return total
	}
	return r
}

// Parallelize distributes a driver-side slice over parts partitions (
// contiguous, near-equal ranges). The data is shipped to executors with the
// tasks, which the cost model charges over the network.
func Parallelize[T any](c *Context, items []T, parts int) *RDD[T] {
	if parts <= 0 {
		panic(fmt.Sprintf("rdd: Parallelize into %d partitions", parts))
	}
	// Copy so later caller mutations cannot alter the "distributed" data.
	owned := make([]T, len(items))
	copy(owned, items)
	n := newTypedNode[T](c, fmt.Sprintf("parallelize[%d]", len(items)), parts)
	n.compute = func(tc *taskContext, p int) any {
		lo, hi := partRange(len(owned), n.parts, p)
		tc.shipBytes += int64(hi-lo) * n.bytesPerElem
		return boxSeq(sliceSeq(owned[lo:hi:hi]))
	}
	return &RDD[T]{n: n}
}

// partRange splits n items into parts near-equal contiguous ranges.
func partRange(n, parts, p int) (lo, hi int) {
	lo = p * n / parts
	hi = (p + 1) * n / parts
	return lo, hi
}

// TextFile opens a file on the simulated HDFS as an RDD of lines. With
// minPartitions <= the block count there is one partition per block; a
// larger value sub-splits blocks into byte ranges, Hadoop-style — a
// partition owns exactly the lines that *start* inside its range — so map
// parallelism can match the cluster's core count rather than the block
// count. Task placement prefers the owning block's replica nodes; reads are
// charged at disk speed when local and network speed otherwise. Lines stream
// off the block one at a time; the partition's line set is never materialised
// as a slice.
func (c *Context) TextFile(name string, minPartitions int) (*RDD[string], error) {
	f, err := c.fs.Open(name)
	if err != nil {
		return nil, err
	}
	type split struct {
		block  int
		lo, hi int // raw byte range within the block
	}
	var splits []split
	target := int64(1)
	if minPartitions > 0 {
		target = f.Size / int64(minPartitions)
	}
	for b, blk := range f.Blocks {
		n := 1
		if minPartitions > len(f.Blocks) && target > 0 {
			n = int((int64(len(blk.Data)) + target - 1) / target)
			if n < 1 {
				n = 1
			}
		}
		for i := 0; i < n; i++ {
			lo, hi := partRange(len(blk.Data), n, i)
			splits = append(splits, split{block: b, lo: lo, hi: hi})
		}
	}
	n := newTypedNode[string](c, fmt.Sprintf("textFile(%s)", name), len(splits))
	n.prefNodes = func(p int) []int { return c.fs.BlockLocations(f, splits[p].block) }
	n.compute = func(tc *taskContext, p int) any {
		sp := splits[p]
		data := f.Blocks[sp.block].Data
		start := lineStartAtOrAfter(data, sp.lo)
		end := lineStartAtOrAfter(data, sp.hi)
		if start >= end {
			return boxSeq(sliceSeq[string](nil))
		}
		local := false
		for _, nd := range tc.ctx.fs.BlockLocations(f, sp.block) {
			if nd == tc.node() {
				local = true
				break
			}
		}
		if local {
			tc.dfsLocalBytes += int64(end - start)
		} else {
			tc.dfsRemoteBytes += int64(end - start)
		}
		// One contiguous string copy; yielded lines are substrings of it, so
		// the cursor allocates nothing per line. Trailing newlines do not
		// start an extra empty line (interior blank lines are kept).
		text := strings.TrimRight(string(data[start:end]), "\n")
		if text == "" {
			return boxSeq(sliceSeq[string](nil))
		}
		return boxSeq[string](func(yield func(string) bool) {
			rest := text
			for {
				line, more, found := strings.Cut(rest, "\n")
				if !yield(line) || !found {
					return
				}
				rest = more
			}
		})
	}
	return &RDD[string]{n: n}, nil
}

// lineStartAtOrAfter returns the offset of the first line that starts at or
// after off (len(data) if none): offset 0 starts a line, and any position
// immediately after a newline starts a line.
func lineStartAtOrAfter(data []byte, off int) int {
	if off <= 0 {
		return 0
	}
	if off >= len(data) {
		return len(data)
	}
	if data[off-1] == '\n' {
		return off
	}
	i := bytes.IndexByte(data[off:], '\n')
	if i < 0 {
		return len(data)
	}
	return off + i + 1
}

// DefaultParallelism is the conventional partition count for cluster-wide
// work: the total live core slots (Spark's default.parallelism on YARN),
// unless the online tuner has overridden it (SetDefaultParallelism).
func (c *Context) DefaultParallelism() int {
	c.mu.Lock()
	o := c.parallelismOverride
	c.mu.Unlock()
	if o > 0 {
		return o
	}
	return c.cluster.TotalSlots()
}

// SetDefaultParallelism overrides DefaultParallelism for subsequently built
// RDDs — the online tuner's actuator (tuner.Online.Retune). n <= 0 restores
// the cluster-derived value. Running jobs are unaffected: partition counts
// are fixed at RDD construction.
func (c *Context) SetDefaultParallelism(n int) {
	c.mu.Lock()
	if n <= 0 {
		n = 0
	}
	c.parallelismOverride = n
	c.mu.Unlock()
}

// Map applies f to every element. Fused: elements stream through f without
// an intermediate slice.
func Map[T, U any](r *RDD[T], name string, f func(T) U) *RDD[U] {
	return MapWithSetup(r, name, func(int) func(T) U { return f })
}

// MapWithSetup is Map with per-partition setup: setup runs once per
// partition drain (amortising e.g. model construction, as MapPartitions
// does) and the mapper it returns is applied to every element. Unlike
// MapPartitions the chain stays fused — the partition is never materialised.
func MapWithSetup[T, U any](r *RDD[T], name string, setup func(p int) func(T) U) *RDD[U] {
	parent := r.n
	n := newTypedNode[U](parent.ctx, fmt.Sprintf("map:%s(%s)", name, parent.name), parent.parts)
	n.narrowParents = []*node{parent}
	n.fusedDepth = parent.fusedDepth + 1
	n.compute = func(tc *taskContext, p int) any {
		in := seqOf[T](parent.iterate(tc, p))
		return boxSeq[U](func(yield func(U) bool) {
			f := setup(p)
			for v := range in {
				if !yield(f(v)) {
					return
				}
			}
		})
	}
	return &RDD[U]{n: n}
}

// MapPartitions applies f to each whole partition, for transformations whose
// contract needs the full slice at once. It is a local pipeline breaker: the
// parent partition is materialised to feed f (prefer MapWithSetup when the
// per-partition work is only setup).
func MapPartitions[T, U any](r *RDD[T], name string, f func(p int, in []T) []U) *RDD[U] {
	parent := r.n
	n := newTypedNode[U](parent.ctx, fmt.Sprintf("mapPartitions:%s(%s)", name, parent.name), parent.parts)
	n.narrowParents = []*node{parent}
	n.compute = func(tc *taskContext, p int) any {
		in := drainSeq(seqOf[T](parent.iterate(tc, p)))
		tc.noteMaterialized(int64(len(in)) * parent.bytesPerElem)
		out := f(p, in)
		tc.noteMaterialized(int64(len(out)) * n.bytesPerElem)
		return boxSeq(sliceSeq(out))
	}
	return &RDD[U]{n: n}
}

// Filter keeps the elements for which pred is true. Fused.
func Filter[T any](r *RDD[T], name string, pred func(T) bool) *RDD[T] {
	parent := r.n
	n := newTypedNode[T](parent.ctx, fmt.Sprintf("filter:%s(%s)", name, parent.name), parent.parts)
	n.narrowParents = []*node{parent}
	n.bytesPerElem = parent.bytesPerElem
	n.fusedDepth = parent.fusedDepth + 1
	n.compute = func(tc *taskContext, p int) any {
		in := seqOf[T](parent.iterate(tc, p))
		return boxSeq[T](func(yield func(T) bool) {
			for v := range in {
				if pred(v) && !yield(v) {
					return
				}
			}
		})
	}
	return &RDD[T]{n: n}
}

// FlatMap applies f to every element and concatenates the results. Fused:
// only f's own per-element return slices are allocated, never the
// partition-wide concatenation.
func FlatMap[T, U any](r *RDD[T], name string, f func(T) []U) *RDD[U] {
	parent := r.n
	n := newTypedNode[U](parent.ctx, fmt.Sprintf("flatMap:%s(%s)", name, parent.name), parent.parts)
	n.narrowParents = []*node{parent}
	n.fusedDepth = parent.fusedDepth + 1
	n.compute = func(tc *taskContext, p int) any {
		in := seqOf[T](parent.iterate(tc, p))
		return boxSeq[U](func(yield func(U) bool) {
			for v := range in {
				for _, u := range f(v) {
					if !yield(u) {
						return
					}
				}
			}
		})
	}
	return &RDD[U]{n: n}
}

// Union concatenates two RDDs of the same type; partitions of a follow
// partitions of b. Fused into whichever parent chain the partition maps to.
func Union[T any](a, b *RDD[T]) *RDD[T] {
	if a.n.ctx != b.n.ctx {
		panic("rdd: union of RDDs from different contexts")
	}
	ctx := a.n.ctx
	n := newTypedNode[T](ctx, fmt.Sprintf("union(%s,%s)", a.n.name, b.n.name), a.n.parts+b.n.parts)
	n.narrowParents = []*node{a.n, b.n}
	n.bytesPerElem = max(a.n.bytesPerElem, b.n.bytesPerElem)
	n.fusedDepth = max(a.n.fusedDepth, b.n.fusedDepth) + 1
	n.compute = func(tc *taskContext, p int) any {
		if p < a.n.parts {
			return a.n.iterate(tc, p)
		}
		return b.n.iterate(tc, p-a.n.parts)
	}
	return &RDD[T]{n: n}
}

// runSeqJob runs the action on the final node: eval consumes partition p's
// cursor inside the task (in parallel, outside the driver lock) and its
// result is handed to visit under the lock, at most once per partition.
func runSeqJob[T any](n *node, action string, eval func(tc *taskContext, s iter.Seq[T]) any, visit func(p int, v any)) error {
	return n.ctx.runJob(n, action, func(tc *taskContext, p int) any {
		return eval(tc, seqOf[T](n.iterate(tc, p)))
	}, visit)
}

// Collect materialises the whole RDD on the driver in partition order. The
// output slice is preallocated from the per-partition counts, so the only
// copies are partition results and the final assembly.
func Collect[T any](r *RDD[T]) ([]T, error) {
	n := r.n
	parts := make([][]T, n.parts)
	err := runSeqJob(n, "collect", func(tc *taskContext, s iter.Seq[T]) any {
		out := drainSeq(s)
		tc.noteMaterialized(int64(len(out)) * n.bytesPerElem)
		return out
	}, func(p int, v any) {
		parts[p] = v.([]T)
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]T, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out, nil
}

// Count returns the number of elements. Streaming: partitions are counted
// off the cursor without being materialised.
func Count[T any](r *RDD[T]) (int, error) {
	counts := make([]int, r.n.parts)
	err := runSeqJob(r.n, "count", func(_ *taskContext, s iter.Seq[T]) any {
		n := 0
		for range s {
			n++
		}
		return n
	}, func(p int, v any) {
		counts[p] = v.(int)
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Reduce folds all elements with f, which must be associative and
// commutative. Streaming: each partition folds off the cursor without being
// materialised. It returns an error on an empty RDD.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, error) {
	type partial struct {
		v  T
		ok bool
	}
	partials := make([]partial, r.n.parts)
	var zero T
	err := runSeqJob(r.n, "reduce", func(_ *taskContext, s iter.Seq[T]) any {
		var pt partial
		for x := range s {
			if !pt.ok {
				pt.v, pt.ok = x, true
			} else {
				pt.v = f(pt.v, x)
			}
		}
		return pt
	}, func(p int, v any) {
		partials[p] = v.(partial)
	})
	if err != nil {
		return zero, err
	}
	var acc T
	seen := false
	for _, pt := range partials {
		if !pt.ok {
			continue
		}
		if !seen {
			acc, seen = pt.v, true
		} else {
			acc = f(acc, pt.v)
		}
	}
	if !seen {
		return zero, fmt.Errorf("rdd: Reduce of empty RDD")
	}
	return acc, nil
}

// Foreach runs visit once per partition on the driver, in no particular
// order but with exclusive access (visit need not be concurrency-safe). It
// is the low-level action behind custom aggregations; the partition is
// materialised to honour the slice contract.
func Foreach[T any](r *RDD[T], visit func(p int, in []T)) error {
	n := r.n
	return runSeqJob(n, "foreach", func(tc *taskContext, s iter.Seq[T]) any {
		out := drainSeq(s)
		tc.noteMaterialized(int64(len(out)) * n.bytesPerElem)
		return out
	}, func(p int, v any) {
		visit(p, v.([]T))
	})
}
