package rdd

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sparkscore/internal/cluster"
)

// specChaosRun executes a shuffle workload under stragglers + task crashes
// with speculation on and an event-log writer attached, returning the raw log
// and the context.
func specChaosRun(t *testing.T) ([]byte, *Context) {
	t.Helper()
	var buf bytes.Buffer
	elw := NewEventLogWriter(&buf)
	c, err := New(Config{
		Cluster: cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		Seed:    11,
		Faults: FaultProfile{
			TaskCrashProb: 0.1,
			StragglerProb: 0.4,
		},
		Speculation: SpeculationConfig{Enabled: true},
		Listeners:   []Listener{elw},
	})
	if err != nil {
		t.Fatal(err)
	}
	cached := Map(Parallelize(c, seq(3000), 8), "x3", func(x int) int { return 3 * x }).Cache()
	if _, err := Count(cached); err != nil {
		t.Fatal(err)
	}
	pairs := Map(cached, "key", func(x int) KV[int, int] { return KV[int, int]{K: x % 17, V: x} })
	if _, err := Collect(ReduceByKey(pairs, func(a, b int) int { return a + b }, 6)); err != nil {
		t.Fatal(err)
	}
	if err := elw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), c
}

// TestSpeculationEventLogDeterminism replays a chaos workload with
// speculation enabled in two fresh contexts: the stripped event logs must be
// byte-identical, and speculation must actually have fired — copies launched,
// originals killed, wins counted.
func TestSpeculationEventLogDeterminism(t *testing.T) {
	raw1, c1 := specChaosRun(t)
	raw2, _ := specChaosRun(t)
	log1, log2 := strippedLog(t, raw1), strippedLog(t, raw2)
	if log1 != log2 {
		t.Fatalf("same seed with speculation on produced different event logs:\n%s\nvs\n%s", log1, log2)
	}
	for _, want := range []string{
		`"type":"SpeculativeTaskLaunched"`, `"type":"TaskKilled"`,
		`"speculative":true`, `"killed":true`, `speculative copy finished first`,
	} {
		if !strings.Contains(log1, want) {
			t.Errorf("speculation event log is missing %s", want)
		}
	}
	stats := SummarizeRecovery(c1.Jobs())
	if stats.SpeculatedTasks == 0 || stats.KilledTasks == 0 {
		t.Errorf("speculation did not fire: %d copies, %d killed", stats.SpeculatedTasks, stats.KilledTasks)
	}
	if stats.SpeculationWonTasks == 0 {
		t.Error("no speculative copy won despite killed originals")
	}
}

// TestSpeculationOffByteIdentical pins the refactor's no-op guarantee: with
// speculation disabled, the scheduler's three-phase accounting must produce
// exactly the event log the pre-speculation engine did — which the
// speculation-off chaos goldens of TestEventLogDeterminism already encode, so
// here it is enough that enabling and disabling the knob around an identical
// run changes the log only by speculation events.
func TestSpeculationOffByteIdentical(t *testing.T) {
	run := func(spec bool) string {
		var buf bytes.Buffer
		elw := NewEventLogWriter(&buf)
		c, err := New(Config{
			Cluster:     cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge},
			Seed:        5,
			Speculation: SpeculationConfig{Enabled: spec},
			Listeners:   []Listener{elw},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Count(Map(Parallelize(c, seq(2000), 8), "id", func(x int) int { return x })); err != nil {
			t.Fatal(err)
		}
		if err := elw.Close(); err != nil {
			t.Fatal(err)
		}
		return strippedLog(t, buf.Bytes())
	}
	// No stragglers → no task exceeds multiplier x median → the two logs must
	// be byte-identical even with the knob on.
	if on, off := run(true), run(false); on != off {
		t.Fatalf("speculation knob changed a run with no stragglers:\n%s\nvs\n%s", on, off)
	}
}

// TestSpeculativeCrashDoesNotCountTowardMaxFailures checks the retry
// interplay: a crashing speculative copy must neither fail the job nor add to
// the original task's task.maxFailures budget. Comparing the same seeded
// chaos run with speculation off and on, TaskRetries must not change, while
// at least one copy must actually have crashed.
func TestSpeculativeCrashDoesNotCountTowardMaxFailures(t *testing.T) {
	run := func(spec bool) ([]int, RecoveryStats, string) {
		var buf bytes.Buffer
		elw := NewEventLogWriter(&buf)
		c, err := New(Config{
			Cluster: cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
			Seed:    23,
			Faults: FaultProfile{
				TaskCrashProb: 0.3,
				StragglerProb: 1, StragglerFactor: 8,
			},
			Speculation: SpeculationConfig{Enabled: spec},
			Listeners:   []Listener{elw},
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(Map(Parallelize(c, seq(4000), 12), "x2", func(x int) int { return 2 * x }))
		if err != nil {
			t.Fatalf("speculation=%v: %v", spec, err)
		}
		if err := elw.Close(); err != nil {
			t.Fatal(err)
		}
		return got, SummarizeRecovery(c.Jobs()), buf.String()
	}
	resOff, statsOff, _ := run(false)
	resOn, statsOn, log := run(true)
	if len(resOff) != len(resOn) {
		t.Fatalf("speculation changed the result size: %d vs %d", len(resOff), len(resOn))
	}
	for i := range resOff {
		if resOff[i] != resOn[i] {
			t.Fatalf("speculation changed result[%d]: %d vs %d", i, resOff[i], resOn[i])
		}
	}
	if !strings.Contains(log, "injected task crash (speculative copy") {
		t.Fatal("no speculative copy crashed under TaskCrashProb 0.3; the interplay is untested")
	}
	if statsOn.TaskRetries != statsOff.TaskRetries {
		t.Errorf("speculative copy crashes leaked into task retries: %d with speculation, %d without",
			statsOn.TaskRetries, statsOff.TaskRetries)
	}
	if statsOn.SpeculatedTasks == 0 {
		t.Error("no copies launched despite every task being an 8x straggler")
	}
	// Crashed copies must not be counted as wins, and a crashed copy's
	// original survives (not killed).
	if statsOn.SpeculationWonTasks+statsOn.KilledTasks > 2*statsOn.SpeculatedTasks {
		t.Errorf("inconsistent accounting: %d copies, %d wins, %d kills",
			statsOn.SpeculatedTasks, statsOn.SpeculationWonTasks, statsOn.KilledTasks)
	}
	if statsOn.SpeculationWonTasks != statsOn.KilledTasks {
		t.Errorf("wins (%d) != killed originals (%d): first-result-wins must kill exactly the losers",
			statsOn.SpeculationWonTasks, statsOn.KilledTasks)
	}
}

// TestRunJobWithDeadline checks deadline cancellation end to end inside the
// engine: a job whose tasks outlast the deadline is cancelled at a task
// boundary with a JobCancelledError, terminal cancelled events are emitted,
// and the same context then runs a subsequent job to a correct result.
func TestRunJobWithDeadline(t *testing.T) {
	var events []Event
	var mu sync.Mutex
	rec := ListenerFunc(func(ev Event) { mu.Lock(); events = append(events, ev); mu.Unlock() })
	c, err := New(Config{
		Cluster:   cluster.Config{Nodes: 1, Spec: cluster.M3TwoXLarge},
		Seed:      3,
		Listeners: []Listener{rec},
	})
	if err != nil {
		t.Fatal(err)
	}

	err = c.RunJobWithDeadline(30*time.Millisecond, func() error {
		_, cerr := Count(Map(Parallelize(c, seq(64), 64), "slow", func(x int) int {
			time.Sleep(5 * time.Millisecond)
			return x
		}))
		return cerr
	})
	var jc *JobCancelledError
	if !errors.As(err, &jc) {
		t.Fatalf("deadline run returned %v, want JobCancelledError", err)
	}
	if jc.Job == 0 {
		t.Error("cancelled mid-run but error reports job 0 (cancelled-while-queued)")
	}

	mu.Lock()
	var sawCancelled, sawEndCancelled bool
	for _, ev := range events {
		switch e := ev.(type) {
		case *JobCancelled:
			sawCancelled = true
		case *JobEnd:
			if e.Cancelled {
				sawEndCancelled = true
				if e.Failed {
					t.Error("cancelled JobEnd also marked Failed; cancellation is not a failure")
				}
			}
		}
	}
	mu.Unlock()
	if !sawCancelled || !sawEndCancelled {
		t.Fatalf("terminal cancellation events missing: JobCancelled=%v, JobEnd{Cancelled}=%v",
			sawCancelled, sawEndCancelled)
	}

	jobs := c.Jobs()
	if len(jobs) == 0 || !jobs[len(jobs)-1].Cancelled {
		t.Fatal("cancelled job missing from metrics or not marked Cancelled")
	}
	if stats := SummarizeRecovery(jobs); stats.CancelledJobs != 1 {
		t.Errorf("SummarizeRecovery counted %d cancelled jobs, want 1", stats.CancelledJobs)
	}

	// The context must remain fully reusable: block manager, shuffle state,
	// and clock all consistent for a subsequent correct job.
	got, err := Count(Map(Parallelize(c, seq(500), 4), "id", func(x int) int { return x }))
	if err != nil {
		t.Fatalf("job after cancellation failed: %v", err)
	}
	if got != 500 {
		t.Fatalf("job after cancellation returned %d, want 500", got)
	}
}

// TestCancelWhileQueuedFIFO checks the arbiter interplay: a job cancelled
// while waiting in the FIFO queue never starts — no job id, no events — and
// the queue keeps serving later jobs (the abandoned ticket is skipped).
func TestCancelWhileQueuedFIFO(t *testing.T) {
	var events []Event
	var mu sync.Mutex
	rec := ListenerFunc(func(ev Event) { mu.Lock(); events = append(events, ev); mu.Unlock() })
	c, err := New(Config{
		Cluster:   cluster.Config{Nodes: 1, Spec: cluster.M3TwoXLarge},
		Seed:      1,
		Scheduler: SchedulerConfig{Mode: SchedFIFO},
		Listeners: []Listener{rec},
	})
	if err != nil {
		t.Fatal(err)
	}

	slowStarted := make(chan struct{})
	slowDone := make(chan error, 1)
	go func() {
		close(slowStarted)
		_, serr := Count(Map(Parallelize(c, seq(16), 16), "slow", func(x int) int {
			time.Sleep(20 * time.Millisecond)
			return x
		}))
		slowDone <- serr
	}()
	<-slowStarted
	time.Sleep(30 * time.Millisecond) // let the slow job take the FIFO head

	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		queuedErr <- c.RunWithCancel(ctx, func() error {
			_, qerr := Count(Parallelize(c, seq(10), 2))
			return qerr
		})
	}()
	time.Sleep(30 * time.Millisecond) // let it enqueue behind the slow job
	cancel()

	err = <-queuedErr
	var jc *JobCancelledError
	if !errors.As(err, &jc) {
		t.Fatalf("queued job returned %v, want JobCancelledError", err)
	}
	if jc.Job != 0 {
		t.Errorf("cancelled-while-queued job reported id %d, want 0 (never started)", jc.Job)
	}
	if serr := <-slowDone; serr != nil {
		t.Fatalf("slow job failed: %v", serr)
	}

	// The abandoned ticket must not wedge the queue.
	if _, err := Count(Parallelize(c, seq(100), 2)); err != nil {
		t.Fatalf("job after an abandoned FIFO ticket failed: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	starts := 0
	for _, ev := range events {
		if _, ok := ev.(*JobStart); ok {
			starts++
		}
	}
	if starts != 2 {
		t.Errorf("%d JobStart events, want 2: a cancelled-while-queued job must emit none", starts)
	}
}

// TestConfigValidation checks that nonsense fault and speculation knobs are
// rejected at Context construction with errors naming the field.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"crash prob > 1", Config{Faults: FaultProfile{TaskCrashProb: 1.5}}, "TaskCrashProb"},
		{"negative fetch prob", Config{Faults: FaultProfile{FetchFailureProb: -0.1}}, "FetchFailureProb"},
		{"straggler prob > 1", Config{Faults: FaultProfile{StragglerProb: 7}}, "StragglerProb"},
		{"negative straggler factor", Config{Faults: FaultProfile{StragglerFactor: -2}}, "StragglerFactor"},
		{"straggler faster than normal", Config{Faults: FaultProfile{StragglerProb: 0.5, StragglerFactor: 0.5}}, "faster than normal"},
		{"negative node", Config{Faults: FaultProfile{NodeLoss: []NodeLoss{{Node: -1}}}}, "NodeLoss[0].Node"},
		{"negative after-tasks", Config{Faults: FaultProfile{NodeLoss: []NodeLoss{{Node: 0, AfterTasks: -5}}}}, "NodeLoss[0].AfterTasks"},
		{"quantile > 1", Config{Speculation: SpeculationConfig{Quantile: 1.2}}, "Quantile"},
		{"negative multiplier", Config{Speculation: SpeculationConfig{Multiplier: -1}}, "Multiplier"},
		{"multiplier at median", Config{Speculation: SpeculationConfig{Multiplier: 1}}, "median"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Cluster = cluster.Config{Nodes: 1, Spec: cluster.M3TwoXLarge}
			_, err := New(tc.cfg)
			if err == nil {
				t.Fatal("New accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name %q", err, tc.want)
			}
		})
	}
	// And the happy path: defaults plus valid custom knobs pass.
	if _, err := New(Config{
		Cluster:     cluster.Config{Nodes: 1, Spec: cluster.M3TwoXLarge},
		Faults:      FaultProfile{TaskCrashProb: 0.1, StragglerProb: 0.2, StragglerFactor: 4},
		Speculation: SpeculationConfig{Enabled: true, Quantile: 0.9, Multiplier: 2},
	}); err != nil {
		t.Fatalf("New rejected a valid config: %v", err)
	}
}
