// Adaptive stage execution — the engine's counterpart of Spark 3.x Adaptive
// Query Execution (AQE). After a shuffle's map stage completes, the planner
// reads the per-reduce-partition output sizes the map tasks published on the
// event bus (MapOutputStats) and rewrites the consuming stage's task set:
//
//   - Coalescing: runs of adjacent small reduce partitions are merged into
//     one physical task up to Config.Adaptive.TargetPartitionBytes (the
//     analogue of spark.sql.adaptive.coalescePartitions +
//     advisoryPartitionSizeInBytes). The grouped task runs each logical
//     partition's original closure in partition order inside one task
//     context, so every fold tree is untouched — only the per-task scheduling
//     overhead and task count change.
//   - Skew splitting: a reduce partition larger than SkewFactor × the median
//     (and at least SkewMinBytes) has its fetch split into up to MaxSubSplits
//     contiguous map-output ranges (spark.sql.adaptive.skewJoin semantics),
//     run as a prefetch sub-stage before the consuming stage. Each sub-task
//     charges its range's transfer bytes and materialises the range's pairs
//     in map-output order; the consuming reduce task then replays its
//     combine folds over the prefetched pairs in exactly the order a full
//     fetch would have delivered (see shuffleBucketSeqs), so results are
//     bitwise identical to the non-adaptive plan.
//
// Determinism. The plan is a pure function of the map-output statistics,
// which are themselves deterministic for a fixed Config — byte counts, never
// measured durations, drive every decision. What adaptation changes is the
// physical task set (and therefore virtual-time accounting and the
// per-physical-task fault draws: a grouped task draws its launch-crash and
// straggler decisions once, under its first logical partition's identity);
// what it never changes is the value computed for any partition, pinned by
// the adaptive-versus-static parity suite in adaptive_test.go.

package rdd

import (
	"fmt"
	"sort"
	"sync"
)

// AdaptiveConfig enables adaptive stage execution (Spark's
// spark.sql.adaptive.* family). The zero value disables it, preserving the
// static plan — and its event log — bit for bit.
type AdaptiveConfig struct {
	// Enabled turns adaptive planning on (spark.sql.adaptive.enabled).
	Enabled bool

	// TargetPartitionBytes is the coalescing target: adjacent reduce
	// partitions are grouped into one task while their combined input stays
	// under it (spark.sql.adaptive.advisoryPartitionSizeInBytes). Zero
	// selects 64 MiB, Spark's default advisory size.
	TargetPartitionBytes int64

	// MinPartitionNum is the floor on the physical task count after
	// coalescing (spark.sql.adaptive.coalescePartitions.minPartitionNum).
	// Zero selects 1.
	MinPartitionNum int

	// SkewFactor is the skew threshold: a partition is skewed when its input
	// exceeds SkewFactor × the median partition input
	// (spark.sql.adaptive.skewJoin.skewedPartitionFactor). Zero selects 5,
	// Spark's default.
	SkewFactor float64

	// SkewMinBytes is the absolute floor below which a partition is never
	// considered skewed, however lopsided the distribution
	// (spark.sql.adaptive.skewJoin.skewedPartitionThresholdInBytes). Zero
	// selects 1 MiB.
	SkewMinBytes int64

	// MaxSubSplits caps how many fetch sub-splits a skewed partition is
	// divided into. Zero selects 8.
	MaxSubSplits int
}

func (a AdaptiveConfig) targetPartitionBytes() int64 {
	if a.TargetPartitionBytes <= 0 {
		return 64 << 20
	}
	return a.TargetPartitionBytes
}

func (a AdaptiveConfig) minPartitionNum() int {
	if a.MinPartitionNum <= 0 {
		return 1
	}
	return a.MinPartitionNum
}

func (a AdaptiveConfig) skewFactor() float64 {
	if a.SkewFactor <= 0 {
		return 5
	}
	return a.SkewFactor
}

func (a AdaptiveConfig) skewMinBytes() int64 {
	if a.SkewMinBytes <= 0 {
		return 1 << 20
	}
	return a.SkewMinBytes
}

func (a AdaptiveConfig) maxSubSplits() int {
	if a.MaxSubSplits <= 0 {
		return 8
	}
	return a.MaxSubSplits
}

// Validate rejects nonsensical adaptive knobs with an error naming the field.
func (a AdaptiveConfig) Validate() error {
	if a.TargetPartitionBytes < 0 {
		return fmt.Errorf("rdd: AdaptiveConfig.TargetPartitionBytes = %d is negative", a.TargetPartitionBytes)
	}
	if a.MinPartitionNum < 0 {
		return fmt.Errorf("rdd: AdaptiveConfig.MinPartitionNum = %d is negative", a.MinPartitionNum)
	}
	if a.SkewFactor < 0 {
		return fmt.Errorf("rdd: AdaptiveConfig.SkewFactor = %g is negative", a.SkewFactor)
	}
	if a.SkewFactor > 0 && a.SkewFactor < 1 {
		return fmt.Errorf("rdd: AdaptiveConfig.SkewFactor = %g would call the median partition skewed (want >= 1, or 0 for the default)", a.SkewFactor)
	}
	if a.SkewMinBytes < 0 {
		return fmt.Errorf("rdd: AdaptiveConfig.SkewMinBytes = %d is negative", a.SkewMinBytes)
	}
	if a.MaxSubSplits < 0 {
		return fmt.Errorf("rdd: AdaptiveConfig.MaxSubSplits = %d is negative", a.MaxSubSplits)
	}
	return nil
}

// MapOutputStats is published by every successful map task of a shuffle when
// adaptive execution is enabled: the encoded bytes its output holds for each
// reduce partition — the map-side statistics Spark's AQE reads from
// MapOutputStatistics. It is the planner's only input.
type MapOutputStats struct {
	EventTime
	Job     uint64 `json:"job"`
	Stage   uint64 `json:"stage"`
	Round   int    `json:"round"`
	Attempt int    `json:"attempt"`
	Shuffle int    `json:"shuffle"`
	MapPart int    `json:"mapPart"`
	// BytesPerReduce[p] is the output's encoded bytes destined for reduce
	// partition p.
	BytesPerReduce []int64 `json:"bytesPerReduce"`
}

func (*MapOutputStats) Name() string { return "MapOutputStats" }

// AdaptivePlan records one non-trivial plan rewrite: how many logical
// partitions the stage had, how many physical tasks the planner scheduled,
// which partitions were treated as skewed, and how many prefetch sub-splits
// they were divided into. Emitted just before the (possibly empty) prefetch
// sub-stage runs.
type AdaptivePlan struct {
	EventTime
	Job   uint64 `json:"job"`
	Stage uint64 `json:"stage"`
	Round int    `json:"round"`
	RDD   string `json:"rdd"`
	// Partitions is the stage's pending logical partition count; Tasks the
	// physical task count after coalescing.
	Partitions      int   `json:"partitions"`
	Tasks           int   `json:"tasks"`
	CoalescedGroups int   `json:"coalescedGroups,omitempty"`
	Skewed          []int `json:"skewed,omitempty"`
	SubSplits       int   `json:"subSplits,omitempty"`
}

func (*AdaptivePlan) Name() string { return "AdaptivePlan" }

// adaptiveStats collects MapOutputStats off the bus, keyed by shuffle and map
// partition. Re-registered outputs (stage resubmissions, retries) overwrite —
// recomputed outputs carry identical statistics, so the planner never sees a
// torn view.
type adaptiveStats struct {
	mu        sync.Mutex
	byShuffle map[int]map[int][]int64
}

func newAdaptiveStats() *adaptiveStats {
	return &adaptiveStats{byShuffle: map[int]map[int][]int64{}}
}

// OnEvent implements Listener.
func (s *adaptiveStats) OnEvent(ev Event) {
	ms, ok := ev.(*MapOutputStats)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.byShuffle[ms.Shuffle]
	if m == nil {
		m = map[int][]int64{}
		s.byShuffle[ms.Shuffle] = m
	}
	m[ms.MapPart] = ms.BytesPerReduce
}

// bytesFor returns the per-map-output reduce-partition byte rows for a
// shuffle, or false until every map partition has reported (or if any row has
// the wrong width — a shuffle recorded under an older partitioning).
func (s *adaptiveStats) bytesFor(shuffle, mapParts, reduceParts int) ([][]int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.byShuffle[shuffle]
	if len(m) < mapParts {
		return nil, false
	}
	rows := make([][]int64, mapParts)
	for i := 0; i < mapParts; i++ {
		row, ok := m[i]
		if !ok || len(row) != reduceParts {
			return nil, false
		}
		rows[i] = row
	}
	return rows, true
}

// mapRange is one contiguous range of map outputs, [lo, hi).
type mapRange struct {
	lo, hi int
}

// splitByteRanges divides [0, len(perMap)) into at most k contiguous,
// non-empty ranges with approximately balanced byte totals — deterministic
// greedy quantile cuts.
func splitByteRanges(perMap []int64, k int) []mapRange {
	n := len(perMap)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	var total int64
	for _, b := range perMap {
		total += b
	}
	out := make([]mapRange, 0, k)
	lo := 0
	var cum int64
	for m := 0; m < n && len(out) < k-1; m++ {
		cum += perMap[m]
		// Cut when this prefix covers the next byte quantile, or when the
		// remaining map outputs are only just enough to keep every later
		// range non-empty.
		quantile := (total*int64(len(out)+1) + int64(k) - 1) / int64(k)
		if cum >= quantile || n-(m+1) == k-(len(out)+1) {
			out = append(out, mapRange{lo, m + 1})
			lo = m + 1
		}
	}
	if lo < n {
		out = append(out, mapRange{lo, n})
	}
	return out
}

// adaptStage is the planner: given a stage's pending per-partition task list
// (ascending partition order), it returns the physical task set to run —
// coalesced groups and skew singletons — after running the prefetch sub-stage
// for skewed partitions. It returns the input unchanged whenever adaptation
// does not apply: disabled, no shuffle inputs, statistics incomplete, or an
// input dependency partitioned differently from the stage.
func (c *Context) adaptStage(jr *jobRun, stageID uint64, round int, stageNode *node, tasks []*task, recovery bool) ([]*task, error) {
	ac := c.cfg.Adaptive
	if !ac.Enabled || c.adaptive == nil || len(tasks) == 0 {
		return tasks, nil
	}
	inputs := stageNode.stageShuffleDeps()
	if len(inputs) == 0 {
		return tasks, nil
	}
	parts := stageNode.parts
	perDep := make([][][]int64, len(inputs))
	maxMapParts := 0
	for i, sd := range inputs {
		if sd.parts != parts || sd.subFetch == nil {
			return tasks, nil
		}
		rows, ok := c.adaptive.bytesFor(sd.id, sd.parent.parts, parts)
		if !ok {
			return tasks, nil
		}
		perDep[i] = rows
		if sd.parent.parts > maxMapParts {
			maxMapParts = sd.parent.parts
		}
	}

	// Per-reduce-partition input sizes, summed over every input dependency.
	sizes := make([]int64, parts)
	for i := range inputs {
		for _, row := range perDep[i] {
			for p, b := range row {
				sizes[p] += b
			}
		}
	}
	sorted := append([]int64(nil), sizes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]

	// Skew detection: size beyond SkewFactor × median and the absolute
	// floor, and at least two map outputs to split the fetch across.
	skewed := map[int]bool{}
	if maxMapParts >= 2 {
		limit := ac.skewFactor() * float64(median)
		for p, sz := range sizes {
			if float64(sz) > limit && sz >= ac.skewMinBytes() {
				skewed[p] = true
			}
		}
	}

	// Coalescing: group runs of adjacent pending non-skewed partitions up to
	// the advisory target. Skewed partitions always run alone.
	target := ac.targetPartitionBytes()
	var groups [][]*task
	var cur []*task
	var curBytes int64
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur, curBytes = nil, 0
		}
	}
	for _, t := range tasks {
		if skewed[t.part] {
			flush()
			groups = append(groups, []*task{t})
			continue
		}
		if len(cur) > 0 && curBytes+sizes[t.part] > target {
			flush()
		}
		cur = append(cur, t)
		curBytes += sizes[t.part]
	}
	flush()
	if len(groups) < ac.minPartitionNum() && len(tasks) >= ac.minPartitionNum() {
		// Coalescing would drop below the configured task floor: fall back
		// to the static per-partition plan (skew handling still applies).
		groups = groups[:0]
		for _, t := range tasks {
			groups = append(groups, []*task{t})
		}
	}

	coalesced := 0
	out := make([]*task, 0, len(groups))
	for _, g := range groups {
		if len(g) == 1 {
			out = append(out, g[0])
			continue
		}
		coalesced++
		members := g
		out = append(out, &task{part: members[0].part, run: func(tc *taskContext) {
			// Run each logical partition's original closure under its own
			// partition identity, in partition order: fold trees, buffered
			// events, and per-partition fault draws inside the closures are
			// exactly the static plan's.
			for _, m := range members {
				tc.part = m.part
				m.run(tc)
			}
			tc.part = members[0].part
		}})
	}

	// Skew prefetch: one sub-task per (input dependency, map-output range),
	// materialising the skewed partition's pairs ahead of the consuming
	// stage so the heavy fetch parallelises across sub-tasks.
	var ptasks []*task
	var skewList []int
	subSplits := 0
	for _, t := range tasks {
		p := t.part
		if !skewed[p] {
			continue
		}
		skewList = append(skewList, p)
		sub := 0
		for i, sd := range inputs {
			perMap := make([]int64, sd.parent.parts)
			for m := range perMap {
				perMap[m] = perDep[i][m][p]
			}
			for _, rg := range splitByteRanges(perMap, ac.maxSubSplits()) {
				sub++
				subSplits++
				sd, p, rg := sd, p, rg
				ptasks = append(ptasks, &task{part: p, sub: sub, run: func(tc *taskContext) {
					sd.subFetch(tc, p, rg.lo, rg.hi)
				}})
			}
		}
	}

	if coalesced == 0 && len(skewList) == 0 {
		return tasks, nil // the static plan was already right-sized
	}
	c.emit(jr.now(), &AdaptivePlan{Job: jr.job, Stage: stageID, Round: round, RDD: stageNode.name,
		Partitions: len(tasks), Tasks: len(out), CoalescedGroups: coalesced,
		Skewed: skewList, SubSplits: subSplits})
	if len(ptasks) > 0 {
		if err := c.runStage(jr, stageID, round, stageNode, ptasks, recovery, true); err != nil {
			return nil, err
		}
	}
	return out, nil
}
