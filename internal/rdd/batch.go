// MapBatches: the batching narrow operator behind the columnar engine. It
// groups a streamed partition into fixed-size element batches and maps each
// batch to one output element, staying fused with the chain — the batch
// buffer is the only intermediate, it is bounded by the batch size, and it is
// reused across batches within a partition drain.

package rdd

import "fmt"

// MapBatches applies f to consecutive batches of up to size elements,
// yielding one U per batch; the final batch of a partition may be short.
// Fused: elements stream into a reused batch buffer, so f must not retain
// the slice it is handed (copy out whatever survives the call). Batches
// never span partitions, and the upstream element order is preserved within
// and across batches, so deterministic pipelines stay deterministic.
func MapBatches[T, U any](r *RDD[T], name string, size int, f func(p int, batch []T) U) *RDD[U] {
	if size <= 0 {
		panic(fmt.Sprintf("rdd: MapBatches size %d", size))
	}
	parent := r.n
	n := newTypedNode[U](parent.ctx, fmt.Sprintf("mapBatches:%s(%s)", name, parent.name), parent.parts)
	n.narrowParents = []*node{parent}
	n.fusedDepth = parent.fusedDepth + 1
	n.compute = func(tc *taskContext, p int) any {
		in := seqOf[T](parent.iterate(tc, p))
		return boxSeq[U](func(yield func(U) bool) {
			batch := make([]T, 0, size)
			for v := range in {
				batch = append(batch, v)
				if len(batch) == size {
					if !yield(f(p, batch)) {
						return
					}
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				yield(f(p, batch))
			}
		})
	}
	return &RDD[U]{n: n}
}
