// The block manager stores cached RDD partitions in (simulated) executor
// memory with MEMORY_ONLY semantics: least-recently-used blocks are evicted
// when an executor's storage pool fills, and a block larger than the whole
// pool is not stored at all. Evicted or failed-away blocks are recomputed
// from lineage on next access — the mechanism behind both the caching
// experiment (Figures 4 and 5) and the fault-tolerance story.

package rdd

import (
	"container/list"
	"sync"

	"sparkscore/internal/cluster"
)

type blockKey struct {
	rdd  int
	part int
}

type block struct {
	key      blockKey
	executor int
	value    any
	bytes    int64
	onDisk   bool
	lruElem  *list.Element // nil while on disk
}

type executorStore struct {
	capacity int64
	used     int64
	lru      *list.List // front = most recent; values are *block
}

type blockManager struct {
	mu     sync.Mutex
	stores map[int]*executorStore
	index  map[blockKey]*block
	// evictions counts blocks dropped for space, surfaced in metrics.
	evictions int64
}

func newBlockManager(cl *cluster.Cluster, storageFraction float64) *blockManager {
	bm := &blockManager{
		stores: map[int]*executorStore{},
		index:  map[blockKey]*block{},
	}
	for _, e := range cl.Executors() {
		bm.stores[e.ID] = &executorStore{
			capacity: int64(float64(e.MemBytes) * storageFraction),
			lru:      list.New(),
		}
	}
	return bm
}

// get returns the cached value, its holding executor, and whether the block
// lives on the executor's disk (MEMORY_AND_DISK demotion) rather than in
// memory, marking in-memory blocks recently used.
func (bm *blockManager) get(key blockKey) (v any, executor int, onDisk, ok bool) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	b, ok := bm.index[key]
	if !ok {
		return nil, 0, false, false
	}
	if !b.onDisk {
		bm.stores[b.executor].lru.MoveToFront(b.lruElem)
	}
	return b.value, b.executor, b.onDisk, true
}

// put stores a block on the executor, evicting least-recently-used blocks to
// make room — but, as in Spark's MemoryStore, never blocks of the same RDD:
// an RDD caching itself must not thrash its own partitions. If the block
// cannot fit in memory without breaking that rule, it is dropped under
// MEMORY_ONLY (the partition recomputes from lineage on later use) or
// written to the executor's disk under MEMORY_AND_DISK (diskFallback).
//
// It reports whether the block was stored (and where) and which blocks were
// evicted to make room, so the caller can publish BlockCached/BlockEvicted
// events; the returned blocks are no longer referenced by the manager.
func (bm *blockManager) put(executor int, key blockKey, v any, bytes int64, diskFallback bool) (stored, onDisk bool, evicted []*block) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	if _, dup := bm.index[key]; dup {
		return false, false, nil // another task cached this partition concurrently
	}
	st := bm.stores[executor]
	if bytes > st.capacity {
		if diskFallback {
			bm.index[key] = &block{key: key, executor: executor, value: v, bytes: bytes, onDisk: true}
			return true, true, nil
		}
		return false, false, nil
	}
	// Decide up front whether enough evictable (different-RDD) bytes exist.
	freeable := int64(0)
	for e := st.lru.Back(); e != nil; e = e.Prev() {
		if b := e.Value.(*block); b.key.rdd != key.rdd {
			freeable += b.bytes
		}
	}
	if st.used-freeable+bytes > st.capacity {
		if diskFallback {
			bm.index[key] = &block{key: key, executor: executor, value: v, bytes: bytes, onDisk: true}
			return true, true, nil
		}
		return false, false, nil
	}
	for e := st.lru.Back(); e != nil && st.used+bytes > st.capacity; {
		prev := e.Prev()
		if b := e.Value.(*block); b.key.rdd != key.rdd {
			bm.removeLocked(b)
			bm.evictions++
			evicted = append(evicted, b)
		}
		e = prev
	}
	b := &block{key: key, executor: executor, value: v, bytes: bytes}
	b.lruElem = st.lru.PushFront(b)
	st.used += bytes
	bm.index[key] = b
	return true, false, evicted
}

func (bm *blockManager) removeLocked(b *block) {
	if !b.onDisk {
		st := bm.stores[b.executor]
		st.lru.Remove(b.lruElem)
		st.used -= b.bytes
	}
	delete(bm.index, b.key)
}

// dropExecutor discards every block held by the executor (executor failure),
// memory and disk alike.
func (bm *blockManager) dropExecutor(executor int) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	for key, b := range bm.index {
		_ = key
		if b.executor == executor {
			bm.removeLocked(b)
		}
	}
}

// dropRDD removes every cached partition of the RDD (Unpersist).
func (bm *blockManager) dropRDD(rddID int) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	for key, b := range bm.index {
		if key.rdd == rddID {
			bm.removeLocked(b)
		}
	}
}

func (bm *blockManager) totalBytes() int64 {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	var total int64
	for _, st := range bm.stores {
		total += st.used
	}
	return total
}

func (bm *blockManager) evictionCount() int64 {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	return bm.evictions
}
