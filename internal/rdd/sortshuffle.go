// Sort-based external shuffle (the default; Spark's SortShuffleManager). Map
// tasks append pairs to a buffer whose growth is charged to the memory
// manager; when an acquisition is denied the buffer is sorted by
// (reduce partition, key hash, arrival) and written to the DFS as one
// length-prefixed run file on the map task's own node, with a per-partition
// offset index kept on the map output. A map task that never spills registers
// plain resident buckets, bit-identical to the hash shuffle's — ample memory
// reproduces the legacy path exactly. Reduce tasks recombine each map
// output's runs with a k-way streaming merge.
//
// Reproducibility contract. The engine guarantees that shuffle results are
// bitwise identical whether or not memory pressure forced spilling, and
// identical to the hash path. Float addition is not bitwise-associative, so
// two rules follow:
//
//   - Runs carry raw pairs with their arrival indices, never partial
//     aggregates; the reduce side replays the map-side combine per map
//     output, then folds the per-output results — the exact fold tree of the
//     resident path.
//   - The k-way merge is keyed by arrival index, not key: the key order of
//     the run files serves partition grouping and the sort itself, while the
//     merge restores the arrival order every downstream fold depends on.

package rdd

import (
	"bytes"
	"compress/flate"
	"container/heap"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"iter"
	"sort"
)

// ShuffleMode selects the shuffle implementation (Config.SortShuffle).
type ShuffleMode int

const (
	// ShuffleSort is the spillable sort-based shuffle (default).
	ShuffleSort ShuffleMode = iota
	// ShuffleHash is the legacy resident hash shuffle; it cannot spill.
	ShuffleHash
)

func (m ShuffleMode) String() string {
	switch m {
	case ShuffleSort:
		return "sort"
	case ShuffleHash:
		return "hash"
	default:
		return fmt.Sprintf("ShuffleMode(%d)", int(m))
	}
}

// spillRec is one shuffled pair inside a run file. A is the pair's arrival
// index in its map partition, the sort key of the reduce-side merge. Fields
// are exported for gob.
type spillRec[K comparable, V any] struct {
	A int64
	K K
	V V
}

// shuffleRun is one spilled run: a key-sorted, partition-grouped file on the
// DFS plus the in-memory index locating each reduce partition's frame.
type shuffleRun struct {
	file       string
	offs       []int64 // payload offset per reduce partition
	lens       []int64 // payload length per reduce partition (0 = empty)
	elems      []int   // pair count per reduce partition
	compressed bool
}

// spillEvery is how many appended pairs the buffer admits between memory
// acquisitions. Small enough that tiny scaled-down executor memories still
// see multiple grants before denial, large enough to keep manager lock
// traffic negligible.
const spillEvery = 64

// sortBuffer buffers one map task's shuffle output in arrival order,
// spilling sorted runs when the memory manager denies growth.
type sortBuffer[K comparable, V any] struct {
	tc           *taskContext
	sd           *shuffleDep
	mapPart      int
	bytesPerElem int64

	pairs       []KV[K, V]
	arrivalBase int64 // arrival index of pairs[0]
	reserved    int64 // execution bytes granted for the current buffer
	runs        []*shuffleRun
}

func newSortBuffer[K comparable, V any](tc *taskContext, sd *shuffleDep, mapPart int, bytesPerElem int64) *sortBuffer[K, V] {
	return &sortBuffer[K, V]{tc: tc, sd: sd, mapPart: mapPart, bytesPerElem: bytesPerElem}
}

func (b *sortBuffer[K, V]) add(kv KV[K, V]) {
	b.pairs = append(b.pairs, kv)
	if len(b.pairs)%spillEvery == 0 {
		b.ensure()
	}
}

// ensure grows the buffer's execution-memory grant to cover its contents,
// spilling when the manager says no. Requests are exact deltas, so the
// grant—and the denial point—is a pure function of how many pairs arrived.
func (b *sortBuffer[K, V]) ensure() {
	need := int64(len(b.pairs))*b.bytesPerElem - b.reserved
	if need <= 0 {
		return
	}
	if b.tc.acquireExecution(need, acqSpill) {
		b.reserved += need
		return
	}
	b.spill()
}

// spill sorts the buffered pairs by (reduce partition, key hash, arrival),
// writes them as one length-prefixed run file on the task's node, and
// releases the buffer's memory grant.
func (b *sortBuffer[K, V]) spill() {
	n := len(b.pairs)
	if n == 0 {
		return
	}
	tc, sd := b.tc, b.sd
	parts := sd.parts
	b.tc.noteShuffleBuffer(int64(n) * b.bytesPerElem)

	type sortEntry struct {
		part int
		hash uint64
		idx  int
	}
	entries := make([]sortEntry, n)
	for i, kv := range b.pairs {
		h := hashKey(kv.K)
		entries[i] = sortEntry{part: int(h % uint64(parts)), hash: h, idx: i}
	}
	// Stable on arrival order: equal (partition, hash) pairs keep it, and the
	// reduce-side merge restores it globally from the stored indices.
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].part != entries[j].part {
			return entries[i].part < entries[j].part
		}
		return entries[i].hash < entries[j].hash
	})

	run := &shuffleRun{
		offs:       make([]int64, parts),
		lens:       make([]int64, parts),
		elems:      make([]int, parts),
		compressed: tc.ctx.cfg.CompressSpills,
	}
	var file bytes.Buffer
	i := 0
	for p := 0; p < parts; p++ {
		recs := make([]spillRec[K, V], 0, spillEvery)
		for ; i < n && entries[i].part == p; i++ {
			e := entries[i]
			recs = append(recs, spillRec[K, V]{A: b.arrivalBase + int64(e.idx), K: b.pairs[e.idx].K, V: b.pairs[e.idx].V})
		}
		run.elems[p] = len(recs)
		payload := encodeRunFrame(recs, run.compressed)
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], uint64(len(payload)))
		file.Write(hdr[:])
		run.offs[p] = int64(file.Len())
		run.lens[p] = int64(len(payload))
		file.Write(payload)
	}

	runIdx := len(b.runs)
	// Round and attempt in the name keep recomputed outputs from colliding
	// with files a lost node's cleanup never saw.
	run.file = fmt.Sprintf("_shuffle/s%d/m%d/run%d.r%da%d", sd.id, b.mapPart, runIdx, tc.round, tc.attempt)
	if _, err := tc.ctx.fs.WriteLocal(run.file, file.Bytes(), tc.node()); err != nil {
		panic(fmt.Sprintf("rdd: writing spill run %s: %v", run.file, err))
	}
	b.runs = append(b.runs, run)
	tc.spilledBytes += int64(file.Len())
	tc.spillCount++
	tc.emit(&ShuffleSpill{Job: tc.job, Stage: tc.stage, Round: tc.round, Part: tc.part, Attempt: tc.attempt,
		Executor: tc.executor, Shuffle: sd.id, Run: runIdx, Bytes: int64(file.Len()), Elems: n})

	tc.releaseExecution(b.reserved)
	b.reserved = 0
	b.arrivalBase += int64(n)
	b.pairs = nil
}

// encodeRunFrame gob-encodes one partition's records, deflating when asked.
// An unencodable element type is a programming error worth a clear panic.
func encodeRunFrame[K comparable, V any](recs []spillRec[K, V], compress bool) []byte {
	var buf bytes.Buffer
	var w io.Writer = &buf
	var fw *flate.Writer
	if compress {
		fw, _ = flate.NewWriter(&buf, flate.BestSpeed)
		w = fw
	}
	if err := gob.NewEncoder(w).Encode(recs); err != nil {
		panic(fmt.Sprintf("rdd: shuffle spill cannot gob-encode %T: %v", recs, err))
	}
	if fw != nil {
		fw.Close()
	}
	return buf.Bytes()
}

// runSortMap drives one map task of a sort-shuffle dependency: stream the
// parent cursor through a spillable buffer, then register either resident
// buckets (no spill — combine applies, output bit-identical to the hash
// path) or the spilled runs plus a final run holding the tail.
func runSortMap[K comparable, V any](ctx *Context, tc *taskContext, sd *shuffleDep, mapPart int,
	in iter.Seq[KV[K, V]], bytesPerElem int64, combine func(V, V) V) {
	buf := newSortBuffer[K, V](tc, sd, mapPart, bytesPerElem)
	for kv := range in {
		buf.add(kv)
	}
	buf.ensure()
	parts := sd.parts
	if len(buf.runs) == 0 {
		tc.noteShuffleBuffer(int64(len(buf.pairs)) * bytesPerElem)
		var buckets [][]KV[K, V]
		if combine != nil {
			combined := make([]*orderedMap[K, V], parts)
			for i := range combined {
				combined[i] = newOrderedMap[K, V]()
			}
			for _, kv := range buf.pairs {
				b := combined[hashPartition(kv.K, parts)]
				if old, ok := b.get(kv.K); ok {
					b.set(kv.K, combine(old, kv.V))
				} else {
					b.set(kv.K, kv.V)
				}
			}
			buckets = make([][]KV[K, V], parts)
			for i, b := range combined {
				buckets[i] = b.pairs()
			}
		} else {
			buckets = make([][]KV[K, V], parts)
			for _, kv := range buf.pairs {
				i := hashPartition(kv.K, parts)
				buckets[i] = append(buckets[i], kv)
			}
		}
		registerBuckets(ctx, tc, sd, mapPart, buckets, bytesPerElem)
		return
	}
	buf.spill()
	bytes := make([]int64, parts)
	var total int64
	for _, r := range buf.runs {
		for p := 0; p < parts; p++ {
			bytes[p] += r.lens[p]
			total += r.lens[p]
		}
	}
	tc.noteMaterialized(total)
	ctx.shuffle.write(sd.id, mapPart, tc.node(), tc.executor, nil, bytes, buf.runs)
	emitMapOutputStats(ctx, tc, sd, mapPart, bytes)
}

// runCursor is one run segment being merged: records re-sorted to arrival
// order, plus the merge position.
type runCursor[K comparable, V any] struct {
	recs []spillRec[K, V]
	pos  int
}

// runHeap is the k-way merge frontier, ordered by the arrival index at each
// cursor's head.
type runHeap[K comparable, V any] []*runCursor[K, V]

func (h runHeap[K, V]) Len() int           { return len(h) }
func (h runHeap[K, V]) Less(i, j int) bool { return h[i].recs[h[i].pos].A < h[j].recs[h[j].pos].A }
func (h runHeap[K, V]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap[K, V]) Push(x any)        { *h = append(*h, x.(*runCursor[K, V])) }
func (h *runHeap[K, V]) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// decodeFrameBytes decodes one reduce partition's frame out of a run file's
// raw bytes: bounds-check the index against the file, inflate if compressed,
// gob-decode. It returns an error — never panics — on truncated or corrupt
// input, however mangled; the fuzz target FuzzDecodeFrameBytes pins that.
func decodeFrameBytes[K comparable, V any](raw []byte, off, length int64, compressed bool) ([]spillRec[K, V], error) {
	if off < 0 || length < 0 || off > int64(len(raw)) || length > int64(len(raw))-off {
		return nil, fmt.Errorf("frame [%d:+%d] out of bounds of %d-byte run file", off, length, len(raw))
	}
	var r io.Reader = bytes.NewReader(raw[off : off+length])
	if compressed {
		r = flate.NewReader(r)
	}
	var recs []spillRec[K, V]
	if err := gob.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("decoding frame [%d:+%d]: %w", off, length, err)
	}
	return recs, nil
}

// decodeRunFrame reads one reduce partition's records out of a run file,
// restoring arrival order (frames are stored key-sorted). A missing,
// unreadable, truncated, or corrupt file means the map output is gone — a
// fetch failure, exactly as when a resident output disappears — rather than
// a panic: on a real cluster a shuffle file can be half-written by a dying
// executor, and the recovery answer is recomputation, not a crash.
func decodeRunFrame[K comparable, V any](tc *taskContext, shuffle, mapPart int, run *shuffleRun, reducePart int) []spillRec[K, V] {
	if run.lens[reducePart] == 0 && run.elems[reducePart] == 0 {
		return nil
	}
	fail := func() {
		tc.emit(&FetchFailure{Job: tc.job, Stage: tc.stage, Round: tc.round, Part: tc.part,
			Attempt: tc.attempt, Shuffle: shuffle, MapPart: mapPart})
		panic(&fetchFailedError{shuffle: shuffle, mapPart: mapPart})
	}
	raw, err := tc.ctx.fs.ReadAll(run.file)
	if err != nil {
		fail()
	}
	recs, err := decodeFrameBytes[K, V](raw, run.offs[reducePart], run.lens[reducePart], run.compressed)
	if err != nil {
		fail()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].A < recs[j].A })
	return recs
}

// mergeRuns streams one map output's spilled pairs for the reduce partition
// in arrival order: a k-way heap merge of the runs keyed by arrival index.
func mergeRuns[K comparable, V any](tc *taskContext, shuffle, mapPart int, runs []*shuffleRun, reducePart int) iter.Seq[KV[K, V]] {
	return func(yield func(KV[K, V]) bool) {
		h := make(runHeap[K, V], 0, len(runs))
		for _, run := range runs {
			recs := decodeRunFrame[K, V](tc, shuffle, mapPart, run, reducePart)
			if len(recs) > 0 {
				h = append(h, &runCursor[K, V]{recs: recs})
			}
		}
		heap.Init(&h)
		for h.Len() > 0 {
			cur := h[0]
			rec := cur.recs[cur.pos]
			if !yield(KV[K, V]{K: rec.K, V: rec.V}) {
				return
			}
			cur.pos++
			if cur.pos == len(cur.recs) {
				heap.Pop(&h)
			} else {
				heap.Fix(&h, 0)
			}
		}
	}
}

// shuffleBucketSeqs fetches the reduce partition from every map output of the
// shuffle and yields one pair sequence per map output, in map-partition
// order. A resident output streams its bucket as-is; a spilled output is
// recombined by mergeRuns. Either way the inner sequence is the map task's
// arrival order, so reduce-side folds see the same pair order the hash
// shuffle delivered.
func shuffleBucketSeqs[K comparable, V any](ctx *Context, tc *taskContext, sd *shuffleDep, reducePart, mapParts int) iter.Seq[iter.Seq[KV[K, V]]] {
	if srcs, ok := sd.takePartials(reducePart, mapParts); ok {
		// The adaptive skew sub-stage prefetched this partition: the
		// sub-tasks already charged the transfer. The injection draw below is
		// keyed identically to the full-fetch path's, so the fault schedule
		// is unchanged (for this task's attempt the prefetch sub-tasks made —
		// and survived — the same draw); the existence checks catch outputs
		// chaos destroyed between prefetch and consumption.
		ctx.maybeInjectFetchFailure(tc, sd.id, mapParts)
		for m := 0; m < mapParts; m++ {
			if !ctx.shuffle.has(sd.id, m) {
				tc.emit(&FetchFailure{Job: tc.job, Stage: tc.stage, Round: tc.round, Part: tc.part,
					Attempt: tc.attempt, Shuffle: sd.id, MapPart: m})
				panic(&fetchFailedError{shuffle: sd.id, mapPart: m})
			}
		}
		return func(yield func(iter.Seq[KV[K, V]]) bool) {
			for _, src := range srcs {
				pairs := src.([]KV[K, V])
				seq := func(y func(KV[K, V]) bool) {
					for _, kv := range pairs {
						if !y(kv) {
							return
						}
					}
				}
				if !yield(seq) {
					return
				}
			}
		}
	}
	outs := ctx.shuffle.fetch(tc, sd.id, reducePart, mapParts)
	return func(yield func(iter.Seq[KV[K, V]]) bool) {
		for m, mo := range outs {
			var seq iter.Seq[KV[K, V]]
			if mo.runs == nil {
				bucket := mo.buckets[reducePart].([]KV[K, V])
				seq = func(yield func(KV[K, V]) bool) {
					for _, kv := range bucket {
						if !yield(kv) {
							return
						}
					}
				}
			} else {
				seq = mergeRuns[K, V](tc, sd.id, m, mo.runs, reducePart)
			}
			if !yield(seq) {
				return
			}
		}
	}
}
