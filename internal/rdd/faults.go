// Deterministic fault injection and the recovery error taxonomy.
//
// Chaos runs must be reproducible: a fault either fires or does not fire
// depending only on the configuration Seed and the identity of the decision
// point, never on scheduling order. Every injection decision is therefore a
// pure function of (fault kind, job, stage, DAG attempt round, partition,
// task attempt), drawn from a dedicated RNG stream via order-insensitive
// Split — the same mechanism that makes resampling partition streams
// independent of execution order.

package rdd

import "fmt"

// FaultProfile configures deterministic fault injection for chaos runs. The
// zero value injects nothing. All decisions derive from Config.Seed, so two
// runs with identical Config and workload inject byte-identical faults.
type FaultProfile struct {
	// TaskCrashProb is the probability that a task attempt crashes at
	// launch, before producing any output. Crashed attempts are retried up
	// to Config.TaskMaxFailures times.
	TaskCrashProb float64

	// FetchFailureProb is the probability, per shuffle read per task
	// attempt, that a map output is reported lost. The injected failure
	// also destroys the chosen output, so recovery must recompute it by
	// resubmitting the parent map stage (not merely refetch).
	FetchFailureProb float64

	// StragglerProb is the probability that a task attempt is a straggler;
	// its simulated duration is multiplied by StragglerFactor.
	StragglerProb float64

	// StragglerFactor is the slowdown multiplier for stragglers; zero
	// selects 8.
	StragglerFactor float64

	// NodeLoss schedules whole-machine losses: once AfterTasks further
	// tasks complete, the node dies — executors, cached blocks, shuffle
	// outputs, and DFS replicas included (Context.FailNode).
	NodeLoss []NodeLoss
}

// NodeLoss is one scheduled machine loss in a FaultProfile.
type NodeLoss struct {
	Node       int
	AfterTasks int64
}

// Validate rejects profiles that could only have been written by mistake —
// probabilities outside [0,1], a "straggler" that would run faster than
// normal, node losses scheduled before the run starts — with an error naming
// the field, instead of silently clamping or misbehaving at runtime.
func (f FaultProfile) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("rdd: FaultProfile.%s = %g is not a probability (want [0,1])", name, p)
		}
		return nil
	}
	if err := check("TaskCrashProb", f.TaskCrashProb); err != nil {
		return err
	}
	if err := check("FetchFailureProb", f.FetchFailureProb); err != nil {
		return err
	}
	if err := check("StragglerProb", f.StragglerProb); err != nil {
		return err
	}
	if f.StragglerFactor < 0 {
		return fmt.Errorf("rdd: FaultProfile.StragglerFactor = %g is negative", f.StragglerFactor)
	}
	if f.StragglerFactor > 0 && f.StragglerFactor < 1 {
		return fmt.Errorf("rdd: FaultProfile.StragglerFactor = %g would make stragglers faster than normal tasks (want >= 1, or 0 for the default)", f.StragglerFactor)
	}
	for i, nl := range f.NodeLoss {
		if nl.Node < 0 {
			return fmt.Errorf("rdd: FaultProfile.NodeLoss[%d].Node = %d is negative", i, nl.Node)
		}
		if nl.AfterTasks < 0 {
			return fmt.Errorf("rdd: FaultProfile.NodeLoss[%d].AfterTasks = %d schedules the loss before the run starts", i, nl.AfterTasks)
		}
	}
	return nil
}

func (f FaultProfile) stragglerFactor() float64 {
	if f.StragglerFactor <= 0 {
		return 8
	}
	return f.StragglerFactor
}

// SpeculationConfig enables Spark-style speculative execution — the engine's
// counterpart of spark.speculation and its companion knobs. The zero value
// disables speculation entirely, preserving the pre-speculation schedule
// bit for bit.
type SpeculationConfig struct {
	// Enabled turns speculative re-launching on (spark.speculation).
	Enabled bool

	// Quantile is the fraction of a stage's tasks that must be projected
	// complete before copies launch (spark.speculation.quantile). Zero
	// selects Spark's default of 0.75.
	Quantile float64

	// Multiplier is how many times slower than the stage's median a task must
	// be running before it is speculated (spark.speculation.multiplier). Zero
	// selects Spark's default of 1.5.
	Multiplier float64
}

func (s SpeculationConfig) quantile() float64 {
	if s.Quantile <= 0 {
		return 0.75
	}
	return s.Quantile
}

func (s SpeculationConfig) multiplier() float64 {
	if s.Multiplier <= 0 {
		return 1.5
	}
	return s.Multiplier
}

// Validate rejects nonsensical speculation knobs with an error naming the
// field.
func (s SpeculationConfig) Validate() error {
	if s.Quantile < 0 || s.Quantile > 1 {
		return fmt.Errorf("rdd: SpeculationConfig.Quantile = %g is not a fraction (want (0,1], or 0 for the default)", s.Quantile)
	}
	if s.Multiplier < 0 {
		return fmt.Errorf("rdd: SpeculationConfig.Multiplier = %g is negative", s.Multiplier)
	}
	if s.Multiplier > 0 && s.Multiplier <= 1 {
		return fmt.Errorf("rdd: SpeculationConfig.Multiplier = %g would speculate tasks running at the median rate (want > 1, or 0 for the default)", s.Multiplier)
	}
	return nil
}

// enabled reports whether the profile injects anything at all.
func (f FaultProfile) enabled() bool {
	return f.TaskCrashProb > 0 || f.FetchFailureProb > 0 || f.StragglerProb > 0 || len(f.NodeLoss) > 0
}

// Fault decision-point kinds, mixed into the injection key.
const (
	faultCrash     = 0x1c
	faultFetch     = 0x2f
	faultStraggler = 0x35
	faultSpecCrash = 0x5c
)

// faultDraw returns a uniform [0,1) draw that depends only on the decision
// point's identity, never on the order decisions are made in. The dedicated
// fault stream is never advanced, so concurrent draws are safe.
func (c *Context) faultDraw(kind uint64, ids ...uint64) float64 {
	key := mix64(kind)
	for _, id := range ids {
		key = mix64(key ^ mix64(id+0x9e3779b97f4a7c15))
	}
	return c.faults.Split(key).Float64()
}

// maybeInjectCrash kills the task attempt at launch with TaskCrashProb.
func (c *Context) maybeInjectCrash(tc *taskContext) {
	p := c.cfg.Faults.TaskCrashProb
	if p <= 0 {
		return
	}
	if c.faultDraw(faultCrash, tc.job, tc.stage, uint64(tc.round), uint64(tc.part), uint64(tc.attempt)) < p {
		panic(fmt.Sprintf("injected task crash (stage %d partition %d attempt %d)", tc.stage, tc.part, tc.attempt))
	}
}

// maybeInjectFetchFailure simulates the loss of one map output of the
// shuffle as the task starts reading it: the victim output is destroyed (so
// the parent map stage really must recompute it) and a fetch failure is
// raised. The victim choice is as deterministic as the decision itself.
func (c *Context) maybeInjectFetchFailure(tc *taskContext, shuffle, mapParts int) {
	p := c.cfg.Faults.FetchFailureProb
	if p <= 0 || mapParts == 0 {
		return
	}
	key := []uint64{tc.job, uint64(shuffle), uint64(tc.round), uint64(tc.part), uint64(tc.attempt)}
	if c.faultDraw(faultFetch, key...) >= p {
		return
	}
	victim := int(mix64(tc.job^uint64(shuffle)<<20^uint64(tc.part)<<8^uint64(tc.round)) % uint64(mapParts))
	c.shuffle.drop(shuffle, victim)
	tc.emit(&FetchFailure{Job: tc.job, Stage: tc.stage, Round: tc.round, Part: tc.part,
		Attempt: tc.attempt, Shuffle: shuffle, MapPart: victim, Injected: true})
	panic(&fetchFailedError{shuffle: shuffle, mapPart: victim, injected: true})
}

// stragglerSlowdown returns the duration multiplier for the task attempt: 1
// normally, StragglerFactor when the attempt is selected as a straggler.
func (c *Context) stragglerSlowdown(tc *taskContext) float64 {
	f := c.cfg.Faults
	if f.StragglerProb <= 0 {
		return 1
	}
	if c.faultDraw(faultStraggler, tc.job, tc.stage, uint64(tc.round), uint64(tc.part), uint64(tc.attempt)) < f.StragglerProb {
		return f.stragglerFactor()
	}
	return 1
}

// fetchFailedError is raised (as a panic inside the task, converted to an
// error by the stage runner) when a shuffle read finds a map output missing —
// because a node died taking its shuffle files with it, or because the fault
// profile injected the loss. The scheduler reacts like Spark's DAGScheduler:
// mark the parent map stage not-done and resubmit it.
type fetchFailedError struct {
	shuffle  int
	mapPart  int
	injected bool
}

func (e *fetchFailedError) Error() string {
	src := "lost"
	if e.injected {
		src = "injected loss of"
	}
	return fmt.Sprintf("rdd: fetch failure: %s map output %d of shuffle %d", src, e.mapPart, e.shuffle)
}

// TaskAbortedError is the structured job-abort error returned when a task
// has failed Config.TaskMaxFailures times (Spark's task.maxFailures
// semantics: the whole job is failed, not just the task).
type TaskAbortedError struct {
	Stage    string // lineage label of the stage's RDD
	Part     int    // partition whose task exhausted its attempts
	Attempts int    // attempts consumed (== TaskMaxFailures)
	Cause    error  // the final attempt's failure
}

func (e *TaskAbortedError) Error() string {
	return fmt.Sprintf("rdd: aborting job: task for partition %d of stage %q failed %d times; last failure: %v",
		e.Part, e.Stage, e.Attempts, e.Cause)
}

func (e *TaskAbortedError) Unwrap() error { return e.Cause }

// StageAbortedError is returned when a map stage has been resubmitted
// Config.MaxStageAttempts times and its outputs still cannot be fetched.
type StageAbortedError struct {
	Stage    string // lineage label of the map stage's RDD
	Shuffle  int    // shuffle id whose outputs kept disappearing
	Attempts int    // total stage attempts consumed
	Cause    error  // the fetch failure that exhausted the budget
}

func (e *StageAbortedError) Error() string {
	return fmt.Sprintf("rdd: aborting job: map stage %q (shuffle %d) failed after %d attempts; last failure: %v",
		e.Stage, e.Shuffle, e.Attempts, e.Cause)
}

func (e *StageAbortedError) Unwrap() error { return e.Cause }
