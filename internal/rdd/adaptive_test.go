// The adaptive-execution parity property: for ANY plan — any partition
// geometry, any byte skew, speculation on or off, chaos or not — the adaptive
// planner must be invisible in the results. Coalescing replays member
// partitions in partition order and skew splitting replays prefetched map
// outputs in map-output order, so the pair stream every reduce partition
// folds is identical to the static plan's; these tests pin that with 1000
// seeded random plans (fewer under -short) plus targeted unit cases for the
// planner's cut-point arithmetic.

package rdd

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sparkscore/internal/cluster"
)

// randomPlan is one property-test case: a workload shape plus the fault,
// speculation, and adaptive knobs it runs under.
type randomPlan struct {
	seed        uint64
	elems       int
	mapParts    int
	reduceParts int
	hint        int64
	hotPct      int // percent of pairs on one hot key; 0 = uniform
	coldKeys    int
	group       bool // GroupByKey instead of ReduceByKey
	faults      FaultProfile
	spec        SpeculationConfig
	adaptive    AdaptiveConfig // Enabled overridden per run
}

// makeRandomPlan derives case i deterministically, mixing skew, partition
// dust, chaos, and speculation so the parity claim is exercised across the
// whole plan space rather than the comfortable corner.
func makeRandomPlan(i int) randomPlan {
	rng := rand.New(rand.NewSource(int64(i)*2654435761 + 97))
	p := randomPlan{
		seed:        uint64(rng.Int63()),
		elems:       40 + rng.Intn(360),
		mapParts:    2 + rng.Intn(7),
		reduceParts: 1 + rng.Intn(10),
		hint:        []int64{8, 512, 4096}[rng.Intn(3)],
		coldKeys:    4 + rng.Intn(60),
		group:       rng.Intn(2) == 0,
		adaptive: AdaptiveConfig{
			TargetPartitionBytes: []int64{4 << 10, 64 << 10, 64 << 20}[rng.Intn(3)],
			SkewFactor:           []float64{2, 5}[rng.Intn(2)],
			SkewMinBytes:         []int64{1 << 10, 1 << 20}[rng.Intn(2)],
			MaxSubSplits:         []int{2, 4, 8}[rng.Intn(3)],
		},
	}
	switch rng.Intn(3) {
	case 0:
		p.hotPct = 50
	case 1:
		p.hotPct = 90
	}
	if rng.Intn(2) == 0 { // chaos: probability-keyed faults replay identically
		p.faults = FaultProfile{
			TaskCrashProb:    []float64{0, 0.02}[rng.Intn(2)],
			FetchFailureProb: []float64{0, 0.02}[rng.Intn(2)],
		}
	}
	if rng.Intn(3) == 0 {
		p.faults.StragglerProb = 0.2
		p.faults.StragglerFactor = 4
	}
	if rng.Intn(2) == 0 {
		p.spec = SpeculationConfig{Enabled: true}
	}
	return p
}

// runPlan executes the plan once and returns the collected result rendered as
// a string, the job-skeleton log (JobStart/JobEnd only, measured time
// stripped), and the full stripped event log.
//
// The full log is comparable only between runs of the SAME mode: adaptive
// runs charge the hot partition's fetch bytes to prefetch executors, so task
// byte counters legitimately differ from the static plan. The cross-mode
// contract is the result digest plus the job skeleton.
func runPlan(t *testing.T, p randomPlan, enabled bool) (digest, skeleton, full string) {
	t.Helper()
	var buf bytes.Buffer
	elw := NewEventLogWriter(&buf)
	acfg := p.adaptive
	acfg.Enabled = enabled
	c, err := New(Config{
		Cluster:          concTestCluster(),
		Seed:             p.seed,
		Faults:           p.faults,
		Speculation:      p.spec,
		Adaptive:         acfg,
		StageOverheadSec: 1e-4,
		SchedOverheadSec: 1e-4,
		Listeners:        []Listener{elw},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Parallelize(c, seq(p.elems), p.mapParts)
	hot, cold := p.hotPct, p.coldKeys
	pairs := Map(base, "pairs", func(i int) KV[int, int] {
		if i%100 < hot {
			return KV[int, int]{K: 0, V: i}
		}
		return KV[int, int]{K: 1 + i%cold, V: i}
	}).SetSizeHint(p.hint)
	if p.group {
		out, err := Collect(GroupByKey(pairs, p.reduceParts))
		digest = render(out, err)
	} else {
		out, err := Collect(ReduceByKey(pairs, func(a, b int) int { return a + b }, p.reduceParts))
		digest = render(out, err)
	}
	if err := elw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEventLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var skel, whole strings.Builder
	for _, ev := range events {
		line, err := MarshalEvent(StripMeasuredTime(ev))
		if err != nil {
			t.Fatal(err)
		}
		whole.Write(line)
		whole.WriteByte('\n')
		switch ev.(type) {
		case *JobStart, *JobEnd:
			skel.Write(line)
			skel.WriteByte('\n')
		}
	}
	return digest, skel.String(), whole.String()
}

func render[T any](out []T, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return fmt.Sprintf("%v", out)
}

// TestAdaptiveParityProperty is the property suite: across 1000 seeded random
// plans, the adaptive and static schedules must produce byte-identical
// results and job skeletons, and the adaptive schedule itself must replay
// bit-for-bit under the same seed (full stripped log compared on a sample of
// plans — three runs per plan everywhere would double the suite's cost for no
// extra coverage).
func TestAdaptiveParityProperty(t *testing.T) {
	plans := 1000
	if testing.Short() {
		plans = 120
	}
	for i := 0; i < plans; i++ {
		p := makeRandomPlan(i)
		staticDigest, staticSkel, _ := runPlan(t, p, false)
		adaptDigest, adaptSkel, adaptFull := runPlan(t, p, true)
		if strings.HasPrefix(staticDigest, "error:") || strings.HasPrefix(adaptDigest, "error:") {
			// A job abort (task exceeding TaskMaxFailures under chaos) is a
			// legal outcome, but its timing is mode-dependent; parity is a
			// claim about produced results.
			continue
		}
		if staticDigest != adaptDigest {
			t.Fatalf("plan %d (%+v): adaptive result diverged from static\nstatic:   %.200s\nadaptive: %.200s",
				i, p, staticDigest, adaptDigest)
		}
		if staticSkel != adaptSkel {
			t.Fatalf("plan %d (%+v): job skeleton diverged\nstatic:\n%s\nadaptive:\n%s", i, p, staticSkel, adaptSkel)
		}
		if i%8 == 0 {
			_, _, again := runPlan(t, p, true)
			if again != adaptFull {
				t.Fatalf("plan %d (%+v): adaptive run is not replay-stable under its own seed:\n%s",
					i, p, firstDiffLines(adaptFull, again))
			}
		}
	}
}

// TestAdaptiveDisabledLogsUnchanged pins that the default configuration emits
// no adaptive events at all: a log written with the planner off must be
// byte-identical to one from a build that never heard of adaptive execution,
// so archived logs stay comparable.
func TestAdaptiveDisabledLogsUnchanged(t *testing.T) {
	p := makeRandomPlan(3)
	p.faults = FaultProfile{}
	p.spec = SpeculationConfig{}
	_, _, full := runPlan(t, p, false)
	for _, banned := range []string{"MapOutputStats", "AdaptivePlan", "prefetch", "\"sub\""} {
		if strings.Contains(full, banned) {
			t.Errorf("planner-off log contains %q:\n%s", banned, firstDiffLines(full, ""))
		}
	}
}

// TestSplitByteRanges pins the skew splitter's cut-point arithmetic: every
// map output lands in exactly one range, ranges are contiguous and ordered,
// and the split count never exceeds the requested k or the map-output count.
func TestSplitByteRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(12)
		perMap := make([]int64, n)
		for i := range perMap {
			perMap[i] = int64(rng.Intn(1 << 16))
		}
		ranges := splitByteRanges(perMap, k)
		if len(ranges) == 0 || len(ranges) > k || len(ranges) > n {
			t.Fatalf("trial %d: %d ranges for n=%d k=%d", trial, len(ranges), n, k)
		}
		next := 0
		for _, rg := range ranges {
			if rg.lo != next || rg.hi <= rg.lo {
				t.Fatalf("trial %d: ranges not a contiguous partition of [0,%d): %+v", trial, n, ranges)
			}
			next = rg.hi
		}
		if next != n {
			t.Fatalf("trial %d: ranges cover [0,%d) of [0,%d): %+v", trial, next, n, ranges)
		}
	}
}

// TestAdaptiveConfigValidate pins the config gate.
func TestAdaptiveConfigValidate(t *testing.T) {
	good := []AdaptiveConfig{
		{},
		{Enabled: true},
		{Enabled: true, TargetPartitionBytes: 1 << 20, SkewFactor: 3, SkewMinBytes: 1, MaxSubSplits: 2},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %d: unexpected error %v", i, err)
		}
	}
	bad := []AdaptiveConfig{
		{TargetPartitionBytes: -1},
		{MinPartitionNum: -2},
		{SkewFactor: 0.5},
		{SkewFactor: -1},
		{SkewMinBytes: -1},
		{MaxSubSplits: -3},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v): invalid config accepted", i, cfg)
		}
	}
}

// TestAdaptiveSkewSplitHappens is the positive control for the property
// suite: with a hot partition far past the skew threshold the planner must
// actually split (an AdaptivePlan event with the hot partition listed), so
// the parity above is not vacuously comparing two static schedules.
func TestAdaptiveSkewSplitHappens(t *testing.T) {
	var plans []*AdaptivePlan
	probe := ListenerFunc(func(ev Event) {
		if e, ok := ev.(*AdaptivePlan); ok {
			plans = append(plans, e)
		}
	})
	c, err := New(Config{
		Cluster: cluster.Config{
			Nodes: 2, Spec: cluster.NodeSpec{Name: "skew", VCPUs: 8, MemGiB: 8},
			ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 2,
		},
		Seed:      5,
		Adaptive:  AdaptiveConfig{Enabled: true, SkewMinBytes: 1 << 10},
		Listeners: []Listener{probe},
	})
	if err != nil {
		t.Fatal(err)
	}
	// GroupByKey, not ReduceByKey: map-side combine would collapse each map
	// task's hot pairs to one and erase the byte skew being provoked.
	pairs := Map(Parallelize(c, seq(2000), 8), "hot", func(i int) KV[int, int] {
		if i%10 != 0 {
			return KV[int, int]{K: 0, V: 1}
		}
		return KV[int, int]{K: 1 + i%7, V: 1}
	}).SetSizeHint(4096)
	out, err := Collect(GroupByKey(pairs, 8))
	if err != nil {
		t.Fatal(err)
	}
	hotLen := -1
	for _, kv := range out {
		if kv.K == 0 {
			hotLen = len(kv.V)
		}
	}
	if hotLen != 1800 {
		t.Fatalf("hot key group has %d values, want 1800", hotLen)
	}
	if len(plans) == 0 {
		t.Fatal("no AdaptivePlan emitted for a 9:1 skewed shuffle")
	}
	split := false
	for _, p := range plans {
		split = split || (len(p.Skewed) > 0 && p.SubSplits > 1)
	}
	if !split {
		t.Fatalf("planner never split the hot partition: %+v", plans)
	}
}
