// The DAG scheduler. A job is split into stages at shuffle boundaries: every
// shuffle dependency reachable from the action's RDD becomes a map stage
// (outputs retained), and the action itself is the result stage. Within a
// stage, one task per partition executes the pipelined narrow chain.
//
// Tasks are placed on executors by locality preference (cached block holder,
// then HDFS replica node, then least-loaded), run for real on the host under
// a bounded worker pool, and have their measured compute time plus modelled
// I/O converted into virtual seconds on the executor's core slots.
//
// Failure handling mirrors Spark's DAGScheduler/TaskSetManager split:
//
//   - A failed task attempt is retried on a freshly chosen executor, up to
//     Config.TaskMaxFailures attempts; exhaustion aborts the job with a
//     TaskAbortedError. Executors accumulating failures are excluded from
//     further placement (blacklisting).
//   - A fetch failure (missing map output) fails the stage, not the task:
//     the parent shuffle dependency is marked not-done and the map stage is
//     resubmitted for the missing partitions only, bounded by
//     Config.MaxStageAttempts. Result partitions already visited are not
//     re-run.
//   - Recovery work — failed attempts, retries, resubmitted stages — is
//     accounted separately in JobMetrics.RecoverySeconds.

package rdd

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sparkscore/internal/simtime"
)

type task struct {
	part     int
	sub      int // 1-based skew-split sub-task index (adaptive prefetch); 0 otherwise
	executor int
	attempt  int // 1-based attempt number of the latest launch
	run      func(tc *taskContext)

	// filled after execution
	computeSec float64
	tc         *taskContext
	ok         bool
	failMsg    string // why the attempt failed (charge records only)
}

// jobRun is the driver-side state of one running job: its id, its scheduling
// pool, the virtual clock at job start, and the virtual seconds accumulated
// so far. Virtual event timestamps are base + virt; all metric accumulation
// happens in bus listeners, not here.
type jobRun struct {
	job    uint64
	pool   string
	base   float64 // context clock when the job was admitted
	virt   float64 // virtual seconds this job has accumulated
	cancel *jobCancel
}

func (j *jobRun) now() float64 { return j.base + j.virt }

// runJob executes the action on the final node. eval runs inside each result
// task, in parallel: it receives the task context and partition index and
// must drive the partition's cursor to a result (this is where a fused chain
// actually streams, outside any driver lock). visit then receives eval's
// result under the driver lock (no internal synchronisation needed) and is
// called at most once per partition even across stage re-attempts.
func (c *Context) runJob(final *node, action string, eval func(tc *taskContext, p int) any, visit func(p int, v any)) (err error) {
	// Admission: under FIFO this blocks until every earlier submission has
	// ended (jobs run back-to-back on the virtual clock); under FAIR it
	// returns immediately and the job runs on its pool's slot share. The job
	// id and clock base are taken only after admission, so ids and start
	// times follow admission order.
	pool := c.currentPool()
	cancel := c.currentCancel()
	if !c.sched.admit(cancel) {
		// Cancelled while queued for FIFO admission: the job never started —
		// no id was assigned and no events are emitted.
		return &JobCancelledError{Reason: cancel.why()}
	}
	job := c.newJobID()
	if cancel == nil {
		cancel = newJobCancel() // reachable by CancelJob even without RunWithCancel
	}
	c.mu.Lock()
	base := c.clock
	c.activeJobs++
	c.runningCancels[job] = cancel
	c.mu.Unlock()
	c.sched.jobStarted(job, pool)
	jr := &jobRun{job: job, pool: pool, base: base, cancel: cancel}

	// endJob publishes the terminal JobEnd exactly once — from the success
	// path or from the deferred failure handler — after flushing buffered
	// context events (node losses fired late in the job). A successful job
	// advances the shared clock to its own end if the clock is not already
	// past it (concurrent jobs overlap; the clock is the max of their ends);
	// an aborted job contributes no virtual time, as before.
	ended := false
	endJob := func(failErr error) {
		if ended {
			return
		}
		ended = true
		c.drainContextEvents(jr.now())
		var jc *JobCancelledError
		cancelled := errors.As(failErr, &jc)
		if cancelled {
			c.emit(jr.now(), &JobCancelled{Job: job, Action: action, RDD: final.name, Reason: jc.Reason})
		}
		end := &JobEnd{Job: job, Action: action, RDD: final.name, VirtualSeconds: jr.virt}
		switch {
		case cancelled:
			end.Cancelled = true
		case failErr != nil:
			end.Failed, end.Error = true, failErr.Error()
		}
		c.emit(jr.now(), end)
		c.mu.Lock()
		if failErr == nil && jr.now() > c.clock {
			c.clock = jr.now()
		}
		delete(c.runningCancels, job)
		c.activeJobs--
		c.mu.Unlock()
		c.sched.jobEnded(job)
		c.noteJobSpan(JobSpan{Job: job, Pool: pool, Action: action,
			StartVirtual: jr.base, EndVirtual: jr.now(), Failed: failErr != nil})
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rdd: job %s(%s) failed: %v", action, final.name, r)
		}
		if err != nil {
			endJob(err)
		}
	}()

	bcast := c.chargeBroadcast()
	c.emit(base, &JobStart{Job: job, Action: action, RDD: final.name, Pool: pool, BroadcastSeconds: bcast})
	jr.virt += bcast

	resubmits := map[int]int{} // shuffle id → resubmissions so far
	completed := make([]bool, final.parts)
	var visitMu sync.Mutex

	// One DAG attempt: run every not-yet-done map stage bottom-up, then the
	// result tasks for partitions not yet visited. A fetch failure ends the
	// attempt early; the loop below reacts by resubmitting the map stage
	// that lost its outputs.
	attempt := func(round int) error {
		seen := map[int]bool{}
		var ensure func(n *node) error
		ensure = func(n *node) error {
			for _, sd := range n.stageShuffleDeps() {
				if seen[sd.id] {
					continue
				}
				seen[sd.id] = true
				sd := sd
				if err := func() error {
					// Serialise with concurrent jobs sharing this lineage: a
					// second job blocks here while the first runs the map
					// stage, then observes done and skips it (see
					// shuffleDep.runMu for why this cannot deadlock).
					sd.runMu.Lock()
					defer sd.runMu.Unlock()
					if sd.isDone() {
						return nil
					}
					if err := ensure(sd.parent); err != nil {
						return err
					}
					tasks := make([]*task, 0, sd.parent.parts)
					for p := 0; p < sd.parent.parts; p++ {
						if c.shuffle.has(sd.id, p) {
							continue
						}
						p := p
						tasks = append(tasks, &task{part: p, run: func(tc *taskContext) { sd.runMap(tc, p) }})
					}
					recovery := resubmits[sd.id] > 0
					tasks, err := c.adaptStage(jr, uint64(sd.id), round, sd.parent, tasks, recovery)
					if err != nil {
						return err
					}
					if err := c.runStage(jr, uint64(sd.id), round, sd.parent, tasks, recovery, false); err != nil {
						return err
					}
					// Only now is the shuffle complete; marking it done before
					// running would make a retried job skip recomputation and
					// read empty shuffle outputs.
					sd.setDone(true)
					return nil
				}(); err != nil {
					return err
				}
			}
			return nil
		}
		if err := ensure(final); err != nil {
			return err
		}
		tasks := make([]*task, 0, final.parts)
		for p := 0; p < final.parts; p++ {
			if completed[p] {
				continue
			}
			p := p
			tasks = append(tasks, &task{part: p, run: func(tc *taskContext) {
				// An adaptive group task re-runs every member on an in-stage
				// retry; partitions already visited by the first try must not
				// be evaluated (or visited) twice.
				visitMu.Lock()
				done := completed[p]
				visitMu.Unlock()
				if done {
					return
				}
				v := eval(tc, p)
				visitMu.Lock()
				if !completed[p] {
					visit(p, v)
					completed[p] = true
				}
				visitMu.Unlock()
			}})
		}
		tasks, err := c.adaptStage(jr, 0, round, final, tasks, round > 0)
		if err != nil {
			return err
		}
		return c.runStage(jr, 0, round, final, tasks, round > 0, false)
	}

	for round := 0; ; round++ {
		errAttempt := attempt(round)
		if errAttempt == nil {
			break
		}
		var ff *fetchFailedError
		if !errors.As(errAttempt, &ff) {
			return errAttempt
		}
		sd := findShuffleDep(final, ff.shuffle)
		if sd == nil {
			return errAttempt
		}
		resubmits[sd.id]++
		// After n failures the stage has attempted n times; allowing another
		// attempt requires n < MaxStageAttempts.
		if resubmits[sd.id] >= c.cfg.MaxStageAttempts {
			return &StageAbortedError{Stage: sd.parent.name, Shuffle: sd.id, Attempts: resubmits[sd.id], Cause: ff}
		}
		c.emit(jr.now(), &StageResubmitted{Job: job, Shuffle: sd.id, Attempt: resubmits[sd.id], Reason: ff.Error()})
		sd.setDone(false)
	}

	endJob(nil)
	return nil
}

// findShuffleDep locates the shuffle dependency with the given id anywhere
// in the lineage reachable from n (crossing shuffle boundaries).
func findShuffleDep(n *node, shuffle int) *shuffleDep {
	var found *shuffleDep
	seen := map[int]bool{}
	var walk func(m *node)
	walk = func(m *node) {
		if m == nil || seen[m.id] || found != nil {
			return
		}
		seen[m.id] = true
		for _, sd := range m.shuffleIn {
			if sd.id == shuffle {
				found = sd
				return
			}
			walk(sd.parent)
		}
		for _, p := range m.narrowParents {
			walk(p)
		}
	}
	walk(n)
	return found
}

func isFetchFailure(err error) bool {
	var ff *fetchFailedError
	return errors.As(err, &ff)
}

// runStage places, executes, and accounts one stage, retrying failed task
// attempts (each on a freshly chosen executor) up to Config.TaskMaxFailures
// times. It returns a *fetchFailedError when a task found a map output
// missing — the caller resubmits the parent map stage — and a
// *TaskAbortedError when a task exhausted its attempts.
func (c *Context) runStage(jr *jobRun, stageID uint64, round int, stageRDD *node, tasks []*task, recovery, prefetch bool) error {
	if len(tasks) == 0 {
		return nil
	}
	job := jr.job
	stageStart := jr.now()
	c.emit(stageStart, &StageSubmitted{Job: job, Stage: stageID, Round: round, RDD: stageRDD.name, NumTasks: len(tasks), Recovery: recovery, Prefetch: prefetch})

	// Placement: prefer localities, balance by per-stage assignment counts.
	// The same loads map threads through re-placements and retries so late
	// decisions still see the stage's live load balance.
	loads := map[int]int{}
	c.mu.Lock()
	for _, t := range tasks {
		t.executor = c.placeLocked(stageRDD.preferredExecutors(t.part), loads)
	}
	c.mu.Unlock()

	var (
		charges     []*task // failed attempts, kept for virtual accounting
		stageErr    error
		stageEvents []Event // executor exclusions, flushed before StageCompleted
	)
	wave := tasks
	for attempt := 1; len(wave) > 0 && stageErr == nil; attempt++ {
		type failure struct {
			t   *task
			ff  *fetchFailedError
			err error
		}
		var (
			wg     sync.WaitGroup
			failMu sync.Mutex
			fails  []failure
			abort  atomic.Bool
		)
		for _, t := range wave {
			if abort.Load() {
				break // the job is doomed: drain instead of launching more
			}
			if jr.cancel.cancelled() {
				break // the job is cancelled: this is the next task boundary
			}
			t.attempt = attempt
			wg.Add(1)
			c.workers <- struct{}{}
			go func(t *task) {
				tc := &taskContext{ctx: c, job: job, stage: stageID, round: round, part: t.part, attempt: attempt}
				start := time.Now()
				defer func() {
					t.computeSec = time.Since(start).Seconds()
					t.tc = tc
					// The attempt's execution-memory grant dies with it,
					// success or failure — buffers and merge outputs are
					// consumed by the downstream cursor before the barrier.
					tc.releaseAllExecution()
					if r := recover(); r != nil {
						f := failure{t: t}
						if ff, ok := r.(*fetchFailedError); ok {
							f.ff = ff
						} else {
							f.err = fmt.Errorf("task %d (attempt %d) on executor %d: %v", t.part, attempt, t.executor, r)
							if attempt >= c.cfg.TaskMaxFailures {
								abort.Store(true)
							}
						}
						failMu.Lock()
						fails = append(fails, f)
						failMu.Unlock()
					} else {
						t.ok = true
						c.mu.Lock()
						c.tasksDone++
						c.mu.Unlock()
					}
					<-c.workers
					wg.Done()
				}()
				c.beforeTask(t, stageRDD, loads)
				tc.executor = t.executor
				c.maybeInjectCrash(tc)
				t.run(tc)
			}(t)
		}
		wg.Wait()

		// Deterministic post-mortem, in (partition, sub-task) order: attribute
		// failures to executors, pick the error that escalates, build the
		// retry wave.
		sort.Slice(fails, func(i, j int) bool {
			if fails[i].t.part != fails[j].t.part {
				return fails[i].t.part < fails[j].t.part
			}
			return fails[i].t.sub < fails[j].t.sub
		})
		var retry []*task
		for _, f := range fails {
			t := f.t
			charge := &task{part: t.part, sub: t.sub, executor: t.executor, attempt: t.attempt, computeSec: t.computeSec, tc: t.tc}
			noteFailure := func() {
				if ev := c.noteTaskFailure(t.executor); ev != nil {
					stageEvents = append(stageEvents, ev)
				}
			}
			switch {
			case f.ff != nil:
				// A fetch failure fails the stage, not the task: it does
				// not count against the attempt budget, and recovery means
				// resubmitting the parent map stage. Running siblings
				// finish first (their results are kept), as in Spark.
				charge.failMsg = f.ff.Error()
				if stageErr == nil {
					stageErr = f.ff
				}
			case t.attempt >= c.cfg.TaskMaxFailures:
				charge.failMsg = f.err.Error()
				noteFailure()
				if stageErr == nil || isFetchFailure(stageErr) {
					stageErr = &TaskAbortedError{Stage: stageRDD.name, Part: t.part, Attempts: t.attempt, Cause: f.err}
				}
			default:
				charge.failMsg = f.err.Error()
				noteFailure()
				t.ok, t.tc = false, nil
				retry = append(retry, t)
			}
			charges = append(charges, charge)
		}
		if stageErr != nil {
			break
		}
		if jr.cancel.cancelled() {
			// Launched attempts (and their failures) are accounted as usual;
			// the stage then completes as cancelled and the job unwinds.
			stageErr = &JobCancelledError{Job: job, Reason: jr.cancel.why()}
			break
		}
		if len(retry) > 0 {
			c.mu.Lock()
			for _, t := range retry {
				t.executor = c.placeLocked(stageRDD.preferredExecutors(t.part), loads)
			}
			c.mu.Unlock()
		}
		wave = retry
	}

	// Virtual accounting: greedy list scheduling of every attempt's duration
	// — successful and failed alike, both occupied core slots — on each
	// executor's slots; the stage barrier is the slowest executor. This pass
	// runs in deterministic order (partitions, then failed attempts in
	// post-mortem order), and it is where each attempt's buffered events are
	// flushed to the bus: TaskStart at the attempt's virtual launch, then the
	// events the task recorded while running (cache puts, evictions, fetch
	// failures), then TaskEnd with the metrics snapshot.
	// Each executor contributes only the job's arbitrated slot share for this
	// stage: all cores under FIFO or when the job runs alone, a weight- and
	// minShare-derived fraction when FAIR jobs overlap (see jobArbiter).
	totalSlots := c.cluster.TotalSlots()
	pools := map[int]*simtime.SlotPool{}
	poolFor := func(executor int) *simtime.SlotPool {
		pool, ok := pools[executor]
		if !ok {
			cores := c.cluster.Executor(executor).Cores
			pool = simtime.NewSlotPool(c.sched.stageSlots(job, executor, cores, totalSlots))
			pools[executor] = pool
		}
		return pool
	}
	// Phase one: schedule. Play every attempt's duration onto its executor's
	// slots (successful tasks in partition order, then failed attempts in
	// post-mortem order) without emitting anything yet — speculation needs the
	// whole schedule before any TaskEnd is final.
	var scheds []*attemptSched
	schedule := func(t *task, isRecovery bool) {
		if t.tc == nil {
			return // never launched (drained after an abort)
		}
		base := c.taskBaseDuration(t)
		slow := c.stragglerSlowdown(t.tc)
		dur := base * slow
		done := poolFor(t.executor).Run(0, dur)
		scheds = append(scheds, &attemptSched{t: t, recovery: isRecovery,
			base: base, slow: slow, dur: dur, done: done, effDone: done})
	}
	for _, t := range tasks {
		if t.ok {
			schedule(t, recovery || t.attempt > 1)
		}
	}
	for _, t := range charges {
		schedule(t, true)
	}
	// Phase two: speculation. Copies of straggling attempts are placed on
	// other executors' remaining slots; a surviving copy wins and truncates
	// its original at the copy's completion (a no-op unless enabled).
	if stageErr == nil {
		c.planSpeculation(job, stageID, round, scheds, poolFor)
	}
	// Phase three: emit, in schedule order. The stage barrier is the last
	// *effective* completion — killed originals count up to their kill time
	// only, which is exactly the speculation win.
	makespan := 0.0
	for _, s := range scheds {
		if s.effDone > makespan {
			makespan = s.effDone
		}
		if s.copy != nil && s.copy.done > makespan {
			makespan = s.copy.done
		}
	}
	for _, s := range scheds {
		c.emitAttempt(jr, stageID, round, stageStart, s)
	}
	// Node losses fired by plans during this stage, then executor exclusions,
	// land at the stage barrier — a deterministic log position.
	c.drainContextEvents(stageStart + makespan)
	for _, ev := range stageEvents {
		c.emit(stageStart+makespan, ev)
	}
	elapsed := makespan + c.cfg.StageOverheadSec
	done := &StageCompleted{Job: job, Stage: stageID, Round: round, RDD: stageRDD.name,
		NumTasks: len(tasks), FailedAttempts: len(charges), Seconds: elapsed, Prefetch: prefetch}
	if stageErr != nil {
		done.Failed, done.Error = true, stageErr.Error()
	}
	c.emit(stageStart+elapsed, done)
	jr.virt += elapsed
	return stageErr
}

// emitAttempt flushes one scheduled attempt's events: TaskStart at its
// virtual launch, the events the task buffered while running, then TaskEnd —
// plus, when a speculative copy raced it, the copy's launch, the kill of the
// losing original, and the copy's own TaskEnd.
func (c *Context) emitAttempt(jr *jobRun, stage uint64, round int, stageStart float64, s *attemptSched) {
	t := s.t
	start, end := stageStart+s.done-s.dur, stageStart+s.effDone
	c.emit(start, &TaskStart{Job: jr.job, Stage: stage, Round: round, Part: t.part, Sub: t.sub, Attempt: t.attempt, Executor: t.executor})
	for _, ev := range t.tc.events {
		c.emit(end, ev)
	}
	te := &TaskEnd{
		Job: jr.job, Stage: stage, Round: round, Part: t.part, Sub: t.sub, Attempt: t.attempt, Executor: t.executor,
		OK: t.ok, Failure: t.failMsg, Recovery: s.recovery,
		StartSec: start, DurationSec: s.dur, ComputeSec: t.computeSec,
		Metrics: t.tc.snapshot(),
	}
	cp := s.copy
	if cp != nil {
		c.emit(stageStart+cp.done-cp.dur, &SpeculativeTaskLaunched{Job: jr.job, Stage: stage, Round: round,
			Part: t.part, Attempt: t.attempt, Executor: cp.executor, Original: t.executor})
		if !cp.crashed {
			// The copy won: the original is killed at the copy's completion,
			// its span truncated there.
			te.OK, te.Killed = false, true
			te.Failure = "killed: speculative copy won"
			te.DurationSec = s.effDone - (s.done - s.dur)
			c.emit(end, &TaskKilled{Job: jr.job, Stage: stage, Round: round, Part: t.part,
				Attempt: t.attempt, Executor: t.executor, Reason: "speculative copy finished first"})
		}
	}
	c.emit(end, te)
	if cp != nil {
		cte := &TaskEnd{
			Job: jr.job, Stage: stage, Round: round, Part: t.part, Sub: t.sub, Attempt: t.attempt, Executor: cp.executor,
			Speculative: true, Recovery: s.recovery,
			StartSec: stageStart + cp.done - cp.dur, DurationSec: cp.dur,
		}
		if cp.crashed {
			cte.Failure = fmt.Sprintf("injected task crash (speculative copy of stage %d partition %d attempt %d)", stage, t.part, t.attempt)
		} else {
			// The winning copy re-ran the same partition for real: it carries
			// the original's measured compute and byte counters, honestly
			// double-charging what speculation cost the cluster.
			cte.OK = true
			cte.ComputeSec = t.computeSec
			cte.Metrics = t.tc.snapshot()
		}
		c.emit(stageStart+cp.done, cte)
	}
}

// beforeTask fires any due failure plans and re-places the task if its
// executor has died or been excluded since placement, honouring the stage
// RDD's locality preferences and the stage's live load balance.
func (c *Context) beforeTask(t *task, stageRDD *node, loads map[int]int) {
	c.firePlans()
	c.mu.Lock()
	if !c.cluster.Live(t.executor) || c.excluded[t.executor] {
		t.executor = c.placeLocked(stageRDD.preferredExecutors(t.part), loads)
	}
	c.mu.Unlock()
}

// firePlans triggers every scheduled failure whose task-count threshold has
// been reached. Multiple queued plans fire in submission order, so chaos
// scripts can cascade failures.
func (c *Context) firePlans() {
	c.mu.Lock()
	var due []*failurePlan
	for _, fp := range c.failPlans {
		if !fp.fired && c.tasksDone >= fp.afterTasks {
			fp.fired = true
			due = append(due, fp)
		}
	}
	c.mu.Unlock()
	for _, fp := range due {
		// Best effort; failing the last live executor or node is refused.
		if fp.node >= 0 {
			_ = c.FailNode(fp.node)
		} else {
			_ = c.FailExecutor(fp.executor)
		}
	}
}

// noteTaskFailure counts a task failure against the executor; crossing the
// Config.ExcludeAfterFailures threshold takes the executor out of scheduling
// (Spark's blacklisting) and returns the ExecutorExcluded event for the
// caller to publish at a deterministic point. The last schedulable executor
// is never excluded.
func (c *Context) noteTaskFailure(executor int) *ExecutorExcluded {
	limit := c.cfg.ExcludeAfterFailures
	if limit <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.execFailures[executor]++
	if c.execFailures[executor] < limit || c.excluded[executor] {
		return nil
	}
	for _, id := range c.cluster.LiveExecutors() {
		if id != executor && !c.excluded[id] {
			c.excluded[executor] = true
			return &ExecutorExcluded{Executor: executor, Failures: c.execFailures[executor]}
		}
	}
	return nil
}

// placeLocked picks an executor: the least-loaded live, non-excluded
// executor among the preferred set, else the least-loaded live non-excluded
// executor overall, breaking ties by id for determinism. If exclusion has
// disqualified every live executor, it yields to liveness. Caller holds c.mu.
func (c *Context) placeLocked(preferred []int, loads map[int]int) int {
	if c.cfg.DisableLocality {
		// Ignore preferences and place uniformly at random (deterministic in
		// the context seed): without delay scheduling, where a task lands has
		// no relation to where its data lives.
		live := c.cluster.LiveExecutors()
		cands := make([]int, 0, len(live))
		for _, id := range live {
			if !c.excluded[id] {
				cands = append(cands, id)
			}
		}
		if len(cands) == 0 {
			cands = live
		}
		id := cands[c.r.Intn(len(cands))]
		loads[id]++
		return id
	}
	pick := func(cands []int, honourExclusion bool) (int, bool) {
		best, bestLoad := -1, int(^uint(0)>>1)
		for _, id := range cands {
			if !c.cluster.Live(id) || (honourExclusion && c.excluded[id]) {
				continue
			}
			if l := loads[id]; l < bestLoad {
				best, bestLoad = id, l
			}
		}
		return best, best >= 0
	}
	anyID, anyOK := pick(c.cluster.LiveExecutors(), true)
	if !anyOK {
		anyID, anyOK = pick(c.cluster.LiveExecutors(), false)
	}
	if !anyOK {
		panic("rdd: no live executors")
	}
	// Delay-scheduling semantics: take the preferred executor while it is no
	// more loaded than the best alternative; once locality would stack tasks
	// while other executors idle, fall through to the cluster-wide choice.
	if prefID, ok := pick(preferred, true); ok && loads[prefID] <= loads[anyID] {
		loads[prefID]++
		return prefID
	}
	loads[anyID]++
	return anyID
}

// taskDuration converts a task's measured compute time and recorded I/O into
// simulated seconds, straggler slowdown included.
func (c *Context) taskDuration(t *task) float64 {
	return c.taskBaseDuration(t) * c.stragglerSlowdown(t.tc)
}

// taskBaseDuration is taskDuration before the straggler slowdown — the
// duration the task would have run at the stage's normal rate, which is what
// a speculative copy of it runs at on another executor.
func (c *Context) taskBaseDuration(t *task) float64 {
	cfg := c.cfg
	tc := t.tc
	diskBps := cfg.DiskMBps * 1e6
	netBps := cfg.NetMBps * 1e6
	memBps := cfg.MemGBps * 1e9

	dur := cfg.SchedOverheadSec +
		t.computeSec*cfg.CPUScale +
		float64(tc.dfsLocalBytes+tc.dfsRemoteBytes)/(cfg.ParseMBps*1e6) +
		float64(tc.dfsLocalBytes)/diskBps +
		float64(tc.dfsRemoteBytes)/netBps +
		float64(tc.shuffleLocalBytes)/diskBps +
		float64(tc.shuffleRemoteBytes)/netBps +
		float64(tc.cacheLocalBytes)/memBps +
		float64(tc.cacheDiskLocalBytes)/diskBps +
		float64(tc.cacheRemoteBytes)/netBps +
		float64(tc.shipBytes)/netBps +
		float64(tc.spilledBytes)/diskBps // sorted runs written under memory pressure

	// Modelled spill: the task's share of execution memory is the unified
	// pool's non-storage region divided over the executor's core slots; any
	// working set beyond it spills to disk and is read back. (Accounted
	// spills — tc.spilledBytes — are charged above from what the memory
	// manager actually denied; this heuristic covers narrow-stage working
	// sets the manager never sees.)
	exec := c.cluster.Executor(t.executor)
	execMemPerSlot := float64(exec.MemBytes) * cfg.MemoryFraction * (1 - cfg.StorageFraction) / float64(exec.Cores)
	if ws := float64(tc.workBytes()); ws > execMemPerSlot {
		dur += 2 * (ws - execMemPerSlot) / diskBps
	}
	return dur
}
