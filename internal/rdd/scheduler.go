// The DAG scheduler. A job is split into stages at shuffle boundaries: every
// shuffle dependency reachable from the action's RDD becomes a map stage
// (run once, outputs retained), and the action itself is the result stage.
// Within a stage, one task per partition executes the pipelined narrow chain.
//
// Tasks are placed on executors by locality preference (cached block holder,
// then HDFS replica node, then least-loaded), run for real on the host under
// a bounded worker pool, and have their measured compute time plus modelled
// I/O converted into virtual seconds on the executor's core slots.

package rdd

import (
	"fmt"
	"sync"
	"time"

	"sparkscore/internal/simtime"
)

type task struct {
	part     int
	executor int
	run      func(tc *taskContext)

	// filled after execution
	computeSec float64
	tc         *taskContext
}

// runJob executes the action on the final node, calling visit once per
// partition with the materialised partition value. visit runs under the
// driver lock (no internal synchronisation needed).
func (c *Context) runJob(final *node, action string, visit func(p int, v any)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("rdd: job %s(%s) failed: %v", action, final.name, r)
		}
	}()

	jm := JobMetrics{Action: action, RDD: final.name}
	jm.VirtualSeconds += c.chargeBroadcast()

	// Run every map stage this job depends on, bottom-up.
	done := map[int]bool{}
	var ensure func(n *node) error
	ensure = func(n *node) error {
		for _, sd := range n.stageShuffleDeps() {
			if done[sd.id] {
				continue
			}
			done[sd.id] = true
			if err := ensure(sd.parent); err != nil {
				return err
			}
			sd.mu.Lock()
			ran := sd.done
			sd.done = true
			sd.mu.Unlock()
			if ran {
				continue
			}
			tasks := make([]*task, 0, sd.parent.parts)
			for p := 0; p < sd.parent.parts; p++ {
				if c.shuffle.has(sd.id, p) {
					continue
				}
				p := p
				tasks = append(tasks, &task{part: p, run: func(tc *taskContext) { sd.runMap(tc, p) }})
			}
			if err := c.runStage(sd.parent, tasks, &jm); err != nil {
				return err
			}
		}
		return nil
	}
	if err := ensure(final); err != nil {
		return err
	}

	// Result stage.
	var visitMu sync.Mutex
	tasks := make([]*task, final.parts)
	for p := 0; p < final.parts; p++ {
		p := p
		tasks[p] = &task{part: p, run: func(tc *taskContext) {
			v := final.iterate(tc, p)
			visitMu.Lock()
			visit(p, v)
			visitMu.Unlock()
		}}
	}
	if err := c.runStage(final, tasks, &jm); err != nil {
		return err
	}

	jm.Evictions = c.blocks.evictionCount()
	c.mu.Lock()
	c.clock += jm.VirtualSeconds
	c.jobs = append(c.jobs, jm)
	c.mu.Unlock()
	return nil
}

// runStage places, executes, and accounts one stage.
func (c *Context) runStage(stageRDD *node, tasks []*task, jm *JobMetrics) error {
	if len(tasks) == 0 {
		return nil
	}
	jm.Stages++
	jm.Tasks += len(tasks)

	// Placement: prefer localities, balance by per-stage assignment counts.
	loads := map[int]int{}
	c.mu.Lock()
	for _, t := range tasks {
		t.executor = c.placeLocked(stageRDD.preferredExecutors(t.part), loads)
	}
	c.mu.Unlock()

	// Real execution under the host worker pool.
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		stageErr error
	)
	for _, t := range tasks {
		wg.Add(1)
		c.workers <- struct{}{}
		go func(t *task) {
			defer func() {
				if r := recover(); r != nil {
					errOnce.Do(func() { stageErr = fmt.Errorf("task %d on executor %d: %v", t.part, t.executor, r) })
				}
				<-c.workers
				wg.Done()
			}()
			c.beforeTask(t)
			tc := &taskContext{ctx: c, executor: t.executor}
			start := time.Now()
			t.run(tc)
			t.computeSec = time.Since(start).Seconds()
			t.tc = tc
			c.mu.Lock()
			c.tasksDone++
			c.mu.Unlock()
		}(t)
	}
	wg.Wait()
	if stageErr != nil {
		return stageErr
	}

	// Virtual accounting: greedy list scheduling of task durations on each
	// executor's core slots; the stage barrier is the slowest executor.
	pools := map[int]*simtime.SlotPool{}
	makespan := 0.0
	for _, t := range tasks {
		pool, ok := pools[t.executor]
		if !ok {
			pool = simtime.NewSlotPool(c.cluster.Executor(t.executor).Cores)
			pools[t.executor] = pool
		}
		done := pool.Run(0, c.taskDuration(t))
		if done > makespan {
			makespan = done
		}
		c.accumulate(jm, t)
	}
	jm.VirtualSeconds += makespan + c.cfg.StageOverheadSec
	return nil
}

// beforeTask fires any pending failure plan and re-places the task if its
// executor has died since placement.
func (c *Context) beforeTask(t *task) {
	c.mu.Lock()
	var fire *failurePlan
	if fp := c.failPlan; fp != nil && !fp.fired && c.tasksDone >= fp.afterTasks {
		fp.fired = true
		fire = fp
	}
	c.mu.Unlock()
	if fire != nil {
		// Best effort; failing the last live executor is refused.
		_ = c.FailExecutor(fire.executor)
	}
	c.mu.Lock()
	if !c.cluster.Live(t.executor) {
		t.executor = c.placeLocked(nil, map[int]int{})
	}
	c.mu.Unlock()
}

// placeLocked picks an executor: the least-loaded live executor among the
// preferred set, else the least-loaded live executor overall, breaking ties
// by id for determinism. Caller holds c.mu.
func (c *Context) placeLocked(preferred []int, loads map[int]int) int {
	if c.cfg.DisableLocality {
		// Ignore preferences and place uniformly at random (deterministic in
		// the context seed): without delay scheduling, where a task lands has
		// no relation to where its data lives.
		live := c.cluster.LiveExecutors()
		id := live[c.r.Intn(len(live))]
		loads[id]++
		return id
	}
	pick := func(cands []int) (int, bool) {
		best, bestLoad := -1, int(^uint(0)>>1)
		for _, id := range cands {
			if !c.cluster.Live(id) {
				continue
			}
			if l := loads[id]; l < bestLoad {
				best, bestLoad = id, l
			}
		}
		return best, best >= 0
	}
	anyID, anyOK := pick(c.cluster.LiveExecutors())
	if !anyOK {
		panic("rdd: no live executors")
	}
	// Delay-scheduling semantics: take the preferred executor while it is no
	// more loaded than the best alternative; once locality would stack tasks
	// while other executors idle, fall through to the cluster-wide choice.
	if prefID, ok := pick(preferred); ok && loads[prefID] <= loads[anyID] {
		loads[prefID]++
		return prefID
	}
	loads[anyID]++
	return anyID
}

// taskDuration converts a task's measured compute time and recorded I/O into
// simulated seconds.
func (c *Context) taskDuration(t *task) float64 {
	cfg := c.cfg
	tc := t.tc
	diskBps := cfg.DiskMBps * 1e6
	netBps := cfg.NetMBps * 1e6
	memBps := cfg.MemGBps * 1e9

	dur := cfg.SchedOverheadSec +
		t.computeSec*cfg.CPUScale +
		float64(tc.dfsLocalBytes+tc.dfsRemoteBytes)/(cfg.ParseMBps*1e6) +
		float64(tc.dfsLocalBytes)/diskBps +
		float64(tc.dfsRemoteBytes)/netBps +
		float64(tc.shuffleLocalBytes)/diskBps +
		float64(tc.shuffleRemoteByte)/netBps +
		float64(tc.cacheLocalBytes)/memBps +
		float64(tc.cacheDiskLocalByte)/diskBps +
		float64(tc.cacheRemoteBytes)/netBps +
		float64(tc.shipBytes)/netBps

	// Spill model: the task's share of execution memory is the non-storage
	// memory divided over the executor's core slots; any working set beyond
	// it spills to disk and is read back.
	exec := c.cluster.Executor(t.executor)
	execMemPerSlot := float64(exec.MemBytes) * (1 - cfg.StorageFraction) / float64(exec.Cores)
	if ws := float64(tc.workBytes()); ws > execMemPerSlot {
		dur += 2 * (ws - execMemPerSlot) / diskBps
	}
	return dur
}

func (c *Context) accumulate(jm *JobMetrics, t *task) {
	tc := t.tc
	jm.ComputeSeconds += t.computeSec
	jm.DFSBytes += tc.dfsLocalBytes + tc.dfsRemoteBytes
	jm.DFSLocalBytes += tc.dfsLocalBytes
	jm.ShuffleBytes += tc.shuffleLocalBytes + tc.shuffleRemoteByte
	jm.CacheReadBytes += tc.cacheLocalBytes + tc.cacheDiskLocalByte + tc.cacheRemoteBytes
}
