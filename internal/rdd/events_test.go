package rdd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sparkscore/internal/cluster"
)

// parityGolden is the JobMetrics fingerprint of the parity workload captured
// on the pre-listener scheduler (which accumulated metrics inline): the
// metrics listener must reconstruct every field bit-for-bit from bus events.
// The third job runs under a chaos profile chosen so all recovery counters
// (TaskRetries, StageAttempts, RecomputedPartitions) are non-zero.
//
// Regenerated when the memory manager added SpilledBytes/SpillCount/
// ShuffleBufferBytes/ExecutionPeakBytes: every pre-existing field was
// verified unchanged, pinning that the sort shuffle's ample-memory path
// reproduces the hash path's bytes exactly. ShuffleBufferBytes equals the
// shuffled jobs' former invisible bucket residency; the spill counters stay
// zero because these clusters have memory to spare.
const parityGolden = `rdd.JobMetrics{Action:"count", RDD:"filter:mod3(map:x2(parallelize[6000]))", Stages:1, Tasks:8, VirtualSeconds:0, ComputeSeconds:0, DFSBytes:0, DFSLocalBytes:0, ShuffleBytes:0, ShuffleRemoteBytes:0, CacheReadBytes:0, Evictions:0, MaterializedBytes:128000, PeakMaterializedBytes:16000, MaxFusedChain:3, SpilledBytes:0, SpillCount:0, ShuffleBufferBytes:0, ExecutionPeakBytes:0, TaskRetries:0, StageAttempts:0, RecomputedPartitions:0, RecoverySeconds:0, SpeculatedTasks:0, SpeculationWonTasks:0, KilledTasks:0, Cancelled:false}
rdd.JobMetrics{Action:"collect", RDD:"reduceByKey(map:key(filter:mod3(map:x2(parallelize[6000]))))", Stages:2, Tasks:12, VirtualSeconds:0, ComputeSeconds:0, DFSBytes:0, DFSLocalBytes:0, ShuffleBytes:3584, ShuffleRemoteBytes:2688, CacheReadBytes:128000, Evictions:0, MaterializedBytes:4480, PeakMaterializedBytes:640, MaxFusedChain:4, SpilledBytes:0, SpillCount:0, ShuffleBufferBytes:128000, ExecutionPeakBytes:16000, TaskRetries:0, StageAttempts:0, RecomputedPartitions:0, RecoverySeconds:0, SpeculatedTasks:0, SpeculationWonTasks:0, KilledTasks:0, Cancelled:false}
rdd.JobMetrics{Action:"collect", RDD:"reduceByKey(map:key(map:inc(filter:mod4(map:double(parallelize[10000])))))", Stages:8, Tasks:20, VirtualSeconds:0, ComputeSeconds:0, DFSBytes:0, DFSLocalBytes:0, ShuffleBytes:1088, ShuffleRemoteBytes:640, CacheReadBytes:0, Evictions:0, MaterializedBytes:6528, PeakMaterializedBytes:1088, MaxFusedChain:5, SpilledBytes:0, SpillCount:0, ShuffleBufferBytes:1280000, ExecutionPeakBytes:320000, TaskRetries:3, StageAttempts:3, RecomputedPartitions:3, RecoverySeconds:0, SpeculatedTasks:0, SpeculationWonTasks:0, KilledTasks:0, Cancelled:false}
`

// parityFingerprint runs the fixed parity workload — a clean caching +
// shuffle pipeline, then a chaos run exercising retries and stage
// resubmissions — and renders every JobMetrics field (measured time
// stripped) in Go syntax, bypassing the String() summary.
func parityFingerprint(t *testing.T) string {
	t.Helper()
	var fp string
	record := func(c *Context) {
		for _, m := range c.Jobs() {
			fp += fmt.Sprintf("%#v\n", m.WithoutMeasuredTime())
		}
	}

	// Clean workload: caching, cache reads, and a shuffle.
	c, err := New(Config{Cluster: cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	base := Parallelize(c, seq(6000), 8)
	doubled := Map(base, "x2", func(x int) int { return 2 * x })
	cached := Filter(doubled, "mod3", func(x int) bool { return x%3 == 0 }).Cache()
	if _, err := Count(cached); err != nil {
		t.Fatal(err)
	}
	pairs := Map(cached, "key", func(x int) KV[int, int] { return KV[int, int]{K: x % 7, V: x} })
	if _, err := Collect(ReduceByKey(pairs, func(a, b int) int { return a + b }, 4)); err != nil {
		t.Fatal(err)
	}
	record(c)

	// Chaos workload: task crashes and fetch failures exercise the recovery
	// counters (same shape as TestFusedChainChaosFingerprint).
	c2, err := New(Config{
		Cluster: cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		Seed:    11,
		Faults: FaultProfile{
			TaskCrashProb:    0.12,
			FetchFailureProb: 0.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cpairs := Map(fusedTestChain(c2, 10000), "key", func(x int) KV[int, int] {
		return KV[int, int]{K: x % 17, V: x}
	})
	if _, err := Collect(ReduceByKey(cpairs, func(a, b int) int { return a + b }, 6)); err != nil {
		t.Fatal(err)
	}
	record(c2)
	return fp
}

// TestMetricsListenerParity proves the refactor moved metrics accumulation
// to the bus without changing a single number: the listener-reconstructed
// JobMetrics equal the values the pre-refactor scheduler produced inline.
func TestMetricsListenerParity(t *testing.T) {
	if fp := parityFingerprint(t); fp != parityGolden {
		t.Errorf("bus-reconstructed JobMetrics diverge from pre-refactor goldens:\ngot:\n%swant:\n%s", fp, parityGolden)
	}
}

// tinyMemCluster is a one-executor cluster whose storage pool holds ~64 KB —
// two cached 4-partition RDDs of 1000 ints cannot coexist.
func tinyMemCluster() cluster.Config {
	return cluster.Config{
		Nodes:             1,
		Spec:              cluster.NodeSpec{Name: "tiny", VCPUs: 4, MemGiB: 1},
		ExecutorsPerNode:  1,
		CoresPerExecutor:  4,
		MemPerExecutorGiB: 0.0001,
	}
}

// TestEvictionsReportedPerJob is the regression test for the Evictions bug:
// the old scheduler assigned the context-lifetime eviction count to every
// job, so a job after one with evictions re-reported them all. Evictions
// must be the per-job delta.
func TestEvictionsReportedPerJob(t *testing.T) {
	c, err := New(Config{Cluster: tinyMemCluster(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := Map(Parallelize(c, seq(1000), 4), "a", func(x int) int { return x }).Cache()
	b := Map(Parallelize(c, seq(1000), 4), "b", func(x int) int { return x + 1 }).Cache()

	if _, err := Collect(a); err != nil { // job 1: fills the store, no evictions
		t.Fatal(err)
	}
	if _, err := Collect(b); err != nil { // job 2: caching b evicts a's blocks
		t.Fatal(err)
	}
	if _, err := Collect(b); err != nil { // job 3: pure cache hits, no evictions
		t.Fatal(err)
	}

	jobs := c.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("expected 3 jobs, got %d", len(jobs))
	}
	if jobs[0].Evictions != 0 {
		t.Errorf("job 1 reported %d evictions, want 0", jobs[0].Evictions)
	}
	if jobs[1].Evictions == 0 {
		t.Error("job 2 cached over a full store but reported 0 evictions")
	}
	if jobs[2].Evictions != 0 {
		t.Errorf("job 3 did no caching but reported %d evictions (lifetime count leaked into the job)", jobs[2].Evictions)
	}
	if total := c.blocks.evictionCount(); total != jobs[0].Evictions+jobs[1].Evictions+jobs[2].Evictions {
		t.Errorf("per-job evictions sum to %d, block manager counted %d",
			jobs[0].Evictions+jobs[1].Evictions+jobs[2].Evictions, total)
	}
}

// chaosEventLogRun executes a fixed caching + shuffle workload under a
// seeded chaos profile with an event-log writer attached, returning the raw
// log bytes.
func chaosEventLogRun(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	elw := NewEventLogWriter(&buf)
	c, err := New(Config{
		Cluster:   cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		Seed:      11,
		Faults:    FaultProfile{TaskCrashProb: 0.12, FetchFailureProb: 0.2},
		Listeners: []Listener{elw},
	})
	if err != nil {
		t.Fatal(err)
	}
	cached := Map(Parallelize(c, seq(3000), 6), "x3", func(x int) int { return 3 * x }).Cache()
	if _, err := Count(cached); err != nil {
		t.Fatal(err)
	}
	cpairs := Map(fusedTestChain(c, 10000), "key", func(x int) KV[int, int] {
		return KV[int, int]{K: x % 17, V: x}
	})
	if _, err := Collect(ReduceByKey(cpairs, func(a, b int) int { return a + b }, 6)); err != nil {
		t.Fatal(err)
	}
	if err := elw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// strippedLog re-renders an event log with every measured-time field zeroed;
// the result must be bit-identical across same-seed runs.
func strippedLog(t *testing.T, raw []byte) string {
	t.Helper()
	events, err := ReadEventLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, ev := range events {
		line, err := MarshalEvent(StripMeasuredTime(ev))
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestEventLogDeterminism replays the chaos workload in two fresh contexts:
// after stripping measured host times, the JSONL event logs must match bit
// for bit, and the log must actually contain the full event vocabulary of a
// chaos run — caching, fetch failures, retries, and stage resubmissions.
func TestEventLogDeterminism(t *testing.T) {
	log1 := strippedLog(t, chaosEventLogRun(t))
	log2 := strippedLog(t, chaosEventLogRun(t))
	if log1 != log2 {
		t.Fatalf("same seed produced different event logs:\n%s\nvs\n%s", log1, log2)
	}
	for _, want := range []string{
		`"type":"JobStart"`, `"type":"JobEnd"`,
		`"type":"StageSubmitted"`, `"type":"StageCompleted"`, `"type":"StageResubmitted"`,
		`"type":"TaskStart"`, `"type":"TaskEnd"`,
		`"type":"BlockCached"`, `"type":"FetchFailure"`,
		`injected task crash`, `"recovery":true`,
	} {
		if !strings.Contains(log1, want) {
			t.Errorf("chaos event log is missing %s", want)
		}
	}
}

// TestEventLogRoundTrip checks the log codec: parsing a log and re-writing
// the parsed events reproduces the original bytes exactly.
func TestEventLogRoundTrip(t *testing.T) {
	raw := chaosEventLogRun(t)
	events, err := ReadEventLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty event log")
	}
	var buf bytes.Buffer
	w := NewEventLogWriter(&buf)
	for _, ev := range events {
		w.OnEvent(ev)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Error("re-serialised event log differs from the original")
	}
}

// TestEventTimestampsMonotone checks virtual timestamps: events are stamped
// on the simulated clock, jobs advance it, and a task span lies inside its
// stage.
func TestEventTimestampsMonotone(t *testing.T) {
	var events []Event
	rec := ListenerFunc(func(ev Event) { events = append(events, ev) })
	c, err := New(Config{Cluster: cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge}, Seed: 3, Listeners: []Listener{rec}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := Count(Map(Parallelize(c, seq(500), 4), "id", func(x int) int { return x })); err != nil {
			t.Fatal(err)
		}
	}
	var lastJobEnd float64
	var stageStart float64
	for _, ev := range events {
		switch e := ev.(type) {
		case *JobStart:
			if e.Time < lastJobEnd {
				t.Errorf("job %d starts at %.6f, before the previous job ended at %.6f", e.Job, e.Time, lastJobEnd)
			}
		case *JobEnd:
			lastJobEnd = e.Time
		case *StageSubmitted:
			stageStart = e.Time
		case *TaskEnd:
			// Task starts and stage submits accumulate measured host time
			// along different summation orders, so a task launched exactly at
			// stage submit can land one ULP below it; tolerate that rounding,
			// not a real ordering violation.
			if e.StartSec < stageStart && stageStart-e.StartSec > 1e-12*stageStart {
				t.Errorf("task span starts at %.6f, before its stage at %.6f", e.StartSec, stageStart)
			}
			if e.Time != e.StartSec+e.DurationSec {
				t.Errorf("TaskEnd time %.6f != start %.6f + duration %.6f", e.Time, e.StartSec, e.DurationSec)
			}
		}
	}
	if c.VirtualTime() != lastJobEnd {
		t.Errorf("context clock %.6f != last JobEnd timestamp %.6f", c.VirtualTime(), lastJobEnd)
	}
}

// TestChromeTrace renders a timeline of a run with retries into Chrome-trace
// JSON and validates its shape.
func TestChromeTrace(t *testing.T) {
	tl := NewTimelineListener()
	c, err := New(Config{
		Cluster:   cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		Seed:      11,
		Faults:    FaultProfile{TaskCrashProb: 0.12},
		Listeners: []Listener{tl},
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := Map(fusedTestChain(c, 5000), "key", func(x int) KV[int, int] { return KV[int, int]{K: x % 5, V: x} })
	if _, err := Collect(ReduceByKey(pairs, func(a, b int) int { return a + b }, 4)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var tasks, stages, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur < 0 || e.Ts < 0 {
				t.Errorf("span %q has negative ts/dur (%f, %f)", e.Name, e.Ts, e.Dur)
			}
			if e.Pid == 0 {
				stages++
			} else {
				tasks++
			}
		case "M":
			meta++
		}
	}
	if tasks == 0 || stages == 0 || meta == 0 {
		t.Errorf("trace missing spans: %d task, %d stage, %d metadata", tasks, stages, meta)
	}
}

// TestConsoleProgressListener checks both modes: full progress narrates jobs
// and stages; RecoveryOnly stays silent on a clean run.
func TestConsoleProgressListener(t *testing.T) {
	var full, quiet bytes.Buffer
	c, err := New(Config{
		Cluster: cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge},
		Seed:    9,
		Listeners: []Listener{
			&ConsoleProgressListener{W: &full},
			&ConsoleProgressListener{W: &quiet, RecoveryOnly: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := Map(Parallelize(c, seq(400), 4), "kv", func(x int) KV[int, int] { return KV[int, int]{K: x % 3, V: x} })
	if _, err := Collect(ReduceByKey(pairs, func(a, b int) int { return a + b }, 2)); err != nil {
		t.Fatal(err)
	}
	out := full.String()
	for _, want := range []string{"[job 1] collect", "stage map(shuffle 1)", "stage result", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	if quiet.Len() != 0 {
		t.Errorf("RecoveryOnly listener printed on a clean run:\n%s", quiet.String())
	}
}
