package rdd

import (
	"testing"

	"sparkscore/internal/cluster"
)

func newTestBM(t *testing.T, memGiB float64) *blockManager {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:            1,
		Spec:             cluster.NodeSpec{Name: "t", VCPUs: 4, MemGiB: memGiB * 2},
		ExecutorsPerNode: 2, CoresPerExecutor: 2, MemPerExecutorGiB: memGiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	return newBlockManager(cl, 0.5) // capacity = memGiB/2 per executor
}

func TestBlockManagerPutGet(t *testing.T) {
	bm := newTestBM(t, 1)
	key := blockKey{rdd: 1, part: 0}
	bm.put(0, key, "hello", 100, false)
	v, holder, _, ok := bm.get(key)
	if !ok || v != "hello" || holder != 0 {
		t.Fatalf("get = (%v,%d,%v)", v, holder, ok)
	}
	if _, _, _, ok := bm.get(blockKey{rdd: 1, part: 9}); ok {
		t.Fatal("missing block found")
	}
	if bm.totalBytes() != 100 {
		t.Fatalf("totalBytes = %d", bm.totalBytes())
	}
}

func TestBlockManagerDuplicatePutIgnored(t *testing.T) {
	bm := newTestBM(t, 1)
	key := blockKey{rdd: 1, part: 0}
	bm.put(0, key, "first", 100, false)
	bm.put(1, key, "second", 100, false)
	v, holder, _, _ := bm.get(key)
	if v != "first" || holder != 0 {
		t.Fatalf("duplicate put replaced block: (%v,%d)", v, holder)
	}
	if bm.totalBytes() != 100 {
		t.Fatalf("totalBytes = %d after duplicate put", bm.totalBytes())
	}
}

func TestBlockManagerLRUEviction(t *testing.T) {
	bm := newTestBM(t, 1) // 512 MiB capacity per executor
	cap := int64(512 << 20)
	a := blockKey{rdd: 1, part: 0}
	b := blockKey{rdd: 2, part: 0}
	c := blockKey{rdd: 3, part: 0}
	bm.put(0, a, "a", cap/2, false)
	bm.put(0, b, "b", cap/2, false)
	// Touch a so b becomes least-recently-used.
	bm.get(a)
	bm.put(0, c, "c", cap/2, false)
	if _, _, _, ok := bm.get(b); ok {
		t.Fatal("LRU block b survived eviction")
	}
	if _, _, _, ok := bm.get(a); !ok {
		t.Fatal("recently-used block a evicted")
	}
	if _, _, _, ok := bm.get(c); !ok {
		t.Fatal("new block c not stored")
	}
	if bm.evictionCount() != 1 {
		t.Fatalf("evictions = %d, want 1", bm.evictionCount())
	}
}

func TestBlockManagerSameRDDNeverEvictsItself(t *testing.T) {
	// Spark's MemoryStore rule: caching a partition of RDD r never evicts
	// other partitions of r — the incoming block is dropped instead.
	bm := newTestBM(t, 1)
	cap := int64(512 << 20)
	a := blockKey{rdd: 1, part: 0}
	b := blockKey{rdd: 1, part: 1}
	c := blockKey{rdd: 1, part: 2}
	bm.put(0, a, "a", cap/2, false)
	bm.put(0, b, "b", cap/2, false)
	bm.put(0, c, "c", cap/2, false)
	if _, _, _, ok := bm.get(a); !ok {
		t.Fatal("same-RDD block a evicted")
	}
	if _, _, _, ok := bm.get(b); !ok {
		t.Fatal("same-RDD block b evicted")
	}
	if _, _, _, ok := bm.get(c); ok {
		t.Fatal("overflow block c stored despite same-RDD protection")
	}
	if bm.evictionCount() != 0 {
		t.Fatalf("evictions = %d, want 0", bm.evictionCount())
	}
	// A different RDD's block may still evict them.
	d := blockKey{rdd: 2, part: 0}
	bm.put(0, d, "d", cap/2, false)
	if _, _, _, ok := bm.get(d); !ok {
		t.Fatal("different-RDD block not stored")
	}
	if bm.evictionCount() != 1 {
		t.Fatalf("evictions = %d, want 1 after cross-RDD put", bm.evictionCount())
	}
}

func TestBlockManagerOversizedBlockNotStored(t *testing.T) {
	bm := newTestBM(t, 1)
	key := blockKey{rdd: 1, part: 0}
	bm.put(0, key, "big", 1<<40, false)
	if _, _, _, ok := bm.get(key); ok {
		t.Fatal("oversized block stored")
	}
}

func TestBlockManagerDropExecutor(t *testing.T) {
	bm := newTestBM(t, 1)
	bm.put(0, blockKey{rdd: 1, part: 0}, "x", 10, false)
	bm.put(1, blockKey{rdd: 1, part: 1}, "y", 10, false)
	bm.dropExecutor(0)
	if _, _, _, ok := bm.get(blockKey{rdd: 1, part: 0}); ok {
		t.Fatal("block on failed executor survived")
	}
	if _, _, _, ok := bm.get(blockKey{rdd: 1, part: 1}); !ok {
		t.Fatal("block on live executor dropped")
	}
	if bm.totalBytes() != 10 {
		t.Fatalf("totalBytes = %d", bm.totalBytes())
	}
}

func TestBlockManagerDropRDD(t *testing.T) {
	bm := newTestBM(t, 1)
	bm.put(0, blockKey{rdd: 1, part: 0}, "x", 10, false)
	bm.put(0, blockKey{rdd: 2, part: 0}, "y", 10, false)
	bm.dropRDD(1)
	if _, _, _, ok := bm.get(blockKey{rdd: 1, part: 0}); ok {
		t.Fatal("dropped RDD block survived")
	}
	if _, _, _, ok := bm.get(blockKey{rdd: 2, part: 0}); !ok {
		t.Fatal("other RDD's block dropped")
	}
}
