// Speculative execution: the engine's counterpart of spark.speculation.
//
// Spark's TaskSetManager watches running tasks once spark.speculation.quantile
// of a stage has finished, and re-launches any task running slower than
// spark.speculation.multiplier × the stage's median on another executor; the
// first attempt to finish wins and the loser is killed. The simulator plays
// the same policy on the virtual clock, with one twist required by the
// determinism contract: "running slower than multiplier × the median" is
// decided from the task's *injected slowdown factor* (a pure function of the
// fault draws) rather than from noisy measured durations — the simulator's
// analogue of the rate-based (efficiency) speculation heuristic Spark 3.x
// added, which compares process rates instead of raw runtimes. Structural
// decisions — which tasks are speculated, where copies land, which attempt
// wins — therefore replay bit-for-bit for a fixed Config, while timestamps
// remain measured-derived and are stripped by StripMeasuredTime.
//
// The copy runs at the task's un-slowed base duration: it lands on a
// different executor, escaping whatever host-local pathology made the
// original drag — the premise of speculation. It therefore wins whenever it
// does not crash (the race is resolved structurally, not by comparing float
// timestamps, so a measurement jitter can never flip a kill into a win); the
// original is killed at the copy's completion time, truncating its span.
// Copies occupy their executor's arbitrated slot share for the stage like any
// other attempt, so under FAIR scheduling speculation spends the job's own
// slots, not the cluster's.

package rdd

import (
	"math"
	"sort"

	"sparkscore/internal/simtime"
)

// attemptSched is one attempt's position in the stage's virtual schedule,
// built in phase one of the accounting pass and emitted in phase three.
type attemptSched struct {
	t        *task
	recovery bool
	base     float64 // duration before the straggler slowdown
	slow     float64 // straggler slowdown factor (1 when healthy)
	dur      float64 // full duration = base × slow
	done     float64 // stage-relative completion if the attempt runs to the end
	effDone  float64 // actual completion: done, or the copy's end when killed
	copy     *specCopy
}

// specCopy is the speculative copy racing an original attempt.
type specCopy struct {
	executor int
	crashed  bool // the copy hit its own injected-crash draw
	dur      float64
	done     float64 // stage-relative completion
}

// planSpeculation runs the speculation policy over a stage's scheduled
// attempts, reserving slots for copies via poolFor and truncating killed
// originals. Everything it decides is a pure function of the Config and the
// stage's deterministic attempt list.
func (c *Context) planSpeculation(job, stage uint64, round int, scheds []*attemptSched, poolFor func(int) *simtime.SlotPool) {
	spec := c.cfg.Speculation
	if !spec.Enabled {
		return
	}
	// Only successful original attempts are raced; failed attempts are the
	// retry mechanism's problem, and racing them would double-charge.
	var oks []*attemptSched
	for _, s := range scheds {
		if s.t.ok {
			oks = append(oks, s)
		}
	}
	if len(oks) < 2 {
		return // a one-task stage has no meaningful median
	}

	bases := make([]float64, len(oks))
	for i, s := range oks {
		bases[i] = s.base
	}
	sort.Float64s(bases)
	median := bases[len(bases)/2]

	// The quantile gate: copies may not start before the time the
	// quantile-th task is projected to finish at the stage's normal rate
	// (spark.speculation.quantile delays checks until that share finished).
	ends := make([]float64, len(oks))
	for i, s := range oks {
		ends[i] = s.done - s.dur + s.base
	}
	sort.Float64s(ends)
	qi := int(math.Ceil(spec.quantile()*float64(len(ends)))) - 1
	if qi < 0 {
		qi = 0
	}
	tq := ends[qi]

	// Copies land on the least-loaded live, non-excluded executor other than
	// the original's. Loads count the attempts scheduled this stage plus
	// copies placed so far — a deterministic tally (the stage's own schedule),
	// with ties broken by lowest id.
	c.mu.Lock()
	var cands []int
	for _, id := range c.cluster.LiveExecutors() {
		if !c.excluded[id] {
			cands = append(cands, id)
		}
	}
	c.mu.Unlock()
	sort.Ints(cands)
	specLoads := map[int]int{}
	for _, s := range scheds {
		specLoads[s.t.executor]++
	}

	mult := spec.multiplier()
	for _, s := range oks {
		if s.slow <= mult {
			continue // running within multiplier× the stage norm
		}
		target, found := -1, false
		for _, id := range cands {
			if id == s.t.executor {
				continue
			}
			if !found || specLoads[id] < specLoads[target] {
				target, found = id, true
			}
		}
		if !found {
			continue // nowhere else to run a copy
		}
		// Detection time: the straggler has run multiplier× the median —
		// the earliest moment the policy can tell it is slow — further gated
		// by the stage quantile.
		start := s.done - s.dur
		ready := math.Max(tq, start+mult*median)
		crashed := c.specCrashes(job, stage, round, s.t.part, s.t.attempt)
		dur := s.base
		if crashed {
			// An injected crash kills the copy at launch; it occupies its
			// slot only for the scheduling overhead.
			dur = c.cfg.SchedOverheadSec
		}
		done := poolFor(target).Run(ready, dur)
		s.copy = &specCopy{executor: target, crashed: crashed, dur: dur, done: done}
		specLoads[target]++
		if !crashed {
			// First result wins: the surviving copy finishes first (it runs
			// un-slowed while the original drags), so the original is killed
			// at the copy's completion.
			s.effDone = done
		}
	}
}

// specCrashes draws the injected-crash decision for a speculative copy. The
// draw uses its own fault kind, so a copy crashing is independent of — and
// never double-counts against — the original attempt sequence bounded by
// Config.TaskMaxFailures.
func (c *Context) specCrashes(job, stage uint64, round, part, attempt int) bool {
	p := c.cfg.Faults.TaskCrashProb
	if p <= 0 {
		return false
	}
	return c.faultDraw(faultSpecCrash, job, stage, uint64(round), uint64(part), uint64(attempt)) < p
}
