package rdd

import (
	"sort"
	"testing"

	"sparkscore/internal/rng"
)

func TestDistinct(t *testing.T) {
	c := newTestContext(t, 2)
	in := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	got, err := Collect(Distinct(Parallelize(c, in, 4), 3))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	want := []int{1, 2, 3, 4, 5, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("Distinct = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Distinct = %v, want %v", got, want)
		}
	}
}

func TestDistinctStrings(t *testing.T) {
	c := newTestContext(t, 2)
	in := []string{"a", "b", "a", "c", "b"}
	n, err := Count(Distinct(Parallelize(c, in, 2), 0))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("distinct count %d", n)
	}
}

func TestKeysValuesMapValues(t *testing.T) {
	c := newTestContext(t, 2)
	in := []KV[int, string]{{1, "a"}, {2, "b"}, {3, "c"}}
	r := Parallelize(c, in, 2)
	keys, err := Collect(Keys(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("Keys = %v", keys)
	}
	vals, err := Collect(Values(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[1] != "b" {
		t.Fatalf("Values = %v", vals)
	}
	up, err := Collect(MapValues(r, "upper", func(s string) string { return s + s }))
	if err != nil {
		t.Fatal(err)
	}
	if up[0].K != 1 || up[0].V != "aa" {
		t.Fatalf("MapValues = %v", up)
	}
}

func TestSampleFractionAndDeterminism(t *testing.T) {
	c := newTestContext(t, 2)
	base := Parallelize(c, seq(10000), 8)
	s1, err := Collect(Sample(base, 0.3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) < 2500 || len(s1) > 3500 {
		t.Fatalf("sample kept %d of 10000 at fraction 0.3", len(s1))
	}
	s2, err := Collect(Sample(base, 0.3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("same seed sampled %d then %d elements", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same-seed samples differ")
		}
	}
	s3, err := Collect(Sample(base, 0.3, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(s3) == len(s1) {
		same := true
		for i := range s1 {
			if s1[i] != s3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical samples")
		}
	}
}

func TestSampleEdges(t *testing.T) {
	c := newTestContext(t, 1)
	base := Parallelize(c, seq(100), 4)
	if n, _ := Count(Sample(base, 0, 1)); n != 0 {
		t.Fatalf("fraction 0 kept %d", n)
	}
	if n, _ := Count(Sample(base, 1, 1)); n != 100 {
		t.Fatalf("fraction 1 kept %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("fraction 2 accepted")
		}
	}()
	Sample(base, 2, 1)
}

func TestCoalesce(t *testing.T) {
	c := newTestContext(t, 2)
	r := Coalesce(Parallelize(c, seq(100), 10), 3)
	if r.Partitions() != 3 {
		t.Fatalf("coalesced to %d partitions", r.Partitions())
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("coalesce lost elements: %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("coalesce reordered: got[%d] = %d", i, v)
		}
	}
}

func TestCoalesceClampsUp(t *testing.T) {
	c := newTestContext(t, 1)
	base := Parallelize(c, seq(10), 2)
	if r := Coalesce(base, 5); r.Partitions() != 2 {
		t.Fatalf("coalesce increased partitions to %d", r.Partitions())
	}
}

func TestCountByKey(t *testing.T) {
	c := newTestContext(t, 2)
	in := []KV[string, float64]{{"a", 1}, {"b", 2}, {"a", 3}, {"a", 4}}
	counts, err := CountByKey(Parallelize(c, in, 2))
	if err != nil {
		t.Fatal(err)
	}
	if counts["a"] != 3 || counts["b"] != 1 {
		t.Fatalf("CountByKey = %v", counts)
	}
}

func TestLookup(t *testing.T) {
	c := newTestContext(t, 2)
	in := []KV[int, string]{{1, "x"}, {2, "y"}, {1, "z"}}
	vals, err := Lookup(Parallelize(c, in, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "x" || vals[1] != "z" {
		t.Fatalf("Lookup = %v", vals)
	}
	empty, err := Lookup(Parallelize(c, in, 3), 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("Lookup(missing) = %v", empty)
	}
}

func TestDistinctLargeRandom(t *testing.T) {
	c := newTestContext(t, 3)
	r := rng.New(5)
	in := make([]int, 5000)
	want := map[int]bool{}
	for i := range in {
		in[i] = r.Intn(500)
		want[in[i]] = true
	}
	n, err := Count(Distinct(Parallelize(c, in, 16), 8))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("distinct count %d, want %d", n, len(want))
	}
}

// TestRandomPipelineSemantics drives randomly composed transformation chains
// through the engine and checks them against direct slice evaluation.
func TestRandomPipelineSemantics(t *testing.T) {
	c := newTestContext(t, 3)
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		rr := r.Split(uint64(trial))
		n := rr.Intn(200) + 1
		in := make([]int, n)
		for i := range in {
			in[i] = rr.Intn(1000) - 500
		}
		want := append([]int(nil), in...)
		rddV := Parallelize(c, in, rr.Intn(6)+1)
		steps := rr.Intn(5) + 1
		for s := 0; s < steps; s++ {
			switch rr.Intn(4) {
			case 0:
				k := rr.Intn(7) + 1
				rddV = Map(rddV, "mul", func(x int) int { return x * k })
				for i := range want {
					want[i] *= k
				}
			case 1:
				m := rr.Intn(5) + 2
				rddV = Filter(rddV, "mod", func(x int) bool { return x%m != 0 })
				var kept []int
				for _, x := range want {
					if x%m != 0 {
						kept = append(kept, x)
					}
				}
				want = kept
			case 2:
				rddV = FlatMap(rddV, "pair", func(x int) []int { return []int{x, -x} })
				var doubled []int
				for _, x := range want {
					doubled = append(doubled, x, -x)
				}
				want = doubled
			case 3:
				rddV = Coalesce(rddV, rr.Intn(3)+1)
			}
		}
		got, err := Collect(rddV)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d elements, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}
