// Concurrent multi-job execution: the race-detector stress test (N jobs from
// N goroutines against one Context), the FAIR-versus-FIFO acceptance checks
// (equal-weight pools split the cluster ~in half in virtual time; FIFO runs
// back-to-back), per-job byte-stability of stripped event logs across seeded
// runs, and the Jobs()-snapshot guarantee that in-flight jobs stay invisible.

package rdd

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"sparkscore/internal/cluster"
)

// concTestCluster is 2 nodes x 2 executors x 4 cores = 16 slots.
func concTestCluster() cluster.Config {
	return cluster.Config{
		Nodes:             2,
		Spec:              cluster.NodeSpec{Name: "conc", VCPUs: 8, MemGiB: 8},
		ExecutorsPerNode:  2,
		CoresPerExecutor:  4,
		MemPerExecutorGiB: 2,
	}
}

// heavyPipeline builds a 4-stage pipeline (three chained shuffles plus the
// result stage) with `parts` tasks per stage, labelled uniquely so jobs are
// identifiable in logs and metrics regardless of job-id assignment order.
// Each stage-1 element sleeps for pause: parked tasks release the host
// processor, so concurrently submitted jobs genuinely interleave even on a
// single-CPU host (CPU-spinning tasks would serialise there). If gate is
// non-nil, stage-1 tasks wait on it before doing anything — the tests open it
// once every job under test has emitted JobStart, pinning "all jobs admitted"
// before any stage completes.
func heavyPipeline(c *Context, label string, parts int, pause time.Duration, gate *sync.WaitGroup) *RDD[KV[int, int]] {
	base := Parallelize(c, seq(4*parts), parts)
	m := Map(base, "w:"+label, func(x int) KV[int, int] {
		if gate != nil {
			gate.Wait()
		}
		time.Sleep(pause)
		return KV[int, int]{K: x % 64, V: 1}
	})
	r1 := ReduceByKey(m, func(a, b int) int { return a + b }, parts)
	m2 := Map(r1, "x:"+label, func(kv KV[int, int]) KV[int, int] {
		time.Sleep(pause)
		return KV[int, int]{K: kv.K % 32, V: kv.V}
	})
	r2 := ReduceByKey(m2, func(a, b int) int { return a + b }, parts)
	m3 := Map(r2, "y:"+label, func(kv KV[int, int]) KV[int, int] { return KV[int, int]{K: kv.K % 8, V: kv.V} })
	return ReduceByKey(m3, func(a, b int) int { return a + b }, parts)
}

// taskSecondsListener sums successful task-attempt virtual durations per job.
type taskSecondsListener struct {
	mu  sync.Mutex
	sum map[uint64]float64
}

func (l *taskSecondsListener) OnEvent(ev Event) {
	if e, ok := ev.(*TaskEnd); ok && e.OK {
		l.mu.Lock()
		if l.sum == nil {
			l.sum = map[uint64]float64{}
		}
		l.sum[e.Job] += e.DurationSec
		l.mu.Unlock()
	}
}

// runTwoPoolJobs submits the same two heavy pipelines from two goroutines
// into pools "a" and "b" and returns each job's virtual span plus its mean
// slot occupancy as a fraction of the cluster (task-seconds / span / slots).
func runTwoPoolJobs(t *testing.T, mode SchedulerMode) (spans []JobSpan, shares []float64) {
	t.Helper()
	tl := &taskSecondsListener{}
	// Under FAIR, stage-1 tasks wait until both jobs have emitted JobStart, so
	// every stage of both jobs is accounted with two active jobs (the
	// half-share steady state). Under FIFO the gate would deadlock — job 2
	// cannot start until job 1 ends — so it is disabled; serialisation is the
	// property under test there.
	var gate *sync.WaitGroup
	listeners := []Listener{tl}
	if mode == SchedFAIR {
		gate = &sync.WaitGroup{}
		gate.Add(2)
		listeners = append(listeners, ListenerFunc(func(ev Event) {
			if _, ok := ev.(*JobStart); ok {
				gate.Done()
			}
		}))
	}
	c, err := New(Config{
		Cluster: concTestCluster(),
		Seed:    7,
		Workers: 16, // parked sleepers must not exhaust host-side slots
		Scheduler: SchedulerConfig{
			Mode:  mode,
			Pools: []PoolSpec{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}},
		},
		StageOverheadSec: 1e-9, // so occupancy reflects task slots, not DAG overhead
		Listeners:        listeners,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lineages are built sequentially (deterministic node and shuffle ids);
	// only submission is concurrent.
	pipes := []*RDD[KV[int, int]]{
		heavyPipeline(c, "p0", 32, 200*time.Microsecond, gate),
		heavyPipeline(c, "p1", 32, 200*time.Microsecond, gate),
	}

	spanCh := make(chan JobSpan, 2)
	var wg, ready sync.WaitGroup
	ready.Add(2) // rendezvous: both submitters live before either submits
	for i, pool := range []string{"a", "b"} {
		wg.Add(1)
		go func(i int, pool string) {
			defer wg.Done()
			ready.Done()
			ready.Wait()
			ss, err := c.ObserveJobs(func() error {
				return c.RunInPool(pool, func() error {
					out, err := Collect(pipes[i])
					if err == nil && len(out) == 0 {
						err = fmt.Errorf("pipeline %d returned no output", i)
					}
					return err
				})
			})
			if err != nil {
				t.Errorf("job in pool %s: %v", pool, err)
				return
			}
			if len(ss) != 1 {
				t.Errorf("pool %s: want 1 observed job, got %d", pool, len(ss))
				return
			}
			spanCh <- ss[0]
		}(i, pool)
	}
	wg.Wait()
	close(spanCh)

	slots := float64(16)
	for s := range spanCh {
		spans = append(spans, s)
		tl.mu.Lock()
		sum := tl.sum[s.Job]
		tl.mu.Unlock()
		width := s.EndVirtual - s.StartVirtual
		if width <= 0 {
			t.Fatalf("job %d has non-positive virtual span %v", s.Job, width)
		}
		shares = append(shares, sum/width/slots)
	}
	if len(spans) != 2 {
		t.Fatalf("want 2 job spans, got %d", len(spans))
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartVirtual < spans[j].StartVirtual })
	return spans, shares
}

// TestFairSchedulerSplitsSlots is the FAIR half of the acceptance criterion:
// two jobs in equal-weight pools overlap on the virtual clock and each
// occupies ~half the cluster's slots over its span.
func TestFairSchedulerSplitsSlots(t *testing.T) {
	spans, shares := runTwoPoolJobs(t, SchedFAIR)

	overlap := min(spans[0].EndVirtual, spans[1].EndVirtual) - spans[1].StartVirtual
	width := spans[0].EndVirtual - spans[0].StartVirtual
	if overlap < width/2 {
		t.Errorf("FAIR jobs barely overlap: overlap=%.4f of span %.4f (spans %+v)", overlap, width, spans)
	}
	for i, sh := range shares {
		if sh < 0.3 || sh > 0.7 {
			t.Errorf("FAIR job %d slot share = %.3f, want ~0.5 (equal-weight pools)", i, sh)
		}
	}
}

// TestFIFOSchedulerRunsBackToBack is the FIFO half: the same two submissions
// serialise — disjoint virtual spans, each at (near) full cluster occupancy.
func TestFIFOSchedulerRunsBackToBack(t *testing.T) {
	spans, shares := runTwoPoolJobs(t, SchedFIFO)

	if spans[0].EndVirtual > spans[1].StartVirtual+1e-9 {
		t.Errorf("FIFO jobs overlap in virtual time: first ends %.6f, second starts %.6f",
			spans[0].EndVirtual, spans[1].StartVirtual)
	}
	for i, sh := range shares {
		if sh < 0.8 {
			t.Errorf("FIFO job %d slot share = %.3f, want ~1.0 (whole cluster)", i, sh)
		}
	}
}

// setEventJob rewrites the event's job id (on a copy the caller owns): job ids
// are assigned in admission order, which is host-timing dependent across
// concurrent submitters, so per-job log comparison normalises them away.
func setEventJob(ev Event, job uint64) {
	switch e := ev.(type) {
	case *JobStart:
		e.Job = job
	case *JobEnd:
		e.Job = job
	case *StageSubmitted:
		e.Job = job
	case *StageCompleted:
		e.Job = job
	case *StageResubmitted:
		e.Job = job
	case *TaskStart:
		e.Job = job
	case *TaskEnd:
		e.Job = job
	case *BlockCached:
		e.Job = job
	case *BlockEvicted:
		e.Job = job
	case *ShuffleSpill:
		e.Job = job
	case *FetchFailure:
		e.Job = job
	}
}

// perJobStrippedLogs groups a (possibly interleaved) event log by job,
// strips measured time, normalises job ids, and renders each job's event
// subsequence as one string keyed by the job's identity (action + lineage
// label), which is stable across runs even when job ids are not.
func perJobStrippedLogs(t *testing.T, raw []byte) map[string]string {
	t.Helper()
	events, err := ReadEventLog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	keyByJob := map[uint64]string{}
	for _, ev := range events {
		if js, ok := ev.(*JobStart); ok {
			keyByJob[js.Job] = js.Action + " " + js.RDD
		}
	}
	logs := map[string]string{}
	for _, ev := range events {
		job := eventJob(ev)
		if js, ok := ev.(*JobStart); ok {
			job = js.Job
		} else if je, ok := ev.(*JobEnd); ok {
			job = je.Job
		}
		key, ok := keyByJob[job]
		if !ok {
			continue // context events (NodeLost etc.) belong to no job
		}
		stripped := StripMeasuredTime(ev)
		setEventJob(stripped, 0)
		line, err := MarshalEvent(stripped)
		if err != nil {
			t.Fatal(err)
		}
		logs[key] += string(line) + "\n"
	}
	return logs
}

// TestConcurrentJobsStress submits 8 jobs from 8 goroutines against one FAIR
// context (race detector on: `go test -race` runs this), asserts every job
// completes with correct results and a full metrics snapshot, that Jobs()
// polled mid-flight never exposes more jobs than have ended, and that each
// job's stripped event log is byte-identical across two seeded runs.
func TestConcurrentJobsStress(t *testing.T) {
	const n = 8
	run := func() (map[string]string, []JobMetrics) {
		var buf bytes.Buffer
		elw := NewEventLogWriter(&buf)
		c, err := New(Config{
			Cluster: concTestCluster(),
			Seed:    21,
			Workers: 16,
			Scheduler: SchedulerConfig{
				Mode:  SchedFAIR,
				Pools: []PoolSpec{{Name: "a", Weight: 2, MinShare: 4}, {Name: "b", Weight: 1}},
			},
			Listeners: []Listener{elw},
		})
		if err != nil {
			t.Fatal(err)
		}
		pipes := make([]*RDD[KV[int, int]], n)
		for i := range pipes {
			pipes[i] = heavyPipeline(c, fmt.Sprintf("s%d", i), 16, 50*time.Microsecond, nil)
		}

		// Poll the snapshot while jobs are in flight: it must only ever hold
		// completed jobs (never more than have finished, each fully formed).
		stop := make(chan struct{})
		var pollWG sync.WaitGroup
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, jm := range c.Jobs() {
					if jm.Action == "" || jm.Stages == 0 || jm.Tasks == 0 {
						t.Errorf("mid-flight snapshot exposed partial JobMetrics: %+v", jm)
						return
					}
				}
			}
		}()

		var wg sync.WaitGroup
		for i := range pipes {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				pool := "a"
				if i%2 == 1 {
					pool = "b"
				}
				err := c.RunInPool(pool, func() error {
					out, err := Collect(pipes[i])
					if err != nil {
						return err
					}
					total := 0
					for _, kv := range out {
						total += kv.V
					}
					if total != 64 { // 64 input elements survive the count-sum chain
						return fmt.Errorf("job %d: value sum = %d, want 64", i, total)
					}
					return nil
				})
				if err != nil {
					t.Errorf("concurrent job %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		close(stop)
		pollWG.Wait()

		if err := elw.Close(); err != nil {
			t.Fatal(err)
		}
		jobs := c.Jobs()
		if len(jobs) != n {
			t.Fatalf("want %d completed jobs in snapshot, got %d", n, len(jobs))
		}
		return perJobStrippedLogs(t, buf.Bytes()), jobs
	}

	logs1, _ := run()
	logs2, _ := run()
	if len(logs1) != n {
		t.Fatalf("want %d per-job logs, got %d", n, len(logs1))
	}
	for key, l1 := range logs1 {
		l2, ok := logs2[key]
		if !ok {
			t.Errorf("job %q missing from second run", key)
			continue
		}
		if l1 != l2 {
			t.Errorf("stripped event log for job %q differs between seeded runs:\nrun1:\n%s\nrun2:\n%s",
				key, firstDiffLines(l1, l2), firstDiffLines(l2, l1))
		}
	}
}

// firstDiffLines returns the first few lines where a differs from b, for
// readable failure output.
func firstDiffLines(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			end := i + 3
			if end > len(al) {
				end = len(al)
			}
			return strings.Join(al[i:end], "\n")
		}
	}
	return "(prefix equal; lengths differ)"
}

// TestJobsSnapshotExcludesInFlight pins the snapshot guarantee with one
// deterministic job: while the job's stages complete, Jobs() must not contain
// it; after its JobEnd it must.
func TestJobsSnapshotExcludesInFlight(t *testing.T) {
	var c *Context
	label := "snapshot-probe"
	sawMidFlight := false
	probe := ListenerFunc(func(ev Event) {
		if e, ok := ev.(*StageCompleted); ok && strings.Contains(e.RDD, label) {
			sawMidFlight = true
			for _, jm := range c.Jobs() {
				if strings.Contains(jm.RDD, label) {
					t.Errorf("in-flight job leaked into Jobs() at stage %d: %+v", e.Stage, jm)
				}
			}
		}
	})
	c, err := New(Config{Cluster: concTestCluster(), Seed: 3, Listeners: []Listener{probe}})
	if err != nil {
		t.Fatal(err)
	}
	r := Map(Parallelize(c, seq(100), 4), label, func(x int) int { return x })
	if _, err := Count(r); err != nil {
		t.Fatal(err)
	}
	if !sawMidFlight {
		t.Fatal("probe listener never fired")
	}
	found := false
	for _, jm := range c.Jobs() {
		found = found || strings.Contains(jm.RDD, label)
	}
	if !found {
		t.Error("completed job missing from Jobs() snapshot")
	}
}

// TestRunInPoolAttribution checks pool stamping end to end: JobStart events
// carry the submitting goroutine's pool, nesting restores the outer pool, and
// unnamed submissions land in the default pool.
func TestRunInPoolAttribution(t *testing.T) {
	var pools []string
	rec := ListenerFunc(func(ev Event) {
		if e, ok := ev.(*JobStart); ok {
			pools = append(pools, e.Pool)
		}
	})
	c, err := New(Config{Cluster: concTestCluster(), Seed: 5, Listeners: []Listener{rec}})
	if err != nil {
		t.Fatal(err)
	}
	count := func() error {
		_, err := Count(Parallelize(c, seq(10), 2))
		return err
	}
	if err := count(); err != nil { // no pool → default
		t.Fatal(err)
	}
	err = c.RunInPool("outer", func() error {
		if err := count(); err != nil { // outer
			return err
		}
		if err := c.RunInPool("inner", count); err != nil { // inner
			return err
		}
		return count() // back to outer
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{DefaultPool, "outer", "inner", "outer"}
	if fmt.Sprint(pools) != fmt.Sprint(want) {
		t.Errorf("JobStart pools = %v, want %v", pools, want)
	}
}

// TestRetuneRacesConcurrentJobs stress-tests online retuning against live
// FAIR-pool jobs (race detector on: `go test -race` runs this): while worker
// goroutines build pipelines off DefaultParallelism and run them — with the
// adaptive planner enabled, so retuning races the map-output statistics
// listener too — a tuner goroutine hammers SetDefaultParallelism and
// DefaultParallelism the way tuner.Online.Retune does between jobs. Every job
// must still produce correct sums, and the override must land exactly where
// the last SetDefaultParallelism put it.
func TestRetuneRacesConcurrentJobs(t *testing.T) {
	c, err := New(Config{
		Cluster:  concTestCluster(),
		Seed:     13,
		Workers:  16,
		Adaptive: AdaptiveConfig{Enabled: true, TargetPartitionBytes: 1 << 10},
		Scheduler: SchedulerConfig{
			Mode:  SchedFAIR,
			Pools: []PoolSpec{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, iters = 4, 6
	stop := make(chan struct{})
	var tunerWG sync.WaitGroup
	tunerWG.Add(1)
	go func() {
		defer tunerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.SetDefaultParallelism([]int{0, 4, 8, 16, 32}[i%5])
			if p := c.DefaultParallelism(); p < 1 {
				t.Errorf("DefaultParallelism() = %d mid-retune", p)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := "a"
			if w%2 == 1 {
				pool = "b"
			}
			for i := 0; i < iters; i++ {
				// Partition counts snapshot whatever override is live at
				// lineage-construction time; the job must be correct under
				// any of them.
				parts := c.DefaultParallelism()
				pairs := Map(Parallelize(c, seq(600), parts), fmt.Sprintf("rt%d-%d", w, i),
					func(x int) KV[int, int] { return KV[int, int]{K: x % 16, V: x} })
				errs <- c.RunInPool(pool, func() error {
					out, err := Collect(ReduceByKey(pairs, func(a, b int) int { return a + b }, parts))
					if err != nil {
						return err
					}
					total := 0
					for _, kv := range out {
						total += kv.V
					}
					if want := 600 * 599 / 2; total != want {
						return fmt.Errorf("worker %d iter %d: sum = %d, want %d", w, i, total, want)
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	tunerWG.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	c.SetDefaultParallelism(7)
	if got := c.DefaultParallelism(); got != 7 {
		t.Errorf("DefaultParallelism() = %d after SetDefaultParallelism(7)", got)
	}
	c.SetDefaultParallelism(0)
	if got, slots := c.DefaultParallelism(), c.Cluster().TotalSlots(); got != slots {
		t.Errorf("DefaultParallelism() = %d after clearing override, want cluster slots %d", got, slots)
	}
}

// TestCacheDropRacesConcurrentJobs stress-tests the memory manager's
// dropRDD/dropExecutor paths racing live jobs that share a cached lineage
// (race detector on: `go test -race` runs this). Worker goroutines repeatedly
// run a shuffle job over one cached RDD while a dropper goroutine unpersists
// it mid-flight (dropRDD) and two executors die partway through
// (dropExecutor). Every job must still produce the correct sums — dropped
// cache recomputes from lineage — and the manager must account a consistent
// non-negative byte total afterwards.
func TestCacheDropRacesConcurrentJobs(t *testing.T) {
	c, err := New(Config{Cluster: concTestCluster(), Seed: 5, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	cached := Map(Parallelize(c, seq(4000), 8), "shared", func(x int) int { return x * 3 }).Cache()
	pipeline := ReduceByKey(
		Map(cached, "key", func(x int) KV[int, int] { return KV[int, int]{K: x % 16, V: x} }),
		func(a, b int) int { return a + b }, 8)
	var want int
	for x := 0; x < 4000; x++ {
		want += x * 3
	}

	const workers, iters = 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				out, err := Collect(pipeline)
				if err != nil {
					errs <- err
					return
				}
				total := 0
				for _, kv := range out {
					total += kv.V
				}
				if total != want {
					errs <- fmt.Errorf("sum = %d, want %d", total, want)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2*iters; i++ {
			cached.Unpersist()
			time.Sleep(500 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range []int{1, 3} {
			time.Sleep(2 * time.Millisecond)
			if err := c.FailExecutor(id); err != nil {
				errs <- err
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if c.MemoryAccountedBytes() < 0 {
		t.Fatalf("memory manager accounts %d bytes", c.MemoryAccountedBytes())
	}
}
