// Shuffle core shared by both shuffle implementations, plus the legacy hash
// path. Map tasks produce one output per map partition — resident per-reduce
// buckets, or (sort shuffle under memory pressure, see sortshuffle.go)
// key-sorted run files on the DFS with an in-memory index — and register it
// with the shuffle manager; reduce tasks fetch their partition from every map
// output and merge. Outputs are retained for the lifetime of the context (as
// with Spark's external shuffle service on YARN, they survive executor
// failures), so a shuffle is computed at most once per lineage. Resident
// bucket bytes are charged to the memory manager's shuffle-resident account;
// run files live on the producing node's disk and are lost with the node.
//
// Bucket writes are pipeline breakers: the map side streams the fused narrow
// chain's cursor directly into per-reduce buckets, so the map input is never
// materialised as one slice. For ReduceByKey/CountByKey the buckets are
// combining hash maps (Spark's map-side combine), shrinking shuffled bytes
// to one pair per (bucket, key) before the fetch; Config.DisableMapSideCombine
// ablates this for the `combine` benchmark experiment.
//
// The hash path holds every bucket resident and acquires the whole output's
// bytes in one must-fit execution grant — under a memory cap that denial is
// an OOM abort, the behaviour the `memory` benchmark experiment contrasts
// with the sort path's spill-and-complete.

package rdd

import (
	"fmt"
	"hash/maphash"
	"iter"
	"sync"

	"sparkscore/internal/dfs"
)

// KV is a key-value pair, the element type of pair RDDs.
type KV[K comparable, V any] struct {
	K K
	V V
}

// JoinPair carries the matched values of an inner join.
type JoinPair[V, W any] struct {
	Left  V
	Right W
}

type shuffleDep struct {
	id     int
	parent *node
	parts  int
	runMap func(tc *taskContext, mapPart int)

	// subFetch fetches one reduce partition's pairs from a contiguous range
	// of map outputs [mapLo, mapHi) and parks them on the dependency for the
	// consuming task (adaptive skew splitting; see adaptive.go). Set by every
	// typed shuffle constructor — it closes over the element types the way
	// runMap does.
	subFetch func(tc *taskContext, reducePart, mapLo, mapHi int)

	// done means the map stage has *successfully* completed at least once.
	// The scheduler sets it only after the stage succeeds, and clears it
	// when a fetch failure shows the outputs are gone, so a resubmitted job
	// recomputes rather than silently reading nothing.
	mu   sync.Mutex
	done bool

	// runMu serialises map-stage execution of this dependency across
	// concurrent jobs that share the lineage: the second job blocks until the
	// first finishes the stage, then observes done and skips it — computed at
	// most once, never twice racing into the shuffle manager. Jobs acquire
	// runMus strictly descendant-before-ancestor along the lineage DAG, so
	// the acquisition order is a topological partial order and cannot
	// deadlock.
	runMu sync.Mutex

	// partials holds per-reduce-partition pair slices parked by skew-split
	// prefetch sub-tasks, consumed once by the reduce task (takePartials).
	partialMu sync.Mutex
	partials  map[int]*partialFetch
}

// partialFetch accumulates one reduce partition's prefetched pairs, one slot
// per map output so the consuming task can replay them in map-output order.
type partialFetch struct {
	bySource []any // bySource[m] is the []KV[K,V] fetched from map output m
	filled   []bool
	n        int
}

// storePartial parks one map output's pairs for a reduce partition.
func (sd *shuffleDep) storePartial(reducePart, mapParts, mapPart int, pairs any) {
	sd.partialMu.Lock()
	defer sd.partialMu.Unlock()
	if sd.partials == nil {
		sd.partials = map[int]*partialFetch{}
	}
	pf := sd.partials[reducePart]
	if pf == nil || len(pf.bySource) != mapParts {
		pf = &partialFetch{bySource: make([]any, mapParts), filled: make([]bool, mapParts)}
		sd.partials[reducePart] = pf
	}
	if !pf.filled[mapPart] {
		pf.n++
	}
	pf.bySource[mapPart] = pairs
	pf.filled[mapPart] = true
}

// takePartials consumes a reduce partition's prefetched pairs, but only when
// every map output has been parked — a half-prefetched partition (the
// sub-stage was re-planned, or an older round left leftovers) falls back to a
// full fetch, which produces the identical pair stream.
func (sd *shuffleDep) takePartials(reducePart, mapParts int) ([]any, bool) {
	sd.partialMu.Lock()
	defer sd.partialMu.Unlock()
	pf := sd.partials[reducePart]
	if pf == nil || len(pf.bySource) != mapParts || pf.n != mapParts {
		return nil, false
	}
	delete(sd.partials, reducePart)
	return pf.bySource, true
}

func (sd *shuffleDep) isDone() bool {
	sd.mu.Lock()
	defer sd.mu.Unlock()
	return sd.done
}

func (sd *shuffleDep) setDone(v bool) {
	sd.mu.Lock()
	sd.done = v
	sd.mu.Unlock()
}

type mapKey struct {
	shuffle int
	mapPart int
}

type mapOutput struct {
	node     int // cluster node that produced (and serves) the output
	executor int // executor whose memory holds resident buckets
	buckets  []any
	bytes    []int64
	// runs is non-nil for a spilled sort-shuffle output: the buckets live in
	// indexed run files on the producing node's disk instead of memory, and
	// bytes holds encoded file bytes per reduce partition.
	runs []*shuffleRun
}

// residentBytes is how much executor memory the output occupies (zero for
// spilled outputs, whose data is on disk).
func (mo *mapOutput) residentBytes() int64 {
	if mo.runs != nil {
		return 0
	}
	var total int64
	for _, b := range mo.bytes {
		total += b
	}
	return total
}

type shuffleManager struct {
	mu      sync.Mutex
	outputs map[mapKey]*mapOutput

	// mem accounts resident bucket bytes per executor; fs holds spilled run
	// files. Both are nil only in unit tests that never register outputs.
	mem *memoryManager
	fs  *dfs.FS
}

func newShuffleManager() *shuffleManager {
	return &shuffleManager{outputs: map[mapKey]*mapOutput{}}
}

// releaseLocked undoes an output's footprint: resident bytes leave the
// memory manager's shuffle account, run files leave the DFS.
func (sm *shuffleManager) releaseLocked(mo *mapOutput) {
	if mo == nil {
		return
	}
	if r := mo.residentBytes(); r > 0 && sm.mem != nil {
		sm.mem.addShuffleResident(mo.executor, -r)
	}
	if sm.fs != nil {
		for _, run := range mo.runs {
			_ = sm.fs.Delete(run.file)
		}
	}
}

func (sm *shuffleManager) write(shuffle, mapPart, node, executor int, buckets []any, bytes []int64, runs []*shuffleRun) {
	mo := &mapOutput{node: node, executor: executor, buckets: buckets, bytes: bytes, runs: runs}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	k := mapKey{shuffle, mapPart}
	sm.releaseLocked(sm.outputs[k])
	if r := mo.residentBytes(); r > 0 && sm.mem != nil {
		sm.mem.addShuffleResident(executor, r)
	}
	sm.outputs[k] = mo
}

func (sm *shuffleManager) has(shuffle, mapPart int) bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	_, ok := sm.outputs[mapKey{shuffle, mapPart}]
	return ok
}

// get returns one map output, or nil if it is gone.
func (sm *shuffleManager) get(shuffle, mapPart int) *mapOutput {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.outputs[mapKey{shuffle, mapPart}]
}

// drop destroys one map output (injected shuffle-data loss).
func (sm *shuffleManager) drop(shuffle, mapPart int) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	k := mapKey{shuffle, mapPart}
	sm.releaseLocked(sm.outputs[k])
	delete(sm.outputs, k)
}

// dropNode destroys every map output served from the node: a machine loss
// takes its shuffle files (and external shuffle service) with it.
func (sm *shuffleManager) dropNode(node int) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for k, mo := range sm.outputs {
		if mo.node == node {
			sm.releaseLocked(mo)
			delete(sm.outputs, k)
		}
	}
}

// fetch locates all map outputs of the shuffle for one reduce task, charging
// local or remote transfer of the reduce partition's bytes on the task
// context. A missing output — destroyed by a node loss or by fault
// injection — raises a fetchFailedError that the scheduler turns into a
// map-stage resubmission. (Reading a spilled output's run files happens
// lazily in mergeRuns, with the same failure semantics.)
func (sm *shuffleManager) fetch(tc *taskContext, shuffle, reducePart, mapParts int) []*mapOutput {
	tc.ctx.maybeInjectFetchFailure(tc, shuffle, mapParts)
	out := make([]*mapOutput, 0, mapParts)
	for m := 0; m < mapParts; m++ {
		sm.mu.Lock()
		mo, ok := sm.outputs[mapKey{shuffle, m}]
		sm.mu.Unlock()
		if !ok {
			tc.emit(&FetchFailure{Job: tc.job, Stage: tc.stage, Round: tc.round, Part: tc.part,
				Attempt: tc.attempt, Shuffle: shuffle, MapPart: m})
			panic(&fetchFailedError{shuffle: shuffle, mapPart: m})
		}
		if mo.node == tc.node() {
			tc.shuffleLocalBytes += mo.bytes[reducePart]
		} else {
			tc.shuffleRemoteBytes += mo.bytes[reducePart]
		}
		out = append(out, mo)
	}
	return out
}

var hashSeed = maphash.MakeSeed()

// hashKey hashes a shuffle key. Integer and string keys are hashed natively;
// anything else falls back to its fmt representation (slow but correct;
// SparkScore itself only keys by int and string). The sort shuffle orders
// spilled runs by this hash, so partition grouping and key order agree
// between the two shuffle implementations.
func hashKey[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case int:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(v))
	case int64:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case string:
		return maphash.String(hashSeed, v)
	default:
		return maphash.String(hashSeed, fmt.Sprint(v))
	}
}

// hashPartition maps a key to a reduce partition.
func hashPartition[K comparable](k K, parts int) int {
	return int(hashKey(k) % uint64(parts))
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// orderedMap is a map that remembers first-insertion order, so shuffle
// outputs are deterministic regardless of Go's randomised map iteration.
type orderedMap[K comparable, V any] struct {
	idx  map[K]int
	keys []K
	vals []V
}

func newOrderedMap[K comparable, V any]() *orderedMap[K, V] {
	return &orderedMap[K, V]{idx: map[K]int{}}
}

func (m *orderedMap[K, V]) get(k K) (V, bool) {
	if i, ok := m.idx[k]; ok {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

func (m *orderedMap[K, V]) set(k K, v V) {
	if i, ok := m.idx[k]; ok {
		m.vals[i] = v
		return
	}
	m.idx[k] = len(m.keys)
	m.keys = append(m.keys, k)
	m.vals = append(m.vals, v)
}

func (m *orderedMap[K, V]) pairs() []KV[K, V] {
	out := make([]KV[K, V], len(m.keys))
	for i, k := range m.keys {
		out[i] = KV[K, V]{K: k, V: m.vals[i]}
	}
	return out
}

// seq yields the pairs in insertion order without materialising them; the
// map must not be mutated afterwards, which holds for merged reduce outputs.
func (m *orderedMap[K, V]) seq() iter.Seq[KV[K, V]] {
	return func(yield func(KV[K, V]) bool) {
		for i, k := range m.keys {
			if !yield(KV[K, V]{K: k, V: m.vals[i]}) {
				return
			}
		}
	}
}

// registerBuckets registers a map task's resident buckets with the shuffle
// manager and accounts the materialisation (bucket writes are pipeline
// breakers). The caller is responsible for having charged the bytes to the
// memory manager: the hash path acquires them in one must-fit grant
// (writeBuckets), the sort path's no-spill flush holds them under its
// already-granted buffer reservation.
func registerBuckets[K comparable, V any](ctx *Context, tc *taskContext, sd *shuffleDep, mapPart int, buckets [][]KV[K, V], bytesPerElem int64) {
	anyBuckets := make([]any, len(buckets))
	bytes := make([]int64, len(buckets))
	var total int64
	for i, b := range buckets {
		anyBuckets[i] = b
		bytes[i] = int64(len(b)) * bytesPerElem
		total += bytes[i]
	}
	tc.noteMaterialized(total)
	ctx.shuffle.write(sd.id, mapPart, tc.node(), tc.executor, anyBuckets, bytes, nil)
	emitMapOutputStats(ctx, tc, sd, mapPart, bytes)
}

// emitMapOutputStats publishes a map output's per-reduce byte sizes for the
// adaptive planner. Gated on the adaptive flag so default-off event logs stay
// byte-identical to every log written before adaptation existed.
func emitMapOutputStats(ctx *Context, tc *taskContext, sd *shuffleDep, mapPart int, bytes []int64) {
	if !ctx.cfg.Adaptive.Enabled {
		return
	}
	tc.emit(&MapOutputStats{Job: tc.job, Stage: tc.stage, Round: tc.round, Attempt: tc.attempt,
		Shuffle: sd.id, MapPart: mapPart, BytesPerReduce: append([]int64(nil), bytes...)})
}

// fetchRange is one skew-split sub-task's work: fetch the reduce partition
// from map outputs [lo, hi), charging the transfer exactly as a full fetch
// would, and park the pairs — in map-output order, spilled runs merged back
// to arrival order — for the consuming reduce task.
func fetchRange[K comparable, V any](ctx *Context, tc *taskContext, sd *shuffleDep, reducePart, lo, hi int) {
	mapParts := sd.parent.parts
	ctx.maybeInjectFetchFailure(tc, sd.id, mapParts)
	for m := lo; m < hi; m++ {
		mo := ctx.shuffle.get(sd.id, m)
		if mo == nil {
			tc.emit(&FetchFailure{Job: tc.job, Stage: tc.stage, Round: tc.round, Part: tc.part,
				Attempt: tc.attempt, Shuffle: sd.id, MapPart: m})
			panic(&fetchFailedError{shuffle: sd.id, mapPart: m})
		}
		if mo.node == tc.node() {
			tc.shuffleLocalBytes += mo.bytes[reducePart]
		} else {
			tc.shuffleRemoteBytes += mo.bytes[reducePart]
		}
		var pairs []KV[K, V]
		if mo.runs == nil {
			pairs = mo.buckets[reducePart].([]KV[K, V])
		} else {
			for kv := range mergeRuns[K, V](tc, sd.id, m, mo.runs, reducePart) {
				pairs = append(pairs, kv)
			}
			tc.noteMaterialized(int64(len(pairs)) * sd.parent.bytesPerElem)
		}
		sd.storePartial(reducePart, mapParts, m, pairs)
	}
}

// makeSubFetch closes fetchRange over the dependency's element types; every
// typed shuffle constructor installs it on its shuffleDep.
func makeSubFetch[K comparable, V any](ctx *Context, sd *shuffleDep) func(tc *taskContext, reducePart, lo, hi int) {
	return func(tc *taskContext, reducePart, lo, hi int) {
		fetchRange[K, V](ctx, tc, sd, reducePart, lo, hi)
	}
}

// writeBuckets is the hash-shuffle registration: the whole output must fit in
// execution memory at once — hash buckets cannot spill — so a denied grant is
// the simulation's OOM, surfaced as a task failure the scheduler retries
// until the job aborts.
func writeBuckets[K comparable, V any](ctx *Context, tc *taskContext, sd *shuffleDep, mapPart int, buckets [][]KV[K, V], bytesPerElem int64) {
	var total int64
	for _, b := range buckets {
		total += int64(len(b)) * bytesPerElem
	}
	if !tc.acquireExecution(total, acqMustFit) {
		panic(fmt.Sprintf("executor %d out of memory: %d bytes of resident shuffle buckets exceed the unified pool (hash shuffle cannot spill; use Config.SortShuffle = ShuffleSort)",
			tc.executor, total))
	}
	tc.noteShuffleBuffer(total)
	registerBuckets(ctx, tc, sd, mapPart, buckets, bytesPerElem)
}

// bucketize streams pairs into one bucket per reduce partition, without
// combining (GroupByKey, Join, and the combine-disabled ablation).
func bucketize[K comparable, V any](in iter.Seq[KV[K, V]], parts int) [][]KV[K, V] {
	buckets := make([][]KV[K, V], parts)
	for kv := range in {
		i := hashPartition(kv.K, parts)
		buckets[i] = append(buckets[i], kv)
	}
	return buckets
}

// ReduceByKey merges the values of each key with combine, which must be
// associative and commutative. The map side streams the parent cursor into
// per-bucket combining hash maps (Spark's map-side combine), so each map
// output holds one pair per (bucket, key) — shuffled bytes scale with
// distinct keys rather than input size. parts <= 0 inherits the parent
// partition count.
func ReduceByKey[K comparable, V any](r *RDD[KV[K, V]], combine func(V, V) V, parts int) *RDD[KV[K, V]] {
	ctx := r.n.ctx
	if parts <= 0 {
		parts = r.n.parts
	}
	parent := r.n
	sd := &shuffleDep{id: ctx.newShuffleID(), parent: parent, parts: parts}
	sd.subFetch = makeSubFetch[K, V](ctx, sd)
	sd.runMap = func(tc *taskContext, mapPart int) {
		in := seqOf[KV[K, V]](parent.iterate(tc, mapPart))
		if ctx.cfg.SortShuffle == ShuffleSort {
			mapCombine := combine
			if ctx.cfg.DisableMapSideCombine {
				mapCombine = nil
			}
			runSortMap(ctx, tc, sd, mapPart, in, parent.bytesPerElem, mapCombine)
			return
		}
		var buckets [][]KV[K, V]
		if ctx.cfg.DisableMapSideCombine {
			buckets = bucketize(in, parts)
		} else {
			combined := make([]*orderedMap[K, V], parts)
			for i := range combined {
				combined[i] = newOrderedMap[K, V]()
			}
			for kv := range in {
				b := combined[hashPartition(kv.K, parts)]
				if old, ok := b.get(kv.K); ok {
					b.set(kv.K, combine(old, kv.V))
				} else {
					b.set(kv.K, kv.V)
				}
			}
			buckets = make([][]KV[K, V], parts)
			for i, b := range combined {
				buckets[i] = b.pairs()
			}
		}
		writeBuckets(ctx, tc, sd, mapPart, buckets, parent.bytesPerElem)
	}
	n := newTypedNode[KV[K, V]](ctx, fmt.Sprintf("reduceByKey(%s)", parent.name), parts)
	n.shuffleIn = []*shuffleDep{sd}
	n.bytesPerElem = parent.bytesPerElem
	n.compute = func(tc *taskContext, p int) any {
		merged := newOrderedMap[K, V]()
		fold := func(m *orderedMap[K, V], k K, v V) {
			if old, ok := m.get(k); ok {
				m.set(k, combine(old, v))
			} else {
				m.set(k, v)
			}
		}
		for bucketSeq := range shuffleBucketSeqs[K, V](ctx, tc, sd, p, parent.parts) {
			if ctx.cfg.DisableMapSideCombine {
				for kv := range bucketSeq {
					fold(merged, kv.K, kv.V)
				}
				continue
			}
			// Replay the map-side combine over this map output's pairs — an
			// already-combined resident bucket passes through unchanged, raw
			// spilled pairs get combined here — then fold the per-output
			// results into the global merge. This reproduces the resident
			// path's two-level fold tree, so float results are bitwise
			// identical whether or not the output was spilled.
			perMap := newOrderedMap[K, V]()
			for kv := range bucketSeq {
				fold(perMap, kv.K, kv.V)
			}
			for i, k := range perMap.keys {
				fold(merged, k, perMap.vals[i])
			}
		}
		est := int64(len(merged.keys)) * n.bytesPerElem
		tc.acquireExecution(est, acqForce)
		tc.noteMaterialized(est)
		return boxSeq(merged.seq())
	}
	return &RDD[KV[K, V]]{n: n}
}

// GroupByKey collects all values of each key into a slice, preserving the
// deterministic (map-partition, input) order.
func GroupByKey[K comparable, V any](r *RDD[KV[K, V]], parts int) *RDD[KV[K, []V]] {
	ctx := r.n.ctx
	if parts <= 0 {
		parts = r.n.parts
	}
	parent := r.n
	sd := &shuffleDep{id: ctx.newShuffleID(), parent: parent, parts: parts}
	sd.subFetch = makeSubFetch[K, V](ctx, sd)
	sd.runMap = writeShuffleSide[K, V](ctx, sd, parent, parts)
	n := newTypedNode[KV[K, []V]](ctx, fmt.Sprintf("groupByKey(%s)", parent.name), parts)
	n.shuffleIn = []*shuffleDep{sd}
	n.bytesPerElem = parent.bytesPerElem
	n.compute = func(tc *taskContext, p int) any {
		merged := newOrderedMap[K, []V]()
		elems := 0
		for bucketSeq := range shuffleBucketSeqs[K, V](ctx, tc, sd, p, parent.parts) {
			for kv := range bucketSeq {
				old, _ := merged.get(kv.K)
				merged.set(kv.K, append(old, kv.V))
				elems++
			}
		}
		est := int64(elems) * parent.bytesPerElem
		tc.acquireExecution(est, acqForce)
		tc.noteMaterialized(est)
		return boxSeq(merged.seq())
	}
	return &RDD[KV[K, []V]]{n: n}
}

// Join computes the inner join of two pair RDDs on their keys (the operation
// joining the weight RDD with the per-SNP score RDD in Algorithm 1 step 9).
// Keys appearing multiple times on a side produce the usual cross product,
// emitted lazily off the merged sides. parts <= 0 inherits the larger
// parent's partition count, as Spark's defaultPartitioner does — joining a
// small side must not collapse the big side's parallelism.
func Join[K comparable, V, W any](a *RDD[KV[K, V]], b *RDD[KV[K, W]], parts int) *RDD[KV[K, JoinPair[V, W]]] {
	ctx := a.n.ctx
	if b.n.ctx != ctx {
		panic("rdd: joining RDDs from different contexts")
	}
	if parts <= 0 {
		parts = max(a.n.parts, b.n.parts)
	}
	left, right := a.n, b.n
	sdL := &shuffleDep{id: ctx.newShuffleID(), parent: left, parts: parts}
	sdL.subFetch = makeSubFetch[K, V](ctx, sdL)
	sdL.runMap = writeShuffleSide[K, V](ctx, sdL, left, parts)
	sdR := &shuffleDep{id: ctx.newShuffleID(), parent: right, parts: parts}
	sdR.subFetch = makeSubFetch[K, W](ctx, sdR)
	sdR.runMap = writeShuffleSide[K, W](ctx, sdR, right, parts)

	n := newTypedNode[KV[K, JoinPair[V, W]]](ctx, fmt.Sprintf("join(%s,%s)", left.name, right.name), parts)
	n.shuffleIn = []*shuffleDep{sdL, sdR}
	n.bytesPerElem = left.bytesPerElem + right.bytesPerElem
	n.compute = func(tc *taskContext, p int) any {
		ls := newOrderedMap[K, []V]()
		lElems := 0
		for bucketSeq := range shuffleBucketSeqs[K, V](ctx, tc, sdL, p, left.parts) {
			for kv := range bucketSeq {
				old, _ := ls.get(kv.K)
				ls.set(kv.K, append(old, kv.V))
				lElems++
			}
		}
		rs := newOrderedMap[K, []W]()
		rElems := 0
		for bucketSeq := range shuffleBucketSeqs[K, W](ctx, tc, sdR, p, right.parts) {
			for kv := range bucketSeq {
				old, _ := rs.get(kv.K)
				rs.set(kv.K, append(old, kv.V))
				rElems++
			}
		}
		est := int64(lElems)*left.bytesPerElem + int64(rElems)*right.bytesPerElem
		tc.acquireExecution(est, acqForce)
		tc.noteMaterialized(est)
		return boxSeq[KV[K, JoinPair[V, W]]](func(yield func(KV[K, JoinPair[V, W]]) bool) {
			for _, k := range ls.keys {
				lvs, _ := ls.get(k)
				rvs, ok := rs.get(k)
				if !ok {
					continue
				}
				for _, lv := range lvs {
					for _, rv := range rvs {
						if !yield(KV[K, JoinPair[V, W]]{K: k, V: JoinPair[V, W]{Left: lv, Right: rv}}) {
							return
						}
					}
				}
			}
		})
	}
	return &RDD[KV[K, JoinPair[V, W]]]{n: n}
}

// writeShuffleSide builds the map-task body of a non-combining shuffle
// dependency (GroupByKey and each Join side), dispatching on the configured
// shuffle implementation.
func writeShuffleSide[K comparable, V any](ctx *Context, sd *shuffleDep, parent *node, parts int) func(tc *taskContext, mapPart int) {
	return func(tc *taskContext, mapPart int) {
		in := seqOf[KV[K, V]](parent.iterate(tc, mapPart))
		if ctx.cfg.SortShuffle == ShuffleSort {
			runSortMap(ctx, tc, sd, mapPart, in, parent.bytesPerElem, nil)
			return
		}
		writeBuckets(ctx, tc, sd, mapPart, bucketize(in, parts), parent.bytesPerElem)
	}
}

// CollectAsMap collects a pair RDD into a driver-side map. Later duplicates
// of a key overwrite earlier ones, as in Spark.
func CollectAsMap[K comparable, V any](r *RDD[KV[K, V]]) (map[K]V, error) {
	pairs, err := Collect(r)
	if err != nil {
		return nil, err
	}
	out := make(map[K]V, len(pairs))
	for _, kv := range pairs {
		out[kv.K] = kv.V
	}
	return out, nil
}
