// Typed scheduler events and the listener bus — the engine's counterpart of
// Spark's SparkListener/ListenerBus pipeline, which feeds the Spark UI and
// event logs the paper's runtimes were read from.
//
// Events are emitted from the scheduler, the shuffle layer, the block
// manager, and the fault injector, and delivered synchronously to every
// registered listener in registration order. Delivery order is
// deterministic: task-sourced events (cache puts, evictions, fetch failures)
// are buffered on the task context while tasks run concurrently, and flushed
// during the scheduler's deterministic post-wave accounting pass — the same
// partition-ordered walk that charges virtual time. Every event carries a
// virtual timestamp on the simulated cluster clock, not host wall time.
//
// JobMetrics itself is reconstructed by a built-in listener (listeners.go);
// the scheduler no longer mutates it directly.

package rdd

import "sync"

// Event is one typed scheduler event. The set of events is closed: all
// implementations live in this package (setTime is unexported), mirroring
// Spark's sealed SparkListenerEvent hierarchy.
type Event interface {
	// Name returns the stable event name used in the event log's "type" field.
	Name() string
	// When returns the event's virtual timestamp in simulated seconds.
	When() float64
	setTime(float64)
}

// Listener receives every bus event, synchronously and in deterministic
// order, as with Spark's SparkListenerInterface. OnEvent is never called
// concurrently; a listener that shares state with other goroutines (e.g. a
// writer flushed elsewhere) must do its own locking.
type Listener interface {
	OnEvent(Event)
}

// ListenerFunc adapts a plain function to the Listener interface.
type ListenerFunc func(Event)

// OnEvent implements Listener.
func (f ListenerFunc) OnEvent(ev Event) { f(ev) }

// EventTime is embedded in every event and carries the virtual timestamp.
type EventTime struct {
	Time float64 `json:"time"`
}

func (e *EventTime) When() float64     { return e.Time }
func (e *EventTime) setTime(t float64) { e.Time = t }

// JobStart marks an action beginning execution (SparkListenerJobStart).
type JobStart struct {
	EventTime
	Job    uint64 `json:"job"`
	Action string `json:"action"`
	RDD    string `json:"rdd"`
	// Pool is the scheduling pool the job was submitted to (RunInPool);
	// empty in logs written before pools existed.
	Pool string `json:"pool,omitempty"`
	// BroadcastSeconds is the virtual time charged up front for pending
	// broadcast distribution.
	BroadcastSeconds float64 `json:"broadcastSeconds,omitempty"`
}

func (*JobStart) Name() string { return "JobStart" }

// JobEnd marks an action finishing (SparkListenerJobEnd); Failed jobs carry
// the abort error.
type JobEnd struct {
	EventTime
	Job    uint64 `json:"job"`
	Action string `json:"action"`
	RDD    string `json:"rdd"`
	// VirtualSeconds is the job's simulated duration (broadcast + stages).
	VirtualSeconds float64 `json:"virtualSeconds"`
	Failed         bool    `json:"failed,omitempty"`
	Error          string  `json:"error,omitempty"`
	// Cancelled marks a job ended by CancelJob / a deadline, not by failure:
	// the job produced no result but the context remains fully usable.
	Cancelled bool `json:"cancelled,omitempty"`
}

func (*JobEnd) Name() string { return "JobEnd" }

// StageSubmitted marks a stage's task set launching
// (SparkListenerStageSubmitted). Stage is the shuffle id for map stages and 0
// for the result stage; Recovery marks stages re-run by fault recovery.
type StageSubmitted struct {
	EventTime
	Job      uint64 `json:"job"`
	Stage    uint64 `json:"stage"`
	Round    int    `json:"round"`
	RDD      string `json:"rdd"`
	NumTasks int    `json:"numTasks"`
	Recovery bool   `json:"recovery,omitempty"`
	// Prefetch marks the skew-split sub-stage adaptive execution runs ahead
	// of a consuming stage (see adaptive.go).
	Prefetch bool `json:"prefetch,omitempty"`
}

func (*StageSubmitted) Name() string { return "StageSubmitted" }

// StageCompleted marks a stage barrier (SparkListenerStageCompleted).
// Seconds is the stage's virtual elapsed time: the slowest executor's
// makespan plus the per-stage overhead.
type StageCompleted struct {
	EventTime
	Job            uint64  `json:"job"`
	Stage          uint64  `json:"stage"`
	Round          int     `json:"round"`
	RDD            string  `json:"rdd"`
	NumTasks       int     `json:"numTasks"`
	FailedAttempts int     `json:"failedAttempts,omitempty"`
	Seconds        float64 `json:"seconds"`
	Failed         bool    `json:"failed,omitempty"`
	Error          string  `json:"error,omitempty"`
	Prefetch       bool    `json:"prefetch,omitempty"`
}

func (*StageCompleted) Name() string { return "StageCompleted" }

// StageResubmitted marks the DAG scheduler resubmitting a map stage after a
// fetch failure (Spark's DAGScheduler stage reattempt, visible in the UI as
// a new stage attempt).
type StageResubmitted struct {
	EventTime
	Job     uint64 `json:"job"`
	Shuffle int    `json:"shuffle"`
	Attempt int    `json:"attempt"` // resubmission count for this shuffle, 1-based
	Reason  string `json:"reason"`
}

func (*StageResubmitted) Name() string { return "StageResubmitted" }

// TaskStart marks a task attempt's virtual launch (SparkListenerTaskStart).
// Sub distinguishes adaptive skew-split sub-tasks sharing one partition
// (1-based within the prefetch sub-stage); 0 for ordinary tasks.
type TaskStart struct {
	EventTime
	Job      uint64 `json:"job"`
	Stage    uint64 `json:"stage"`
	Round    int    `json:"round"`
	Part     int    `json:"part"`
	Sub      int    `json:"sub,omitempty"`
	Attempt  int    `json:"attempt"`
	Executor int    `json:"executor"`
}

func (*TaskStart) Name() string { return "TaskStart" }

// TaskEnd marks a task attempt finishing (SparkListenerTaskEnd), carrying the
// attempt's metrics snapshot as Spark tasks carry TaskMetrics. Recovery marks
// attempts whose virtual time is charged to JobMetrics.RecoverySeconds.
type TaskEnd struct {
	EventTime
	Job      uint64 `json:"job"`
	Stage    uint64 `json:"stage"`
	Round    int    `json:"round"`
	Part     int    `json:"part"`
	Sub      int    `json:"sub,omitempty"`
	Attempt  int    `json:"attempt"`
	Executor int    `json:"executor"`
	OK       bool   `json:"ok"`
	Failure  string `json:"failure,omitempty"`
	Recovery bool   `json:"recovery,omitempty"`
	// Speculative marks the attempt as a speculative copy launched by the
	// straggler mitigator; Killed marks an attempt killed because the copy
	// (or original) racing it finished first.
	Speculative bool `json:"speculative,omitempty"`
	Killed      bool `json:"killed,omitempty"`
	// StartSec/DurationSec locate the attempt's span on the virtual clock
	// (the event's Time is the end of the span); ComputeSec is the measured
	// host compute. All three derive from host timing.
	StartSec    float64     `json:"startSec"`
	DurationSec float64     `json:"durationSec"`
	ComputeSec  float64     `json:"computeSec"`
	Metrics     TaskMetrics `json:"metrics"`
}

func (*TaskEnd) Name() string { return "TaskEnd" }

// TaskMetrics is the per-attempt cost snapshot carried by TaskEnd — the
// analogue of Spark's TaskMetrics. All fields are byte counters or counts,
// reproducible for a fixed Config.
type TaskMetrics struct {
	DFSLocalBytes       int64 `json:"dfsLocalBytes,omitempty"`
	DFSRemoteBytes      int64 `json:"dfsRemoteBytes,omitempty"`
	ShuffleLocalBytes   int64 `json:"shuffleLocalBytes,omitempty"`
	ShuffleRemoteBytes  int64 `json:"shuffleRemoteBytes,omitempty"`
	CacheLocalBytes     int64 `json:"cacheLocalBytes,omitempty"`
	CacheDiskLocalBytes int64 `json:"cacheDiskLocalBytes,omitempty"`
	CacheRemoteBytes    int64 `json:"cacheRemoteBytes,omitempty"`
	ShipBytes           int64 `json:"shipBytes,omitempty"`
	MaterializedBytes   int64 `json:"materializedBytes,omitempty"`
	FusedChain          int   `json:"fusedChain,omitempty"`
	// Spill and execution-memory accounting (sort shuffle / memory manager).
	// SpilledBytes is the encoded bytes of sorted runs the task wrote under
	// memory pressure, SpillCount how many; ShuffleBufferBytes is the largest
	// shuffle buffer the task held; ExecutionPeakBytes its execution-memory
	// high-water mark. All zero (and absent from logs) when memory is ample.
	SpilledBytes       int64 `json:"spilledBytes,omitempty"`
	SpillCount         int   `json:"spillCount,omitempty"`
	ShuffleBufferBytes int64 `json:"shuffleBufferBytes,omitempty"`
	ExecutionPeakBytes int64 `json:"executionPeakBytes,omitempty"`
}

// BlockCached marks a partition entering the block manager (the storing half
// of SparkListenerBlockUpdated). Job is the job whose task stored the block —
// with concurrent jobs, "the currently running job" is no longer well defined,
// so block events carry their owner explicitly.
type BlockCached struct {
	EventTime
	Job      uint64 `json:"job,omitempty"`
	RDD      int    `json:"rdd"`
	Part     int    `json:"part"`
	Executor int    `json:"executor"`
	Bytes    int64  `json:"bytes"`
	OnDisk   bool   `json:"onDisk,omitempty"`
}

func (*BlockCached) Name() string { return "BlockCached" }

// BlockEvicted marks an LRU eviction making room for another RDD's block
// (the dropping half of SparkListenerBlockUpdated). Job is the job whose task
// caused the eviction, not the job that cached the victim.
type BlockEvicted struct {
	EventTime
	Job      uint64 `json:"job,omitempty"`
	RDD      int    `json:"rdd"`
	Part     int    `json:"part"`
	Executor int    `json:"executor"`
	Bytes    int64  `json:"bytes"`
}

func (*BlockEvicted) Name() string { return "BlockEvicted" }

// ShuffleSpill marks a map task's shuffle buffer spilling a key-sorted run
// to the DFS after the memory manager denied further buffering — the engine's
// counterpart of Spark's "spilling sort data ... to disk" executor log line.
// Bytes is the encoded size of the run file; Elems the pairs it holds.
type ShuffleSpill struct {
	EventTime
	Job      uint64 `json:"job"`
	Stage    uint64 `json:"stage"`
	Round    int    `json:"round"`
	Part     int    `json:"part"`
	Attempt  int    `json:"attempt"`
	Executor int    `json:"executor"`
	Shuffle  int    `json:"shuffle"`
	Run      int    `json:"run"` // run index within the map output, 0-based
	Bytes    int64  `json:"bytes"`
	Elems    int    `json:"elems"`
}

func (*ShuffleSpill) Name() string { return "ShuffleSpill" }

// FetchFailure marks a reduce task finding a map output missing (Spark's
// FetchFailed TaskEndReason). The scheduler reacts by resubmitting the
// parent map stage.
type FetchFailure struct {
	EventTime
	Job      uint64 `json:"job"`
	Stage    uint64 `json:"stage"`
	Round    int    `json:"round"`
	Part     int    `json:"part"`
	Attempt  int    `json:"attempt"`
	Shuffle  int    `json:"shuffle"`
	MapPart  int    `json:"mapPart"`
	Injected bool   `json:"injected,omitempty"`
}

func (*FetchFailure) Name() string { return "FetchFailure" }

// ExecutorExcluded marks an executor taken out of scheduling after repeated
// task failures (SparkListenerExecutorExcluded, née blacklisting).
type ExecutorExcluded struct {
	EventTime
	Executor int `json:"executor"`
	Failures int `json:"failures"`
}

func (*ExecutorExcluded) Name() string { return "ExecutorExcluded" }

// NodeLost marks a whole-machine loss: its executors, cached blocks, shuffle
// outputs, and DFS replicas are gone (Spark's SparkListenerExecutorRemoved
// for every container, plus the external-shuffle and HDFS consequences a
// real decommission implies).
type NodeLost struct {
	EventTime
	Node      int   `json:"node"`
	Executors []int `json:"executors"`
}

func (*NodeLost) Name() string { return "NodeLost" }

// SpeculativeTaskLaunched marks the straggler mitigator launching a copy of a
// running task attempt on a different executor (the launch half of Spark's
// speculative task attempts). Part/Attempt identify the original attempt being
// raced; Executor is where the copy runs, Original where the straggler runs.
type SpeculativeTaskLaunched struct {
	EventTime
	Job      uint64 `json:"job"`
	Stage    uint64 `json:"stage"`
	Round    int    `json:"round"`
	Part     int    `json:"part"`
	Attempt  int    `json:"attempt"`
	Executor int    `json:"executor"`
	Original int    `json:"original"`
}

func (*SpeculativeTaskLaunched) Name() string { return "SpeculativeTaskLaunched" }

// TaskKilled marks an attempt killed because the other attempt racing it won
// (Spark's TaskKilled TaskEndReason, "another attempt succeeded"). The killed
// attempt also emits a TaskEnd with Killed set and its span truncated at the
// kill time.
type TaskKilled struct {
	EventTime
	Job      uint64 `json:"job"`
	Stage    uint64 `json:"stage"`
	Round    int    `json:"round"`
	Part     int    `json:"part"`
	Attempt  int    `json:"attempt"`
	Executor int    `json:"executor"`
	Reason   string `json:"reason"`
}

func (*TaskKilled) Name() string { return "TaskKilled" }

// JobCancelled marks a job being torn down by CancelJob or a deadline
// (Spark's SparkListenerJobEnd with JobFailed(SparkException: "cancelled"),
// surfaced as its own event here so cancellations are not conflated with
// failures). It is followed by the terminal JobEnd{Cancelled: true}.
type JobCancelled struct {
	EventTime
	Job    uint64 `json:"job"`
	Action string `json:"action"`
	RDD    string `json:"rdd"`
	Reason string `json:"reason"`
}

func (*JobCancelled) Name() string { return "JobCancelled" }

// eventFactories maps event-log type names back to empty event values;
// ReadEventLog uses it to decode lines.
var eventFactories = map[string]func() Event{
	"JobStart":                func() Event { return &JobStart{} },
	"JobEnd":                  func() Event { return &JobEnd{} },
	"StageSubmitted":          func() Event { return &StageSubmitted{} },
	"StageCompleted":          func() Event { return &StageCompleted{} },
	"StageResubmitted":        func() Event { return &StageResubmitted{} },
	"TaskStart":               func() Event { return &TaskStart{} },
	"TaskEnd":                 func() Event { return &TaskEnd{} },
	"BlockCached":             func() Event { return &BlockCached{} },
	"BlockEvicted":            func() Event { return &BlockEvicted{} },
	"ShuffleSpill":            func() Event { return &ShuffleSpill{} },
	"FetchFailure":            func() Event { return &FetchFailure{} },
	"ExecutorExcluded":        func() Event { return &ExecutorExcluded{} },
	"NodeLost":                func() Event { return &NodeLost{} },
	"SpeculativeTaskLaunched": func() Event { return &SpeculativeTaskLaunched{} },
	"TaskKilled":              func() Event { return &TaskKilled{} },
	"JobCancelled":            func() Event { return &JobCancelled{} },
	"MapOutputStats":          func() Event { return &MapOutputStats{} },
	"AdaptivePlan":            func() Event { return &AdaptivePlan{} },
}

// listenerBus delivers events synchronously to every registered listener, in
// registration order, under one mutex — so listeners observe a single total
// order of events even though tasks execute concurrently.
type listenerBus struct {
	mu        sync.Mutex
	listeners []Listener
}

func (b *listenerBus) add(l Listener) {
	b.mu.Lock()
	b.listeners = append(b.listeners, l)
	b.mu.Unlock()
}

func (b *listenerBus) post(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.listeners {
		l.OnEvent(ev)
	}
}

// emit stamps the event with a virtual timestamp and posts it to the bus.
func (c *Context) emit(t float64, ev Event) {
	ev.setTime(t)
	c.bus.post(ev)
}

// postContextEvent publishes an event originating outside any one task
// (node losses). While a job is running the event is buffered and flushed at
// the next stage barrier, so its position in the log is deterministic even
// though failure plans fire from worker goroutines; between jobs it is
// posted immediately at the current clock.
func (c *Context) postContextEvent(ev Event) {
	c.mu.Lock()
	if c.activeJobs > 0 {
		c.pendingEvents = append(c.pendingEvents, ev)
		c.mu.Unlock()
		return
	}
	t := c.clock
	c.mu.Unlock()
	c.emit(t, ev)
}

// drainContextEvents flushes events buffered by postContextEvent, stamping
// them with the given virtual time.
func (c *Context) drainContextEvents(t float64) {
	c.mu.Lock()
	pending := c.pendingEvents
	c.pendingEvents = nil
	c.mu.Unlock()
	for _, ev := range pending {
		c.emit(t, ev)
	}
}
