// The event log: a JSONL rendering of the bus, one event per line, the
// engine's analogue of Spark's spark.eventLog JSON logs. A log written under
// a fixed Config (Seed and FaultProfile included) is replay-stable: two runs
// produce bit-identical logs once the fields derived from measured host time
// are stripped (StripMeasuredTime), which is what the chaos fingerprint
// tests compare. When concurrent jobs share one log the guarantee is per job:
// the interleaving of lines across jobs follows host timing, but each job's
// own stripped event subsequence is bit-stable. cmd/sparkui re-reads these
// logs into its text Spark-UI, as the History Server replays Spark's.

package rdd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// eventLogLine is the envelope of one log line: the event's type name plus
// its fields.
type eventLogLine struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// MarshalEvent renders one event as a single event-log line (no trailing
// newline).
func MarshalEvent(ev Event) ([]byte, error) {
	data, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	return json.Marshal(eventLogLine{Type: ev.Name(), Data: data})
}

// UnmarshalEvent decodes one event-log line back into its typed event.
func UnmarshalEvent(line []byte) (Event, error) {
	var env eventLogLine
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("rdd: malformed event-log line: %w", err)
	}
	factory, ok := eventFactories[env.Type]
	if !ok {
		return nil, fmt.Errorf("rdd: unknown event type %q", env.Type)
	}
	ev := factory()
	if err := json.Unmarshal(env.Data, ev); err != nil {
		return nil, fmt.Errorf("rdd: decoding %s event: %w", env.Type, err)
	}
	return ev, nil
}

// EventLogWriter is a listener that appends every bus event to w as one JSON
// line — the analogue of enabling spark.eventLog. The mutex around the JSONL
// encoder makes it safe under interleaved jobs: concurrent jobs' events
// interleave in the log line-by-line, never mid-line, and each line lands
// whole. Events carry JobID, so a multi-job log regroups per job (as
// cmd/sparkui does); within one job the event order is the bus's
// deterministic delivery order. The first write error is retained (Err) and
// suppresses further output; Close flushes buffering.
type EventLogWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewEventLogWriter wraps w in an event-log listener.
func NewEventLogWriter(w io.Writer) *EventLogWriter {
	return &EventLogWriter{w: bufio.NewWriter(w)}
}

// OnEvent implements Listener.
func (l *EventLogWriter) OnEvent(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	line, err := MarshalEvent(ev)
	if err == nil {
		_, err = l.w.Write(append(line, '\n'))
	}
	if err != nil {
		l.err = err
	}
}

// Close flushes the underlying writer and returns the first error seen.
func (l *EventLogWriter) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// Err returns the first write or encoding error, if any.
func (l *EventLogWriter) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// ReadEventLog decodes a JSONL event log back into typed events, skipping
// blank lines.
func ReadEventLog(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := UnmarshalEvent(line)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// StripMeasuredTime returns a copy of the event with every field derived
// from measured host time zeroed: timestamps, task spans and compute
// seconds, stage and job durations. What remains — identities, byte
// counters, success/failure shape — is bit-for-bit reproducible for a given
// Config, the event-log counterpart of JobMetrics.WithoutMeasuredTime.
func StripMeasuredTime(ev Event) Event {
	switch e := ev.(type) {
	case *JobEnd:
		c := *e
		c.Time, c.VirtualSeconds = 0, 0
		return &c
	case *StageCompleted:
		c := *e
		c.Time, c.Seconds = 0, 0
		return &c
	case *TaskStart:
		c := *e
		c.Time = 0
		return &c
	case *TaskEnd:
		c := *e
		c.Time, c.StartSec, c.DurationSec, c.ComputeSec = 0, 0, 0, 0
		return &c
	case *JobStart:
		c := *e
		c.Time = 0
		return &c
	case *StageSubmitted:
		c := *e
		c.Time = 0
		return &c
	case *StageResubmitted:
		c := *e
		c.Time = 0
		return &c
	case *BlockCached:
		c := *e
		c.Time = 0
		return &c
	case *BlockEvicted:
		c := *e
		c.Time = 0
		return &c
	case *ShuffleSpill:
		c := *e
		c.Time = 0
		return &c
	case *FetchFailure:
		c := *e
		c.Time = 0
		return &c
	case *ExecutorExcluded:
		c := *e
		c.Time = 0
		return &c
	case *NodeLost:
		c := *e
		c.Time = 0
		return &c
	case *SpeculativeTaskLaunched:
		c := *e
		c.Time = 0
		return &c
	case *TaskKilled:
		c := *e
		c.Time = 0
		return &c
	case *JobCancelled:
		c := *e
		c.Time = 0
		return &c
	case *MapOutputStats:
		c := *e
		c.Time = 0
		c.BytesPerReduce = append([]int64(nil), e.BytesPerReduce...)
		return &c
	case *AdaptivePlan:
		c := *e
		c.Time = 0
		c.Skewed = append([]int(nil), e.Skewed...)
		return &c
	default:
		return ev
	}
}
