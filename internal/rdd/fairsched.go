// Multi-job slot arbitration: the engine's counterpart of Spark's
// spark.scheduler.mode and fairscheduler.xml. A Context may now execute
// several jobs at once (the driver job server submits from concurrent
// goroutines); the arbiter decides how the cluster's virtual core slots are
// divided among them.
//
//   - FIFO (the default, Spark's default): jobs are admitted strictly in
//     submission order and run back-to-back — a job holds the whole cluster
//     until it ends, and later submissions block. Virtual time therefore
//     stacks sequentially, exactly as before this layer existed.
//   - FAIR: jobs are admitted immediately and run concurrently. Each named
//     pool owns a weight and a minShare (in core slots); the cluster's slots
//     are divided among the pools with active jobs in proportion to weight,
//     with every active pool first raised to its minShare, and a pool's share
//     is split evenly among its active jobs. Each stage of a job is then
//     accounted on that reduced per-executor slot count, so two equal-weight
//     jobs each see half the cluster and take ~2x their solo time while both
//     make progress.
//
// Determinism: a job's *logical* execution — stage structure, placement,
// byte counters, its stripped event log — depends only on its own lineage and
// the Config seed, never on what else is running. Slot shares affect only
// virtual durations and timestamps, which StripMeasuredTime removes; the
// fractional-slot rounding that shares force is broken by a seeded hash of
// (job, executor), not by map order, so a fixed seed and job set replays the
// same virtual timeline. Under FIFO the whole schedule is replayable since
// jobs never overlap.

package rdd

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// SchedulerMode selects how concurrent jobs share the cluster, as Spark's
// spark.scheduler.mode does.
type SchedulerMode int

const (
	// SchedFIFO runs jobs strictly back-to-back in submission order.
	SchedFIFO SchedulerMode = iota
	// SchedFAIR runs jobs concurrently, dividing core slots among pools by
	// weight and minShare.
	SchedFAIR
)

// String renders the mode the way Spark spells it.
func (m SchedulerMode) String() string {
	if m == SchedFAIR {
		return "FAIR"
	}
	return "FIFO"
}

// ParseSchedulerMode parses "fifo" or "fair" (any case).
func ParseSchedulerMode(s string) (SchedulerMode, error) {
	switch s {
	case "fifo", "FIFO", "Fifo":
		return SchedFIFO, nil
	case "fair", "FAIR", "Fair":
		return SchedFAIR, nil
	}
	return SchedFIFO, fmt.Errorf("rdd: unknown scheduler mode %q (want fifo or fair)", s)
}

// DefaultPool is the pool jobs run in when none is named, as with Spark's
// implicitly created "default" pool.
const DefaultPool = "default"

// PoolSpec declares one scheduling pool — one <pool> element of Spark's
// fairscheduler.xml.
type PoolSpec struct {
	Name string
	// Weight is the pool's share relative to other pools; zero selects 1.
	Weight int
	// MinShare is a floor, in core slots, the pool is raised to whenever it
	// has active jobs, regardless of weight. Zero means no floor.
	MinShare int
}

func (p PoolSpec) weight() float64 {
	if p.Weight <= 0 {
		return 1
	}
	return float64(p.Weight)
}

// SchedulerConfig configures multi-job arbitration on a Context.
type SchedulerConfig struct {
	Mode SchedulerMode
	// Pools declares the named pools available to RunInPool. Jobs naming an
	// undeclared pool fall into an implicit weight-1 pool of that name, as
	// Spark creates pools with default parameters on first use.
	Pools []PoolSpec
}

// jobArbiter owns the admission queue and the share computation. One lives on
// every Context; under FIFO it degenerates to a ticket lock.
type jobArbiter struct {
	mode  SchedulerMode
	pools map[string]PoolSpec
	seed  uint64

	mu   sync.Mutex
	cond *sync.Cond

	nextTicket uint64 // next ticket to hand out
	serving    uint64 // FIFO: the ticket currently allowed to run

	// abandoned marks FIFO tickets whose submitter was cancelled while
	// queued; jobEnded skips them when passing the baton.
	abandoned map[uint64]bool

	// active maps running job id → pool name; activeByPool counts them.
	active       map[uint64]string
	activeByPool map[string]int
}

func newJobArbiter(cfg SchedulerConfig, seed uint64) *jobArbiter {
	a := &jobArbiter{
		mode:         cfg.Mode,
		pools:        map[string]PoolSpec{},
		seed:         seed,
		abandoned:    map[uint64]bool{},
		active:       map[uint64]string{},
		activeByPool: map[string]int{},
	}
	a.cond = sync.NewCond(&a.mu)
	for _, p := range cfg.Pools {
		if p.Name != "" {
			a.pools[p.Name] = p
		}
	}
	return a
}

func (a *jobArbiter) poolSpec(name string) PoolSpec {
	if p, ok := a.pools[name]; ok {
		return p
	}
	return PoolSpec{Name: name}
}

// admit blocks until the job may start, returning false if the submitter's
// cancellation token fired while it was still queued (its ticket is then
// abandoned and skipped by jobEnded). FIFO admits strictly in ticket order —
// one job at a time, so later submissions wait for every earlier job to end.
// FAIR admits immediately. A nil token never cancels.
func (a *jobArbiter) admit(tok *jobCancel) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	ticket := a.nextTicket
	a.nextTicket++
	if a.mode != SchedFIFO || a.serving == ticket {
		return true
	}
	if tok != nil {
		// Waker: turn the token firing into a cond broadcast so the wait
		// loop below re-checks. Stopped when admit returns (close does not
		// block, and runs before the mutex defer releases).
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-tok.done:
				a.mu.Lock()
				a.cond.Broadcast()
				a.mu.Unlock()
			case <-stop:
			}
		}()
	}
	for a.serving != ticket {
		if tok.cancelled() {
			a.abandoned[ticket] = true
			return false
		}
		a.cond.Wait()
	}
	return true
}

// jobStarted registers an admitted job as active in its pool.
func (a *jobArbiter) jobStarted(job uint64, pool string) {
	a.mu.Lock()
	a.active[job] = pool
	a.activeByPool[pool]++
	a.mu.Unlock()
}

// jobEnded removes the job and, under FIFO, passes the baton to the next
// ticket in line.
func (a *jobArbiter) jobEnded(job uint64) {
	a.mu.Lock()
	if pool, ok := a.active[job]; ok {
		delete(a.active, job)
		if a.activeByPool[pool]--; a.activeByPool[pool] == 0 {
			delete(a.activeByPool, pool)
		}
	}
	if a.mode == SchedFIFO {
		a.serving++
		for a.abandoned[a.serving] {
			delete(a.abandoned, a.serving)
			a.serving++
		}
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// slotFraction returns the share of the cluster's core slots the job may use
// right now: 1 under FIFO (jobs never overlap) or when the job runs alone,
// otherwise the FAIR share of its pool divided among the pool's active jobs.
// totalSlots is the live cluster slot count.
func (a *jobArbiter) slotFraction(job uint64, totalSlots int) float64 {
	if a.mode == SchedFIFO || totalSlots <= 0 {
		return 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	pool, ok := a.active[job]
	if !ok || len(a.active) <= 1 {
		return 1
	}
	// Weight-proportional shares over pools with active jobs, every active
	// pool first raised to its minShare (Spark's FairSchedulingAlgorithm
	// prioritises pools below minShare; raising the floor models that
	// steady state).
	var weightSum float64
	for name := range a.activeByPool {
		weightSum += a.poolSpec(name).weight()
	}
	spec := a.poolSpec(pool)
	share := float64(totalSlots) * spec.weight() / weightSum
	if min := float64(spec.MinShare); share < min {
		share = min
	}
	if share > float64(totalSlots) {
		share = float64(totalSlots)
	}
	frac := share / float64(a.activeByPool[pool]) / float64(totalSlots)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// stageSlots converts the job's current slot fraction into an integer slot
// count on one executor with the given core count. The fractional remainder
// is rounded up or down by a seeded hash of (job, executor) — a deterministic
// tie-break, so a fixed seed and job set produce the same virtual timeline —
// and the result is clamped to [1, cores] so every running job always owns at
// least one slot per executor it is placed on (no virtual starvation).
func (a *jobArbiter) stageSlots(job uint64, executor, cores, totalSlots int) int {
	frac := a.slotFraction(job, totalSlots)
	exact := float64(cores) * frac
	slots := int(exact)
	if rem := exact - float64(slots); rem > 0 && a.tieDraw(job, executor) < rem {
		slots++
	}
	if slots < 1 {
		slots = 1
	}
	if slots > cores {
		slots = cores
	}
	return slots
}

// tieDraw is a uniform [0,1) draw that depends only on the seed, the job, and
// the executor — never on scheduling order.
func (a *jobArbiter) tieDraw(job uint64, executor int) float64 {
	h := mix64(a.seed ^ mix64(job+0x51ed) ^ mix64(uint64(executor)+0x9e3779b97f4a7c15))
	return float64(h>>11) / float64(1<<53)
}

// ---- goroutine-scoped job submission properties ----
//
// Spark attributes a job to a pool through a thread-local property
// (spark.scheduler.pool) set on the submitting thread. The Go analogue keys
// the property by goroutine id for the duration of a RunInPool call; actions
// invoked inside the closure — on the same goroutine, however deep the call
// chain — submit their jobs into that pool.

// RunInPool runs fn with every job it submits (from this goroutine) assigned
// to the named scheduling pool. Calls nest: the previous pool is restored on
// return. An empty name means the default pool.
func (c *Context) RunInPool(pool string, fn func() error) error {
	g := gid()
	prev, had := c.localPools.Load(g)
	c.localPools.Store(g, pool)
	defer func() {
		if had {
			c.localPools.Store(g, prev)
		} else {
			c.localPools.Delete(g)
		}
	}()
	return fn()
}

// currentPool resolves the submitting goroutine's pool, defaulting to
// DefaultPool.
func (c *Context) currentPool() string {
	if v, ok := c.localPools.Load(gid()); ok {
		if name := v.(string); name != "" {
			return name
		}
	}
	return DefaultPool
}

// JobSpan is one job's position on the virtual clock, reported by
// ObserveJobs: the serving layer uses it to measure per-request virtual-time
// latency (queue wait shows up as StartVirtual minus the clock at submission).
type JobSpan struct {
	Job          uint64
	Pool         string
	Action       string
	StartVirtual float64 // virtual clock when the job was admitted
	EndVirtual   float64 // virtual clock at its JobEnd
	Failed       bool
}

// ObserveJobs runs fn and returns the virtual-time spans of every job the
// closure submitted from this goroutine, in completion order. It composes
// with RunInPool in either nesting order.
func (c *Context) ObserveJobs(fn func() error) ([]JobSpan, error) {
	g := gid()
	col := &spanCollector{}
	prev, had := c.jobObservers.Load(g)
	c.jobObservers.Store(g, col)
	defer func() {
		if had {
			c.jobObservers.Store(g, prev)
		} else {
			c.jobObservers.Delete(g)
		}
	}()
	err := fn()
	return col.spans, err
}

type spanCollector struct {
	mu    sync.Mutex
	spans []JobSpan
}

// noteJobSpan records the finished job on the submitting goroutine's
// collector, if one is registered. Called from runJob's endJob, which runs on
// the submitting goroutine.
func (c *Context) noteJobSpan(s JobSpan) {
	if v, ok := c.jobObservers.Load(gid()); ok {
		col := v.(*spanCollector)
		col.mu.Lock()
		col.spans = append(col.spans, s)
		col.mu.Unlock()
	}
}

// gid returns the current goroutine's id, parsed from the runtime stack
// header ("goroutine N [running]:"). It is the standard trick for
// thread-local-like properties; the cost (~1µs) is paid once per job
// submission and pool lookup, never per task.
func gid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	b := buf[:n]
	b = b[len("goroutine "):]
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		b = b[:i]
	}
	id, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		panic(fmt.Sprintf("rdd: cannot parse goroutine id from %q", buf[:n]))
	}
	return id
}
