package rdd

import (
	"fmt"
	"sort"
	"testing"

	"sparkscore/internal/cluster"
)

func TestCartesianContents(t *testing.T) {
	c := newTestContext(t, 2)
	left := Parallelize(c, []int{10, 20, 30}, 2)
	right := Parallelize(c, []string{"a", "b"}, 2)
	prod := Cartesian(left, right)
	if got, want := prod.Partitions(), 4; got != want {
		t.Fatalf("partitions = %d, want %d", got, want)
	}
	got, err := Collect(prod)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("collected %d pairs, want 6", len(got))
	}
	seen := map[string]bool{}
	for _, p := range got {
		seen[fmt.Sprintf("%d%s", p.Left, p.Right)] = true
	}
	for _, want := range []string{"10a", "10b", "20a", "20b", "30a", "30b"} {
		if !seen[want] {
			t.Fatalf("missing pair %s (got %v)", want, got)
		}
	}
}

// TestCartesianPartitionOrderDeterministic pins the partition layout: output
// partition i*rightParts+j holds left partition i crossed with right
// partition j, rights innermost — the order the assoc merge relies on.
func TestCartesianPartitionOrderDeterministic(t *testing.T) {
	c := newTestContext(t, 2)
	left := Parallelize(c, []int{1, 2, 3, 4}, 2)  // partitions {1,2} {3,4}
	right := Parallelize(c, []int{10, 20, 30}, 3) // {10} {20} {30}
	got, err := Collect(Cartesian(left, right))
	if err != nil {
		t.Fatal(err)
	}
	var flat []int
	for _, p := range got {
		flat = append(flat, p.Left*100+p.Right)
	}
	want := []int{
		110, 210, // part 0: left{1,2} × right{10}
		120, 220, // part 1: left{1,2} × right{20}
		130, 230,
		310, 410,
		320, 420,
		330, 430,
	}
	if len(flat) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(flat), len(want))
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("pair %d = %d, want %d (full: %v)", i, flat[i], want[i], flat)
		}
	}
}

func TestCartesianComposesWithShuffleAndActions(t *testing.T) {
	c := newTestContext(t, 2)
	left := Parallelize(c, seq(20), 4)
	right := Parallelize(c, seq(5), 2)
	prod := Cartesian(left, right)
	sums := Map(prod, "sum", func(p Pair[int, int]) KV[int, int] {
		return KV[int, int]{K: p.Left % 3, V: p.Right}
	})
	counts, err := CountByKey(sums)
	if err != nil {
		t.Fatal(err)
	}
	// 20 lefts × 5 rights = 100 pairs; keys 0,1 get 7 lefts, key 2 gets 6.
	if counts[0] != 35 || counts[1] != 35 || counts[2] != 30 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCartesianWithCachedSide(t *testing.T) {
	c := newTestContext(t, 2)
	right := Map(Parallelize(c, seq(4), 2), "sq", func(x int) int { return x * x }).Cache()
	left := Parallelize(c, seq(6), 3)
	n, err := Count(Cartesian(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if n != 24 {
		t.Fatalf("count = %d, want 24", n)
	}
	// Second job reuses the cached right side.
	n2, err := Count(Cartesian(left, right))
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 24 {
		t.Fatalf("recount = %d, want 24", n2)
	}
}

// TestCartesianUnderFaults runs the cross join under the chaos profile and
// checks the result set is unchanged: a lost output partition recomputes from
// its two lineage partitions.
func TestCartesianUnderFaults(t *testing.T) {
	collect := func(faults FaultProfile) []int {
		c, err := New(Config{
			Cluster: cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
			Seed:    11,
			Faults:  faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		left := Parallelize(c, seq(30), 5)
		right := Parallelize(c, seq(7), 3)
		got, err := Collect(Cartesian(left, right))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(got))
		for i, p := range got {
			out[i] = p.Left*1000 + p.Right
		}
		sort.Ints(out)
		return out
	}
	clean := collect(FaultProfile{})
	chaos := collect(FaultProfile{TaskCrashProb: 0.15, FetchFailureProb: 0.1, StragglerProb: 0.1})
	if len(clean) != len(chaos) {
		t.Fatalf("chaos changed pair count: %d vs %d", len(clean), len(chaos))
	}
	for i := range clean {
		if clean[i] != chaos[i] {
			t.Fatalf("pair %d differs under faults: %d vs %d", i, clean[i], chaos[i])
		}
	}
}
