// Output action: writing an RDD back to the distributed file system, the
// way Spark jobs persist results (saveAsTextFile with one part-NNNNN file
// per partition, concatenated here into a single DFS file since our DFS
// models files, not directories).

package rdd

import (
	"fmt"
	"strings"
)

// SaveAsTextFile formats every element with format (one per line, in
// partition order) and writes the result to the context's file system under
// name. It is an action: it runs a job and materialises the RDD.
func SaveAsTextFile[T any](r *RDD[T], name string, format func(T) string) error {
	if name == "" {
		return fmt.Errorf("rdd: empty output name")
	}
	parts := make([][]T, r.n.parts)
	if err := r.n.ctx.runJob(r.n, "saveAsTextFile", func(p int, v any) {
		parts[p] = v.([]T)
	}); err != nil {
		return err
	}
	var sb strings.Builder
	for _, part := range parts {
		for _, v := range part {
			sb.WriteString(format(v))
			sb.WriteByte('\n')
		}
	}
	_, err := r.n.ctx.fs.Write(name, []byte(sb.String()))
	return err
}

// Checkpoint materialises the RDD to the distributed file system and returns
// a new RDD reading from that file — Spark's reliable checkpointing, which
// truncates lineage: downstream computations (and failure recovery) restart
// from the persisted copy instead of the original dependency chain. encode
// and decode must round-trip an element through one text line.
func Checkpoint[T any](r *RDD[T], name string, encode func(T) string, decode func(string) (T, error)) (*RDD[T], error) {
	if err := SaveAsTextFile(r, name, encode); err != nil {
		return nil, err
	}
	lines, err := r.n.ctx.TextFile(name, r.n.parts)
	if err != nil {
		return nil, err
	}
	out := Map(lines, "checkpoint:"+name, func(line string) T {
		v, err := decode(line)
		if err != nil {
			panic(fmt.Sprintf("rdd: checkpoint %s: %v", name, err))
		}
		return v
	})
	out.n.bytesPerElem = r.n.bytesPerElem
	return out, nil
}
