// Output action: writing an RDD back to the distributed file system, the
// way Spark jobs persist results (saveAsTextFile with one part-NNNNN file
// per partition, concatenated here into a single DFS file since our DFS
// models files, not directories).

package rdd

import (
	"fmt"
	"iter"
	"strings"
)

// SaveAsTextFile formats every element with format (one per line, in
// partition order) and writes the result to the context's file system under
// name. It is an action; each task streams its partition straight into its
// formatted "part file" (the formatted text is the materialisation, not an
// element slice).
func SaveAsTextFile[T any](r *RDD[T], name string, format func(T) string) error {
	if name == "" {
		return fmt.Errorf("rdd: empty output name")
	}
	parts := make([]string, r.n.parts)
	if err := runSeqJob(r.n, "saveAsTextFile", func(tc *taskContext, s iter.Seq[T]) any {
		var sb strings.Builder
		for v := range s {
			sb.WriteString(format(v))
			sb.WriteByte('\n')
		}
		tc.noteMaterialized(int64(sb.Len()))
		return sb.String()
	}, func(p int, v any) {
		parts[p] = v.(string)
	}); err != nil {
		return err
	}
	_, err := r.n.ctx.fs.Write(name, []byte(strings.Join(parts, "")))
	return err
}

// Checkpoint materialises the RDD to the distributed file system and returns
// a new RDD reading from that file — Spark's reliable checkpointing, which
// truncates lineage: downstream computations (and failure recovery) restart
// from the persisted copy instead of the original dependency chain. encode
// and decode must round-trip an element through one text line.
func Checkpoint[T any](r *RDD[T], name string, encode func(T) string, decode func(string) (T, error)) (*RDD[T], error) {
	if err := SaveAsTextFile(r, name, encode); err != nil {
		return nil, err
	}
	lines, err := r.n.ctx.TextFile(name, r.n.parts)
	if err != nil {
		return nil, err
	}
	out := Map(lines, "checkpoint:"+name, func(line string) T {
		v, err := decode(line)
		if err != nil {
			panic(fmt.Sprintf("rdd: checkpoint %s: %v", name, err))
		}
		return v
	})
	out.n.bytesPerElem = r.n.bytesPerElem
	return out, nil
}
