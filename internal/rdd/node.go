// Lineage nodes and task contexts. A node is the untyped core of an RDD: its
// partition count, its dependencies, and a compute closure that materialises
// one partition. Typed transformations (rdd.go) wrap nodes; narrow chains
// pipeline automatically because each compute closure pulls from its parent's
// iterate, and iterate consults the block manager first when the node is
// cached — which is exactly how a cached RDD short-circuits its lineage.

package rdd

import (
	"fmt"
	"sync/atomic"
)

// defaultBytesPerElem is the size estimate used for cache accounting and
// shuffle cost when a node has no explicit hint.
const defaultBytesPerElem = 64

type node struct {
	id   int
	ctx  *Context
	name string

	parts int

	// narrowParents are pulled directly inside compute (pipelined).
	narrowParents []*node
	// shuffleIn lists the shuffle dependencies whose outputs compute reads.
	shuffleIn []*shuffleDep

	compute func(tc *taskContext, p int) any

	// count extracts the element count from a materialised partition (the
	// typed wrapper knows the slice type).
	count func(v any) int

	// cacheLevel: 0 = no persistence, 1 = MEMORY_ONLY, 2 = MEMORY_AND_DISK.
	cacheLevel   atomic.Int32
	bytesPerElem int64

	// prefNodes returns the cluster nodes holding partition p's input (HDFS
	// block locations); nil for computed RDDs.
	prefNodes func(p int) []int
}

func (c *Context) newNode(name string, parts int, count func(any) int) *node {
	if parts <= 0 {
		panic(fmt.Sprintf("rdd: node %q with %d partitions", name, parts))
	}
	return &node{
		id:           c.newNodeID(),
		ctx:          c,
		name:         name,
		parts:        parts,
		count:        count,
		bytesPerElem: defaultBytesPerElem,
	}
}

// estBytes estimates the in-memory size of a materialised partition.
func (n *node) estBytes(v any) int64 {
	return int64(n.count(v)) * n.bytesPerElem
}

// iterate returns partition p, serving it from the cache when possible and
// recording the block on the executing executor after a cache miss. This is
// the lineage/fault-tolerance pivot: a lost block simply recomputes. Blocks
// demoted to disk under MEMORY_AND_DISK are served at disk (or network)
// speed instead of memory speed.
func (n *node) iterate(tc *taskContext, p int) any {
	level := n.cacheLevel.Load()
	if level == 0 {
		return n.compute(tc, p)
	}
	key := blockKey{rdd: n.id, part: p}
	if v, holder, onDisk, ok := n.ctx.blocks.get(key); ok {
		bytes := n.estBytes(v)
		local := n.ctx.cluster.Executor(holder).Node == tc.node()
		switch {
		case onDisk && local:
			tc.cacheDiskLocalByte += bytes
		case onDisk:
			tc.cacheRemoteBytes += bytes
		case local:
			tc.cacheLocalBytes += bytes
		default:
			tc.cacheRemoteBytes += bytes
		}
		return v
	}
	v := n.compute(tc, p)
	n.ctx.blocks.put(tc.executor, key, v, n.estBytes(v), level == 2)
	return v
}

// preferredExecutors walks the narrow lineage looking for placement hints:
// a cached block's holder first, then HDFS block locations.
func (n *node) preferredExecutors(p int) []int {
	if n.cacheLevel.Load() != 0 {
		if _, holder, _, ok := n.ctx.blocks.get(blockKey{rdd: n.id, part: p}); ok {
			return []int{holder}
		}
	}
	if n.prefNodes != nil {
		var execs []int
		for _, nd := range n.prefNodes(p) {
			execs = append(execs, n.ctx.cluster.ExecutorsOnNode(nd)...)
		}
		return execs
	}
	for _, parent := range n.narrowParents {
		if parent.parts == n.parts {
			if pref := parent.preferredExecutors(p); len(pref) > 0 {
				return pref
			}
		}
	}
	return nil
}

// shuffleDeps returns every shuffle dependency reachable from n without
// crossing another shuffle boundary — the inputs of n's stage.
func (n *node) stageShuffleDeps() []*shuffleDep {
	var out []*shuffleDep
	seen := map[int]bool{}
	var walk func(m *node)
	walk = func(m *node) {
		if seen[m.id] {
			return
		}
		seen[m.id] = true
		out = append(out, m.shuffleIn...)
		for _, p := range m.narrowParents {
			walk(p)
		}
	}
	walk(n)
	return out
}

// taskContext carries the executing executor and accumulates the cost
// drivers of one task; the scheduler converts them to virtual seconds. The
// identity fields (job, stage, round, part, attempt) name the decision point
// for deterministic fault injection: they, not scheduling order, decide
// whether a fault fires.
type taskContext struct {
	ctx      *Context
	executor int

	job     uint64 // job sequence number within the context
	stage   uint64 // shuffle id for map stages, 0 for the result stage
	round   int    // DAG attempt (0 = first submission, +1 per resubmission)
	part    int    // partition the task computes
	attempt int    // task attempt within the stage, 1-based

	dfsLocalBytes      int64
	dfsRemoteBytes     int64
	shuffleLocalBytes  int64
	shuffleRemoteByte  int64
	cacheLocalBytes    int64
	cacheDiskLocalByte int64 // MEMORY_AND_DISK blocks read from local disk
	cacheRemoteBytes   int64
	shipBytes          int64 // driver-to-executor payload (Parallelize)
}

func (tc *taskContext) node() int {
	return tc.ctx.cluster.Executor(tc.executor).Node
}

// workBytes is the task's total data touch, the driver of the spill model.
func (tc *taskContext) workBytes() int64 {
	return tc.dfsLocalBytes + tc.dfsRemoteBytes +
		tc.shuffleLocalBytes + tc.shuffleRemoteByte +
		tc.cacheLocalBytes + tc.cacheDiskLocalByte + tc.cacheRemoteBytes + tc.shipBytes
}
