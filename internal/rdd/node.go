// Lineage nodes and task contexts. A node is the untyped core of an RDD: its
// partition count, its dependencies, and a compute closure that produces a
// partition *cursor* — a boxed iter.Seq[T] that yields the partition's
// elements one at a time. Narrow chains fuse automatically: each compute
// closure wraps its parent's cursor in another lazy sequence, so a chain of
// maps and filters executes in a single pass over the data with no
// intermediate slices. Elements materialise only at pipeline breakers —
// block-manager cache puts (iterate), shuffle bucket writes, and action
// boundaries — which is exactly where Spark's own pipelined execution
// materialises.

package rdd

import (
	"fmt"
	"sync/atomic"
)

// defaultBytesPerElem is the size estimate used for cache accounting and
// shuffle cost when a node has no explicit hint.
const defaultBytesPerElem = 64

type node struct {
	id   int
	ctx  *Context
	name string

	parts int

	// narrowParents are pulled directly inside compute (pipelined).
	narrowParents []*node
	// shuffleIn lists the shuffle dependencies whose outputs compute reads.
	shuffleIn []*shuffleDep

	// compute returns partition p as a boxed iter.Seq[T]. The sequence is
	// single-use per compute call: stateful operators (Sample) reset their
	// state inside the closure, so recomputation replays identically.
	compute func(tc *taskContext, p int) any

	// count extracts the element count from a materialised partition (the
	// typed wrapper knows the slice type).
	count func(v any) int
	// materialize drains a boxed iter.Seq[T] into a boxed []T — the typed
	// half of a pipeline breaker.
	materialize func(v any) any
	// fromSlice wraps a materialised boxed []T (a cached block) back into a
	// boxed iter.Seq[T] so cached partitions feed the same cursor pipeline.
	fromSlice func(v any) any

	// fusedDepth is the length of the narrow operator chain this node
	// terminates (1 for sources and shuffle outputs, parent+1 for fused
	// narrow operators). Reported as JobMetrics.MaxFusedChain.
	fusedDepth int

	// cacheLevel: 0 = no persistence, 1 = MEMORY_ONLY, 2 = MEMORY_AND_DISK.
	cacheLevel   atomic.Int32
	bytesPerElem int64
	// sizeSlice, when set, sums per-element sizes over a materialised boxed
	// []T (SetSizeFunc) — exact accounting for variable-size elements such as
	// columnar blocks, whose partial tails a flat hint would overcharge.
	sizeSlice func(v any) int64

	// prefNodes returns the cluster nodes holding partition p's input (HDFS
	// block locations); nil for computed RDDs.
	prefNodes func(p int) []int
}

func (c *Context) newNode(name string, parts int) *node {
	if parts <= 0 {
		panic(fmt.Sprintf("rdd: node %q with %d partitions", name, parts))
	}
	return &node{
		id:           c.newNodeID(),
		ctx:          c,
		name:         name,
		parts:        parts,
		fusedDepth:   1,
		bytesPerElem: defaultBytesPerElem,
	}
}

// estBytes estimates the in-memory size of a materialised partition.
func (n *node) estBytes(v any) int64 {
	if n.sizeSlice != nil {
		return n.sizeSlice(v)
	}
	return int64(n.count(v)) * n.bytesPerElem
}

// iterate returns partition p as a boxed iter.Seq[T], serving it from the
// cache when possible and recording the block on the executing executor after
// a cache miss. This is the lineage/fault-tolerance pivot: a lost block
// simply recomputes. An uncached node passes its lazy cursor straight
// through (fusion); a cached node is a pipeline breaker — the cursor is
// drained into a slice for the block manager and the slice is re-wrapped.
func (n *node) iterate(tc *taskContext, p int) any {
	tc.noteFused(n.fusedDepth)
	level := n.cacheLevel.Load()
	if level == 0 {
		return n.compute(tc, p)
	}
	key := blockKey{rdd: n.id, part: p}
	if v, holder, onDisk, ok := n.ctx.blocks.get(key); ok {
		bytes := n.estBytes(v)
		local := n.ctx.cluster.Executor(holder).Node == tc.node()
		switch {
		case onDisk && local:
			tc.cacheDiskLocalBytes += bytes
		case onDisk:
			tc.cacheRemoteBytes += bytes
		case local:
			tc.cacheLocalBytes += bytes
		default:
			tc.cacheRemoteBytes += bytes
		}
		return n.fromSlice(v)
	}
	v := n.materialize(n.compute(tc, p))
	bytes := n.estBytes(v)
	tc.noteMaterialized(bytes)
	stored, onDisk, evicted := n.ctx.blocks.put(tc.executor, key, v, bytes, level == 2)
	for _, b := range evicted {
		tc.emit(&BlockEvicted{Job: tc.job, RDD: b.key.rdd, Part: b.key.part, Executor: b.executor, Bytes: b.bytes})
	}
	if stored {
		tc.emit(&BlockCached{Job: tc.job, RDD: n.id, Part: p, Executor: tc.executor, Bytes: bytes, OnDisk: onDisk})
	}
	return n.fromSlice(v)
}

// preferredExecutors walks the narrow lineage looking for placement hints:
// a cached block's holder first, then HDFS block locations.
func (n *node) preferredExecutors(p int) []int {
	if n.cacheLevel.Load() != 0 {
		if _, holder, _, ok := n.ctx.blocks.get(blockKey{rdd: n.id, part: p}); ok {
			return []int{holder}
		}
	}
	if n.prefNodes != nil {
		var execs []int
		for _, nd := range n.prefNodes(p) {
			execs = append(execs, n.ctx.cluster.ExecutorsOnNode(nd)...)
		}
		return execs
	}
	for _, parent := range n.narrowParents {
		if parent.parts == n.parts {
			if pref := parent.preferredExecutors(p); len(pref) > 0 {
				return pref
			}
		}
	}
	return nil
}

// shuffleDeps returns every shuffle dependency reachable from n without
// crossing another shuffle boundary — the inputs of n's stage.
func (n *node) stageShuffleDeps() []*shuffleDep {
	var out []*shuffleDep
	seen := map[int]bool{}
	var walk func(m *node)
	walk = func(m *node) {
		if seen[m.id] {
			return
		}
		seen[m.id] = true
		out = append(out, m.shuffleIn...)
		for _, p := range m.narrowParents {
			walk(p)
		}
	}
	walk(n)
	return out
}

// taskContext carries the executing executor and accumulates the cost
// drivers of one task; the scheduler converts them to virtual seconds. The
// identity fields (job, stage, round, part, attempt) name the decision point
// for deterministic fault injection: they, not scheduling order, decide
// whether a fault fires.
type taskContext struct {
	ctx      *Context
	executor int

	job     uint64 // job sequence number within the context
	stage   uint64 // shuffle id for map stages, 0 for the result stage
	round   int    // DAG attempt (0 = first submission, +1 per resubmission)
	part    int    // partition the task computes
	attempt int    // task attempt within the stage, 1-based

	dfsLocalBytes       int64
	dfsRemoteBytes      int64
	shuffleLocalBytes   int64
	shuffleRemoteBytes  int64
	cacheLocalBytes     int64
	cacheDiskLocalBytes int64 // MEMORY_AND_DISK blocks read from local disk
	cacheRemoteBytes    int64
	shipBytes           int64 // driver-to-executor payload (Parallelize)

	// materializedBytes totals the bytes this task materialised at pipeline
	// breakers (cache puts, shuffle bucket writes, action boundaries). A
	// fully fused narrow chain ending in a streaming action materialises
	// nothing; the seed's slice-per-operator path materialised every
	// intermediate. The per-task maximum surfaces as
	// JobMetrics.PeakMaterializedBytes.
	materializedBytes int64
	// fusedChain is the longest fused narrow chain this task drove.
	fusedChain int

	// Execution-memory accounting. execReserved is the task's outstanding
	// grant from the memory manager, released when the attempt ends;
	// execPeak is its high-water mark. shuffleBufferPeak is the largest
	// shuffle buffer (sort) or bucket set (hash) the task held; spilledBytes
	// and spillCount record sorted runs written under memory pressure.
	execReserved      int64
	execPeak          int64
	shuffleBufferPeak int64
	spilledBytes      int64
	spillCount        int

	// events buffers the events this attempt produced (cache puts,
	// evictions, fetch failures). Tasks run concurrently, so publishing from
	// here would race; the scheduler flushes the buffer to the bus during
	// its deterministic accounting pass, between the attempt's TaskStart and
	// TaskEnd.
	events []Event
}

// emit buffers an event on the attempt; the scheduler publishes it later at
// a deterministic log position.
func (tc *taskContext) emit(ev Event) {
	tc.events = append(tc.events, ev)
}

// snapshot freezes the attempt's cost counters into the TaskMetrics carried
// by its TaskEnd event.
func (tc *taskContext) snapshot() TaskMetrics {
	return TaskMetrics{
		DFSLocalBytes:       tc.dfsLocalBytes,
		DFSRemoteBytes:      tc.dfsRemoteBytes,
		ShuffleLocalBytes:   tc.shuffleLocalBytes,
		ShuffleRemoteBytes:  tc.shuffleRemoteBytes,
		CacheLocalBytes:     tc.cacheLocalBytes,
		CacheDiskLocalBytes: tc.cacheDiskLocalBytes,
		CacheRemoteBytes:    tc.cacheRemoteBytes,
		ShipBytes:           tc.shipBytes,
		MaterializedBytes:   tc.materializedBytes,
		FusedChain:          tc.fusedChain,
		SpilledBytes:        tc.spilledBytes,
		SpillCount:          tc.spillCount,
		ShuffleBufferBytes:  tc.shuffleBufferPeak,
		ExecutionPeakBytes:  tc.execPeak,
	}
}

// acquireExecution asks the memory manager for execution memory on the
// task's executor, publishing any evictions the acquisition caused and
// updating the task's grant accounting. A false return under acqSpill or
// acqMustFit means the pool (after any eviction the mode allows) cannot
// cover the request.
func (tc *taskContext) acquireExecution(bytes int64, mode acqMode) bool {
	ok, evicted := tc.ctx.blocks.acquireExecution(tc.executor, bytes, mode)
	for _, b := range evicted {
		tc.emit(&BlockEvicted{Job: tc.job, RDD: b.key.rdd, Part: b.key.part, Executor: b.executor, Bytes: b.bytes})
	}
	if !ok {
		return false
	}
	tc.execReserved += bytes
	if tc.execReserved > tc.execPeak {
		tc.execPeak = tc.execReserved
	}
	return true
}

// releaseExecution returns part of the task's execution grant to the pool.
func (tc *taskContext) releaseExecution(bytes int64) {
	tc.ctx.blocks.releaseExecution(tc.executor, bytes)
	tc.execReserved -= bytes
}

// releaseAllExecution returns the task's whole outstanding grant; the
// scheduler calls it when the attempt ends, success or panic alike.
func (tc *taskContext) releaseAllExecution() {
	if tc.execReserved > 0 {
		tc.ctx.blocks.releaseExecution(tc.executor, tc.execReserved)
		tc.execReserved = 0
	}
}

// noteShuffleBuffer records a shuffle buffer high-water mark.
func (tc *taskContext) noteShuffleBuffer(bytes int64) {
	if bytes > tc.shuffleBufferPeak {
		tc.shuffleBufferPeak = bytes
	}
}

func (tc *taskContext) node() int {
	return tc.ctx.cluster.Executor(tc.executor).Node
}

func (tc *taskContext) noteMaterialized(bytes int64) {
	tc.materializedBytes += bytes
}

func (tc *taskContext) noteFused(depth int) {
	if depth > tc.fusedChain {
		tc.fusedChain = depth
	}
}

// workBytes is the task's total data touch, the driver of the spill model.
func (tc *taskContext) workBytes() int64 {
	return tc.dfsLocalBytes + tc.dfsRemoteBytes +
		tc.shuffleLocalBytes + tc.shuffleRemoteBytes +
		tc.cacheLocalBytes + tc.cacheDiskLocalBytes + tc.cacheRemoteBytes + tc.shipBytes
}
