package rdd

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"sparkscore/internal/cluster"
)

func newTestContext(t testing.TB, nodes int) *Context {
	t.Helper()
	c, err := New(Config{
		Cluster: cluster.Config{Nodes: nodes, Spec: cluster.M3TwoXLarge},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	c := newTestContext(t, 2)
	in := seq(100)
	got, err := Collect(Parallelize(c, in, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("collected %d elements", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d = %d (partition order not preserved)", i, v)
		}
	}
}

func TestParallelizeCopiesInput(t *testing.T) {
	c := newTestContext(t, 1)
	in := []int{1, 2, 3}
	r := Parallelize(c, in, 2)
	in[0] = 99
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("caller mutation leaked into the RDD")
	}
}

func TestParallelizeMorePartitionsThanElements(t *testing.T) {
	c := newTestContext(t, 2)
	got, err := Collect(Parallelize(c, []int{1, 2}, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestMap(t *testing.T) {
	c := newTestContext(t, 2)
	r := Map(Parallelize(c, seq(50), 5), "sq", func(x int) int { return x * x })
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestFilter(t *testing.T) {
	c := newTestContext(t, 2)
	r := Filter(Parallelize(c, seq(20), 4), "even", func(x int) bool { return x%2 == 0 })
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("kept %d elements, want 10", len(got))
	}
	for _, v := range got {
		if v%2 != 0 {
			t.Fatalf("odd element %d passed the filter", v)
		}
	}
}

func TestFlatMap(t *testing.T) {
	c := newTestContext(t, 2)
	r := FlatMap(Parallelize(c, []int{1, 2, 3}, 2), "dup", func(x int) []int { return []int{x, x} })
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 2, 2, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMapPartitionsSeesPartitionIndex(t *testing.T) {
	c := newTestContext(t, 2)
	r := MapPartitions(Parallelize(c, seq(10), 3), "tag", func(p int, in []int) []string {
		out := make([]string, len(in))
		for i, v := range in {
			out[i] = fmt.Sprintf("%d:%d", p, v)
		}
		return out
	})
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "0:0" || got[9] != "2:9" {
		t.Fatalf("got %v", got)
	}
}

func TestUnion(t *testing.T) {
	c := newTestContext(t, 2)
	a := Parallelize(c, []int{1, 2}, 1)
	b := Parallelize(c, []int{3, 4, 5}, 2)
	got, err := Collect(Union(a, b))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCount(t *testing.T) {
	c := newTestContext(t, 2)
	n, err := Count(Parallelize(c, seq(123), 9))
	if err != nil {
		t.Fatal(err)
	}
	if n != 123 {
		t.Fatalf("Count = %d", n)
	}
}

func TestReduce(t *testing.T) {
	c := newTestContext(t, 2)
	// 17 partitions over 10 elements guarantees empty partitions.
	sum, err := Reduce(Parallelize(c, seq(10), 17), func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("Reduce sum = %d, want 45", sum)
	}
}

func TestReduceEmptyRDDErrors(t *testing.T) {
	c := newTestContext(t, 1)
	if _, err := Reduce(Parallelize(c, []int{}, 3), func(a, b int) int { return a + b }); err == nil {
		t.Fatal("Reduce of empty RDD succeeded")
	}
}

func TestForeachVisitsEveryPartitionOnce(t *testing.T) {
	c := newTestContext(t, 2)
	visited := map[int]int{}
	err := Foreach(Parallelize(c, seq(30), 6), func(p int, in []int) { visited[p] += len(in) })
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < 6; p++ {
		if visited[p] != 5 {
			t.Fatalf("partition %d visited with %d elements", p, visited[p])
		}
		total += visited[p]
	}
	if total != 30 {
		t.Fatalf("total visited %d", total)
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	c := newTestContext(t, 1)
	r := Map(Parallelize(c, seq(4), 2), "boom", func(x int) int {
		if x == 3 {
			panic("kaboom")
		}
		return x
	})
	if _, err := Collect(r); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}

func TestTextFileLines(t *testing.T) {
	c := newTestContext(t, 3)
	content := "alpha\nbeta\ngamma\ndelta\n"
	if _, err := c.FS().Write("f.txt", []byte(content)); err != nil {
		t.Fatal(err)
	}
	r, err := c.TextFile("f.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "gamma", "delta"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTextFileMultiBlock(t *testing.T) {
	c, err := New(Config{
		Cluster:      cluster.Config{Nodes: 3, Spec: cluster.M3TwoXLarge},
		DFSBlockSize: 32,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "line-%04d\n", i)
	}
	if _, err := c.FS().Write("big.txt", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	r, err := c.TextFile("big.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Partitions() < 2 {
		t.Fatalf("expected multiple partitions, got %d", r.Partitions())
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("collected %d lines", len(got))
	}
	for i, l := range got {
		if l != fmt.Sprintf("line-%04d", i) {
			t.Fatalf("line %d = %q", i, l)
		}
	}
}

func TestTextFileMissing(t *testing.T) {
	c := newTestContext(t, 1)
	if _, err := c.TextFile("nope", 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMapChainPipelines(t *testing.T) {
	// Many chained narrow transformations must still be a single stage.
	c := newTestContext(t, 2)
	r := Parallelize(c, seq(10), 2)
	m := Map(r, "a", func(x int) int { return x + 1 })
	m = Map(m, "b", func(x int) int { return x * 2 })
	m = Filter(m, "c", func(x int) bool { return x > 4 })
	if _, err := Collect(m); err != nil {
		t.Fatal(err)
	}
	jobs := c.Jobs()
	last := jobs[len(jobs)-1]
	if last.Stages != 1 {
		t.Fatalf("narrow chain ran in %d stages, want 1", last.Stages)
	}
	if last.Tasks != 2 {
		t.Fatalf("narrow chain ran %d tasks, want 2", last.Tasks)
	}
}

func TestMapFilterComposition(t *testing.T) {
	c := newTestContext(t, 2)
	f := func(xs []int16) bool {
		in := make([]int, len(xs))
		for i, v := range xs {
			in[i] = int(v)
		}
		r := Filter(Map(Parallelize(c, in, 3), "inc", func(x int) int { return x + 1 }),
			"pos", func(x int) bool { return x > 0 })
		got, err := Collect(r)
		if err != nil {
			return false
		}
		var want []int
		for _, v := range in {
			if v+1 > 0 {
				want = append(want, v+1)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTextFileSubSplitsCoverAllLines(t *testing.T) {
	c := newTestContext(t, 2)
	var sb strings.Builder
	for i := 0; i < 57; i++ {
		fmt.Fprintf(&sb, "row-%03d with padding to vary lengths %s\n", i, strings.Repeat("x", i%7))
	}
	if _, err := c.FS().Write("s.txt", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	for _, minParts := range []int{0, 1, 2, 5, 8, 16, 57, 200} {
		r, err := c.TextFile("s.txt", minParts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 57 {
			t.Fatalf("minPartitions=%d: %d lines, want 57", minParts, len(got))
		}
		for i, l := range got {
			if !strings.HasPrefix(l, fmt.Sprintf("row-%03d", i)) {
				t.Fatalf("minPartitions=%d: line %d = %q (order or content lost)", minParts, i, l)
			}
		}
		if minParts > 1 && r.Partitions() < 2 {
			t.Fatalf("minPartitions=%d produced %d partitions", minParts, r.Partitions())
		}
	}
}

func TestTextFileSubSplitsNoDoubleCounting(t *testing.T) {
	// Each line must appear exactly once even when split boundaries fall
	// mid-line; Count over sub-splits equals the line count.
	c := newTestContext(t, 1)
	var sb strings.Builder
	for i := 0; i < 101; i++ {
		fmt.Fprintf(&sb, "%d\n", i)
	}
	c.FS().Write("n.txt", []byte(sb.String()))
	r, err := c.TextFile("n.txt", 13)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 101 {
		t.Fatalf("Count = %d, want 101", n)
	}
}

func TestTextFileNoTrailingNewline(t *testing.T) {
	c := newTestContext(t, 1)
	c.FS().Write("t.txt", []byte("a\nb\nc")) // no final newline
	r, err := c.TextFile("t.txt", 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestTextFileEmpty(t *testing.T) {
	c := newTestContext(t, 1)
	c.FS().Write("e.txt", nil)
	r, err := c.TextFile("e.txt", 4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty file counted %d lines", n)
	}
}

func TestLineStartAtOrAfter(t *testing.T) {
	data := []byte("ab\ncd\nef")
	cases := []struct{ off, want int }{
		{0, 0}, {1, 3}, {2, 3}, {3, 3}, {4, 6}, {6, 6}, {7, 8}, {8, 8}, {99, 8},
	}
	for _, cse := range cases {
		if got := lineStartAtOrAfter(data, cse.off); got != cse.want {
			t.Errorf("lineStartAtOrAfter(%d) = %d, want %d", cse.off, got, cse.want)
		}
	}
}

func TestTextFileSubSplitProperty(t *testing.T) {
	c := newTestContext(t, 2)
	f := func(seed uint64) bool {
		rr := seed
		lines := int(rr%60) + 1
		minParts := int(rr/60%20) + 1
		var sb strings.Builder
		for i := 0; i < lines; i++ {
			fmt.Fprintf(&sb, "line%d\n", i)
		}
		name := fmt.Sprintf("p%d.txt", seed)
		c.FS().Write(name, []byte(sb.String()))
		r, err := c.TextFile(name, minParts)
		if err != nil {
			return false
		}
		got, err := Collect(r)
		if err != nil {
			return false
		}
		if len(got) != lines {
			return false
		}
		for i, l := range got {
			if l != fmt.Sprintf("line%d", i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCountInvariance(t *testing.T) {
	// The result of a narrow pipeline must not depend on how the input is
	// partitioned.
	c := newTestContext(t, 2)
	f := func(seed uint64) bool {
		n := int(seed%100) + 1
		in := make([]int, n)
		for i := range in {
			in[i] = int(seed) + i
		}
		var ref []int
		for parts := 1; parts <= 9; parts += 4 {
			r := Filter(Map(Parallelize(c, in, parts), "x3", func(x int) int { return 3 * x }),
				"odd", func(x int) bool { return x%2 != 0 })
			got, err := Collect(r)
			if err != nil {
				return false
			}
			if ref == nil {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				return false
			}
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
