// Built-in bus listeners: the metrics listener that reconstructs JobMetrics
// from events (the scheduler no longer mutates metrics directly), a timeline
// listener rendering Chrome-trace JSON of virtual-time task spans, and an
// opt-in console progress listener — the engine's stand-ins for the Spark
// UI's metrics store, its event timeline, and spark.ui.showConsoleProgress.

package rdd

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// metricsListener rebuilds JobMetrics purely from bus events. It is always
// registered first on the bus, so Context.Jobs keeps working with no
// scheduler-side accumulation. Accumulation is keyed by the event's JobID, so
// interleaved events from concurrent jobs land on the right accumulator, and
// a job moves into the snapshot only at its JobEnd: Context.Jobs taken while
// jobs are in flight never exposes partially-accumulated metrics. Failed jobs
// are not recorded, matching the pre-listener behaviour (an aborted action
// contributed neither metrics nor virtual time).
type metricsListener struct {
	mu     sync.Mutex
	active map[uint64]*JobMetrics
	jobs   []JobMetrics
}

func newMetricsListener() *metricsListener {
	return &metricsListener{active: map[uint64]*JobMetrics{}}
}

// eventJob maps an event to the job it belongs to; 0 means no job (context
// events like NodeLost and ExecutorExcluded).
func eventJob(ev Event) uint64 {
	switch e := ev.(type) {
	case *StageSubmitted:
		return e.Job
	case *StageCompleted:
		return e.Job
	case *StageResubmitted:
		return e.Job
	case *TaskStart:
		return e.Job
	case *TaskEnd:
		return e.Job
	case *BlockCached:
		return e.Job
	case *BlockEvicted:
		return e.Job
	case *ShuffleSpill:
		return e.Job
	case *FetchFailure:
		return e.Job
	case *SpeculativeTaskLaunched:
		return e.Job
	case *TaskKilled:
		return e.Job
	case *JobCancelled:
		return e.Job
	}
	return 0
}

func (ml *metricsListener) OnEvent(ev Event) {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	switch e := ev.(type) {
	case *JobStart:
		jm := &JobMetrics{Action: e.Action, RDD: e.RDD}
		jm.VirtualSeconds += e.BroadcastSeconds
		ml.active[e.Job] = jm
		return
	case *JobEnd:
		// Cancelled jobs are recorded (flagged Cancelled) — unlike failures,
		// nothing is suspect about their partial accounting; failed jobs stay
		// unrecorded as before.
		if jm, ok := ml.active[e.Job]; ok && !e.Failed {
			jm.Cancelled = e.Cancelled
			ml.jobs = append(ml.jobs, *jm)
		}
		delete(ml.active, e.Job)
		return
	}
	jm := ml.active[eventJob(ev)]
	if jm == nil {
		return
	}
	switch e := ev.(type) {
	case *StageSubmitted:
		jm.Stages++
		jm.Tasks += e.NumTasks
		// Result-stage re-runs (Stage 0) revisit only unfinished partitions;
		// recomputed work means map partitions re-executed by resubmission.
		if e.Stage != 0 && e.Recovery {
			jm.RecomputedPartitions += e.NumTasks
		}
	case *StageCompleted:
		jm.VirtualSeconds += e.Seconds
	case *StageResubmitted:
		jm.StageAttempts++
	case *TaskStart:
		if e.Attempt > 1 {
			jm.TaskRetries++
		}
	case *SpeculativeTaskLaunched:
		jm.SpeculatedTasks++
	case *TaskKilled:
		jm.KilledTasks++
	case *TaskEnd:
		if e.Speculative && e.OK {
			jm.SpeculationWonTasks++
		}
		m := e.Metrics
		jm.ComputeSeconds += e.ComputeSec
		jm.DFSBytes += m.DFSLocalBytes + m.DFSRemoteBytes
		jm.DFSLocalBytes += m.DFSLocalBytes
		jm.ShuffleBytes += m.ShuffleLocalBytes + m.ShuffleRemoteBytes
		jm.ShuffleRemoteBytes += m.ShuffleRemoteBytes
		jm.CacheReadBytes += m.CacheLocalBytes + m.CacheDiskLocalBytes + m.CacheRemoteBytes
		jm.MaterializedBytes += m.MaterializedBytes
		if m.MaterializedBytes > jm.PeakMaterializedBytes {
			jm.PeakMaterializedBytes = m.MaterializedBytes
		}
		if m.FusedChain > jm.MaxFusedChain {
			jm.MaxFusedChain = m.FusedChain
		}
		jm.SpilledBytes += m.SpilledBytes
		jm.SpillCount += m.SpillCount
		jm.ShuffleBufferBytes += m.ShuffleBufferBytes
		if m.ExecutionPeakBytes > jm.ExecutionPeakBytes {
			jm.ExecutionPeakBytes = m.ExecutionPeakBytes
		}
		if e.Recovery {
			jm.RecoverySeconds += e.DurationSec
		}
	case *BlockEvicted:
		// Per-job eviction delta: only evictions caused by this job's tasks
		// count, not the context's lifetime total.
		jm.Evictions++
	}
}

func (ml *metricsListener) snapshot() []JobMetrics {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	out := make([]JobMetrics, len(ml.jobs))
	copy(out, ml.jobs)
	return out
}

func (ml *metricsListener) reset() {
	ml.mu.Lock()
	ml.jobs = nil
	ml.active = map[uint64]*JobMetrics{}
	ml.mu.Unlock()
}

// traceEvent is one entry of the Chrome trace-event format
// (chrome://tracing / Perfetto): a complete span ("X"), an instant ("i"), or
// process metadata ("M"). Timestamps are microseconds of virtual time.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TimelineListener records per-task and per-stage virtual-time spans and
// renders them as Chrome-trace JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev) — the engine's version of the Spark UI's event
// timeline. Each executor is a trace process whose rows are partitions; the
// driver process (pid 0) carries stage spans and recovery instants.
type TimelineListener struct {
	mu    sync.Mutex
	spans []traceEvent
	execs map[int]bool
}

// NewTimelineListener returns an empty timeline recorder.
func NewTimelineListener() *TimelineListener {
	return &TimelineListener{execs: map[int]bool{}}
}

const microsecond = 1e6 // virtual seconds → trace microseconds

// OnEvent implements Listener.
func (tl *TimelineListener) OnEvent(ev Event) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	switch e := ev.(type) {
	case *TaskEnd:
		status := "ok"
		switch {
		case e.Killed:
			status = "killed"
		case !e.OK:
			status = "failed"
		}
		name := fmt.Sprintf("job %d stage %d part %d attempt %d", e.Job, e.Stage, e.Part, e.Attempt)
		if e.Speculative {
			name += " (speculative)"
		}
		tl.execs[e.Executor] = true
		tl.spans = append(tl.spans, traceEvent{
			Name: name,
			Ph:   "X", Ts: e.StartSec * microsecond, Dur: e.DurationSec * microsecond,
			Pid: e.Executor + 1, Tid: e.Part,
			Args: map[string]any{"status": status, "recovery": e.Recovery, "failure": e.Failure, "speculative": e.Speculative},
		})
	case *StageCompleted:
		tl.spans = append(tl.spans, traceEvent{
			Name: fmt.Sprintf("job %d stage %d round %d: %s", e.Job, e.Stage, e.Round, e.RDD),
			Ph:   "X", Ts: (e.Time - e.Seconds) * microsecond, Dur: e.Seconds * microsecond,
			Pid: 0, Tid: 0,
			Args: map[string]any{"tasks": e.NumTasks, "failedAttempts": e.FailedAttempts},
		})
	case *StageResubmitted:
		tl.instant(fmt.Sprintf("resubmit shuffle %d (attempt %d)", e.Shuffle, e.Attempt), e.Time)
	case *SpeculativeTaskLaunched:
		tl.instant(fmt.Sprintf("speculate job %d stage %d part %d on executor %d", e.Job, e.Stage, e.Part, e.Executor), e.Time)
	case *JobCancelled:
		tl.instant(fmt.Sprintf("job %d cancelled: %s", e.Job, e.Reason), e.Time)
	case *ExecutorExcluded:
		tl.instant(fmt.Sprintf("executor %d excluded", e.Executor), e.Time)
	case *NodeLost:
		tl.instant(fmt.Sprintf("node %d lost", e.Node), e.Time)
	}
}

func (tl *TimelineListener) instant(name string, t float64) {
	tl.spans = append(tl.spans, traceEvent{Name: name, Ph: "i", Ts: t * microsecond, Pid: 0, Tid: 0, S: "g"})
}

// WriteChromeTrace renders the recorded timeline as a Chrome trace-event
// JSON object.
func (tl *TimelineListener) WriteChromeTrace(w io.Writer) error {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	events := make([]traceEvent, 0, len(tl.spans)+len(tl.execs)+1)
	events = append(events, traceEvent{Name: "process_name", Ph: "M", Pid: 0, Args: map[string]any{"name": "driver (stages)"}})
	ids := make([]int, 0, len(tl.execs))
	for id := range tl.execs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		events = append(events, traceEvent{Name: "process_name", Ph: "M", Pid: id + 1, Args: map[string]any{"name": fmt.Sprintf("executor %d", id)}})
	}
	events = append(events, tl.spans...)
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}

// ConsoleProgressListener prints job, stage, and recovery progress as events
// arrive — an opt-in text rendering in the spirit of Spark's console
// progress bar. With RecoveryOnly set it stays silent until something goes
// wrong, printing only failures, retries, resubmissions, exclusions, and
// node losses: the right mode for chaos runs with many jobs.
type ConsoleProgressListener struct {
	// W receives the output; nil selects os.Stdout.
	W io.Writer
	// RecoveryOnly suppresses routine job/stage progress lines.
	RecoveryOnly bool

	mu sync.Mutex
}

func (cp *ConsoleProgressListener) printf(format string, args ...any) {
	w := cp.W
	if w == nil {
		w = os.Stdout
	}
	fmt.Fprintf(w, format+"\n", args...)
}

func stageLabel(stage uint64) string {
	if stage == 0 {
		return "result"
	}
	return fmt.Sprintf("map(shuffle %d)", stage)
}

// OnEvent implements Listener.
func (cp *ConsoleProgressListener) OnEvent(ev Event) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	switch e := ev.(type) {
	case *JobStart:
		if !cp.RecoveryOnly {
			cp.printf("[job %d] %s(%s) started at t=%.3f sim-s", e.Job, e.Action, e.RDD, e.Time)
		}
	case *JobEnd:
		if e.Failed {
			cp.printf("[job %d] FAILED after %.3f sim-s: %s", e.Job, e.VirtualSeconds, e.Error)
		} else if e.Cancelled {
			cp.printf("[job %d] cancelled after %.3f sim-s", e.Job, e.VirtualSeconds)
		} else if !cp.RecoveryOnly {
			cp.printf("[job %d] done in %.3f sim-s", e.Job, e.VirtualSeconds)
		}
	case *JobCancelled:
		cp.printf("[job %d] cancelling %s(%s): %s", e.Job, e.Action, e.RDD, e.Reason)
	case *SpeculativeTaskLaunched:
		cp.printf("[job %d]     speculating task %d (stage %s) on executor %d (original on %d)",
			e.Job, e.Part, stageLabel(e.Stage), e.Executor, e.Original)
	case *StageSubmitted:
		if !cp.RecoveryOnly {
			suffix := ""
			if e.Recovery {
				suffix = " (recovery)"
			}
			cp.printf("[job %d]   stage %s: %d tasks%s", e.Job, stageLabel(e.Stage), e.NumTasks, suffix)
		} else if e.Recovery {
			cp.printf("[job %d] recovery: re-running %d tasks of stage %s", e.Job, e.NumTasks, stageLabel(e.Stage))
		}
	case *StageCompleted:
		if !cp.RecoveryOnly {
			cp.printf("[job %d]   stage %s done in %.3f sim-s (%d tasks, %d failed attempts)",
				e.Job, stageLabel(e.Stage), e.Seconds, e.NumTasks, e.FailedAttempts)
		}
	case *StageResubmitted:
		cp.printf("[job %d] fetch failure: resubmitting map stage of shuffle %d (attempt %d): %s",
			e.Job, e.Shuffle, e.Attempt, e.Reason)
	case *TaskEnd:
		if e.Killed {
			cp.printf("[job %d]     task %d attempt %d killed on executor %d: %s",
				e.Job, e.Part, e.Attempt, e.Executor, e.Failure)
		} else if !e.OK {
			cp.printf("[job %d]     task %d attempt %d failed on executor %d: %s",
				e.Job, e.Part, e.Attempt, e.Executor, e.Failure)
		}
	case *ExecutorExcluded:
		cp.printf("executor %d excluded after %d task failures", e.Executor, e.Failures)
	case *NodeLost:
		cp.printf("node %d lost (executors %v): cached blocks, shuffle outputs, and DFS replicas gone", e.Node, e.Executors)
	}
}
