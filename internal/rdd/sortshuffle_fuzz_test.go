// Fuzzing the spill-frame reader: decodeFrameBytes is the reduce side's
// parser of run-file bytes, and a truncated or corrupt frame (lost node
// mid-write, mangled index) must surface as an error that the fetch-failure
// machinery converts into a stage retry — never as a panic that kills the
// driver. Seed corpus under testdata/fuzz/FuzzDecodeFrameBytes; `make
// fuzz-smoke` gives the target a 10-second budget.

package rdd

import (
	"reflect"
	"testing"
)

func fuzzFrameRecs() []spillRec[int, int] {
	return []spillRec[int, int]{
		{A: 0, K: 7, V: 1},
		{A: 1, K: 3, V: 2},
		{A: 2, K: 7, V: 3},
	}
}

func FuzzDecodeFrameBytes(f *testing.F) {
	plain := encodeRunFrame(fuzzFrameRecs(), false)
	packed := encodeRunFrame(fuzzFrameRecs(), true)
	f.Add(plain, int64(0), int64(len(plain)), false)
	f.Add(packed, int64(0), int64(len(packed)), true)
	f.Add(plain, int64(0), int64(len(plain)), true)                   // wrong compression flag
	f.Add(plain[:len(plain)/2], int64(0), int64(len(plain)/2), false) // truncated
	f.Add(plain, int64(-1), int64(4), false)                          // negative offset
	f.Add(plain, int64(3), int64(1)<<40, true)                        // length past EOF
	f.Add([]byte{}, int64(0), int64(0), false)
	f.Fuzz(func(t *testing.T, raw []byte, off, length int64, compressed bool) {
		recs, err := decodeFrameBytes[int, int](raw, off, length, compressed)
		if err != nil && recs != nil {
			t.Fatalf("error %v returned alongside %d records", err, len(recs))
		}
	})
}

// TestDecodeFrameBytesRoundTrip pins the happy path the fuzz target cannot
// reach by mutation alone: encode -> decode is the identity for both
// compression modes, and out-of-range indices fail cleanly.
func TestDecodeFrameBytesRoundTrip(t *testing.T) {
	want := fuzzFrameRecs()
	for _, compress := range []bool{false, true} {
		raw := encodeRunFrame(want, compress)
		got, err := decodeFrameBytes[int, int](raw, 0, int64(len(raw)), compress)
		if err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("compress=%v: round trip changed records: %+v -> %+v", compress, want, got)
		}
		if _, err := decodeFrameBytes[int, int](raw, int64(len(raw)), 1, compress); err == nil {
			t.Fatalf("compress=%v: frame past EOF decoded without error", compress)
		}
		if _, err := decodeFrameBytes[int, int](raw, -1, int64(len(raw)), compress); err == nil {
			t.Fatalf("compress=%v: negative offset decoded without error", compress)
		}
	}
}
