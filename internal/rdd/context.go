// Package rdd is the Spark stand-in: resilient distributed datasets with lazy
// lineage, narrow and shuffle transformations, explicit in-memory caching,
// broadcast variables, and a stage-splitting scheduler that executes tasks on
// a simulated YARN cluster.
//
// Execution is two-layered. Every task runs *for real* on the host (results
// are exact, and cache hits versus lineage recomputation are real code
// paths), while the scheduler charges each task a simulated duration — real
// compute time scaled per core, plus modelled scheduling, HDFS, shuffle, and
// spill costs — and plays those durations onto the virtual core slots of the
// configured cluster. Context.VirtualTime is the cluster wall clock the
// benchmarks report.
package rdd

import (
	"fmt"
	"runtime"
	"sync"

	"sparkscore/internal/cluster"
	"sparkscore/internal/dfs"
	"sparkscore/internal/rng"
)

// Config assembles a simulated cluster and its cost model.
type Config struct {
	Cluster cluster.Config

	// DFSBlockSize and DFSReplication configure the HDFS stand-in; zero
	// values select the dfs package defaults.
	DFSBlockSize   int
	DFSReplication int

	// Seed drives every random decision in the simulation (replica
	// placement, tie-breaking); identical configurations replay identically.
	Seed uint64

	// Workers caps host-side parallelism of real task execution; zero
	// selects runtime.NumCPU().
	Workers int

	// Cost model. Zero values select the defaults noted per field.
	CPUScale         float64 // simulated seconds per measured compute second (1.0)
	SchedOverheadSec float64 // per-task launch/serialisation overhead (0.004)
	StageOverheadSec float64 // per-stage DAG/committer overhead (0.05)
	DiskMBps         float64 // local disk bandwidth per task (100)
	NetMBps          float64 // network bandwidth per task (120)
	MemGBps          float64 // memory bandwidth for local cache reads (8)

	// ParseMBps is the simulated end-to-end throughput of the text-ingestion
	// pipeline (HDFS text → line split → boxed records), charged per task on
	// DFS bytes read. The default of 0.25 MB/s per task is calibrated from
	// the paper itself: its observed-statistic computation over a ~200 MB,
	// 2-block genotype file took 509 s (Table III, 0 iterations), i.e.
	// ~0.25 MB/s per active task on 2015-era JVM Spark — three orders of
	// magnitude slower than its cached-primitive arithmetic. Modelling the
	// two costs separately is what makes cache-versus-recompute shapes
	// reproduce. Set a large value to neutralise.
	ParseMBps float64

	// StorageFraction is the share of executor memory available for cached
	// blocks, as in Spark's unified memory model (0.6). The remainder is
	// execution memory; tasks whose working set exceeds their per-slot share
	// of it are charged spill I/O.
	StorageFraction float64

	// DisableLocality makes the task scheduler ignore placement preferences
	// (cached block holders, HDFS replica nodes). It exists for the ablation
	// benchmark quantifying what locality-aware scheduling buys.
	DisableLocality bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CPUScale == 0 {
		c.CPUScale = 1
	}
	if c.SchedOverheadSec == 0 {
		c.SchedOverheadSec = 0.004
	}
	if c.StageOverheadSec == 0 {
		c.StageOverheadSec = 0.05
	}
	if c.DiskMBps == 0 {
		c.DiskMBps = 100
	}
	if c.NetMBps == 0 {
		c.NetMBps = 120
	}
	if c.MemGBps == 0 {
		c.MemGBps = 8
	}
	if c.ParseMBps == 0 {
		c.ParseMBps = 0.25
	}
	if c.StorageFraction == 0 {
		c.StorageFraction = 0.6
	}
	return c
}

// Context is the driver: it owns the cluster, the file system, the block and
// shuffle managers, the virtual clock, and the lineage graph id space. It
// plays the role of SparkContext in Figure 1's stack (Spark application over
// the execution engine over YARN over HDFS).
type Context struct {
	cfg     Config
	cluster *cluster.Cluster
	fs      *dfs.FS
	blocks  *blockManager
	shuffle *shuffleManager
	r       *rng.RNG

	mu            sync.Mutex
	clock         float64
	nextNodeID    int
	nextShuffleID int
	pendingBcast  int64 // broadcast bytes not yet charged to a job
	jobs          []JobMetrics

	tasksDone int64 // lifetime completed tasks, drives failure plans
	failPlan  *failurePlan

	workers chan struct{} // host-side execution semaphore
}

type failurePlan struct {
	executor   int
	afterTasks int64
	fired      bool
}

// New builds a driver context over a fresh cluster and file system.
func New(cfg Config) (*Context, error) {
	cfg = cfg.withDefaults()
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	fs, err := dfs.New(cl.Nodes(), cfg.DFSBlockSize, cfg.DFSReplication, cfg.Seed^0xd1f5)
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		cfg:     cfg,
		cluster: cl,
		fs:      fs,
		shuffle: newShuffleManager(),
		r:       rng.New(cfg.Seed ^ 0xc7a5),
		workers: make(chan struct{}, cfg.Workers),
	}
	ctx.blocks = newBlockManager(cl, cfg.StorageFraction)
	return ctx, nil
}

// FS exposes the simulated HDFS so callers can stage input files.
func (c *Context) FS() *dfs.FS { return c.fs }

// Cluster exposes the simulated cluster.
func (c *Context) Cluster() *cluster.Cluster { return c.cluster }

// VirtualTime returns the simulated seconds elapsed across all jobs so far.
func (c *Context) VirtualTime() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// ResetClock zeroes the virtual clock (between benchmark repetitions).
func (c *Context) ResetClock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = 0
	c.jobs = nil
}

// Jobs returns metrics for every job run so far (since the last ResetClock).
func (c *Context) Jobs() []JobMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobMetrics, len(c.jobs))
	copy(out, c.jobs)
	return out
}

// FailExecutor kills an executor immediately: its cached blocks are lost and
// future tasks are placed elsewhere. Shuffle outputs survive, as with
// Spark's external shuffle service on YARN.
func (c *Context) FailExecutor(id int) error {
	if err := c.cluster.Fail(id); err != nil {
		return err
	}
	c.blocks.dropExecutor(id)
	return nil
}

// FailExecutorAfter arranges for the executor to fail once the given number
// of further tasks have completed, injecting a failure in the middle of a
// running job.
func (c *Context) FailExecutorAfter(id int, tasks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failPlan = &failurePlan{executor: id, afterTasks: c.tasksDone + tasks}
}

// CachedBytes reports the total bytes currently cached across live executors.
func (c *Context) CachedBytes() int64 { return c.blocks.totalBytes() }

func (c *Context) newNodeID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextNodeID++
	return c.nextNodeID
}

func (c *Context) newShuffleID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextShuffleID++
	return c.nextShuffleID
}

// Broadcast ships a read-only value to every executor once, as with Spark
// broadcast variables (the paper broadcasts the phenotype pairs in
// Algorithm 1 step 6). byteSize is the caller's estimate of the serialised
// size, charged to the next job over the network once per executor wave.
type Broadcast[T any] struct {
	v T
}

// Value returns the broadcast value.
func (b *Broadcast[T]) Value() T { return b.v }

// NewBroadcast registers v for distribution to all executors.
func NewBroadcast[T any](c *Context, v T, byteSize int64) *Broadcast[T] {
	if byteSize < 0 {
		panic(fmt.Sprintf("rdd: negative broadcast size %d", byteSize))
	}
	c.mu.Lock()
	c.pendingBcast += byteSize
	c.mu.Unlock()
	return &Broadcast[T]{v: v}
}

// chargeBroadcast converts pending broadcast bytes into virtual seconds at
// the start of a job: a BitTorrent-style distribution moves the payload over
// the network in ~log2(executors) rounds.
func (c *Context) chargeBroadcast() float64 {
	c.mu.Lock()
	bytes := c.pendingBcast
	c.pendingBcast = 0
	c.mu.Unlock()
	if bytes == 0 {
		return 0
	}
	execs := len(c.cluster.LiveExecutors())
	rounds := 1.0
	for n := 1; n < execs; n *= 2 {
		rounds++
	}
	return float64(bytes) / (c.cfg.NetMBps * 1e6) * rounds
}
