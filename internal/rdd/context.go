// Package rdd is the Spark stand-in: resilient distributed datasets with lazy
// lineage, narrow and shuffle transformations, explicit in-memory caching,
// broadcast variables, and a stage-splitting scheduler that executes tasks on
// a simulated YARN cluster.
//
// Execution is two-layered. Every task runs *for real* on the host (results
// are exact, and cache hits versus lineage recomputation are real code
// paths), while the scheduler charges each task a simulated duration — real
// compute time scaled per core, plus modelled scheduling, HDFS, shuffle, and
// spill costs — and plays those durations onto the virtual core slots of the
// configured cluster. Context.VirtualTime is the cluster wall clock the
// benchmarks report.
package rdd

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sparkscore/internal/cluster"
	"sparkscore/internal/dfs"
	"sparkscore/internal/rng"
)

// Config assembles a simulated cluster and its cost model.
type Config struct {
	Cluster cluster.Config

	// DFSBlockSize and DFSReplication configure the HDFS stand-in; zero
	// values select the dfs package defaults.
	DFSBlockSize   int
	DFSReplication int

	// Seed drives every random decision in the simulation (replica
	// placement, tie-breaking); identical configurations replay identically.
	Seed uint64

	// Workers caps host-side parallelism of real task execution; zero
	// selects runtime.NumCPU().
	Workers int

	// Cost model. Zero values select the defaults noted per field.
	CPUScale         float64 // simulated seconds per measured compute second (1.0)
	SchedOverheadSec float64 // per-task launch/serialisation overhead (0.004)
	StageOverheadSec float64 // per-stage DAG/committer overhead (0.05)
	DiskMBps         float64 // local disk bandwidth per task (100)
	NetMBps          float64 // network bandwidth per task (120)
	MemGBps          float64 // memory bandwidth for local cache reads (8)

	// ParseMBps is the simulated end-to-end throughput of the text-ingestion
	// pipeline (HDFS text → line split → boxed records), charged per task on
	// DFS bytes read. The default of 0.25 MB/s per task is calibrated from
	// the paper itself: its observed-statistic computation over a ~200 MB,
	// 2-block genotype file took 509 s (Table III, 0 iterations), i.e.
	// ~0.25 MB/s per active task on 2015-era JVM Spark — three orders of
	// magnitude slower than its cached-primitive arithmetic. Modelling the
	// two costs separately is what makes cache-versus-recompute shapes
	// reproduce. Set a large value to neutralise.
	ParseMBps float64

	// MemoryFraction is the share of executor memory forming the unified
	// storage+execution pool, the analogue of spark.memory.fraction. Zero
	// selects 1.0 rather than Spark's 0.6: Spark reserves the rest for user
	// data structures on the JVM heap, which the simulation does not model.
	MemoryFraction float64

	// StorageFraction is the share of the unified pool reserved for cached
	// blocks, as in Spark's unified memory model (spark.memory.storageFraction,
	// 0.6 here). The remainder is execution memory: sort-shuffle buffers and
	// reduce-side merges draw on it through the memory manager, and tasks
	// whose working set exceeds their per-slot share of it are charged spill
	// I/O. Unlike Spark the storage region is a hard cap, not a floor — see
	// memorymanager.go for why.
	StorageFraction float64

	// SortShuffle selects the shuffle implementation. The zero value is
	// ShuffleSort — map tasks buffer pairs in execution memory and spill
	// key-sorted runs to the DFS when the memory manager denies growth.
	// ShuffleHash restores the legacy resident hash shuffle, which cannot
	// spill: under a memory cap it aborts where the sort path completes.
	SortShuffle ShuffleMode

	// CompressSpills deflate-compresses spilled run files. Off by default:
	// the simulation holds spill payloads in host memory, so compression
	// trades host CPU for nothing unless host memory is the constraint.
	CompressSpills bool

	// DisableMapSideCombine makes ReduceByKey (and CountByKey on top of it)
	// shuffle raw pairs instead of combining per bucket on the map side. It
	// exists for the ablation benchmark quantifying what map-side combine
	// saves in shuffled bytes.
	DisableMapSideCombine bool

	// DisableLocality makes the task scheduler ignore placement preferences
	// (cached block holders, HDFS replica nodes). It exists for the ablation
	// benchmark quantifying what locality-aware scheduling buys.
	DisableLocality bool

	// TaskMaxFailures is the number of times one task may fail before the
	// job aborts with a TaskAbortedError — Spark's task.maxFailures. Zero
	// selects the Spark default of 4; failed attempts are retried on a
	// freshly chosen executor.
	TaskMaxFailures int

	// MaxStageAttempts bounds how many times a map stage may run (initial
	// attempt plus resubmissions after fetch failures) before the job
	// aborts with a StageAbortedError. Zero selects 4, Spark's
	// spark.stage.maxConsecutiveAttempts.
	MaxStageAttempts int

	// ExcludeAfterFailures is the number of task failures on one executor
	// after which that executor is excluded from further scheduling
	// (Spark's blacklisting). Zero selects 2; negative disables exclusion.
	// The last schedulable executor is never excluded.
	ExcludeAfterFailures int

	// Faults configures deterministic fault injection; the zero value
	// injects nothing. Every decision derives from Seed, so chaos runs
	// replay bit-for-bit.
	Faults FaultProfile

	// Speculation configures Spark-style speculative execution of straggler
	// tasks (spark.speculation.*). The zero value disables it.
	Speculation SpeculationConfig

	// Adaptive configures adaptive stage execution — coalescing of small
	// reduce partitions and skew splitting from observed map-output sizes
	// (spark.sql.adaptive.*). The zero value disables it; results are
	// bitwise identical either way.
	Adaptive AdaptiveConfig

	// Scheduler configures multi-job arbitration (Spark's
	// spark.scheduler.mode and fairscheduler.xml). The zero value is FIFO
	// with no named pools: concurrent submissions run back-to-back in
	// arrival order, and a lone submitter observes exactly the old
	// single-job behaviour.
	Scheduler SchedulerConfig

	// Listeners are registered on the context's listener bus at creation,
	// after the built-in metrics listener, and receive every scheduler event
	// (see Event) synchronously in deterministic order. AddListener registers
	// more later.
	Listeners []Listener
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CPUScale == 0 {
		c.CPUScale = 1
	}
	if c.SchedOverheadSec == 0 {
		c.SchedOverheadSec = 0.004
	}
	if c.StageOverheadSec == 0 {
		c.StageOverheadSec = 0.05
	}
	if c.DiskMBps == 0 {
		c.DiskMBps = 100
	}
	if c.NetMBps == 0 {
		c.NetMBps = 120
	}
	if c.MemGBps == 0 {
		c.MemGBps = 8
	}
	if c.ParseMBps == 0 {
		c.ParseMBps = 0.25
	}
	if c.MemoryFraction == 0 {
		c.MemoryFraction = 1.0
	}
	if c.StorageFraction == 0 {
		c.StorageFraction = 0.6
	}
	if c.TaskMaxFailures == 0 {
		c.TaskMaxFailures = 4
	}
	if c.MaxStageAttempts == 0 {
		c.MaxStageAttempts = 4
	}
	if c.ExcludeAfterFailures == 0 {
		c.ExcludeAfterFailures = 2
	}
	return c
}

// Context is the driver: it owns the cluster, the file system, the block and
// shuffle managers, the virtual clock, and the lineage graph id space. It
// plays the role of SparkContext in Figure 1's stack (Spark application over
// the execution engine over YARN over HDFS).
type Context struct {
	cfg     Config
	cluster *cluster.Cluster
	fs      *dfs.FS
	blocks  *memoryManager
	shuffle *shuffleManager
	r       *rng.RNG

	// faults is the dedicated fault-injection stream; it is split per
	// decision point and never advanced, so draws are order-insensitive.
	faults *rng.RNG

	// bus delivers scheduler events; metrics is the built-in listener that
	// reconstructs JobMetrics from them (always registered first).
	bus     *listenerBus
	metrics *metricsListener

	// adaptive collects MapOutputStats for the adaptive planner; nil unless
	// Config.Adaptive.Enabled.
	adaptive *adaptiveStats

	// sched arbitrates cluster slots among concurrently running jobs.
	sched *jobArbiter

	// localPools and jobObservers hold goroutine-scoped submission
	// properties (RunInPool, ObserveJobs), keyed by goroutine id — the Go
	// analogue of Spark's thread-local spark.scheduler.pool.
	localPools   sync.Map
	jobObservers sync.Map

	// cancelTokens holds the goroutine-scoped cancellation token installed by
	// RunWithCancel; runningCancels (under mu) indexes the token of every job
	// currently running, so CancelJob can reach it by id.
	cancelTokens   sync.Map
	runningCancels map[uint64]*jobCancel

	mu            sync.Mutex
	clock         float64
	nextNodeID    int
	nextShuffleID int
	nextJobID     uint64
	pendingBcast  int64 // broadcast bytes not yet charged to a job

	// parallelismOverride, when positive, replaces the cluster-derived
	// DefaultParallelism — set by the online tuner between jobs.
	parallelismOverride int

	// activeJobs and pendingEvents buffer context-level events (node losses)
	// raised while a job runs, so they reach the bus at a deterministic
	// position (the next stage barrier) rather than mid-wave.
	activeJobs    int
	pendingEvents []Event

	tasksDone int64 // lifetime completed tasks, drives failure plans
	failPlans []*failurePlan

	// storageEpoch counts storage-loss events (executor and node failures).
	// Result caches keyed on lineage fingerprints record the epoch they were
	// computed under and treat any bump as invalidation, since the loss may
	// have dropped blocks the cached result depended on.
	storageEpoch uint64

	// execFailures counts task failures per executor; crossing
	// ExcludeAfterFailures moves the executor into excluded.
	execFailures map[int]int
	excluded     map[int]bool

	workers chan struct{} // host-side execution semaphore
}

// failurePlan is one scheduled failure: an executor loss (node < 0) or a
// whole-node loss, fired once the lifetime completed-task count reaches
// afterTasks.
type failurePlan struct {
	executor   int
	node       int // -1 for executor plans
	afterTasks int64
	fired      bool
}

// validate rejects configurations that can only be mistakes, before any of
// their values feed a probability draw or a slot computation.
func (c Config) validate() error {
	if c.MemoryFraction < 0 || c.MemoryFraction > 1 {
		return fmt.Errorf("rdd: Config.MemoryFraction = %g is not a fraction (want (0,1], or 0 for the default)", c.MemoryFraction)
	}
	if c.StorageFraction < 0 || c.StorageFraction > 1 {
		return fmt.Errorf("rdd: Config.StorageFraction = %g is not a fraction (want (0,1], or 0 for the default)", c.StorageFraction)
	}
	if c.SortShuffle != ShuffleSort && c.SortShuffle != ShuffleHash {
		return fmt.Errorf("rdd: Config.SortShuffle = %d is not a ShuffleMode (want ShuffleSort or ShuffleHash)", c.SortShuffle)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Speculation.Validate(); err != nil {
		return err
	}
	return c.Adaptive.Validate()
}

// New builds a driver context over a fresh cluster and file system.
func New(cfg Config) (*Context, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	fs, err := dfs.New(cl.Nodes(), cfg.DFSBlockSize, cfg.DFSReplication, cfg.Seed^0xd1f5)
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		cfg:            cfg,
		cluster:        cl,
		fs:             fs,
		shuffle:        newShuffleManager(),
		r:              rng.New(cfg.Seed ^ 0xc7a5),
		faults:         rng.New(cfg.Seed ^ 0xfa17),
		execFailures:   map[int]int{},
		excluded:       map[int]bool{},
		runningCancels: map[uint64]*jobCancel{},
		workers:        make(chan struct{}, cfg.Workers),
		bus:            &listenerBus{},
		metrics:        newMetricsListener(),
		sched:          newJobArbiter(cfg.Scheduler, cfg.Seed),
	}
	ctx.bus.add(ctx.metrics)
	if cfg.Adaptive.Enabled {
		ctx.adaptive = newAdaptiveStats()
		ctx.bus.add(ctx.adaptive)
	}
	for _, l := range cfg.Listeners {
		if l != nil {
			ctx.bus.add(l)
		}
	}
	ctx.blocks = newMemoryManager(cl, cfg.MemoryFraction, cfg.StorageFraction)
	ctx.shuffle.mem = ctx.blocks
	ctx.shuffle.fs = fs
	for _, nl := range cfg.Faults.NodeLoss {
		ctx.FailNodeAfter(nl.Node, nl.AfterTasks)
	}
	return ctx, nil
}

// FS exposes the simulated HDFS so callers can stage input files.
func (c *Context) FS() *dfs.FS { return c.fs }

// Cluster exposes the simulated cluster.
func (c *Context) Cluster() *cluster.Cluster { return c.cluster }

// VirtualTime returns the simulated seconds elapsed across all jobs so far.
func (c *Context) VirtualTime() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// ResetClock zeroes the virtual clock (between benchmark repetitions).
func (c *Context) ResetClock() {
	c.mu.Lock()
	c.clock = 0
	c.mu.Unlock()
	c.metrics.reset()
}

// Jobs returns metrics for every job run so far (since the last ResetClock),
// as reconstructed from scheduler events by the built-in metrics listener.
func (c *Context) Jobs() []JobMetrics {
	return c.metrics.snapshot()
}

// AddListener registers a bus listener after construction; it receives every
// subsequent scheduler event. Config.Listeners registers at creation.
func (c *Context) AddListener(l Listener) {
	if l != nil {
		c.bus.add(l)
	}
}

// FailExecutor kills an executor immediately: its cached blocks are lost and
// future tasks are placed elsewhere. Shuffle outputs survive, as with
// Spark's external shuffle service on YARN.
func (c *Context) FailExecutor(id int) error {
	if err := c.cluster.Fail(id); err != nil {
		return err
	}
	c.blocks.dropExecutor(id)
	c.bumpStorageEpoch()
	return nil
}

// FailNode kills a whole machine: every executor on it dies with its cached
// blocks, the node's shuffle outputs are destroyed (unlike an executor loss,
// a machine loss takes the external shuffle service down with it), and the
// node's DFS replicas disappear. Jobs recover by re-placing tasks,
// recomputing lost cache from lineage, and resubmitting map stages whose
// outputs are gone.
func (c *Context) FailNode(node int) error {
	ids, err := c.cluster.FailNode(node)
	if err != nil {
		return err
	}
	for _, id := range ids {
		c.blocks.dropExecutor(id)
	}
	c.shuffle.dropNode(node)
	c.fs.DropNode(node)
	c.bumpStorageEpoch()
	c.postContextEvent(&NodeLost{Node: node, Executors: ids})
	return nil
}

// StorageEpoch returns the current storage-loss epoch: a counter bumped on
// every executor or node failure. Callers caching results derived from
// cluster storage (the serving layer's lineage-fingerprint cache) record the
// epoch at computation time and discard entries from older epochs.
func (c *Context) StorageEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storageEpoch
}

func (c *Context) bumpStorageEpoch() {
	c.mu.Lock()
	c.storageEpoch++
	c.mu.Unlock()
}

// SchedulerMode reports the configured multi-job arbitration mode.
func (c *Context) SchedulerMode() SchedulerMode { return c.sched.mode }

// FailExecutorAfter arranges for the executor to fail once the given number
// of further tasks have completed, injecting a failure in the middle of a
// running job. Plans queue: repeated calls script cascading failures.
func (c *Context) FailExecutorAfter(id int, tasks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failPlans = append(c.failPlans, &failurePlan{executor: id, node: -1, afterTasks: c.tasksDone + tasks})
}

// FailNodeAfter arranges for the whole node to fail (FailNode) once the
// given number of further tasks have completed. Plans queue like
// FailExecutorAfter's.
func (c *Context) FailNodeAfter(node int, tasks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failPlans = append(c.failPlans, &failurePlan{executor: -1, node: node, afterTasks: c.tasksDone + tasks})
}

// ExcludedExecutors returns the ids of executors currently excluded from
// scheduling after repeated task failures, in id order.
func (c *Context) ExcludedExecutors() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for id, ex := range c.excluded {
		if ex {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// CachedBytes reports the total bytes currently cached across live executors.
func (c *Context) CachedBytes() int64 { return c.blocks.storageBytes() }

// ShuffleResidentBytes reports the retained shuffle output bytes across
// executors — the in-memory buckets (hash mode) and unspilled sort outputs
// that the seed's accounting never counted.
func (c *Context) ShuffleResidentBytes() int64 { return c.blocks.shuffleResidentBytes() }

// MemoryAccountedBytes reports everything the memory manager tracks: cached
// blocks, outstanding execution grants, and retained shuffle outputs.
func (c *Context) MemoryAccountedBytes() int64 { return c.blocks.totalBytes() }

func (c *Context) newNodeID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextNodeID++
	return c.nextNodeID
}

func (c *Context) newShuffleID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextShuffleID++
	return c.nextShuffleID
}

func (c *Context) newJobID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextJobID++
	return c.nextJobID
}

// Broadcast ships a read-only value to every executor once, as with Spark
// broadcast variables (the paper broadcasts the phenotype pairs in
// Algorithm 1 step 6). byteSize is the caller's estimate of the serialised
// size, charged to the next job over the network once per executor wave.
type Broadcast[T any] struct {
	v T
}

// Value returns the broadcast value.
func (b *Broadcast[T]) Value() T { return b.v }

// NewBroadcast registers v for distribution to all executors.
func NewBroadcast[T any](c *Context, v T, byteSize int64) *Broadcast[T] {
	if byteSize < 0 {
		panic(fmt.Sprintf("rdd: negative broadcast size %d", byteSize))
	}
	c.mu.Lock()
	c.pendingBcast += byteSize
	c.mu.Unlock()
	return &Broadcast[T]{v: v}
}

// chargeBroadcast converts pending broadcast bytes into virtual seconds at
// the start of a job: a BitTorrent-style distribution moves the payload over
// the network in ~log2(executors) rounds.
func (c *Context) chargeBroadcast() float64 {
	c.mu.Lock()
	bytes := c.pendingBcast
	c.pendingBcast = 0
	c.mu.Unlock()
	if bytes == 0 {
		return 0
	}
	execs := len(c.cluster.LiveExecutors())
	rounds := 1.0
	for n := 1; n < execs; n *= 2 {
		rounds++
	}
	return float64(bytes) / (c.cfg.NetMBps * 1e6) * rounds
}
