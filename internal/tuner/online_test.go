// Tests for the online controller: the control law (EWMA, dead band, step
// clamping) against synthetic stage events, and the lock-ordering race test
// pinning that Retune may run while FAIR-pool jobs are live on the observed
// context (bus lock -> o.mu -> context lock is acyclic; `go test -race` runs
// this).

package tuner

import (
	"fmt"
	"sync"
	"testing"

	"sparkscore/internal/cluster"
	"sparkscore/internal/rdd"
)

func onlineTestContext(t *testing.T, cfg rdd.Config) *rdd.Context {
	t.Helper()
	if cfg.Cluster.Nodes == 0 {
		cfg.Cluster = cluster.Config{
			Nodes:             2,
			Spec:              cluster.NodeSpec{Name: "tune", VCPUs: 8, MemGiB: 8},
			ExecutorsPerNode:  2,
			CoresPerExecutor:  4,
			MemPerExecutorGiB: 2,
		}
	}
	c, err := rdd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// feed folds synthetic successful stages into the controller: n tasks taking
// secs of stage time each, repeated enough for the EWMA to converge there.
func feed(o *Online, n int, secs float64) {
	for i := 0; i < 20; i++ {
		o.OnEvent(&rdd.StageCompleted{NumTasks: n, Seconds: secs})
	}
}

func TestOnlineRetuneRaisesParallelismForLongTasks(t *testing.T) {
	c := onlineTestContext(t, rdd.Config{Seed: 1})
	o := NewOnline(c, OnlineConfig{TargetTaskSeconds: 2})
	slots := c.Cluster().TotalSlots()
	before := c.DefaultParallelism()

	// One wave of tasks at 10s per wave: 5x the target, outside the band.
	feed(o, slots, 10)
	got, changed := o.Retune()
	if !changed {
		t.Fatalf("Retune() did not move parallelism off %d for 5x-target tasks", before)
	}
	if got != 2*before {
		t.Errorf("parallelism = %d, want %d (step factor caps one move at 2x)", got, 2*before)
	}
	if c.DefaultParallelism() != got {
		t.Errorf("context parallelism = %d, Retune reported %d", c.DefaultParallelism(), got)
	}
	st := o.Stats()
	if st.Stages != 20 || st.Retunes != 1 || st.Parallelism != got {
		t.Errorf("Stats() = %+v, want 20 stages, 1 retune, parallelism %d", st, got)
	}
}

func TestOnlineRetuneLowersParallelismForTinyTasks(t *testing.T) {
	c := onlineTestContext(t, rdd.Config{Seed: 1})
	o := NewOnline(c, OnlineConfig{TargetTaskSeconds: 2})
	before := c.DefaultParallelism()

	// Overhead-bound waves: 1/10 of the target.
	feed(o, c.Cluster().TotalSlots(), 0.2)
	got, changed := o.Retune()
	if !changed || got >= before {
		t.Fatalf("Retune() = (%d, %v) for overhead-bound tasks, want a drop below %d", got, changed, before)
	}
	if got != before/2 {
		t.Errorf("parallelism = %d, want %d (step factor caps one move at /2)", got, before/2)
	}
}

func TestOnlineRetuneDeadBandAndClamps(t *testing.T) {
	c := onlineTestContext(t, rdd.Config{Seed: 1})
	o := NewOnline(c, OnlineConfig{TargetTaskSeconds: 2, MinParallelism: 8, MaxParallelism: 32})

	if got, changed := o.Retune(); changed {
		t.Errorf("Retune() with no observations changed parallelism to %d", got)
	}
	feed(o, c.Cluster().TotalSlots(), 2.5) // within the 1.5x dead band
	if got, changed := o.Retune(); changed {
		t.Errorf("Retune() inside the dead band changed parallelism to %d", got)
	}
	// Drive it to the ceiling: repeated retunes must stop at MaxParallelism.
	for i := 0; i < 10; i++ {
		feed(o, c.Cluster().TotalSlots(), 50)
		o.Retune()
	}
	if got := c.DefaultParallelism(); got != 32 {
		t.Errorf("parallelism = %d after repeated upward retunes, want the 32 ceiling", got)
	}
	// And to the floor.
	for i := 0; i < 10; i++ {
		feed(o, c.Cluster().TotalSlots(), 0.01)
		o.Retune()
	}
	if got := c.DefaultParallelism(); got != 8 {
		t.Errorf("parallelism = %d after repeated downward retunes, want the 8 floor", got)
	}
}

func TestOnlineIgnoresFailedAndEmptyStages(t *testing.T) {
	c := onlineTestContext(t, rdd.Config{Seed: 1})
	o := NewOnline(c, OnlineConfig{})
	o.OnEvent(&rdd.StageCompleted{NumTasks: 4, Seconds: 100, Failed: true})
	o.OnEvent(&rdd.StageCompleted{NumTasks: 0, Seconds: 100})
	o.OnEvent(&rdd.TaskEnd{})
	if st := o.Stats(); st.Stages != 0 {
		t.Errorf("Stats().Stages = %d after only failed/empty stages, want 0", st.Stages)
	}
	if _, changed := o.Retune(); changed {
		t.Error("Retune() acted on failed/empty stage observations")
	}
}

// TestOnlineTunerRace is the lock-ordering stress test: Retune/Stats hammer
// the controller from one goroutine while FAIR-pool jobs run on the observed
// context from several others, so OnEvent (under the context's bus lock)
// races Retune (o.mu then the context lock). An ordering cycle would deadlock
// here; a missed lock is a -race report.
func TestOnlineTunerRace(t *testing.T) {
	c := onlineTestContext(t, rdd.Config{
		Seed:    17,
		Workers: 16,
		Scheduler: rdd.SchedulerConfig{
			Mode:  rdd.SchedFAIR,
			Pools: []rdd.PoolSpec{{Name: "a", Weight: 2, MinShare: 4}, {Name: "b", Weight: 1}},
		},
	})
	o := NewOnline(c, OnlineConfig{TargetTaskSeconds: 1e-6}) // everything is out of band: retune every chance
	const workers, iters = 4, 5

	stop := make(chan struct{})
	var tunerWG sync.WaitGroup
	tunerWG.Add(1)
	go func() {
		defer tunerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			o.Retune()
			o.Stats()
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := "a"
			if w%2 == 1 {
				pool = "b"
			}
			for i := 0; i < iters; i++ {
				parts := c.DefaultParallelism()
				pairs := rdd.Map(rdd.Parallelize(c, seqInts(400), parts), fmt.Sprintf("ot%d-%d", w, i),
					func(x int) rdd.KV[int, int] { return rdd.KV[int, int]{K: x % 8, V: x} })
				errs <- c.RunInPool(pool, func() error {
					out, err := rdd.Collect(rdd.ReduceByKey(pairs, func(a, b int) int { return a + b }, parts))
					if err != nil {
						return err
					}
					total := 0
					for _, kv := range out {
						total += kv.V
					}
					if want := 400 * 399 / 2; total != want {
						return fmt.Errorf("worker %d iter %d: sum = %d, want %d", w, i, total, want)
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	tunerWG.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := o.Stats()
	if st.Stages == 0 {
		t.Error("controller observed no stages from the live context")
	}
	cfg := OnlineConfig{TargetTaskSeconds: 1e-6}.withDefaults(c.Cluster().TotalSlots())
	if st.Parallelism < cfg.MinParallelism || st.Parallelism > cfg.MaxParallelism {
		t.Errorf("parallelism %d escaped the [%d, %d] clamp", st.Parallelism, cfg.MinParallelism, cfg.MaxParallelism)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
