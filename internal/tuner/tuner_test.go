package tuner

import (
	"testing"

	"sparkscore/internal/cluster"
	"sparkscore/internal/gen"
)

func TestGridFeasible(t *testing.T) {
	cands := Grid(cluster.M3TwoXLarge)
	if len(cands) < 6 {
		t.Fatalf("grid has only %d candidates", len(cands))
	}
	seen := map[Candidate]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
		cfg := cluster.Config{
			Nodes: 2, Spec: cluster.M3TwoXLarge,
			ExecutorsPerNode: c.ExecutorsPerNode, CoresPerExecutor: c.CoresPerExecutor,
			MemPerExecutorGiB: c.MemPerExecutorGiB,
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("grid produced infeasible layout %v: %v", c, err)
		}
	}
}

func TestGridTinyNode(t *testing.T) {
	if cands := Grid(cluster.NodeSpec{VCPUs: 1, MemGiB: 1}); cands != nil {
		t.Fatalf("grid on a node with no usable memory produced %v", cands)
	}
}

func TestTuneRanksMemoryStarvedLayoutsLast(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Patients: 500, SNPs: 4000, SNPSets: 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		Dataset:    ds,
		Iterations: 10,
		Nodes:      2,
		// Small blocks and scaled overheads, as when tuning a scaled
		// stand-in for a big study.
		DFSBlockSize:     1 << 20,
		SchedOverheadSec: 0.0001,
		StageOverheadSec: 0.001,
		Seed:             3,
	}
	roomy := Candidate{ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 10}
	// U here is ~16 MB; 4 MiB executors cannot hold their share, forcing
	// recomputation every iteration.
	starved := Candidate{ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 4.0 / 1024}
	evals, err := Tune(w, []Candidate{starved, roomy})
	if err != nil {
		t.Fatal(err)
	}
	if evals[0].Err != nil || evals[1].Err != nil {
		t.Fatalf("unexpected errors: %+v", evals)
	}
	if evals[0].Candidate != roomy {
		t.Fatalf("best candidate %v, want the roomy layout (times %.2f vs %.2f)",
			evals[0].Candidate, evals[0].SimSeconds, evals[1].SimSeconds)
	}
	if evals[1].SimSeconds < 2*evals[0].SimSeconds {
		t.Fatalf("starved layout only %.2fx slower", evals[1].SimSeconds/evals[0].SimSeconds)
	}
}

func TestTuneInfeasibleCandidatesSortLast(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Patients: 50, SNPs: 100, SNPSets: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Dataset: ds, Iterations: 1, Nodes: 1, Seed: 1}
	ok := Candidate{ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 8}
	bad := Candidate{ExecutorsPerNode: 8, CoresPerExecutor: 8, MemPerExecutorGiB: 8} // 64 cores on 8 vCPUs
	evals, err := Tune(w, []Candidate{bad, ok})
	if err != nil {
		t.Fatal(err)
	}
	if evals[0].Candidate != ok || evals[0].Err != nil {
		t.Fatalf("feasible candidate not ranked first: %+v", evals)
	}
	if evals[1].Err == nil {
		t.Fatal("infeasible candidate scored without error")
	}
}

func TestTuneValidation(t *testing.T) {
	ds, _ := gen.Generate(gen.Config{Patients: 10, SNPs: 10, SNPSets: 2}, 1)
	if _, err := Tune(Workload{Dataset: nil, Nodes: 1}, Grid(cluster.M3TwoXLarge)); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Tune(Workload{Dataset: ds, Nodes: 0}, Grid(cluster.M3TwoXLarge)); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Tune(Workload{Dataset: ds, Nodes: 1}, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{ExecutorsPerNode: 2, CoresPerExecutor: 3, MemPerExecutorGiB: 10}
	if c.String() != "2/node x 3 cores x 10 GiB" {
		t.Fatalf("String() = %q", c.String())
	}
}
