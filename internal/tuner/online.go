// The online tuner: the paper's "automatic parameter tuning" future work,
// closed as a feedback loop instead of the offline grid sweep in tuner.go.
// An Online controller listens to the live context's scheduler events,
// maintains an EWMA of per-wave stage time (a proxy for task granularity),
// and retunes the context's default parallelism between jobs — never during
// one, so every job still runs a self-consistent plan. cmd/sparkserved wires
// Retune after each served job (-autotune), making a long-lived server adapt
// its partitioning to the workload it actually receives.

package tuner

import (
	"math"
	"sync"

	"sparkscore/internal/rdd"
)

// OnlineConfig tunes the online controller. Zero values select the noted
// defaults.
type OnlineConfig struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; larger reacts faster.
	// Default 0.3.
	Alpha float64

	// TargetTaskSeconds is the desired per-wave stage time: tasks much
	// longer than this want more, smaller partitions (better balance,
	// cheaper stragglers); much shorter tasks drown in per-task overhead and
	// want fewer. Default 2 simulated seconds, a common Spark
	// rule-of-thumb task granularity.
	TargetTaskSeconds float64

	// Band is the dead band: no retune while the EWMA stays within
	// [target/Band, target×Band]. Must exceed 1; default 1.5.
	Band float64

	// MinParallelism / MaxParallelism clamp the override. Defaults: half the
	// cluster's core slots, and 8× the slots.
	MinParallelism int
	MaxParallelism int

	// StepFactor caps how far one Retune may move parallelism (multiplied or
	// divided). Default 2 — the controller converges geometrically instead
	// of oscillating on one noisy observation.
	StepFactor float64
}

func (c OnlineConfig) withDefaults(slots int) OnlineConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.TargetTaskSeconds <= 0 {
		c.TargetTaskSeconds = 2
	}
	if c.Band <= 1 {
		c.Band = 1.5
	}
	if slots < 1 {
		slots = 1
	}
	if c.MinParallelism <= 0 {
		c.MinParallelism = max(1, slots/2)
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = slots * 8
	}
	if c.MaxParallelism < c.MinParallelism {
		c.MaxParallelism = c.MinParallelism
	}
	if c.StepFactor <= 1 {
		c.StepFactor = 2
	}
	return c
}

// Online is the feedback controller. It implements rdd.Listener; register it
// on the context whose jobs it should observe (NewOnline does this), then
// call Retune between jobs.
//
// Lock ordering: OnEvent runs under the context's bus lock and takes only
// o.mu; Retune takes o.mu and then the context's own lock (via
// SetDefaultParallelism). The context never posts bus events while holding
// its lock, so bus → o.mu → context is acyclic and race-free — the ordering
// TestOnlineTunerRace pins under concurrent FAIR-pool jobs.
type Online struct {
	ctx *rdd.Context
	cfg OnlineConfig

	mu      sync.Mutex
	ewma    float64 // EWMA of per-wave stage seconds
	stages  int     // stages observed
	retunes int     // retunes applied
}

// OnlineStats is a snapshot of the controller's state.
type OnlineStats struct {
	Stages          int     `json:"stages"`
	Retunes         int     `json:"retunes"`
	EWMAWaveSeconds float64 `json:"ewmaWaveSeconds"`
	Parallelism     int     `json:"parallelism"`
}

// NewOnline builds the controller over ctx and registers it on the bus.
func NewOnline(ctx *rdd.Context, cfg OnlineConfig) *Online {
	o := &Online{ctx: ctx, cfg: cfg.withDefaults(ctx.Cluster().TotalSlots())}
	ctx.AddListener(o)
	return o
}

// OnEvent implements rdd.Listener: fold each successful stage's per-wave
// time into the EWMA. A stage of N tasks on S slots runs in about ⌈N/S⌉
// waves, so seconds-per-wave approximates the duration of one task at the
// current granularity — the quantity the controller steers.
func (o *Online) OnEvent(ev rdd.Event) {
	sc, ok := ev.(*rdd.StageCompleted)
	if !ok || sc.Failed || sc.NumTasks == 0 {
		return
	}
	slots := o.ctx.Cluster().TotalSlots()
	if slots < 1 {
		slots = 1
	}
	waves := math.Ceil(float64(sc.NumTasks) / float64(slots))
	perWave := sc.Seconds / waves
	o.mu.Lock()
	if o.stages == 0 {
		o.ewma = perWave
	} else {
		o.ewma = o.cfg.Alpha*perWave + (1-o.cfg.Alpha)*o.ewma
	}
	o.stages++
	o.mu.Unlock()
}

// Retune applies one control step: if the EWMA sits outside the dead band,
// default parallelism is multiplied by ewma/target (clamped to the step
// factor and the min/max bounds) so over-long tasks get more partitions and
// overhead-bound ones fewer. It returns the new parallelism and whether it
// changed. Call between jobs — running jobs keep the plan they started with.
func (o *Online) Retune() (int, bool) {
	cur := o.ctx.DefaultParallelism()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.stages == 0 || o.ewma <= 0 {
		return cur, false
	}
	ratio := o.ewma / o.cfg.TargetTaskSeconds
	if ratio <= o.cfg.Band && ratio >= 1/o.cfg.Band {
		return cur, false
	}
	step := math.Min(math.Max(ratio, 1/o.cfg.StepFactor), o.cfg.StepFactor)
	proposed := int(math.Round(float64(cur) * step))
	proposed = min(max(proposed, o.cfg.MinParallelism), o.cfg.MaxParallelism)
	if proposed == cur {
		return cur, false
	}
	o.ctx.SetDefaultParallelism(proposed)
	o.retunes++
	return proposed, true
}

// Stats snapshots the controller.
func (o *Online) Stats() OnlineStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return OnlineStats{
		Stages:          o.stages,
		Retunes:         o.retunes,
		EWMAWaveSeconds: o.ewma,
		Parallelism:     o.ctx.DefaultParallelism(),
	}
}
