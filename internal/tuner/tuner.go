// Package tuner implements the paper's stated future work: "We plan to
// further investigate Apache Spark parameter options for SparkScore for the
// purpose of tuning." Its Experiment C varied the three container run-time
// flags (number of executors, memory per executor, cores per executor) by
// hand; this package searches that space automatically, scoring each
// candidate layout by the simulated runtime of a representative workload on
// the virtual cluster — cheap enough to sweep dozens of layouts before ever
// renting the real one.
package tuner

import (
	"fmt"
	"sort"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/rdd"
)

// Candidate is one container layout (Table VIII's rows are candidates).
type Candidate struct {
	ExecutorsPerNode  int
	CoresPerExecutor  int
	MemPerExecutorGiB float64
}

// String renders the layout compactly.
func (c Candidate) String() string {
	return fmt.Sprintf("%d/node x %d cores x %g GiB", c.ExecutorsPerNode, c.CoresPerExecutor, c.MemPerExecutorGiB)
}

// Workload describes the job each candidate is scored on.
type Workload struct {
	Dataset    *data.Dataset
	Family     string // "" = cox
	Iterations int    // Monte Carlo iterations
	Nodes      int
	Spec       cluster.NodeSpec // zero = m3.2xlarge

	// DFSBlockSize and overhead overrides mirror rdd.Config (zero = engine
	// defaults); set them when tuning a scaled-down stand-in workload.
	DFSBlockSize     int
	SchedOverheadSec float64
	StageOverheadSec float64

	Seed uint64
}

func (w Workload) withDefaults() Workload {
	if w.Spec.VCPUs == 0 {
		w.Spec = cluster.M3TwoXLarge
	}
	return w
}

// Evaluation is one scored candidate. Err is non-nil when the layout is
// infeasible (YARN admission) or the run failed; such candidates sort last.
type Evaluation struct {
	Candidate  Candidate
	SimSeconds float64
	Err        error
}

// Grid enumerates sensible container layouts for the node spec: 1–4
// executors per node, cores dividing the vCPUs, and memory splitting the
// node allocation (with 10% and a fixed 2 GiB reserved for the OS and node
// manager), plus the Spark 1.x default of 1 GiB per executor.
func Grid(spec cluster.NodeSpec) []Candidate {
	var out []Candidate
	usable := spec.MemGiB*0.9 - 2
	if usable <= 0 {
		return nil
	}
	for execs := 1; execs <= 4 && execs <= spec.VCPUs; execs++ {
		cores := spec.VCPUs / execs
		if cores < 1 {
			continue
		}
		mem := usable / float64(execs)
		out = append(out, Candidate{execs, cores, roundGiB(mem)})
		// The half-memory variant (more head-room for execution memory).
		out = append(out, Candidate{execs, cores, roundGiB(mem / 2)})
		// The untuned Spark 1.x default.
		if mem >= 1 {
			out = append(out, Candidate{execs, cores, 1})
		}
	}
	return dedupe(out)
}

func roundGiB(v float64) float64 {
	return float64(int(v*4+0.5)) / 4 // quarter-GiB granularity
}

func dedupe(cands []Candidate) []Candidate {
	seen := map[Candidate]bool{}
	var out []Candidate
	for _, c := range cands {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Tune scores every candidate on the simulator and returns the evaluations
// sorted best-first (failed candidates last, in input order).
func Tune(w Workload, candidates []Candidate) ([]Evaluation, error) {
	w = w.withDefaults()
	if w.Dataset == nil {
		return nil, fmt.Errorf("tuner: nil dataset")
	}
	if err := w.Dataset.Validate(); err != nil {
		return nil, err
	}
	if w.Nodes <= 0 {
		return nil, fmt.Errorf("tuner: %d nodes", w.Nodes)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("tuner: no candidates")
	}
	evals := make([]Evaluation, len(candidates))
	for i, cand := range candidates {
		evals[i] = Evaluation{Candidate: cand}
		evals[i].SimSeconds, evals[i].Err = w.run(cand)
	}
	sort.SliceStable(evals, func(a, b int) bool {
		ea, eb := evals[a], evals[b]
		if (ea.Err == nil) != (eb.Err == nil) {
			return ea.Err == nil
		}
		if ea.Err != nil {
			return false
		}
		return ea.SimSeconds < eb.SimSeconds
	})
	return evals, nil
}

// run measures one candidate.
func (w Workload) run(cand Candidate) (float64, error) {
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes:             w.Nodes,
			Spec:              w.Spec,
			ExecutorsPerNode:  cand.ExecutorsPerNode,
			CoresPerExecutor:  cand.CoresPerExecutor,
			MemPerExecutorGiB: cand.MemPerExecutorGiB,
		},
		DFSBlockSize:     w.DFSBlockSize,
		SchedOverheadSec: w.SchedOverheadSec,
		StageOverheadSec: w.StageOverheadSec,
		Seed:             w.Seed,
	})
	if err != nil {
		return 0, err
	}
	paths, err := core.StageDataset(ctx, w.Dataset, "tune")
	if err != nil {
		return 0, err
	}
	a, err := core.NewAnalysis(ctx, paths, core.Options{Family: w.Family, Seed: w.Seed})
	if err != nil {
		return 0, err
	}
	ctx.ResetClock()
	if _, err := a.MonteCarlo(w.Iterations); err != nil {
		return 0, err
	}
	return ctx.VirtualTime(), nil
}
