// The benchmark suite. One Benchmark per paper artifact (Tables I-VIII,
// Figures 2-7) regenerates that artifact through the experiment harness and
// reports the key simulated runtimes as benchmark metrics, plus ablation
// benchmarks for the design choices called out in DESIGN.md.
//
// Paper-axis experiments are heavy; run them one iteration at a time:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Environment knobs:
//
//	SPARKSCORE_BENCH_SCALE      divisor of the paper's input sizes (default 1000)
//	SPARKSCORE_BENCH_MAX_ITERS  cap on resampling iterations (default 1000)
//
// Set SPARKSCORE_BENCH_SCALE=1 to run the paper's exact sizes (cluster-scale
// inputs; expect hours). cmd/benchtab renders the same experiments as full
// tables.
package sparkscore

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"

	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/harness"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/stats"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func benchHarness() *harness.Harness {
	return &harness.Harness{
		Scale:         envInt("SPARKSCORE_BENCH_SCALE", 1000),
		Reps:          1,
		MaxIterations: envInt("SPARKSCORE_BENCH_MAX_ITERS", 1000),
		Seed:          1,
	}
}

// runArtifact regenerates one paper artifact per benchmark iteration and
// logs the rendered tables under -v.
func runArtifact(b *testing.B, id string) {
	e, ok := harness.Resolve(id)
	if !ok {
		b.Fatalf("unknown artifact %s", id)
	}
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Run(h, &buf); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("artifact %s (scale 1/%d):\n%s", id, h.Scale, buf.String())
		}
	}
}

// One benchmark per table and figure.

func BenchmarkTab1_ClusterProfile(b *testing.B)    { runArtifact(b, "tab1") }
func BenchmarkFig2_Scalability(b *testing.B)       { runArtifact(b, "fig2") }
func BenchmarkTab3_RuntimeStability(b *testing.B)  { runArtifact(b, "tab3") }
func BenchmarkFig3_Sensitivity(b *testing.B)       { runArtifact(b, "fig3") }
func BenchmarkFig4_Caching10K(b *testing.B)        { runArtifact(b, "fig4") }
func BenchmarkTab5_CacheStability(b *testing.B)    { runArtifact(b, "tab5") }
func BenchmarkFig5_Caching1M(b *testing.B)         { runArtifact(b, "fig5") }
func BenchmarkFig6_StrongScaling(b *testing.B)     { runArtifact(b, "fig6") }
func BenchmarkTab6_StrongScalingIn(b *testing.B)   { runArtifact(b, "tab6") }
func BenchmarkFig7_Containers(b *testing.B)        { runArtifact(b, "fig7") }
func BenchmarkTab8_ContainerLayouts(b *testing.B)  { runArtifact(b, "tab8") }
func BenchmarkTab2_ExperimentAInputs(b *testing.B) { runArtifact(b, "tab2") }
func BenchmarkTab4_ExperimentBInputs(b *testing.B) { runArtifact(b, "tab4") }
func BenchmarkTab7_AutoTuningInputs(b *testing.B)  { runArtifact(b, "tab7") }

// Ablation benchmarks (see DESIGN.md §5).

// benchPhenoGeno draws a survival phenotype and one SNP for ablations.
func benchPhenoGeno(n int) (*data.Phenotype, []data.Genotype) {
	r := rng.New(9)
	ph := data.NewPhenotype(n)
	g := make([]data.Genotype, n)
	for i := 0; i < n; i++ {
		ph.Y[i] = r.Exponential(1.0 / 12)
		if r.Bernoulli(0.85) {
			ph.Event[i] = 1
		}
		g[i] = data.Genotype(r.Binomial(2, 0.3))
	}
	return ph, g
}

// BenchmarkAblationCoxSuffixSum measures the O(n log n + n)-per-SNP Cox
// score used in production.
func BenchmarkAblationCoxSuffixSum(b *testing.B) {
	ph, g := benchPhenoGeno(1000)
	cox, err := stats.NewCox(ph)
	if err != nil {
		b.Fatal(err)
	}
	u := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cox.Contributions(g, u)
	}
}

// BenchmarkAblationCoxNaive measures the literal O(n²) formula the fast path
// replaces.
func BenchmarkAblationCoxNaive(b *testing.B) {
	ph, g := benchPhenoGeno(1000)
	u := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.NaiveCoxContributions(ph, g, u)
	}
}

// BenchmarkAblationScoreTest measures the per-SNP cost of the efficient
// score statistic (no optimisation, the paper's argument).
func BenchmarkAblationScoreTest(b *testing.B) {
	ph, g := benchPhenoGeno(1000)
	cox, err := stats.NewCox(ph)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.Score(cox, g)
		_ = cox.Variance(g)
	}
}

// BenchmarkAblationWaldNewton measures the per-SNP cost of the Wald/LRT
// alternative: Newton-Raphson on the Cox partial likelihood.
func BenchmarkAblationWaldNewton(b *testing.B) {
	ph, g := benchPhenoGeno(1000)
	cox, err := stats.NewCox(ph)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cox.FitCox(g, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// mcVirtualSeconds runs a small Monte Carlo analysis and returns simulated
// seconds; used by the cache and locality ablations.
func mcVirtualSeconds(b *testing.B, cache, locality bool) float64 {
	b.Helper()
	ctx, err := rdd.New(rdd.Config{
		Cluster:         cluster.Config{Nodes: 4, Spec: cluster.M3TwoXLarge},
		Seed:            5,
		DFSBlockSize:    1 << 20, // ~10 input blocks, so placement matters
		DisableLocality: !locality,
	})
	if err != nil {
		b.Fatal(err)
	}
	ds, err := gen.Generate(gen.Config{Patients: 500, SNPs: 10000, SNPSets: 100}, 7)
	if err != nil {
		b.Fatal(err)
	}
	paths, err := core.StageDataset(ctx, ds, "ablation")
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Seed: 3}
	if !cache {
		opts = opts.WithoutCache()
	}
	a, err := core.NewAnalysis(ctx, paths, opts)
	if err != nil {
		b.Fatal(err)
	}
	ctx.ResetClock()
	if _, err := a.MonteCarlo(10); err != nil {
		b.Fatal(err)
	}
	return ctx.VirtualTime()
}

// BenchmarkAblationCacheOn / Off quantify Experiment B's switch in isolation.
func BenchmarkAblationCacheOn(b *testing.B) {
	var sim float64
	for i := 0; i < b.N; i++ {
		sim = mcVirtualSeconds(b, true, true)
	}
	b.ReportMetric(sim, "sim-s")
}

func BenchmarkAblationCacheOff(b *testing.B) {
	var sim float64
	for i := 0; i < b.N; i++ {
		sim = mcVirtualSeconds(b, false, true)
	}
	b.ReportMetric(sim, "sim-s")
}

// BenchmarkAblationLocalityOn / Off quantify locality-aware task placement.
func BenchmarkAblationLocalityOn(b *testing.B) {
	var sim float64
	for i := 0; i < b.N; i++ {
		sim = mcVirtualSeconds(b, true, true)
	}
	b.ReportMetric(sim, "sim-s")
}

func BenchmarkAblationLocalityOff(b *testing.B) {
	var sim float64
	for i := 0; i < b.N; i++ {
		sim = mcVirtualSeconds(b, true, false)
	}
	b.ReportMetric(sim, "sim-s")
}

// BenchmarkEngineShuffle measures raw engine shuffle throughput
// (reduceByKey over 100k pairs), the substrate cost under every iteration.
func BenchmarkEngineShuffle(b *testing.B) {
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{Nodes: 2, Spec: cluster.M3TwoXLarge},
		Seed:    5,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := make([]rdd.KV[int, float64], 100000)
	r := rng.New(1)
	for i := range in {
		in[i] = rdd.KV[int, float64]{K: r.Intn(1000), V: r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := rdd.ReduceByKey(rdd.Parallelize(ctx, in, 16), func(a, b float64) float64 { return a + b }, 16)
		if _, err := rdd.Collect(out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratorMillionGenotypes measures Section III generator
// throughput (genotypes per second).
func BenchmarkGeneratorMillionGenotypes(b *testing.B) {
	cfg := gen.Config{Patients: 1000, SNPs: 1000, SNPSets: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(cfg, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Patients*cfg.SNPs), "genotypes/op")
}

var sinkResult *core.Result

// BenchmarkReferenceMonteCarlo measures the sequential baseline the engine
// is compared against.
func BenchmarkReferenceMonteCarlo(b *testing.B) {
	ds, err := gen.Generate(gen.Config{Patients: 500, SNPs: 1000, SNPSets: 50}, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.ReferenceMonteCarlo(ds, core.Options{Seed: 1}, 50)
		if err != nil {
			b.Fatal(err)
		}
		sinkResult = res
	}
}

// TestBenchmarkRegistryMatchesPaperArtifacts pins the one-bench-per-artifact
// guarantee: every table and figure of the paper resolves to an experiment.
func TestBenchmarkRegistryMatchesPaperArtifacts(t *testing.T) {
	artifacts := []string{
		"tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
	}
	for _, id := range artifacts {
		if _, ok := harness.Resolve(id); !ok {
			t.Errorf("paper artifact %s has no experiment", id)
		}
	}
	// The paper's 7 artifacts plus the chaos (lineage recovery), combine
	// (map-side combine ablation), serving (FIFO vs FAIR job-server
	// latency), speculation (straggler mitigation), columnar (2-bit
	// packed genotype engine), memory (sort-shuffle spill vs hash OOM
	// under a capped unified pool), adaptive (skew splitting and
	// partition coalescing), and eqtl (all-pairs wide kernel vs
	// per-phenotype loop) experiments.
	if len(harness.Experiments()) != 15 {
		t.Errorf("%d canonical experiments, want 15", len(harness.Experiments()))
	}
	_ = fmt.Sprintf // keep fmt imported alongside future debug logging
}

// BenchmarkAblationFig6MemoryOnly / DiskSpill quantify the storage-level fix
// for the strong-scaling collapse: Figure 6's 6-node configuration with the
// paper's MEMORY_ONLY persistence versus MEMORY_AND_DISK.
func fig6SixNodes(b *testing.B, diskSpill bool) float64 {
	b.Helper()
	h := &harness.Harness{Scale: 1000, Reps: 1, Seed: 3}
	v, err := h.Measure(harness.Params{
		Patients: 1000, SNPs: 1000000, SNPSets: 100, Nodes: 6,
		ExecutorsPerNode: 2, CoresPerExecutor: 4, MemPerExecutorGiB: 1,
		Method: "mc", Cache: true, DiskSpill: diskSpill, Iterations: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	return v
}

func BenchmarkAblationFig6MemoryOnly(b *testing.B) {
	var sim float64
	for i := 0; i < b.N; i++ {
		sim = fig6SixNodes(b, false)
	}
	b.ReportMetric(sim, "sim-s")
}

func BenchmarkAblationFig6DiskSpill(b *testing.B) {
	var sim float64
	for i := 0; i < b.N; i++ {
		sim = fig6SixNodes(b, true)
	}
	b.ReportMetric(sim, "sim-s")
}
