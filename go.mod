module sparkscore

go 1.22
