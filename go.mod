module sparkscore

go 1.23
