GO ?= go

.PHONY: tier1 fmt vet build test race bench bench-smoke experiments

# tier1 is the CI gate: formatting, vet, build, the full test suite under the
# race detector (the recovery layer is concurrent by construction), and a
# smoke run of the streaming-execution benchmarks.
tier1: fmt vet build race bench-smoke

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# bench-smoke proves the fused-chain benchmarks still run (allocation numbers
# are asserted by TestFusedChainAllocsIndependentOfSize; this guards the
# benchmark harness itself).
bench-smoke:
	$(GO) test ./internal/rdd -run FusedNone -bench FusedChain -benchmem -benchtime=10x

experiments:
	$(GO) run ./cmd/benchtab -exp all -scale 100 -reps 2
