GO ?= go

.PHONY: tier1 fmt vet build test race bench bench-smoke eventlog-smoke server-smoke speculation-smoke columnar-smoke spill-smoke adaptive-smoke eqtl-smoke fuzz-smoke cover trace experiments

# tier1 is the CI gate: formatting, vet, build, the full test suite under the
# race detector (the recovery layer is concurrent by construction), a smoke
# run of the streaming-execution benchmarks, an event-log round trip through
# the real CLIs, the job-server self-test over real HTTP (including deadline
# cancellation freeing its pool slot), the speculation ablation's >= 3x
# straggler-mitigation claim, the columnar engine's byte-parity and
# >= 4x packed-storage claims, and the sort shuffle's spill-and-match claim
# under a memory cap the hash shuffle cannot survive, the adaptive planner's
# bitwise parity and skew-mitigation claims, the all-pairs eQTL engine's
# wide-kernel parity and >= 2x pair-throughput claims, and the per-package
# coverage floors in coverage_baseline.txt.
tier1: fmt vet build race bench-smoke eventlog-smoke server-smoke speculation-smoke columnar-smoke spill-smoke adaptive-smoke eqtl-smoke cover

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# bench-smoke proves the fused-chain benchmarks still run (allocation numbers
# are asserted by TestFusedChainAllocsIndependentOfSize; this guards the
# benchmark harness itself).
bench-smoke:
	$(GO) test ./internal/rdd -run FusedNone -bench FusedChain -benchmem -benchtime=10x

# eventlog-smoke exercises the observability surface end to end: a small
# sparkscore run emits a JSONL event log, and sparkui must parse it back and
# render the job/stage tables without error.
eventlog-smoke:
	$(GO) run ./cmd/sparkscore -generate -patients 80 -snps 400 -sets 8 -iterations 8 \
		-events $${TMPDIR:-/tmp}/sparkscore-smoke.jsonl > /dev/null
	$(GO) run ./cmd/sparkui -log $${TMPDIR:-/tmp}/sparkscore-smoke.jsonl > /dev/null
	@echo "eventlog-smoke: emit + reparse ok"

# server-smoke starts sparkserved on a loopback port, submits score, SKAT,
# and resampling jobs over real HTTP, asserts the responses match the batch
# path bit for bit, and exercises queue-full backpressure (429 + Retry-After),
# deadline cancellation (timeout_ms -> 408, slot freed, next request matches
# batch), and graceful drain (in-flight finishes, new requests get 503).
server-smoke:
	$(GO) run ./cmd/sparkserved -smoke

# speculation-smoke runs the speculation ablation at small scale; the harness
# itself fails unless speculative copies beat the 8x-straggler baseline by at
# least 3x while launching no copies on straggler-free runs.
speculation-smoke:
	$(GO) run ./cmd/benchtab -exp speculation

# columnar-smoke runs the same small analysis through the 2-bit packed engine
# and the boxed per-row pipeline and diffs the per-set report byte for byte,
# then runs the columnar ablation (which itself asserts bitwise parity, the
# >= 4x cached-genotype reduction, and a fused-kernel speedup) and refreshes
# the BENCH_columnar.json snapshot.
columnar-smoke:
	$(GO) run ./cmd/sparkscore -generate -patients 60 -snps 300 -sets 6 -iterations 10 \
		-columnar=true -out $${TMPDIR:-/tmp}/sparkscore-columnar.tsv > /dev/null
	$(GO) run ./cmd/sparkscore -generate -patients 60 -snps 300 -sets 6 -iterations 10 \
		-columnar=false -out $${TMPDIR:-/tmp}/sparkscore-boxed.tsv > /dev/null
	cmp $${TMPDIR:-/tmp}/sparkscore-columnar.tsv $${TMPDIR:-/tmp}/sparkscore-boxed.tsv
	$(GO) run ./cmd/benchtab -exp columnar -json
	@echo "columnar-smoke: packed and boxed reports identical"

# spill-smoke squeezes the unified memory pool far below the score pipeline's
# shuffle working set: the sort shuffle must spill (the run prints its spill
# accounting) yet produce a per-set report byte-identical to the uncapped run,
# while the hash shuffle must abort out of memory at the same cap. Then the
# memory experiment (capped chaos replay + working-set measurement) refreshes
# the BENCH_memory.json snapshot.
spill-smoke:
	$(GO) run ./cmd/sparkscore -generate -patients 60 -snps 300 -sets 6 -iterations 10 \
		-out $${TMPDIR:-/tmp}/sparkscore-uncapped.tsv > /dev/null
	$(GO) run ./cmd/sparkscore -generate -patients 60 -snps 300 -sets 6 -iterations 10 \
		-mem-cap-bytes 4096 -workers 1 \
		-out $${TMPDIR:-/tmp}/sparkscore-spill.tsv | grep -q "shuffle spills:"
	cmp $${TMPDIR:-/tmp}/sparkscore-uncapped.tsv $${TMPDIR:-/tmp}/sparkscore-spill.tsv
	@if $(GO) run ./cmd/sparkscore -generate -patients 60 -snps 300 -sets 6 -iterations 10 \
		-mem-cap-bytes 4096 -workers 1 -hash-shuffle > /dev/null 2>&1; then \
		echo "spill-smoke: hash shuffle survived a cap it must OOM under"; exit 1; \
	fi
	$(GO) run ./cmd/benchtab -exp memory -json
	@echo "spill-smoke: capped sort report identical to uncapped; hash aborted"

# adaptive-smoke runs the same analysis with the adaptive planner off and on
# and diffs the reports byte for byte (coalescing and skew splitting must be
# invisible in results), then runs the adaptive ablation (which itself asserts
# parity, a >= 1.3x stage-time win on the skewed scenario, and coalescing on
# the partition-dust scenario) and refreshes the BENCH_adaptive.json snapshot.
adaptive-smoke:
	$(GO) run ./cmd/sparkscore -generate -patients 60 -snps 300 -sets 6 -iterations 10 \
		-adaptive=false -out $${TMPDIR:-/tmp}/sparkscore-static.tsv > /dev/null
	$(GO) run ./cmd/sparkscore -generate -patients 60 -snps 300 -sets 6 -iterations 10 \
		-adaptive=true -out $${TMPDIR:-/tmp}/sparkscore-adaptive.tsv > /dev/null
	cmp $${TMPDIR:-/tmp}/sparkscore-static.tsv $${TMPDIR:-/tmp}/sparkscore-adaptive.tsv
	$(GO) run ./cmd/benchtab -exp adaptive -json
	@echo "adaptive-smoke: adaptive and static reports identical"

# eqtl-smoke runs the all-pairs eQTL engine four ways over the same generated
# input — wide multi-phenotype kernel, per-phenotype loop, cartesian block
# join, and the wide kernel again under injected chaos — and diffs the four
# reports byte for byte, then runs the eqtl experiment (which itself asserts
# parity at two shapes, chaos recovery with byte-stable stripped replay logs,
# and the >= 2x wide-kernel pair throughput) and refreshes BENCH_eqtl.json.
eqtl-smoke:
	$(GO) run ./cmd/sparkscore -eqtl -generate -patients 80 -snps 400 -sets 8 \
		-eqtl-phenos 12 -out $${TMPDIR:-/tmp}/sparkscore-eqtl-wide.tsv > /dev/null
	$(GO) run ./cmd/sparkscore -eqtl -generate -patients 80 -snps 400 -sets 8 \
		-eqtl-phenos 12 -eqtl-wide=false -out $${TMPDIR:-/tmp}/sparkscore-eqtl-loop.tsv > /dev/null
	$(GO) run ./cmd/sparkscore -eqtl -generate -patients 80 -snps 400 -sets 8 \
		-eqtl-phenos 12 -eqtl-strategy cartesian -out $${TMPDIR:-/tmp}/sparkscore-eqtl-cart.tsv > /dev/null
	$(GO) run ./cmd/sparkscore -eqtl -generate -patients 80 -snps 400 -sets 8 \
		-eqtl-phenos 12 -chaos -out $${TMPDIR:-/tmp}/sparkscore-eqtl-chaos.tsv > /dev/null
	cmp $${TMPDIR:-/tmp}/sparkscore-eqtl-wide.tsv $${TMPDIR:-/tmp}/sparkscore-eqtl-loop.tsv
	cmp $${TMPDIR:-/tmp}/sparkscore-eqtl-wide.tsv $${TMPDIR:-/tmp}/sparkscore-eqtl-cart.tsv
	cmp $${TMPDIR:-/tmp}/sparkscore-eqtl-wide.tsv $${TMPDIR:-/tmp}/sparkscore-eqtl-chaos.tsv
	$(GO) run ./cmd/benchtab -exp eqtl -json
	@echo "eqtl-smoke: wide, loop, cartesian, and chaos reports identical"

# fuzz-smoke gives each native fuzz target a 10s budget on top of its checked-in
# seed corpus (testdata/fuzz). The targets assert the GenoBlock and
# phenotype-matrix text codecs round-trip whatever they accept and the
# spill-frame reader returns errors instead of panicking on arbitrary bytes.
fuzz-smoke:
	$(GO) test ./internal/data -run='^$$' -fuzz=FuzzGenoBlockTextRoundTrip -fuzztime=10s
	$(GO) test ./internal/data -run='^$$' -fuzz=FuzzPhenoMatrixRoundTrip -fuzztime=10s
	$(GO) test ./internal/rdd -run='^$$' -fuzz=FuzzDecodeFrameBytes -fuzztime=10s

# cover enforces the per-package statement-coverage floors recorded in
# coverage_baseline.txt: <package> <min-percent> per line, '#' comments
# ignored. A package dropping below its floor fails tier-1.
cover:
	@fail=0; \
	while read -r pkg min; do \
		case "$$pkg" in ''|\#*) continue;; esac; \
		line=$$($(GO) test -count=1 -cover "$$pkg" 2>&1 | grep -E '^ok .*coverage:'); \
		if [ -z "$$line" ]; then echo "cover: no coverage line for $$pkg"; fail=1; continue; fi; \
		pct=$$(echo "$$line" | sed -E 's/.*coverage: ([0-9.]+)% of statements.*/\1/'); \
		ok=$$(awk -v p="$$pct" -v m="$$min" 'BEGIN { print (p >= m) ? 1 : 0 }'); \
		if [ "$$ok" = 1 ]; then \
			echo "cover: $$pkg $$pct% (floor $$min%)"; \
		else \
			echo "cover: $$pkg $$pct% BELOW floor $$min%"; fail=1; \
		fi; \
	done < coverage_baseline.txt; \
	exit $$fail

# trace runs the quickstart with a timeline listener and leaves a Chrome-trace
# JSON next to the repo root (open in chrome://tracing or ui.perfetto.dev).
trace:
	$(GO) run ./examples/quickstart -trace quickstart.trace.json

experiments:
	$(GO) run ./cmd/benchtab -exp all -scale 100 -reps 2
