GO ?= go

.PHONY: tier1 vet build test race bench experiments

# tier1 is the CI gate: vet, build, and the full test suite under the race
# detector (the recovery layer is concurrent by construction).
tier1: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

experiments:
	$(GO) run ./cmd/benchtab -exp all -scale 100 -reps 2
