// Command benchtab regenerates the paper's tables and figures:
//
//	benchtab -exp fig2            # one artifact (figures or tables)
//	benchtab -exp all             # everything, in paper order
//	benchtab -exp fig5 -scale 10  # closer to paper-scale inputs (slower)
//
// Output is the same rows/series the paper reports, with runtimes in
// simulated cluster seconds (see DESIGN.md for the substitution of Amazon
// EMR by the discrete-event cluster model).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sparkscore/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "artifact id (tab1, fig2, tab3, ..., fig7, chaos, combine, serving, speculation, columnar, memory, adaptive, eqtl) or \"all\"")
		scale    = flag.Int("scale", 100, "divide the paper's SNP counts, block size, and executor memory by this")
		reps     = flag.Int("reps", 2, "repetitions per configuration (for mean/stdev tables)")
		maxIters = flag.Int("max-iters", 0, "cap resampling iterations (0 = run the paper's full axes)")
		seed     = flag.Uint64("seed", 1, "seed for data generation and resampling")
		events   = flag.String("events", "", "write one JSONL event log per measured run into this directory (render with sparkui)")
		trace    = flag.String("trace", "", "write one Chrome-trace timeline per measured run into this directory")
		jsonOut  = flag.Bool("json", false, "write JSON snapshots: speculation to BENCH_speculation.json, columnar to BENCH_columnar.json, memory to BENCH_memory.json, adaptive to BENCH_adaptive.json, eqtl to BENCH_eqtl.json")
	)
	flag.Parse()

	for _, dir := range []string{*events, *trace} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
		}
	}
	h := &harness.Harness{
		Scale: *scale, Reps: *reps, MaxIterations: *maxIters, Seed: *seed,
		EventLogDir: *events, TraceDir: *trace,
	}
	if *jsonOut {
		h.SpeculationJSON = "BENCH_speculation.json"
		h.ColumnarJSON = "BENCH_columnar.json"
		h.MemoryJSON = "BENCH_memory.json"
		h.AdaptiveJSON = "BENCH_adaptive.json"
		h.EQTLJSON = "BENCH_eqtl.json"
	}
	start := time.Now()
	var err error
	if *exp == "all" {
		err = harness.RunAll(h, os.Stdout)
	} else {
		e, ok := harness.Resolve(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtab: unknown artifact %q; known:", *exp)
			for _, known := range harness.Experiments() {
				fmt.Fprintf(os.Stderr, " %s", known.ID)
			}
			fmt.Fprintln(os.Stderr, " (plus table aliases tab2..tab8)")
			os.Exit(2)
		}
		fmt.Printf("== %s ==\n", e.Title)
		err = e.Run(h, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	fmt.Printf("\nbenchtab: done in %.1fs wall (scale 1/%d, %d reps)\n",
		time.Since(start).Seconds(), *scale, *reps)
	if *events != "" {
		fmt.Printf("benchtab: per-run event logs in %s (render with: sparkui -log <file>)\n", *events)
	}
	if *trace != "" {
		fmt.Printf("benchtab: per-run timelines in %s (open in chrome://tracing)\n", *trace)
	}
}
