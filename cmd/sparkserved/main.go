// Command sparkserved keeps a SparkScore driver alive behind an HTTP/JSON
// API: the dataset is staged once, and score, SKAT, and resampling requests
// then run as concurrent jobs on the shared simulated cluster under the
// engine's FIFO or FAIR scheduler — the repo's counterpart of serving a Spark
// application through Livy or spark-jobserver instead of one spark-submit
// per analysis.
//
//	sparkserved -generate -patients 1000 -snps 10000 -sets 100 \
//	    -mode fair -pools '[{"name":"interactive","weight":3,"minShare":8},{"name":"batch"}]'
//
//	curl -s localhost:8080/v1/skat -d '{"top":5,"pool":"interactive"}'
//	curl -s localhost:8080/v1/resample -d '{"method":"replicate","replicate":7,"pool":"batch"}'
//
// With -eqtl-phenos N the server also generates N expression phenotypes over
// the cohort and exposes the all-pairs association engine on /v1/eqtl; pages
// of the streamed top-K come back via page/page_size:
//
//	curl -s localhost:8080/v1/eqtl -d '{"page":0,"page_size":25,"pool":"batch"}'
//
// Every job endpoint accepts timeout_ms, a server-side deadline on the whole
// request; past it (or on client disconnect) the running job is cancelled at
// its next task boundary, the pool slot is freed, and the request is
// answered 408 Request Timeout with a Retry-After (a disconnect is recorded
// as 499 in /v1/jobs and /v1/stats). Cancellation leaves the shared driver
// reusable: subsequent requests still match the batch CLI bit for bit.
//
// With -smoke it instead runs an in-process self-test: it serves on a
// loopback port, submits score/SKAT/resampling jobs over real HTTP, asserts
// the results match the batch path bit for bit, exercises queue-full
// backpressure (429), timeout_ms cancellation (408 within the deadline, slot
// freed, next request bit-equal to batch), and graceful drain (503), and
// exits non-zero on any mismatch. The Makefile's server-smoke target runs
// exactly this.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sparkscore/internal/assoc"
	"sparkscore/internal/cluster"
	"sparkscore/internal/core"
	"sparkscore/internal/data"
	"sparkscore/internal/gen"
	"sparkscore/internal/rdd"
	"sparkscore/internal/rng"
	"sparkscore/internal/server"
	"sparkscore/internal/tuner"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address")
		smoke = flag.Bool("smoke", false, "run the in-process serving self-test and exit")

		dir      = flag.String("dir", "", "directory with genotypes.txt/phenotype.txt/weights.txt/snpsets.txt")
		generate = flag.Bool("generate", false, "generate a synthetic dataset instead of reading -dir")
		patients = flag.Int("patients", 1000, "patients for -generate")
		snps     = flag.Int("snps", 10000, "SNPs for -generate")
		sets     = flag.Int("sets", 100, "SNP-sets for -generate")

		eqtlPhenos = flag.Int("eqtl-phenos", 0, "expression phenotypes to generate for the all-pairs /v1/eqtl endpoint (0 disables it)")
		eqtlTop    = flag.Int("eqtl-top", 100, "most-significant pairs the eQTL engine keeps")

		family  = flag.String("family", "cox", `score family: "cox", "gaussian", or "binomial"`)
		setStat = flag.String("set-stat", "skat", `SNP-set statistic: "skat" or "burden"`)
		seed    = flag.Uint64("seed", 1, "seed for data generation and resampling")
		warm    = flag.Bool("warm", true, "pre-materialise and cache RDD U before serving")

		nodes = flag.Int("nodes", 6, "simulated cluster nodes (m3.2xlarge)")
		execs = flag.Int("executors-per-node", 2, "YARN containers per node")
		cores = flag.Int("cores", 4, "cores per container")
		mem   = flag.Float64("mem", 10, "memory per container (GiB)")

		mode     = flag.String("mode", "fair", `job scheduler: "fifo" or "fair"`)
		pools    = flag.String("pools", "", `serving pools as a JSON array, or @file to read one (default: a single "default" pool)`)
		autotune = flag.Bool("autotune", false, "enable the online tuner: observe stage stats and retune default parallelism between served jobs (off by default; tuned runs are not bit-comparable to the batch CLI)")
		adaptive = flag.Bool("adaptive", false, "enable adaptive stage execution (coalescing + skew splitting)")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	)
	flag.Parse()

	if *smoke {
		if err := server.Smoke(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sparkserved: smoke FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("server-smoke: all checks passed")
		return
	}

	schedMode, err := rdd.ParseSchedulerMode(*mode)
	if err != nil {
		fatal(err)
	}
	poolCfgs, err := loadPools(*pools)
	if err != nil {
		fatal(err)
	}
	ds, err := loadDataset(*dir, *generate, *patients, *snps, *sets, *seed)
	if err != nil {
		fatal(err)
	}
	ctx, err := rdd.New(rdd.Config{
		Cluster: cluster.Config{
			Nodes: *nodes, Spec: cluster.M3TwoXLarge,
			ExecutorsPerNode: *execs, CoresPerExecutor: *cores, MemPerExecutorGiB: *mem,
		},
		Seed:      *seed,
		Scheduler: server.SchedulerConfig(schedMode, poolCfgs),
		Adaptive:  rdd.AdaptiveConfig{Enabled: *adaptive},
	})
	if err != nil {
		fatal(err)
	}
	paths, err := core.StageDataset(ctx, ds, "input")
	if err != nil {
		fatal(err)
	}
	analysis, err := core.NewAnalysis(ctx, paths, core.Options{
		Family: *family, SetStatistic: *setStat, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	if *warm {
		fmt.Println("sparkserved: warming the score-contribution RDD cache ...")
		if err := analysis.Warm(); err != nil {
			fatal(err)
		}
	}
	var online *tuner.Online
	scfg := server.Config{Context: ctx, Analysis: analysis, Pools: poolCfgs}
	if *eqtlPhenos > 0 {
		// The expression matrix stages beside the dataset; the eQTL engine
		// re-reads the already-staged genotypes, so the two endpoints share one
		// copy of the large side.
		expr := gen.ExpressionMatrix(gen.Config{Patients: analysis.Patients()}, rng.New(*seed), *eqtlPhenos)
		var buf bytes.Buffer
		if err := data.WritePhenoMatrix(&buf, expr); err != nil {
			fatal(err)
		}
		const phenoMatrixPath = "input/phenomatrix.txt"
		if _, err := ctx.FS().Write(phenoMatrixPath, buf.Bytes()); err != nil {
			fatal(err)
		}
		eq, err := assoc.NewAnalysis(ctx, paths.Genotypes, phenoMatrixPath, assoc.Config{TopK: *eqtlTop})
		if err != nil {
			fatal(err)
		}
		scfg.EQTL = eq
	}
	if *autotune {
		online = tuner.NewOnline(ctx, tuner.OnlineConfig{})
		scfg.Tuner = online
	}
	srv, err := server.New(scfg)
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	fmt.Printf("sparkserved: %d patients, %d SNPs, %d SNP-sets; %s scheduling, %d pools; serving on http://%s\n",
		analysis.Patients(), ds.Genotypes.SNPs(), len(analysis.Sets()),
		schedMode, len(poolCfgs), *addr)
	fmt.Printf("  try: curl -s %s/v1/skat -d '{\"top\":5}'\n", "http://"+*addr)
	if scfg.EQTL != nil {
		fmt.Printf("  eqtl: %d phenotypes × %d SNPs all-pairs on /v1/eqtl (%s strategy)\n",
			scfg.EQTL.Phenos(), ds.Genotypes.SNPs(), scfg.EQTL.Strategy())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		fatal(err)
	case s := <-sig:
		fmt.Printf("sparkserved: %s: draining (in-flight requests finish, new ones get 503) ...\n", s)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "sparkserved: drain:", err)
		}
		if err := hs.Shutdown(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "sparkserved: shutdown:", err)
		}
		fmt.Printf("sparkserved: stopped after %.1f simulated seconds over %d jobs\n",
			ctx.VirtualTime(), len(ctx.Jobs()))
	}
}

// loadPools parses the -pools flag: empty, inline JSON, or @file.
func loadPools(spec string) ([]server.PoolConfig, error) {
	if spec == "" {
		return nil, nil
	}
	if strings.HasPrefix(spec, "@") {
		f, err := os.Open(spec[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return server.ParsePools(f)
	}
	return server.ParsePools(strings.NewReader(spec))
}

func loadDataset(dir string, generate bool, patients, snps, sets int, seed uint64) (*data.Dataset, error) {
	if generate || dir == "" {
		return gen.Generate(gen.Config{Patients: patients, SNPs: snps, SNPSets: sets}, seed)
	}
	open := func(name string) (*os.File, error) { return os.Open(filepath.Join(dir, name)) }
	ds := &data.Dataset{}
	var err error
	load := func(name string, read func(f *os.File) error) {
		if err != nil {
			return
		}
		var f *os.File
		if f, err = open(name); err != nil {
			return
		}
		defer f.Close()
		err = read(f)
	}
	load("genotypes.txt", func(f *os.File) (e error) { ds.Genotypes, e = data.ReadGenotypes(f); return })
	load("phenotype.txt", func(f *os.File) (e error) { ds.Phenotype, e = data.ReadPhenotype(f); return })
	load("weights.txt", func(f *os.File) (e error) { ds.Weights, e = data.ReadWeights(f); return })
	load("snpsets.txt", func(f *os.File) (e error) { ds.SNPSets, e = data.ReadSNPSets(f); return })
	if err != nil {
		return nil, err
	}
	if f, cerr := open("covariates.txt"); cerr == nil {
		ds.Covariates, err = data.ReadCovariates(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return ds, ds.Validate()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparkserved:", err)
	os.Exit(1)
}
