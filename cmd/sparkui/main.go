// Command sparkui renders a SparkScore event log as a text Spark-UI: job,
// stage, and recovery-event tables reconstructed purely from the JSONL log,
// the way Spark's History Server rebuilds its UI from spark.eventLog files.
//
//	sparkscore -generate -iterations 200 -events run.jsonl
//	sparkui -log run.jsonl                    # jobs, stages, recovery events
//	sparkui -log run.jsonl -tasks             # plus the task-attempt table
//	sparkui -log run.jsonl -tasks -task-limit 0   # ... uncapped
//
// Large runs produce hundreds of thousands of task attempts; -task-limit caps
// the task table (default 500 rows) and a footer reports how many rows were
// elided. 0 means unlimited.
package main

import (
	"flag"
	"fmt"
	"os"

	"sparkscore/internal/metrics"
	"sparkscore/internal/rdd"
)

func main() {
	logPath := flag.String("log", "", "JSONL event log (sparkscore -events, benchtab -events, or rdd.EventLogWriter)")
	tasks := flag.Bool("tasks", false, "also print the per-task-attempt table")
	taskLimit := flag.Int("task-limit", 500, "cap the task table at this many rows, noting how many were elided (0 = unlimited)")
	flag.Parse()
	if *logPath == "" && flag.NArg() == 1 {
		*logPath = flag.Arg(0)
	}
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "usage: sparkui -log <events.jsonl> [-tasks]")
		os.Exit(2)
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fatal(err)
	}
	events, err := rdd.ReadEventLog(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *taskLimit < 0 {
		fmt.Fprintln(os.Stderr, "sparkui: -task-limit must be >= 0")
		os.Exit(2)
	}
	ui := build(events)
	ui.render(os.Stdout, *tasks, *taskLimit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparkui:", err)
	os.Exit(1)
}

// stage is one stage attempt (a (job, stage-id, round) task set).
type stage struct {
	id             uint64
	round          int
	rdd            string
	tasks          int
	failedAttempts int
	seconds        float64
	spills         int   // sorted runs the stage's tasks spilled
	spilledBytes   int64 // encoded bytes of those runs
	recovery       bool
	prefetch       bool // adaptive skew-split sub-fetch stage
	failed         bool
	done           bool
	attempts       []*rdd.TaskEnd
}

// job is one action's accounting, rebuilt from its events.
type job struct {
	id         uint64
	action     string
	pool       string
	rdd        string
	tasks      int
	retries    int
	resubmits  int
	evictions  int
	speculated int
	killed     int
	seconds    float64
	ended      bool
	failed     bool
	cancelled  bool
	errMsg     string
	stages     []*stage
}

// recoveryEvent is one row of the recovery table: anything the fault-recovery
// machinery did, in log order.
type recoveryEvent struct {
	time float64
	desc string
}

type model struct {
	events   int
	jobs     []*job
	recovery []recoveryEvent
	adaptive []*rdd.AdaptivePlan
}

// build folds the event stream into jobs, stages, and recovery rows.
func build(events []rdd.Event) *model {
	m := &model{events: len(events)}
	byID := map[uint64]*job{}
	jobOf := func(id uint64) *job {
		if j, ok := byID[id]; ok {
			return j
		}
		j := &job{id: id}
		byID[id] = j
		m.jobs = append(m.jobs, j)
		return j
	}
	// openStage finds the stage attempt TaskEnd/StageCompleted events refer
	// to: the latest unfinished (stage, round) of the job.
	openStage := func(j *job, id uint64, round int) *stage {
		for i := len(j.stages) - 1; i >= 0; i-- {
			if s := j.stages[i]; s.id == id && s.round == round && !s.done {
				return s
			}
		}
		return nil
	}
	for _, ev := range events {
		switch e := ev.(type) {
		case *rdd.JobStart:
			j := jobOf(e.Job)
			j.action, j.pool, j.rdd = e.Action, e.Pool, e.RDD
		case *rdd.JobEnd:
			j := jobOf(e.Job)
			j.ended, j.failed, j.errMsg = true, e.Failed, e.Error
			j.cancelled = e.Cancelled
			j.seconds = e.VirtualSeconds
		case *rdd.JobCancelled:
			m.recoveryf(e.Time, "job %d: cancelled %s(%s): %s", e.Job, e.Action, e.RDD, e.Reason)
		case *rdd.SpeculativeTaskLaunched:
			jobOf(e.Job).speculated++
			m.recoveryf(e.Time, "job %d: stage %s task %d speculated on executor %d (original on %d)",
				e.Job, stageLabel(e.Stage), e.Part, e.Executor, e.Original)
		case *rdd.TaskKilled:
			jobOf(e.Job).killed++
			m.recoveryf(e.Time, "job %d: stage %s task %d attempt %d killed on executor %d: %s",
				e.Job, stageLabel(e.Stage), e.Part, e.Attempt, e.Executor, e.Reason)
		case *rdd.StageSubmitted:
			j := jobOf(e.Job)
			j.tasks += e.NumTasks
			j.stages = append(j.stages, &stage{
				id: e.Stage, round: e.Round, rdd: e.RDD,
				tasks: e.NumTasks, recovery: e.Recovery, prefetch: e.Prefetch,
			})
		case *rdd.AdaptivePlan:
			m.adaptive = append(m.adaptive, e)
		case *rdd.StageCompleted:
			if s := openStage(jobOf(e.Job), e.Stage, e.Round); s != nil {
				s.done, s.failed = true, e.Failed
				s.failedAttempts, s.seconds = e.FailedAttempts, e.Seconds
			}
		case *rdd.StageResubmitted:
			jobOf(e.Job).resubmits++
			m.recoveryf(e.Time, "job %d: map stage of shuffle %d resubmitted (attempt %d): %s",
				e.Job, e.Shuffle, e.Attempt, e.Reason)
		case *rdd.TaskStart:
			if e.Attempt > 1 {
				jobOf(e.Job).retries++
			}
		case *rdd.TaskEnd:
			if s := openStage(jobOf(e.Job), e.Stage, e.Round); s != nil {
				s.attempts = append(s.attempts, e)
				s.spills += e.Metrics.SpillCount
				s.spilledBytes += e.Metrics.SpilledBytes
			}
			// A killed original is not a failure; its TaskKilled event
			// already carries the recovery row.
			if !e.OK && !e.Killed {
				m.recoveryf(e.Time, "job %d: stage %s task %d attempt %d failed on executor %d: %s",
					e.Job, stageLabel(e.Stage), e.Part, e.Attempt, e.Executor, e.Failure)
			}
		case *rdd.BlockEvicted:
			// Grouped by the event's own job id: with concurrent jobs the
			// latest JobStart is not the evicting job. Job ids start at 1;
			// 0 means a log from before evictions carried one.
			if e.Job != 0 {
				jobOf(e.Job).evictions++
			}
		case *rdd.FetchFailure:
			src := "found missing"
			if e.Injected {
				src = "injected loss of"
			}
			m.recoveryf(e.Time, "job %d: stage %s task %d %s map output %d of shuffle %d",
				e.Job, stageLabel(e.Stage), e.Part, src, e.MapPart, e.Shuffle)
		case *rdd.ExecutorExcluded:
			m.recoveryf(e.Time, "executor %d excluded after %d task failures", e.Executor, e.Failures)
		case *rdd.NodeLost:
			m.recoveryf(e.Time, "node %d lost (executors %v): cached blocks, shuffle outputs, and DFS replicas gone",
				e.Node, e.Executors)
		}
	}
	return m
}

func (m *model) recoveryf(t float64, format string, args ...any) {
	m.recovery = append(m.recovery, recoveryEvent{time: t, desc: fmt.Sprintf(format, args...)})
}

func stageLabel(id uint64) string {
	if id == 0 {
		return "result"
	}
	return fmt.Sprintf("map(shuffle %d)", id)
}

func (m *model) render(w *os.File, withTasks bool, taskLimit int) {
	fmt.Fprintf(w, "event log: %d events, %d jobs, %d recovery events\n\n", m.events, len(m.jobs), len(m.recovery))

	jt := metrics.NewTable("jobs", "job", "action", "pool", "stages", "tasks", "retries", "stage-reattempts", "evictions", "spec-copies", "killed", "sim-s", "status")
	for _, j := range m.jobs {
		jt.AddRowf(int(j.id), j.action, j.pool, len(j.stages), j.tasks, j.retries, j.resubmits, j.evictions,
			j.speculated, j.killed, metrics.FormatSeconds(j.seconds), jobStatus(j))
	}
	jt.Fprint(w)
	fmt.Fprintln(w)

	st := metrics.NewTable("stages", "job", "stage", "round", "tasks", "failed-attempts", "spills", "spilled-B", "sim-s", "recovery", "rdd")
	for _, j := range m.jobs {
		for _, s := range j.stages {
			label := stageLabel(s.id)
			if s.prefetch {
				label += " [prefetch]"
			}
			st.AddRowf(int(j.id), label, s.round, s.tasks, s.failedAttempts,
				s.spills, s.spilledBytes,
				metrics.FormatSeconds(s.seconds), flag3(s.recovery, s.failed, s.done), truncate(s.rdd, 48))
		}
	}
	st.Fprint(w)
	fmt.Fprintln(w)

	if len(m.adaptive) > 0 {
		at := metrics.NewTable("adaptive plans", "job", "stage", "round", "parts", "tasks", "coalesced-groups", "skewed-parts", "sub-splits", "rdd")
		for _, p := range m.adaptive {
			at.AddRowf(int(p.Job), stageLabel(p.Stage), p.Round, p.Partitions, p.Tasks,
				p.CoalescedGroups, fmt.Sprintf("%v", p.Skewed), p.SubSplits, truncate(p.RDD, 48))
		}
		at.Fprint(w)
		fmt.Fprintln(w)
	}

	rt := metrics.NewTable("recovery events", "sim-t", "event")
	for _, r := range m.recovery {
		rt.AddRowf(metrics.FormatSeconds(r.time), r.desc)
	}
	if len(m.recovery) == 0 {
		rt.AddRow("-", "none: the run completed without failures")
	}
	rt.Fprint(w)

	if withTasks {
		fmt.Fprintln(w)
		tt := metrics.NewTable("task attempts", "job", "stage", "round", "part", "attempt", "kind", "executor", "start-s", "dur-s", "spills", "spilled-B", "status")
		shown, total := 0, 0
		for _, j := range m.jobs {
			for _, s := range j.stages {
				for _, t := range s.attempts {
					total++
					if taskLimit > 0 && shown >= taskLimit {
						continue
					}
					shown++
					kind := "orig"
					if t.Speculative {
						kind = "spec"
					}
					status := "ok"
					switch {
					case t.Killed:
						status = "killed (copy won)"
					case !t.OK:
						status = "FAILED"
					case t.Speculative:
						status = "ok (won)"
					case t.Recovery:
						status = "ok (recovery)"
					}
					tt.AddRowf(int(j.id), stageLabel(s.id), s.round, t.Part, t.Attempt, kind, t.Executor,
						metrics.FormatSeconds(t.StartSec), metrics.FormatSeconds(t.DurationSec),
						t.Metrics.SpillCount, t.Metrics.SpilledBytes, status)
				}
			}
		}
		tt.Fprint(w)
		if elided := total - shown; elided > 0 {
			fmt.Fprintf(w, "(%d of %d task attempts shown; %d elided — raise -task-limit or pass -task-limit 0)\n",
				shown, total, elided)
		}
	}
}

func jobStatus(j *job) string {
	switch {
	case !j.ended:
		return "incomplete (log truncated?)"
	case j.cancelled:
		return "CANCELLED"
	case j.failed:
		return "FAILED: " + truncate(j.errMsg, 60)
	default:
		return "ok"
	}
}

// flag3 renders the stage status cell: recovery and failure are the
// interesting states, a clean completed stage is just blank.
func flag3(recovery, failed, done bool) string {
	switch {
	case failed:
		return "FAILED"
	case recovery:
		return "yes"
	case !done:
		return "incomplete"
	default:
		return ""
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
